// Sensor/transport defect model: converts a continuous drive into the
// event-driven route points a Driveco-style on-board unit would report,
// then applies the data defects the paper's cleaning pipeline exists to
// repair — GPS noise and outliers, duplicated and dropped points, and
// id/timestamp sequences scrambled by server-arrival latency.

#ifndef TAXITRACE_SYNTH_SENSOR_MODEL_H_
#define TAXITRACE_SYNTH_SENSOR_MODEL_H_

#include <vector>

#include "taxitrace/common/random.h"
#include "taxitrace/synth/driver_model.h"
#include "taxitrace/trace/route_point.h"

namespace taxitrace {
namespace synth {

/// Emission thresholds and defect rates.
struct SensorOptions {
  /// A point is emitted when any of these change thresholds trips
  /// (no fixed sampling rate — Section III).
  double heading_threshold_deg = 15.0;
  double speed_threshold_kmh = 6.0;
  double max_moving_interval_s = 60.0;
  double max_stationary_interval_s = 40.0;
  double max_distance_m = 300.0;

  /// GPS position noise, metres (per axis).
  double gps_sigma_m = 6.0;
  /// Probability of a gross GPS outlier and its jump size.
  double outlier_prob = 0.004;
  double outlier_jump_m = 450.0;
  /// Speed measurement noise, km/h.
  double speed_sigma_kmh = 0.6;

  /// Per-trip probability that device->server latency scrambles the
  /// timestamp sequence / the id sequence (Section IV-B defect model).
  double timestamp_glitch_prob = 0.15;
  double id_glitch_prob = 0.12;
  /// Number of adjacent-pair swaps a glitch introduces.
  int glitch_swaps = 2;

  /// Point drop / duplication rates.
  double drop_prob = 0.01;
  double dup_prob = 0.004;
};

/// Reusable buffers for one worker's observations: the emitted points
/// and the defect pass's rebuild buffer. One instance serves one thread
/// at a time; `points` stays valid until the next Observe through the
/// same instance.
struct SensorScratch {
  std::vector<trace::RoutePoint> points;      ///< Observe output.
  std::vector<trace::RoutePoint> defect_tmp;  ///< Drop/dup rebuild.
};

/// Stateless observer; all randomness flows through the caller's Rng.
class SensorModel {
 public:
  explicit SensorModel(SensorOptions options = {});

  /// Emits route points for one drive (or idle period). Appends to the
  /// device's monotone point-id counter via `next_point_id`. The output
  /// order is the device generation order; defect application may leave
  /// the id or timestamp fields out of order, as happens on the real
  /// server link.
  std::vector<trace::RoutePoint> Observe(
      const std::vector<DriveSample>& samples, int64_t trip_id,
      int64_t* next_point_id, const geo::LocalProjection& projection,
      Rng* rng) const;

  /// As Observe, but reusing `scratch`'s buffers instead of allocating.
  /// Returns scratch->points; draws the exact same RNG sequence and
  /// produces the exact same points as the allocating overload.
  const std::vector<trace::RoutePoint>& Observe(
      const std::vector<DriveSample>& samples, int64_t trip_id,
      int64_t* next_point_id, const geo::LocalProjection& projection,
      Rng* rng, SensorScratch* scratch) const;

  /// Applies only the transport defects (id/timestamp scrambling, drops,
  /// duplicates) to already-emitted points. Exposed for targeted tests
  /// of the cleaning pipeline.
  void ApplyTransportDefects(std::vector<trace::RoutePoint>* points,
                             Rng* rng) const;

  [[nodiscard]] const SensorOptions& options() const { return options_; }

 private:
  SensorOptions options_;
};

}  // namespace synth
}  // namespace taxitrace

#endif  // TAXITRACE_SYNTH_SENSOR_MODEL_H_
