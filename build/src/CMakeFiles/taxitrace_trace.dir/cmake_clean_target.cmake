file(REMOVE_RECURSE
  "libtaxitrace_trace.a"
)
