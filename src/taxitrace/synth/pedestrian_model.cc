#include "taxitrace/synth/pedestrian_model.h"

#include <algorithm>
#include <cmath>

#include "taxitrace/trace/time_util.h"

namespace taxitrace {
namespace synth {

double PedestrianDiurnalCurve(double hour_of_day, bool weekend) {
  const double h =
      std::fmod(std::fmod(hour_of_day, 24.0) + 24.0, 24.0);
  if (h < 6.0) return 0.15;
  if (h < 9.0) return weekend ? 0.3 : 0.8;
  if (h < 12.0) return 1.0;
  if (h < 15.0) return 1.3;  // midday shopping peak
  if (h < 18.0) return 1.2;
  if (h < 22.0) return weekend ? 1.4 : 0.9;  // weekend evening peak
  return 0.4;
}

PedestrianModel::PedestrianModel(uint64_t seed,
                                 std::vector<Hotspot> hotspots,
                                 int num_days)
    : hotspots_(std::move(hotspots)) {
  Rng rng(seed);
  daily_factor_.resize(hotspots_.size());
  for (auto& series : daily_factor_) {
    series.reserve(static_cast<size_t>(num_days));
    double noise = 0.0;
    for (int d = 0; d < num_days; ++d) {
      noise = 0.6 * noise + rng.Gaussian(0.0, 0.15);
      series.push_back(std::clamp(1.0 + noise, 0.4, 1.6));
    }
  }
}

double PedestrianModel::ActivityAt(size_t index,
                                   double timestamp_s) const {
  if (index >= daily_factor_.size()) return 0.0;
  const std::vector<double>& series = daily_factor_[index];
  if (series.empty()) return 0.0;
  const int day = std::clamp(trace::DayOfStudy(timestamp_s), 0,
                             static_cast<int>(series.size()) - 1);
  return series[static_cast<size_t>(day)] *
         PedestrianDiurnalCurve(trace::HourOfDay(timestamp_s),
                                trace::IsWeekend(timestamp_s));
}

double PedestrianModel::CrowdIntensityAt(const geo::EnPoint& position,
                                         double timestamp_s) const {
  double intensity = 0.0;
  for (size_t i = 0; i < hotspots_.size(); ++i) {
    const Hotspot& h = hotspots_[i];
    const double d = geo::Distance(position, h.center);
    if (d >= h.radius_m) continue;
    const double depth = 1.0 - d / h.radius_m;
    intensity = std::max(
        intensity, h.intensity * depth * ActivityAt(i, timestamp_s));
  }
  return std::min(intensity, 1.0);
}

double PedestrianModel::CrowdIntensityAt(
    const geo::EnPoint& position, double timestamp_s,
    const std::vector<size_t>& candidates) const {
  return CrowdIntensityAt(position, MakeCrowdWindow(timestamp_s),
                          candidates);
}

double PedestrianModel::CrowdIntensityAt(
    const geo::EnPoint& position, const CrowdWindow& window,
    const std::vector<size_t>& candidates) const {
  double intensity = 0.0;
  for (const size_t i : candidates) {
    const Hotspot& h = hotspots_[i];
    const double d = geo::Distance(position, h.center);
    if (d >= h.radius_m) continue;
    const double depth = 1.0 - d / h.radius_m;
    // Same product shape as `h.intensity * depth * ActivityAt(i, t)`:
    // ActivityAt is series[day] * diurnal, both hoisted constants here.
    const std::vector<double>& series = daily_factor_[i];
    if (series.empty()) continue;
    const int day = std::clamp(window.day, 0,
                               static_cast<int>(series.size()) - 1);
    intensity = std::max(
        intensity, h.intensity * depth *
                       (series[static_cast<size_t>(day)] * window.diurnal));
  }
  return std::min(intensity, 1.0);
}

CrowdWindow MakeCrowdWindow(double timestamp_s) {
  CrowdWindow w;
  w.day = trace::DayOfStudy(timestamp_s);
  w.day_start_s = static_cast<double>(w.day) * trace::kSecondsPerDay;
  w.weekend = trace::IsWeekend(timestamp_s);
  const double hour = trace::HourOfDay(timestamp_s);
  w.diurnal = PedestrianDiurnalCurve(hour, w.weekend);
  // Breakpoints of PedestrianDiurnalCurve, plus midnight (where the
  // day index and weekend flag roll over).
  constexpr double kBreaksH[] = {6.0, 9.0, 12.0, 15.0, 18.0, 22.0, 24.0};
  double next = 24.0;
  for (const double b : kBreaksH) {
    if (hour < b) {
      next = b;
      break;
    }
  }
  w.valid_until_s = w.day_start_s + next * 3600.0;
  return w;
}

double PedestrianModel::MeanDaytimeActivity(size_t index) const {
  if (index >= daily_factor_.size()) return 0.0;
  const std::vector<double>& series = daily_factor_[index];
  double sum = 0.0;
  int64_t n = 0;
  for (size_t d = 0; d < series.size(); ++d) {
    for (int h = 9; h < 21; ++h) {
      sum += ActivityAt(index, static_cast<double>(d) *
                                       trace::kSecondsPerDay +
                                   h * 3600.0);
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace synth
}  // namespace taxitrace
