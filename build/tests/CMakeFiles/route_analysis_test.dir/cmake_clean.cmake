file(REMOVE_RECURSE
  "CMakeFiles/route_analysis_test.dir/route_analysis_test.cc.o"
  "CMakeFiles/route_analysis_test.dir/route_analysis_test.cc.o.d"
  "route_analysis_test"
  "route_analysis_test.pdb"
  "route_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
