#include "taxitrace/model/ols.h"

#include <cmath>

#include "taxitrace/common/check.h"
#include "taxitrace/model/cholesky.h"

namespace taxitrace {
namespace model {

OlsAccumulator::OlsAccumulator(size_t num_predictors)
    : p_(num_predictors), xtx_(num_predictors, num_predictors),
      xty_(num_predictors, 0.0) {}

void OlsAccumulator::Add(const Vector& x, double y) {
  TT_CHECK(x.size() == p_);
  AddOuterProduct(&xtx_, x, 1.0);
  for (size_t i = 0; i < p_; ++i) xty_[i] += x[i] * y;
  yty_ += y * y;
  y_sum_ += y;
  ++n_;
}

Result<OlsFit> OlsAccumulator::Fit() const {
  if (n_ <= static_cast<int64_t>(p_)) {
    return Status::FailedPrecondition("not enough observations");
  }
  TAXITRACE_ASSIGN_OR_RETURN(const Matrix lower, CholeskyDecompose(xtx_));
  OlsFit fit;
  fit.n = n_;
  fit.coefficients = CholeskySolve(lower, xty_);
  // Residual sum of squares from sufficient statistics.
  const double rss = yty_ - DotProduct(fit.coefficients, xty_);
  fit.sigma2 =
      std::max(0.0, rss) / static_cast<double>(n_ - static_cast<int64_t>(p_));
  const double y_mean = y_sum_ / static_cast<double>(n_);
  const double tss = yty_ - static_cast<double>(n_) * y_mean * y_mean;
  fit.r_squared = tss > 0.0 ? 1.0 - std::max(0.0, rss) / tss : 0.0;

  TAXITRACE_ASSIGN_OR_RETURN(const Matrix inv, InvertSpd(xtx_));
  fit.standard_errors.resize(p_);
  for (size_t i = 0; i < p_; ++i) {
    fit.standard_errors[i] = std::sqrt(std::max(0.0, fit.sigma2 * inv(i, i)));
  }
  return fit;
}

}  // namespace model
}  // namespace taxitrace
