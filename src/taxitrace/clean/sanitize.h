// Point sanitiser: the cleaning pipeline's first line of defence
// against malformed input (the fault classes injected by
// fault::FaultInjector, and their real-world counterparts).
//
// The regular cleaning stages (order repair, outlier filter,
// segmentation) assume finite coordinates and timestamps; feeding them
// NaN would poison distance sums and comparisons. The sanitiser drops
// such points up front and accounts for every drop in a
// fault::FaultReport. It is OFF by default so the fault-free pipeline
// stays byte-identical to the pre-harness pipeline; core::Pipeline
// switches it on when a FaultPlan is active.

#ifndef TAXITRACE_CLEAN_SANITIZE_H_
#define TAXITRACE_CLEAN_SANITIZE_H_

#include "taxitrace/fault/fault_report.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace clean {

/// Gates applied by SanitizeTrip, in order.
struct SanitizeOptions {
  /// Master switch. When false, SanitizeTrip is a no-op.
  bool enabled = false;

  /// Geographic gate: when true, points outside the lat/lon box are
  /// dropped (catches swapped coordinates and wild fixes). The box
  /// should generously contain the study region — core::Pipeline
  /// inflates the road-network bounds by kilometres, far beyond any
  /// legitimate GPS scatter.
  bool has_region = false;
  double lat_min_deg = 0.0;
  double lat_max_deg = 0.0;
  double lon_min_deg = 0.0;
  double lon_max_deg = 0.0;

  /// Clock-jump gate: drop points whose timestamp is further than this
  /// from the trip's median timestamp. Injected jumps are +-12 h; real
  /// trips span minutes, so 6 h separates the two cleanly. Zero or
  /// negative disables the gate.
  double max_median_offset_s = 6.0 * 3600.0;
};

/// Removes malformed points from `trip`: non-finite fields, points
/// whose trip_id does not match the trip (interleaved streams),
/// negative speeds, out-of-region fixes, and clock jumps. Each drop is
/// counted in `report`; totals are recomputed when anything changed.
/// No-op unless `options.enabled`.
void SanitizeTrip(trace::Trip* trip, const SanitizeOptions& options,
                  fault::FaultReport* report);

}  // namespace clean
}  // namespace taxitrace

#endif  // TAXITRACE_CLEAN_SANITIZE_H_
