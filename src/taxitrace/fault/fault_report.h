// Per-fault-class accounting for the fault-injection harness.
//
// A FaultReport has two sides. The `injected_*` counters are written by
// the FaultInjector and say what was deliberately corrupted; the
// remaining counters are written by the consumers (trace_io's lenient
// parser, the store rebuild, the cleaning sanitiser) and say what was
// dropped while degrading gracefully. The two sides do not have to
// match one-for-one — a truncated CSV row can still parse, a NaN
// coordinate is always caught — but together they make the loss along
// the raw-trace path auditable instead of silent.

#ifndef TAXITRACE_FAULT_FAULT_REPORT_H_
#define TAXITRACE_FAULT_FAULT_REPORT_H_

#include <cstdint>
#include <string>

namespace taxitrace {
namespace fault {

/// Counters per fault class, merged additively across pipeline stages
/// and worker shards (all fields are plain integers, so parallel
/// cleaning merges them in store order exactly like the cleaning
/// report's own counters).
struct FaultReport {
  // -- Injected by the FaultInjector ---------------------------------
  // Point-level.
  int64_t injected_nan_coords = 0;       ///< NaN/Inf lat or lon.
  int64_t injected_clock_jumps = 0;      ///< timestamp shifted +-12 h.
  int64_t injected_negative_speeds = 0;  ///< speed forced below zero.
  int64_t injected_swapped_coords = 0;   ///< lat and lon exchanged.
  // Trip-level.
  int64_t injected_duplicated_trips = 0;    ///< trip id emitted twice.
  int64_t injected_emptied_trips = 0;       ///< all points removed.
  int64_t injected_single_point_trips = 0;  ///< truncated to one point.
  int64_t injected_interleaved_trips = 0;   ///< points spliced into the
                                            ///< neighbouring car stream.
  // File-level (per CSV data row).
  int64_t injected_truncated_rows = 0;     ///< row cut mid-field.
  int64_t injected_wrong_column_rows = 0;  ///< column added or removed.
  int64_t injected_junk_rows = 0;          ///< non-UTF8 bytes in a field.

  // -- Dropped by the graceful-degradation paths ---------------------
  int64_t rows_dropped_malformed = 0;  ///< wrong width / unparsable field
                                       ///< (trace_io lenient parse).
  int64_t rows_dropped_non_utf8 = 0;   ///< non-text bytes in a field.
  int64_t trips_dropped_duplicate_id = 0;  ///< store rejected the id.
  int64_t trips_dropped_empty = 0;         ///< no points at cleaning.
  int64_t points_dropped_nonfinite = 0;    ///< NaN/Inf field.
  int64_t points_dropped_foreign = 0;      ///< point's trip id does not
                                           ///< match its trip.
  int64_t points_dropped_negative_speed = 0;
  int64_t points_dropped_out_of_region = 0;  ///< fix outside the study
                                             ///< region (swapped coords).
  int64_t points_dropped_clock_jump = 0;  ///< timestamp far from the
                                          ///< trip median.

  /// Adds every counter of `other` into this report.
  void Add(const FaultReport& other);

  /// Sum of the injected_* counters.
  [[nodiscard]] int64_t TotalInjected() const;

  /// Sum of the dropped counters.
  [[nodiscard]] int64_t TotalDropped() const;

  /// One counter per line, for logs and reports.
  [[nodiscard]] std::string ToString() const;
};

}  // namespace fault
}  // namespace taxitrace

#endif  // TAXITRACE_FAULT_FAULT_REPORT_H_
