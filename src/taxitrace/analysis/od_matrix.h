// Origin-destination flow matrix over coarse grid zones: the intra-city
// spatial-interaction view of the traces (the Liu et al. line of the
// paper's related work — taxi data "reveal city structure").

#ifndef TAXITRACE_ANALYSIS_OD_MATRIX_H_
#define TAXITRACE_ANALYSIS_OD_MATRIX_H_

#include <vector>

#include "taxitrace/analysis/grid.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace analysis {

/// One zone-to-zone flow.
struct OdFlow {
  CellId origin;
  CellId destination;
  int64_t trips = 0;
  double mean_distance_km = 0.0;
  double mean_duration_min = 0.0;
};

/// OD matrix options.
struct OdMatrixOptions {
  /// Zone size (coarser than the 200 m analysis grid).
  double zone_size_m = 600.0;
};

/// Builds the OD flow list from trips (origin = first point's zone,
/// destination = last point's zone). Flows are sorted by descending trip
/// count. Trips with fewer than two points are ignored.
std::vector<OdFlow> BuildOdMatrix(
    const std::vector<const trace::Trip*>& trips,
    const geo::LocalProjection& projection,
    const OdMatrixOptions& options = {});

/// Total trips across all flows.
int64_t TotalFlows(const std::vector<OdFlow>& flows);

/// Share of trips whose origin equals their destination zone
/// (intra-zone movements).
double IntraZoneShare(const std::vector<OdFlow>& flows);

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_OD_MATRIX_H_
