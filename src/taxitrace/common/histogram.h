// Fixed-bin histogram with a compact text rendering, for quick terminal
// diagnostics of speed/fuel/feature distributions.

#ifndef TAXITRACE_COMMON_HISTOGRAM_H_
#define TAXITRACE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace taxitrace {

/// Equal-width histogram over [lo, hi); finite values outside clamp
/// into the edge bins. Non-finite values (NaN, +-Inf) are tallied
/// separately and never enter a bin — std::floor on them would be
/// undefined behaviour on the int cast, and fault-injected traces
/// legitimately carry such values.
class Histogram {
 public:
  /// Creates `num_bins` equal-width bins spanning [lo, hi). Requires
  /// lo < hi and num_bins >= 1 (asserted).
  Histogram(double lo, double hi, int num_bins);

  /// Adds one observation. Non-finite values go to the `nonfinite`
  /// tally instead of a bin.
  void Add(double value);

  /// Adds many observations.
  void AddAll(const std::vector<double>& values);

  [[nodiscard]] int num_bins() const {
    return static_cast<int>(counts_.size());
  }
  /// Binned (finite) observations; excludes the non-finite tally.
  [[nodiscard]] int64_t total() const { return total_; }
  /// Observations rejected as NaN/Inf.
  [[nodiscard]] int64_t nonfinite() const { return nonfinite_; }
  [[nodiscard]] int64_t count(int bin) const {
    return counts_[static_cast<size_t>(bin)];
  }

  /// Lower edge of a bin.
  [[nodiscard]] double BinLow(int bin) const;

  /// Midpoint of the fullest bin (0 when empty).
  [[nodiscard]] double Mode() const;

  /// Value below which `q` of the mass lies (within-bin linear
  /// interpolation); q in [0, 1].
  [[nodiscard]] double Quantile(double q) const;

  /// Multi-line ASCII rendering, one `#`-bar per bin, scaled to
  /// `max_width` characters.
  [[nodiscard]] std::string Render(int max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  int64_t nonfinite_ = 0;
};

}  // namespace taxitrace

#endif  // TAXITRACE_COMMON_HISTOGRAM_H_
