# Empty compiler generated dependencies file for bench_fig9_intercept_map.
# This may be replaced when dependencies are built.
