// In-memory trip store — the library's stand-in for the PostgreSQL/PostGIS
// database the paper used to hold retrieved driving data.

#ifndef TAXITRACE_TRACE_TRACE_STORE_H_
#define TAXITRACE_TRACE_TRACE_STORE_H_

#include <unordered_map>
#include <vector>

#include "taxitrace/common/result.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace trace {

/// Holds the trips of a taxi fleet and serves simple queries.
class TraceStore {
 public:
  TraceStore() = default;

  /// Adds a trip. Fails on a duplicate trip id.
  Status AddTrip(Trip trip);

  /// All trips in insertion order.
  [[nodiscard]] const std::vector<Trip>& trips() const { return trips_; }

  /// Number of stored trips.
  [[nodiscard]] size_t NumTrips() const { return trips_.size(); }

  /// Total number of route points across all trips.
  [[nodiscard]] size_t NumPoints() const;

  /// Trips of one car, in insertion order.
  [[nodiscard]] std::vector<const Trip*> TripsForCar(int car_id) const;

  /// Distinct car ids present, ascending.
  [[nodiscard]] std::vector<int> CarIds() const;

  /// Looks up a trip by id.
  Result<const Trip*> FindTrip(int64_t trip_id) const;

 private:
  std::vector<Trip> trips_;
  std::unordered_map<int64_t, size_t> by_id_;
};

}  // namespace trace
}  // namespace taxitrace

#endif  // TAXITRACE_TRACE_TRACE_STORE_H_
