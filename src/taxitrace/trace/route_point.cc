#include "taxitrace/trace/route_point.h"

namespace taxitrace {
namespace trace {

double PathLengthMeters(const std::vector<RoutePoint>& points) {
  double total = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    total += geo::HaversineMeters(points[i - 1].position,
                                  points[i].position);
  }
  return total;
}

double TimeSpanSeconds(const std::vector<RoutePoint>& points) {
  if (points.size() < 2) return 0.0;
  return points.back().timestamp_s - points.front().timestamp_s;
}

}  // namespace trace
}  // namespace taxitrace
