# Empty compiler generated dependencies file for taxitrace_coach.
# This may be replaced when dependencies are built.
