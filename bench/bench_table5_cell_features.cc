// Table 5: the effect of traffic lights and bus stops on per-cell
// average speed over the 200 m grid (Section VI-A).

#include "bench_util.h"
#include "taxitrace/analysis/cell_stats.h"

namespace taxitrace {
namespace {

void PrintTable5() {
  const core::StudyResults& r = benchutil::FullResults();
  const analysis::Table5 table = analysis::BuildTable5(r.cells);
  std::printf("%s\n", core::FormatTable5(table).c_str());
  std::printf(
      "Paper values: mean 25.5 (no lights) vs 18.7 km/h (lights), and "
      "the no-light/no-bus cells show much higher variance (303 vs 50).\n");
  std::printf("Check: lights reduce mean speed: %.1f < %.1f -> %s\n",
              table.lights.mean, table.no_lights.mean,
              table.lights.mean < table.no_lights.mean ? "HOLDS"
                                                       : "VIOLATED");
  std::printf(
      "Check: variance higher without lights/bus stops: %.0f > %.0f -> "
      "%s\n\n",
      table.no_lights_no_bus.variance, table.lights_and_bus.variance,
      table.no_lights_no_bus.variance > table.lights_and_bus.variance
          ? "HOLDS"
          : "VIOLATED");
}

void BM_BuildTable5(benchmark::State& state) {
  const core::StudyResults& r = benchutil::FullResults();
  for (auto _ : state) {
    auto table = analysis::BuildTable5(r.cells);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_BuildTable5)->Unit(benchmark::kMicrosecond);

void BM_CellAccumulation(benchmark::State& state) {
  const core::StudyResults& r = benchutil::FullResults();
  // Re-accumulate the transition point speeds into the grid.
  const geo::LocalProjection& proj = r.map.network.projection();
  for (auto _ : state) {
    analysis::CellSpeedAccumulator acc{analysis::Grid(200.0)};
    for (const core::MatchedTransition& mt : r.transitions) {
      for (const trace::RoutePoint& p : mt.transition.segment.points) {
        acc.Add(proj.Forward(p.position), p.speed_kmh);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * r.total_point_speeds);
}
BENCHMARK(BM_CellAccumulation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintTable5)
