// Linear interpolation restoration of lost route points (the approach
// the paper cites from Jiang et al.: restore data lost in collection by
// interpolating linearly across the gap).
//
// Event-driven sensors emit nothing while nothing changes, so only gaps
// that are *moving* (the vehicle covered real distance) are restored —
// a stationary 10-minute stand wait is a genuine stop, not lost data.

#ifndef TAXITRACE_CLEAN_INTERPOLATION_H_
#define TAXITRACE_CLEAN_INTERPOLATION_H_

#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace clean {

/// Restoration thresholds.
struct InterpolationOptions {
  /// A gap qualifies for restoration when the time step exceeds this...
  double min_gap_s = 90.0;
  /// ...and the vehicle moved at least this far across it.
  double min_gap_distance_m = 200.0;
  /// Spacing of the restored points within the gap, seconds.
  double restored_interval_s = 30.0;
  /// Never insert more than this many points per gap.
  int max_points_per_gap = 16;
};

/// Counters for a restoration run.
struct InterpolationStats {
  int64_t gaps_restored = 0;
  int64_t points_inserted = 0;
};

/// Inserts linearly interpolated points into qualifying gaps of a
/// time-ordered point sequence. Restored points carry interpolated
/// position/timestamp/speed, zero fuel delta, and fresh fractional ids
/// are avoided by reusing the preceding point's id (ids are repaired to
/// monotone by the caller if needed).
void RestoreLostPoints(std::vector<trace::RoutePoint>* points,
                       const InterpolationOptions& options = {},
                       InterpolationStats* stats = nullptr);

/// Trip-level wrapper (recomputes totals).
void RestoreTripLostPoints(trace::Trip* trip,
                           const InterpolationOptions& options = {},
                           InterpolationStats* stats = nullptr);

}  // namespace clean
}  // namespace taxitrace

#endif  // TAXITRACE_CLEAN_INTERPOLATION_H_
