// Speed categories of the paper's route statistics: low speed (below
// 10 km/h, a significant factor in fuel consumption and emissions) and
// normal speed (driving at the local speed limit).

#ifndef TAXITRACE_ANALYSIS_SPEED_CATEGORIES_H_
#define TAXITRACE_ANALYSIS_SPEED_CATEGORIES_H_

#include "taxitrace/mapmatch/incremental_matcher.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace analysis {

/// Category thresholds.
struct SpeedCategoryOptions {
  double low_speed_kmh = 10.0;
  /// Tolerance below the limit still counted as "at the limit", km/h.
  double normal_tolerance_kmh = 2.0;
};

/// Fraction of points with speed below the low-speed threshold (0 when
/// the trip has no points).
double LowSpeedShare(const trace::Trip& trip,
                     const SpeedCategoryOptions& options = {});

/// Fraction of matched points driving at (or above) the speed limit of
/// their matched edge. Uses the matched route to know the local limit.
double NormalSpeedShare(const trace::Trip& trip,
                        const mapmatch::MatchedRoute& route,
                        const roadnet::RoadNetwork& network,
                        const SpeedCategoryOptions& options = {});

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_SPEED_CATEGORIES_H_
