#include "taxitrace/model/matrix.h"

#include <algorithm>
#include <cmath>

namespace taxitrace {
namespace model {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  TT_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::MultiplyVector(const Vector& v) const {
  TT_CHECK(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < cols_; ++j) sum += (*this)(i, j) * v[j];
    out[i] = sum;
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Matrix Matrix::Plus(const Matrix& other) const {
  TT_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Scaled(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  TT_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double best = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    best = std::max(best, std::abs(data_[i] - other.data_[i]));
  }
  return best;
}

double DotProduct(const Vector& a, const Vector& b) {
  TT_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void AddOuterProduct(Matrix* target, const Vector& v, double s) {
  TT_CHECK(target->rows() == v.size() && target->cols() == v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] == 0.0) continue;
    for (size_t j = 0; j < v.size(); ++j) {
      (*target)(i, j) += s * v[i] * v[j];
    }
  }
}

}  // namespace model
}  // namespace taxitrace
