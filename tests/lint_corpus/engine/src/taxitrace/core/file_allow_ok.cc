// A reasoned file-scope suppression covering two findings at once.

// tt-lint: allow-file(relaxed-atomic): whole-file fixture counters, never read by results

#include "taxitrace/core/fake.h"

namespace taxitrace {

void BumpA(std::atomic<int>& c) {
  c.fetch_add(1, std::memory_order_relaxed);
}

void BumpB(std::atomic<int>& c) {
  c.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace taxitrace
