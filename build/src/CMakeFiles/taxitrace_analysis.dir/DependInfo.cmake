
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxitrace/analysis/bootstrap.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/bootstrap.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/bootstrap.cc.o.d"
  "/root/repo/src/taxitrace/analysis/cell_stats.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/cell_stats.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/cell_stats.cc.o.d"
  "/root/repo/src/taxitrace/analysis/feature_model.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/feature_model.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/feature_model.cc.o.d"
  "/root/repo/src/taxitrace/analysis/grid.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/grid.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/grid.cc.o.d"
  "/root/repo/src/taxitrace/analysis/hotspot_detector.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/hotspot_detector.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/hotspot_detector.cc.o.d"
  "/root/repo/src/taxitrace/analysis/od_matrix.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/od_matrix.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/od_matrix.cc.o.d"
  "/root/repo/src/taxitrace/analysis/route_frequency.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/route_frequency.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/route_frequency.cc.o.d"
  "/root/repo/src/taxitrace/analysis/route_stats.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/route_stats.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/route_stats.cc.o.d"
  "/root/repo/src/taxitrace/analysis/seasons.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/seasons.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/seasons.cc.o.d"
  "/root/repo/src/taxitrace/analysis/speed_categories.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/speed_categories.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/speed_categories.cc.o.d"
  "/root/repo/src/taxitrace/analysis/speed_profile.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/speed_profile.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/speed_profile.cc.o.d"
  "/root/repo/src/taxitrace/analysis/summary_stats.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/summary_stats.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/summary_stats.cc.o.d"
  "/root/repo/src/taxitrace/analysis/temporal.cc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/temporal.cc.o" "gcc" "src/CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/temporal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taxitrace_mapattr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_mapmatch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
