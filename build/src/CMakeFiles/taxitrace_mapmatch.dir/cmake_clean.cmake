file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/candidates.cc.o"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/candidates.cc.o.d"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/gap_filler.cc.o"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/gap_filler.cc.o.d"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/hmm_matcher.cc.o"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/hmm_matcher.cc.o.d"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/incremental_matcher.cc.o"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/incremental_matcher.cc.o.d"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/match_quality.cc.o"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/match_quality.cc.o.d"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/match_report.cc.o"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/match_report.cc.o.d"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/nearest_edge_matcher.cc.o"
  "CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/nearest_edge_matcher.cc.o.d"
  "libtaxitrace_mapmatch.a"
  "libtaxitrace_mapmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_mapmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
