// Residual diagnostics for the fitted mixed model: normality of the
// within-cell residuals and variance stability across fitted values —
// the model-checking companion to the Fig. 7 intercept QQ plot.

#ifndef TAXITRACE_MODEL_DIAGNOSTICS_H_
#define TAXITRACE_MODEL_DIAGNOSTICS_H_

#include <cstddef>
#include <vector>

#include "taxitrace/common/result.h"
#include "taxitrace/model/one_way_reml.h"

namespace taxitrace {
namespace model {

/// One fitted-value bucket of the spread check.
struct ResidualBucket {
  double fitted_mean = 0.0;
  double residual_sd = 0.0;
  int64_t n = 0;
};

/// Residual diagnostics of a one-way fit.
struct ResidualDiagnostics {
  int64_t n = 0;
  /// QQ correlation of the residuals against the normal (≈1 when the
  /// Gaussian error assumption holds).
  double qq_correlation = 0.0;
  /// Residual sd overall.
  double residual_sd = 0.0;
  /// Buckets by fitted value, ascending.
  std::vector<ResidualBucket> buckets;
  /// max bucket sd / min bucket sd (≈1 under homoscedasticity).
  double heteroscedasticity_ratio = 0.0;
};

/// Computes diagnostics from the raw observations that produced `fit`.
/// `groups[i]` is the group index of observation `y[i]` (the same
/// indices given to OneWayReml::Add). Fails on size mismatch or fewer
/// than 3 * num_buckets observations.
Result<ResidualDiagnostics> DiagnoseResiduals(
    const std::vector<double>& y, const std::vector<size_t>& groups,
    const OneWayRemlFit& fit, int num_buckets = 5);

}  // namespace model
}  // namespace taxitrace

#endif  // TAXITRACE_MODEL_DIAGNOSTICS_H_
