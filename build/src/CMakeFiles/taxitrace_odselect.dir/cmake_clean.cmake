file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_odselect.dir/taxitrace/odselect/od_gate.cc.o"
  "CMakeFiles/taxitrace_odselect.dir/taxitrace/odselect/od_gate.cc.o.d"
  "CMakeFiles/taxitrace_odselect.dir/taxitrace/odselect/transition_extractor.cc.o"
  "CMakeFiles/taxitrace_odselect.dir/taxitrace/odselect/transition_extractor.cc.o.d"
  "CMakeFiles/taxitrace_odselect.dir/taxitrace/odselect/transition_filter.cc.o"
  "CMakeFiles/taxitrace_odselect.dir/taxitrace/odselect/transition_filter.cc.o.d"
  "libtaxitrace_odselect.a"
  "libtaxitrace_odselect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_odselect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
