// Tiny leveled logger. Writes to stderr; level is process-global.

#ifndef TAXITRACE_COMMON_LOGGING_H_
#define TAXITRACE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace taxitrace {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted. Default: kWarning (library code
/// stays quiet unless something is wrong).
void SetLogLevel(LogLevel level);

/// Current minimum emitted level.
LogLevel GetLogLevel();

namespace internal {

/// Emits one formatted log line to stderr if `level` passes the filter.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

class LogCapture {
 public:
  LogCapture(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogCapture() { LogMessage(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define TAXITRACE_LOG(level)                                            \
  ::taxitrace::internal::LogCapture(::taxitrace::LogLevel::level,       \
                                    __FILE__, __LINE__)                 \
      .stream()

}  // namespace taxitrace

#endif  // TAXITRACE_COMMON_LOGGING_H_
