// Shared integer hashing. The splitmix64 finaliser is the repo's one
// blessed bit mixer: enough avalanche that structured inputs (small
// signed grid coordinates, edge-id pairs, double bit patterns) spread
// over a hash table, cheap enough to run per lookup, and fixed for all
// time so hashed containers never change bucket shape between builds.
// Hash *values* must still never leak into results — the determinism
// contract forbids hash-order iteration into anything published.

#ifndef TAXITRACE_COMMON_HASH_H_
#define TAXITRACE_COMMON_HASH_H_

#include <cstdint>

namespace taxitrace {

/// splitmix64 finaliser (Steele, Lea & Flood): full-avalanche mix of a
/// 64-bit value. Every bit of the input affects every bit of the
/// output, which is what lets callers pack two 32-bit coordinates or a
/// double's bit pattern into the argument without clustering.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Hash of a signed 2-D lattice coordinate (analysis grid cells,
/// spatial-index cells, road-graph tiles). Packs both 32-bit words into
/// one SplitMix64 input so the pair is injective before mixing and no
/// low-bit structure survives power-of-two bucket masking.
inline uint64_t HashCell2D(int32_t cx, int32_t cy) {
  return SplitMix64(
      (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
      static_cast<uint64_t>(static_cast<uint32_t>(cy)));
}

}  // namespace taxitrace

#endif  // TAXITRACE_COMMON_HASH_H_
