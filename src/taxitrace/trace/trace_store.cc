#include "taxitrace/trace/trace_store.h"

#include <algorithm>
#include <set>

#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace trace {

Status TraceStore::AddTrip(Trip trip) {
  if (by_id_.contains(trip.trip_id)) {
    return Status::AlreadyExists(
        StrFormat("trip %lld already stored",
                  static_cast<long long>(trip.trip_id)));
  }
  by_id_[trip.trip_id] = trips_.size();
  trips_.push_back(std::move(trip));
  return Status::OK();
}

size_t TraceStore::NumPoints() const {
  size_t n = 0;
  for (const Trip& t : trips_) n += t.points.size();
  return n;
}

std::vector<const Trip*> TraceStore::TripsForCar(int car_id) const {
  std::vector<const Trip*> out;
  for (const Trip& t : trips_) {
    if (t.car_id == car_id) out.push_back(&t);
  }
  return out;
}

std::vector<int> TraceStore::CarIds() const {
  std::set<int> ids;
  for (const Trip& t : trips_) ids.insert(t.car_id);
  return std::vector<int>(ids.begin(), ids.end());
}

Result<const Trip*> TraceStore::FindTrip(int64_t trip_id) const {
  const auto it = by_id_.find(trip_id);
  if (it == by_id_.end()) {
    return Status::NotFound(
        StrFormat("trip %lld not found", static_cast<long long>(trip_id)));
  }
  return &trips_[it->second];
}

}  // namespace trace
}  // namespace taxitrace
