#include <gtest/gtest.h>

#include "taxitrace/trace/trace_query.h"

namespace taxitrace {
namespace trace {
namespace {

const geo::LatLon kOrigin{65.0121, 25.4682};

// Builds a trip of `n` points along a line starting at local (x0, y0).
Trip LineTrip(int64_t id, double t0, double x0, double y0, int n,
              const geo::LocalProjection& proj) {
  Trip trip;
  trip.trip_id = id;
  trip.car_id = 1;
  for (int i = 0; i < n; ++i) {
    RoutePoint p;
    p.point_id = i + 1;
    p.trip_id = id;
    p.timestamp_s = t0 + 10.0 * i;
    p.position = proj.Inverse(geo::EnPoint{x0 + 30.0 * i, y0});
    trip.points.push_back(p);
  }
  return trip;
}

class TraceQueryTest : public testing::Test {
 protected:
  TraceQueryTest() : proj_(kOrigin) {
    // Trip 1: near the origin, t 0..90.
    EXPECT_TRUE(store_.AddTrip(LineTrip(1, 0.0, 0, 0, 10, proj_)).ok());
    // Trip 2: 2 km east, t 1000..1090.
    EXPECT_TRUE(
        store_.AddTrip(LineTrip(2, 1000.0, 2000, 0, 10, proj_)).ok());
    // Trip 3: 2 km north, t 50..140 (overlaps trip 1 in time).
    EXPECT_TRUE(
        store_.AddTrip(LineTrip(3, 50.0, 0, 2000, 10, proj_)).ok());
  }

  geo::LocalProjection proj_;
  TraceStore store_;
};

TEST_F(TraceQueryTest, TimeRangeOverlap) {
  EXPECT_EQ(TripsInTimeRange(store_, 0.0, 200.0).size(), 2u);
  EXPECT_EQ(TripsInTimeRange(store_, 95.0, 130.0).size(), 1u);  // trip 3
  EXPECT_EQ(TripsInTimeRange(store_, 2000.0, 3000.0).size(), 0u);
  // Boundary containment: exact end time matches.
  EXPECT_EQ(TripsInTimeRange(store_, 90.0, 90.0).size(), 2u);
}

TEST_F(TraceQueryTest, BboxQuery) {
  const geo::Bbox near_origin{-100, -100, 400, 100};
  const auto trips = TripsIntersectingBbox(store_, near_origin, proj_);
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0]->trip_id, 1);
  const geo::Bbox everything{-100, -100, 3000, 3000};
  EXPECT_EQ(TripsIntersectingBbox(store_, everything, proj_).size(), 3u);
}

TEST_F(TraceQueryTest, PolygonQueries) {
  // Triangle around the east trip's start.
  const geo::Polygon triangle(
      {{1900, -100}, {2150, -100}, {2025, 150}});
  const auto trips = TripsIntersectingPolygon(store_, triangle, proj_);
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0]->trip_id, 2);
  // At y = 0 the triangle spans x in (1950, 2100): points 2000, 2030,
  // 2060, 2090 are inside; 2120 falls outside the right edge.
  EXPECT_EQ(CountPointsWithinPolygon(store_, triangle, proj_), 4);
}

TEST_F(TraceQueryTest, TripBounds) {
  const geo::Bbox bounds = TripBounds(store_.trips()[0], proj_);
  ASSERT_TRUE(bounds.IsValid());
  EXPECT_NEAR(bounds.min_x, 0.0, 0.01);
  EXPECT_NEAR(bounds.max_x, 270.0, 0.01);
  EXPECT_NEAR(bounds.min_y, 0.0, 0.01);
  EXPECT_FALSE(TripBounds(Trip{}, proj_).IsValid());
}

}  // namespace
}  // namespace trace
}  // namespace taxitrace
