# Empty dependencies file for bench_text_aggregates.
# This may be replaced when dependencies are built.
