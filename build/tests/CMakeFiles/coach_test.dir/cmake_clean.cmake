file(REMOVE_RECURSE
  "CMakeFiles/coach_test.dir/coach_test.cc.o"
  "CMakeFiles/coach_test.dir/coach_test.cc.o.d"
  "coach_test"
  "coach_test.pdb"
  "coach_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
