#include "taxitrace/common/status.h"

namespace taxitrace {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace taxitrace
