// Known-good: pointers as mapped VALUES are fine; only pointer keys
// and pointer comparators order by address.

#include "taxitrace/core/fake.h"

namespace taxitrace {

struct Vertex;

void GoodValueTypes() {
  std::map<int, Vertex*> by_id;
  std::set<std::pair<int, int>> pairs;
  std::map<std::string, int> by_name;
  std::priority_queue<std::pair<double, int>> heap;
  (void)by_id;
  (void)pairs;
  (void)by_name;
  (void)heap;
}

}  // namespace taxitrace
