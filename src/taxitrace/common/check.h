// Checked invariants: TT_CHECK and friends.
//
// Unlike assert(), TT_CHECK is active in every build type. The pipeline's
// whole purpose is reliable information extraction; an invariant that is
// only enforced in Debug builds is not an invariant. A failed check prints
// the expression, file:line and an optional message to stderr, then aborts
// so sanitizers and core dumps capture the exact failure point.
//
//   TT_CHECK(cond)            abort unless cond, all build types
//   TT_CHECK_MSG(cond, msg)   same, with an extra explanatory message
//   TT_CHECK_OK(status)       abort unless the Status expression is ok()
//   TT_DCHECK(cond)           TT_CHECK in Debug, compiled out otherwise —
//                             reserved for per-element hot-path checks

#ifndef TAXITRACE_COMMON_CHECK_H_
#define TAXITRACE_COMMON_CHECK_H_

#include <string>
#include <string_view>

namespace taxitrace {
namespace internal {

/// Prints "TT_CHECK failed: <expr> at <file>:<line>[: <detail>]" to stderr
/// and aborts. Out of line so the fast path stays a single branch.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              std::string_view detail);

/// Failure detail for TT_CHECK_OK: works for Status (ToString) and
/// Result<T> (status().ToString()) without including either header.
template <typename T>
std::string StatusDetail(const T& v) {
  if constexpr (requires { v.ToString(); }) {
    return v.ToString();
  } else {
    return v.status().ToString();
  }
}

}  // namespace internal
}  // namespace taxitrace

#define TT_CHECK(cond)                                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::taxitrace::internal::CheckFailed(#cond, __FILE__, __LINE__, ""); \
    }                                                                    \
  } while (false)

#define TT_CHECK_MSG(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::taxitrace::internal::CheckFailed(#cond, __FILE__, __LINE__, msg); \
    }                                                                     \
  } while (false)

/// Checks that a Status (or Result) expression is ok(); reports its
/// ToString()/status() message on failure. Evaluates the expression once.
#define TT_CHECK_OK(expr)                                                    \
  do {                                                                       \
    const auto& _tt_st = (expr);                                             \
    if (!_tt_st.ok()) {                                                      \
      ::taxitrace::internal::CheckFailed(                                    \
          #expr " is OK", __FILE__, __LINE__,                                \
          ::taxitrace::internal::StatusDetail(_tt_st));                      \
    }                                                                        \
  } while (false)

#ifndef NDEBUG
#define TT_DCHECK(cond) TT_CHECK(cond)
#define TT_DCHECK_MSG(cond, msg) TT_CHECK_MSG(cond, msg)
#else
#define TT_DCHECK(cond) \
  do {                  \
  } while (false)
#define TT_DCHECK_MSG(cond, msg) \
  do {                           \
  } while (false)
#endif

#endif  // TAXITRACE_COMMON_CHECK_H_
