# Empty compiler generated dependencies file for taxitrace_clean.
# This may be replaced when dependencies are built.
