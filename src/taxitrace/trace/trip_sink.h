// Streaming consumer of finished trips. Producers (the fleet
// simulator) hand each trip to the sink exactly once, in a
// deterministic order that never depends on worker count, so a sink
// can process, clean, or discard trips one at a time without the whole
// raw trace ever materialising in memory.

#ifndef TAXITRACE_TRACE_TRIP_SINK_H_
#define TAXITRACE_TRACE_TRIP_SINK_H_

#include "taxitrace/common/result.h"
#include "taxitrace/trace/trace_store.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace trace {

/// Receives finished trips one at a time. Calls arrive serialised (the
/// producer holds a lock around delivery) and in a deterministic order,
/// so implementations need no synchronisation of their own but should
/// keep Consume cheap — it sits on the producer's critical path.
class TripSink {
 public:
  virtual ~TripSink() = default;

  /// Takes ownership of one finished trip. A non-OK status aborts the
  /// producing run and is propagated to its caller.
  virtual Status Consume(Trip trip) = 0;
};

/// A TripSink that accumulates trips into a TraceStore — the in-memory
/// mode expressed as a sink, and the adapter behind
/// FleetSimulator::Run's store-returning overload.
class StoreTripSink final : public TripSink {
 public:
  explicit StoreTripSink(TraceStore* store) : store_(store) {}

  Status Consume(Trip trip) override {
    return store_->AddTrip(std::move(trip));
  }

 private:
  TraceStore* store_;
};

}  // namespace trace
}  // namespace taxitrace

#endif  // TAXITRACE_TRACE_TRIP_SINK_H_
