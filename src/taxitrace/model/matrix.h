// Small dense matrices for the regression models. Row-major storage;
// sized for the mixed-model equations (tens of columns), not for BLAS
// workloads.

#ifndef TAXITRACE_MODEL_MATRIX_H_
#define TAXITRACE_MODEL_MATRIX_H_

#include <cstddef>
#include <vector>

#include "taxitrace/common/check.h"

namespace taxitrace {
namespace model {

/// Dense column vector.
using Vector = std::vector<double>;

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix of the given size.
  static Matrix Identity(size_t n);

  [[nodiscard]] size_t rows() const { return rows_; }
  [[nodiscard]] size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    TT_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    TT_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// this * other. Dimensions must agree.
  [[nodiscard]] Matrix Multiply(const Matrix& other) const;

  /// this * v. v.size() must equal cols().
  [[nodiscard]] Vector MultiplyVector(const Vector& v) const;

  /// Transposed copy.
  [[nodiscard]] Matrix Transposed() const;

  /// this + other (same shape).
  [[nodiscard]] Matrix Plus(const Matrix& other) const;

  /// Scales every entry.
  [[nodiscard]] Matrix Scaled(double s) const;

  /// Max |a_ij - b_ij| over all entries (shapes must agree).
  [[nodiscard]] double MaxAbsDiff(const Matrix& other) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// a . b for equal-length vectors.
double DotProduct(const Vector& a, const Vector& b);

/// Rank-one update target += s * v v^T (target must be square with
/// v.size() rows).
void AddOuterProduct(Matrix* target, const Vector& v, double s);

}  // namespace model
}  // namespace taxitrace

#endif  // TAXITRACE_MODEL_MATRIX_H_
