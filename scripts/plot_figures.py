#!/usr/bin/env python3
"""Render the paper's figures from a full_study output directory.

Usage:
    ./build/examples/full_study study_output
    python3 scripts/plot_figures.py study_output [plots]

Needs matplotlib; every figure is emitted as a PNG into the output
directory (default: <study_dir>/plots).
"""
import csv
import json
import os
import sys


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def save(fig, out_dir, name):
    path = os.path.join(out_dir, name)
    fig.savefig(path, dpi=150, bbox_inches="tight")
    print(f"wrote {path}")


def plot_speed_map(plt, study, out):
    rows = read_csv(os.path.join(study, "fig3_speed_map_taxi1.csv"))
    lon = [float(r["lon"]) for r in rows]
    lat = [float(r["lat"]) for r in rows]
    speed = [float(r["speed_kmh"]) for r in rows]
    fig, ax = plt.subplots(figsize=(7, 7))
    sc = ax.scatter(lon, lat, c=speed, s=4, cmap="RdYlGn")
    fig.colorbar(sc, label="speed (km/h)")
    ax.set_title("Fig. 3 — cleaned speed data, taxi 1")
    save(fig, out, "fig3_speed_map.png")


def plot_directions(plt, study, out):
    rows = read_csv(os.path.join(study, "fig4_fig5_speed_points_all.csv"))
    fig, axes = plt.subplots(2, 2, figsize=(10, 10), sharex=True, sharey=True)
    for ax, d in zip(axes.flat, ["T-S", "S-T", "T-L", "L-T"]):
        sel = [r for r in rows if r["direction"] == d]
        sc = ax.scatter([float(r["lon"]) for r in sel],
                        [float(r["lat"]) for r in sel],
                        c=[float(r["speed_kmh"]) for r in sel],
                        s=3, cmap="RdYlGn")
        ax.set_title(f"{d} ({len(sel)} points)")
    fig.suptitle("Fig. 4 — speeds by direction")
    fig.colorbar(sc, ax=axes, label="speed (km/h)")
    save(fig, out, "fig4_directions.png")


def plot_seasons(plt, study, out):
    rows = read_csv(os.path.join(study, "fig4_fig5_speed_points_all.csv"))
    fig, axes = plt.subplots(2, 2, figsize=(10, 10), sharex=True, sharey=True)
    for ax, season in zip(axes.flat, ["winter", "spring", "summer", "autumn"]):
        sel = [r for r in rows if r["season"] == season]
        if not sel:
            continue
        sc = ax.scatter([float(r["lon"]) for r in sel],
                        [float(r["lat"]) for r in sel],
                        c=[float(r["speed_kmh"]) for r in sel],
                        s=3, cmap="RdYlGn")
        ax.set_title(f"{season} ({len(sel)} points)")
    fig.suptitle("Fig. 5 — speeds by season")
    save(fig, out, "fig5_seasons.png")


def plot_cells(plt, study, out, name, title, prop):
    with open(os.path.join(study, name)) as f:
        collection = json.load(f)
    fig, ax = plt.subplots(figsize=(7, 7))
    values = []
    polys = []
    for feature in collection["features"]:
        v = feature["properties"].get(prop)
        if v is None:
            continue
        values.append(v)
        polys.append(feature["geometry"]["coordinates"][0])
    vmin, vmax = min(values), max(values)
    cmap = plt.get_cmap("RdYlGn")
    for v, ring in zip(values, polys):
        xs = [p[0] for p in ring]
        ys = [p[1] for p in ring]
        t = (v - vmin) / (vmax - vmin) if vmax > vmin else 0.5
        ax.fill(xs, ys, color=cmap(t), edgecolor="grey", linewidth=0.3)
    ax.set_title(title)
    save(fig, out, name.replace(".geojson", ".png"))


def plot_qq(plt, study, out):
    rows = read_csv(os.path.join(study, "fig7_qqplot.csv"))
    x = [float(r["theoretical_quantile"]) for r in rows]
    y = [float(r["sample_quantile_kmh"]) for r in rows]
    fig, ax = plt.subplots(figsize=(6, 6))
    ax.plot(x, y, "o", ms=3)
    lo, hi = min(x), max(x)
    scale = (max(y) - min(y)) / (hi - lo)
    ax.plot([lo, hi], [min(y), min(y) + (hi - lo) * scale], "--",
            color="grey")
    ax.set_xlabel("theoretical quantile")
    ax.set_ylabel("cell intercept (km/h)")
    ax.set_title("Fig. 7 — intercept QQ plot")
    save(fig, out, "fig7_qqplot.png")


def plot_intercepts(plt, study, out):
    rows = read_csv(os.path.join(study, "fig8_intercepts.csv"))
    rank = [int(r["rank"]) for r in rows]
    blup = [float(r["blup_kmh"]) for r in rows]
    lo = [float(r["lo95"]) for r in rows]
    hi = [float(r["hi95"]) for r in rows]
    fig, ax = plt.subplots(figsize=(9, 5))
    ax.errorbar(rank, blup,
                yerr=[[b - l for b, l in zip(blup, lo)],
                      [h - b for b, h in zip(blup, hi)]],
                fmt="o", ms=3, lw=0.8)
    ax.axhline(0, color="grey", lw=0.8)
    ax.set_xlabel("cell rank")
    ax.set_ylabel("intercept (km/h)")
    ax.set_title("Fig. 8 — cell intercepts with confidence limits")
    save(fig, out, "fig8_intercepts.png")


def plot_weather(plt, study, out):
    rows = read_csv(os.path.join(study, "fig10_weather_low_speed.csv"))
    classes = sorted({r["temperature_class"] for r in rows})
    few = {r["temperature_class"]: float(r["mean_low_speed_pct"])
           for r in rows if r["lights"].startswith("<")}
    many = {r["temperature_class"]: float(r["mean_low_speed_pct"])
            for r in rows if r["lights"].startswith(">=")}
    fig, ax = plt.subplots(figsize=(9, 5))
    xs = range(len(classes))
    ax.bar([x - 0.2 for x in xs], [few.get(c, 0) for c in classes],
           width=0.4, color="white", edgecolor="black", label="few lights")
    ax.bar([x + 0.2 for x in xs], [many.get(c, 0) for c in classes],
           width=0.4, color="grey", edgecolor="black", label="many lights")
    ax.set_xticks(list(xs), classes)
    ax.set_ylabel("low speed (%)")
    ax.set_title("Fig. 10 — low speed by temperature class")
    ax.legend()
    save(fig, out, "fig10_weather.png")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    study = sys.argv[1]
    out = sys.argv[2] if len(sys.argv) > 2 else os.path.join(study, "plots")
    os.makedirs(out, exist_ok=True)
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
    plot_speed_map(plt, study, out)
    plot_directions(plt, study, out)
    plot_seasons(plt, study, out)
    plot_cells(plt, study, out, "fig6_cell_map_LT.geojson",
               "Fig. 6 — cell mean speed, L-T", "mean_speed_kmh")
    plot_cells(plt, study, out, "fig9_intercept_map.geojson",
               "Fig. 9 — cell intercepts (BLUP)", "blup_kmh")
    plot_qq(plt, study, out)
    plot_intercepts(plt, study, out)
    plot_weather(plt, study, out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
