file(REMOVE_RECURSE
  "CMakeFiles/odselect_test.dir/odselect_test.cc.o"
  "CMakeFiles/odselect_test.dir/odselect_test.cc.o.d"
  "odselect_test"
  "odselect_test.pdb"
  "odselect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odselect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
