// Uniform-grid spatial index over edge geometry, used by map matching and
// feature attachment to find candidate edges near a GPS point quickly.

#ifndef TAXITRACE_ROADNET_SPATIAL_INDEX_H_
#define TAXITRACE_ROADNET_SPATIAL_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "taxitrace/common/executor.h"
#include "taxitrace/common/hash.h"
#include "taxitrace/roadnet/road_network.h"
#include "taxitrace/roadnet/tile.h"

namespace taxitrace {
namespace roadnet {

/// An edge near a query point, with the projection details.
struct EdgeCandidate {
  EdgeId edge = kInvalidEdge;
  geo::PolylineProjection projection;  ///< Nearest point on the edge.
};

/// Probe accounting, readable at any time via SpatialIndex::stats().
/// The counters are sums over deterministic per-query work, so their
/// totals are identical at any thread count.
struct SpatialIndexStats {
  int64_t queries = 0;        ///< Nearby() calls (Nearest() makes several).
  int64_t cells_probed = 0;   ///< grid-cell lookups performed.
  int64_t tiles_probed = 0;   ///< tile-directory lookups performed.
  int64_t candidates = 0;     ///< distinct edges distance-checked.
  int64_t hits = 0;           ///< candidates returned within the radius.
  int64_t empty_geometry_edges = 0;  ///< edges dropped at build time.
};

/// Uniform grid over the bounding box of a network's edges. Each cell
/// stores the edges whose geometry passes through it. The index is
/// immutable after construction and holds a pointer to the network, which
/// must outlive it.
///
/// Storage follows the network's tiling (tile.h): one dense row-major
/// CSR cell grid per occupied tile, found through a top-level tile
/// directory, so resident index memory scales with the tiles geometry
/// actually crosses and a probe inside a tile stays an array load. Cell
/// ownership is decided by the cell's lattice position alone, so every
/// cell lives in exactly one tile grid; a query walks the (usually one,
/// at most four) tiles overlapping its search square. On single-tile
/// networks there is exactly one grid and the layout, candidate set,
/// returned hits and stats() counters reproduce the historical flat
/// implementation exactly.
class SpatialIndex {
 public:
  /// Builds the index. `cell_size_m` trades memory for query precision;
  /// 50 m suits a downtown-scale network.
  explicit SpatialIndex(const RoadNetwork* network, double cell_size_m = 50.0);

  /// All edges with a point within `radius_m` of `p`, one candidate per
  /// edge (its closest projection), sorted by ascending distance.
  std::vector<EdgeCandidate> Nearby(const geo::EnPoint& p,
                                    double radius_m) const;

  /// The closest edge within `max_radius_m`, if any.
  std::optional<EdgeCandidate> Nearest(const geo::EnPoint& p,
                                       double max_radius_m) const;

  /// The network this index was built over.
  [[nodiscard]] const RoadNetwork& network() const { return *network_; }

  /// Number of per-tile cell grids (1 on single-tile networks).
  [[nodiscard]] size_t num_tile_grids() const { return grids_.size(); }

  /// Approximate resident bytes of the index storage.
  [[nodiscard]] size_t ApproxMemoryBytes() const;

  /// Snapshot of the probe counters accumulated so far.
  [[nodiscard]] SpatialIndexStats stats() const;

 private:
  struct CellKey {
    int32_t cx;
    int32_t cy;
    friend bool operator==(const CellKey&, const CellKey&) = default;
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      // Shared splitmix64 mix (common/hash.h): the previous ad-hoc
      // multiply/xor left low-bit column structure that collapsed
      // buckets at power-of-two table sizes.
      return static_cast<size_t>(HashCell2D(k.cx, k.cy));
    }
  };

  /// One tile's dense row-major cell grid, flattened CSR-style: cell
  /// (cx, cy) owns the edge ids cell_edges[cell_offsets[i] ..
  /// cell_offsets[i + 1]) with i = (cy - min_cy) * cols + (cx - min_cx).
  /// The extent spans only this tile's occupied cells.
  struct TileGrid {
    TileCoord coord;
    int32_t min_cx = 0;
    int32_t min_cy = 0;
    int32_t cols = 0;
    int32_t rows = 0;
    std::vector<int32_t> cell_offsets;
    std::vector<EdgeId> cell_edges;
  };

  [[nodiscard]] CellKey KeyFor(const geo::EnPoint& p) const;

  /// Tile owning cell (cx, cy): the tile containing the cell's min
  /// corner. All tiles when tiling is off is the single {0, 0}.
  [[nodiscard]] TileCoord OwnerTileOf(int32_t cx, int32_t cy) const;

  // Query counters live behind a shared_ptr so the index stays
  // copyable; queries batch their increments (a handful of relaxed
  // atomic adds per call) to keep the hot path unchanged.
  struct AtomicStats {
    std::atomic<int64_t> queries{0};
    std::atomic<int64_t> cells_probed{0};
    std::atomic<int64_t> tiles_probed{0};
    std::atomic<int64_t> candidates{0};
    std::atomic<int64_t> hits{0};
  };

  const RoadNetwork* network_;
  double cell_size_m_;
  double tile_size_m_;  ///< 0 when the network is single-tile.
  std::vector<TileGrid> grids_;
  /// Top-level directory: tile lattice coordinate -> index into grids_.
  std::unordered_map<TileCoord, int32_t, TileCoordHash> tile_directory_;
  // Bounding box of each edge's geometry, indexed by edge *ordinal*
  // (RoadNetwork::EdgeOrdinal; == id on single-tile maps). The box
  // encloses the polyline, so a point farther than `r` from the box is
  // farther than `r` from the edge — a safe pre-projection reject.
  std::vector<geo::Bbox> edge_bounds_;
  // Per-worker query scratch: the gathered-candidate list and a
  // generation-stamped seen marker per edge ordinal (same trick as the
  // router's SearchScratch), so a query deduplicates with one array
  // read per gathered id and allocates nothing in steady state. Purely
  // an execution detail — the deduplicated set is what the old
  // per-query sort produced, and the output is fully re-ordered
  // afterwards.
  struct QueryScratch {
    std::vector<EdgeId> gathered;
    std::vector<uint32_t> seen_stamp;
    uint32_t generation = 0;
  };
  std::shared_ptr<WorkerLocal<QueryScratch>> scratch_;
  std::shared_ptr<AtomicStats> query_stats_;
  int64_t empty_geometry_edges_ = 0;
};

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_SPATIAL_INDEX_H_
