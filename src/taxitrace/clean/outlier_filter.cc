#include "taxitrace/clean/outlier_filter.h"

#include <cmath>
#include <cstddef>

namespace taxitrace {
namespace clean {
namespace {

// True when b is a position spike between a and c: far from both while a
// and c are near each other.
bool IsSpike(const trace::RoutePoint& a, const trace::RoutePoint& b,
             const trace::RoutePoint& c,
             const OutlierFilterOptions& options) {
  const double ab = geo::HaversineMeters(a.position, b.position);
  const double bc = geo::HaversineMeters(b.position, c.position);
  if (ab < options.spike_distance_m || bc < options.spike_distance_m) {
    return false;
  }
  const double ac = geo::HaversineMeters(a.position, c.position);
  return ac < options.spike_closeness_ratio * (ab + bc);
}

// True when moving from a to b implies an impossible speed.
bool ImpliedSpeedTooHigh(const trace::RoutePoint& a,
                         const trace::RoutePoint& b,
                         const OutlierFilterOptions& options) {
  const double dt = b.timestamp_s - a.timestamp_s;
  if (dt <= 0.0) return false;  // handled by duplicate/order logic
  const double d = geo::HaversineMeters(a.position, b.position);
  return d / dt > options.max_implied_speed_ms;
}

}  // namespace

void FilterOutliers(std::vector<trace::RoutePoint>* points,
                    const OutlierFilterOptions& options,
                    OutlierFilterStats* stats) {
  OutlierFilterStats local;
  std::vector<trace::RoutePoint>& pts = *points;

  // Pass 1: duplicates (identical id and timestamp as the predecessor).
  {
    std::vector<trace::RoutePoint> out;
    out.reserve(pts.size());
    for (const trace::RoutePoint& p : pts) {
      if (!out.empty() && out.back().point_id == p.point_id &&
          out.back().timestamp_s == p.timestamp_s) {
        ++local.duplicates_removed;
        continue;
      }
      out.push_back(p);
    }
    pts = std::move(out);
  }

  // Passes 2+3 iterate to a joint fixpoint: dropping an implied-speed
  // offender changes its neighbours' adjacency, which can expose a spike
  // the earlier scan could not see (e.g. a cluster of displaced points
  // where each shielded the next), and vice versa.
  bool round_changed = true;
  while (round_changed) {
    round_changed = false;

    // Spikes — iterate because removing a spike may expose another.
    bool changed = true;
    while (changed && pts.size() >= 3) {
      changed = false;
      for (size_t i = 1; i + 1 < pts.size(); ++i) {
        if (IsSpike(pts[i - 1], pts[i], pts[i + 1], options)) {
          pts.erase(pts.begin() + static_cast<ptrdiff_t>(i));
          ++local.spikes_removed;
          changed = true;
          round_changed = true;
          break;
        }
      }
    }

    // Impossible implied speeds (drop the later point of the pair; a bad
    // first fix surfaces as its successor looking too fast, so also
    // check and drop a leading offender against its two successors).
    {
      std::vector<trace::RoutePoint> out;
      out.reserve(pts.size());
      for (const trace::RoutePoint& p : pts) {
        if (!out.empty() && ImpliedSpeedTooHigh(out.back(), p, options)) {
          ++local.implied_speed_removed;
          round_changed = true;
          continue;
        }
        out.push_back(p);
      }
      pts = std::move(out);
    }
  }

  if (stats != nullptr) {
    stats->duplicates_removed += local.duplicates_removed;
    stats->spikes_removed += local.spikes_removed;
    stats->implied_speed_removed += local.implied_speed_removed;
  }
}

void FilterTripOutliers(trace::Trip* trip,
                        const OutlierFilterOptions& options,
                        OutlierFilterStats* stats) {
  FilterOutliers(&trip->points, options, stats);
  trip->RecomputeTotals();
}

}  // namespace clean
}  // namespace taxitrace
