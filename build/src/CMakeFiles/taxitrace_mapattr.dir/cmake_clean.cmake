file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_mapattr.dir/taxitrace/mapattr/attribute_fetcher.cc.o"
  "CMakeFiles/taxitrace_mapattr.dir/taxitrace/mapattr/attribute_fetcher.cc.o.d"
  "libtaxitrace_mapattr.a"
  "libtaxitrace_mapattr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_mapattr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
