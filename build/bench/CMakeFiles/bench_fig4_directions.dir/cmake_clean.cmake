file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_directions.dir/bench_fig4_directions.cc.o"
  "CMakeFiles/bench_fig4_directions.dir/bench_fig4_directions.cc.o.d"
  "bench_fig4_directions"
  "bench_fig4_directions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_directions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
