file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_coach.dir/taxitrace/coach/advisor.cc.o"
  "CMakeFiles/taxitrace_coach.dir/taxitrace/coach/advisor.cc.o.d"
  "CMakeFiles/taxitrace_coach.dir/taxitrace/coach/driver_profile.cc.o"
  "CMakeFiles/taxitrace_coach.dir/taxitrace/coach/driver_profile.cc.o.d"
  "CMakeFiles/taxitrace_coach.dir/taxitrace/coach/trip_score.cc.o"
  "CMakeFiles/taxitrace_coach.dir/taxitrace/coach/trip_score.cc.o.d"
  "libtaxitrace_coach.a"
  "libtaxitrace_coach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_coach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
