file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/bootstrap.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/bootstrap.cc.o.d"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/cell_stats.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/cell_stats.cc.o.d"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/feature_model.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/feature_model.cc.o.d"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/grid.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/grid.cc.o.d"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/hotspot_detector.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/hotspot_detector.cc.o.d"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/od_matrix.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/od_matrix.cc.o.d"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/route_frequency.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/route_frequency.cc.o.d"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/route_stats.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/route_stats.cc.o.d"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/seasons.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/seasons.cc.o.d"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/speed_categories.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/speed_categories.cc.o.d"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/speed_profile.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/speed_profile.cc.o.d"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/summary_stats.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/summary_stats.cc.o.d"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/temporal.cc.o"
  "CMakeFiles/taxitrace_analysis.dir/taxitrace/analysis/temporal.cc.o.d"
  "libtaxitrace_analysis.a"
  "libtaxitrace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
