#include "taxitrace/serve/query_engine.h"

#include <algorithm>
#include <cmath>

namespace taxitrace {
namespace serve {

QueryEngine::QueryEngine(const Snapshot* snapshot)
    : snapshot_(snapshot), grid_(snapshot->meta().cell_size_m) {}

bool QueryEngine::InBounds(const analysis::CellId& cell) const {
  const SnapshotMeta& meta = snapshot_->meta();
  return cell.cx >= meta.min_cx && cell.cx <= meta.max_cx &&
         cell.cy >= meta.min_cy && cell.cy <= meta.max_cy;
}

void QueryEngine::Fill(int64_t cell_index, const CellMoments& moments,
                       CellStats* out) const {
  out->cell = snapshot_->cell(cell_index);
  out->n = moments.n;
  out->mean_speed_kmh = moments.mean;
  out->speed_variance = moments.Variance();
  out->features = snapshot_->features(cell_index);
  out->model = snapshot_->model(cell_index);
}

QueryOutcome QueryEngine::PointQuery(const geo::EnPoint& position,
                                     int64_t slice_index, CellStats* out) {
  return CellQuery(grid_.CellOf(position), slice_index, out);
}

QueryOutcome QueryEngine::CellQuery(const analysis::CellId& cell,
                                    int64_t slice_index, CellStats* out) {
  ++stats_.offered;
  if (!InBounds(cell)) {
    ++stats_.out_of_bounds;
    return QueryOutcome::kOutOfBounds;
  }
  const int64_t index = snapshot_->FindCell(cell);
  if (index < 0 || slice_index < 0 ||
      slice_index >= snapshot_->num_slices()) {
    ++stats_.empty_cell;
    return QueryOutcome::kEmptyCell;
  }
  const CellMoments moments = snapshot_->moments(slice_index, index);
  if (moments.n <= 0) {
    ++stats_.empty_cell;
    return QueryOutcome::kEmptyCell;
  }
  if (out != nullptr) Fill(index, moments, out);
  ++stats_.answered;
  return QueryOutcome::kAnswered;
}

QueryOutcome QueryEngine::BboxQuery(const geo::Bbox& box,
                                    int64_t slice_index,
                                    std::vector<CellStats>* out) {
  ++stats_.offered;
  const SnapshotMeta& meta = snapshot_->meta();
  const analysis::CellId lo = grid_.CellOf(geo::EnPoint{box.min_x, box.min_y});
  const analysis::CellId hi = grid_.CellOf(geo::EnPoint{box.max_x, box.max_y});
  const int32_t cx_lo = std::max(lo.cx, meta.min_cx);
  const int32_t cx_hi = std::min(hi.cx, meta.max_cx);
  const int32_t cy_lo = std::max(lo.cy, meta.min_cy);
  const int32_t cy_hi = std::min(hi.cy, meta.max_cy);
  if (cx_lo > cx_hi || cy_lo > cy_hi || slice_index < 0 ||
      slice_index >= snapshot_->num_slices()) {
    ++stats_.out_of_bounds;
    return QueryOutcome::kOutOfBounds;
  }
  // Walk each covered column from its first indexed cell >= cy_lo; the
  // index is sorted by (cx, cy), so each column is one contiguous run.
  size_t appended = 0;
  for (int32_t cx = cx_lo; cx <= cx_hi; ++cx) {
    int64_t lo_index = 0;
    int64_t hi_index = snapshot_->num_cells();
    while (lo_index < hi_index) {
      const int64_t mid = lo_index + (hi_index - lo_index) / 2;
      const analysis::CellId c = snapshot_->cell(mid);
      if (c.cx < cx || (c.cx == cx && c.cy < cy_lo)) {
        lo_index = mid + 1;
      } else {
        hi_index = mid;
      }
    }
    for (int64_t i = lo_index; i < snapshot_->num_cells(); ++i) {
      const analysis::CellId c = snapshot_->cell(i);
      if (c.cx != cx || c.cy > cy_hi) break;
      const CellMoments moments = snapshot_->moments(slice_index, i);
      if (moments.n <= 0) continue;
      if (out != nullptr) {
        CellStats stats;
        Fill(i, moments, &stats);
        out->push_back(stats);
      }
      ++appended;
    }
  }
  if (appended == 0) {
    ++stats_.empty_cell;
    return QueryOutcome::kEmptyCell;
  }
  ++stats_.answered;
  return QueryOutcome::kAnswered;
}

QueryOutcome QueryEngine::SliceQuery(const geo::EnPoint& position,
                                     SliceKind kind, int32_t param,
                                     CellStats* out) {
  return CellQuery(grid_.CellOf(position), snapshot_->FindSlice(kind, param),
                   out);
}

}  // namespace serve
}  // namespace taxitrace
