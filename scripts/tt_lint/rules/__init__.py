"""Rule registry and pass-1 repo-wide fact collection."""

from __future__ import annotations

from ..cxx import CXX_KEYWORDS, match_angle
from ..engine import RepoContext, SUPPRESSION_REASON, UNUSED_SUPPRESSION
from ..tokenizer import ID, PUNCT

UNORDERED_TYPES = frozenset({
    "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset",
})


def collect_repo_facts(ctx: RepoContext) -> None:
    for sf in ctx.files:
        _collect_status_fns(ctx, sf)
        _collect_unordered_decls(ctx, sf)


def _collect_status_fns(ctx: RepoContext, sf) -> None:
    """Names of functions declared to return Status in headers.

    Status's own factories (OK, NotFound, ...) are value producers, not
    fallible calls, so common/status.h is skipped."""
    if not sf.rel.endswith(".h"):
        return
    if sf.rel == "src/taxitrace/common/status.h":
        return
    toks = sf.tokens
    for i, t in enumerate(toks):
        if t.kind != ID or t.value != "Status":
            continue
        if i + 2 >= len(toks):
            continue
        name_tok = toks[i + 1]
        if name_tok.kind != ID or name_tok.value in CXX_KEYWORDS:
            continue
        if toks[i + 2].value != "(":
            continue
        prev = toks[i - 1] if i > 0 else None
        if prev is not None and prev.kind == PUNCT \
                and prev.value in (".", "->", "<"):
            continue
        if name_tok.value in ("OK", "Status"):
            continue
        ctx.status_fns.add(name_tok.value)


def _collect_unordered_decls(ctx: RepoContext, sf) -> None:
    """Variables/members declared with an unordered container type, and
    functions returning one. Feeds the unordered-iteration rule."""
    toks = sf.tokens
    n = len(toks)
    file_vars = ctx.unordered_vars_by_file.setdefault(sf.rel, set())
    for i, t in enumerate(toks):
        if t.kind != ID or t.value not in UNORDERED_TYPES:
            continue
        j = i + 1
        if j >= n or toks[j].value != "<":
            continue
        j = match_angle(toks, j)
        if j < 0 or j >= n:
            continue
        # Skip ref/pointer/const decoration after the template args.
        while j < n and toks[j].kind == PUNCT \
                and toks[j].value in ("&", "*", "&&"):
            j += 1
        while j < n and toks[j].kind == ID and toks[j].value == "const":
            j += 1
        if j >= n or toks[j].kind != ID \
                or toks[j].value in CXX_KEYWORDS:
            continue
        name = toks[j].value
        after = toks[j + 1].value if j + 1 < n else ""
        if after == "(":
            ctx.unordered_fns.add(name)
        elif after in (";", "=", "{", ",", ")"):
            file_vars.add(name)
            ctx.unordered_member_vars.add(name)


def all_rules():
    """(file_rules, repo_rules) in catalogue order."""
    from . import determinism, idiom, repo
    file_rules = [
        idiom.BareAssert(),
        idiom.RawThread(),
        idiom.AdhocTiming(),
        idiom.LinearReset(),
        idiom.ResultOkStatus(),
        idiom.IncludePath(),
        idiom.IgnoredStatus(),
        idiom.FlatGraphIndex(),
        determinism.UnorderedIteration(),
        determinism.AmbientEntropy(),
        determinism.PointerKeyedOrder(),
        determinism.ParallelAccumulation(),
        determinism.RelaxedAtomic(),
    ]
    repo_rules = [repo.UnregisteredTest()]
    return file_rules, repo_rules


def rule_catalogue():
    """Metadata for --list-rules and SARIF: [(id, summary)]."""
    file_rules, repo_rules = all_rules()
    cat = [(r.name, r.short) for r in file_rules + repo_rules]
    cat.append((SUPPRESSION_REASON,
               "a tt-lint suppression must carry a reason"))
    cat.append((UNUSED_SUPPRESSION,
               "a tt-lint suppression that never fires must be deleted"))
    return cat
