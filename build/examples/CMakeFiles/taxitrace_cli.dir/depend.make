# Empty dependencies file for taxitrace_cli.
# This may be replaced when dependencies are built.
