#include "taxitrace/roadnet/spatial_index.h"

// tt-lint: allow-file(relaxed-atomic): query tallies batched into a
// few relaxed adds per query and exported via stats() for obs metrics;
// sums of deterministic per-query work, never fed into StudyResults.

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace taxitrace {
namespace roadnet {

SpatialIndex::SpatialIndex(const RoadNetwork* network, double cell_size_m)
    : network_(network),
      cell_size_m_(cell_size_m),
      scratch_(std::make_shared<WorkerLocal<QueryScratch>>()),
      query_stats_(std::make_shared<AtomicStats>()) {
  // Build pass: collect each edge's cells into a keyed map first (the
  // set of cells is sparse and unknown up front), then flatten into the
  // dense grid below.
  std::unordered_map<CellKey, std::vector<EdgeId>, CellKeyHash> cells;
  edge_bounds_.resize(network_->edges().size(), geo::Bbox::Empty());
  for (const Edge& e : network_->edges()) {
    const std::vector<geo::EnPoint>& pts = e.geometry.points();
    if (pts.empty()) {
      // An edge with no geometry has no position to index; dropping it
      // here would make Nearby/Nearest silently blind to it, so the
      // drop is counted and surfaced through stats().
      ++empty_geometry_edges_;
      continue;
    }
    geo::Bbox& bounds = edge_bounds_[static_cast<size_t>(e.id)];
    for (const geo::EnPoint& p : pts) bounds.Extend(p);
    std::unordered_set<uint64_t> edge_cells;
    const auto insert_cell = [&](const geo::EnPoint& p) {
      const CellKey key = KeyFor(p);
      const uint64_t packed =
          (static_cast<uint64_t>(static_cast<uint32_t>(key.cx)) << 32) |
          static_cast<uint32_t>(key.cy);
      if (edge_cells.insert(packed).second) {
        cells[key].push_back(e.id);
      }
    };
    if (pts.size() == 1) {
      // Single-point (zero-length) geometry: the old segment loop
      // skipped these edges entirely and queries near them missed a
      // real edge. Index the lone point's cell instead.
      insert_cell(pts[0]);
      continue;
    }
    for (size_t i = 0; i + 1 < pts.size(); ++i) {
      // Walk the segment at sub-cell steps so no crossed cell is missed.
      const double len = geo::Distance(pts[i], pts[i + 1]);
      const int steps =
          std::max(1, static_cast<int>(std::ceil(len / (cell_size_m_ / 2))));
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        insert_cell(pts[i] + t * (pts[i + 1] - pts[i]));
      }
    }
  }

  // Flatten to a dense row-major CSR grid spanning the occupied cells.
  if (!cells.empty()) {
    int32_t min_cx = cells.begin()->first.cx;
    int32_t max_cx = min_cx;
    int32_t min_cy = cells.begin()->first.cy;
    int32_t max_cy = min_cy;
    for (const auto& [key, edges] : cells) {
      min_cx = std::min(min_cx, key.cx);
      max_cx = std::max(max_cx, key.cx);
      min_cy = std::min(min_cy, key.cy);
      max_cy = std::max(max_cy, key.cy);
    }
    grid_min_cx_ = min_cx;
    grid_min_cy_ = min_cy;
    grid_cols_ = max_cx - min_cx + 1;
    grid_rows_ = max_cy - min_cy + 1;
    const size_t num_cells =
        static_cast<size_t>(grid_cols_) * static_cast<size_t>(grid_rows_);
    cell_offsets_.assign(num_cells + 1, 0);
    for (const auto& [key, edges] : cells) {
      const size_t i =
          static_cast<size_t>(key.cy - grid_min_cy_) *
              static_cast<size_t>(grid_cols_) +
          static_cast<size_t>(key.cx - grid_min_cx_);
      cell_offsets_[i + 1] = static_cast<int32_t>(edges.size());
    }
    for (size_t i = 1; i < cell_offsets_.size(); ++i) {
      cell_offsets_[i] += cell_offsets_[i - 1];
    }
    cell_edges_.resize(static_cast<size_t>(cell_offsets_.back()));
    for (const auto& [key, edges] : cells) {
      const size_t i =
          static_cast<size_t>(key.cy - grid_min_cy_) *
              static_cast<size_t>(grid_cols_) +
          static_cast<size_t>(key.cx - grid_min_cx_);
      std::copy(edges.begin(), edges.end(),
                cell_edges_.begin() + cell_offsets_[i]);
    }
  }
}

SpatialIndex::CellKey SpatialIndex::KeyFor(const geo::EnPoint& p) const {
  return CellKey{static_cast<int32_t>(std::floor(p.x / cell_size_m_)),
                 static_cast<int32_t>(std::floor(p.y / cell_size_m_))};
}

std::vector<EdgeCandidate> SpatialIndex::Nearby(const geo::EnPoint& p,
                                                double radius_m) const {
  // Gather candidate edges from all cells overlapping the query disc's
  // bounding square, padded by one cell so edge geometry that merely
  // passes near a cell corner is still found.
  const int reach =
      static_cast<int>(std::ceil(radius_m / cell_size_m_)) + 1;
  const CellKey center = KeyFor(p);
  int64_t cells_probed = 0;
  QueryScratch& scratch = scratch_->Local();
  if (scratch.seen_stamp.size() < edge_bounds_.size()) {
    scratch.seen_stamp.assign(edge_bounds_.size(), 0);
    scratch.generation = 0;
  }
  if (++scratch.generation == 0) {  // stamp wrap: invalidate everything
    std::fill(scratch.seen_stamp.begin(), scratch.seen_stamp.end(), 0);
    scratch.generation = 1;
  }
  const uint32_t gen = scratch.generation;
  std::vector<EdgeId>& gathered = scratch.gathered;
  gathered.clear();
  for (int dx = -reach; dx <= reach; ++dx) {
    for (int dy = -reach; dy <= reach; ++dy) {
      ++cells_probed;
      const int64_t cx = static_cast<int64_t>(center.cx) + dx - grid_min_cx_;
      const int64_t cy = static_cast<int64_t>(center.cy) + dy - grid_min_cy_;
      if (cx < 0 || cx >= grid_cols_ || cy < 0 || cy >= grid_rows_) continue;
      const size_t i = static_cast<size_t>(cy) *
                           static_cast<size_t>(grid_cols_) +
                       static_cast<size_t>(cx);
      for (int32_t k = cell_offsets_[i]; k < cell_offsets_[i + 1]; ++k) {
        const EdgeId id = cell_edges_[static_cast<size_t>(k)];
        uint32_t& stamp = scratch.seen_stamp[static_cast<size_t>(id)];
        if (stamp != gen) {
          stamp = gen;
          gathered.push_back(id);
        }
      }
    }
  }

  // Pre-projection reject against the edge's geometry bounds. The slack
  // keeps the reject strictly conservative against floating-point
  // rounding of the squared distance: an edge is only skipped when its
  // whole bounding box - and therefore its polyline - is beyond the
  // radius, so the surviving projections produce exactly the candidates
  // the unfiltered loop would.
  const double limit = radius_m + 1e-6;
  const double limit_sq = limit * limit;
  std::vector<EdgeCandidate> out;
  out.reserve(8);
  for (EdgeId id : gathered) {
    const geo::Bbox& b = edge_bounds_[static_cast<size_t>(id)];
    const double ddx = std::max({b.min_x - p.x, 0.0, p.x - b.max_x});
    const double ddy = std::max({b.min_y - p.y, 0.0, p.y - b.max_y});
    if (ddx * ddx + ddy * ddy > limit_sq) continue;
    const geo::PolylineProjection proj =
        network_->edge(id).geometry.Project(p);
    if (proj.distance <= radius_m) {
      out.push_back(EdgeCandidate{id, proj});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EdgeCandidate& a, const EdgeCandidate& b) {
              if (a.projection.distance != b.projection.distance) {
                return a.projection.distance < b.projection.distance;
              }
              return a.edge < b.edge;
            });

  // Counters are batched into a few relaxed adds per query; sums over
  // deterministic per-query work, so totals are thread-count-invariant.
  query_stats_->queries.fetch_add(1, std::memory_order_relaxed);
  query_stats_->cells_probed.fetch_add(cells_probed,
                                       std::memory_order_relaxed);
  query_stats_->candidates.fetch_add(
      static_cast<int64_t>(gathered.size()),
      std::memory_order_relaxed);
  query_stats_->hits.fetch_add(static_cast<int64_t>(out.size()),
                               std::memory_order_relaxed);
  return out;
}

std::optional<EdgeCandidate> SpatialIndex::Nearest(
    const geo::EnPoint& p, double max_radius_m) const {
  // Expand the search ring until a hit is found or the cap is reached.
  double radius = cell_size_m_;
  while (radius < max_radius_m * 2) {
    std::vector<EdgeCandidate> found = Nearby(p, std::min(radius, max_radius_m));
    if (!found.empty()) return found.front();
    if (radius >= max_radius_m) break;
    radius *= 2;
  }
  return std::nullopt;
}

SpatialIndexStats SpatialIndex::stats() const {
  SpatialIndexStats s;
  s.queries = query_stats_->queries.load(std::memory_order_relaxed);
  s.cells_probed = query_stats_->cells_probed.load(std::memory_order_relaxed);
  s.candidates = query_stats_->candidates.load(std::memory_order_relaxed);
  s.hits = query_stats_->hits.load(std::memory_order_relaxed);
  s.empty_geometry_edges = empty_geometry_edges_;
  return s;
}

}  // namespace roadnet
}  // namespace taxitrace
