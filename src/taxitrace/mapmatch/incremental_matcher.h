// Incremental map matching (Section IV-E): the greedy position +
// orientation matcher of Brakatsoulas et al. (VLDB'05), enhanced with
// travel-direction information from the digital map and with Dijkstra
// gap filling when consecutive points are far apart.

#ifndef TAXITRACE_MAPMATCH_INCREMENTAL_MATCHER_H_
#define TAXITRACE_MAPMATCH_INCREMENTAL_MATCHER_H_

#include <vector>

#include "taxitrace/common/result.h"
#include "taxitrace/mapmatch/candidates.h"
#include "taxitrace/mapmatch/gap_filler.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace mapmatch {

/// One GPS point matched onto the network.
struct MatchedPoint {
  size_t point_index = 0;  ///< Index into the trip's points.
  roadnet::EdgePosition position;
  double distance_m = 0.0;  ///< GPS-to-road distance.
};

/// A fully matched route.
struct MatchedRoute {
  std::vector<MatchedPoint> points;
  /// Traversed edges in drive order (adjacent duplicates merged).
  std::vector<roadnet::PathStep> steps;
  /// Stitched driving geometry from the first to the last matched point.
  geo::Polyline geometry;
  double length_m = 0.0;
  int gaps_filled = 0;      ///< Connections longer than the gap threshold.
  int points_skipped = 0;   ///< Points with no candidate in range.

  /// Distinct edge ids traversed.
  [[nodiscard]] std::vector<roadnet::EdgeId> DistinctEdges() const;
};

/// Matcher configuration.
struct MatcherOptions {
  ScoreOptions score;
  GapFillOptions gap;
};

/// Incremental matcher over a prepared network. Holds pointers to the
/// network and index, which must outlive it.
class IncrementalMatcher {
 public:
  IncrementalMatcher(const roadnet::RoadNetwork* network,
                     const roadnet::SpatialIndex* index,
                     MatcherOptions options = {});

  /// Matches a trip's points onto the network. Fails when fewer than two
  /// points can be matched at all. `cache`, when given, memoizes this
  /// trip's gap-fill routes; pass one cache per trip (never shared
  /// across parallel work items) so results and cache counters stay
  /// independent of worker count.
  Result<MatchedRoute> Match(const trace::Trip& trip,
                             RouteCache* cache = nullptr) const;

  [[nodiscard]] const MatcherOptions& options() const { return options_; }

  /// The gap filler, for reading its router's Dijkstra work counters.
  [[nodiscard]] const GapFiller& gap_filler() const { return gap_filler_; }

 private:
  const roadnet::RoadNetwork* network_;
  const roadnet::SpatialIndex* index_;
  GapFiller gap_filler_;
  MatcherOptions options_;
};

}  // namespace mapmatch
}  // namespace taxitrace

#endif  // TAXITRACE_MAPMATCH_INCREMENTAL_MATCHER_H_
