"""Repo-scope rules: facts about the build graph, not any one file."""

from __future__ import annotations

import re

from ..engine import Finding, RepoContext
from .base import RepoRule


class UnregisteredTest(RepoRule):
    """Every tests/*.cc must be referenced by tests/CMakeLists.txt and
    every bench/*.cc by bench/CMakeLists.txt (via taxitrace_bench(name)
    or a literal source reference): an unregistered target compiles on
    nobody's machine and silently never runs."""

    name = "unregistered-test"
    short = ("a tests/ or bench/ source file not referenced by its "
             "CMakeLists.txt never builds or runs")

    def check_repo(self, ctx: RepoContext):
        yield from self._check_dir(ctx, "tests", "test source")
        yield from self._check_dir(ctx, "bench", "bench source")

    def _check_dir(self, ctx: RepoContext, dirname: str, what: str):
        d = ctx.repo_root / dirname
        cmake = d / "CMakeLists.txt"
        if not cmake.is_file():
            return
        cmake_text = cmake.read_text(encoding="utf-8")
        for source in sorted(d.glob("*.cc")):
            if source.name in cmake_text:
                continue
            # bench targets are declared as taxitrace_bench(<stem>),
            # which expands to <stem>.cc; accept a whole-word stem.
            if re.search(r"\b" + re.escape(source.stem) + r"\b",
                         cmake_text):
                continue
            yield Finding(
                path=f"{dirname}/{source.name}", line=1,
                rule=self.name,
                message=f"{what} is not referenced by "
                        f"{dirname}/CMakeLists.txt, so it never builds "
                        "or runs")
