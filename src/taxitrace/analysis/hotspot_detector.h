// Hotspot detection from cell statistics: finding the "crowded areas
// with a lot of pedestrians moving" whose low speeds the static map
// features do not explain (the paper's area B in Fig. 6, and the
// hotspot-detection line of related work it cites).

#ifndef TAXITRACE_ANALYSIS_HOTSPOT_DETECTOR_H_
#define TAXITRACE_ANALYSIS_HOTSPOT_DETECTOR_H_

#include <vector>

#include "taxitrace/analysis/cell_stats.h"
#include "taxitrace/geo/polygon.h"

namespace taxitrace {
namespace analysis {

/// Detection thresholds.
struct HotspotDetectorOptions {
  /// A cell is slow when its mean speed sits this many pooled standard
  /// deviations below the overall cell mean.
  double slow_z_threshold = 1.0;
  /// Minimum measurement points for a cell to be considered.
  int64_t min_points = 10;
};

/// A detected slow cell with its explanation category.
struct DetectedHotspot {
  CellRecord cell;
  double z_score = 0.0;  ///< Negative: below the overall mean.
  /// True when static features (lights or bus stops) plausibly explain
  /// the slowness; false marks a candidate crowd hotspot.
  bool explained_by_features = false;
};

/// Detects slow cells and classifies them as feature-explained or
/// crowd-candidate. Sorted by ascending z-score (slowest first).
std::vector<DetectedHotspot> DetectHotspots(
    const std::vector<CellRecord>& cells,
    const HotspotDetectorOptions& options = {});

/// Convenience: only the unexplained (crowd-candidate) hotspots.
std::vector<DetectedHotspot> DetectCrowdCandidates(
    const std::vector<CellRecord>& cells,
    const HotspotDetectorOptions& options = {});

/// Convex outline around detected cells (their four cell corners), for
/// drawing the region on a map. Empty when the cells do not span an
/// area.
geo::Polygon HotspotRegionOutline(
    const std::vector<DetectedHotspot>& hotspots, const Grid& grid);

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_HOTSPOT_DETECTOR_H_
