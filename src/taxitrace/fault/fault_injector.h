// FaultInjector: deterministic corruption of raw traces.
//
// The injector applies a FaultPlan at two boundaries:
//
//   * CorruptTrips — point- and trip-level faults on in-memory trips.
//     Every trip draws from its own Rng seeded with
//     MixSeed(plan.seed, trip_id, kTripSalt), so the set of faults is a
//     pure function of (plan, input) regardless of thread count.
//   * CorruptCsv — file-level faults on serialized trace CSV. Every
//     data row draws from MixSeed(plan.seed, row_index, kRowSalt).
//
// The helpers at the bottom are the graceful counterparts on the
// consuming side: rebuilding a TraceStore while counting (instead of
// aborting on) duplicate trip ids.

#ifndef TAXITRACE_FAULT_FAULT_INJECTOR_H_
#define TAXITRACE_FAULT_FAULT_INJECTOR_H_

#include <string>
#include <vector>

#include "taxitrace/common/result.h"
#include "taxitrace/fault/fault_plan.h"
#include "taxitrace/fault/fault_report.h"
#include "taxitrace/trace/trace_store.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace fault {

/// Applies a FaultPlan to traces. Stateless apart from the plan; all
/// randomness is derived per trip / per row via MixSeed.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// Corrupts `trips` in place with the plan's point- and trip-level
  /// fault classes, recording what was injected in `report`.
  /// Duplicated trips are appended after the originals; interleaved
  /// trips donate their leading points (which keep their original
  /// trip_id) to the previous trip in the list.
  void CorruptTrips(std::vector<trace::Trip>* trips,
                    FaultReport* report) const;

  /// Corrupts serialized trace CSV (as written by trace::TripsToCsv)
  /// with the plan's file-level fault classes, one decision per data
  /// row. The header row is never touched.
  [[nodiscard]] std::string CorruptCsv(const std::string& csv,
                                       FaultReport* report) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
};

/// Builds a TraceStore from `trips`, dropping trips whose id is already
/// present (counted in report->trips_dropped_duplicate_id) instead of
/// failing. Any other store error propagates.
Result<trace::TraceStore> RebuildStoreDroppingDuplicates(
    std::vector<trace::Trip> trips, FaultReport* report);

}  // namespace fault
}  // namespace taxitrace

#endif  // TAXITRACE_FAULT_FAULT_INJECTOR_H_
