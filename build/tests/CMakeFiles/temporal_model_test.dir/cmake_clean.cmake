file(REMOVE_RECURSE
  "CMakeFiles/temporal_model_test.dir/temporal_model_test.cc.o"
  "CMakeFiles/temporal_model_test.dir/temporal_model_test.cc.o.d"
  "temporal_model_test"
  "temporal_model_test.pdb"
  "temporal_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
