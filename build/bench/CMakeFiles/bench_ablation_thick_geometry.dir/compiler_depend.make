# Empty compiler generated dependencies file for bench_ablation_thick_geometry.
# This may be replaced when dependencies are built.
