// Result<T>: a value-or-Status, the Arrow idiom for fallible producers.

#ifndef TAXITRACE_COMMON_RESULT_H_
#define TAXITRACE_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "taxitrace/common/check.h"
#include "taxitrace/common/status.h"

namespace taxitrace {

/// Holds either a successfully produced T or the Status explaining why it
/// could not be produced. Construction from an OK status is a programming
/// error, and dereferencing a failed Result aborts with a diagnostic in
/// every build type — there is no UB path through this class.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : rep_(std::move(status)) {
    TT_CHECK_MSG(!std::get<Status>(rep_).ok(),
                 "Result constructed from OK status");
  }

  /// True when a value is present.
  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK() when a value is present.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// The contained value. Aborts (in all build types) when !ok().
  const T& value() const& {
    CheckHoldsValue();
    return std::get<T>(rep_);
  }
  T& value() & {
    CheckHoldsValue();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CheckHoldsValue();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHoldsValue() const {
    if (!ok()) {
      internal::CheckFailed("Result::ok()", __FILE__, __LINE__,
                            std::get<Status>(rep_).ToString());
    }
  }

  std::variant<T, Status> rep_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller.
#define TAXITRACE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define TAXITRACE_ASSIGN_OR_RETURN(lhs, expr)                               \
  TAXITRACE_ASSIGN_OR_RETURN_IMPL(                                          \
      TAXITRACE_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define TAXITRACE_CONCAT_INNER_(a, b) a##b
#define TAXITRACE_CONCAT_(a, b) TAXITRACE_CONCAT_INNER_(a, b)

}  // namespace taxitrace

#endif  // TAXITRACE_COMMON_RESULT_H_
