#include <gtest/gtest.h>

#include <cstdio>

#include "taxitrace/roadnet/map_io.h"
#include "taxitrace/synth/city_map_generator.h"

namespace taxitrace {
namespace roadnet {
namespace {

TrafficElement Sample(ElementId id) {
  TrafficElement el;
  el.id = id;
  el.geometry = geo::Polyline({{0, 0}, {55.5, -12.25}, {100, 3}});
  el.functional_class = FunctionalClass::kConnectingRoad;
  el.speed_limit_kmh = 50.0;
  el.direction = TravelDirection::kBackward;
  el.road_name = "street, with comma";
  return el;
}

TEST(MapIoTest, ElementsCsvRoundTrip) {
  const std::vector<TrafficElement> elements = {Sample(121499),
                                                Sample(138854)};
  const auto parsed = ElementsFromCsv(ElementsToCsv(elements)).value();
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].id, 121499);
  EXPECT_EQ(parsed[0].road_name, "street, with comma");
  EXPECT_EQ(parsed[0].direction, TravelDirection::kBackward);
  EXPECT_EQ(parsed[0].functional_class, FunctionalClass::kConnectingRoad);
  EXPECT_DOUBLE_EQ(parsed[0].speed_limit_kmh, 50.0);
  ASSERT_EQ(parsed[0].geometry.size(), 3u);
  EXPECT_NEAR(parsed[0].geometry.points()[1].x, 55.5, 1e-3);
  EXPECT_NEAR(parsed[0].geometry.points()[1].y, -12.25, 1e-3);
}

TEST(MapIoTest, FeaturesCsvRoundTrip) {
  const std::vector<FeatureSpec> features = {
      {FeatureType::kTrafficLight, geo::EnPoint{1.5, -2.5}},
      {FeatureType::kPedestrianCrossing, geo::EnPoint{100, 200}},
      {FeatureType::kBusStop, geo::EnPoint{-3, 4}},
  };
  const auto parsed = FeaturesFromCsv(FeaturesToCsv(features)).value();
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].type, FeatureType::kTrafficLight);
  EXPECT_NEAR(parsed[1].position.x, 100.0, 1e-3);
  EXPECT_EQ(parsed[2].type, FeatureType::kBusStop);
}

TEST(MapIoTest, RejectsCorruptInputs) {
  EXPECT_FALSE(ElementsFromCsv("").ok());
  EXPECT_FALSE(ElementsFromCsv("id,name\n1,x\n").ok());
  EXPECT_FALSE(
      ElementsFromCsv(
          "id,name,functional_class,speed_limit_kmh,direction,geometry\n"
          "1,x,9,50,both,0:0|1:1\n")
          .ok());  // bad class
  EXPECT_FALSE(
      ElementsFromCsv(
          "id,name,functional_class,speed_limit_kmh,direction,geometry\n"
          "1,x,2,50,sideways,0:0|1:1\n")
          .ok());  // bad direction
  EXPECT_FALSE(
      ElementsFromCsv(
          "id,name,functional_class,speed_limit_kmh,direction,geometry\n"
          "1,x,2,50,both,0:0|broken\n")
          .ok());  // bad geometry
  EXPECT_FALSE(FeaturesFromCsv("type,x\nbus_stop,1\n").ok());
  EXPECT_FALSE(FeaturesFromCsv("type,x,y\nufo,1,2\n").ok());
}

TEST(MapIoTest, GeneratedCityRoundTripsThroughFiles) {
  const synth::CityMap map = synth::GenerateCityMap().value();
  const std::string elements_path =
      testing::TempDir() + "/elements.csv";
  const std::string features_path =
      testing::TempDir() + "/features.csv";
  ASSERT_TRUE(
      WriteElementsFile(elements_path, map.source_elements).ok());
  ASSERT_TRUE(
      WriteFeaturesFile(features_path, map.source_features).ok());

  const auto elements = ReadElementsFile(elements_path).value();
  const auto features = ReadFeaturesFile(features_path).value();
  ASSERT_EQ(elements.size(), map.source_elements.size());
  ASSERT_EQ(features.size(), map.source_features.size());

  // Preparing the reloaded map reproduces the same graph shape.
  MapPreparationStats stats;
  const RoadNetwork reloaded =
      PrepareRoadNetwork(elements, features, map.network.origin(), {},
                         &stats)
          .value();
  EXPECT_EQ(reloaded.num_edges(), map.network.num_edges());
  EXPECT_EQ(reloaded.num_vertices(), map.network.num_vertices());
  EXPECT_EQ(reloaded.features().size(), map.network.features().size());
  std::remove(elements_path.c_str());
  std::remove(features_path.c_str());
}

TEST(MapIoTest, NetworkGeoJsonShape) {
  const synth::CityMap map = synth::GenerateCityMap().value();
  const std::string json = NetworkToGeoJson(map.network);
  EXPECT_NE(json.find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(json.find("\"LineString\""), std::string::npos);
  EXPECT_NE(json.find("\"traffic_light\""), std::string::npos);
  EXPECT_NE(json.find("\"elements\":["), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace roadnet
}  // namespace taxitrace
