#include "taxitrace/obs/funnel.h"

#include "taxitrace/common/check.h"
#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace obs {

void FunnelStage::Drop(const std::string& reason, int64_t count) {
  for (FunnelDrop& d : drops) {
    if (d.reason == reason) {
      d.count += count;
      return;
    }
  }
  drops.push_back(FunnelDrop{reason, count});
}

int64_t FunnelStage::TotalDropped() const {
  int64_t total = 0;
  for (const FunnelDrop& d : drops) total += d.count;
  return total;
}

FunnelStage& FunnelLedger::AddStage(std::string name, std::string unit) {
  TT_CHECK(Find(name) == nullptr);
  stages_.push_back(FunnelStage{std::move(name), std::move(unit), 0, 0, {}});
  return stages_.back();
}

const FunnelStage* FunnelLedger::Find(const std::string& name) const {
  for (const FunnelStage& s : stages_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Status FunnelLedger::CheckReconciles() const {
  for (const FunnelStage& s : stages_) {
    const int64_t dropped = s.TotalDropped();
    if (s.in != s.out + dropped) {
      return Status::Internal(StrFormat(
          "funnel stage %s does not reconcile: in %lld != out %lld + "
          "dropped %lld",
          s.name.c_str(), static_cast<long long>(s.in),
          static_cast<long long>(s.out), static_cast<long long>(dropped)));
    }
  }
  return Status::OK();
}

std::string FunnelLedger::Table() const {
  std::string out = StrFormat("%-26s %-12s %10s %10s %10s\n", "stage",
                              "unit", "in", "out", "dropped");
  for (const FunnelStage& s : stages_) {
    out += StrFormat("%-26s %-12s %10lld %10lld %10lld\n", s.name.c_str(),
                     s.unit.c_str(), static_cast<long long>(s.in),
                     static_cast<long long>(s.out),
                     static_cast<long long>(s.TotalDropped()));
    for (const FunnelDrop& d : s.drops) {
      if (d.count == 0) continue;
      out += StrFormat("%-26s   - %-34s %10lld\n", "", d.reason.c_str(),
                       static_cast<long long>(d.count));
    }
  }
  return out;
}

std::string FunnelLedger::Json() const {
  std::string out = "[";
  for (size_t i = 0; i < stages_.size(); ++i) {
    const FunnelStage& s = stages_[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "\n    {\"stage\": \"%s\", \"unit\": \"%s\", \"in\": %lld, "
        "\"out\": %lld, \"dropped\": {",
        s.name.c_str(), s.unit.c_str(), static_cast<long long>(s.in),
        static_cast<long long>(s.out));
    bool first = true;
    for (const FunnelDrop& d : s.drops) {
      if (!first) out += ", ";
      first = false;
      out += StrFormat("\"%s\": %lld", d.reason.c_str(),
                       static_cast<long long>(d.count));
    }
    out += "}}";
  }
  out += stages_.empty() ? "]" : "\n  ]";
  return out;
}

}  // namespace obs
}  // namespace taxitrace
