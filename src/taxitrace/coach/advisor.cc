#include "taxitrace/coach/advisor.h"

#include <algorithm>

#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace coach {

std::string_view AdviceTopicName(AdviceTopic topic) {
  switch (topic) {
    case AdviceTopic::kIdling:
      return "idling";
    case AdviceTopic::kHarshDriving:
      return "harsh_driving";
    case AdviceTopic::kSpeeding:
      return "speeding";
    case AdviceTopic::kRouteChoice:
      return "route_choice";
    case AdviceTopic::kWellDriven:
      return "well_driven";
  }
  return "?";
}

std::vector<Advice> AdviseTrip(const TripScore& score,
                               const AdvisorOptions& options) {
  std::vector<Advice> out;
  if (score.idle_share > options.idle_share_threshold) {
    Advice advice;
    advice.topic = AdviceTopic::kIdling;
    advice.potential_saving_ml =
        score.idle_share * score.duration_min * 60.0 / 40.0 *
        options.idle_ml_per_point;
    advice.message = StrFormat(
        "Engine idled through %.0f%% of the trip; switching off during "
        "longer waits would save roughly %.0f ml.",
        100.0 * score.idle_share, advice.potential_saving_ml);
    out.push_back(std::move(advice));
  }
  if (score.harsh_per_km > options.harsh_per_km_threshold) {
    Advice advice;
    advice.topic = AdviceTopic::kHarshDriving;
    advice.potential_saving_ml = 12.0 * score.harsh_events;
    advice.message = StrFormat(
        "%d harsh speed changes (%.1f per km); smoother anticipation of "
        "lights and queues would save roughly %.0f ml.",
        score.harsh_events, score.harsh_per_km,
        advice.potential_saving_ml);
    out.push_back(std::move(advice));
  }
  if (score.speeding_share > options.speeding_share_threshold) {
    Advice advice;
    advice.topic = AdviceTopic::kSpeeding;
    advice.potential_saving_ml =
        score.speeding_share * score.distance_km * 10.0;
    advice.message = StrFormat(
        "Above the speed limit at %.0f%% of measurements; keeping to the "
        "limit is safer and saves roughly %.0f ml.",
        100.0 * score.speeding_share, advice.potential_saving_ml);
    out.push_back(std::move(advice));
  }
  if (score.low_speed_share > options.low_speed_share_threshold) {
    Advice advice;
    advice.topic = AdviceTopic::kRouteChoice;
    advice.potential_saving_ml = score.fuel_excess_ml * 0.5;
    advice.message = StrFormat(
        "%.0f%% of the trip was below 10 km/h; a route or departure time "
        "avoiding the congested centre could save up to %.0f ml.",
        100.0 * score.low_speed_share, advice.potential_saving_ml);
    out.push_back(std::move(advice));
  }
  if (out.empty()) {
    out.push_back(Advice{AdviceTopic::kWellDriven,
                         StrFormat("Efficient trip (eco score %.0f) — "
                                   "nothing to improve.",
                                   score.eco_score),
                         0.0});
  }
  std::sort(out.begin(), out.end(), [](const Advice& a, const Advice& b) {
    return a.potential_saving_ml > b.potential_saving_ml;
  });
  return out;
}

}  // namespace coach
}  // namespace taxitrace
