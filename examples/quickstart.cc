// Quickstart: run the whole raw-data-to-information pipeline on a small
// synthetic study and print the paper's headline outputs.
//
//   $ ./quickstart
//
// The pipeline generates a downtown-Oulu-like map and a taxi fleet,
// cleans the raw traces (order repair, error filters, Table 2
// segmentation), selects origin-destination transitions with thick
// geometry, map-matches them, fetches map attributes, and fits the
// random-intercept speed model.

#include <cmath>
#include <cstdio>

#include "taxitrace/core/pipeline.h"
#include "taxitrace/core/reports.h"

int main() {
  using namespace taxitrace;

  core::StudyConfig config = core::StudyConfig::SmallStudy();
  std::printf("Running a %d-car, %d-day study...\n\n",
              config.fleet.num_cars, config.fleet.num_days);

  core::Pipeline pipeline(config);
  const Result<core::StudyResults> run = pipeline.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const core::StudyResults& results = *run;

  std::printf("%s\n", core::FormatTable2Report(results.cleaning_report).c_str());
  std::printf("%s\n", core::FormatTable3(results.table3).c_str());
  const auto table4 = analysis::BuildTable4(results.Records());
  std::printf("%s\n", core::FormatTable4(table4).c_str());
  const analysis::Table5 table5 = analysis::BuildTable5(results.cells);
  std::printf("%s\n", core::FormatTable5(table5).c_str());
  std::printf("%s\n", core::FormatTextAggregates(results).c_str());

  std::printf(
      "Mixed model: intercept %.1f km/h, cell sd %.1f km/h, residual sd "
      "%.1f km/h over %zu cells.\n",
      results.cell_model.mu, std::sqrt(results.cell_model.sigma2_group),
      std::sqrt(results.cell_model.sigma2_residual),
      results.model_cells.size());
  return 0;
}
