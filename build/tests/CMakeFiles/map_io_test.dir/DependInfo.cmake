
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/map_io_test.cc" "tests/CMakeFiles/map_io_test.dir/map_io_test.cc.o" "gcc" "tests/CMakeFiles/map_io_test.dir/map_io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taxitrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_coach.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_clean.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_odselect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_mapattr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_mapmatch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
