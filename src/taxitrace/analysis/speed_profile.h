// Corridor speed profiles: mean measured speed as a function of arc
// position along a reference route, revealing where in the corridor the
// slowdowns (lights, crossings, crowds) happen.

#ifndef TAXITRACE_ANALYSIS_SPEED_PROFILE_H_
#define TAXITRACE_ANALYSIS_SPEED_PROFILE_H_

#include <vector>

#include "taxitrace/geo/polyline.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace analysis {

/// One arc-position bin of a profile.
struct ProfileBin {
  double arc_start_m = 0.0;
  double arc_end_m = 0.0;
  int64_t n = 0;
  double mean_speed_kmh = 0.0;
  double min_speed_kmh = 0.0;
};

/// Profile construction options.
struct SpeedProfileOptions {
  double bin_m = 100.0;
  /// Points farther than this from the reference line are ignored.
  double max_offset_m = 60.0;
};

/// Builds the profile of `trips` (their GPS points) against a reference
/// corridor line. Bins without points report n = 0.
std::vector<ProfileBin> BuildSpeedProfile(
    const std::vector<const trace::Trip*>& trips,
    const geo::Polyline& corridor, const geo::LocalProjection& projection,
    const SpeedProfileOptions& options = {});

/// The bin with the lowest mean speed among populated bins; nullptr when
/// no bin is populated.
const ProfileBin* SlowestBin(const std::vector<ProfileBin>& profile);

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_SPEED_PROFILE_H_
