file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_weather.dir/bench_fig10_weather.cc.o"
  "CMakeFiles/bench_fig10_weather.dir/bench_fig10_weather.cc.o.d"
  "bench_fig10_weather"
  "bench_fig10_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
