// Simple polygons: point containment, segment crossing, and buffering a
// polyline into the "thick geometry" gates of the paper's OD selection
// (Section IV-D, Fig. 2).

#ifndef TAXITRACE_GEO_POLYGON_H_
#define TAXITRACE_GEO_POLYGON_H_

#include <vector>

#include "taxitrace/geo/polyline.h"

namespace taxitrace {
namespace geo {

/// A simple (non self-intersecting) polygon given by its ring of vertices.
/// The ring is implicitly closed; orientation does not matter.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<EnPoint> ring);

  [[nodiscard]] const std::vector<EnPoint>& ring() const { return ring_; }
  [[nodiscard]] bool empty() const { return ring_.size() < 3; }

  /// True when `p` is strictly inside or on the boundary (within 1e-9 m).
  [[nodiscard]] bool Contains(const EnPoint& p) const;

  /// True when segment `s` has any point inside the polygon or crossing
  /// its boundary.
  [[nodiscard]] bool IntersectsSegment(const Segment& s) const;

  /// Signed area (positive for counterclockwise rings).
  [[nodiscard]] double SignedArea() const;

  /// Bounding box of the ring.
  [[nodiscard]] Bbox Bounds() const;

 private:
  std::vector<EnPoint> ring_;
  Bbox bounds_ = Bbox::Empty();
};

/// Buffers a polyline by `half_width` metres on both sides, producing the
/// paper's "thick geometry": a road artificially made thicker so that
/// routes deviating slightly from the mapped geometry still register as
/// crossing it. Uses per-segment offsetting with mitred joins (adequate
/// for the gently-curved gate roads) and flat end caps.
Polygon BufferPolyline(const Polyline& line, double half_width);

/// An axis-aligned rectangle polygon.
Polygon MakeRectangle(const Bbox& box);

}  // namespace geo
}  // namespace taxitrace

#endif  // TAXITRACE_GEO_POLYGON_H_
