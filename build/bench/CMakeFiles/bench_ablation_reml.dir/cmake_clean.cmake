file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reml.dir/bench_ablation_reml.cc.o"
  "CMakeFiles/bench_ablation_reml.dir/bench_ablation_reml.cc.o.d"
  "bench_ablation_reml"
  "bench_ablation_reml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
