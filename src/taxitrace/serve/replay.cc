// tt-lint: allow-file(adhoc-timing): the replay driver *is* the timing
//   instrument — it measures per-query service latency for the
//   BENCH_serve percentiles, which obs::StageSpan (one span per stage)
//   cannot express. Latencies feed gauges only, never results.
// tt-lint: allow-file(ambient-entropy): the steady_clock::now() reads
//   here are the latency measurement itself; every random choice in
//   the workload is counter-derived via MixSeed, and clock readings
//   never influence query selection, funnel tallies, or the digest.

#include "taxitrace/serve/replay.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <vector>

#include "taxitrace/common/check.h"
#include "taxitrace/common/hash.h"
#include "taxitrace/common/random.h"

namespace taxitrace {
namespace serve {
namespace {

// One shard's deterministic outputs plus its (run-dependent) latency
// samples, merged in shard order after the parallel loop.
struct ShardResult {
  QueryStats stats;
  uint64_t digest = 0;
  std::vector<uint32_t> latency_ns;
};

// The Zipf cumulative distribution over the hot-cell ranking.
struct ZipfTable {
  std::vector<int64_t> ranked_cell_index;  ///< Hottest first.
  std::vector<double> cdf;                 ///< Normalised, same length.
};

ZipfTable BuildZipfTable(const Snapshot& snapshot, double exponent) {
  ZipfTable table;
  const int64_t all_slice = 0;
  struct Hot {
    int64_t index;
    int64_t n;
  };
  std::vector<Hot> hot;
  hot.reserve(static_cast<size_t>(snapshot.num_cells()));
  for (int64_t i = 0; i < snapshot.num_cells(); ++i) {
    const int64_t n = snapshot.moments(all_slice, i).n;
    if (n > 0) hot.push_back(Hot{i, n});
  }
  // Rank by point count, ties broken by the (already sorted) index
  // position so the ranking is deterministic.
  std::sort(hot.begin(), hot.end(), [](const Hot& a, const Hot& b) {
    return a.n != b.n ? a.n > b.n : a.index < b.index;
  });
  table.ranked_cell_index.reserve(hot.size());
  table.cdf.reserve(hot.size());
  double total = 0.0;
  for (size_t rank = 0; rank < hot.size(); ++rank) {
    table.ranked_cell_index.push_back(hot[rank].index);
    total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
    table.cdf.push_back(total);
  }
  for (double& c : table.cdf) c /= total;
  return table;
}

int64_t SampleZipf(const ZipfTable& table, Rng* rng) {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(table.cdf.begin(), table.cdf.end(), u);
  const size_t rank = it == table.cdf.end()
                          ? table.cdf.size() - 1
                          : static_cast<size_t>(it - table.cdf.begin());
  return table.ranked_cell_index[rank];
}

uint64_t FoldOutcome(uint64_t digest, QueryOutcome outcome,
                     const CellStats& stats) {
  digest = SplitMix64(digest ^ static_cast<uint64_t>(outcome));
  if (outcome == QueryOutcome::kAnswered) {
    digest = SplitMix64(digest ^ static_cast<uint64_t>(stats.n));
    digest = SplitMix64(digest ^ std::bit_cast<uint64_t>(stats.mean_speed_kmh));
    digest = SplitMix64(digest ^ std::bit_cast<uint64_t>(stats.model.blup));
  }
  return digest;
}

}  // namespace

Result<ReplayResult> ReplayWorkload(const Snapshot& snapshot,
                                    const WorkloadOptions& options,
                                    const Executor* executor,
                                    obs::MetricsRegistry* metrics,
                                    obs::FunnelLedger* funnel) {
  if (options.num_queries < 0 || options.num_shards <= 0) {
    return Status::InvalidArgument(
        "ReplayWorkload: num_queries and num_shards must be positive");
  }
  if (options.point_share < 0.0 || options.bbox_share < 0.0 ||
      options.slice_share < 0.0 ||
      options.point_share + options.bbox_share + options.slice_share > 1.0) {
    return Status::InvalidArgument("ReplayWorkload: bad query-type mix");
  }
  const Executor& exec = executor != nullptr ? *executor : Executor::Serial();
  const ZipfTable zipf = BuildZipfTable(snapshot, options.zipf_exponent);
  const SnapshotMeta& meta = snapshot.meta();
  const analysis::Grid grid(meta.cell_size_m);
  const double cell_m = meta.cell_size_m;
  const int64_t num_slices = snapshot.num_slices();

  const int64_t num_queries = options.num_queries;
  const int64_t num_shards =
      std::min<int64_t>(options.num_shards,
                        std::max<int64_t>(num_queries, 1));
  std::vector<ShardResult> shards(static_cast<size_t>(num_shards));

  using Clock = std::chrono::steady_clock;
  const Clock::time_point wall_begin = Clock::now();
  const Status status = exec.ParallelFor(
      0, num_shards, [&](int64_t shard) -> Status {
        ShardResult& out = shards[static_cast<size_t>(shard)];
        const int64_t begin = shard * num_queries / num_shards;
        const int64_t end = (shard + 1) * num_queries / num_shards;
        out.latency_ns.reserve(static_cast<size_t>(end - begin));
        out.digest = 0x74617869ull;  // Shared fold seed.
        QueryEngine engine(&snapshot);
        CellStats stats;
        std::vector<CellStats> box_stats;
        for (int64_t i = begin; i < end; ++i) {
          Rng rng(MixSeed(options.seed, static_cast<uint64_t>(shard),
                          static_cast<uint64_t>(i)));
          const double u = rng.NextDouble();
          QueryOutcome outcome;
          stats = CellStats{};
          const Clock::time_point t0 = Clock::now();
          if (!zipf.ranked_cell_index.empty() && u < options.point_share) {
            // Hot-cell point lookup: uniform position inside the cell.
            const analysis::CellId cell = snapshot.cell(SampleZipf(zipf, &rng));
            const geo::Bbox bounds = grid.CellBounds(cell);
            const geo::EnPoint p{rng.Uniform(bounds.min_x, bounds.max_x),
                                 rng.Uniform(bounds.min_y, bounds.max_y)};
            outcome = engine.PointQuery(p, 0, &stats);
          } else if (!zipf.ranked_cell_index.empty() &&
                     u < options.point_share + options.bbox_share) {
            // Bbox around a hot cell, 1..max span cells per axis.
            const analysis::CellId cell = snapshot.cell(SampleZipf(zipf, &rng));
            const int64_t wx =
                rng.UniformInt(1, options.bbox_max_span_cells);
            const int64_t wy =
                rng.UniformInt(1, options.bbox_max_span_cells);
            const geo::Bbox bounds = grid.CellBounds(cell);
            const geo::Bbox box{
                bounds.min_x - static_cast<double>(wx / 2) * cell_m,
                bounds.min_y - static_cast<double>(wy / 2) * cell_m,
                bounds.max_x + static_cast<double>((wx - 1) / 2) * cell_m,
                bounds.max_y + static_cast<double>((wy - 1) / 2) * cell_m};
            box_stats.clear();
            outcome = engine.BboxQuery(box, 0, &box_stats);
            stats.n = static_cast<int64_t>(box_stats.size());
            for (const CellStats& s : box_stats) {
              stats.mean_speed_kmh += s.mean_speed_kmh;
            }
          } else if (!zipf.ranked_cell_index.empty() &&
                     u < options.point_share + options.bbox_share +
                             options.slice_share) {
            // Scenario-slice lookup at a hot cell's centre.
            const analysis::CellId cell = snapshot.cell(SampleZipf(zipf, &rng));
            const int64_t slice_index =
                num_slices > 1 ? rng.UniformInt(1, num_slices - 1) : 0;
            outcome =
                engine.CellQuery(cell, slice_index, &stats);
          } else {
            // Deliberate out-of-bounds probe beyond the observed grid.
            const analysis::CellId cell{
                meta.max_cx + 2 + static_cast<int32_t>(rng.UniformInt(0, 7)),
                meta.max_cy + 2 + static_cast<int32_t>(rng.UniformInt(0, 7))};
            outcome = engine.CellQuery(cell, 0, &stats);
          }
          const Clock::time_point t1 = Clock::now();
          out.digest = FoldOutcome(out.digest, outcome, stats);
          const int64_t ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count();
          out.latency_ns.push_back(static_cast<uint32_t>(
              std::clamp<int64_t>(ns, 0, UINT32_MAX)));
        }
        out.stats = engine.stats();
        return Status::OK();
      });
  const Clock::time_point wall_end = Clock::now();
  TAXITRACE_RETURN_IF_ERROR(status);

  // Fold the deterministic outputs in shard order.
  ReplayResult result;
  result.num_queries = num_queries;
  result.digest = 0;
  std::vector<uint32_t> latencies;
  latencies.reserve(static_cast<size_t>(num_queries));
  for (const ShardResult& shard : shards) {
    result.stats.Add(shard.stats);
    result.digest = SplitMix64(result.digest ^ shard.digest);
    latencies.insert(latencies.end(), shard.latency_ns.begin(),
                     shard.latency_ns.end());
  }
  TT_CHECK(result.stats.offered == result.stats.answered +
                                       result.stats.out_of_bounds +
                                       result.stats.empty_cell);

  result.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_begin)
          .count();
  result.qps = result.wall_ms > 0.0
                   ? static_cast<double>(num_queries) * 1000.0 / result.wall_ms
                   : 0.0;
  if (!latencies.empty()) {
    auto percentile = [&latencies](double q) {
      const size_t k = std::min(
          latencies.size() - 1,
          static_cast<size_t>(q * static_cast<double>(latencies.size())));
      std::nth_element(latencies.begin(),
                       latencies.begin() + static_cast<int64_t>(k),
                       latencies.end());
      return static_cast<double>(latencies[k]) / 1000.0;
    };
    result.p50_us = percentile(0.50);
    result.p90_us = percentile(0.90);
    result.p99_us = percentile(0.99);
    result.max_us = static_cast<double>(*std::max_element(
                        latencies.begin(), latencies.end())) /
                    1000.0;
  }

  if (metrics != nullptr) {
    metrics->counter("serve.query.offered")->Add(result.stats.offered);
    metrics->counter("serve.query.answered")->Add(result.stats.answered);
    metrics->counter("serve.query.out_of_bounds")
        ->Add(result.stats.out_of_bounds);
    metrics->counter("serve.query.empty_cell")->Add(result.stats.empty_cell);
    metrics->gauge("serve.replay.wall_ms")->Set(result.wall_ms);
    metrics->gauge("serve.replay.qps")->Set(result.qps);
    metrics->gauge("serve.replay.p99_us")->Set(result.p99_us);
  }
  if (funnel != nullptr) {
    obs::FunnelStage& stage = funnel->AddStage("serve.queries", "queries");
    stage.in = result.stats.offered;
    stage.out = result.stats.answered;
    stage.Drop("out_of_bounds", result.stats.out_of_bounds);
    stage.Drop("empty_cell", result.stats.empty_cell);
    TAXITRACE_RETURN_IF_ERROR(funnel->CheckReconciles());
  }
  return result;
}

}  // namespace serve
}  // namespace taxitrace
