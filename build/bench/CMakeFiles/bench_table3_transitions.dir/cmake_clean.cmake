file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_transitions.dir/bench_table3_transitions.cc.o"
  "CMakeFiles/bench_table3_transitions.dir/bench_table3_transitions.cc.o.d"
  "bench_table3_transitions"
  "bench_table3_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
