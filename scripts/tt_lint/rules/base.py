"""Rule base classes."""

from __future__ import annotations

from ..engine import Finding, RepoContext, SourceFile


class FileRule:
    """A rule evaluated per file over its token stream."""

    name: str = ""
    short: str = ""

    def finding(self, sf: SourceFile, line: int, message: str,
                col: int = 1) -> Finding:
        return Finding(path=sf.rel, line=line, rule=self.name,
                       message=message, col=col)

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        raise NotImplementedError


class RepoRule:
    """A rule evaluated once over the whole repository."""

    name: str = ""
    short: str = ""

    def check_repo(self, ctx: RepoContext):
        raise NotImplementedError


def path_is_under(rel: str, prefixes: tuple[str, ...]) -> bool:
    return any(rel == p or rel.startswith(p) for p in prefixes)
