#include "taxitrace/common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace taxitrace {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  const std::string buf(StripWhitespace(s));
  if (buf.empty()) return Status::InvalidArgument("empty integer field");
  char* end = nullptr;
  errno = 0;
  const int64_t v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return v;
}

Result<double> ParseDouble(std::string_view s) {
  const std::string buf(StripWhitespace(s));
  if (buf.empty()) return Status::InvalidArgument("empty numeric field");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: " + buf);
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace taxitrace
