# Empty dependencies file for trace_query_test.
# This may be replaced when dependencies are built.
