// The paper's Eq. (2) with map features as fixed effects: point speed
// regressed on the cell's traffic-light / bus-stop / pedestrian-crossing
// / junction counts, with a Gaussian random intercept per cell soaking
// up the remaining geography ("X may include ... the map features such
// as the number of traffic lights, bus stops, pedestrian crossings or
// crossings for the cell").

#ifndef TAXITRACE_ANALYSIS_FEATURE_MODEL_H_
#define TAXITRACE_ANALYSIS_FEATURE_MODEL_H_

#include <string>
#include <vector>

#include "taxitrace/analysis/grid.h"
#include "taxitrace/common/result.h"
#include "taxitrace/model/mixed_model.h"

namespace taxitrace {
namespace analysis {

/// Names of the fixed-effect columns, in design order.
inline const std::vector<std::string>& FeatureModelTerms() {
  static const std::vector<std::string> kTerms = {
      "intercept", "traffic_lights", "bus_stops", "pedestrian_crossings",
      "junctions"};
  return kTerms;
}

/// One point-speed observation for the model.
struct SpeedObservation {
  geo::EnPoint position;
  double speed_kmh = 0.0;
};

/// A fitted feature model plus its term names.
struct FeatureModelFit {
  model::MixedModelFit fit;
  std::vector<std::string> terms;  ///< Parallel to fit.fixed_effects.
  std::vector<CellId> cells;       ///< Group index -> cell.

  /// Coefficient of the named term; 0 if absent.
  [[nodiscard]] double Coefficient(const std::string& term) const;
  /// Standard error of the named term; 0 if absent.
  [[nodiscard]] double StandardError(const std::string& term) const;
};

/// Builds and fits the feature model from point-speed observations and
/// per-cell static feature counts.
Result<FeatureModelFit> FitFeatureModel(
    const std::vector<SpeedObservation>& observations,
    const std::unordered_map<CellId, CellFeatureCounts, CellIdHash>&
        features,
    const Grid& grid);

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_FEATURE_MODEL_H_
