#!/usr/bin/env python3
"""tt_lint self-test: runs the linter over the corpus under
tests/lint_corpus/ and asserts the EXACT finding set, exit codes,
suppression handling, baseline behaviour, and SARIF shape.

Expectations are `// expect(<rule>)` markers in the corpus sources
(line 1 for repo-scope rules); a missing finding and an unexpected
finding both fail, so the corpus pins false negatives and false
positives at the same time. Registered in tests/CMakeLists.txt as the
`tt_lint_selftest` ctest.
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "scripts" / "tt_lint.py"
CORPUS = REPO / "tests" / "lint_corpus"

EXPECT_RE = re.compile(r"expect\(([a-z0-9-]+)\)")
FINDING_RE = re.compile(r"^(.+?):(\d+): \[([a-z0-9-]+)\]")

# Rules whose findings anchor to line 1 of the named file, not to the
# line carrying the marker.
FILE_ANCHORED = {"unregistered-test"}

failures: list[str] = []


def fail(msg: str) -> None:
    failures.append(msg)
    print(f"FAIL: {msg}", file=sys.stderr)


def run_lint(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(LINT), *args],
                          capture_output=True, text=True)


def parse_findings(stdout: str) -> set[tuple[str, int, str]]:
    out = set()
    for line in stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            out.add((m.group(1), int(m.group(2)), m.group(3)))
    return out


def expected_findings(root: Path) -> set[tuple[str, int, str]]:
    exp = set()
    for path in sorted(root.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        for num, text in enumerate(
                path.read_text(encoding="utf-8").splitlines(), 1):
            for m in EXPECT_RE.finditer(text):
                rule = m.group(1)
                line = 1 if rule in FILE_ANCHORED else num
                exp.add((rel, line, rule))
    return exp


def check_case(name: str, extra_paths: list[str] | None = None) -> None:
    root = CORPUS / name
    args = ["--root", str(root), "--no-baseline"]
    if extra_paths:
        args += [str(root / p) for p in extra_paths]
    r = run_lint(args)
    got = parse_findings(r.stdout)
    want = expected_findings(root)
    for missing in sorted(want - got):
        fail(f"{name}: expected finding not reported: {missing}")
    for extra in sorted(got - want):
        fail(f"{name}: unexpected finding: {extra}")
    want_rc = 1 if want else 0
    if r.returncode != want_rc:
        fail(f"{name}: exit code {r.returncode}, want {want_rc}\n"
             f"stderr: {r.stderr}")


def check_exit_codes() -> None:
    r = run_lint(["--root", str(CORPUS / "clean"),
                  str(CORPUS / "clean" / "no" / "such" / "path")])
    if r.returncode != 2:
        fail(f"missing path: exit {r.returncode}, want 2")


def check_sarif() -> None:
    root = CORPUS / "determinism"
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "report.sarif"
        r = run_lint(["--root", str(root), "--no-baseline",
                      "--format=sarif", "--output", str(out)])
        if r.returncode != 1:
            fail(f"sarif run: exit {r.returncode}, want 1")
            return
        doc = json.loads(out.read_text(encoding="utf-8"))
        if doc.get("version") != "2.1.0":
            fail(f"sarif: version {doc.get('version')}, want 2.1.0")
        runs = doc.get("runs") or [{}]
        driver = runs[0].get("tool", {}).get("driver", {})
        if driver.get("name") != "tt_lint":
            fail("sarif: tool.driver.name missing")
        rules = {r_["id"] for r_ in driver.get("rules", [])}
        results = runs[0].get("results", [])
        if len(results) != len(expected_findings(root)):
            fail(f"sarif: {len(results)} results, want "
                 f"{len(expected_findings(root))}")
        for res in results:
            if res.get("ruleId") not in rules:
                fail(f"sarif: result rule {res.get('ruleId')} not in "
                     "driver.rules")
            loc = (res.get("locations") or [{}])[0] \
                .get("physicalLocation", {})
            if not loc.get("artifactLocation", {}).get("uri") \
                    or not loc.get("region", {}).get("startLine"):
                fail("sarif: result missing physical location")


def check_baseline() -> None:
    src = CORPUS / "determinism"
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "repo"
        shutil.copytree(src, root)
        baseline = Path(tmp) / "baseline.json"

        r = run_lint(["--root", str(root), "--write-baseline",
                      "--baseline", str(baseline)])
        if r.returncode != 0 or not baseline.is_file():
            fail(f"write-baseline: exit {r.returncode}, want 0")
            return

        r = run_lint(["--root", str(root), "--baseline", str(baseline)])
        if r.returncode != 0:
            fail(f"baselined rerun: exit {r.returncode}, want 0\n"
                 f"stdout: {r.stdout}")

        # A NEW finding must not hide behind the baseline.
        victim = root / "src" / "taxitrace" / "core" / "fresh.cc"
        victim.write_text(
            "void Fresh(std::atomic<int>& c) {\n"
            "  c.fetch_add(1, std::memory_order_relaxed);\n"
            "}\n", encoding="utf-8")
        r = run_lint(["--root", str(root), "--baseline", str(baseline)])
        got = parse_findings(r.stdout)
        if r.returncode != 1:
            fail(f"baseline+new finding: exit {r.returncode}, want 1")
        if got != {("src/taxitrace/core/fresh.cc", 2, "relaxed-atomic")}:
            fail(f"baseline+new finding: reported {sorted(got)}")

        # Removing the code must make its entries stale, not fatal.
        victim.unlink()
        bad = root / "src" / "taxitrace" / "core" / \
            "unordered_iteration_bad.cc"
        bad.write_text("// emptied\n", encoding="utf-8")
        r = run_lint(["--root", str(root), "--baseline", str(baseline)])
        if r.returncode != 0:
            fail(f"stale baseline: exit {r.returncode}, want 0")
        if "stale" not in r.stderr:
            fail("stale baseline: no stale warning printed")

        # A corrupt baseline is a usage error.
        baseline.write_text("{not json", encoding="utf-8")
        r = run_lint(["--root", str(root), "--baseline", str(baseline)])
        if r.returncode != 2:
            fail(f"corrupt baseline: exit {r.returncode}, want 2")


def check_list_rules() -> None:
    r = run_lint(["--list-rules"])
    if r.returncode != 0:
        fail(f"--list-rules: exit {r.returncode}")
        return
    listed = {line.split()[0] for line in r.stdout.splitlines() if line}
    required = {
        "unordered-iteration", "ambient-entropy", "pointer-keyed-order",
        "parallel-accumulation", "relaxed-atomic", "bare-assert",
        "raw-thread", "adhoc-timing", "linear-reset", "result-ok-status",
        "include-path", "ignored-status", "unregistered-test",
        "suppression-reason", "unused-suppression",
    }
    for rule in sorted(required - listed):
        fail(f"--list-rules: missing rule {rule}")


def main() -> int:
    check_case("determinism")
    check_case("idiom")
    check_case("engine")
    check_case("clean")
    check_case("repo", extra_paths=["tests", "bench"])
    check_exit_codes()
    check_sarif()
    check_baseline()
    check_list_rules()
    if failures:
        print(f"tt_lint_selftest: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("tt_lint_selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
