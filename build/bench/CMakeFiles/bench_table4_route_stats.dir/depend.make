# Empty dependencies file for bench_table4_route_stats.
# This may be replaced when dependencies are built.
