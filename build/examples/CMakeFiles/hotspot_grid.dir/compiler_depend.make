# Empty compiler generated dependencies file for hotspot_grid.
# This may be replaced when dependencies are built.
