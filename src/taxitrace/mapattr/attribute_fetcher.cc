#include "taxitrace/mapattr/attribute_fetcher.h"

#include <algorithm>
#include <set>

namespace taxitrace {
namespace mapattr {
namespace {

// True iff line.Project(p).distance <= radius, answered without always
// paying for the full projection: each segment is first tested against
// its own bounds inflated by the radius (with slack so the reject stays
// conservative under floating-point rounding), and the walk stops at the
// first segment within range. Surviving segments run the same
// ProjectOntoSegment the full projection would, so the boolean matches
// it exactly.
bool WithinDistance(const geo::Polyline& line, const geo::EnPoint& p,
                    double radius) {
  const std::vector<geo::EnPoint>& pts = line.points();
  const double pad = radius + 1e-6;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const geo::EnPoint& a = pts[i];
    const geo::EnPoint& b = pts[i + 1];
    if (p.x < std::min(a.x, b.x) - pad || p.x > std::max(a.x, b.x) + pad ||
        p.y < std::min(a.y, b.y) - pad || p.y > std::max(a.y, b.y) + pad) {
      continue;
    }
    if (geo::ProjectOntoSegment(p, geo::Segment{a, b}).distance <= radius) {
      return true;
    }
  }
  return false;
}

}  // namespace

AttributeFetcher::AttributeFetcher(const roadnet::RoadNetwork* network,
                                   AttributeFetcherOptions options)
    : network_(network),
      options_(options),
      tile_size_m_(network->tiling().tile_size_m) {
  for (const roadnet::MapFeature& f : network_->features()) {
    if (f.type == roadnet::FeatureType::kTrafficLight) {
      const roadnet::TileCoord tc =
          tile_size_m_ > 0.0
              ? roadnet::TileCoordOfPoint(f.position, tile_size_m_)
              : roadnet::TileCoord{0, 0};
      lights_by_tile_[tc].push_back(f.position);
    }
  }
}

int AttributeFetcher::CountJunctionsPassed(
    const std::vector<roadnet::PathStep>& steps) const {
  int count = 0;
  for (size_t k = 0; k + 1 < steps.size(); ++k) {
    const roadnet::Edge& e = network_->edge(steps[k].edge);
    const roadnet::VertexId exit_vertex = steps[k].forward ? e.to : e.from;
    if (network_->vertex(exit_vertex).is_junction) ++count;
  }
  return count;
}

RouteAttributes AttributeFetcher::Fetch(
    const mapmatch::MatchedRoute& route) const {
  RouteAttributes attrs;
  attrs.junctions = CountJunctionsPassed(route.steps);
  if (route.geometry.size() < 2) return attrs;

  // Pedestrian crossings and bus stops belong to the road they sit on:
  // count the ones attached to traversed edges (a crossing on a side
  // street 15 m from a passed junction is not on the route). Traffic
  // lights act on the junction as a whole, so they count by proximity to
  // the driven geometry.
  std::set<roadnet::FeatureId> counted;
  for (const roadnet::PathStep& step : route.steps) {
    for (roadnet::FeatureId fid : network_->edge(step.edge).feature_ids) {
      const roadnet::MapFeature& f = network_->feature(fid);
      if (f.type == roadnet::FeatureType::kTrafficLight) continue;
      if (!counted.insert(fid).second) continue;
      if (f.type == roadnet::FeatureType::kPedestrianCrossing) {
        ++attrs.pedestrian_crossings;
      } else {
        ++attrs.bus_stops;
      }
    }
  }

  const geo::Bbox route_box = route.geometry.Bounds().Inflated(
      options_.traffic_light_radius_m + 10.0);
  const auto scan_bucket = [&](const std::vector<geo::EnPoint>& lights) {
    for (const geo::EnPoint& light : lights) {
      if (!route_box.Contains(light)) continue;
      if (WithinDistance(route.geometry, light,
                         options_.traffic_light_radius_m)) {
        ++attrs.traffic_lights;
      }
    }
  };
  if (tile_size_m_ <= 0.0) {
    const auto it = lights_by_tile_.find(roadnet::TileCoord{0, 0});
    if (it != lights_by_tile_.end()) scan_bucket(it->second);
  } else {
    // Only the light buckets of tiles overlapping the (already
    // radius-inflated) route box can contribute; the count is a sum,
    // so bucket visiting order cannot affect the result.
    const roadnet::TileCoord lo = roadnet::TileCoordOfPoint(
        geo::EnPoint{route_box.min_x, route_box.min_y}, tile_size_m_);
    const roadnet::TileCoord hi = roadnet::TileCoordOfPoint(
        geo::EnPoint{route_box.max_x, route_box.max_y}, tile_size_m_);
    for (int32_t ty = lo.ty; ty <= hi.ty; ++ty) {
      for (int32_t tx = lo.tx; tx <= hi.tx; ++tx) {
        const auto it = lights_by_tile_.find(roadnet::TileCoord{tx, ty});
        if (it != lights_by_tile_.end()) scan_bucket(it->second);
      }
    }
  }
  return attrs;
}

}  // namespace mapattr
}  // namespace taxitrace
