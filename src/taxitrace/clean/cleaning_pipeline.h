// The full data-preparation pipeline of Section IV: order repair ->
// obvious-error filtering -> time-based segmentation -> segment filters.

#ifndef TAXITRACE_CLEAN_CLEANING_PIPELINE_H_
#define TAXITRACE_CLEAN_CLEANING_PIPELINE_H_

#include "taxitrace/clean/interpolation.h"
#include "taxitrace/common/executor.h"
#include "taxitrace/clean/order_repair.h"
#include "taxitrace/clean/outlier_filter.h"
#include "taxitrace/clean/sanitize.h"
#include "taxitrace/clean/segmentation.h"
#include "taxitrace/clean/trip_filter.h"
#include "taxitrace/common/result.h"
#include "taxitrace/fault/fault_report.h"
#include "taxitrace/obs/metrics.h"
#include "taxitrace/trace/trace_store.h"

namespace taxitrace {
namespace clean {

/// Stage options, bundled.
struct CleaningOptions {
  OutlierFilterOptions outliers;
  SegmentationOptions segmentation;
  TripFilterOptions filter;
  /// Optionally restore lost points by linear interpolation (the Jiang
  /// et al. approach the paper cites) before segmentation. Off by
  /// default: the paper's own pipeline does not interpolate.
  bool restore_lost_points = false;
  InterpolationOptions interpolation;
  /// Malformed-point gate, run before every other stage. Disabled by
  /// default (the fault-free pipeline is unchanged); enabled by
  /// core::Pipeline when a FaultPlan is active.
  SanitizeOptions sanitize;
};

/// What each stage did, for reporting.
struct CleaningReport {
  int64_t raw_trips = 0;
  int64_t raw_points = 0;
  /// Points surviving the sanitiser (== raw_points minus the point
  /// drops in `faults`; == raw_points on a fault-free run).
  int64_t points_after_sanitize = 0;
  /// Points surviving the outlier filter (== points_after_sanitize
  /// minus the three OutlierFilterStats removals). Interpolation, when
  /// enabled, adds points *after* this count.
  int64_t points_after_outliers = 0;
  OrderRepairStats order;
  OutlierFilterStats outliers;
  InterpolationStats interpolation;
  SegmentationStats segmentation;
  TripFilterStats filter;
  /// Malformed input dropped by the sanitiser (and, when the pipeline
  /// routes traces through a corrupted CSV file, by the lenient
  /// reader). All zero on a fault-free run.
  fault::FaultReport faults;
  int64_t clean_segments = 0;
  int64_t clean_points = 0;
};

/// What cleaning one raw trip produced: its surviving segments plus the
/// per-stage counter deltas. Deltas are summed (all counters are plain
/// integers) and segments concatenated in raw-trip order, which
/// reproduces the serial pipeline's output exactly — the contract both
/// CleanTrips and the streaming pipeline build on.
struct TripCleanOutput {
  std::vector<trace::Trip> segments;
  int64_t points_after_sanitize = 0;
  int64_t points_after_outliers = 0;
  OrderRepairStats order;
  OutlierFilterStats outliers;
  InterpolationStats interpolation;
  SegmentationStats segmentation;
  TripFilterStats filter;
  fault::FaultReport faults;
};

/// Runs every per-trip stage on a single raw trip. Takes the trip by
/// value: batch callers pass a copy, streaming callers move the trip in
/// and the raw points die with it — the point of streaming.
TripCleanOutput CleanOneTrip(trace::Trip raw, const CleaningOptions& options);

/// Folds one trip's counter deltas into `report` (raw_trips/raw_points
/// and the clean_* totals are the caller's; segments are untouched).
void FoldTripCleanOutput(const TripCleanOutput& out, CleaningReport* report);

/// Publishes a merged report and the cleaned segments as `clean.*`
/// counters plus the points-per-segment histogram.
void PublishCleaningMetrics(const CleaningReport& report,
                            const std::vector<trace::Trip>& cleaned,
                            obs::MetricsRegistry* metrics);

/// Runs the pipeline over all trips of a store and returns the cleaned
/// trip segments.
///
/// Every stage is per-trip, so the work fans out over the store's trips
/// when `executor` has worker threads; per-trip outputs are merged in
/// store order (segments and every report counter), making the result
/// byte-identical at any thread count. A null `executor` runs serially.
///
/// Fails only on executor errors; malformed input never fails the call
/// — the sanitiser drops it and accounts for it in `report->faults`.
///
/// When `metrics` is given, the merged report is also published as
/// `clean.*` counters plus a points-per-segment histogram. All of them
/// are deterministic data counts, never timings.
Result<std::vector<trace::Trip>> CleanTrips(
    const trace::TraceStore& store, const CleaningOptions& options = {},
    CleaningReport* report = nullptr, const Executor* executor = nullptr,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace clean
}  // namespace taxitrace

#endif  // TAXITRACE_CLEAN_CLEANING_PIPELINE_H_
