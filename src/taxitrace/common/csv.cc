#include "taxitrace/common/csv.h"

#include <fstream>
#include <sstream>

#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\r\n") != std::string_view::npos;
}

void AppendQuoted(std::string* out, std::string_view field) {
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<std::vector<CsvRow>> ParseCsv(std::string_view text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // true once the current row has any content

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    field_started = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;
        break;
      case '\r':
        break;  // handled by the following '\n'
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::Corruption("CSV ends inside a quoted field");
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

Result<std::vector<CsvRow>> ParseCsvChecked(std::string_view text,
                                            size_t expected_columns) {
  TAXITRACE_ASSIGN_OR_RETURN(std::vector<CsvRow> rows, ParseCsv(text));
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != expected_columns) {
      return Status::Corruption(StrFormat(
          "CSV row %zu has %zu fields, expected %zu", r, rows[r].size(),
          expected_columns));
    }
  }
  return rows;
}

std::vector<CsvRow> ParseCsvLenient(std::string_view text) {
  std::vector<CsvRow> rows;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = end + 1;
    if (line.empty()) continue;

    CsvRow row;
    std::string field;
    bool in_quotes = false;
    for (size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_quotes) {
        if (c == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            field.push_back('"');
            ++i;
          } else {
            in_quotes = false;
          }
        } else {
          field.push_back(c);
        }
      } else if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        row.push_back(std::move(field));
        field.clear();
      } else {
        field.push_back(c);
      }
    }
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string WriteCsv(const std::vector<CsvRow>& rows) {
  std::string out;
  for (const CsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      if (NeedsQuoting(row[i])) {
        AppendQuoted(&out, row[i]);
      } else {
        out += row[i];
      }
    }
    out.push_back('\n');
  }
  return out;
}

Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<CsvRow>& rows) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  const std::string text = WriteCsv(rows);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace taxitrace
