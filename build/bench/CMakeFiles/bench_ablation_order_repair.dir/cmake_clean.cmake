file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_order_repair.dir/bench_ablation_order_repair.cc.o"
  "CMakeFiles/bench_ablation_order_repair.dir/bench_ablation_order_repair.cc.o.d"
  "bench_ablation_order_repair"
  "bench_ablation_order_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_order_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
