// Shortest-path routing over the prepared road network — the stand-in
// for pgRouting's Dijkstra used by the paper for filling map-matching
// gaps when consecutive GPS points are far apart.
//
// The search runs over the network's CSR adjacency with per-thread
// reusable scratch (see search_scratch.h) and goes goal-directed (A*
// ordered by dist + straight-line lower bound) whenever the target
// vertices are known and every edge cost multiplier is >= 1, which
// keeps the straight-line heuristic admissible; otherwise it falls back
// to plain Dijkstra with the exact heap order of the historical
// implementation. Both modes relax edges with a strict improvement
// test, so computed distances — and, whenever shortest paths are unique
// at full double precision, the paths themselves — are identical
// between the two.

#ifndef TAXITRACE_ROADNET_ROUTER_H_
#define TAXITRACE_ROADNET_ROUTER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "taxitrace/common/executor.h"
#include "taxitrace/common/result.h"
#include "taxitrace/roadnet/road_network.h"
#include "taxitrace/roadnet/search_scratch.h"

namespace taxitrace {
namespace roadnet {

/// Search work accounting, readable via Router::stats(). Each search
/// does deterministic work — goal-directed or not is decided by the
/// arguments alone, and the heap/settle trace of one search never
/// depends on other searches — so the totals are identical at any
/// executor worker count.
struct RouterStats {
  int64_t searches = 0;          ///< Search runs (either mode).
  int64_t heap_pops = 0;         ///< Priority-queue pops, stale included.
  int64_t settled_vertices = 0;  ///< Vertices finalised (non-stale pops).
  /// Searches that ran goal-directed (A*); the rest were plain Dijkstra.
  int64_t goal_directed_searches = 0;
  /// Sum over searches of the distinct graph tiles each one relaxed a
  /// vertex in (always == searches on single-tile maps).
  int64_t tiles_touched = 0;
};

/// A traversal of one edge within a path.
struct PathStep {
  EdgeId edge = kInvalidEdge;
  bool forward = true;  ///< Traversed from -> to?
};

/// A shortest path through the network.
struct Path {
  std::vector<PathStep> steps;  ///< Edges in traversal order.
  double length_m = 0.0;
  geo::Polyline geometry;  ///< Concatenated driving geometry.
};

/// Per-edge cost multipliers computed on demand, so a search only pays
/// for the edges it actually relaxes — the alternative to materialising
/// an |E|-sized vector per query. Implementations must be pure:
/// Multiplier(e) returns the same value every time it is asked within
/// one search (the relax loop may query an edge more than once), and
/// must be safe to call from any worker thread.
class EdgeCostModel {
 public:
  virtual ~EdgeCostModel() = default;

  /// Cost scale for one edge; must be > 0.
  [[nodiscard]] virtual double Multiplier(EdgeId edge) const = 0;

  /// A lower bound over all edges' multipliers. When it is > 0 the
  /// router runs goal-directed with the straight-line heuristic scaled
  /// by min(1, MinMultiplier()), which keeps the heuristic admissible
  /// and consistent: every edge costs at least MinMultiplier() times
  /// its length, hence at least that times the straight-line gap.
  [[nodiscard]] virtual double MinMultiplier() const = 0;
};

/// Length-minimising router honouring one-way constraints. Holds a
/// pointer to the network, which must outlive it. Constructing a Router
/// warms the network's CSR adjacency, so build Routers before sharing
/// the network across threads.
class Router {
 public:
  explicit Router(const RoadNetwork* network);

  /// Shortest drivable path between two vertices. NotFound when the
  /// destination is unreachable. `edge_cost_multiplier`, when given, must
  /// have one entry per edge and scales each edge's length for route
  /// choice (it models driver preference noise); the returned length_m is
  /// always the real geometric length.
  Result<Path> ShortestPath(
      VertexId from, VertexId to,
      const std::vector<double>* edge_cost_multiplier = nullptr) const;

  /// Same contract, with edge multipliers supplied lazily by `cost`
  /// instead of a materialised |E|-vector. Runs goal-directed whenever
  /// cost.MinMultiplier() > 0 (heuristic scaled accordingly), so the
  /// common "noise around 1" models stay A* instead of falling back to
  /// a full Dijkstra sweep.
  Result<Path> ShortestPath(VertexId from, VertexId to,
                            const EdgeCostModel& cost) const;

  /// Distance (metres, real edge lengths, no multipliers) from `from`
  /// to `to`, searching only as far as `limit_m`: returns +infinity as
  /// soon as every frontier key exceeds the limit. Decision-equivalent
  /// to ShortestPath(from, to)->length_m compared against limit_m, at a
  /// fraction of the cost — the goal-directed search touches only the
  /// ball of radius limit_m around the endpoints.
  double BoundedVertexDistance(VertexId from, VertexId to,
                               double limit_m) const;

  /// Shortest drivable path between two positions on edges (as produced
  /// by map matching). Includes the partial first and last edges in the
  /// returned geometry/length. NotFound when unreachable.
  Result<Path> ShortestPathBetween(const EdgePosition& from,
                                   const EdgePosition& to) const;

  /// Network distance (metres) between two positions; infinity when
  /// unreachable. Cheaper than ShortestPathBetween when only the distance
  /// is needed.
  double NetworkDistance(const EdgePosition& from,
                         const EdgePosition& to) const;

  [[nodiscard]] const RoadNetwork& network() const { return *network_; }

  /// Snapshot of the search counters accumulated so far.
  [[nodiscard]] RouterStats stats() const;

 private:
  /// Runs one search from the given seed vertices (with initial costs),
  /// stopping once both stop vertices are settled. Returns the calling
  /// thread's scratch holding the result; it stays valid until this
  /// thread's next search through the same Router (or a copy of it).
  SearchScratch& Search(
      const std::vector<std::pair<VertexId, double>>& seeds,
      VertexId stop_at_both_a = kInvalidVertex,
      VertexId stop_at_both_b = kInvalidVertex,
      const std::vector<double>* edge_cost_multiplier = nullptr) const;

  /// Shared search loop behind both ShortestPath overloads:
  /// `multiplier(edge)` supplies the cost scale, `goal_directed` (with
  /// `heuristic_scale` applied to the straight-line bound) was decided
  /// by the caller. Instantiated only in router.cc.
  template <typename MultiplierFn>
  SearchScratch& SearchImpl(
      const std::vector<std::pair<VertexId, double>>& seeds,
      VertexId stop_at_both_a, VertexId stop_at_both_b, bool goal_directed,
      double heuristic_scale, MultiplierFn multiplier) const;

  /// Same vertex reconstruction as ShortestPath once a search settled
  /// `to`; factored out of the two overloads.
  Result<Path> BuildVertexPath(const SearchScratch& res, VertexId from,
                               VertexId to) const;

  // Search counters behind a shared_ptr so the router stays copyable;
  // each Search() batches its local tallies into a few relaxed adds.
  struct AtomicStats {
    std::atomic<int64_t> searches{0};
    std::atomic<int64_t> heap_pops{0};
    std::atomic<int64_t> settled_vertices{0};
    std::atomic<int64_t> goal_directed_searches{0};
    std::atomic<int64_t> tiles_touched{0};
  };

  const RoadNetwork* network_;
  std::shared_ptr<AtomicStats> search_stats_;
  // Shared across copies: distinct worker threads use distinct slots,
  // and one thread never runs two searches concurrently.
  std::shared_ptr<WorkerLocal<SearchScratch>> scratch_;
};

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_ROUTER_H_
