// A clean file: tt_lint must exit 0 with no findings on this root.

#include "taxitrace/core/fake.h"

namespace taxitrace {

int Add(int a, int b) { return a + b; }

}  // namespace taxitrace
