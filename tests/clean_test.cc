#include <gtest/gtest.h>

#include <algorithm>

#include "taxitrace/clean/cleaning_pipeline.h"
#include "taxitrace/clean/order_repair.h"
#include "taxitrace/clean/outlier_filter.h"
#include "taxitrace/clean/segmentation.h"
#include "taxitrace/clean/trip_filter.h"
#include "taxitrace/common/random.h"

namespace taxitrace {
namespace clean {
namespace {

// Points along a straight south-north street, ~22 m apart, 10 s apart.
std::vector<trace::RoutePoint> StraightDrive(int n, double t0 = 0.0,
                                             int64_t first_id = 1) {
  std::vector<trace::RoutePoint> pts;
  for (int i = 0; i < n; ++i) {
    trace::RoutePoint p;
    p.point_id = first_id + i;
    p.trip_id = 1;
    p.timestamp_s = t0 + 10.0 * i;
    p.position = geo::LatLon{65.0 + 0.0002 * i, 25.47};
    p.speed_kmh = 30.0;
    p.fuel_delta_ml = 2.0;
    pts.push_back(p);
  }
  return pts;
}

// --- Order repair -------------------------------------------------------------

TEST(OrderRepairTest, ConsistentSequenceUntouched) {
  std::vector<trace::RoutePoint> pts = StraightDrive(10);
  const std::vector<trace::RoutePoint> original = pts;
  EXPECT_EQ(RepairPointOrder(&pts), ChosenOrder::kConsistent);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].point_id, original[i].point_id);
    EXPECT_EQ(pts[i].timestamp_s, original[i].timestamp_s);
  }
}

TEST(OrderRepairTest, ScrambledStorageOrderIsCanonicalised) {
  std::vector<trace::RoutePoint> pts = StraightDrive(10);
  std::swap(pts[2], pts[7]);  // storage order wrong, fields consistent
  EXPECT_EQ(RepairPointOrder(&pts), ChosenOrder::kConsistent);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].point_id, pts[i].point_id);
  }
}

TEST(OrderRepairTest, TimestampGlitchRepairedById) {
  std::vector<trace::RoutePoint> pts = StraightDrive(10);
  std::swap(pts[4].timestamp_s, pts[5].timestamp_s);
  EXPECT_EQ(RepairPointOrder(&pts), ChosenOrder::kById);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].timestamp_s, pts[i].timestamp_s);
    EXPECT_LT(pts[i - 1].point_id, pts[i].point_id);
    // Geometry still the straight drive: monotone latitude.
    EXPECT_LT(pts[i - 1].position.lat_deg, pts[i].position.lat_deg);
  }
}

TEST(OrderRepairTest, IdGlitchRepairedByTimestamp) {
  std::vector<trace::RoutePoint> pts = StraightDrive(10);
  std::swap(pts[3].point_id, pts[4].point_id);
  EXPECT_EQ(RepairPointOrder(&pts), ChosenOrder::kByTimestamp);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].position.lat_deg, pts[i].position.lat_deg);
  }
}

TEST(OrderRepairTest, PreservesFieldMultisets) {
  std::vector<trace::RoutePoint> pts = StraightDrive(8);
  std::swap(pts[2].timestamp_s, pts[3].timestamp_s);
  std::vector<double> times_before;
  std::vector<int64_t> ids_before;
  for (const auto& p : pts) {
    times_before.push_back(p.timestamp_s);
    ids_before.push_back(p.point_id);
  }
  RepairPointOrder(&pts);
  std::vector<double> times_after;
  std::vector<int64_t> ids_after;
  for (const auto& p : pts) {
    times_after.push_back(p.timestamp_s);
    ids_after.push_back(p.point_id);
  }
  std::sort(times_before.begin(), times_before.end());
  std::sort(ids_before.begin(), ids_before.end());
  EXPECT_EQ(times_after, times_before);  // already monotone after repair
  EXPECT_EQ(ids_after, ids_before);
}

TEST(OrderRepairTest, ShortSequencesAreConsistent) {
  std::vector<trace::RoutePoint> empty;
  EXPECT_EQ(RepairPointOrder(&empty), ChosenOrder::kConsistent);
  std::vector<trace::RoutePoint> one = StraightDrive(1);
  EXPECT_EQ(RepairPointOrder(&one), ChosenOrder::kConsistent);
}

TEST(OrderRepairTest, TripWrapperUpdatesTotalsAndStats) {
  trace::Trip trip;
  trip.points = StraightDrive(10);
  std::swap(trip.points[4].timestamp_s, trip.points[5].timestamp_s);
  OrderRepairStats stats;
  RepairTripOrder(&trip, &stats);
  EXPECT_EQ(stats.trips_repaired_by_id, 1);
  EXPECT_GT(trip.total_distance_m, 0.0);
  EXPECT_NEAR(trip.total_time_s, 90.0, 1e-9);
}

// --- Outlier filter -------------------------------------------------------------

TEST(OutlierFilterTest, RemovesExactDuplicates) {
  std::vector<trace::RoutePoint> pts = StraightDrive(6);
  pts.insert(pts.begin() + 3, pts[2]);  // duplicated record
  OutlierFilterStats stats;
  FilterOutliers(&pts, {}, &stats);
  EXPECT_EQ(stats.duplicates_removed, 1);
  EXPECT_EQ(pts.size(), 6u);
}

TEST(OutlierFilterTest, RemovesGpsSpike) {
  std::vector<trace::RoutePoint> pts = StraightDrive(8);
  pts[4].position.lon_deg += 0.01;  // ~470 m sideways jump
  OutlierFilterStats stats;
  FilterOutliers(&pts, {}, &stats);
  EXPECT_EQ(stats.spikes_removed, 1);
  EXPECT_EQ(pts.size(), 7u);
}

TEST(OutlierFilterTest, RemovesChainedSpikes) {
  std::vector<trace::RoutePoint> pts = StraightDrive(10);
  pts[4].position.lon_deg += 0.012;
  pts[5].position.lon_deg += 0.011;
  OutlierFilterStats stats;
  OutlierFilterOptions options;
  FilterOutliers(&pts, options, &stats);
  // Both displaced points disappear. Neither is a spike on the first
  // scan (they shield each other), so the speed pass removes one and
  // the next round's spike scan catches the survivor — the passes
  // iterate to a joint fixpoint. One on-street point (id 7) is
  // collateral of the speed pass while a displaced neighbour remains.
  for (const trace::RoutePoint& p : pts) {
    EXPECT_NE(p.point_id, 5);
    EXPECT_NE(p.point_id, 6);
  }
  EXPECT_EQ(pts.size(), 7u);
  EXPECT_EQ(stats.spikes_removed + stats.implied_speed_removed, 3);
}

TEST(OutlierFilterTest, RemovesImpliedSpeedViolation) {
  std::vector<trace::RoutePoint> pts = StraightDrive(6);
  // Last point teleports 5 km in 10 s (500 m/s) — not a spike pattern
  // (no return), caught by the implied-speed pass.
  pts[5].position.lat_deg += 0.05;
  OutlierFilterStats stats;
  FilterOutliers(&pts, {}, &stats);
  EXPECT_EQ(stats.implied_speed_removed, 1);
  EXPECT_EQ(pts.size(), 5u);
}

TEST(OutlierFilterTest, CleanDataUntouched) {
  std::vector<trace::RoutePoint> pts = StraightDrive(20);
  OutlierFilterStats stats;
  FilterOutliers(&pts, {}, &stats);
  EXPECT_EQ(pts.size(), 20u);
  EXPECT_EQ(stats.duplicates_removed, 0);
  EXPECT_EQ(stats.spikes_removed, 0);
  EXPECT_EQ(stats.implied_speed_removed, 0);
}

// --- Segmentation ----------------------------------------------------------------

// Appends a stationary block (keepalive points every 40 s) at the last
// position of `pts`.
void AppendStationary(std::vector<trace::RoutePoint>* pts,
                      double duration_s) {
  const trace::RoutePoint anchor = pts->back();
  const double t0 = anchor.timestamp_s;
  for (double dt = 40.0; dt <= duration_s; dt += 40.0) {
    trace::RoutePoint p = anchor;
    p.point_id = pts->back().point_id + 1;
    p.timestamp_s = t0 + dt;
    p.speed_kmh = 0.0;
    pts->push_back(p);
  }
}

TEST(SegmentationTest, SplitsAtLongStationaryRun) {
  trace::Trip trip;
  trip.points = StraightDrive(10);
  AppendStationary(&trip.points, 600.0);  // 10 min stand wait
  std::vector<trace::RoutePoint> second =
      StraightDrive(10, trip.points.back().timestamp_s + 40.0,
                    trip.points.back().point_id + 1);
  for (auto& p : second) {
    p.position.lat_deg += 0.005;  // resumes from elsewhere
  }
  trip.points.insert(trip.points.end(), second.begin(), second.end());

  SegmentationStats stats;
  const std::vector<trace::Trip> segments = SegmentTrip(trip, {}, &stats);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(stats.splits_by_rule[0], 1);  // rule 1
  EXPECT_EQ(segments[0].points.size(), 10u + 4u);  // keeps early waits
  EXPECT_EQ(segments[1].points.size(), 10u);
  // Segment ids derive from the source trip id.
  EXPECT_EQ(segments[0].trip_id, trip.trip_id * 1000);
  EXPECT_EQ(segments[1].trip_id, trip.trip_id * 1000 + 1);
}

TEST(SegmentationTest, ShortRedLightWaitDoesNotSplit) {
  trace::Trip trip;
  trip.points = StraightDrive(10);
  AppendStationary(&trip.points, 120.0);  // < 3 min
  std::vector<trace::RoutePoint> more =
      StraightDrive(5, trip.points.back().timestamp_s + 10.0,
                    trip.points.back().point_id + 1);
  for (auto& p : more) p.position.lat_deg += 0.003;
  trip.points.insert(trip.points.end(), more.begin(), more.end());
  const std::vector<trace::Trip> segments = SegmentTrip(trip, {});
  EXPECT_EQ(segments.size(), 1u);
}

TEST(SegmentationTest, Rule2SplitsLongSilentGap) {
  trace::Trip trip;
  trip.points = StraightDrive(10);
  std::vector<trace::RoutePoint> second = StraightDrive(
      10, trip.points.back().timestamp_s + 480.0,  // 8 min silence
      trip.points.back().point_id + 1);
  for (auto& p : second) p.position.lat_deg += 0.002;  // moved ~200 m
  trip.points.insert(trip.points.end(), second.begin(), second.end());
  SegmentationStats stats;
  const std::vector<trace::Trip> segments = SegmentTrip(trip, {}, &stats);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(stats.splits_by_rule[1], 1);  // rule 2
}

TEST(SegmentationTest, Rule4SplitsSlowLongGap) {
  SegmentationOptions options;
  trace::Trip trip;
  trip.points = StraightDrive(10);
  trace::RoutePoint far = trip.points.back();
  far.point_id += 1;
  far.timestamp_s += 1000.0;          // > 15 min
  far.position.lat_deg += 0.02;       // ~2.2 km (< 3 km, speed > 0.002)
  trip.points.push_back(far);
  SegmentationStats stats;
  const std::vector<trace::Trip> segments =
      SegmentTrip(trip, options, &stats);
  ASSERT_EQ(segments.size(), 2u);
  // Rule 2 has a shorter window so it wins here; force rule 4 by
  // disabling rule 2.
  SegmentationOptions no_rule2 = options;
  no_rule2.rule2_window_s = 1e9;
  SegmentationStats stats4;
  const auto segments4 = SegmentTrip(trip, no_rule2, &stats4);
  ASSERT_EQ(segments4.size(), 2u);
  EXPECT_EQ(stats4.splits_by_rule[3], 1);
}

TEST(SegmentationTest, Rule5ResplitsOverlongSegments) {
  // A 45 km drive with 100 s pauses (under the 3-minute rule 1 window
  // but over the rule-5 90 s window).
  SegmentationOptions options;
  trace::Trip trip;
  trip.points = StraightDrive(3);
  double t = trip.points.back().timestamp_s;
  double lat = trip.points.back().position.lat_deg;
  int64_t id = trip.points.back().point_id;
  for (int block = 0; block < 5; ++block) {
    // Pause 100 s at the current position.
    trace::RoutePoint pause = trip.points.back();
    pause.point_id = ++id;
    pause.timestamp_s = t + 100.0;
    trip.points.push_back(pause);
    t += 100.0;
    // Drive 10 km north in 100-m steps.
    for (int k = 0; k < 100; ++k) {
      trace::RoutePoint p = trip.points.back();
      p.point_id = ++id;
      p.timestamp_s = (t += 10.0);
      p.position.lat_deg = (lat += 0.0009);
      trip.points.push_back(p);
    }
  }
  SegmentationStats stats;
  const std::vector<trace::Trip> segments =
      SegmentTrip(trip, options, &stats);
  EXPECT_GT(segments.size(), 1u);
  EXPECT_GT(stats.splits_by_rule[4], 0);  // rule 5 fired
  for (const trace::Trip& seg : segments) {
    EXPECT_LE(trace::PathLengthMeters(seg.points),
              options.rule5_length_m + 11000.0);
  }
}

TEST(SegmentationTest, EmptyTripYieldsNothing) {
  trace::Trip trip;
  EXPECT_TRUE(SegmentTrip(trip, {}).empty());
}

TEST(SegmentationTest, SegmentTripsProcessesAll) {
  trace::Trip a;
  a.trip_id = 1;
  a.points = StraightDrive(5);
  trace::Trip b;
  b.trip_id = 2;
  b.points = StraightDrive(5, 5000.0, 100);
  SegmentationStats stats;
  const auto segments = SegmentTrips({a, b}, {}, &stats);
  EXPECT_EQ(segments.size(), 2u);
  EXPECT_EQ(stats.trips_in, 2);
  EXPECT_EQ(stats.segments_out, 2);
}

// --- Trip filter ------------------------------------------------------------------

TEST(TripFilterTest, DropsTinyTrips) {
  trace::Trip small;
  small.points = StraightDrive(4);
  trace::Trip ok;
  ok.points = StraightDrive(5);
  TripFilterStats stats;
  const auto kept = FilterTrips({small, ok}, {}, &stats);
  EXPECT_EQ(kept.size(), 1u);
  EXPECT_EQ(stats.removed_too_few_points, 1);
  EXPECT_EQ(stats.kept, 1);
}

TEST(TripFilterTest, DropsOverlongTrips) {
  trace::Trip monster;
  monster.points = StraightDrive(5);
  monster.points.back().position.lat_deg += 0.5;  // ~55 km hop
  TripFilterStats stats;
  const auto kept = FilterTrips({monster}, {}, &stats);
  EXPECT_TRUE(kept.empty());
  EXPECT_EQ(stats.removed_too_long, 1);
  EXPECT_FALSE(PassesTripFilter(monster));
}

TEST(TripFilterTest, BoundaryCounts) {
  TripFilterOptions options;
  options.min_points = 3;
  trace::Trip exactly;
  exactly.points = StraightDrive(3);
  EXPECT_TRUE(PassesTripFilter(exactly, options));
}

// --- Full pipeline -----------------------------------------------------------------

TEST(CleaningPipelineTest, EndToEnd) {
  trace::TraceStore store;
  // Trip 1: clean drive + long stand wait + second drive.
  trace::Trip t1;
  t1.trip_id = 1;
  t1.car_id = 1;
  t1.points = StraightDrive(12);
  AppendStationary(&t1.points, 400.0);
  auto tail = StraightDrive(12, t1.points.back().timestamp_s + 40.0,
                            t1.points.back().point_id + 1);
  for (auto& p : tail) p.position.lat_deg += 0.004;
  t1.points.insert(t1.points.end(), tail.begin(), tail.end());
  // Inject a timestamp glitch and a spike.
  std::swap(t1.points[3].timestamp_s, t1.points[4].timestamp_s);
  t1.points[6].position.lon_deg += 0.01;
  ASSERT_TRUE(store.AddTrip(t1).ok());

  // Trip 2: too short to survive.
  trace::Trip t2;
  t2.trip_id = 2;
  t2.car_id = 1;
  t2.points = StraightDrive(3, 90000.0, 500);
  ASSERT_TRUE(store.AddTrip(t2).ok());

  CleaningReport report;
  const std::vector<trace::Trip> cleaned =
      CleanTrips(store, {}, &report).value();
  EXPECT_EQ(report.raw_trips, 2);
  EXPECT_EQ(report.order.trips_repaired_by_id, 1);
  EXPECT_EQ(report.outliers.spikes_removed, 1);
  EXPECT_GE(report.segmentation.splits_by_rule[0], 1);
  EXPECT_EQ(report.filter.removed_too_few_points, 1);
  ASSERT_EQ(cleaned.size(), 2u);  // the two drives of trip 1
  for (const trace::Trip& seg : cleaned) {
    EXPECT_GE(seg.points.size(), 5u);
    for (size_t i = 1; i < seg.points.size(); ++i) {
      EXPECT_LE(seg.points[i - 1].timestamp_s, seg.points[i].timestamp_s);
    }
  }
  EXPECT_EQ(report.clean_segments, 2);
  EXPECT_GT(report.clean_points, 0);
}

}  // namespace
}  // namespace clean
}  // namespace taxitrace
