// Planar geometry kernel on local east/north coordinates.

#ifndef TAXITRACE_GEO_GEOMETRY_H_
#define TAXITRACE_GEO_GEOMETRY_H_

#include <optional>

#include "taxitrace/geo/coordinates.h"

namespace taxitrace {
namespace geo {

/// Vector arithmetic on EnPoint.
EnPoint operator+(const EnPoint& a, const EnPoint& b);
EnPoint operator-(const EnPoint& a, const EnPoint& b);
EnPoint operator*(double s, const EnPoint& p);

/// Dot and 2-D cross products.
double Dot(const EnPoint& a, const EnPoint& b);
double Cross(const EnPoint& a, const EnPoint& b);

/// Euclidean norm and distance, metres.
double Norm(const EnPoint& p);
double Distance(const EnPoint& a, const EnPoint& b);

/// A directed line segment.
struct Segment {
  EnPoint a;
  EnPoint b;

  /// Segment length, metres.
  [[nodiscard]] double Length() const { return Distance(a, b); }

  /// Direction of travel a->b in radians, measured counterclockwise from
  /// east, in (-pi, pi]. Zero-length segments report 0.
  [[nodiscard]] double Heading() const;
};

/// Result of projecting a point onto a segment.
struct PointProjection {
  EnPoint point;   ///< Closest point on the segment.
  double t = 0.0;  ///< Parameter along a->b clamped to [0, 1].
  double distance = 0.0;  ///< Distance from the query to `point`.
};

/// Closest point on `s` to `p` (clamped to the segment).
PointProjection ProjectOntoSegment(const EnPoint& p, const Segment& s);

/// Proper or touching intersection point of two segments, if any. For
/// collinear overlapping segments returns one point of the overlap.
std::optional<EnPoint> SegmentIntersection(const Segment& s1,
                                           const Segment& s2);

/// Smallest absolute angle between two headings, in [0, pi].
double AngleBetweenHeadings(double h1, double h2);

/// Smallest absolute angle between two headings treating opposite
/// directions as equal (for undirected road geometry), in [0, pi/2].
double UndirectedAngleBetweenHeadings(double h1, double h2);

/// Axis-aligned bounding box.
struct Bbox {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;

  /// An inverted (empty) box that any Extend() fixes up.
  static Bbox Empty();

  /// True once at least one point has been added.
  [[nodiscard]] bool IsValid() const {
    return min_x <= max_x && min_y <= max_y;
  }

  /// Grows the box to include `p`.
  void Extend(const EnPoint& p);

  /// Grows the box to include all of `other`.
  void Extend(const Bbox& other);

  /// Grows by `margin` metres on every side.
  [[nodiscard]] Bbox Inflated(double margin) const;

  /// True when `p` lies inside or on the boundary.
  [[nodiscard]] bool Contains(const EnPoint& p) const;

  /// True when the two boxes overlap (boundary touch counts).
  [[nodiscard]] bool Intersects(const Bbox& other) const;
};

}  // namespace geo
}  // namespace taxitrace

#endif  // TAXITRACE_GEO_GEOMETRY_H_
