#include <gtest/gtest.h>

#include "taxitrace/coach/advisor.h"
#include "taxitrace/coach/driver_profile.h"
#include "taxitrace/coach/trip_score.h"

namespace taxitrace {
namespace coach {
namespace {

// A trip with controllable speed pattern: `speeds` become points 10 s
// apart along a straight street, ~83 m per 30 km/h step.
trace::Trip TripWithSpeeds(const std::vector<double>& speeds,
                           double fuel_per_point = 4.0) {
  trace::Trip trip;
  trip.trip_id = 1;
  double lat = 65.0;
  for (size_t i = 0; i < speeds.size(); ++i) {
    trace::RoutePoint p;
    p.point_id = static_cast<int64_t>(i) + 1;
    p.timestamp_s = 10.0 * static_cast<double>(i);
    // Advance position proportionally to speed.
    lat += speeds[i] / 3.6 * 10.0 / 111194.9;
    p.position = geo::LatLon{lat, 25.47};
    p.speed_kmh = speeds[i];
    p.fuel_delta_ml = fuel_per_point;
    trip.points.push_back(p);
  }
  return trip;
}

TEST(TripScoreTest, CleanCruiseScoresHigh) {
  const trace::Trip trip =
      TripWithSpeeds(std::vector<double>(30, 38.0), 5.0);
  const TripScore score = ScoreTrip(trip, nullptr, nullptr);
  EXPECT_GT(score.eco_score, 85.0);
  EXPECT_DOUBLE_EQ(score.idle_share, 0.0);
  EXPECT_EQ(score.harsh_events, 0);
  EXPECT_GT(score.distance_km, 2.5);
}

TEST(TripScoreTest, IdlingAndStopsLowerTheScore) {
  std::vector<double> speeds;
  for (int i = 0; i < 15; ++i) speeds.push_back(0.0);   // long idle
  for (int i = 0; i < 15; ++i) speeds.push_back(30.0);
  const TripScore score =
      ScoreTrip(TripWithSpeeds(speeds), nullptr, nullptr);
  EXPECT_NEAR(score.idle_share, 0.5, 1e-9);
  EXPECT_NEAR(score.low_speed_share, 0.5, 1e-9);
  EXPECT_LT(score.eco_score, 70.0);
}

TEST(TripScoreTest, HarshEventsCounted) {
  // 0 -> 130 -> 0 -> 130: three jumps of 13 km/h per second.
  const TripScore score = ScoreTrip(
      TripWithSpeeds({0.0, 130.0, 0.0, 130.0, 130.0}), nullptr, nullptr);
  EXPECT_EQ(score.harsh_events, 3);
  EXPECT_GT(score.harsh_per_km, 0.0);
}

TEST(TripScoreTest, SpeedingNeedsAMatch) {
  // Network with a 40 km/h edge under the trip.
  roadnet::RoadNetwork net(geo::LatLon{65.0, 25.47});
  const auto a = net.AddVertex({-100, -100}, false);
  const auto b = net.AddVertex({-100, 8000}, false);
  roadnet::Edge e;
  e.from = a;
  e.to = b;
  e.geometry = geo::Polyline({{-100, -100}, {-100, 8000}});
  e.speed_limit_kmh = 40.0;
  const auto eid = net.AddEdge(std::move(e));

  const trace::Trip trip = TripWithSpeeds({60.0, 60.0, 60.0, 35.0});
  mapmatch::MatchedRoute route;
  for (size_t i = 0; i < trip.points.size(); ++i) {
    route.points.push_back(mapmatch::MatchedPoint{
        i, roadnet::EdgePosition{eid, 10.0 * static_cast<double>(i)},
        3.0});
  }
  const TripScore with_match = ScoreTrip(trip, &route, &net);
  EXPECT_NEAR(with_match.speeding_share, 0.75, 1e-9);
  const TripScore without_match = ScoreTrip(trip, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(without_match.speeding_share, 0.0);
  EXPECT_LT(with_match.eco_score, without_match.eco_score);
}

TEST(TripScoreTest, EmptyTripIsNeutral) {
  const TripScore score = ScoreTrip(trace::Trip{}, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(score.distance_km, 0.0);
  EXPECT_DOUBLE_EQ(score.eco_score, 0.0);
}

// --- Advisor ----------------------------------------------------------------

TEST(AdvisorTest, FlagsIdling) {
  TripScore score;
  score.idle_share = 0.4;
  score.duration_min = 20.0;
  const std::vector<Advice> advice = AdviseTrip(score);
  ASSERT_FALSE(advice.empty());
  EXPECT_EQ(advice[0].topic, AdviceTopic::kIdling);
  EXPECT_GT(advice[0].potential_saving_ml, 0.0);
  EXPECT_NE(advice[0].message.find("idled"), std::string::npos);
}

TEST(AdvisorTest, CleanTripGetsPraise) {
  TripScore score;
  score.eco_score = 93.0;
  const std::vector<Advice> advice = AdviseTrip(score);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].topic, AdviceTopic::kWellDriven);
  EXPECT_DOUBLE_EQ(advice[0].potential_saving_ml, 0.0);
}

TEST(AdvisorTest, MultipleFindingsSortedBySaving) {
  TripScore score;
  score.idle_share = 0.5;
  score.duration_min = 30.0;
  score.harsh_events = 20;
  score.harsh_per_km = 4.0;
  score.distance_km = 5.0;
  score.speeding_share = 0.3;
  score.low_speed_share = 0.5;
  score.fuel_excess_ml = 200.0;
  const std::vector<Advice> advice = AdviseTrip(score);
  EXPECT_GE(advice.size(), 3u);
  for (size_t i = 1; i < advice.size(); ++i) {
    EXPECT_GE(advice[i - 1].potential_saving_ml,
              advice[i].potential_saving_ml);
  }
}

TEST(AdvisorTest, TopicNamesStable) {
  EXPECT_EQ(AdviceTopicName(AdviceTopic::kIdling), "idling");
  EXPECT_EQ(AdviceTopicName(AdviceTopic::kRouteChoice), "route_choice");
  EXPECT_EQ(AdviceTopicName(AdviceTopic::kWellDriven), "well_driven");
}

// --- Driver profiles -----------------------------------------------------------

TEST(DriverProfileTest, AggregatesAndRanks) {
  std::vector<ScoredTrip> trips;
  for (int i = 0; i < 5; ++i) {
    ScoredTrip t;
    t.car_id = 1;
    t.score.eco_score = 80.0 + i;  // mean 82
    t.score.idle_share = 0.1;
    t.score.fuel_excess_ml = 100.0;
    trips.push_back(t);
  }
  for (int i = 0; i < 3; ++i) {
    ScoredTrip t;
    t.car_id = 2;
    t.score.eco_score = 60.0;
    t.score.idle_share = 0.3;
    t.score.fuel_excess_ml = 300.0;
    trips.push_back(t);
  }
  const std::vector<DriverProfile> profiles = BuildDriverProfiles(trips);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].car_id, 1);  // better driver first
  EXPECT_NEAR(profiles[0].mean_eco_score, 82.0, 1e-9);
  EXPECT_EQ(profiles[0].trips, 5);
  EXPECT_DOUBLE_EQ(profiles[0].best_trip_score, 84.0);
  EXPECT_DOUBLE_EQ(profiles[0].worst_trip_score, 80.0);
  EXPECT_NEAR(profiles[0].total_fuel_excess_l, 0.5, 1e-9);
  EXPECT_EQ(profiles[1].car_id, 2);
  EXPECT_NEAR(profiles[1].mean_idle_share, 0.3, 1e-9);
}

TEST(DriverProfileTest, EmptyInput) {
  EXPECT_TRUE(BuildDriverProfiles({}).empty());
}

}  // namespace
}  // namespace coach
}  // namespace taxitrace
