# Empty compiler generated dependencies file for eco_driving.
# This may be replaced when dependencies are built.
