#include "taxitrace/mapmatch/hmm_matcher.h"

#include <algorithm>
#include <cmath>

namespace taxitrace {
namespace mapmatch {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

struct Candidate {
  roadnet::EdgePosition position;
  geo::EnPoint snapped;
  double emission_logp = 0.0;
  double distance = 0.0;
};

}  // namespace

HmmMatcher::HmmMatcher(const roadnet::RoadNetwork* network,
                       const roadnet::SpatialIndex* index,
                       HmmOptions options)
    : network_(network),
      index_(index),
      gap_filler_(network),
      options_(options) {}

Result<MatchedRoute> HmmMatcher::Match(const trace::Trip& trip) const {
  if (trip.points.size() < 2) {
    return Status::InvalidArgument("trip has fewer than two points");
  }
  const geo::LocalProjection& proj = network_->projection();
  // Per-call memo: the stitching pass (step 5) re-queries transitions
  // the Viterbi pass already routed. Function-local, so results cannot
  // depend on scheduling.
  RouteCache route_cache(gap_filler_.options().route_cache_capacity);

  // 1. Keep one point per >=10 m of movement (stationary clusters carry
  //    no routing information and blow up the DP).
  std::vector<size_t> kept;
  std::vector<geo::EnPoint> pts;
  for (size_t i = 0; i < trip.points.size(); ++i) {
    const geo::EnPoint p = proj.Forward(trip.points[i].position);
    if (!pts.empty() && geo::Distance(pts.back(), p) < 10.0 &&
        i + 1 != trip.points.size()) {
      continue;
    }
    kept.push_back(i);
    pts.push_back(p);
  }
  // Positional spike screen: an out-and-back jump is indistinguishable
  // from a real detour by position alone once the sampling interval is
  // long, so drop points far from both neighbours that sit close
  // together.
  {
    bool changed = true;
    while (changed && pts.size() >= 3) {
      changed = false;
      for (size_t i = 1; i + 1 < pts.size(); ++i) {
        const double d1 = geo::Distance(pts[i - 1], pts[i]);
        const double d2 = geo::Distance(pts[i], pts[i + 1]);
        if (d1 > 250.0 && d2 > 250.0 &&
            geo::Distance(pts[i - 1], pts[i + 1]) < 0.5 * (d1 + d2)) {
          pts.erase(pts.begin() + static_cast<ptrdiff_t>(i));
          kept.erase(kept.begin() + static_cast<ptrdiff_t>(i));
          changed = true;
          break;
        }
      }
    }
  }

  // 2. Candidate states per kept point.
  std::vector<std::vector<Candidate>> states(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    const std::vector<roadnet::EdgeCandidate> nearby =
        index_->Nearby(pts[i], options_.search_radius_m);
    for (const roadnet::EdgeCandidate& cand : nearby) {
      if (static_cast<int>(states[i].size()) >= options_.max_candidates) {
        break;
      }
      Candidate state;
      state.position =
          roadnet::EdgePosition{cand.edge, cand.projection.arc_length};
      state.snapped = cand.projection.point;
      state.distance = cand.projection.distance;
      const double z = cand.projection.distance / options_.gps_sigma_m;
      state.emission_logp = -0.5 * z * z;
      states[i].push_back(state);
    }
  }

  // 3. Viterbi over the candidate lattice.
  std::vector<std::vector<double>> logp(pts.size());
  std::vector<std::vector<int>> backpointer(pts.size());
  int first_layer = -1;
  int previous_layer = -1;
  int consecutive_skips = 0;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (states[i].empty()) continue;  // unmatched point: skipped
    logp[i].assign(states[i].size(), kNegInf);
    backpointer[i].assign(states[i].size(), -1);
    if (previous_layer < 0) {
      for (size_t b = 0; b < states[i].size(); ++b) {
        logp[i][b] = states[i][b].emission_logp;
      }
      first_layer = static_cast<int>(i);
      previous_layer = static_cast<int>(i);
      continue;
    }
    const size_t prev = static_cast<size_t>(previous_layer);
    const double straight = geo::Distance(pts[prev], pts[i]);
    // GPS outlier screen: a step implying an impossible straight-line
    // speed cannot be real movement; drop the layer (unless so many
    // were dropped that this is a genuine gap — then fall through and
    // let the chain restart below).
    const double dt = std::max(
        1.0, trip.points[kept[i]].timestamp_s -
                 trip.points[kept[prev]].timestamp_s);
    if (straight / dt > options_.max_speed_ms &&
        consecutive_skips < options_.max_consecutive_skips) {
      logp[i].clear();
      backpointer[i].clear();
      ++consecutive_skips;
      continue;
    }
    bool any_finite = false;
    for (size_t b = 0; b < states[i].size(); ++b) {
      for (size_t a = 0; a < states[prev].size(); ++a) {
        if (logp[prev][a] == kNegInf) continue;
        const double net = gap_filler_.NetworkDistance(
            states[prev][a].position, states[i][b].position, &route_cache);
        if (!(net < options_.max_detour_factor * straight +
                        options_.detour_slack_m)) {
          continue;
        }
        const double transition_logp =
            -std::abs(net - straight) / options_.beta_m;
        const double total =
            logp[prev][a] + transition_logp + states[i][b].emission_logp;
        if (total > logp[i][b]) {
          logp[i][b] = total;
          backpointer[i][b] = static_cast<int>(a);
          any_finite = true;
        }
      }
    }
    if (!any_finite) {
      if (consecutive_skips < options_.max_consecutive_skips) {
        // Likely a stray point with no plausible connection: drop it.
        logp[i].clear();
        backpointer[i].clear();
        ++consecutive_skips;
        continue;
      }
      // Broken chain (e.g. a long data gap with no plausible route):
      // restart the lattice here; the stitcher will bridge with
      // Dijkstra.
      for (size_t b = 0; b < states[i].size(); ++b) {
        logp[i][b] = states[i][b].emission_logp;
        backpointer[i][b] = -1;
      }
    }
    consecutive_skips = 0;
    previous_layer = static_cast<int>(i);
  }
  if (previous_layer < 0 || first_layer == previous_layer) {
    return Status::NotFound("fewer than two points could be matched");
  }

  // 4. Backtrack from the best final state.
  struct Chosen {
    size_t layer;   // index into pts/kept
    int candidate;  // index into states[layer]
  };
  std::vector<Chosen> chain;
  {
    size_t layer = static_cast<size_t>(previous_layer);
    int best = -1;
    double best_logp = kNegInf;
    for (size_t b = 0; b < logp[layer].size(); ++b) {
      if (logp[layer][b] > best_logp) {
        best_logp = logp[layer][b];
        best = static_cast<int>(b);
      }
    }
    while (best >= 0) {
      chain.push_back(Chosen{layer, best});
      const int prev_candidate = backpointer[layer][static_cast<size_t>(best)];
      if (prev_candidate < 0) {
        // Find the previous populated layer (chain break or start).
        size_t prev_layer = layer;
        bool found = false;
        while (prev_layer > 0) {
          --prev_layer;
          if (!logp[prev_layer].empty()) {
            found = true;
            break;
          }
        }
        if (!found || layer == static_cast<size_t>(first_layer)) break;
        // Restarted chain: pick the best state of the previous layer.
        layer = prev_layer;
        best = -1;
        double lp = kNegInf;
        for (size_t b = 0; b < logp[layer].size(); ++b) {
          if (logp[layer][b] > lp) {
            lp = logp[layer][b];
            best = static_cast<int>(b);
          }
        }
        continue;
      }
      // Normal backpointer step: move to the previous populated layer.
      size_t prev_layer = layer;
      do {
        --prev_layer;
      } while (logp[prev_layer].empty() && prev_layer > 0);
      layer = prev_layer;
      best = prev_candidate;
    }
    std::reverse(chain.begin(), chain.end());
  }
  if (chain.size() < 2) {
    return Status::NotFound("Viterbi chain degenerate");
  }

  // 5. Stitch the maximum-likelihood chain into a route.
  MatchedRoute route;
  route.points_skipped =
      static_cast<int>(trip.points.size() - chain.size());
  const Candidate& start =
      states[chain[0].layer][static_cast<size_t>(chain[0].candidate)];
  route.points.push_back(MatchedPoint{kept[chain[0].layer],
                                      start.position, start.distance});
  route.geometry = geo::Polyline({start.snapped});
  for (size_t k = 1; k < chain.size(); ++k) {
    const Candidate& prev =
        states[chain[k - 1].layer]
              [static_cast<size_t>(chain[k - 1].candidate)];
    const Candidate& cur =
        states[chain[k].layer][static_cast<size_t>(chain[k].candidate)];
    route.points.push_back(
        MatchedPoint{kept[chain[k].layer], cur.position, cur.distance});
    Result<roadnet::Path> path =
        gap_filler_.Connect(prev.position, cur.position, &route_cache);
    if (!path.ok()) continue;
    if (gap_filler_.IsGap(path->length_m)) ++route.gaps_filled;
    for (const roadnet::PathStep& s : path->steps) {
      if (!route.steps.empty() && route.steps.back().edge == s.edge) {
        continue;
      }
      route.steps.push_back(s);
    }
    route.geometry.Extend(path->geometry);
    route.length_m += path->length_m;
  }
  return route;
}

}  // namespace mapmatch
}  // namespace taxitrace
