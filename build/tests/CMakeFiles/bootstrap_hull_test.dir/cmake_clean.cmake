file(REMOVE_RECURSE
  "CMakeFiles/bootstrap_hull_test.dir/bootstrap_hull_test.cc.o"
  "CMakeFiles/bootstrap_hull_test.dir/bootstrap_hull_test.cc.o.d"
  "bootstrap_hull_test"
  "bootstrap_hull_test.pdb"
  "bootstrap_hull_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootstrap_hull_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
