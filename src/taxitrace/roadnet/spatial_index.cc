#include "taxitrace/roadnet/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace taxitrace {
namespace roadnet {

SpatialIndex::SpatialIndex(const RoadNetwork* network, double cell_size_m)
    : network_(network), cell_size_m_(cell_size_m) {
  for (const Edge& e : network_->edges()) {
    const std::vector<geo::EnPoint>& pts = e.geometry.points();
    std::unordered_set<uint64_t> edge_cells;
    for (size_t i = 0; i + 1 < pts.size(); ++i) {
      // Walk the segment at sub-cell steps so no crossed cell is missed.
      const double len = geo::Distance(pts[i], pts[i + 1]);
      const int steps =
          std::max(1, static_cast<int>(std::ceil(len / (cell_size_m_ / 2))));
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        const geo::EnPoint p = pts[i] + t * (pts[i + 1] - pts[i]);
        const CellKey key = KeyFor(p);
        const uint64_t packed =
            (static_cast<uint64_t>(static_cast<uint32_t>(key.cx)) << 32) |
            static_cast<uint32_t>(key.cy);
        if (edge_cells.insert(packed).second) {
          cells_[key].push_back(e.id);
        }
      }
    }
  }
}

SpatialIndex::CellKey SpatialIndex::KeyFor(const geo::EnPoint& p) const {
  return CellKey{static_cast<int32_t>(std::floor(p.x / cell_size_m_)),
                 static_cast<int32_t>(std::floor(p.y / cell_size_m_))};
}

std::vector<EdgeCandidate> SpatialIndex::Nearby(const geo::EnPoint& p,
                                                double radius_m) const {
  // Gather candidate edges from all cells overlapping the query disc's
  // bounding square, padded by one cell so edge geometry that merely
  // passes near a cell corner is still found.
  const int reach =
      static_cast<int>(std::ceil(radius_m / cell_size_m_)) + 1;
  const CellKey center = KeyFor(p);
  std::unordered_set<EdgeId> candidate_edges;
  for (int dx = -reach; dx <= reach; ++dx) {
    for (int dy = -reach; dy <= reach; ++dy) {
      const auto it =
          cells_.find(CellKey{center.cx + dx, center.cy + dy});
      if (it == cells_.end()) continue;
      candidate_edges.insert(it->second.begin(), it->second.end());
    }
  }
  std::vector<EdgeCandidate> out;
  for (EdgeId id : candidate_edges) {
    const geo::PolylineProjection proj =
        network_->edge(id).geometry.Project(p);
    if (proj.distance <= radius_m) {
      out.push_back(EdgeCandidate{id, proj});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EdgeCandidate& a, const EdgeCandidate& b) {
              if (a.projection.distance != b.projection.distance) {
                return a.projection.distance < b.projection.distance;
              }
              return a.edge < b.edge;
            });
  return out;
}

std::optional<EdgeCandidate> SpatialIndex::Nearest(
    const geo::EnPoint& p, double max_radius_m) const {
  // Expand the search ring until a hit is found or the cap is reached.
  double radius = cell_size_m_;
  while (radius < max_radius_m * 2) {
    std::vector<EdgeCandidate> found = Nearby(p, std::min(radius, max_radius_m));
    if (!found.empty()) return found.front();
    if (radius >= max_radius_m) break;
    radius *= 2;
  }
  return std::nullopt;
}

}  // namespace roadnet
}  // namespace taxitrace
