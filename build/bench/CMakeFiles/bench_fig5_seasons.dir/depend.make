# Empty dependencies file for bench_fig5_seasons.
# This may be replaced when dependencies are built.
