// Known-good: per-index slots, body-local state, and value captures
// inside ParallelFor lambdas are schedule-invariant.

#include "taxitrace/core/fake.h"

namespace taxitrace {

Status GoodPerIndexSlot(const Executor& ex, std::vector<int>& out) {
  return ex.ParallelFor(0, 100, [&](int64_t i) -> Status {
    out[i] += 1;
    return Status::OK();
  });
}

Status GoodBodyLocal(const Executor& ex, std::vector<int>& out) {
  return ex.ParallelFor(0, 100, [&out](int64_t i) -> Status {
    int local = 0;
    ++local;
    out[i] = local;
    return Status::OK();
  });
}

Status GoodValueCapture(const Executor& ex) {
  int snapshot = 5;
  return ex.ParallelFor(0, 10, [snapshot](int64_t i) -> Status {
    int x = snapshot + static_cast<int>(i);
    (void)x;
    return Status::OK();
  });
}

}  // namespace taxitrace
