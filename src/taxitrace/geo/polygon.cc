#include "taxitrace/geo/polygon.h"

#include <cmath>

namespace taxitrace {
namespace geo {
namespace {

// True when p lies within tol metres of the ring boundary. Squared
// distances throughout (no sqrt), and the scan exits on the first
// segment close enough.
bool NearBoundary(const std::vector<EnPoint>& ring, const EnPoint& p,
                  double tol) {
  const double tol2 = tol * tol;
  for (size_t i = 0; i < ring.size(); ++i) {
    const EnPoint& a = ring[i];
    const EnPoint& b = ring[(i + 1) % ring.size()];
    const EnPoint d = b - a;
    const double len2 = Dot(d, d);
    const double t =
        len2 == 0.0 ? 0.0 : std::clamp(Dot(p - a, d) / len2, 0.0, 1.0);
    const EnPoint closest = a + t * d;
    const EnPoint gap = p - closest;
    if (Dot(gap, gap) < tol2) return true;
  }
  return false;
}

}  // namespace

Polygon::Polygon(std::vector<EnPoint> ring) : ring_(std::move(ring)) {
  for (const EnPoint& p : ring_) bounds_.Extend(p);
}

bool Polygon::Contains(const EnPoint& p) const {
  if (empty() || !bounds_.Contains(p)) return false;
  // Ray casting first: the boundary tolerance can only turn an
  // "outside" verdict into "inside", so interior points (the common hot
  // query) never pay for the boundary scan.
  bool inside = false;
  for (size_t i = 0, j = ring_.size() - 1; i < ring_.size(); j = i++) {
    const EnPoint& a = ring_[i];
    const EnPoint& b = ring_[j];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside || NearBoundary(ring_, p, 1e-9);
}

bool Polygon::IntersectsSegment(const Segment& s) const {
  if (empty()) return false;
  Bbox seg_box = Bbox::Empty();
  seg_box.Extend(s.a);
  seg_box.Extend(s.b);
  if (!bounds_.Intersects(seg_box)) return false;
  if (Contains(s.a) || Contains(s.b)) return true;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Segment edge{ring_[i], ring_[(i + 1) % ring_.size()]};
    if (SegmentIntersection(s, edge).has_value()) return true;
  }
  return false;
}

double Polygon::SignedArea() const {
  double twice = 0.0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const EnPoint& a = ring_[i];
    const EnPoint& b = ring_[(i + 1) % ring_.size()];
    twice += Cross(a, b);
  }
  return twice / 2.0;
}

Bbox Polygon::Bounds() const { return bounds_; }

Polygon BufferPolyline(const Polyline& line, double half_width) {
  const std::vector<EnPoint>& pts = line.points();
  if (pts.size() < 2 || half_width <= 0.0) return Polygon();

  // Unit normals per segment (left side).
  std::vector<EnPoint> normals;
  normals.reserve(pts.size() - 1);
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const EnPoint d = pts[i + 1] - pts[i];
    const double len = Norm(d);
    if (len == 0.0) {
      normals.push_back(normals.empty() ? EnPoint{0.0, 1.0} : normals.back());
    } else {
      normals.push_back(EnPoint{-d.y / len, d.x / len});
    }
  }

  // Offset vertex i by the (clamped) average of adjacent segment normals.
  const auto offset_at = [&](size_t i, double sign) {
    EnPoint n;
    if (i == 0) {
      n = normals.front();
    } else if (i + 1 == pts.size()) {
      n = normals.back();
    } else {
      n = normals[i - 1] + normals[i];
      const double len = Norm(n);
      n = len < 1e-12 ? normals[i] : (1.0 / len) * n;
      // Mitre scaling so the offset curve stays half_width from both
      // segments, clamped to avoid spikes at sharp turns.
      const double cos_half = Dot(n, normals[i]);
      const double scale = cos_half > 0.25 ? 1.0 / cos_half : 4.0;
      n = scale * n;
    }
    return pts[i] + (sign * half_width) * n;
  };

  std::vector<EnPoint> ring;
  ring.reserve(2 * pts.size());
  for (size_t i = 0; i < pts.size(); ++i) ring.push_back(offset_at(i, 1.0));
  for (size_t i = pts.size(); i-- > 0;) ring.push_back(offset_at(i, -1.0));
  return Polygon(std::move(ring));
}

Polygon MakeRectangle(const Bbox& box) {
  return Polygon({EnPoint{box.min_x, box.min_y}, EnPoint{box.max_x, box.min_y},
                  EnPoint{box.max_x, box.max_y},
                  EnPoint{box.min_x, box.max_y}});
}

}  // namespace geo
}  // namespace taxitrace
