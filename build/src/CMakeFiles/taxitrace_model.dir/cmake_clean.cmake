file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/cholesky.cc.o"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/cholesky.cc.o.d"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/diagnostics.cc.o"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/diagnostics.cc.o.d"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/matrix.cc.o"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/matrix.cc.o.d"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/mixed_model.cc.o"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/mixed_model.cc.o.d"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/ols.cc.o"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/ols.cc.o.d"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/one_way_reml.cc.o"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/one_way_reml.cc.o.d"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/qq.cc.o"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/qq.cc.o.d"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/significance.cc.o"
  "CMakeFiles/taxitrace_model.dir/taxitrace/model/significance.cc.o.d"
  "libtaxitrace_model.a"
  "libtaxitrace_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
