#include "taxitrace/model/cholesky.h"

#include <cmath>

namespace taxitrace {
namespace model {

Result<Matrix> CholeskyDecompose(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("matrix is not square");
  }
  const size_t n = a.rows();
  Matrix lower(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= lower(i, k) * lower(j, k);
      if (i == j) {
        // Relative tolerance: a pivot collapsing by >12 orders of
        // magnitude marks a numerically singular (collinear) system.
        const double tolerance = 1e-12 * std::max(1.0, std::abs(a(i, i)));
        if (sum <= tolerance || !std::isfinite(sum)) {
          return Status::FailedPrecondition(
              "matrix is not positive definite");
        }
        lower(i, i) = std::sqrt(sum);
      } else {
        lower(i, j) = sum / lower(j, j);
      }
    }
  }
  return lower;
}

Vector CholeskySolve(const Matrix& lower, const Vector& b) {
  const size_t n = lower.rows();
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= lower(i, k) * y[k];
    y[i] = sum / lower(i, i);
  }
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= lower(k, ii) * x[k];
    x[ii] = sum / lower(ii, ii);
  }
  return x;
}

Result<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  TAXITRACE_ASSIGN_OR_RETURN(const Matrix lower, CholeskyDecompose(a));
  return CholeskySolve(lower, b);
}

double LogDetFromCholesky(const Matrix& lower) {
  double sum = 0.0;
  for (size_t i = 0; i < lower.rows(); ++i) sum += std::log(lower(i, i));
  return 2.0 * sum;
}

Result<Matrix> InvertSpd(const Matrix& a) {
  TAXITRACE_ASSIGN_OR_RETURN(const Matrix lower, CholeskyDecompose(a));
  const size_t n = a.rows();
  Matrix inv(n, n);
  Vector unit(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    unit[j] = 1.0;
    const Vector col = CholeskySolve(lower, unit);
    for (size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    unit[j] = 0.0;
  }
  return inv;
}

}  // namespace model
}  // namespace taxitrace
