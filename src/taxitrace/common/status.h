// Status: lightweight error model in the RocksDB/Arrow idiom.
//
// Library functions that can fail return a Status (or a Result<T>, see
// result.h) instead of throwing. A Status is cheap to copy in the OK case
// (no allocation) and carries a code plus a human-readable message
// otherwise.

#ifndef TAXITRACE_COMMON_STATUS_H_
#define TAXITRACE_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>

namespace taxitrace {

/// Error categories used across the library.
enum class StatusCode : unsigned char {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kCorruption,
  kIOError,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation that can fail. OK statuses carry no state and are
/// free to copy; error statuses carry a message. Marked [[nodiscard]] so a
/// dropped error status is a compile error, not a silent data-quality bug.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True when the operation succeeded.
  [[nodiscard]] bool ok() const { return rep_ == nullptr; }

  /// The status code; kOk for OK statuses.
  [[nodiscard]] StatusCode code() const {
    return rep_ ? rep_->code : StatusCode::kOk;
  }

  /// The error message; empty for OK statuses.
  [[nodiscard]] const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  [[nodiscard]] bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  [[nodiscard]] bool IsNotFound() const {
    return code() == StatusCode::kNotFound;
  }
  [[nodiscard]] bool IsOutOfRange() const {
    return code() == StatusCode::kOutOfRange;
  }
  [[nodiscard]] bool IsCorruption() const {
    return code() == StatusCode::kCorruption;
  }
  [[nodiscard]] bool IsIOError() const {
    return code() == StatusCode::kIOError;
  }
  [[nodiscard]] bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }

  /// "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<const Rep> rep_;  // nullptr means OK
};

/// Propagates a non-OK Status to the caller.
#define TAXITRACE_RETURN_IF_ERROR(expr)                \
  do {                                                 \
    ::taxitrace::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                         \
  } while (false)

}  // namespace taxitrace

#endif  // TAXITRACE_COMMON_STATUS_H_
