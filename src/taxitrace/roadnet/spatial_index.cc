#include "taxitrace/roadnet/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace taxitrace {
namespace roadnet {

SpatialIndex::SpatialIndex(const RoadNetwork* network, double cell_size_m)
    : network_(network),
      cell_size_m_(cell_size_m),
      query_stats_(std::make_shared<AtomicStats>()) {
  for (const Edge& e : network_->edges()) {
    const std::vector<geo::EnPoint>& pts = e.geometry.points();
    if (pts.empty()) {
      // An edge with no geometry has no position to index; dropping it
      // here would make Nearby/Nearest silently blind to it, so the
      // drop is counted and surfaced through stats().
      ++empty_geometry_edges_;
      continue;
    }
    std::unordered_set<uint64_t> edge_cells;
    const auto insert_cell = [&](const geo::EnPoint& p) {
      const CellKey key = KeyFor(p);
      const uint64_t packed =
          (static_cast<uint64_t>(static_cast<uint32_t>(key.cx)) << 32) |
          static_cast<uint32_t>(key.cy);
      if (edge_cells.insert(packed).second) {
        cells_[key].push_back(e.id);
      }
    };
    if (pts.size() == 1) {
      // Single-point (zero-length) geometry: the old segment loop
      // skipped these edges entirely and queries near them missed a
      // real edge. Index the lone point's cell instead.
      insert_cell(pts[0]);
      continue;
    }
    for (size_t i = 0; i + 1 < pts.size(); ++i) {
      // Walk the segment at sub-cell steps so no crossed cell is missed.
      const double len = geo::Distance(pts[i], pts[i + 1]);
      const int steps =
          std::max(1, static_cast<int>(std::ceil(len / (cell_size_m_ / 2))));
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        insert_cell(pts[i] + t * (pts[i + 1] - pts[i]));
      }
    }
  }
}

SpatialIndex::CellKey SpatialIndex::KeyFor(const geo::EnPoint& p) const {
  return CellKey{static_cast<int32_t>(std::floor(p.x / cell_size_m_)),
                 static_cast<int32_t>(std::floor(p.y / cell_size_m_))};
}

std::vector<EdgeCandidate> SpatialIndex::Nearby(const geo::EnPoint& p,
                                                double radius_m) const {
  // Gather candidate edges from all cells overlapping the query disc's
  // bounding square, padded by one cell so edge geometry that merely
  // passes near a cell corner is still found.
  const int reach =
      static_cast<int>(std::ceil(radius_m / cell_size_m_)) + 1;
  const CellKey center = KeyFor(p);
  int64_t cells_probed = 0;
  std::unordered_set<EdgeId> candidate_edges;
  for (int dx = -reach; dx <= reach; ++dx) {
    for (int dy = -reach; dy <= reach; ++dy) {
      ++cells_probed;
      const auto it =
          cells_.find(CellKey{center.cx + dx, center.cy + dy});
      if (it == cells_.end()) continue;
      candidate_edges.insert(it->second.begin(), it->second.end());
    }
  }
  std::vector<EdgeCandidate> out;
  for (EdgeId id : candidate_edges) {
    const geo::PolylineProjection proj =
        network_->edge(id).geometry.Project(p);
    if (proj.distance <= radius_m) {
      out.push_back(EdgeCandidate{id, proj});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EdgeCandidate& a, const EdgeCandidate& b) {
              if (a.projection.distance != b.projection.distance) {
                return a.projection.distance < b.projection.distance;
              }
              return a.edge < b.edge;
            });

  // Counters are batched into a few relaxed adds per query; sums over
  // deterministic per-query work, so totals are thread-count-invariant.
  query_stats_->queries.fetch_add(1, std::memory_order_relaxed);
  query_stats_->cells_probed.fetch_add(cells_probed,
                                       std::memory_order_relaxed);
  query_stats_->candidates.fetch_add(
      static_cast<int64_t>(candidate_edges.size()),
      std::memory_order_relaxed);
  query_stats_->hits.fetch_add(static_cast<int64_t>(out.size()),
                               std::memory_order_relaxed);
  return out;
}

std::optional<EdgeCandidate> SpatialIndex::Nearest(
    const geo::EnPoint& p, double max_radius_m) const {
  // Expand the search ring until a hit is found or the cap is reached.
  double radius = cell_size_m_;
  while (radius < max_radius_m * 2) {
    std::vector<EdgeCandidate> found = Nearby(p, std::min(radius, max_radius_m));
    if (!found.empty()) return found.front();
    if (radius >= max_radius_m) break;
    radius *= 2;
  }
  return std::nullopt;
}

SpatialIndexStats SpatialIndex::stats() const {
  SpatialIndexStats s;
  s.queries = query_stats_->queries.load(std::memory_order_relaxed);
  s.cells_probed = query_stats_->cells_probed.load(std::memory_order_relaxed);
  s.candidates = query_stats_->candidates.load(std::memory_order_relaxed);
  s.hits = query_stats_->hits.load(std::memory_order_relaxed);
  s.empty_geometry_edges = empty_geometry_edges_;
  return s;
}

}  // namespace roadnet
}  // namespace taxitrace
