// Named metrics for the pipeline's hot paths: counters, gauges and
// fixed-bin value histograms, owned by a MetricsRegistry.
//
// The split encodes the repo's determinism contract:
//   - Counter   totals of deterministic per-item work (probe counts,
//               drop reasons, items processed). Increments are relaxed
//               atomic adds, so counters may be bumped from worker
//               threads; because each work unit contributes a fixed
//               amount, the totals are identical at any thread count.
//   - Gauge     point-in-time doubles (wall times, per-worker load).
//               These are *observations of the run*, not of the data,
//               and are allowed to differ between runs and thread
//               counts. Nothing downstream of StudyResults may depend
//               on a gauge.
//   - HistogramMetric  a mutex-guarded common Histogram. Record from
//               merge loops or the main thread for hot data.
//
// Registration (name -> metric) takes a lock; call sites resolve their
// metric once and keep the returned pointer, which stays valid for the
// registry's lifetime.

#ifndef TAXITRACE_OBS_METRICS_H_
#define TAXITRACE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "taxitrace/common/histogram.h"

namespace taxitrace {
namespace obs {

/// Monotone event count. Thread-safe; increments are relaxed.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written double. Thread-safe but last-write-wins; intended for
/// main-thread observations (timings, worker loads).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// A mutex-guarded fixed-bin histogram (the common Histogram, which
/// tallies non-finite values separately instead of hitting UB).
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, int num_bins)
      : histogram_(lo, hi, num_bins) {}

  void Record(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.Add(value);
  }

  /// Copy of the current state.
  [[nodiscard]] Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return histogram_;
  }

 private:
  mutable std::mutex mu_;
  Histogram histogram_;
};

/// One counter in a snapshot.
struct CounterSample {
  std::string name;
  int64_t value = 0;
  friend bool operator==(const CounterSample&, const CounterSample&) =
      default;
};

/// One gauge in a snapshot.
struct GaugeSample {
  std::string name;
  double value = 0.0;
};

/// One histogram in a snapshot: bin edges via (lo, hi, counts.size()).
struct HistogramSample {
  std::string name;
  double lo = 0.0;
  double hi = 0.0;
  std::vector<int64_t> counts;
  int64_t total = 0;
  int64_t nonfinite = 0;
};

/// Owns every metric of one study run. Lookup registers on first use;
/// returned pointers stay valid until the registry is destroyed.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The counter named `name`, created on first use.
  Counter* counter(const std::string& name);

  /// The gauge named `name`, created on first use.
  Gauge* gauge(const std::string& name);

  /// The histogram named `name`; `lo`/`hi`/`num_bins` apply on first
  /// use and are ignored (TT_DCHECK-compatible no-op) afterwards.
  HistogramMetric* histogram(const std::string& name, double lo, double hi,
                             int num_bins);

  /// Snapshots, sorted by metric name (std::map iteration order), so
  /// two registries fed the same deterministic counts compare equal.
  [[nodiscard]] std::vector<CounterSample> Counters() const;
  [[nodiscard]] std::vector<GaugeSample> Gauges() const;
  [[nodiscard]] std::vector<HistogramSample> Histograms() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace obs
}  // namespace taxitrace

#endif  // TAXITRACE_OBS_METRICS_H_
