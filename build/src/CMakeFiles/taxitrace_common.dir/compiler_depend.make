# Empty compiler generated dependencies file for taxitrace_common.
# This may be replaced when dependencies are built.
