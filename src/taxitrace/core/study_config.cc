#include "taxitrace/core/study_config.h"

namespace taxitrace {
namespace core {

StudyConfig StudyConfig::FullStudy() {
  StudyConfig config;
  config.fleet.num_cars = 7;
  config.fleet.num_days = 365;
  return config;
}

StudyConfig StudyConfig::SmallStudy() {
  StudyConfig config;
  config.fleet.num_cars = 3;
  config.fleet.num_days = 35;
  return config;
}

}  // namespace core
}  // namespace taxitrace
