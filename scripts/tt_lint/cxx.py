"""Structural helpers over the tt_lint token stream.

Rules reason about constructs regex cannot see: matched bracket spans,
range-for loop headers and bodies, lambda captures, statement
boundaries, declared-local scans. All helpers work on token index
ranges into a file's flat token list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tokenizer import ID, PUNCT, Token

_OPEN = {"(": ")", "[": "]", "{": "}"}
_CLOSE = {")": "(", "]": "[", "}": "{"}

CXX_KEYWORDS = frozenset({
    "alignas", "alignof", "auto", "bool", "break", "case", "catch",
    "char", "class", "const", "constexpr", "consteval", "constinit",
    "continue", "decltype", "default", "delete", "do", "double", "else",
    "enum", "explicit", "extern", "false", "float", "for", "friend",
    "goto", "if", "inline", "int", "long", "mutable", "namespace",
    "new", "noexcept", "nullptr", "operator", "private", "protected",
    "public", "return", "short", "signed", "sizeof", "static",
    "static_assert", "struct", "switch", "template", "this", "throw",
    "true", "try", "typedef", "typeid", "typename", "union", "unsigned",
    "using", "virtual", "void", "volatile", "while",
})


def match_forward(tokens: list[Token], i: int) -> int:
    """Index of the token matching the bracket at `i`, or len(tokens).

    `tokens[i]` must be one of ( [ {. Angle brackets are handled by
    match_angle below because < is ambiguous.
    """
    opener = tokens[i].value
    closer = _OPEN[opener]
    depth = 0
    for j in range(i, len(tokens)):
        v = tokens[j].value
        if tokens[j].kind != PUNCT:
            continue
        if v == opener:
            depth += 1
        elif v == closer:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)


def match_angle(tokens: list[Token], i: int) -> int:
    """Index just past the `>` closing the `<` at `i`, or len(tokens).

    Treats `>>` as two closers (template context), and bails out on
    tokens that make a template-argument-list reading impossible
    (`;`, `{`, `&&` as logical and, ...), returning -1 for "this `<`
    was a comparison, not a template bracket".
    """
    depth = 0
    j = i
    n = len(tokens)
    while j < n:
        t = tokens[j]
        if t.kind == PUNCT:
            v = t.value
            if v == "<":
                depth += 1
            elif v == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif v == ">>":
                depth -= 2
                if depth <= 0:
                    return j + 1
            elif v in (";", "{", "}") or v in ("&&", "||"):
                return -1
            elif v in ("(", "["):
                j = match_forward(tokens, j)
                continue
        j += 1
    return -1


@dataclass
class RangeFor:
    """A range-based for: for (<decl> : <range>) <body>."""
    for_index: int           # index of the `for` token
    decl: tuple[int, int]    # token span [a, b) of the declaration part
    range_expr: tuple[int, int]  # token span of the range expression
    body: tuple[int, int]    # token span of the loop body (inside {})
    line: int
    loop_vars: list[str] = field(default_factory=list)


def find_range_fors(tokens: list[Token]) -> list[RangeFor]:
    out: list[RangeFor] = []
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != ID or t.value != "for":
            continue
        j = i + 1
        if j >= n or tokens[j].value != "(":
            continue
        close = match_forward(tokens, j)
        if close >= n:
            continue
        # A top-level `:` (not `::`) makes it a range-for.
        colon = -1
        depth = 0
        for k in range(j + 1, close):
            v = tokens[k].value
            if tokens[k].kind == PUNCT:
                if v in "([{":
                    depth += 1
                elif v in ")]}":
                    depth -= 1
                elif v == ":" and depth == 0:
                    colon = k
                    break
                elif v == "?" and depth == 0:
                    break  # ternary; its : is not ours
        if colon < 0:
            continue
        body = _body_span(tokens, close + 1)
        rf = RangeFor(for_index=i, decl=(j + 1, colon),
                      range_expr=(colon + 1, close), body=body,
                      line=t.line)
        rf.loop_vars = _decl_names(tokens, j + 1, colon)
        out.append(rf)
    return out


@dataclass
class IterFor:
    """A classic for whose init grabs an iterator: for (auto it = x.begin();"""
    for_index: int
    receiver: tuple[int, int]  # token span of the .begin() receiver
    body: tuple[int, int]
    line: int
    loop_vars: list[str] = field(default_factory=list)


def find_iterator_fors(tokens: list[Token]) -> list[IterFor]:
    out: list[IterFor] = []
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != ID or t.value != "for":
            continue
        j = i + 1
        if j >= n or tokens[j].value != "(":
            continue
        close = match_forward(tokens, j)
        if close >= n:
            continue
        # Look for `= <recv> . begin ( )` or cbegin inside the header.
        recv = None
        for k in range(j + 1, close - 1):
            if (tokens[k].kind == ID
                    and tokens[k].value in ("begin", "cbegin")
                    and k + 1 < close and tokens[k + 1].value == "("
                    and k >= 1 and tokens[k - 1].value in (".", "->")):
                a = _chain_start(tokens, k - 1)
                recv = (a, k - 1)
                break
        if recv is None:
            continue
        body = _body_span(tokens, close + 1)
        f = IterFor(for_index=i, receiver=recv, body=body, line=t.line)
        f.loop_vars = _decl_names(tokens, j + 1, close)
        out.append(f)
    return out


def _body_span(tokens: list[Token], i: int) -> tuple[int, int]:
    """Span of a statement body starting at token i: a braced block's
    interior, or the single statement up to `;`."""
    n = len(tokens)
    if i < n and tokens[i].value == "{":
        return (i + 1, match_forward(tokens, i))
    j = i
    depth = 0
    while j < n:
        v = tokens[j].value
        if tokens[j].kind == PUNCT:
            if v in "([{":
                depth += 1
            elif v in ")]}":
                depth -= 1
            elif v == ";" and depth == 0:
                return (i, j)
        j += 1
    return (i, n)


def _decl_names(tokens: list[Token], a: int, b: int) -> list[str]:
    """Declared names in a loop header: the last identifier of the decl,
    or all names of a structured binding [x, y]."""
    names: list[str] = []
    for k in range(a, b):
        if tokens[k].value == "[" and tokens[k].kind == PUNCT:
            close = match_forward(tokens, k)
            for m in range(k + 1, min(close, b)):
                if tokens[m].kind == ID:
                    names.append(tokens[m].value)
            return names
    last = None
    for k in range(a, b):
        t = tokens[k]
        if t.kind == ID and t.value not in CXX_KEYWORDS:
            last = t.value
        elif t.kind == PUNCT and t.value in ("=", ";"):
            if last:
                names.append(last)
            last = None
    if last:
        names.append(last)
    return names


def _chain_start(tokens: list[Token], i: int) -> int:
    """Walk back from a `.`/`->` at i to the start of the member chain:
    `results.map.network` <- from the last dot, returns index of
    `results`. Stops at anything that is not id/./->/::/()/[]."""
    j = i
    while j > 0:
        prev = tokens[j - 1]
        if prev.kind == ID or (prev.kind == PUNCT
                               and prev.value in (".", "->", "::")):
            j -= 1
            continue
        if prev.kind == PUNCT and prev.value in (")", "]"):
            # step over the bracketed group
            j = _match_backward(tokens, j - 1)
            continue
        break
    return j


def _match_backward(tokens: list[Token], i: int) -> int:
    closer = tokens[i].value
    opener = _CLOSE[closer]
    depth = 0
    for j in range(i, -1, -1):
        if tokens[j].kind != PUNCT:
            continue
        if tokens[j].value == closer:
            depth += 1
        elif tokens[j].value == opener:
            depth -= 1
            if depth == 0:
                return j
    return 0


def chain_root(tokens: list[Token], i: int) -> str | None:
    """Root identifier of the member chain containing token i.

    For `results.transitions.push_back` with i at `push_back`, returns
    "results"."""
    if tokens[i].kind != ID:
        return None
    j = i
    if j > 0 and tokens[j - 1].kind == PUNCT \
            and tokens[j - 1].value in (".", "->"):
        j = _chain_start(tokens, j - 1)
    if tokens[j].kind == ID:
        return tokens[j].value
    return None


def lhs_chain(tokens: list[Token], i: int) -> tuple[str, int] | None:
    """(root, chain_start_index) of the expression chain ending at
    token i-1 — the LHS of an operator at i. Steps back over ()/[]
    groups and member links, so `counts[key].second +=` resolves to
    ("counts", <index of counts>). None when the operand is not an
    identifier chain."""
    j = i - 1
    while j >= 0 and tokens[j].kind == PUNCT \
            and tokens[j].value in (")", "]"):
        j = _match_backward(tokens, j) - 1
    if j < 0 or tokens[j].kind != ID:
        return None
    if j > 0 and tokens[j - 1].kind == PUNCT \
            and tokens[j - 1].value in (".", "->", "::"):
        j = _chain_start(tokens, j - 1)
    if tokens[j].kind != ID:
        return None
    return tokens[j].value, j


def forward_chain_end(tokens: list[Token], j: int) -> int:
    """Index just past the id/member/index/call chain starting at j:
    `out[i].counts` -> index after `counts`."""
    n = len(tokens)
    while j < n:
        t = tokens[j]
        if t.kind == ID and t.value not in CXX_KEYWORDS:
            j += 1
            continue
        if t.kind == PUNCT and t.value in (".", "->", "::"):
            j += 1
            continue
        if t.kind == PUNCT and t.value in ("[", "("):
            j = match_forward(tokens, j) + 1
            continue
        break
    return j


def statement_start(tokens: list[Token], i: int) -> int:
    """Index of the first token of the statement containing token i."""
    depth = 0
    j = i
    while j > 0:
        t = tokens[j - 1]
        if t.kind == PUNCT:
            v = t.value
            if v in ")]}":
                depth += 1
            elif v in "([{":
                if depth == 0:
                    return j
                depth -= 1
            elif v == ";" and depth == 0:
                return j
        j -= 1
    return 0


def collect_locals(tokens: list[Token], a: int, b: int) -> set[str]:
    """Best-effort set of names declared inside the token span [a, b).

    Recognizes `Type name = ...;`, `Type name;`, `Type& name(...)`,
    `auto [x, y] = ...`, and for/if-scoped declarations. A declaration
    is "identifier preceded by a type-ish token (identifier, >, &, *,
    ], or const) at a position where an expression could not continue".
    """
    names: set[str] = set()
    for k in range(a + 1, b):
        t = tokens[k]
        if t.kind != ID or t.value in CXX_KEYWORDS:
            # structured bindings: auto [x, y] = ...
            if t.kind == PUNCT and t.value == "[" and k > a \
                    and tokens[k - 1].kind == ID \
                    and tokens[k - 1].value == "auto":
                close = match_forward(tokens, k)
                for m in range(k + 1, min(close, b)):
                    if tokens[m].kind == ID:
                        names.add(tokens[m].value)
            continue
        nxt = tokens[k + 1].value if k + 1 < b else ""
        if nxt not in ("=", ";", "(", "{", ",", ")", ":"):
            continue
        prev = tokens[k - 1]
        prev_ok = (
            (prev.kind == ID and prev.value not in
             (CXX_KEYWORDS - {"auto", "const", "unsigned", "signed",
                              "long", "short", "int", "char", "bool",
                              "float", "double"}))
            or (prev.kind == PUNCT and prev.value in (">", "&", "*",
                                                      "&&", "]")))
        if not prev_ok:
            continue
        # `foo = bar` where foo is a plain assignment target would need
        # prev to be type-ish; `x) = ...` etc. already excluded above.
        # Exclude `a.b` member access and function-call names.
        if prev.kind == PUNCT and prev.value == "]" \
                and tokens[_match_backward(tokens, k - 1)].value == "[":
            # could be `arr[i] = ...`: index write, not a declaration
            m = _match_backward(tokens, k - 1)
            if m > 0 and tokens[m - 1].kind == ID:
                continue
        if nxt == "(":
            # Constructor-style decl `Type name(args);` vs a call
            # `name(args)`: require the previous token to be a type-ish
            # identifier (not ./->/::-qualified).
            if not (prev.kind == ID and prev.value not in CXX_KEYWORDS):
                continue
            if k >= 2 and tokens[k - 2].kind == PUNCT \
                    and tokens[k - 2].value in (".", "->", "::"):
                continue
        if k >= 1 and prev.kind == ID and k >= 2 \
                and tokens[k - 2].kind == PUNCT \
                and tokens[k - 2].value in (".", "->"):
            continue
        names.add(t.value)
    return names


def camel_words(name: str) -> set[str]:
    """Lower-cased word segments of an identifier: AddVertex ->
    {add, vertex}; fetch_add -> {fetch, add}."""
    words: list[str] = []
    cur = ""
    for ch in name:
        if ch == "_":
            if cur:
                words.append(cur)
            cur = ""
        elif ch.isupper() and cur and not cur[-1].isupper():
            words.append(cur)
            cur = ch
        else:
            cur += ch
    if cur:
        words.append(cur)
    return {w.lower() for w in words}
