file(REMOVE_RECURSE
  "CMakeFiles/route_choice.dir/route_choice.cc.o"
  "CMakeFiles/route_choice.dir/route_choice.cc.o.d"
  "route_choice"
  "route_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
