#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "taxitrace/common/random.h"
#include "taxitrace/mapmatch/hmm_matcher.h"
#include "taxitrace/mapmatch/incremental_matcher.h"
#include "taxitrace/mapmatch/match_quality.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/driver_model.h"
#include "taxitrace/synth/sensor_model.h"

namespace taxitrace {
namespace mapmatch {
namespace {

const synth::CityMap& TestMap() {
  static const synth::CityMap* map = [] {
    auto result = synth::GenerateCityMap();
    return new synth::CityMap(std::move(result).value());
  }();
  return *map;
}

const roadnet::SpatialIndex& TestIndex() {
  static const roadnet::SpatialIndex* index =
      new roadnet::SpatialIndex(&TestMap().network);
  return *index;
}

class HmmMatcherTest : public testing::Test {
 protected:
  HmmMatcherTest()
      : weather_(3, 365),
        driver_(&TestMap(), &weather_),
        router_(&TestMap().network),
        matcher_(&TestMap().network, &TestIndex()) {}

  std::pair<trace::Trip, roadnet::Path> SimulatedTrip(
      uint64_t seed, double outlier_prob = 0.0) {
    Rng rng(seed);
    const auto& net = TestMap().network;
    roadnet::Path path;
    while (true) {
      const auto a = static_cast<roadnet::VertexId>(rng.UniformInt(
          0, static_cast<int64_t>(net.num_vertices()) - 1));
      const auto b = static_cast<roadnet::VertexId>(rng.UniformInt(
          0, static_cast<int64_t>(net.num_vertices()) - 1));
      const auto result = router_.ShortestPath(a, b);
      if (result.ok() && result->length_m > 900.0) {
        path = *result;
        break;
      }
    }
    const auto samples = driver_.Drive(path, 3600.0, 1.0, &rng);
    synth::SensorOptions sensor_options;
    sensor_options.timestamp_glitch_prob = 0.0;
    sensor_options.id_glitch_prob = 0.0;
    sensor_options.outlier_prob = outlier_prob;
    const synth::SensorModel sensor(sensor_options);
    trace::Trip trip;
    trip.trip_id = 1;
    int64_t next_id = 1;
    trip.points =
        sensor.Observe(samples, 1, &next_id, net.projection(), &rng);
    return {trip, path};
  }

  synth::WeatherModel weather_;
  synth::DriverModel driver_;
  roadnet::Router router_;
  HmmMatcher matcher_;
};

TEST_F(HmmMatcherTest, RejectsTinyTrips) {
  trace::Trip trip;
  EXPECT_TRUE(matcher_.Match(trip).status().IsInvalidArgument());
}

TEST_F(HmmMatcherTest, RecoversSimulatedRoutes) {
  double jaccard_sum = 0.0;
  for (uint64_t seed = 101; seed <= 105; ++seed) {
    const auto [trip, truth] = SimulatedTrip(seed);
    const Result<MatchedRoute> matched = matcher_.Match(trip);
    ASSERT_TRUE(matched.ok()) << "seed " << seed;
    std::vector<roadnet::EdgeId> truth_edges;
    for (const roadnet::PathStep& s : truth.steps) {
      truth_edges.push_back(s.edge);
    }
    const double jaccard =
        EdgeJaccard(matched->DistinctEdges(), truth_edges);
    jaccard_sum += jaccard;
    EXPECT_GT(jaccard, 0.55) << "seed " << seed;
    EXPECT_LT(MeanGeometryDeviation(matched->geometry, truth.geometry),
              25.0)
        << "seed " << seed;
  }
  EXPECT_GT(jaccard_sum / 5.0, 0.65);
}

TEST_F(HmmMatcherTest, MatchedPointsReferenceTrip) {
  const auto [trip, truth] = SimulatedTrip(111);
  (void)truth;
  const MatchedRoute matched = matcher_.Match(trip).value();
  ASSERT_GE(matched.points.size(), 2u);
  for (size_t i = 1; i < matched.points.size(); ++i) {
    EXPECT_GT(matched.points[i].point_index,
              matched.points[i - 1].point_index);
    EXPECT_LT(matched.points[i].point_index, trip.points.size());
  }
}

TEST_F(HmmMatcherTest, GlobalInferenceSurvivesOutliers) {
  // With gross GPS outliers, the HMM's transition pruning keeps the
  // route plausible: mean length error over several trips stays small.
  double error_sum = 0.0;
  int n = 0;
  for (uint64_t seed : {121, 123, 125, 127}) {
    const auto [trip, truth] = SimulatedTrip(seed, /*outlier_prob=*/0.03);
    const Result<MatchedRoute> matched = matcher_.Match(trip);
    ASSERT_TRUE(matched.ok()) << "seed " << seed;
    error_sum += RouteLengthError(matched->length_m, truth.length_m);
    ++n;
  }
  EXPECT_LT(error_sum / n, 0.35);
}

TEST_F(HmmMatcherTest, SparserTracesStillMatch) {
  // Keep every third point only (low-sampling-rate regime).
  auto [trip, truth] = SimulatedTrip(131);
  std::vector<trace::RoutePoint> sparse;
  for (size_t i = 0; i < trip.points.size(); i += 3) {
    sparse.push_back(trip.points[i]);
  }
  sparse.push_back(trip.points.back());
  trip.points = std::move(sparse);
  const Result<MatchedRoute> matched = matcher_.Match(trip);
  ASSERT_TRUE(matched.ok());
  std::vector<roadnet::EdgeId> truth_edges;
  for (const roadnet::PathStep& s : truth.steps) {
    truth_edges.push_back(s.edge);
  }
  EXPECT_GT(EdgeJaccard(matched->DistinctEdges(), truth_edges), 0.5);
}

TEST_F(HmmMatcherTest, AgreesWithIncrementalOnCleanTraces) {
  const IncrementalMatcher incremental(&TestMap().network, &TestIndex());
  const auto [trip, truth] = SimulatedTrip(141);
  (void)truth;
  const MatchedRoute hmm = matcher_.Match(trip).value();
  const MatchedRoute inc = incremental.Match(trip).value();
  // The two matchers substantially agree on clean data.
  EXPECT_GT(EdgeJaccard(hmm.DistinctEdges(), inc.DistinctEdges()), 0.5);
}

// --- A/B harness: global inference vs greedy on reorder faults --------------

// Bounded transport reorder applied directly to a trip's points: each
// point lands at most `max_displacement` slots from where the device
// emitted it (the ShuffleArrivals model, at trip granularity).
void ReorderPoints(trace::Trip* trip, uint64_t seed,
                   int64_t max_displacement) {
  Rng rng(seed);
  std::vector<std::pair<int64_t, size_t>> keys;
  keys.reserve(trip->points.size());
  for (size_t i = 0; i < trip->points.size(); ++i) {
    keys.emplace_back(static_cast<int64_t>(i) +
                          rng.UniformInt(0, max_displacement),
                      i);
  }
  std::stable_sort(keys.begin(), keys.end());
  std::vector<trace::RoutePoint> shuffled;
  shuffled.reserve(trip->points.size());
  for (const auto& [key, index] : keys) {
    shuffled.push_back(trip->points[index]);
  }
  trip->points = std::move(shuffled);
}

// The simulator's ground-truth route makes segment-level accuracy an
// exact measurement (edge Jaccard against the driven path). On traces
// with a bounded reorder fault the HMM's global inference must do at
// least as well as the greedy incremental matcher — the justification
// for paying its cost on the online path, where bounded reordering is
// the expected failure mode. A matcher that rejects the faulted trace
// outright scores zero on it.
TEST_F(HmmMatcherTest, AtLeastAsAccurateAsIncrementalOnReorderFaults) {
  const IncrementalMatcher incremental(&TestMap().network, &TestIndex());
  double hmm_sum = 0.0;
  double inc_sum = 0.0;
  int n = 0;
  for (uint64_t seed : {151, 153, 155, 157, 159, 161}) {
    auto [trip, truth] = SimulatedTrip(seed);
    ReorderPoints(&trip, MixSeed(seed, 77, 0), /*max_displacement=*/6);

    std::vector<roadnet::EdgeId> truth_edges;
    for (const roadnet::PathStep& s : truth.steps) {
      truth_edges.push_back(s.edge);
    }
    const Result<MatchedRoute> hmm = matcher_.Match(trip);
    const Result<MatchedRoute> inc = incremental.Match(trip);
    ASSERT_TRUE(hmm.ok()) << "seed " << seed;
    hmm_sum += EdgeJaccard(hmm->DistinctEdges(), truth_edges);
    if (inc.ok()) {
      inc_sum += EdgeJaccard(inc->DistinctEdges(), truth_edges);
    }
    ++n;
  }
  EXPECT_GE(hmm_sum, inc_sum);
  // And the HMM's accuracy stays useful in absolute terms.
  EXPECT_GT(hmm_sum / n, 0.5);
}

}  // namespace
}  // namespace mapmatch
}  // namespace taxitrace
