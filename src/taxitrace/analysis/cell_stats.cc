#include "taxitrace/analysis/cell_stats.h"

#include <algorithm>

namespace taxitrace {
namespace analysis {

std::vector<CellRecord> BuildCellRecords(
    const CellSpeedAccumulator& speeds,
    const std::unordered_map<CellId, CellFeatureCounts, CellIdHash>&
        features) {
  std::vector<CellRecord> out;
  out.reserve(speeds.cells().size());
  for (const auto& [cell, moments] : speeds.cells()) {
    CellRecord rec;
    rec.cell = cell;
    rec.center = speeds.grid().CellCenter(cell);
    rec.num_points = moments.n;
    rec.mean_speed_kmh = moments.mean;
    rec.speed_variance = moments.Variance();
    const auto it = features.find(cell);
    if (it != features.end()) rec.features = it->second;
    out.push_back(rec);
  }
  // Deterministic order for reporting.
  std::sort(out.begin(), out.end(),
            [](const CellRecord& a, const CellRecord& b) {
              if (a.cell.cy != b.cell.cy) return a.cell.cy < b.cell.cy;
              return a.cell.cx < b.cell.cx;
            });
  return out;
}

CellStratumStats SummarizeCells(
    const std::vector<CellRecord>& records,
    const std::function<bool(const CellRecord&)>& predicate) {
  std::vector<double> means;
  for (const CellRecord& r : records) {
    if (predicate(r)) means.push_back(r.mean_speed_kmh);
  }
  CellStratumStats s;
  s.num_cells = static_cast<int64_t>(means.size());
  if (means.empty()) return s;
  s.min = *std::min_element(means.begin(), means.end());
  s.max = *std::max_element(means.begin(), means.end());
  s.mean = Mean(means);
  s.variance = Variance(means);
  return s;
}

Table5 BuildTable5(const std::vector<CellRecord>& records) {
  Table5 t;
  t.no_lights = SummarizeCells(records, [](const CellRecord& r) {
    return r.features.traffic_lights == 0;
  });
  t.no_lights_no_bus = SummarizeCells(records, [](const CellRecord& r) {
    return r.features.traffic_lights == 0 && r.features.bus_stops == 0;
  });
  t.lights_and_bus = SummarizeCells(records, [](const CellRecord& r) {
    return r.features.traffic_lights > 0 && r.features.bus_stops > 0;
  });
  t.lights = SummarizeCells(records, [](const CellRecord& r) {
    return r.features.traffic_lights > 0;
  });
  return t;
}

}  // namespace analysis
}  // namespace taxitrace
