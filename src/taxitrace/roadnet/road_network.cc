#include "taxitrace/roadnet/road_network.h"

#include <cmath>
#include <limits>

#include "taxitrace/common/check.h"
#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace roadnet {

RoadNetwork::RoadNetwork(const geo::LatLon& origin)
    : origin_(origin), projection_(origin) {}

const Vertex& RoadNetwork::vertex(VertexId id) const {
  TT_DCHECK(id >= 0 && static_cast<size_t>(id) < vertices_.size());
  return vertices_[static_cast<size_t>(id)];
}

const Edge& RoadNetwork::edge(EdgeId id) const {
  TT_DCHECK(id >= 0 && static_cast<size_t>(id) < edges_.size());
  return edges_[static_cast<size_t>(id)];
}

const MapFeature& RoadNetwork::feature(FeatureId id) const {
  TT_DCHECK(id >= 0 && static_cast<size_t>(id) < features_.size());
  return features_[static_cast<size_t>(id)];
}

const std::vector<EdgeId>& RoadNetwork::IncidentEdges(VertexId v) const {
  TT_DCHECK(v >= 0 && static_cast<size_t>(v) < incident_.size());
  return incident_[static_cast<size_t>(v)];
}

void RoadNetwork::WarmAdjacency() const {
  if (csr_vertex_count_ != vertices_.size() ||
      csr_edge_count_ != edges_.size()) {
    RebuildAdjacency();
  }
}

void RoadNetwork::RebuildAdjacency() const {
  const size_t n = vertices_.size();
  csr_offsets_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    csr_offsets_[v + 1] =
        csr_offsets_[v] + static_cast<int32_t>(incident_[v].size());
  }
  csr_arcs_.resize(static_cast<size_t>(csr_offsets_[n]));
  size_t next = 0;
  for (size_t v = 0; v < n; ++v) {
    for (const EdgeId eid : incident_[v]) {
      const Edge& e = edges_[static_cast<size_t>(eid)];
      // A self-loop appears twice in the incidence list; both copies
      // leave along the edge orientation, matching Opposite()'s
      // from-first resolution.
      const bool forward = e.from == static_cast<VertexId>(v);
      HalfEdge arc;
      arc.edge = eid;
      arc.head = forward ? e.to : e.from;
      arc.length_m = e.length_m;
      arc.traversable_out = CanTraverse(eid, forward);
      arc.traversable_in = CanTraverse(eid, !forward);
      arc.forward = forward;
      csr_arcs_[next++] = arc;
    }
  }
  csr_vertex_count_ = n;
  csr_edge_count_ = edges_.size();
}

bool RoadNetwork::CanTraverse(EdgeId e, bool forward) const {
  const TravelDirection d = edge(e).direction;
  if (d == TravelDirection::kBoth) return true;
  return forward ? d == TravelDirection::kForward
                 : d == TravelDirection::kBackward;
}

VertexId RoadNetwork::Opposite(EdgeId e, VertexId v) const {
  const Edge& ed = edge(e);
  TT_DCHECK(ed.from == v || ed.to == v);
  return ed.from == v ? ed.to : ed.from;
}

geo::EnPoint RoadNetwork::PointAt(const EdgePosition& pos) const {
  return edge(pos.edge).geometry.Interpolate(pos.arc_length_m);
}

int RoadNetwork::CountFeaturesOnEdge(EdgeId e, FeatureType t) const {
  int n = 0;
  for (FeatureId f : edge(e).feature_ids) {
    if (feature(f).type == t) ++n;
  }
  return n;
}

int RoadNetwork::CountFeatures(FeatureType t) const {
  int n = 0;
  for (const MapFeature& f : features_) {
    if (f.type == t) ++n;
  }
  return n;
}

geo::Bbox RoadNetwork::Bounds() const {
  geo::Bbox box = geo::Bbox::Empty();
  for (const Edge& e : edges_) box.Extend(e.geometry.Bounds());
  return box;
}

VertexId RoadNetwork::AddVertex(const geo::EnPoint& position,
                                bool is_junction) {
  const VertexId id = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(Vertex{id, position, is_junction});
  incident_.emplace_back();
  return id;
}

EdgeId RoadNetwork::AddEdge(Edge edge) {
  TT_CHECK(edge.from >= 0 &&
           static_cast<size_t>(edge.from) < vertices_.size());
  TT_CHECK(edge.to >= 0 && static_cast<size_t>(edge.to) < vertices_.size());
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edge.id = id;
  edge.length_m = edge.geometry.Length();
  incident_[static_cast<size_t>(edge.from)].push_back(id);
  incident_[static_cast<size_t>(edge.to)].push_back(id);
  edges_.push_back(std::move(edge));
  return id;
}

FeatureId RoadNetwork::AddFeature(FeatureType type,
                                  const geo::EnPoint& position,
                                  double attach_radius_m) {
  const FeatureId id = static_cast<FeatureId>(features_.size());
  features_.push_back(MapFeature{id, type, position});

  EdgeId best_edge = kInvalidEdge;
  double best_dist = attach_radius_m;
  for (const Edge& e : edges_) {
    if (!e.geometry.Bounds().Inflated(attach_radius_m).Contains(position)) {
      continue;
    }
    const double d = e.geometry.Project(position).distance;
    if (d <= best_dist) {
      best_dist = d;
      best_edge = e.id;
    }
  }
  if (best_edge != kInvalidEdge) {
    edges_[static_cast<size_t>(best_edge)].feature_ids.push_back(id);
  }
  return id;
}

Status RoadNetwork::Validate() const {
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].id != static_cast<VertexId>(i)) {
      return Status::Corruption(StrFormat("vertex %zu has id %d", i,
                                          vertices_[i].id));
    }
  }
  for (size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    if (e.id != static_cast<EdgeId>(i)) {
      return Status::Corruption(StrFormat("edge %zu has id %d", i, e.id));
    }
    if (e.from < 0 || static_cast<size_t>(e.from) >= vertices_.size() ||
        e.to < 0 || static_cast<size_t>(e.to) >= vertices_.size()) {
      return Status::Corruption(StrFormat("edge %d has bad endpoints", e.id));
    }
    if (e.geometry.size() < 2) {
      return Status::Corruption(StrFormat("edge %d has no geometry", e.id));
    }
    constexpr double kSnapTolerance = 0.5;  // metres
    if (geo::Distance(e.geometry.front(), vertex(e.from).position) >
            kSnapTolerance ||
        geo::Distance(e.geometry.back(), vertex(e.to).position) >
            kSnapTolerance) {
      return Status::Corruption(
          StrFormat("edge %d geometry does not meet its vertices", e.id));
    }
    if (!(e.length_m > 0.0)) {
      return Status::Corruption(StrFormat("edge %d has zero length", e.id));
    }
    if (!(e.speed_limit_kmh > 0.0)) {
      return Status::Corruption(
          StrFormat("edge %d has non-positive speed limit", e.id));
    }
    for (FeatureId f : e.feature_ids) {
      if (f < 0 || static_cast<size_t>(f) >= features_.size()) {
        return Status::Corruption(
            StrFormat("edge %d references missing feature %lld", e.id,
                      static_cast<long long>(f)));
      }
    }
  }
  for (size_t v = 0; v < incident_.size(); ++v) {
    for (EdgeId e : incident_[v]) {
      const Edge& ed = edge(e);
      if (ed.from != static_cast<VertexId>(v) &&
          ed.to != static_cast<VertexId>(v)) {
        return Status::Corruption(
            StrFormat("incidence list of vertex %zu lists edge %d", v, e));
      }
    }
  }
  return Status::OK();
}

}  // namespace roadnet
}  // namespace taxitrace
