"""tt_lint: the taxitrace repo-idiom and determinism-contract linter.

A small C++-aware static analyzer. A shared tokenizer
(comment/string/raw-string aware, with brace and angle-bracket
tracking) feeds multi-pass rule classes:

  pass 1  repo-wide fact collection (Status-returning functions,
          unordered-container declarations) over every file,
  pass 2  file-scope rules over each file's token stream,
  pass 3  repo-scope rules (test/bench registration),
  pass 4  suppression + baseline resolution.

Entry points: `python3 scripts/tt_lint.py` (shim kept for CI/ctest) or
`python3 -m tt_lint` with scripts/ on sys.path. See
docs/ARCHITECTURE.md "Static analysis" for the rule catalogue, the
suppression policy, and how to add a rule.
"""

__version__ = "2.0"
