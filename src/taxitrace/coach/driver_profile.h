// Per-driver aggregation of trip scores: the longitudinal view the
// coach shows across a study period, and the fleet ranking.

#ifndef TAXITRACE_COACH_DRIVER_PROFILE_H_
#define TAXITRACE_COACH_DRIVER_PROFILE_H_

#include <vector>

#include "taxitrace/coach/trip_score.h"

namespace taxitrace {
namespace coach {

/// Aggregate eco profile of one driver (car).
struct DriverProfile {
  int car_id = 0;
  int64_t trips = 0;
  double mean_eco_score = 0.0;
  double mean_idle_share = 0.0;
  double mean_harsh_per_km = 0.0;
  double mean_fuel_per_km_ml = 0.0;
  double total_fuel_excess_l = 0.0;
  double best_trip_score = 0.0;
  double worst_trip_score = 100.0;
};

/// One driver's scored trip.
struct ScoredTrip {
  int car_id = 0;
  TripScore score;
};

/// Aggregates scored trips per driver, ranked by descending mean eco
/// score.
std::vector<DriverProfile> BuildDriverProfiles(
    const std::vector<ScoredTrip>& trips);

}  // namespace coach
}  // namespace taxitrace

#endif  // TAXITRACE_COACH_DRIVER_PROFILE_H_
