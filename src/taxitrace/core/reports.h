// Plain-text renderings of the paper's tables, shared by the bench
// harnesses and examples.

#ifndef TAXITRACE_CORE_REPORTS_H_
#define TAXITRACE_CORE_REPORTS_H_

#include <string>
#include <vector>

#include "taxitrace/analysis/cell_stats.h"
#include "taxitrace/analysis/route_stats.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/roadnet/map_preparation.h"

namespace taxitrace {
namespace core {

/// Table 1: junction pairs of the prepared map (first `max_rows` rows).
std::string FormatTable1(const roadnet::RoadNetwork& network,
                         size_t max_rows = 10);

/// Segmentation / cleaning summary (exercises the Table 2 rules).
std::string FormatTable2Report(const clean::CleaningReport& report);

/// Table 3: the per-car transition funnel.
std::string FormatTable3(const std::vector<odselect::Table3Row>& rows);

/// Table 4: per-direction route summaries.
std::string FormatTable4(const std::vector<analysis::Table4Row>& rows);

/// Table 5: cell speed vs traffic lights / bus stops.
std::string FormatTable5(const analysis::Table5& table);

/// The Section VI-A in-text aggregates (point-speed count, seasonal
/// deltas, feature census).
std::string FormatTextAggregates(const StudyResults& results);

/// A compact JSON digest of a study run: every funnel count plus the
/// key model doubles rounded through "%.9g" (stable across platforms
/// and compilers, unlike full-precision prints). The golden regression
/// test compares this digest against tests/golden/study_small.json;
/// regenerate that file intentionally with scripts/update_golden.py.
std::string StudyDigestJson(const StudyResults& results);

}  // namespace core
}  // namespace taxitrace

#endif  // TAXITRACE_CORE_REPORTS_H_
