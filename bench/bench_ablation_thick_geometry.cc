// Ablation: "thick geometry" OD gates (Section IV-D) vs thin gates —
// how many genuine transitions a thin gate misses because routes deviate
// slightly from the mapped road.

#include "bench_util.h"
#include "taxitrace/odselect/transition_extractor.h"

namespace taxitrace {
namespace {

int64_t CountTransitions(const core::StudyResults& r, double half_width) {
  odselect::OdGateOptions gate_options;
  gate_options.half_width_m = half_width;
  std::vector<odselect::OdGate> gates;
  for (const synth::GateRoad& g : r.map.gates) {
    gates.emplace_back(g.name, g.geometry, gate_options);
  }
  const odselect::TransitionExtractor extractor(
      gates, r.map.network.projection());
  int64_t transitions = 0;
  for (const core::MatchedTransition& mt : r.transitions) {
    transitions += static_cast<int64_t>(
        extractor.Analyze(mt.transition.segment).transitions.size());
  }
  return transitions;
}

void PrintAblation() {
  const core::StudyResults& r = benchutil::FullResults();
  std::printf(
      "ABLATION: thick-geometry gate width vs transitions detected on "
      "the %zu known transition segments\n",
      r.transitions.size());
  std::printf("  half-width (m)   transitions detected   recall\n");
  const int64_t reference = static_cast<int64_t>(r.transitions.size());
  for (const double width : {5.0, 15.0, 30.0, 60.0, 90.0}) {
    const int64_t found = CountTransitions(r, width);
    std::printf("  %13.0f   %20lld   %5.1f%%\n", width,
                static_cast<long long>(found),
                100.0 * static_cast<double>(found) /
                    static_cast<double>(reference));
  }
  const int64_t thin = CountTransitions(r, 5.0);
  const int64_t thick = CountTransitions(r, 60.0);
  std::printf(
      "Check: thick gates catch more deviating routes than thin gates "
      "(%lld > %lld) -> %s\n\n",
      static_cast<long long>(thick), static_cast<long long>(thin),
      thick > thin ? "HOLDS" : "VIOLATED");
}

void BM_ThickGateDetection(benchmark::State& state) {
  const core::StudyResults& r = benchutil::SmallResults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CountTransitions(r, static_cast<double>(state.range(0))));
  }
}
BENCHMARK(BM_ThickGateDetection)->Arg(5)->Arg(60)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintAblation)
