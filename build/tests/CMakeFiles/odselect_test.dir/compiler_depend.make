# Empty compiler generated dependencies file for odselect_test.
# This may be replaced when dependencies are built.
