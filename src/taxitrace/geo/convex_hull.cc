#include "taxitrace/geo/convex_hull.h"

#include <algorithm>

namespace taxitrace {
namespace geo {

Polygon ConvexHull(std::vector<EnPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const EnPoint& a, const EnPoint& b) {
              if (a.x != b.x) return a.x < b.x;
              return a.y < b.y;
            });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const size_t n = points.size();
  if (n < 3) return Polygon();

  std::vector<EnPoint> hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && Cross(hull[k - 1] - hull[k - 2],
                           points[i] - hull[k - 2]) <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  // Upper hull.
  const size_t lower_size = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size && Cross(hull[k - 1] - hull[k - 2],
                                    points[i] - hull[k - 2]) <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // the last point repeats the first
  if (hull.size() < 3) return Polygon();
  return Polygon(std::move(hull));
}

}  // namespace geo
}  // namespace taxitrace
