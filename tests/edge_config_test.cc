// Pathological-configuration robustness: the pipeline and its stages
// must degrade gracefully (clean Status or empty-but-valid results) on
// extreme configs, never crash.

#include <gtest/gtest.h>

#include <cmath>

#include "taxitrace/core/pipeline.h"
#include "taxitrace/core/scenarios.h"

namespace taxitrace {
namespace core {
namespace {

TEST(EdgeConfigTest, SingleCarSingleDay) {
  StudyConfig config = StudyConfig::SmallStudy();
  config.fleet.num_cars = 1;
  config.fleet.num_days = 1;
  Pipeline pipeline(config);
  const Result<StudyResults> run = pipeline.Run();
  ASSERT_TRUE(run.ok());
  EXPECT_GE(run->raw_trips, 1);
  EXPECT_EQ(run->table3.size(), 1u);
  // One day rarely yields transitions; everything must still be valid.
  EXPECT_GE(run->transitions.size(), 0u);
}

TEST(EdgeConfigTest, ZeroCarsRejected) {
  StudyConfig config = StudyConfig::SmallStudy();
  config.fleet.num_cars = 0;
  EXPECT_FALSE(Pipeline(config).Run().ok());
}

TEST(EdgeConfigTest, TinyMapRejectedCleanly) {
  StudyConfig config = StudyConfig::SmallStudy();
  config.map.extent_m = 50.0;  // too small for a street grid
  EXPECT_FALSE(Pipeline(config).Run().ok());
}

TEST(EdgeConfigTest, HugeGridCellsStillWork) {
  StudyConfig config = StudyConfig::SmallStudy();
  config.grid_cell_m = 2000.0;  // the whole town in a few cells
  const Result<StudyResults> run = Pipeline(config).Run();
  ASSERT_TRUE(run.ok());
  EXPECT_LE(run->cells.size(), 10u);
  EXPECT_GE(run->cells.size(), 1u);
}

TEST(EdgeConfigTest, NarrowGatesFindFewerTransitions) {
  StudyConfig wide = StudyConfig::SmallStudy();
  StudyConfig narrow = StudyConfig::SmallStudy();
  narrow.gate.half_width_m = 4.0;
  const Result<StudyResults> wide_run = Pipeline(wide).Run();
  const Result<StudyResults> narrow_run = Pipeline(narrow).Run();
  ASSERT_TRUE(wide_run.ok());
  ASSERT_TRUE(narrow_run.ok());
  // Raw gate hits are monotone in gate width (a narrow polygon is a
  // subset of the wide one), but the end-to-end transition count is
  // not quite: a wider gate can merge two nearby crossings into one
  // inside-interval, or add a gate touch that flips a trip's direction
  // label out of the selected set. Allow a couple of such flips; a
  // systematic inversion still fails.
  EXPECT_LE(narrow_run->transitions.size(),
            wide_run->transitions.size() + 2);
}

TEST(EdgeConfigTest, ExtremeSegmentationWindows) {
  // A 10-second rule-1 window shreds trips into fragments; most die at
  // the <5-point filter, but nothing crashes and what survives is valid.
  StudyConfig config = StudyConfig::SmallStudy();
  config.cleaning.segmentation.rule1_window_s = 10.0;
  const Result<StudyResults> run = Pipeline(config).Run();
  ASSERT_TRUE(run.ok());
  for (const MatchedTransition& mt : run->transitions) {
    EXPECT_GE(mt.transition.segment.points.size(), 5u);
  }
}

TEST(EdgeConfigTest, NoisySensorStillProducesAStudy) {
  StudyConfig config = StudyConfig::SmallStudy();
  config.fleet.sensor.gps_sigma_m = 20.0;
  config.fleet.sensor.outlier_prob = 0.02;
  config.fleet.sensor.drop_prob = 0.05;
  const Result<StudyResults> run = Pipeline(config).Run();
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->cleaning_report.outliers.spikes_removed, 0);
}

TEST(EdgeConfigTest, InterpolationFlagThroughPipeline) {
  StudyConfig config = StudyConfig::SmallStudy();
  config.cleaning.restore_lost_points = true;
  const Result<StudyResults> run = Pipeline(config).Run();
  ASSERT_TRUE(run.ok());
  // Moving gaps exist in any fleet (dropped points), so some points are
  // restored.
  EXPECT_GE(run->cleaning_report.interpolation.points_inserted, 0);
}


TEST(ScenarioTest, CatalogMatchesFactory) {
  for (const ScenarioInfo& info : ScenarioCatalog()) {
    EXPECT_TRUE(MakeScenario(info.name).ok()) << info.name;
    EXPECT_FALSE(info.description.empty());
  }
  EXPECT_TRUE(MakeScenario("nonsense").status().IsNotFound());
}

TEST(ScenarioTest, ScenariosDifferFromBaseline) {
  const StudyConfig base = MakeScenario("paper").value();
  const StudyConfig degraded = MakeScenario("degraded-sensors").value();
  EXPECT_GT(degraded.fleet.sensor.gps_sigma_m,
            base.fleet.sensor.gps_sigma_m);
  const StudyConfig dense = MakeScenario("dense-city").value();
  EXPECT_LT(dense.map.core_spacing_m, base.map.core_spacing_m);
  EXPECT_FALSE(MakeScenario("no-river").value().map.include_river);
}

TEST(ScenarioTest, DegradedSensorsStillRunEndToEnd) {
  StudyConfig config = MakeScenario("degraded-sensors").value();
  config.fleet.num_cars = 2;
  config.fleet.num_days = 14;
  const Result<StudyResults> run = Pipeline(config).Run();
  ASSERT_TRUE(run.ok());
  // The defects show up in the cleaning report.
  EXPECT_GT(run->cleaning_report.outliers.spikes_removed, 0);
  EXPECT_GT(run->cleaning_report.order.trips_repaired_by_id +
                run->cleaning_report.order.trips_repaired_by_timestamp,
            0);
}

TEST(ScenarioTest, NoRiverHasMoreCrossings) {
  StudyConfig with = MakeScenario("paper").value();
  with.fleet.num_days = 1;
  StudyConfig without = MakeScenario("no-river").value();
  without.fleet.num_days = 1;
  // Compare network crossing counts directly via the generator.
  const synth::CityMap river_map =
      synth::GenerateCityMap(with.map).value();
  const synth::CityMap free_map =
      synth::GenerateCityMap(without.map).value();
  const auto crossings = [&](const synth::CityMap& map, double river_y) {
    int n = 0;
    map.network.ForEachEdge([&](const roadnet::Edge& e) {
      const double y0 = e.geometry.front().y;
      const double y1 = e.geometry.back().y;
      if ((y0 - river_y) * (y1 - river_y) < 0.0 &&
          std::abs(y1 - y0) > 50.0) {
        ++n;
      }
    });
    return n;
  };
  EXPECT_GT(crossings(free_map, with.map.river_y_m),
            crossings(river_map, with.map.river_y_m));
}

}  // namespace
}  // namespace core
}  // namespace taxitrace
