// Trips: a run between two consecutive engine-off events, identified by a
// trip id and carrying start/end time, totals, and its route points.

#ifndef TAXITRACE_TRACE_TRIP_H_
#define TAXITRACE_TRACE_TRIP_H_

#include <cstdint>
#include <vector>

#include "taxitrace/trace/route_point.h"

namespace taxitrace {
namespace trace {

/// One trip (engine-on to engine-off) of one car.
struct Trip {
  int64_t trip_id = 0;
  int car_id = 0;
  std::vector<RoutePoint> points;
  /// Trip-level measurements as reported by the device.
  double total_time_s = 0.0;
  double total_distance_m = 0.0;
  double total_fuel_ml = 0.0;

  /// Start/end time of the trip (from the first/last point; 0 if empty).
  [[nodiscard]] double StartTime() const {
    return points.empty() ? 0.0 : points.front().timestamp_s;
  }
  [[nodiscard]] double EndTime() const {
    return points.empty() ? 0.0 : points.back().timestamp_s;
  }

  /// Recomputes the totals from the route points (used after cleaning or
  /// segmentation invalidates device-reported totals).
  void RecomputeTotals();
};

}  // namespace trace
}  // namespace taxitrace

#endif  // TAXITRACE_TRACE_TRIP_H_
