file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/route_point.cc.o"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/route_point.cc.o.d"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/time_util.cc.o"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/time_util.cc.o.d"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trace_io.cc.o"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trace_io.cc.o.d"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trace_query.cc.o"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trace_query.cc.o.d"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trace_store.cc.o"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trace_store.cc.o.d"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trip.cc.o"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trip.cc.o.d"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trip_stats.cc.o"
  "CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trip_stats.cc.o.d"
  "libtaxitrace_trace.a"
  "libtaxitrace_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
