// Fig. 10: low-speed share per temperature class, split at the
// experimentally chosen boundary of 9 traffic lights per route — routes
// with many lights show more low speed, largely independent of weather.

#include "bench_util.h"
#include "taxitrace/core/figures.h"

namespace taxitrace {
namespace {

// The paper's boundary of 9 lights was experimentally chosen for its
// light-count distribution (route maxima up to 22). Our synthetic light
// census yields route counts up to ~10, so the analogous experimentally
// chosen boundary sits at 6 — the point where the low-speed share jumps.
constexpr int kLightBoundary = 6;

void PrintFig10() {
  const core::StudyResults& r = benchutil::FullResults();
  const std::string csv = core::WeatherLowSpeedCsv(r, kLightBoundary);
  std::printf(
      "FIG 10. Low speed %% by temperature class, lights <%d (white) vs "
      ">=%d (grey)\n(boundary %d: the experimentally chosen analogue of "
      "the paper's 9 for our light-count range):\n",
      kLightBoundary, kLightBoundary, kLightBoundary);
  benchutil::PrintPreview(csv, 14);
  benchutil::EmitFigureFile("fig10_weather_low_speed.csv", csv);

  // The paper's claim: when the light count is above the boundary there
  // is in general an increase of low speed, independent of the weather.
  // Count the temperature classes where the many-lights group exceeds
  // the few-lights group (among populated pairs).
  double sum[synth::kNumTemperatureClasses][2] = {};
  int64_t n[synth::kNumTemperatureClasses][2] = {};
  for (const core::MatchedTransition& mt : r.transitions) {
    const int cls =
        static_cast<int>(r.weather.ClassAt(mt.record.start_time_s));
    const int many =
        mt.record.attributes.traffic_lights >= kLightBoundary ? 1 : 0;
    sum[cls][many] += mt.record.low_speed_share;
    ++n[cls][many];
  }
  int holds = 0, populated = 0;
  for (int c = 0; c < synth::kNumTemperatureClasses; ++c) {
    if (n[c][0] < 3 || n[c][1] < 3) continue;
    ++populated;
    if (sum[c][1] / n[c][1] > sum[c][0] / n[c][0]) ++holds;
  }
  std::printf(
      "Check: >=%d lights raises low-speed share in %d of %d populated "
      "temperature classes -> %s\n\n",
      kLightBoundary, holds, populated,
      holds * 2 > populated ? "HOLDS" : "VIOLATED");
}

void BM_WeatherLowSpeedCsv(benchmark::State& state) {
  const core::StudyResults& r = benchutil::FullResults();
  for (auto _ : state) {
    auto csv = core::WeatherLowSpeedCsv(r, kLightBoundary);
    benchmark::DoNotOptimize(csv);
  }
}
BENCHMARK(BM_WeatherLowSpeedCsv)->Unit(benchmark::kMicrosecond);

void BM_WeatherModelYear(benchmark::State& state) {
  for (auto _ : state) {
    synth::WeatherModel weather(17, 365);
    benchmark::DoNotOptimize(weather);
  }
}
BENCHMARK(BM_WeatherModelYear)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintFig10)
