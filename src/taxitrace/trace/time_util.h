// Calendar utilities for the study clock.
//
// All timestamps in the library are seconds since the study epoch,
// 2012-10-01 00:00 local time — the start of the paper's collection
// period (1.10.2012–31.9.2013).

#ifndef TAXITRACE_TRACE_TIME_UTIL_H_
#define TAXITRACE_TRACE_TIME_UTIL_H_

#include <cstdint>
#include <string>

namespace taxitrace {
namespace trace {

/// Seconds in a day.
inline constexpr double kSecondsPerDay = 86400.0;
/// Days in the study year (2012-10-01 .. 2013-09-30; 2013 is not a leap
/// year and the window contains no Feb 29).
inline constexpr int kStudyDays = 365;

/// A calendar date.
struct CivilDate {
  int year = 0;
  int month = 0;  ///< 1..12
  int day = 0;    ///< 1..31
  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

/// The study epoch as a civil date (2012-10-01).
CivilDate StudyEpoch();

/// Civil date for a day offset from 1970-01-01 (Howard Hinnant's
/// civil_from_days algorithm).
CivilDate CivilFromDays(int64_t days_since_unix_epoch);

/// Day offset from 1970-01-01 for a civil date (days_from_civil).
int64_t DaysFromCivil(const CivilDate& date);

/// Calendar date of a study timestamp.
CivilDate DateOfTimestamp(double timestamp_s);

/// Month (1..12) of a study timestamp.
int MonthOfTimestamp(double timestamp_s);

/// Whole days since the study epoch (0-based).
int DayOfStudy(double timestamp_s);

/// Hour of day, [0, 24).
double HourOfDay(double timestamp_s);

/// Day of week, 0 = Monday .. 6 = Sunday (ISO).
int DayOfWeek(double timestamp_s);

/// True for Saturday or Sunday.
bool IsWeekend(double timestamp_s);

/// "YYYY-MM-DD HH:MM:SS" rendering of a study timestamp.
std::string FormatTimestamp(double timestamp_s);

}  // namespace trace
}  // namespace taxitrace

#endif  // TAXITRACE_TRACE_TIME_UTIL_H_
