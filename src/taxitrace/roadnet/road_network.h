// The prepared road-network graph G = {V, E}: vertices are road junctions
// (or terminal dead-ends), edges are maximal chains of traffic elements
// between two vertices (Section IV-A of the paper). Point features are
// attached to the edge they lie on.
//
// Storage is tiled (tile.h): vertices and edges live in fixed-size
// spatial tiles keyed by the position of the vertex (edges belong to
// the tile of their `from` endpoint), and every id packs (tile index,
// local ordinal) into the historical 32-bit VertexId / EdgeId. With the
// default TilingOptions (tile_size_m == 0) the whole map is one tile
// and packed ids equal the old dense ids bit-for-bit, so existing maps,
// serialised snapshots, and id-seeded RNG streams are unchanged.

#ifndef TAXITRACE_ROADNET_ROAD_NETWORK_H_
#define TAXITRACE_ROADNET_ROAD_NETWORK_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "taxitrace/common/hash.h"
#include "taxitrace/common/result.h"
#include "taxitrace/geo/coordinates.h"
#include "taxitrace/geo/polyline.h"
#include "taxitrace/roadnet/map_features.h"
#include "taxitrace/roadnet/tile.h"
#include "taxitrace/roadnet/traffic_element.h"

namespace taxitrace {
namespace roadnet {

/// Index of a vertex within a RoadNetwork (packed tile/local, tile.h).
using VertexId = int32_t;
/// Index of an edge within a RoadNetwork (packed tile/local, tile.h).
using EdgeId = int32_t;

inline constexpr VertexId kInvalidVertex = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// A graph vertex: a junction (>= 3 incident elements) or a terminal
/// point (1 incident element).
struct Vertex {
  VertexId id = kInvalidVertex;
  geo::EnPoint position;
  bool is_junction = false;  ///< True for degree >= 3 endpoints.
};

/// A graph edge: one or more traffic elements merged into a single chain.
struct Edge {
  EdgeId id = kInvalidEdge;
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  geo::Polyline geometry;  ///< Oriented from `from` to `to`.
  double length_m = 0.0;
  double speed_limit_kmh = 40.0;
  FunctionalClass functional_class = FunctionalClass::kLocalStreet;
  /// Travel constraint relative to the edge orientation (from -> to).
  TravelDirection direction = TravelDirection::kBoth;
  /// Ids of the contributing traffic elements, in chain order (the
  /// `elements` column of Table 1).
  std::vector<ElementId> element_ids;
  std::string road_name;
  /// Features lying on this edge.
  std::vector<FeatureId> feature_ids;
};

/// A position along an edge, measured as arc length from the edge's
/// `from` end.
struct EdgePosition {
  EdgeId edge = kInvalidEdge;
  double arc_length_m = 0.0;
};

/// One incident half-edge in the flattened (CSR) adjacency: everything
/// a graph traversal needs about leaving a base vertex through one
/// edge, precomputed so the hot loops never chase Edge pointers for
/// topology. 24 bytes, cache-line friendly: a degree-4 junction's whole
/// neighbourhood fits in two lines.
struct HalfEdge {
  EdgeId edge = kInvalidEdge;
  VertexId head = kInvalidVertex;  ///< Far endpoint seen from the base.
  double length_m = 0.0;
  /// base -> head is drivable (the router's out-arc test).
  bool traversable_out = false;
  /// head -> base is drivable (the reversed-graph arc test).
  bool traversable_in = false;
  /// Leaving the base vertex follows the edge orientation (from -> to).
  bool forward = false;
};

/// One arc crossing a tile boundary, recorded in the owning tile's
/// boundary table during the CSR build: traversals leaving the tile go
/// through these, and the invariant tests check every such arc is
/// visible (with symmetric traversability) from both sides.
struct BoundaryArc {
  VertexId from = kInvalidVertex;  ///< Base vertex, inside this tile.
  VertexId head = kInvalidVertex;  ///< Far endpoint, in another tile.
  EdgeId edge = kInvalidEdge;
};

/// How the builder partitions the map into tiles. The default (0) keeps
/// the whole network in one tile, reproducing the historical flat
/// layout exactly.
struct TilingOptions {
  /// Edge length of the square tiles, metres. 0 disables tiling.
  double tile_size_m = 0.0;
};

/// One fixed-size spatial tile: a self-contained slab of vertices,
/// edges, incidence lists and CSR adjacency. Local ordinals index the
/// vectors directly; globals are packed via tile.h.
struct GraphTile {
  TileCoord coord;
  std::vector<Vertex> vertices;
  std::vector<Edge> edges;
  /// Incident edge ids (global) per local vertex, insertion order.
  std::vector<std::vector<EdgeId>> incident;

  // CSR mirror of `incident`, rebuilt lazily by the owning network
  // (see RoadNetwork::OutArcs for the threading contract).
  std::vector<int32_t> csr_offsets;
  std::vector<HalfEdge> csr_arcs;
  /// Arcs whose head vertex lies in a different tile, in CSR order.
  std::vector<BoundaryArc> boundary;
};

/// The prepared road network. Construct through `PrepareRoadNetwork()`
/// (map_preparation.h) or the builder API below.
class RoadNetwork {
 public:
  /// Creates an empty network whose local frame is anchored at `origin`.
  explicit RoadNetwork(const geo::LatLon& origin,
                       const TilingOptions& tiling = TilingOptions{});

  /// WGS84 anchor of the local east/north frame.
  [[nodiscard]] const geo::LatLon& origin() const { return origin_; }
  /// Projection between WGS84 and the local frame.
  [[nodiscard]] const geo::LocalProjection& projection() const {
    return projection_;
  }
  /// The tiling this network was built with.
  [[nodiscard]] const TilingOptions& tiling() const { return tiling_; }

  // --- Sizes and id enumeration ------------------------------------------
  //
  // Ids are packed (tile, local) pairs and are NOT dense when the map
  // has more than one tile; code that needs a dense [0, n) range (CSV
  // columns, scratch arrays, multiplier tables) must go through the
  // ordinal mapping below. In single-tile maps id == ordinal.

  [[nodiscard]] size_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] size_t num_edges() const { return num_edges_; }
  [[nodiscard]] size_t num_tiles() const { return tiles_.size(); }

  [[nodiscard]] bool HasVertex(VertexId id) const {
    if (id < 0) return false;
    const auto t = static_cast<size_t>(TileIndexOf(id));
    return t < tiles_.size() &&
           static_cast<size_t>(LocalIdOf(id)) < tiles_[t].vertices.size();
  }
  [[nodiscard]] bool HasEdge(EdgeId id) const {
    if (id < 0) return false;
    const auto t = static_cast<size_t>(TileIndexOf(id));
    return t < tiles_.size() &&
           static_cast<size_t>(LocalIdOf(id)) < tiles_[t].edges.size();
  }

  /// Dense ordinal of a vertex / edge in tile-major order: tile index
  /// first, local ordinal second. Stable for a finished network; equal
  /// to the id itself in single-tile maps.
  [[nodiscard]] size_t VertexOrdinal(VertexId id) const;
  [[nodiscard]] size_t EdgeOrdinal(EdgeId id) const;

  /// Inverse of the ordinal mapping.
  [[nodiscard]] VertexId VertexIdAt(size_t ordinal) const;
  [[nodiscard]] EdgeId EdgeIdAt(size_t ordinal) const;

  /// Visits every vertex / edge in tile-major (== ordinal, == insertion
  /// for single-tile maps) order. Deterministic.
  template <typename Fn>
  void ForEachVertex(Fn&& fn) const {
    for (const GraphTile& t : tiles_) {
      for (const Vertex& v : t.vertices) fn(v);
    }
  }
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    for (const GraphTile& t : tiles_) {
      for (const Edge& e : t.edges) fn(e);
    }
  }

  [[nodiscard]] const std::vector<MapFeature>& features() const {
    return features_;
  }

  /// The vertex / edge / feature with the given id. Passing an invalid
  /// id is a programming error (TT_DCHECK'd).
  [[nodiscard]] const Vertex& vertex(VertexId id) const;
  [[nodiscard]] const Edge& edge(EdgeId id) const;
  [[nodiscard]] const MapFeature& feature(FeatureId id) const;

  // --- Tiles -------------------------------------------------------------

  /// The tile with the given dense index.
  [[nodiscard]] const GraphTile& tile(TileIndex t) const;

  /// Cross-tile arcs leaving tile `t`, in CSR order. Empty until the
  /// adjacency is built; empty forever on single-tile maps.
  [[nodiscard]] std::span<const BoundaryArc> BoundaryArcs(TileIndex t) const;

  /// Dense index of the tile whose lattice cell contains `p`, or -1 if
  /// no vertex was ever added there. Single-tile maps always return 0.
  [[nodiscard]] TileIndex TileAt(const geo::EnPoint& p) const;

  /// Approximate resident bytes of the graph storage (vertices, edges
  /// incl. geometry, incidence, CSR slabs, boundary tables, directory).
  [[nodiscard]] size_t ApproxMemoryBytes() const;

  // --- Topology ----------------------------------------------------------

  /// Edges incident to `v` (regardless of traversability).
  [[nodiscard]] const std::vector<EdgeId>& IncidentEdges(VertexId v) const;

  /// Flattened (CSR) adjacency of `v`: one HalfEdge per entry of
  /// IncidentEdges(v), in the same order, with head vertex, length and
  /// per-direction traversability precomputed. Rebuilt lazily after the
  /// last builder mutation; the rebuild mutates shared state, so the
  /// first call on a finished network must happen before the network is
  /// shared across threads (Router's constructor and WarmAdjacency()
  /// both do this). Concurrent calls are race-free once warmed.
  /// Defined inline below the class: it sits in every search's hot loop.
  [[nodiscard]] std::span<const HalfEdge> OutArcs(VertexId v) const;

  /// Builds the CSR adjacency now if it is stale (idempotent). Call
  /// after the last builder mutation when the network is about to be
  /// read from multiple threads.
  void WarmAdjacency() const;

  /// True when the edge may be driven in the given orientation
  /// (forward = from -> to).
  [[nodiscard]] bool CanTraverse(EdgeId e, bool forward) const;

  /// The vertex at the far end of `e` when entering from `v`. Requires
  /// `v` to be one of the edge's endpoints.
  [[nodiscard]] VertexId Opposite(EdgeId e, VertexId v) const;

  /// Point on the edge geometry at the given arc length (clamped).
  [[nodiscard]] geo::EnPoint PointAt(const EdgePosition& pos) const;

  /// Number of features of type `t` attached to edge `e`.
  [[nodiscard]] int CountFeaturesOnEdge(EdgeId e, FeatureType t) const;

  /// Total number of features of type `t` in the map.
  [[nodiscard]] int CountFeatures(FeatureType t) const;

  /// Bounding box of all edge geometry.
  [[nodiscard]] geo::Bbox Bounds() const;

  // --- Builder API -------------------------------------------------------

  /// Adds a vertex and returns its id (packed to the tile containing
  /// `position` under the network's tiling).
  VertexId AddVertex(const geo::EnPoint& position, bool is_junction);

  /// Adds an edge; `edge.id` is ignored and assigned (the edge belongs
  /// to the tile of its `from` vertex). `from`/`to` must be valid.
  /// Returns the assigned id.
  EdgeId AddEdge(Edge edge);

  /// Adds a point feature, attaching it to the nearest edge within
  /// `attach_radius_m` (no attachment if none is close enough). Returns
  /// the assigned feature id.
  FeatureId AddFeature(FeatureType type, const geo::EnPoint& position,
                       double attach_radius_m = 40.0);

  /// Structural validation: endpoint/geometry agreement, positive
  /// lengths, id packing consistency, feature attachment consistency.
  Status Validate() const;

 private:
  void RebuildAdjacency() const;
  void RebuildOrdinalBases() const;
  [[nodiscard]] bool adjacency_stale() const {
    return csr_vertex_count_ != num_vertices_ ||
           csr_edge_count_ != num_edges_;
  }
  // Ordinal bases go stale with the CSR but rebuild in O(tiles), so
  // builder code may interleave mutations with ordinal lookups without
  // paying a full adjacency rebuild each time.
  [[nodiscard]] bool ordinals_stale() const {
    return ordinal_vertex_count_ != num_vertices_ ||
           ordinal_edge_count_ != num_edges_;
  }
  /// Dense index of the tile containing `position`, creating it if new.
  TileIndex TileForPosition(const geo::EnPoint& position);

  geo::LatLon origin_;
  geo::LocalProjection projection_;
  TilingOptions tiling_;

  // `mutable` members are lazily rebuilt caches, semantically part of
  // the const read API (same contract as the CSR before tiling).
  mutable std::vector<GraphTile> tiles_;
  std::unordered_map<TileCoord, TileIndex, TileCoordHash> tile_directory_;
  std::vector<MapFeature> features_;
  size_t num_vertices_ = 0;
  size_t num_edges_ = 0;

  // Cumulative vertex/edge counts per tile for the ordinal mapping,
  // rebuilt alongside the CSR (same staleness check).
  mutable std::vector<size_t> vertex_base_;
  mutable std::vector<size_t> edge_base_;
  mutable size_t csr_vertex_count_ = 0;  ///< num_vertices_ at last build
  mutable size_t csr_edge_count_ = 0;    ///< num_edges_ at last build
  mutable size_t ordinal_vertex_count_ = 0;  ///< at last ordinal rebuild
  mutable size_t ordinal_edge_count_ = 0;    ///< at last ordinal rebuild
};

inline std::span<const HalfEdge> RoadNetwork::OutArcs(VertexId v) const {
  if (adjacency_stale()) RebuildAdjacency();
  const GraphTile& t = tiles_[static_cast<size_t>(TileIndexOf(v))];
  const auto local = static_cast<size_t>(LocalIdOf(v));
  const auto begin = static_cast<size_t>(t.csr_offsets[local]);
  const auto end = static_cast<size_t>(t.csr_offsets[local + 1]);
  return {t.csr_arcs.data() + begin, end - begin};
}

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_ROAD_NETWORK_H_
