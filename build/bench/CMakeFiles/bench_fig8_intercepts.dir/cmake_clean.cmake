file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_intercepts.dir/bench_fig8_intercepts.cc.o"
  "CMakeFiles/bench_fig8_intercepts.dir/bench_fig8_intercepts.cc.o.d"
  "bench_fig8_intercepts"
  "bench_fig8_intercepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_intercepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
