// Fig. 7: QQ plot of the REML cell intercepts — the check that Gaussian
// regularisation of the random cell effects is justified (Section VI-B).

#include "bench_util.h"
#include "taxitrace/core/figures.h"
#include "taxitrace/model/qq.h"

namespace taxitrace {
namespace {

void PrintFig7() {
  const core::StudyResults& r = benchutil::FullResults();
  const std::string csv = core::QqPlotCsv(r);
  std::printf("FIG 7. Cell intercept regularisation QQ plot (preview):\n");
  benchutil::PrintPreview(csv, 8);
  benchutil::EmitFigureFile("fig7_qqplot.csv", csv);

  std::vector<double> intercepts;
  for (size_t g = 0; g < r.cell_model.blup.size(); ++g) {
    if (r.cell_model.group_n[g] > 0) {
      intercepts.push_back(r.cell_model.blup[g]);
    }
  }
  const auto series = model::NormalQqSeries(std::move(intercepts));
  const double corr = model::QqCorrelation(series);
  std::printf(
      "QQ correlation of the %zu cell intercepts: %.4f.\n"
      "Paper shape: the points follow the Gaussian line with the "
      "exception of only the far edges — i.e. near-Gaussian with heavy "
      "tails, so the correlation sits high but below 1.\n"
      "Check: correlation > 0.9 -> %s\n\n",
      series.size(), corr, corr > 0.9 ? "HOLDS" : "VIOLATED");
}

void BM_NormalQqSeries(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(rng.Gaussian());
  for (auto _ : state) {
    auto series = model::NormalQqSeries(sample);
    benchmark::DoNotOptimize(series);
  }
}
BENCHMARK(BM_NormalQqSeries)->Unit(benchmark::kMicrosecond);

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::NormalQuantile(p));
    p += 0.0001;
    if (p >= 0.999) p = 0.001;
  }
}
BENCHMARK(BM_NormalQuantile)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintFig7)
