// A small LRU memo for gap-fill routing queries.
//
// Map matching asks the router for the same (from, to) edge-position
// pair more than once — most prominently when an HMM backtrack
// reconstructs a transition whose distance the forward pass already
// computed — and each repeat is a full shortest-path search. The cache
// keys on the exact bit pattern of both positions, so a hit is
// guaranteed to return the byte-identical Result the router produced
// (NotFound outcomes are cached too).
//
// Determinism contract: a RouteCache must be confined to one
// deterministic unit of work — one trip's Match call — and never shared
// across executor work items. Hit/miss sequences then depend only on
// the trip, not on worker count or scheduling, which keeps StudyResults
// and every published cache counter byte-identical at any thread count.

#ifndef TAXITRACE_MAPMATCH_ROUTE_CACHE_H_
#define TAXITRACE_MAPMATCH_ROUTE_CACHE_H_

#include <bit>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "taxitrace/common/result.h"
#include "taxitrace/roadnet/router.h"

namespace taxitrace {
namespace mapmatch {

class RouteCache {
 public:
  /// Capacity 0 disables the cache: Find always misses (uncounted) and
  /// Insert is a no-op.
  explicit RouteCache(size_t capacity) : capacity_(capacity) {}

  /// Tallies of this cache's lifetime. Deterministic per unit of work
  /// (see the header comment), so sums over trips merge into exact
  /// counters.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  /// The cached result for the pair, refreshing its recency, or nullptr
  /// on a miss. The pointer stays valid until the next Insert.
  const Result<roadnet::Path>* Find(const roadnet::EdgePosition& from,
                                    const roadnet::EdgePosition& to);

  /// Stores a result for the pair, evicting the least recently used
  /// entry when full. Inserting an existing key refreshes its value.
  void Insert(const roadnet::EdgePosition& from,
              const roadnet::EdgePosition& to,
              Result<roadnet::Path> path);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] size_t size() const { return entries_.size(); }
  [[nodiscard]] size_t capacity() const { return capacity_; }

 private:
  struct Key {
    roadnet::EdgeId from_edge = roadnet::kInvalidEdge;
    roadnet::EdgeId to_edge = roadnet::kInvalidEdge;
    double from_arc = 0.0;
    double to_arc = 0.0;
    // Equality compares the arc *bit patterns*, exactly like KeyHash
    // hashes them. Value comparison would break the unordered_map
    // contract (equal keys must hash equally): -0.0 == +0.0 but their
    // bit patterns hash differently, and a NaN arc would never equal
    // itself, duplicating entries and turning guaranteed hits into
    // misses.
    bool operator==(const Key& other) const {
      return from_edge == other.from_edge && to_edge == other.to_edge &&
             std::bit_cast<uint64_t>(from_arc) ==
                 std::bit_cast<uint64_t>(other.from_arc) &&
             std::bit_cast<uint64_t>(to_arc) ==
                 std::bit_cast<uint64_t>(other.to_arc);
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    Result<roadnet::Path> path;
  };

  size_t capacity_;
  // Recency order, most recent at the front; the map indexes into it.
  std::list<Entry> entries_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  Stats stats_;
};

}  // namespace mapmatch
}  // namespace taxitrace

#endif  // TAXITRACE_MAPMATCH_ROUTE_CACHE_H_
