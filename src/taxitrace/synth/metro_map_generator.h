// Synthetic metro-scale road network: the stress-test companion to the
// study-area generator (city_map_generator.h). Where the city map
// reproduces the paper's downtown with calibrated feature censuses, the
// metro generator produces *structure at scale* — a coarse lattice of
// districts, each with its own arterial street grid, stitched together
// by inter-district connectors, wrapped in ring roads, and cut by
// rivers that funnel traffic through bridge choke points. The largest
// preset exceeds 100k vertices, enough to exercise the tiled graph
// storage (roadnet/tile.h) with hundreds of populated tiles.
//
// Deterministic in the seed: each district draws from its own
// Rng(MixSeed(seed, row, col)) stream, so maps are reproducible and
// districts are independent of generation order.

#ifndef TAXITRACE_SYNTH_METRO_MAP_GENERATOR_H_
#define TAXITRACE_SYNTH_METRO_MAP_GENERATOR_H_

#include <cstdint>

#include "taxitrace/common/result.h"
#include "taxitrace/geo/coordinates.h"
#include "taxitrace/roadnet/road_network.h"

namespace taxitrace {
namespace synth {

/// Generator knobs. Defaults give a small (~1k vertex) metro.
struct MetroMapOptions {
  uint64_t seed = 20121001;

  /// District lattice (coarse grid of neighbourhoods).
  int districts_x = 2;
  int districts_y = 2;
  /// Street-grid nodes per district, per axis.
  int district_nodes_x = 16;
  int district_nodes_y = 16;
  /// Spacing between street-grid nodes inside a district, metres.
  double node_spacing_m = 120.0;
  /// Gap between neighbouring district grids, metres (the length of
  /// the inter-district connector roads).
  double district_gap_m = 360.0;
  /// Arterial connectors between each pair of adjacent districts.
  int connectors_per_side = 3;

  /// Concentric rectangular ring roads around the whole metro, with
  /// ramps down to the outermost district corners.
  int num_ring_roads = 1;
  /// Offset of ring r from the metro bounding box, metres.
  double ring_offset_m = 400.0;

  /// Horizontal rivers cutting the metro. Rivers run through the gaps
  /// between district rows; only connectors surviving as bridges cross
  /// them. 0 disables rivers.
  int num_rivers = 1;
  /// Approximate spacing between bridges along a river, metres.
  double bridge_every_m = 3000.0;

  /// Fraction of interior (non-arterial) street segments removed per
  /// district for irregularity. Connectivity is repaired afterwards.
  double street_removal_fraction = 0.06;
  /// Fraction of interior street segments made one-way.
  double one_way_fraction = 0.10;

  /// Tiling of the produced network. The default 2000 m tiles give a
  /// multi-tile map at every preset; set tile_size_m = 0 for the flat
  /// single-tile layout (used by the tiled-vs-flat equivalence tests).
  roadnet::TilingOptions tiling{2000.0};

  /// WGS84 anchor of the local frame.
  geo::LatLon origin{65.0121, 25.4682};
};

/// A generated metro map plus its structural census.
struct MetroMap {
  roadnet::RoadNetwork network;
  int num_districts = 0;
  int num_bridges = 0;       ///< Connector edges crossing a river.
  int num_ring_vertices = 0; ///< Vertices on ring-road loops.
  int num_repair_edges = 0;  ///< Edges re-added by connectivity repair.
};

/// Generates a metro map. Deterministic in `options.seed`.
Result<MetroMap> GenerateMetroMap(const MetroMapOptions& options = {});

/// Size presets for scale sweeps: level 0 ~ 1k vertices, 1 ~ 10k,
/// 2 ~ 26k, 3 >= 100k. Levels above 3 keep growing the district
/// lattice. All presets share the default 2000 m tiling.
MetroMapOptions MetroPreset(int level);

}  // namespace synth
}  // namespace taxitrace

#endif  // TAXITRACE_SYNTH_METRO_MAP_GENERATOR_H_
