// Gap filling: when consecutive GPS points are far apart, the route
// between their matched positions is reconstructed with the Dijkstra
// shortest path (the paper uses pgRouting's Dijkstra for this).

#ifndef TAXITRACE_MAPMATCH_GAP_FILLER_H_
#define TAXITRACE_MAPMATCH_GAP_FILLER_H_

#include "taxitrace/common/result.h"
#include "taxitrace/mapmatch/route_cache.h"
#include "taxitrace/roadnet/router.h"

namespace taxitrace {
namespace mapmatch {

/// Gap-filling thresholds.
struct GapFillOptions {
  /// A connection counts as a gap (Dijkstra-filled) when its network
  /// length exceeds this, metres.
  double gap_threshold_m = 250.0;
  /// A connection is rejected as a plausible continuation when its
  /// network length exceeds detour_factor * straight-line + slack.
  double detour_factor = 1.8;
  double detour_slack_m = 120.0;
  /// Entry capacity of the per-trip route cache the matchers thread
  /// through Connect/NetworkDistance; 0 disables caching. Results are
  /// identical either way — the cache only skips repeat searches.
  size_t route_cache_capacity = 128;
};

/// Connects two matched positions through the network.
class GapFiller {
 public:
  GapFiller(const roadnet::RoadNetwork* network,
            GapFillOptions options = {});

  /// Shortest drivable connection between two on-edge positions. When
  /// `cache` is given, repeats of a pair return the memoized result
  /// instead of re-searching.
  Result<roadnet::Path> Connect(const roadnet::EdgePosition& from,
                                const roadnet::EdgePosition& to,
                                RouteCache* cache = nullptr) const;

  /// Network distance between two positions, metres; infinity when
  /// unreachable.
  double NetworkDistance(const roadnet::EdgePosition& from,
                         const roadnet::EdgePosition& to,
                         RouteCache* cache = nullptr) const;

  /// True when a connection of `network_length_m` between points
  /// `straight_line_m` apart is a plausible continuation of the drive.
  [[nodiscard]]
  bool IsPlausible(double network_length_m, double straight_line_m) const;

  /// True when the connection length marks a filled gap.
  [[nodiscard]] bool IsGap(double network_length_m) const {
    return network_length_m > options_.gap_threshold_m;
  }

  [[nodiscard]] const GapFillOptions& options() const { return options_; }

  /// The underlying router, for reading its Dijkstra work counters.
  [[nodiscard]] const roadnet::Router& router() const { return router_; }

 private:
  const roadnet::RoadNetwork* network_;
  roadnet::Router router_;
  GapFillOptions options_;
};

}  // namespace mapmatch
}  // namespace taxitrace

#endif  // TAXITRACE_MAPMATCH_GAP_FILLER_H_
