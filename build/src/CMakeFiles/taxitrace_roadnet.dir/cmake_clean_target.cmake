file(REMOVE_RECURSE
  "libtaxitrace_roadnet.a"
)
