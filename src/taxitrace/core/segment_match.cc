#include "taxitrace/core/segment_match.h"

#include <utility>

#include "taxitrace/mapmatch/route_cache.h"
#include "taxitrace/trace/route_point.h"

namespace taxitrace {
namespace core {

SegmentMatchOutput MatchSegment(const trace::Trip& segment,
                                const SegmentMatchContext& context) {
  SegmentMatchOutput out;
  // One route memo per cleaned segment, shared by all its matched
  // transitions and never by other segments.
  mapmatch::RouteCache route_cache(context.route_cache_capacity);

  const odselect::TripGateAnalysis analysis =
      context.extractor->Analyze(segment);
  if (!analysis.crosses_gate_at_angle ||
      analysis.distinct_gates_crossed < 2) {
    return out;
  }
  ++out.filtered_cleaned;

  for (const odselect::Transition& transition : analysis.transitions) {
    ++out.transitions_examined;
    if (!odselect::IsSelectedDirection(transition,
                                       *context.transition_filter)) {
      ++out.dropped_direction;
      continue;
    }
    ++out.transitions_total;
    if (!odselect::IsWithinCentralArea(transition, *context.central_area,
                                       context.region, *context.projection,
                                       *context.transition_filter)) {
      ++out.dropped_outside_central;
      continue;
    }
    ++out.transitions_central;

    // Map matching (only cleared transitions through the centre are
    // matched, as in the paper).
    Result<mapmatch::MatchedRoute> route =
        context.matcher->Match(transition.segment, &route_cache);
    if (!route.ok()) {
      ++out.dropped_match_failed;
      continue;
    }

    const auto origin_it = context.gate_by_name->find(transition.origin);
    const auto dest_it = context.gate_by_name->find(transition.destination);
    if (origin_it == context.gate_by_name->end() ||
        dest_it == context.gate_by_name->end()) {
      ++out.dropped_unknown_gate;
      continue;
    }
    if (!odselect::PassesEndpointPostFilter(
            route->geometry, *origin_it->second, *dest_it->second,
            *context.transition_filter)) {
      ++out.dropped_endpoint_filter;
      continue;
    }
    ++out.post_filtered;

    // Attributes and the per-transition record.
    MatchedTransition mt{transition, std::move(*route), {}};
    mt.record.trip_id = transition.segment.trip_id;
    mt.record.car_id = transition.segment.car_id;
    mt.record.direction = transition.Label();
    mt.record.start_time_s = transition.segment.StartTime();
    mt.record.route_time_h =
        trace::TimeSpanSeconds(transition.segment.points) / 3600.0;
    mt.record.route_distance_km = mt.route.length_m / 1000.0;
    mt.record.low_speed_share =
        analysis::LowSpeedShare(transition.segment, *context.speed);
    mt.record.normal_speed_share = analysis::NormalSpeedShare(
        transition.segment, mt.route, *context.network, *context.speed);
    double fuel = 0.0;
    for (size_t k = 1; k < transition.segment.points.size(); ++k) {
      fuel += transition.segment.points[k].fuel_delta_ml;
    }
    mt.record.fuel_ml = fuel;
    mt.record.attributes = context.fetcher->Fetch(mt.route);
    out.transitions.push_back(std::move(mt));
  }
  out.cache_hits = route_cache.stats().hits;
  out.cache_misses = route_cache.stats().misses;
  out.cache_evictions = route_cache.stats().evictions;
  return out;
}

}  // namespace core
}  // namespace taxitrace
