file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cell_map.dir/bench_fig6_cell_map.cc.o"
  "CMakeFiles/bench_fig6_cell_map.dir/bench_fig6_cell_map.cc.o.d"
  "bench_fig6_cell_map"
  "bench_fig6_cell_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cell_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
