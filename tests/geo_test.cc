#include <gtest/gtest.h>

#include <cmath>

#include "taxitrace/common/random.h"
#include "taxitrace/geo/coordinates.h"
#include "taxitrace/geo/geometry.h"
#include "taxitrace/geo/polygon.h"
#include "taxitrace/geo/polyline.h"

namespace taxitrace {
namespace geo {
namespace {

const LatLon kOulu{65.0121, 25.4682};

// --- Coordinates -------------------------------------------------------------

TEST(HaversineTest, ZeroForSamePoint) {
  EXPECT_DOUBLE_EQ(HaversineMeters(kOulu, kOulu), 0.0);
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111Km) {
  const LatLon a{60.0, 25.0};
  const LatLon b{61.0, 25.0};
  EXPECT_NEAR(HaversineMeters(a, b), 111194.9, 200.0);
}

TEST(HaversineTest, LongitudeShrinksWithLatitude) {
  const LatLon eq_a{0.0, 25.0}, eq_b{0.0, 26.0};
  const LatLon hi_a{65.0, 25.0}, hi_b{65.0, 26.0};
  const double at_equator = HaversineMeters(eq_a, eq_b);
  const double at_oulu = HaversineMeters(hi_a, hi_b);
  EXPECT_NEAR(at_oulu / at_equator, std::cos(65.0 * M_PI / 180.0), 0.01);
}

TEST(LocalProjectionTest, OriginMapsToZero) {
  const LocalProjection proj(kOulu);
  const EnPoint p = proj.Forward(kOulu);
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
}

TEST(LocalProjectionTest, RoundTripIsExact) {
  const LocalProjection proj(kOulu);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const EnPoint p{rng.Uniform(-2000, 2000), rng.Uniform(-2000, 2000)};
    const EnPoint back = proj.Forward(proj.Inverse(p));
    EXPECT_NEAR(back.x, p.x, 1e-6);
    EXPECT_NEAR(back.y, p.y, 1e-6);
  }
}

TEST(LocalProjectionTest, AgreesWithHaversineNearOrigin) {
  const LocalProjection proj(kOulu);
  const LatLon other{65.0221, 25.4882};
  const EnPoint p = proj.Forward(other);
  EXPECT_NEAR(Norm(p), HaversineMeters(kOulu, other), 2.0);
}

TEST(LocalProjectionTest, NorthIsPositiveYEastPositiveX) {
  const LocalProjection proj(kOulu);
  EXPECT_GT(proj.Forward(LatLon{65.02, 25.4682}).y, 0.0);
  EXPECT_GT(proj.Forward(LatLon{65.0121, 25.48}).x, 0.0);
}

TEST(WktTest, FormatMatchesTable1Style) {
  EXPECT_EQ(ToWktPoint(LatLon{65.0252, 25.5244}),
            "POINT(25.5244, 65.0252)");
  EXPECT_EQ(ToWktPoint(LatLon{65.5, 25.5}, 1), "POINT(25.5, 65.5)");
}

// --- Vector ops ---------------------------------------------------------------

TEST(GeometryTest, VectorArithmetic) {
  const EnPoint a{1, 2}, b{3, -1};
  EXPECT_EQ(a + b, (EnPoint{4, 1}));
  EXPECT_EQ(a - b, (EnPoint{-2, 3}));
  EXPECT_EQ(2.0 * a, (EnPoint{2, 4}));
  EXPECT_DOUBLE_EQ(Dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Cross(a, b), -7.0);
  EXPECT_DOUBLE_EQ(Norm(EnPoint{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), std::sqrt(13.0));
}

TEST(GeometryTest, SegmentHeading) {
  EXPECT_NEAR((Segment{{0, 0}, {1, 0}}).Heading(), 0.0, 1e-12);
  EXPECT_NEAR((Segment{{0, 0}, {0, 1}}).Heading(), M_PI / 2, 1e-12);
  EXPECT_NEAR((Segment{{0, 0}, {-1, 0}}).Heading(), M_PI, 1e-12);
  EXPECT_NEAR((Segment{{0, 0}, {0, 0}}).Heading(), 0.0, 1e-12);
}

TEST(GeometryTest, ProjectOntoSegmentInterior) {
  const Segment s{{0, 0}, {10, 0}};
  const PointProjection p = ProjectOntoSegment(EnPoint{4, 3}, s);
  EXPECT_NEAR(p.t, 0.4, 1e-12);
  EXPECT_NEAR(p.point.x, 4.0, 1e-12);
  EXPECT_NEAR(p.distance, 3.0, 1e-12);
}

TEST(GeometryTest, ProjectOntoSegmentClampsToEnds) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_EQ(ProjectOntoSegment(EnPoint{-5, 0}, s).t, 0.0);
  EXPECT_EQ(ProjectOntoSegment(EnPoint{15, 0}, s).t, 1.0);
}

TEST(GeometryTest, ProjectOntoDegenerateSegment) {
  const Segment s{{2, 2}, {2, 2}};
  const PointProjection p = ProjectOntoSegment(EnPoint{5, 6}, s);
  EXPECT_EQ(p.point, (EnPoint{2, 2}));
  EXPECT_NEAR(p.distance, 5.0, 1e-12);
}

TEST(GeometryTest, SegmentIntersectionCrossing) {
  const auto hit = SegmentIntersection(Segment{{0, -1}, {0, 1}},
                                       Segment{{-1, 0}, {1, 0}});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 0.0, 1e-9);
  EXPECT_NEAR(hit->y, 0.0, 1e-9);
}

TEST(GeometryTest, SegmentIntersectionDisjoint) {
  EXPECT_FALSE(SegmentIntersection(Segment{{0, 0}, {1, 0}},
                                   Segment{{0, 1}, {1, 1}})
                   .has_value());
  EXPECT_FALSE(SegmentIntersection(Segment{{0, 0}, {1, 0}},
                                   Segment{{2, -1}, {2, 1}})
                   .has_value());
}

TEST(GeometryTest, SegmentIntersectionTouchingEndpoint) {
  const auto hit = SegmentIntersection(Segment{{0, 0}, {1, 1}},
                                       Segment{{1, 1}, {2, 0}});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 1.0, 1e-9);
}

TEST(GeometryTest, SegmentIntersectionCollinearOverlap) {
  const auto hit = SegmentIntersection(Segment{{0, 0}, {4, 0}},
                                       Segment{{2, 0}, {6, 0}});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->y, 0.0, 1e-9);
  EXPECT_GE(hit->x, 2.0 - 1e-9);
  EXPECT_LE(hit->x, 4.0 + 1e-9);
}

TEST(GeometryTest, SegmentIntersectionCollinearDisjoint) {
  EXPECT_FALSE(SegmentIntersection(Segment{{0, 0}, {1, 0}},
                                   Segment{{2, 0}, {3, 0}})
                   .has_value());
}

TEST(GeometryTest, AngleBetweenHeadings) {
  EXPECT_NEAR(AngleBetweenHeadings(0.0, M_PI / 2), M_PI / 2, 1e-12);
  EXPECT_NEAR(AngleBetweenHeadings(0.0, 2 * M_PI), 0.0, 1e-12);
  EXPECT_NEAR(AngleBetweenHeadings(-M_PI + 0.1, M_PI - 0.1), 0.2, 1e-9);
}

TEST(GeometryTest, UndirectedAngleTreatsOppositeAsEqual) {
  EXPECT_NEAR(UndirectedAngleBetweenHeadings(0.0, M_PI), 0.0, 1e-12);
  EXPECT_NEAR(UndirectedAngleBetweenHeadings(0.0, M_PI / 2), M_PI / 2,
              1e-12);
  EXPECT_NEAR(UndirectedAngleBetweenHeadings(0.0, 3 * M_PI / 4), M_PI / 4,
              1e-12);
}

TEST(BboxTest, ExtendAndContains) {
  Bbox box = Bbox::Empty();
  EXPECT_FALSE(box.IsValid());
  box.Extend(EnPoint{1, 2});
  box.Extend(EnPoint{-1, 5});
  EXPECT_TRUE(box.IsValid());
  EXPECT_TRUE(box.Contains(EnPoint{0, 3}));
  EXPECT_FALSE(box.Contains(EnPoint{2, 3}));
  EXPECT_TRUE(box.Contains(EnPoint{1, 2}));  // boundary
}

TEST(BboxTest, InflateAndIntersect) {
  Bbox a = Bbox::Empty();
  a.Extend(EnPoint{0, 0});
  a.Extend(EnPoint{1, 1});
  const Bbox b = a.Inflated(1.0);
  EXPECT_TRUE(b.Contains(EnPoint{-0.5, 1.5}));
  Bbox c = Bbox::Empty();
  c.Extend(EnPoint{3, 3});
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Inflated(2.0).Intersects(c));
}

TEST(BboxTest, ExtendWithBox) {
  Bbox a = Bbox::Empty();
  a.Extend(EnPoint{0, 0});
  Bbox b = Bbox::Empty();
  b.Extend(EnPoint{5, -2});
  a.Extend(b);
  EXPECT_TRUE(a.Contains(EnPoint{4, -1}));
  a.Extend(Bbox::Empty());  // no-op
  EXPECT_TRUE(a.IsValid());
}

// --- Polyline ------------------------------------------------------------------

Polyline MakeL() {
  return Polyline({{0, 0}, {10, 0}, {10, 10}});
}

TEST(PolylineTest, Length) {
  EXPECT_DOUBLE_EQ(MakeL().Length(), 20.0);
  EXPECT_DOUBLE_EQ(Polyline().Length(), 0.0);
  EXPECT_DOUBLE_EQ(Polyline({{1, 1}}).Length(), 0.0);
}

TEST(PolylineTest, Interpolate) {
  const Polyline line = MakeL();
  EXPECT_EQ(line.Interpolate(-1.0), (EnPoint{0, 0}));
  EXPECT_EQ(line.Interpolate(5.0), (EnPoint{5, 0}));
  EXPECT_EQ(line.Interpolate(15.0), (EnPoint{10, 5}));
  EXPECT_EQ(line.Interpolate(99.0), (EnPoint{10, 10}));
}

TEST(PolylineTest, ProjectFindsNearestAcrossSegments) {
  const Polyline line = MakeL();
  const PolylineProjection p = line.Project(EnPoint{12, 5});
  EXPECT_EQ(p.segment_index, 1u);
  EXPECT_NEAR(p.distance, 2.0, 1e-12);
  EXPECT_NEAR(p.arc_length, 15.0, 1e-12);
}

TEST(PolylineTest, ProjectOntoCorner) {
  const PolylineProjection p = MakeL().Project(EnPoint{12, -2});
  EXPECT_NEAR(p.point.x, 10.0, 1e-12);
  EXPECT_NEAR(p.point.y, 0.0, 1e-12);
}

TEST(PolylineTest, SegmentHeading) {
  const Polyline line = MakeL();
  EXPECT_NEAR(line.SegmentHeading(0), 0.0, 1e-12);
  EXPECT_NEAR(line.SegmentHeading(1), M_PI / 2, 1e-12);
}

TEST(PolylineTest, Reversed) {
  const Polyline rev = MakeL().Reversed();
  EXPECT_EQ(rev.front(), (EnPoint{10, 10}));
  EXPECT_EQ(rev.back(), (EnPoint{0, 0}));
  EXPECT_DOUBLE_EQ(rev.Length(), 20.0);
}

TEST(PolylineTest, ExtendDropsDuplicateJunctionVertex) {
  Polyline a({{0, 0}, {5, 0}});
  a.Extend(Polyline({{5, 0}, {5, 5}}));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.Length(), 10.0);
}

TEST(PolylineTest, ExtendKeepsDistinctVertex) {
  Polyline a({{0, 0}, {5, 0}});
  a.Extend(Polyline({{6, 0}, {6, 5}}));
  EXPECT_EQ(a.size(), 4u);
}

TEST(PolylineTest, ResampleRespectsSpacing) {
  const Polyline dense = MakeL().Resample(1.0);
  EXPECT_GE(dense.size(), 20u);
  EXPECT_NEAR(dense.Length(), 20.0, 1e-9);
  EXPECT_EQ(dense.front(), (EnPoint{0, 0}));
  EXPECT_EQ(dense.back(), (EnPoint{10, 10}));
}

TEST(PolylineTest, SubLineForward) {
  const Polyline sub = MakeL().SubLine(5.0, 15.0);
  EXPECT_NEAR(sub.Length(), 10.0, 1e-9);
  EXPECT_EQ(sub.front(), (EnPoint{5, 0}));
  EXPECT_EQ(sub.back(), (EnPoint{10, 5}));
  EXPECT_EQ(sub.size(), 3u);  // includes the corner vertex
}

TEST(PolylineTest, SubLineReversed) {
  const Polyline sub = MakeL().SubLine(15.0, 5.0);
  EXPECT_EQ(sub.front(), (EnPoint{10, 5}));
  EXPECT_EQ(sub.back(), (EnPoint{5, 0}));
  EXPECT_NEAR(sub.Length(), 10.0, 1e-9);
}

TEST(PolylineTest, SubLineDegenerate) {
  const Polyline sub = MakeL().SubLine(5.0, 5.0);
  EXPECT_GE(sub.size(), 2u);
  EXPECT_NEAR(sub.Length(), 0.0, 1e-9);
}

TEST(PolylineTest, SubLineClamps) {
  const Polyline sub = MakeL().SubLine(-10.0, 100.0);
  EXPECT_NEAR(sub.Length(), 20.0, 1e-9);
}

// Property: splitting at any interior arc preserves total length.
class SubLineSplitTest : public testing::TestWithParam<double> {};

TEST_P(SubLineSplitTest, LengthAdditivity) {
  const Polyline line({{0, 0}, {7, 3}, {10, 10}, {4, 12}});
  const double total = line.Length();
  const double cut = GetParam() * total;
  const double l1 = line.SubLine(0.0, cut).Length();
  const double l2 = line.SubLine(cut, total).Length();
  EXPECT_NEAR(l1 + l2, total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cuts, SubLineSplitTest,
                         testing::Values(0.1, 0.25, 0.5, 0.61803, 0.75,
                                         0.9, 0.999));

// --- Polygon --------------------------------------------------------------------

Polygon UnitSquare() {
  return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(PolygonTest, ContainsInterior) {
  EXPECT_TRUE(UnitSquare().Contains(EnPoint{0.5, 0.5}));
  EXPECT_FALSE(UnitSquare().Contains(EnPoint{1.5, 0.5}));
  EXPECT_FALSE(UnitSquare().Contains(EnPoint{-0.1, 0.5}));
}

TEST(PolygonTest, ContainsBoundary) {
  EXPECT_TRUE(UnitSquare().Contains(EnPoint{0.0, 0.5}));
  EXPECT_TRUE(UnitSquare().Contains(EnPoint{1.0, 1.0}));
}

TEST(PolygonTest, EmptyPolygonContainsNothing) {
  EXPECT_TRUE(Polygon().empty());
  EXPECT_FALSE(Polygon().Contains(EnPoint{0, 0}));
  EXPECT_FALSE(Polygon({{0, 0}, {1, 1}}).Contains(EnPoint{0.5, 0.5}));
}

TEST(PolygonTest, ConcaveContainment) {
  // A "U" shape: the notch is outside.
  const Polygon u({{0, 0}, {3, 0}, {3, 3}, {2, 3}, {2, 1}, {1, 1},
                   {1, 3}, {0, 3}});
  EXPECT_TRUE(u.Contains(EnPoint{0.5, 2.0}));
  EXPECT_TRUE(u.Contains(EnPoint{2.5, 2.0}));
  EXPECT_FALSE(u.Contains(EnPoint{1.5, 2.0}));  // inside the notch
}

TEST(PolygonTest, IntersectsSegment) {
  const Polygon sq = UnitSquare();
  EXPECT_TRUE(sq.IntersectsSegment(Segment{{-1, 0.5}, {2, 0.5}}));  // pass
  EXPECT_TRUE(sq.IntersectsSegment(Segment{{0.4, 0.4}, {0.6, 0.6}}));
  EXPECT_TRUE(sq.IntersectsSegment(Segment{{0.5, 0.5}, {5, 5}}));
  EXPECT_FALSE(sq.IntersectsSegment(Segment{{-1, -1}, {-1, 2}}));
  EXPECT_FALSE(sq.IntersectsSegment(Segment{{2, 0}, {2, 1}}));
}

TEST(PolygonTest, SignedArea) {
  EXPECT_NEAR(UnitSquare().SignedArea(), 1.0, 1e-12);  // CCW
  const Polygon cw({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  EXPECT_NEAR(cw.SignedArea(), -1.0, 1e-12);
}

TEST(PolygonTest, MakeRectangle) {
  const Polygon rect = MakeRectangle(Bbox{-1, -2, 3, 4});
  EXPECT_TRUE(rect.Contains(EnPoint{0, 0}));
  EXPECT_FALSE(rect.Contains(EnPoint{4, 0}));
  EXPECT_NEAR(std::abs(rect.SignedArea()), 24.0, 1e-9);
}

TEST(BufferPolylineTest, StraightLineBuffer) {
  const Polygon buf = BufferPolyline(Polyline({{0, 0}, {100, 0}}), 10.0);
  ASSERT_FALSE(buf.empty());
  EXPECT_TRUE(buf.Contains(EnPoint{50, 8}));
  EXPECT_TRUE(buf.Contains(EnPoint{50, -8}));
  EXPECT_FALSE(buf.Contains(EnPoint{50, 12}));
  EXPECT_FALSE(buf.Contains(EnPoint{-5, 0}));  // flat end cap
  EXPECT_NEAR(std::abs(buf.SignedArea()), 2000.0, 1.0);
}

TEST(BufferPolylineTest, BentLineCoversCorner) {
  const Polygon buf =
      BufferPolyline(Polyline({{0, 0}, {50, 0}, {50, 50}}), 10.0);
  EXPECT_TRUE(buf.Contains(EnPoint{50, 0}));   // the corner itself
  EXPECT_TRUE(buf.Contains(EnPoint{45, 5}));
  EXPECT_TRUE(buf.Contains(EnPoint{55, 25}));
  EXPECT_FALSE(buf.Contains(EnPoint{30, 30}));
}

TEST(BufferPolylineTest, DegenerateInputs) {
  EXPECT_TRUE(BufferPolyline(Polyline(), 10.0).empty());
  EXPECT_TRUE(BufferPolyline(Polyline({{0, 0}}), 10.0).empty());
  EXPECT_TRUE(
      BufferPolyline(Polyline({{0, 0}, {1, 0}}), 0.0).empty());
}

// Property: every vertex of the source line lies inside its buffer.
class BufferContainmentTest : public testing::TestWithParam<double> {};

TEST_P(BufferContainmentTest, SourceInsideBuffer) {
  Rng rng(static_cast<uint64_t>(GetParam() * 1000));
  std::vector<EnPoint> pts{{0, 0}};
  for (int i = 0; i < 6; ++i) {
    pts.push_back(pts.back() +
                  EnPoint{rng.Uniform(20, 60), rng.Uniform(-30, 30)});
  }
  const Polyline line(pts);
  const Polygon buf = BufferPolyline(line, GetParam());
  for (const EnPoint& p : line.points()) {
    EXPECT_TRUE(buf.Contains(p));
  }
  const Polyline dense = line.Resample(5.0);
  for (const EnPoint& p : dense.points()) {
    EXPECT_TRUE(buf.Contains(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BufferContainmentTest,
                         testing::Values(5.0, 10.0, 25.0, 60.0));

}  // namespace
}  // namespace geo
}  // namespace taxitrace
