// The arrival-ordered record stream feeding online ingestion. A
// production deployment receives one record stream per car (begin-trip
// markers and GPS fixes, roughly in upload order); this module gives
// the same shape to an in-memory TraceStore so the batch and online
// paths can be run on *identical* input and proven equivalent.
//
// Every record carries a per-car arrival sequence number `seq`. The
// canonical stream enumerates a car's trips in store order (marker,
// then points in trip order) with seq 0, 1, 2, ...; ShuffleArrivals
// then perturbs the *arrival* order by a bounded displacement while
// the seq values keep naming the canonical slots — exactly the
// transport-reordering model a bounded-lag ingester must undo.

#ifndef TAXITRACE_STREAM_STREAM_SOURCE_H_
#define TAXITRACE_STREAM_STREAM_SOURCE_H_

#include <cstdint>
#include <vector>

#include "taxitrace/trace/route_point.h"
#include "taxitrace/trace/trace_store.h"

namespace taxitrace {
namespace stream {

/// One record of a per-car arrival stream.
struct StreamRecord {
  enum class Kind {
    kTripBegin,  ///< Device signalled engine-on: a new upload session.
    kPoint,      ///< One GPS fix inside the current session.
  };

  Kind kind = Kind::kPoint;
  /// Canonical per-car arrival slot. Contiguous from 0 in the canonical
  /// stream; reordering changes arrival positions, never seq values.
  int64_t seq = 0;
  int car_id = 0;
  /// The upload session (container trip) this record belongs to. For
  /// points this is the *containing* trip's id, which under interleave
  /// faults differs from point.trip_id — the ingester groups by the
  /// container, like the batch store does, and leaves foreign-id points
  /// for the cleaning sanitiser.
  int64_t trip_id = 0;

  /// Valid when kind == kPoint.
  trace::RoutePoint point;

  /// Device-reported trip totals, valid when kind == kTripBegin.
  double total_time_s = 0.0;
  double total_distance_m = 0.0;
  double total_fuel_ml = 0.0;
};

/// One car's arrival stream.
struct CarStream {
  int car_id = 0;
  std::vector<StreamRecord> records;  ///< In arrival order.
};

/// Builds the canonical arrival stream of one car from a store: its
/// trips in store insertion order, each as a kTripBegin marker followed
/// by its points, with seq numbering the records 0..n-1.
CarStream BuildCarStream(const trace::TraceStore& store, int car_id);

/// Canonical streams for every car in the store, ascending car id.
std::vector<CarStream> BuildCarStreams(const trace::TraceStore& store);

/// Deterministically perturbs the arrival order so that no record lands
/// more than `max_displacement` positions away from its canonical slot
/// (each record's sort key is its position plus a uniform draw in
/// [0, max_displacement]; keys within `max_displacement` of each other
/// bound the displacement of a stable sort by `max_displacement`).
/// `max_displacement <= 0` leaves the stream untouched. Equal seeds
/// produce equal shuffles at any thread count — callers derive the seed
/// per car via MixSeed.
void ShuffleArrivals(std::vector<StreamRecord>* records, uint64_t seed,
                     int64_t max_displacement);

}  // namespace stream
}  // namespace taxitrace

#endif  // TAXITRACE_STREAM_STREAM_SOURCE_H_
