#include "taxitrace/roadnet/map_features.h"

namespace taxitrace {
namespace roadnet {

std::string_view FeatureTypeName(FeatureType t) {
  switch (t) {
    case FeatureType::kTrafficLight:
      return "traffic_light";
    case FeatureType::kBusStop:
      return "bus_stop";
    case FeatureType::kPedestrianCrossing:
      return "pedestrian_crossing";
  }
  return "?";
}

}  // namespace roadnet
}  // namespace taxitrace
