// Online ingestion of one car's arrival stream with bounded lag.
//
// The session is the streaming counterpart of the batch store walk: it
// accepts StreamRecords in arrival order, undoes bounded transport
// reordering, and reassembles upload sessions (container trips) as
// *windows* that are flushed to a TripSink the moment they are
// complete. Two rules govern release:
//
//  1. Contiguous release: the record with the smallest unreleased seq
//     is emitted as soon as it is present, so an in-order stream flows
//     straight through with zero buffering.
//  2. Watermark close: the watermark trails the stream head by the
//     configured lag (`watermark = max_seq_seen - reorder_lag`). A gap
//     older than the watermark stops waiting — its slots are declared
//     lost and the stream skips ahead — so no window ever survives a
//     watermark advance by more than the lag, and buffering is bounded
//     by `reorder_lag` records.
//
// The equivalence contract: whenever every record's arrival
// displacement is at most `reorder_lag / 2`, nothing is ever declared
// lost, the released order equals the canonical (batch) order exactly,
// and per-record latency is at most `reorder_lag` arrival slots.
// Records that do arrive behind the watermark are counted as explicit
// late drops — the funnel ledger reconciles offered == released +
// dropped, so nothing is ever silently lost.

#ifndef TAXITRACE_STREAM_INGEST_SESSION_H_
#define TAXITRACE_STREAM_INGEST_SESSION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "taxitrace/common/status.h"
#include "taxitrace/stream/stream_source.h"
#include "taxitrace/trace/trip.h"
#include "taxitrace/trace/trip_sink.h"

namespace taxitrace {
namespace stream {

/// Knobs of the online ingestion path.
struct IngestOptions {
  /// Reorder window, in arrival slots: how far the watermark trails the
  /// stream head before a missing record is declared lost. Displacement
  /// up to reorder_lag / 2 is repaired losslessly.
  int64_t reorder_lag = 64;

  /// When positive, the pipeline perturbs each car's canonical arrival
  /// order by at most this many slots before ingesting (deterministic
  /// per-car shuffle; see ShuffleArrivals). 0 ingests canonical order.
  /// Keep it at most reorder_lag / 2 to stay within the lossless bound.
  int64_t arrival_shuffle_window = 0;
  uint64_t arrival_shuffle_seed = 0x5EEDA11CULL;
};

/// What one (or a fold of several) ingest session(s) did. All fields
/// are plain integer counts merged additively in car order, so the
/// fold is byte-identical at any worker count.
struct IngestStats {
  int64_t points_offered = 0;        ///< Point records that arrived.
  int64_t trip_markers_offered = 0;  ///< kTripBegin records that arrived.
  int64_t points_released = 0;
  int64_t trip_markers_released = 0;
  /// Arrived behind the watermark (their slot was already released or
  /// declared lost) and were dropped — the funnel's late_arrival drops.
  int64_t points_dropped_late = 0;
  int64_t trip_markers_dropped_late = 0;
  /// Seq slots the watermark gave up waiting for. If the record later
  /// arrives it is counted above; a slot whose record never arrives at
  /// all stays accounted here.
  int64_t slots_declared_lost = 0;

  int64_t windows_opened = 0;
  /// Windows opened by a point whose marker was lost or late — the
  /// session synthesises the container so the points still flow.
  int64_t windows_opened_implicit = 0;
  int64_t windows_closed = 0;

  /// High-water mark of records buffered awaiting release (<= lag).
  int64_t peak_buffered_records = 0;

  /// Per-record release latency in arrival slots: bucket b counts
  /// records released after b further arrivals on the same stream
  /// (0 = released by the arrival that carried them). The last bucket
  /// accumulates everything >= its index.
  std::vector<int64_t> latency_hist;

  /// Adds every counter of `other` into this (latency buckets
  /// element-wise, growing to the larger histogram).
  void Add(const IngestStats& other);
};

/// Smallest latency (in slots) at or below which a fraction `q` of the
/// released records fall; 0 when nothing was released.
int64_t IngestLatencyQuantile(const IngestStats& stats, double q);

/// Largest occupied latency bucket; 0 when nothing was released.
int64_t IngestLatencyMax(const IngestStats& stats);

/// Ingests one car's stream. Not thread-safe: one session per car, one
/// car per work item — sessions never share state, which is what lets
/// the pipeline fan them out over the executor deterministically.
class IngestSession {
 public:
  /// `sink` receives each closed window as a trace::Trip, in release
  /// order, from the thread driving Ingest/FinishStream; it may be
  /// null (count-only ingestion). The sink's error aborts the session.
  IngestSession(int car_id, const IngestOptions& options,
                trace::TripSink* sink);

  IngestSession(const IngestSession&) = delete;
  IngestSession& operator=(const IngestSession&) = delete;

  /// Accepts the next arrival. Releases every record the arrival makes
  /// ready and flushes every window those releases complete.
  Status Ingest(const StreamRecord& record);

  /// End of stream: releases everything still buffered (gaps become
  /// lost slots) and closes the open window. Ingest must not be called
  /// afterwards.
  Status FinishStream();

  [[nodiscard]] const IngestStats& stats() const { return stats_; }

  /// The watermark: seqs at or below it are released, lost, or late.
  [[nodiscard]] int64_t watermark() const {
    return max_seq_ - options_.reorder_lag;
  }
  [[nodiscard]] int64_t next_expected_seq() const { return next_expected_; }
  [[nodiscard]] int64_t max_seq_seen() const { return max_seq_; }
  [[nodiscard]] int64_t buffered_records() const {
    return static_cast<int64_t>(buffer_.size());
  }

 private:
  struct BufferedRecord {
    StreamRecord record;
    int64_t arrived_at = 0;  ///< Arrival counter when it was ingested.
  };

  Status Release(const BufferedRecord& buffered);
  Status DrainReady();
  Status CloseWindow();
  void RecordLatency(int64_t latency_slots);

  const int car_id_;
  const IngestOptions options_;
  trace::TripSink* const sink_;

  /// Out-of-order arrivals awaiting their predecessors, keyed by seq.
  /// Holds at most reorder_lag records (seqs in (next_expected_,
  /// max_seq_], and the watermark caps that span at the lag).
  std::map<int64_t, BufferedRecord> buffer_;
  int64_t next_expected_ = 0;
  int64_t max_seq_ = -1;
  int64_t arrivals_ = 0;

  bool window_open_ = false;
  trace::Trip window_;
  bool finished_ = false;

  IngestStats stats_;
};

}  // namespace stream
}  // namespace taxitrace

#endif  // TAXITRACE_STREAM_INGEST_SESSION_H_
