// Known-bad: relaxed atomics outside obs/ need a reasoned suppression.

#include "taxitrace/core/fake.h"

namespace taxitrace {

void BadRelaxedAdd(std::atomic<int>& c) {
  c.fetch_add(1, std::memory_order_relaxed);  // expect(relaxed-atomic)
}

void BadRelaxedStore(std::atomic<int>& c) {
  c.store(0, std::memory_order_relaxed);      // expect(relaxed-atomic)
}

}  // namespace taxitrace
