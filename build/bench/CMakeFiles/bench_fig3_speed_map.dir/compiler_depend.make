# Empty compiler generated dependencies file for bench_fig3_speed_map.
# This may be replaced when dependencies are built.
