// Hotspot / slow-cell discovery: the urban-computing scenario from the
// paper's introduction. Joins the 200 m grid speeds with map features,
// fits the random-intercept model, runs the hotspot detector to separate
// feature-explained slow cells from crowd candidates, and exports a
// GeoJSON layer for GIS inspection.
//
//   $ ./hotspot_grid [output.geojson]

#include <cmath>
#include <cstdio>

#include "taxitrace/analysis/hotspot_detector.h"
#include "taxitrace/core/figures.h"
#include "taxitrace/core/pipeline.h"

int main(int argc, char** argv) {
  using namespace taxitrace;

  core::Pipeline pipeline(core::StudyConfig::SmallStudy());
  const Result<core::StudyResults> run = pipeline.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const core::StudyResults& results = *run;

  const std::vector<analysis::DetectedHotspot> slow_cells =
      analysis::DetectHotspots(results.cells);
  std::printf("Slow cells (>= 1 sd below the overall cell mean):\n");
  std::printf(
      "  cell(x,y)   z-score  mean km/h  points  lights  bus  "
      "explanation\n");
  for (const analysis::DetectedHotspot& hit : slow_cells) {
    std::printf("  (%3d,%3d)   %7.2f  %9.1f  %6lld  %6d %4d  %s\n",
                hit.cell.cell.cx, hit.cell.cell.cy, hit.z_score,
                hit.cell.mean_speed_kmh,
                static_cast<long long>(hit.cell.num_points),
                hit.cell.features.traffic_lights,
                hit.cell.features.bus_stops,
                hit.explained_by_features ? "static features"
                                          : "CROWD CANDIDATE");
  }

  // Cross-check the crowd candidates against the simulation's planted
  // pedestrian hotspots (a downstream user would check WiFi/footfall
  // data here, as the paper's reference [29] did).
  const std::vector<analysis::DetectedHotspot> candidates =
      analysis::DetectCrowdCandidates(results.cells);
  const analysis::Grid grid(results.grid_cell_m);
  int confirmed = 0;
  for (const analysis::DetectedHotspot& hit : candidates) {
    const geo::EnPoint center = grid.CellCenter(hit.cell.cell);
    for (const synth::Hotspot& h : results.map.hotspots) {
      if (geo::Distance(center, h.center) < h.radius_m + 150.0) {
        ++confirmed;
        break;
      }
    }
  }
  std::printf(
      "\n%zu crowd candidates; %d coincide with the simulation's planted "
      "pedestrian hotspots.\nThe paper: low speeds in such cells reflect "
      "real movements of people, not static map features.\n",
      candidates.size(), confirmed);

  // Fuse with the pedestrian-activity ("WiFi count") data: correlate
  // each cell's model intercept with its midday crowd intensity. A
  // negative correlation is the paper's crowdsourcing outlook realised.
  {
    std::vector<double> blups, crowds;
    const double midday = 13.0 * 3600.0;
    for (size_t g = 0; g < results.model_cells.size(); ++g) {
      if (results.cell_model.group_n[g] < 10) continue;
      blups.push_back(results.cell_model.blup[g]);
      crowds.push_back(results.pedestrians.CrowdIntensityAt(
          grid.CellCenter(results.model_cells[g]), midday));
    }
    double mb = 0, mc = 0;
    for (size_t i = 0; i < blups.size(); ++i) {
      mb += blups[i];
      mc += crowds[i];
    }
    mb /= static_cast<double>(blups.size());
    mc /= static_cast<double>(blups.size());
    double sbc = 0, sbb = 0, scc = 0;
    for (size_t i = 0; i < blups.size(); ++i) {
      sbc += (blups[i] - mb) * (crowds[i] - mc);
      sbb += (blups[i] - mb) * (blups[i] - mb);
      scc += (crowds[i] - mc) * (crowds[i] - mc);
    }
    if (sbb > 0 && scc > 0) {
      std::printf(
          "\nCorrelation(cell intercept, midday pedestrian activity) = "
          "%.2f over %zu cells — crowds depress speeds.\n",
          sbc / std::sqrt(sbb * scc), blups.size());
    }
  }

  const std::string path = argc > 1 ? argv[1] : "hotspot_cells.geojson";
  const Status st =
      core::WriteTextFile(path, core::CellMapGeoJson(results));
  if (st.ok()) {
    std::printf("\nCell layer written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s: %s\n", path.c_str(),
                 st.ToString().c_str());
  }
  return 0;
}
