// Match-quality metrics for evaluating matchers against simulated ground
// truth.

#ifndef TAXITRACE_MAPMATCH_MATCH_QUALITY_H_
#define TAXITRACE_MAPMATCH_MATCH_QUALITY_H_

#include <vector>

#include "taxitrace/mapmatch/incremental_matcher.h"

namespace taxitrace {
namespace mapmatch {

/// Jaccard similarity of the traversed edge sets.
double EdgeJaccard(const std::vector<roadnet::EdgeId>& matched,
                   const std::vector<roadnet::EdgeId>& truth);

/// Mean distance from samples of `matched` geometry to the `truth`
/// geometry, metres (sampled every `sample_spacing_m`). Lower is better.
double MeanGeometryDeviation(const geo::Polyline& matched,
                             const geo::Polyline& truth,
                             double sample_spacing_m = 20.0);

/// Relative route-length error |matched - truth| / truth.
double RouteLengthError(double matched_length_m, double truth_length_m);

}  // namespace mapmatch
}  // namespace taxitrace

#endif  // TAXITRACE_MAPMATCH_MATCH_QUALITY_H_
