#include "taxitrace/model/mixed_model.h"

#include <cmath>

#include "taxitrace/common/check.h"
#include "taxitrace/model/cholesky.h"

namespace taxitrace {
namespace model {
namespace {

template <typename F>
double GoldenSection(F f, double lo, double hi, int iterations = 70) {
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = f(c), fd = f(d);
  for (int i = 0; i < iterations; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = f(d);
    }
  }
  return (a + b) / 2.0;
}

}  // namespace

MixedModel::MixedModel(size_t num_fixed)
    : p_(num_fixed), xtx_(num_fixed, num_fixed), xty_(num_fixed, 0.0) {}

void MixedModel::Add(const Vector& x_row, size_t group, double y) {
  TT_CHECK(x_row.size() == p_);
  AddOuterProduct(&xtx_, x_row, 1.0);
  for (size_t i = 0; i < p_; ++i) xty_[i] += x_row[i] * y;
  yty_ += y * y;
  ++n_;
  if (group >= group_n_.size()) {
    group_n_.resize(group + 1, 0);
    group_x_sum_.resize(group + 1, Vector(p_, 0.0));
    group_y_sum_.resize(group + 1, 0.0);
  }
  ++group_n_[group];
  for (size_t i = 0; i < p_; ++i) group_x_sum_[group][i] += x_row[i];
  group_y_sum_[group] += y;
}

Result<MixedModel::GlsSolve> MixedModel::SolveGls(double lambda) const {
  // With V = sigma^2 (I + lambda Z Z'), block-diagonal per group:
  //   sigma^2 X'V^-1X = X'X - sum_i c_i s_i s_i',
  //   sigma^2 X'V^-1y = X'y - sum_i c_i s_i t_i,
  // where s_i = sum of x rows in group i, t_i = sum of y,
  // c_i = lambda / (1 + n_i lambda).
  GlsSolve out;
  out.a = xtx_;
  Vector rhs = xty_;
  for (size_t g = 0; g < group_n_.size(); ++g) {
    if (group_n_[g] == 0) continue;
    const double c = lambda / (1.0 + static_cast<double>(group_n_[g]) * lambda);
    if (c == 0.0) continue;
    AddOuterProduct(&out.a, group_x_sum_[g], -c);
    for (size_t i = 0; i < p_; ++i) {
      rhs[i] -= c * group_x_sum_[g][i] * group_y_sum_[g];
    }
  }
  TAXITRACE_ASSIGN_OR_RETURN(out.a_lower, CholeskyDecompose(out.a));
  out.b = CholeskySolve(out.a_lower, rhs);

  // sigma^2 r'V^-1r = r'r - sum_i c_i (group residual sum)^2 where the
  // residual quadratic expands from sufficient statistics.
  double rr = yty_ - 2.0 * DotProduct(out.b, xty_);
  rr += DotProduct(out.b, xtx_.MultiplyVector(out.b));
  double penalty = 0.0;
  for (size_t g = 0; g < group_n_.size(); ++g) {
    if (group_n_[g] == 0) continue;
    const double c = lambda / (1.0 + static_cast<double>(group_n_[g]) * lambda);
    const double group_resid =
        group_y_sum_[g] - DotProduct(out.b, group_x_sum_[g]);
    penalty += c * group_resid * group_resid;
  }
  out.q = rr - penalty;
  return out;
}

Result<double> MixedModel::RemlCriterion(double lambda) const {
  TAXITRACE_ASSIGN_OR_RETURN(const GlsSolve gls, SolveGls(lambda));
  const double dof = static_cast<double>(n_ - static_cast<int64_t>(p_));
  if (dof <= 0.0 || gls.q <= 0.0) {
    return Status::FailedPrecondition("degenerate REML profile");
  }
  double log_terms = 0.0;
  for (int64_t gn : group_n_) {
    if (gn > 0) log_terms += std::log1p(static_cast<double>(gn) * lambda);
  }
  return dof * std::log(gls.q / dof) + log_terms +
         LogDetFromCholesky(gls.a_lower);
}

Result<MixedModelFit> MixedModel::Fit() const {
  if (n_ <= static_cast<int64_t>(p_) + 1) {
    return Status::FailedPrecondition("not enough observations");
  }
  size_t active = 0;
  for (int64_t gn : group_n_) {
    if (gn > 0) ++active;
  }
  if (active < 2) {
    return Status::FailedPrecondition("need at least two non-empty groups");
  }

  const auto criterion_log = [this](double log_lambda) {
    const Result<double> c = RemlCriterion(std::pow(10.0, log_lambda));
    return c.ok() ? *c : std::numeric_limits<double>::infinity();
  };
  const double best_log = GoldenSection(criterion_log, -8.0, 5.0);
  double lambda = std::pow(10.0, best_log);
  {
    const Result<double> at_zero = RemlCriterion(0.0);
    const Result<double> at_best = RemlCriterion(lambda);
    if (at_zero.ok() && at_best.ok() && *at_zero <= *at_best) lambda = 0.0;
  }

  TAXITRACE_ASSIGN_OR_RETURN(const GlsSolve gls, SolveGls(lambda));
  MixedModelFit fit;
  fit.lambda = lambda;
  fit.num_observations = n_;
  fit.fixed_effects = gls.b;
  fit.sigma2_residual =
      gls.q / static_cast<double>(n_ - static_cast<int64_t>(p_));
  fit.sigma2_group = lambda * fit.sigma2_residual;
  TAXITRACE_ASSIGN_OR_RETURN(const double criterion, RemlCriterion(lambda));
  fit.reml_criterion = criterion;
  fit.group_n = group_n_;

  TAXITRACE_ASSIGN_OR_RETURN(const Matrix a_inv, InvertSpd(gls.a));
  fit.fixed_se.resize(p_);
  for (size_t i = 0; i < p_; ++i) {
    fit.fixed_se[i] =
        std::sqrt(std::max(0.0, fit.sigma2_residual * a_inv(i, i)));
  }

  fit.blup.resize(group_n_.size(), 0.0);
  fit.blup_se.resize(group_n_.size(), 0.0);
  for (size_t g = 0; g < group_n_.size(); ++g) {
    if (group_n_[g] == 0) {
      fit.blup_se[g] = std::sqrt(fit.sigma2_group);
      continue;
    }
    const double ng = static_cast<double>(group_n_[g]);
    const double c = lambda / (1.0 + ng * lambda);
    const double group_resid =
        group_y_sum_[g] - DotProduct(gls.b, group_x_sum_[g]);
    fit.blup[g] = c * group_resid;
    const double shrink = c * ng;  // = n lambda / (1 + n lambda)
    // Conditional spread plus fixed-effect uncertainty through the
    // group-average covariate vector.
    Vector xbar(p_);
    for (size_t i = 0; i < p_; ++i) xbar[i] = group_x_sum_[g][i] / ng;
    double xax = 0.0;
    for (size_t i = 0; i < p_; ++i) {
      for (size_t j = 0; j < p_; ++j) {
        xax += xbar[i] * a_inv(i, j) * xbar[j];
      }
    }
    const double var = fit.sigma2_group * (1.0 - shrink) +
                       shrink * shrink * fit.sigma2_residual * xax;
    fit.blup_se[g] = std::sqrt(std::max(0.0, var));
  }
  return fit;
}

}  // namespace model
}  // namespace taxitrace
