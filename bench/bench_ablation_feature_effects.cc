// Extension analysis: the paper's Eq. (2) with map features as fixed
// effects — point speed regressed on the cell's feature counts with a
// random cell intercept ("X may include ... the map features such as the
// number of traffic lights, bus stops, pedestrian crossings or
// crossings for the cell"). Compared against a plain OLS without the
// random intercept.

#include <cmath>

#include "bench_util.h"
#include "taxitrace/analysis/feature_model.h"
#include "taxitrace/model/ols.h"

namespace taxitrace {
namespace {

std::vector<analysis::SpeedObservation> StudyObservations() {
  const core::StudyResults& r = benchutil::FullResults();
  const geo::LocalProjection& proj = r.map.network.projection();
  std::vector<analysis::SpeedObservation> out;
  for (const core::MatchedTransition& mt : r.transitions) {
    for (const trace::RoutePoint& p : mt.transition.segment.points) {
      out.push_back(analysis::SpeedObservation{
          proj.Forward(p.position), p.speed_kmh});
    }
  }
  return out;
}

void PrintFeatureEffects() {
  const core::StudyResults& r = benchutil::FullResults();
  const analysis::Grid grid(r.grid_cell_m);
  const std::vector<analysis::SpeedObservation> obs = StudyObservations();

  const Result<analysis::FeatureModelFit> fit =
      analysis::FitFeatureModel(obs, r.cell_features, grid);
  if (!fit.ok()) {
    std::printf("feature model failed: %s\n",
                fit.status().ToString().c_str());
    return;
  }
  std::printf(
      "FEATURE EFFECTS: point speed ~ cell features + (1 | cell), "
      "%lld observations\n",
      static_cast<long long>(fit->fit.num_observations));
  std::printf("  term                    estimate      s.e.\n");
  for (size_t i = 0; i < fit->terms.size(); ++i) {
    std::printf("  %-22s %9.3f %9.3f\n", fit->terms[i].c_str(),
                fit->fit.fixed_effects[i], fit->fit.fixed_se[i]);
  }
  std::printf(
      "  residual sd %.2f km/h, leftover cell sd %.2f km/h\n",
      std::sqrt(fit->fit.sigma2_residual),
      std::sqrt(fit->fit.sigma2_group));

  // Plain OLS on the same design, ignoring cell clustering.
  model::OlsAccumulator ols(analysis::FeatureModelTerms().size());
  for (const analysis::SpeedObservation& o : obs) {
    const auto it = r.cell_features.find(grid.CellOf(o.position));
    const analysis::CellFeatureCounts c =
        it == r.cell_features.end() ? analysis::CellFeatureCounts{}
                                    : it->second;
    ols.Add({1.0, static_cast<double>(c.traffic_lights),
             static_cast<double>(c.bus_stops),
             static_cast<double>(c.pedestrian_crossings),
             static_cast<double>(c.junctions)},
            o.speed_kmh);
  }
  const Result<model::OlsFit> plain = ols.Fit();
  if (plain.ok()) {
    std::printf(
        "  (plain OLS lights coefficient: %.3f; the mixed model "
        "attributes geography to cells instead of inflating the feature "
        "terms)\n",
        plain->coefficients[1]);
  }
  const double lights = fit->Coefficient("traffic_lights");
  std::printf(
      "Check: traffic lights reduce speed (negative coefficient %.2f) "
      "-> %s\n",
      lights, lights < 0.0 ? "HOLDS" : "VIOLATED");
  std::printf(
      "Check: residual cell geography remains after the features "
      "(leftover cell sd > 2 km/h) -> %s\n\n",
      std::sqrt(fit->fit.sigma2_group) > 2.0 ? "HOLDS" : "VIOLATED");
}

void BM_FitFeatureModel(benchmark::State& state) {
  const core::StudyResults& r = benchutil::FullResults();
  const analysis::Grid grid(r.grid_cell_m);
  const std::vector<analysis::SpeedObservation> obs = StudyObservations();
  for (auto _ : state) {
    auto fit = analysis::FitFeatureModel(obs, r.cell_features, grid);
    benchmark::DoNotOptimize(fit);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(obs.size()));
}
BENCHMARK(BM_FitFeatureModel)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintFeatureEffects)
