// Pedestrian activity model — the stand-in for the city-wide WiFi
// sensing of Kostakos et al. that the paper uses to explain crowded
// areas ("hotspots, crowded areas with a lot of pedestrians moving, have
// an effect on the results"). Produces a deterministic crowd-activity
// level per hotspot over time: a diurnal curve (midday and evening
// peaks), weekend boosts and day-to-day noise.

#ifndef TAXITRACE_SYNTH_PEDESTRIAN_MODEL_H_
#define TAXITRACE_SYNTH_PEDESTRIAN_MODEL_H_

#include <vector>

#include "taxitrace/common/random.h"
#include "taxitrace/synth/city_map_generator.h"

namespace taxitrace {
namespace synth {

/// One constancy window of the time-dependent crowd factors. Between
/// `MakeCrowdWindow(t).valid_until_s` boundaries the study day, the
/// weekend flag and the diurnal curve value are all constant, so a
/// caller stepping time forward (the drive loop queries crowd intensity
/// every simulated second) can decompose the timestamp once per window
/// instead of once per query — the window-based overloads below return
/// bit-identical intensities to the timestamp-based ones.
struct CrowdWindow {
  int day = 0;                ///< DayOfStudy of every t in the window.
  double day_start_s = 0.0;   ///< day * kSecondsPerDay.
  bool weekend = false;       ///< IsWeekend of every t in the window.
  double diurnal = 0.0;       ///< PedestrianDiurnalCurve over the window.
  double valid_until_s = 0.0;  ///< First timestamp past the window.
};

/// The window containing `timestamp_s` (which must be >= 0; simulated
/// study time always is).
CrowdWindow MakeCrowdWindow(double timestamp_s);

/// Deterministic pedestrian activity per hotspot. Owns a copy of the
/// hotspot list, so it has no lifetime coupling to the map.
class PedestrianModel {
 public:
  /// Builds daily activity factors for `num_days` days.
  PedestrianModel(uint64_t seed, std::vector<Hotspot> hotspots,
                  int num_days = 365);

  /// Activity of hotspot `index` at a study timestamp, in [0, ~1.5]:
  /// 1.0 is the hotspot's nominal (static) crowding.
  [[nodiscard]] double ActivityAt(size_t index, double timestamp_s) const;

  /// Crowd intensity at a position: the hotspot spatial profile scaled
  /// by the current activity (replaces the static intensity).
  double CrowdIntensityAt(const geo::EnPoint& position,
                          double timestamp_s) const;

  /// As CrowdIntensityAt, consulting only the hotspots named in
  /// `candidates` (ascending indices into hotspots()). Exact — not an
  /// approximation — whenever `candidates` is a superset of the
  /// hotspots within their radius of `position`: every skipped hotspot
  /// would have contributed nothing. Lets a caller that queries many
  /// positions inside a known bounding box prefilter the hotspot list
  /// once instead of scanning all of them per query.
  double CrowdIntensityAt(const geo::EnPoint& position, double timestamp_s,
                          const std::vector<size_t>& candidates) const;

  /// As above with the timestamp pre-decomposed into its constancy
  /// window; returns exactly CrowdIntensityAt(position, t, candidates)
  /// for every t inside `window`.
  double CrowdIntensityAt(const geo::EnPoint& position,
                          const CrowdWindow& window,
                          const std::vector<size_t>& candidates) const;

  /// Mean activity of hotspot `index` over the daytime hours (09-21) of
  /// the whole study — what a WiFi census would report.
  [[nodiscard]] double MeanDaytimeActivity(size_t index) const;

  /// The hotspots this model animates.
  [[nodiscard]] const std::vector<Hotspot>& hotspots() const {
    return hotspots_;
  }

 private:
  std::vector<Hotspot> hotspots_;
  /// [hotspot][day] day-to-day multiplier.
  std::vector<std::vector<double>> daily_factor_;
};

/// The shared diurnal pedestrian curve (midday and evening peaks;
/// near-empty streets at night), mean ~1 over the active day.
double PedestrianDiurnalCurve(double hour_of_day, bool weekend);

}  // namespace synth
}  // namespace taxitrace

#endif  // TAXITRACE_SYNTH_PEDESTRIAN_MODEL_H_
