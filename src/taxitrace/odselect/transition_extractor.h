// Transition extraction: finding the routes that travel from one gate
// road to another, in that order in time (Section IV-D).

#ifndef TAXITRACE_ODSELECT_TRANSITION_EXTRACTOR_H_
#define TAXITRACE_ODSELECT_TRANSITION_EXTRACTOR_H_

#include <string>
#include <vector>

#include "taxitrace/geo/coordinates.h"
#include "taxitrace/odselect/od_gate.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace odselect {

/// One detected gate crossing within a trip. Consecutive movement
/// segments inside the same thick polygon collapse into one crossing
/// spanning [point_index, last_point_index].
struct GateCrossing {
  size_t gate_index = 0;   ///< Index into the extractor's gate list.
  size_t point_index = 0;  ///< First crossing movement: points [i, i+1].
  size_t last_point_index = 0;  ///< Last movement of the same traversal.
  OdGate::Crossing direction = OdGate::Crossing::kNone;
  double timestamp_s = 0.0;
};

/// An origin->destination run cut out of a trip segment. The transition
/// keeps the source trip id: (trip id, start time) uniquely identifies it
/// as in the paper (Section IV-F).
struct Transition {
  trace::Trip segment;  ///< Points from origin crossing to dest crossing.
  std::string origin;
  std::string destination;

  /// "S-T"-style label.
  [[nodiscard]] std::string Label() const { return origin + "-" + destination; }
};

/// Per-trip gate interaction summary, for the Table 3 funnel.
struct TripGateAnalysis {
  bool crosses_gate_at_angle = false;  ///< >= 1 angle-valid crossing.
  int distinct_gates_crossed = 0;
  std::vector<Transition> transitions;
};

/// Finds transitions over a fixed set of gates. Holds copies of the
/// gates.
class TransitionExtractor {
 public:
  TransitionExtractor(std::vector<OdGate> gates,
                      const geo::LocalProjection& projection);

  /// All angle-valid gate crossings of a trip, in time order.
  [[nodiscard]]
  std::vector<GateCrossing> FindCrossings(const trace::Trip& trip) const;

  /// Full analysis of one cleaned trip segment: crossing flags and the
  /// extracted transitions (an inbound crossing of one gate followed by
  /// an outbound crossing of a different gate).
  [[nodiscard]] TripGateAnalysis Analyze(const trace::Trip& trip) const;

  [[nodiscard]] const std::vector<OdGate>& gates() const { return gates_; }

 private:
  std::vector<OdGate> gates_;
  // Per-gate polygon bounds, cached so the per-movement scan can reject
  // a gate with four comparisons instead of a Classify call. The test is
  // the same bbox overlap Polygon::IntersectsSegment starts with, so
  // skipping a gate here never changes a classification.
  std::vector<geo::Bbox> gate_bounds_;
  geo::LocalProjection projection_;
};

}  // namespace odselect
}  // namespace taxitrace

#endif  // TAXITRACE_ODSELECT_TRANSITION_EXTRACTOR_H_
