file(REMOVE_RECURSE
  "libtaxitrace_odselect.a"
)
