#include "taxitrace/common/check.h"

#include <cstdio>
#include <cstdlib>

namespace taxitrace {
namespace internal {

void CheckFailed(const char* expr, const char* file, int line,
                 std::string_view detail) {
  if (detail.empty()) {
    std::fprintf(stderr, "TT_CHECK failed: %s at %s:%d\n", expr, file, line);
  } else {
    std::fprintf(stderr, "TT_CHECK failed: %s at %s:%d: %.*s\n", expr, file,
                 line, static_cast<int>(detail.size()), detail.data());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace taxitrace
