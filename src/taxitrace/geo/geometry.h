// Planar geometry kernel on local east/north coordinates.
//
// The arithmetic primitives (vector ops, norms, projections, heading
// math) are defined inline here: the simulator and matcher call them
// tens of millions of times per study, and keeping them visible to the
// caller's optimizer removes the per-call overhead and lets the hot
// loops vectorise.

#ifndef TAXITRACE_GEO_GEOMETRY_H_
#define TAXITRACE_GEO_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "taxitrace/geo/coordinates.h"

namespace taxitrace {
namespace geo {

/// Vector arithmetic on EnPoint.
inline EnPoint operator+(const EnPoint& a, const EnPoint& b) {
  return EnPoint{a.x + b.x, a.y + b.y};
}
inline EnPoint operator-(const EnPoint& a, const EnPoint& b) {
  return EnPoint{a.x - b.x, a.y - b.y};
}
inline EnPoint operator*(double s, const EnPoint& p) {
  return EnPoint{s * p.x, s * p.y};
}

/// Dot and 2-D cross products.
inline double Dot(const EnPoint& a, const EnPoint& b) {
  return a.x * b.x + a.y * b.y;
}
inline double Cross(const EnPoint& a, const EnPoint& b) {
  return a.x * b.y - a.y * b.x;
}

/// Euclidean norm and distance, metres. sqrt(x^2 + y^2) rather than
/// std::hypot: local east/north coordinates are bounded by the city
/// extent (well under 1e8 m), so the squares cannot overflow and the
/// libm over/underflow-safe path would only cost ~2x per call.
inline double Norm(const EnPoint& p) {
  return std::sqrt(p.x * p.x + p.y * p.y);
}
inline double Distance(const EnPoint& a, const EnPoint& b) {
  return Norm(b - a);
}

/// A directed line segment.
struct Segment {
  EnPoint a;
  EnPoint b;

  /// Segment length, metres.
  [[nodiscard]] double Length() const { return Distance(a, b); }

  /// Direction of travel a->b in radians, measured counterclockwise from
  /// east, in (-pi, pi]. Zero-length segments report 0.
  [[nodiscard]] double Heading() const {
    const EnPoint d = b - a;
    if (d.x == 0.0 && d.y == 0.0) return 0.0;
    return std::atan2(d.y, d.x);
  }
};

/// Result of projecting a point onto a segment.
struct PointProjection {
  EnPoint point;   ///< Closest point on the segment.
  double t = 0.0;  ///< Parameter along a->b clamped to [0, 1].
  double distance = 0.0;  ///< Distance from the query to `point`.
};

/// Closest point on `s` to `p` (clamped to the segment).
inline PointProjection ProjectOntoSegment(const EnPoint& p,
                                          const Segment& s) {
  const EnPoint d = s.b - s.a;
  const double len2 = Dot(d, d);
  PointProjection out;
  if (len2 == 0.0) {
    out.point = s.a;
    out.t = 0.0;
  } else {
    out.t = std::clamp(Dot(p - s.a, d) / len2, 0.0, 1.0);
    out.point = s.a + out.t * d;
  }
  out.distance = Distance(p, out.point);
  return out;
}

/// Proper or touching intersection point of two segments, if any. For
/// collinear overlapping segments returns one point of the overlap.
std::optional<EnPoint> SegmentIntersection(const Segment& s1,
                                           const Segment& s2);

/// Smallest absolute angle between two headings, in [0, pi].
inline double AngleBetweenHeadings(double h1, double h2) {
  double d = std::fmod(std::abs(h1 - h2), 2.0 * M_PI);
  if (d > M_PI) d = 2.0 * M_PI - d;
  return d;
}

/// Smallest absolute angle between two headings treating opposite
/// directions as equal (for undirected road geometry), in [0, pi/2].
inline double UndirectedAngleBetweenHeadings(double h1, double h2) {
  const double d = AngleBetweenHeadings(h1, h2);
  return d > M_PI / 2.0 ? M_PI - d : d;
}

/// Axis-aligned bounding box.
struct Bbox {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;

  /// An inverted (empty) box that any Extend() fixes up.
  static Bbox Empty() {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return Bbox{inf, inf, -inf, -inf};
  }

  /// True once at least one point has been added.
  [[nodiscard]] bool IsValid() const {
    return min_x <= max_x && min_y <= max_y;
  }

  /// Grows the box to include `p`.
  void Extend(const EnPoint& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  /// Grows the box to include all of `other`.
  void Extend(const Bbox& other) {
    if (!other.IsValid()) return;
    min_x = std::min(min_x, other.min_x);
    min_y = std::min(min_y, other.min_y);
    max_x = std::max(max_x, other.max_x);
    max_y = std::max(max_y, other.max_y);
  }

  /// Grows by `margin` metres on every side.
  [[nodiscard]] Bbox Inflated(double margin) const {
    return Bbox{min_x - margin, min_y - margin, max_x + margin,
                max_y + margin};
  }

  /// True when `p` lies inside or on the boundary.
  [[nodiscard]] bool Contains(const EnPoint& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  /// True when the two boxes overlap (boundary touch counts).
  [[nodiscard]] bool Intersects(const Bbox& other) const {
    return min_x <= other.max_x && other.min_x <= max_x &&
           min_y <= other.max_y && other.min_y <= max_y;
  }
};

}  // namespace geo
}  // namespace taxitrace

#endif  // TAXITRACE_GEO_GEOMETRY_H_
