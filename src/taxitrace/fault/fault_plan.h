// FaultPlan: the configuration of the fault-injection harness.
//
// A plan is a seed plus one probability per fault class. Probabilities
// are applied per opportunity (per point, per trip, or per CSV data
// row) with an Rng seeded through MixSeed on stable ids, so the set of
// injected faults depends only on the plan and the input — never on
// thread count or iteration order. This is what lets a faulted study
// keep the PR 2 guarantee of byte-identical StudyResults at any
// worker count.

#ifndef TAXITRACE_FAULT_FAULT_PLAN_H_
#define TAXITRACE_FAULT_FAULT_PLAN_H_

#include <cstdint>

namespace taxitrace {
namespace fault {

/// Per-fault-class injection probabilities. All default to zero, so a
/// default FaultPlan is a no-op and the fault-free pipeline is exactly
/// the pre-harness pipeline.
struct FaultPlan {
  /// Base seed for the injection RNG streams. Independent of the
  /// study seed so the same traffic can be replayed under different
  /// fault draws.
  uint64_t seed = 0x7461786974726163ULL;  // "taxitrac"

  // Point-level probabilities, applied per route point.
  double nan_coord_prob = 0.0;       ///< lat or lon becomes NaN/Inf.
  double clock_jump_prob = 0.0;      ///< timestamp shifted by +-12 h.
  double negative_speed_prob = 0.0;  ///< speed replaced by a negative.
  double swap_coord_prob = 0.0;      ///< lat and lon exchanged.

  // Trip-level probabilities, applied per trip.
  double duplicate_trip_prob = 0.0;     ///< trip id emitted twice.
  double empty_trip_prob = 0.0;         ///< all points removed.
  double single_point_trip_prob = 0.0;  ///< truncated to one point.
  double interleave_trip_prob = 0.0;    ///< leading points spliced into
                                        ///< the previous trip's stream.

  // File-level probabilities, applied per CSV data row. Nonzero values
  // route the raw traces through a CSV round-trip (serialize, corrupt,
  // lenient re-parse) before cleaning.
  double truncate_row_prob = 0.0;      ///< row cut mid-field.
  double wrong_columns_prob = 0.0;     ///< column added or removed.
  double junk_bytes_prob = 0.0;        ///< non-UTF8 bytes in a field.

  /// Sets every per-class probability to `rate` (a uniform fault mix).
  static FaultPlan Uniform(double rate);

  /// True when any probability is nonzero (the pipeline skips the
  /// injection step entirely otherwise).
  [[nodiscard]] bool Any() const;

  /// True when any point- or trip-level probability is nonzero.
  [[nodiscard]] bool AnyTraceFaults() const;

  /// True when any file-level probability is nonzero (triggers the CSV
  /// round-trip in the pipeline).
  [[nodiscard]] bool AnyFileFaults() const;
};

}  // namespace fault
}  // namespace taxitrace

#endif  // TAXITRACE_FAULT_FAULT_PLAN_H_
