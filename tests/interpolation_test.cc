#include <gtest/gtest.h>

#include "taxitrace/clean/interpolation.h"

namespace taxitrace {
namespace clean {
namespace {

trace::RoutePoint Point(int64_t id, double t, double lat, double lon,
                        double speed = 30.0) {
  trace::RoutePoint p;
  p.point_id = id;
  p.timestamp_s = t;
  p.position = geo::LatLon{lat, lon};
  p.speed_kmh = speed;
  p.fuel_delta_ml = 1.0;
  return p;
}

TEST(InterpolationTest, RestoresMovingGap) {
  // 120 s silent gap across ~1.1 km of movement.
  std::vector<trace::RoutePoint> pts = {
      Point(1, 0.0, 65.000, 25.47, 30.0),
      Point(2, 120.0, 65.010, 25.47, 40.0),
  };
  InterpolationStats stats;
  InterpolationOptions options;
  RestoreLostPoints(&pts, options, &stats);
  EXPECT_EQ(stats.gaps_restored, 1);
  EXPECT_EQ(stats.points_inserted, 3);  // 120/30 = 4 pieces -> 3 points
  ASSERT_EQ(pts.size(), 5u);
  // Interpolated points are monotone in time and position, with
  // interpolated speed and zero fuel.
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].timestamp_s, pts[i - 1].timestamp_s);
    EXPECT_GT(pts[i].position.lat_deg, pts[i - 1].position.lat_deg);
  }
  EXPECT_NEAR(pts[2].timestamp_s, 60.0, 1e-9);
  EXPECT_NEAR(pts[2].position.lat_deg, 65.005, 1e-9);
  EXPECT_NEAR(pts[2].speed_kmh, 35.0, 1e-9);
  EXPECT_DOUBLE_EQ(pts[2].fuel_delta_ml, 0.0);
}

TEST(InterpolationTest, StationaryGapUntouched) {
  // 10-minute stand wait: a genuine stop, not lost data.
  std::vector<trace::RoutePoint> pts = {
      Point(1, 0.0, 65.0, 25.47, 0.0),
      Point(2, 600.0, 65.0001, 25.47, 0.0),  // ~11 m of GPS wobble
  };
  InterpolationStats stats;
  RestoreLostPoints(&pts, {}, &stats);
  EXPECT_EQ(stats.gaps_restored, 0);
  EXPECT_EQ(pts.size(), 2u);
}

TEST(InterpolationTest, DenseTraceUntouched) {
  std::vector<trace::RoutePoint> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back(Point(i + 1, 10.0 * i, 65.0 + 0.0005 * i, 25.47));
  }
  InterpolationStats stats;
  RestoreLostPoints(&pts, {}, &stats);
  EXPECT_EQ(stats.points_inserted, 0);
  EXPECT_EQ(pts.size(), 20u);
}

TEST(InterpolationTest, CapsPointsPerGap) {
  std::vector<trace::RoutePoint> pts = {
      Point(1, 0.0, 65.00, 25.47),
      Point(2, 3600.0, 65.05, 25.47),  // one hour, ~5.5 km
  };
  InterpolationOptions options;
  options.max_points_per_gap = 5;
  InterpolationStats stats;
  RestoreLostPoints(&pts, options, &stats);
  EXPECT_EQ(stats.points_inserted, 5);
  EXPECT_EQ(pts.size(), 7u);
}

TEST(InterpolationTest, TripWrapperRecomputesTotals) {
  trace::Trip trip;
  trip.points = {Point(1, 0.0, 65.000, 25.47),
                 Point(2, 150.0, 65.010, 25.47)};
  RestoreTripLostPoints(&trip);
  EXPECT_GT(trip.points.size(), 2u);
  EXPECT_NEAR(trip.total_time_s, 150.0, 1e-9);
  EXPECT_GT(trip.total_distance_m, 1000.0);
}

TEST(InterpolationTest, ShortSequencesIgnored) {
  std::vector<trace::RoutePoint> empty;
  RestoreLostPoints(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<trace::RoutePoint> one = {Point(1, 0, 65, 25)};
  RestoreLostPoints(&one);
  EXPECT_EQ(one.size(), 1u);
}

}  // namespace
}  // namespace clean
}  // namespace taxitrace
