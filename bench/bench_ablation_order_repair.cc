// Ablation: the paper's length-criterion order repair vs naive
// timestamp sorting, on trips with transport-scrambled fields.

#include "bench_util.h"
#include "taxitrace/clean/order_repair.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/driver_model.h"
#include "taxitrace/synth/sensor_model.h"

namespace taxitrace {
namespace {

struct GlitchedTrip {
  std::vector<trace::RoutePoint> observed;  // scrambled fields
  std::vector<trace::RoutePoint> truth;     // device order
};

std::vector<GlitchedTrip> MakeGlitchedTrips(int count) {
  auto map = synth::GenerateCityMap().value();
  const synth::WeatherModel weather(3, 30);
  const synth::DriverModel driver(&map, &weather);
  const roadnet::Router router(&map.network);
  synth::SensorOptions clean_options;
  clean_options.timestamp_glitch_prob = 0.0;
  clean_options.id_glitch_prob = 0.0;
  clean_options.drop_prob = 0.0;
  clean_options.dup_prob = 0.0;
  clean_options.outlier_prob = 0.0;
  const synth::SensorModel clean_sensor(clean_options);
  synth::SensorOptions glitch_options = clean_options;
  glitch_options.timestamp_glitch_prob = 0.5;
  glitch_options.id_glitch_prob = 1.0;  // applied if no ts glitch rolled
  const synth::SensorModel glitch_sensor(glitch_options);

  Rng rng(99);
  std::vector<GlitchedTrip> out;
  while (static_cast<int>(out.size()) < count) {
    const auto a = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(map.network.num_vertices()) - 1));
    const auto b = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(map.network.num_vertices()) - 1));
    const auto path = router.ShortestPath(a, b);
    if (!path.ok() || path->length_m < 800.0) continue;
    const auto samples = driver.Drive(*path, 3600.0, 1.0, &rng);
    GlitchedTrip trip;
    int64_t id1 = 1, id2 = 1;
    Rng sensor_rng = rng.Fork();
    Rng sensor_rng_copy = sensor_rng;  // identical noise for both
    trip.truth = clean_sensor.Observe(samples, 1, &id1,
                                      map.network.projection(),
                                      &sensor_rng);
    trip.observed = clean_sensor.Observe(samples, 1, &id2,
                                         map.network.projection(),
                                         &sensor_rng_copy);
    Rng defect_rng = rng.Fork();
    glitch_sensor.ApplyTransportDefects(&trip.observed, &defect_rng);
    out.push_back(std::move(trip));
  }
  return out;
}

bool SameGeometryOrder(const std::vector<trace::RoutePoint>& a,
                       const std::vector<trace::RoutePoint>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (geo::HaversineMeters(a[i].position, b[i].position) > 0.5) {
      return false;
    }
  }
  return true;
}

void PrintAblation() {
  const std::vector<GlitchedTrip> trips = MakeGlitchedTrips(300);
  int repair_correct = 0, naive_correct = 0;
  double repair_excess_m = 0.0, naive_excess_m = 0.0;
  for (const GlitchedTrip& trip : trips) {
    const double truth_len = trace::PathLengthMeters(trip.truth);

    std::vector<trace::RoutePoint> repaired = trip.observed;
    clean::RepairPointOrder(&repaired);
    if (SameGeometryOrder(repaired, trip.truth)) ++repair_correct;
    repair_excess_m += trace::PathLengthMeters(repaired) - truth_len;

    std::vector<trace::RoutePoint> naive = trip.observed;
    std::stable_sort(naive.begin(), naive.end(),
                     [](const trace::RoutePoint& x,
                        const trace::RoutePoint& y) {
                       return x.timestamp_s < y.timestamp_s;
                     });
    if (SameGeometryOrder(naive, trip.truth)) ++naive_correct;
    naive_excess_m += trace::PathLengthMeters(naive) - truth_len;
  }
  const double n = static_cast<double>(trips.size());
  std::printf("ABLATION: order repair (Section IV-B) vs naive "
              "timestamp sort, %zu glitched trips\n", trips.size());
  std::printf("  length-criterion repair: %5.1f%% exact recovery, "
              "mean excess path %.1f m\n",
              100.0 * repair_correct / n, repair_excess_m / n);
  std::printf("  naive timestamp sort:    %5.1f%% exact recovery, "
              "mean excess path %.1f m\n",
              100.0 * naive_correct / n, naive_excess_m / n);
  std::printf("Check: repair recovers more trips -> %s\n\n",
              repair_correct > naive_correct ? "HOLDS" : "VIOLATED");
}

void BM_RepairPointOrder(benchmark::State& state) {
  static const std::vector<GlitchedTrip>* trips =
      new std::vector<GlitchedTrip>(MakeGlitchedTrips(50));
  size_t idx = 0;
  for (auto _ : state) {
    std::vector<trace::RoutePoint> pts =
        (*trips)[idx % trips->size()].observed;
    clean::RepairPointOrder(&pts);
    benchmark::DoNotOptimize(pts);
    ++idx;
  }
}
BENCHMARK(BM_RepairPointOrder)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintAblation)
