file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_segmentation.dir/bench_table2_segmentation.cc.o"
  "CMakeFiles/bench_table2_segmentation.dir/bench_table2_segmentation.cc.o.d"
  "bench_table2_segmentation"
  "bench_table2_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
