// Known-bad shapes for flat-graph-index: graph storage subscripted
// outside the tiled accessor layer (this file is core/, not roadnet/).

#include "taxitrace/core/fake_api.h"

namespace taxitrace {

void BadTileVectorSubscript(const Tile& tile) {
  const auto& v = tile.vertices[3];  // expect(flat-graph-index)
  const auto& e = tile.edges[0];  // expect(flat-graph-index)
  Use(v, e);
}

void BadTileVectorThroughPointer(const Tile* tile) {
  Use(tile->vertices[1]);  // expect(flat-graph-index)
  Use(tile->edges[2]);  // expect(flat-graph-index)
}

struct BadOwner {
  void Touch(int i) {
    Use(vertices_[i]);  // expect(flat-graph-index)
    Use(edges_[i]);  // expect(flat-graph-index)
  }
  std::vector<int> vertices_;
  std::vector<int> edges_;
};

void BadRetiredFlatAccessor(const RoadNetwork& net) {
  const auto& v = net.vertices()[0];  // expect(flat-graph-index)
  const auto& e = net.edges()[1];  // expect(flat-graph-index)
  Use(v, e);
}

}  // namespace taxitrace
