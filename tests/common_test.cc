#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "taxitrace/common/csv.h"
#include "taxitrace/common/hash.h"
#include "taxitrace/common/logging.h"
#include "taxitrace/common/random.h"
#include "taxitrace/common/result.h"
#include "taxitrace/common/status.h"
#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace {

// --- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CopyIsCheapAndShared) {
  const Status a = Status::Corruption("broken");
  const Status b = a;  // shared rep
  EXPECT_EQ(b.message(), "broken");
  EXPECT_EQ(a, b);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

// --- Result ----------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Doubled(Result<int> in) {
  TAXITRACE_ASSIGN_OR_RETURN(const int v, std::move(in));
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_TRUE(Doubled(Status::IOError("x")).status().IsIOError());
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++diff;
  }
  EXPECT_GT(diff, 10);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.5);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.5);
  }
}

TEST(RngTest, UniformIntInclusiveAndCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // every value of [-2, 3] appears
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, PoissonMean) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(4.5);
  EXPECT_NEAR(sum / n, 4.5, 0.1);
}

TEST(RngTest, PoissonZeroAndLargeMean) {
  Rng rng(41);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(100.0);  // normal approx
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(43);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(47);
  const std::vector<double> w = {0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.WeightedIndex(w));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(51);
  Rng b = a.Fork();
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.NextUint64() != b.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// --- Strings ----------------------------------------------------------------

TEST(StringsTest, SplitBasic) {
  const std::vector<std::string> parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitEmptyFields) {
  EXPECT_EQ(Split(",,", ',').size(), 3u);
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("abc", ',').size(), 1u);
}

TEST(StringsTest, JoinRoundTrip) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("4.5").ok());
  EXPECT_TRUE(ParseInt64("99999999999999999999").status().IsOutOfRange());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5f").ok());
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

// --- CSV ---------------------------------------------------------------------

TEST(CsvTest, ParseSimple) {
  const auto rows = ParseCsv("a,b\n1,2\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2"}));
}

TEST(CsvTest, NoTrailingNewline) {
  const auto rows = ParseCsv("a,b").value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
}

TEST(CsvTest, QuotedFieldWithSeparator) {
  const auto rows = ParseCsv("\"a,b\",c\n").value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a,b", "c"}));
}

TEST(CsvTest, EscapedQuote) {
  const auto rows = ParseCsv("\"say \"\"hi\"\"\"\n").value();
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(CsvTest, NewlineInsideQuotes) {
  const auto rows = ParseCsv("\"a\nb\",c\n").value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a\nb");
}

TEST(CsvTest, CrLfHandling) {
  const auto rows = ParseCsv("a,b\r\nc,d\r\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(CsvTest, EmptyInput) {
  EXPECT_TRUE(ParseCsv("").value().empty());
}

TEST(CsvTest, UnterminatedQuoteIsCorruption) {
  EXPECT_TRUE(ParseCsv("\"oops").status().IsCorruption());
}

TEST(CsvTest, EmptyFieldsPreserved) {
  const auto rows = ParseCsv(",,\n").value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][1], "");
}

TEST(CsvTest, WriteQuotesOnlyWhenNeeded) {
  const std::string text =
      WriteCsv({{"plain", "with,comma", "with\"quote", "with\nnewline"}});
  EXPECT_EQ(text,
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvTest, RoundTrip) {
  const std::vector<CsvRow> rows = {
      {"a", "b,c", "d\"e"}, {"", "2", "line\nbreak"}, {"x"}};
  const auto parsed = ParseCsv(WriteCsv(rows)).value();
  EXPECT_EQ(parsed, rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/csv_roundtrip.csv";
  const std::vector<CsvRow> rows = {{"h1", "h2"}, {"1", "two,three"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  EXPECT_EQ(ReadCsvFile(path).value(), rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_TRUE(ReadCsvFile("/no/such/dir/file.csv").status().IsIOError());
}

// --- Logging -----------------------------------------------------------------

// HashCell2D is the blessed mixer for every signed-2D-coordinate hash
// in the codebase (analysis grid cells, spatial-index cells, road-graph
// tile coords). Like the grid test that first caught the ad-hoc-mix
// column collapse, this checks injectivity over a dense signed range
// and near-uniform load under power-of-two bucket masking — the
// regime where low-bit structure is fatal.
TEST(HashTest, HashCell2DInjectiveAndWellDistributed) {
  constexpr int32_t kHalf = 64;  // cx, cy in [-64, 64): 16384 cells
  constexpr size_t kBuckets = 1024;
  std::set<uint64_t> seen;
  std::vector<int> load(kBuckets, 0);
  for (int32_t cx = -kHalf; cx < kHalf; ++cx) {
    for (int32_t cy = -kHalf; cy < kHalf; ++cy) {
      const uint64_t h = HashCell2D(cx, cy);
      EXPECT_TRUE(seen.insert(h).second)
          << "collision at (" << cx << ", " << cy << ")";
      ++load[h % kBuckets];
    }
  }
  EXPECT_EQ(seen.size(), 4u * kHalf * kHalf);
  // Expected load is 16 per bucket; allow generous slack over a true
  // uniform draw.
  const int max_load = *std::max_element(load.begin(), load.end());
  EXPECT_LE(max_load, 48) << "bucket distribution is badly skewed";
}

TEST(HashTest, SplitMix64IsNotIdentityLike) {
  // Neighbouring inputs must not produce neighbouring outputs: the
  // avalanche is what the cell hashes above rely on.
  EXPECT_NE(SplitMix64(0), 0u);
  EXPECT_NE(SplitMix64(1) - SplitMix64(0), 1u);
  EXPECT_NE(SplitMix64(2) - SplitMix64(1), SplitMix64(1) - SplitMix64(0));
}

TEST(LoggingTest, LevelFilterRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  TAXITRACE_LOG(kDebug) << "suppressed";  // must not crash
  SetLogLevel(before);
}

}  // namespace
}  // namespace taxitrace
