
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxitrace/model/cholesky.cc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/cholesky.cc.o" "gcc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/cholesky.cc.o.d"
  "/root/repo/src/taxitrace/model/diagnostics.cc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/diagnostics.cc.o" "gcc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/diagnostics.cc.o.d"
  "/root/repo/src/taxitrace/model/matrix.cc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/matrix.cc.o" "gcc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/matrix.cc.o.d"
  "/root/repo/src/taxitrace/model/mixed_model.cc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/mixed_model.cc.o" "gcc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/mixed_model.cc.o.d"
  "/root/repo/src/taxitrace/model/ols.cc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/ols.cc.o" "gcc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/ols.cc.o.d"
  "/root/repo/src/taxitrace/model/one_way_reml.cc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/one_way_reml.cc.o" "gcc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/one_way_reml.cc.o.d"
  "/root/repo/src/taxitrace/model/qq.cc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/qq.cc.o" "gcc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/qq.cc.o.d"
  "/root/repo/src/taxitrace/model/significance.cc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/significance.cc.o" "gcc" "src/CMakeFiles/taxitrace_model.dir/taxitrace/model/significance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taxitrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
