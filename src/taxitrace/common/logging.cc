#include "taxitrace/common/logging.h"

// tt-lint: allow-file(relaxed-atomic): the log-level gate and message
// tallies are diagnostics on stderr; they never feed StudyResults.

#include <atomic>
#include <cstdio>

namespace taxitrace {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               message.c_str());
}

}  // namespace internal
}  // namespace taxitrace
