// Route-point order repair (Section IV-B).
//
// Due to latency variation on the device->server link, the (id,
// timestamp) pairs of a trip may arrive — and be stored — in an
// inconsistent order. The repair sorts the points into two candidate
// sequences, by id and by timestamp, computes the total travelled
// distance of each, keeps the sequence with the smaller length, and
// finally re-aligns both fields so they increase monotonically along the
// chosen sequence.

#ifndef TAXITRACE_CLEAN_ORDER_REPAIR_H_
#define TAXITRACE_CLEAN_ORDER_REPAIR_H_

#include <vector>

#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace clean {

/// Which ordering the length criterion selected.
enum class ChosenOrder : unsigned char {
  kConsistent,   ///< Id order and timestamp order already agree.
  kById,         ///< Id order gave the shorter (correct) path.
  kByTimestamp,  ///< Timestamp order gave the shorter (correct) path.
};

/// Aggregate counts over a repair run.
struct OrderRepairStats {
  int64_t trips_consistent = 0;
  int64_t trips_repaired_by_id = 0;
  int64_t trips_repaired_by_timestamp = 0;
};

/// Repairs one point sequence in place. Returns which order was chosen.
/// After the call the points are in the chosen order and both the id and
/// timestamp fields are monotonically increasing (their value multisets
/// are preserved).
ChosenOrder RepairPointOrder(std::vector<trace::RoutePoint>* points);

/// Repairs a trip (points + recomputed totals), updating `stats` if
/// given.
ChosenOrder RepairTripOrder(trace::Trip* trip,
                            OrderRepairStats* stats = nullptr);

}  // namespace clean
}  // namespace taxitrace

#endif  // TAXITRACE_CLEAN_ORDER_REPAIR_H_
