# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for flows_robustness_test.
