// Synthetic downtown-Oulu-like city map — the stand-in for the Digiroad
// extract of the paper's study area.
//
// The generated map reproduces the structural properties the analysis
// depends on: a dense rectilinear downtown core inside a sparser outer
// street network, three gate roads (T, S, L) at the key enter/exit points
// of the centre, one-way street pairs, dead-end access roads, and a
// feature census calibrated to the paper's {67 traffic lights, 48 bus
// stops, 293 pedestrian crossings, 271 other junctions}.

#ifndef TAXITRACE_SYNTH_CITY_MAP_GENERATOR_H_
#define TAXITRACE_SYNTH_CITY_MAP_GENERATOR_H_

#include <string>
#include <vector>

#include "taxitrace/common/random.h"
#include "taxitrace/common/result.h"
#include "taxitrace/geo/polygon.h"
#include "taxitrace/roadnet/map_preparation.h"
#include "taxitrace/roadnet/road_network.h"

namespace taxitrace {
namespace synth {

/// A pedestrian-activity hotspot (market square, event area). The driver
/// model slows traffic inside hotspots; they reproduce the paper's
/// "crowded areas" whose effect on speed is not explained by static map
/// features alone.
struct Hotspot {
  geo::EnPoint center;
  double radius_m = 200.0;
  double intensity = 0.5;  ///< 0 (no effect) .. 1 (severe slowdown).
};

/// One of the named origin/destination gate roads (T, S, L).
struct GateRoad {
  std::string name;
  /// Road centre line oriented inbound (from outside the area towards
  /// the centre).
  geo::Polyline geometry;
  /// The dead-end vertex at the outer end of the gate road.
  roadnet::VertexId terminal_vertex = roadnet::kInvalidVertex;
};

/// A generated city: network, gates, centre polygon and hotspots.
struct CityMap {
  roadnet::RoadNetwork network;
  std::vector<GateRoad> gates;  ///< In order T, S, L.
  geo::Polygon central_area;    ///< The "city centre" containment region.
  std::vector<Hotspot> hotspots;
  roadnet::MapPreparationStats preparation_stats;
  /// The raw inputs the network was prepared from (the Digiroad-extract
  /// stand-in); round-trippable through roadnet/map_io.h.
  std::vector<roadnet::TrafficElement> source_elements;
  std::vector<roadnet::FeatureSpec> source_features;

  /// The gate with the given name ("T", "S" or "L").
  Result<const GateRoad*> FindGate(const std::string& name) const;
};

/// Generator knobs. The defaults reproduce the paper's study area.
struct CityMapOptions {
  uint64_t seed = 20121001;
  /// Half-extent of the street grid, metres. Together with the gate stub
  /// length this sets gate-to-gate driving distances at the paper's
  /// ~2.2-2.4 km medians.
  double extent_m = 1000.0;
  /// Half-extent of the dense downtown core, metres.
  double core_extent_m = 800.0;
  /// Street spacing inside / outside the core, metres (central Oulu
  /// blocks are roughly 100 m).
  double core_spacing_m = 104.0;
  double outer_spacing_m = 260.0;
  /// Length of the three gate road stubs, metres.
  double gate_stub_length_m = 250.0;
  /// Downtown Oulu sits on a river: street crossings over the river
  /// band exist only at bridges, funnelling north-south traffic.
  bool include_river = true;
  /// Latitude band of the river (centre), metres north of the origin.
  double river_y_m = 870.0;
  /// Approximate x positions of the bridges (the T gate column always
  /// carries a bridge).
  std::vector<double> bridge_x_m = {-650.0, 0.0, 650.0};
  /// Fraction of grid street segments removed for irregularity.
  double core_removal_fraction = 0.08;
  double outer_removal_fraction = 0.20;
  /// Probability that a street segment is digitised as several traffic
  /// elements (exercises the map-preparation merge).
  double multi_element_fraction = 0.35;
  /// Number of dead-end access stubs.
  int num_dead_ends = 16;
  /// Feature census targets (paper Fig. 6 text).
  int target_traffic_lights = 67;
  int target_bus_stops = 48;
  int target_pedestrian_crossings = 293;
  /// WGS84 anchor of the local frame (downtown Oulu).
  geo::LatLon origin{65.0121, 25.4682};
};

/// Generates a city map. Deterministic in `options.seed`.
Result<CityMap> GenerateCityMap(const CityMapOptions& options = {});

}  // namespace synth
}  // namespace taxitrace

#endif  // TAXITRACE_SYNTH_CITY_MAP_GENERATOR_H_
