// Known-bad ambient-entropy shapes in a non-exempt module.

#include "taxitrace/core/fake.h"

namespace taxitrace {

unsigned BadEntropy() {
  std::random_device rd;  // expect(ambient-entropy)
  srand(rd());            // expect(ambient-entropy)
  return rand();          // expect(ambient-entropy)
}

long BadWallClock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // expect(ambient-entropy) expect(adhoc-timing)
}

}  // namespace taxitrace
