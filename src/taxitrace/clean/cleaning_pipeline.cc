#include "taxitrace/clean/cleaning_pipeline.h"

#include <utility>

namespace taxitrace {
namespace clean {

TripCleanOutput CleanOneTrip(trace::Trip trip,
                             const CleaningOptions& options) {
  TripCleanOutput out;
  SanitizeTrip(&trip, options.sanitize, &out.faults);
  out.points_after_sanitize = static_cast<int64_t>(trip.points.size());
  if (options.sanitize.enabled && trip.points.empty()) {
    // Injected empty trips (and trips whose every point was dropped)
    // end here; the regular stages would only pass the emptiness along.
    ++out.faults.trips_dropped_empty;
    return out;
  }
  RepairTripOrder(&trip, &out.order);
  FilterTripOutliers(&trip, options.outliers, &out.outliers);
  out.points_after_outliers = static_cast<int64_t>(trip.points.size());
  if (options.restore_lost_points) {
    RestoreTripLostPoints(&trip, options.interpolation,
                          &out.interpolation);
  }
  std::vector<trace::Trip> segments =
      SegmentTrip(trip, options.segmentation, &out.segmentation);
  out.segments =
      FilterTrips(std::move(segments), options.filter, &out.filter);
  return out;
}

void FoldTripCleanOutput(const TripCleanOutput& out,
                         CleaningReport* report) {
  CleaningReport& local = *report;
  local.points_after_sanitize += out.points_after_sanitize;
  local.points_after_outliers += out.points_after_outliers;
  local.order.trips_consistent += out.order.trips_consistent;
  local.order.trips_repaired_by_id += out.order.trips_repaired_by_id;
  local.order.trips_repaired_by_timestamp +=
      out.order.trips_repaired_by_timestamp;
  local.outliers.duplicates_removed += out.outliers.duplicates_removed;
  local.outliers.spikes_removed += out.outliers.spikes_removed;
  local.outliers.implied_speed_removed +=
      out.outliers.implied_speed_removed;
  local.interpolation.gaps_restored += out.interpolation.gaps_restored;
  local.interpolation.points_inserted +=
      out.interpolation.points_inserted;
  for (int r = 0; r < 5; ++r) {
    local.segmentation.splits_by_rule[r] +=
        out.segmentation.splits_by_rule[r];
  }
  local.segmentation.trips_in += out.segmentation.trips_in;
  local.segmentation.segments_out += out.segmentation.segments_out;
  local.filter.removed_too_few_points +=
      out.filter.removed_too_few_points;
  local.filter.removed_too_long += out.filter.removed_too_long;
  local.filter.kept += out.filter.kept;
  local.faults.Add(out.faults);
}

void PublishCleaningMetrics(const CleaningReport& report,
                            const std::vector<trace::Trip>& cleaned,
                            obs::MetricsRegistry* metrics) {
  metrics->counter("clean.raw_trips")->Add(report.raw_trips);
  metrics->counter("clean.raw_points")->Add(report.raw_points);
  metrics->counter("clean.points_after_sanitize")
      ->Add(report.points_after_sanitize);
  metrics->counter("clean.points_after_outliers")
      ->Add(report.points_after_outliers);
  metrics->counter("clean.duplicates_removed")
      ->Add(report.outliers.duplicates_removed);
  metrics->counter("clean.spikes_removed")
      ->Add(report.outliers.spikes_removed);
  metrics->counter("clean.implied_speed_removed")
      ->Add(report.outliers.implied_speed_removed);
  metrics->counter("clean.segments_out")->Add(report.clean_segments);
  metrics->counter("clean.points_out")->Add(report.clean_points);
  obs::HistogramMetric* seg_points =
      metrics->histogram("clean.points_per_segment", 0.0, 400.0, 40);
  for (const trace::Trip& t : cleaned) {
    seg_points->Record(static_cast<double>(t.points.size()));
  }
}

Result<std::vector<trace::Trip>> CleanTrips(const trace::TraceStore& store,
                                            const CleaningOptions& options,
                                            CleaningReport* report,
                                            const Executor* executor,
                                            obs::MetricsRegistry* metrics) {
  CleaningReport local;
  local.raw_trips = static_cast<int64_t>(store.NumTrips());
  local.raw_points = static_cast<int64_t>(store.NumPoints());

  const std::vector<trace::Trip>& raw = store.trips();
  std::vector<TripCleanOutput> outputs(raw.size());
  const Executor& ex = executor != nullptr ? *executor : Executor::Serial();
  TAXITRACE_RETURN_IF_ERROR(ex.ParallelFor(
      0, static_cast<int64_t>(raw.size()), [&](int64_t i) -> Status {
        outputs[static_cast<size_t>(i)] =
            CleanOneTrip(raw[static_cast<size_t>(i)], options);
        return Status::OK();
      }));

  std::vector<trace::Trip> cleaned;
  for (TripCleanOutput& out : outputs) {
    FoldTripCleanOutput(out, &local);
    for (trace::Trip& seg : out.segments) {
      cleaned.push_back(std::move(seg));
    }
  }

  local.clean_segments = static_cast<int64_t>(cleaned.size());
  for (const trace::Trip& t : cleaned) {
    local.clean_points += static_cast<int64_t>(t.points.size());
  }
  if (metrics != nullptr) {
    PublishCleaningMetrics(local, cleaned, metrics);
  }
  if (report != nullptr) *report = local;
  return cleaned;
}

}  // namespace clean
}  // namespace taxitrace
