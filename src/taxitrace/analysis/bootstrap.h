// Cluster bootstrap confidence intervals for transition-level
// statistics: transitions are the resampling unit (points within a
// transition are correlated, so point-level resampling would understate
// the uncertainty of the Table 4 comparisons).

#ifndef TAXITRACE_ANALYSIS_BOOTSTRAP_H_
#define TAXITRACE_ANALYSIS_BOOTSTRAP_H_

#include <functional>
#include <vector>

#include "taxitrace/analysis/route_stats.h"
#include "taxitrace/common/random.h"

namespace taxitrace {
namespace analysis {

/// A percentile bootstrap interval.
struct BootstrapInterval {
  double estimate = 0.0;  ///< Statistic on the original sample.
  double lo = 0.0;        ///< Lower percentile bound.
  double hi = 0.0;        ///< Upper percentile bound.
  int replicates = 0;

  [[nodiscard]] bool Contains(double value) const {
    return value >= lo && value <= hi;
  }
  [[nodiscard]] double Width() const { return hi - lo; }
};

/// Bootstrap options.
struct BootstrapOptions {
  int replicates = 1000;
  double confidence = 0.95;
  uint64_t seed = 42;
};

/// Percentile bootstrap of `statistic` over resampled transition sets.
/// `statistic` receives a resampled vector (same size as the input,
/// drawn with replacement). Returns a zero interval for empty input.
BootstrapInterval BootstrapTransitions(
    const std::vector<TransitionRecord>& records,
    const std::function<double(const std::vector<TransitionRecord>&)>&
        statistic,
    const BootstrapOptions& options = {});

/// Convenience statistic: mean low-speed share (percent) of one
/// direction; NaN-free (0 when the direction is absent from a
/// replicate).
double MeanLowSpeedPct(const std::vector<TransitionRecord>& records,
                       const std::string& direction);

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_BOOTSTRAP_H_
