#include "taxitrace/roadnet/map_preparation.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "taxitrace/common/logging.h"
#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace roadnet {
namespace {

// Quantised endpoint key used to snap coincident element endpoints.
struct PointKey {
  int64_t qx;
  int64_t qy;
  friend bool operator==(const PointKey&, const PointKey&) = default;
  friend auto operator<=>(const PointKey&, const PointKey&) = default;
};

struct PointKeyHash {
  size_t operator()(const PointKey& k) const {
    const uint64_t a = static_cast<uint64_t>(k.qx) * 0x9E3779B97F4A7C15ULL;
    const uint64_t b = static_cast<uint64_t>(k.qy) * 0xC2B2AE3D27D4EB4FULL;
    return static_cast<size_t>(a ^ (b >> 1));
  }
};

PointKey Quantize(const geo::EnPoint& p, double snap) {
  return PointKey{static_cast<int64_t>(std::llround(p.x / snap)),
                  static_cast<int64_t>(std::llround(p.y / snap))};
}

// One end of one element.
struct ElementEnd {
  size_t element_index;
  bool at_front;  // true when the shared point is geometry.front()
};

}  // namespace

Result<RoadNetwork> PrepareRoadNetwork(
    const std::vector<TrafficElement>& elements,
    const std::vector<FeatureSpec>& features, const geo::LatLon& origin,
    const MapPreparationOptions& options, MapPreparationStats* stats) {
  if (elements.empty()) {
    return Status::InvalidArgument("no traffic elements");
  }
  std::unordered_set<ElementId> seen_ids;
  for (const TrafficElement& el : elements) {
    if (el.geometry.size() < 2) {
      return Status::InvalidArgument(
          StrFormat("element %lld has degenerate geometry",
                    static_cast<long long>(el.id)));
    }
    if (!(el.geometry.Length() > 0.0)) {
      return Status::InvalidArgument(
          StrFormat("element %lld has zero length",
                    static_cast<long long>(el.id)));
    }
    if (!seen_ids.insert(el.id).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate element id %lld",
                    static_cast<long long>(el.id)));
    }
  }

  // 1. Build the endpoint incidence table.
  std::unordered_map<PointKey, std::vector<ElementEnd>, PointKeyHash>
      incidence;
  const double snap = options.endpoint_snap_m;
  for (size_t i = 0; i < elements.size(); ++i) {
    incidence[Quantize(elements[i].geometry.front(), snap)].push_back(
        ElementEnd{i, true});
    incidence[Quantize(elements[i].geometry.back(), snap)].push_back(
        ElementEnd{i, false});
  }

  // Vertex and edge ids are allocated while walking the incidence
  // table, so the walk order must not be the hash order: that would tie
  // the graph numbering (and every golden artifact downstream) to the
  // standard library's hash and load factors. Iterate a sorted key
  // snapshot instead.
  std::vector<PointKey> sorted_keys;
  sorted_keys.reserve(incidence.size());
  for (const auto& [key, ends] : incidence) sorted_keys.push_back(key);
  std::sort(sorted_keys.begin(), sorted_keys.end());

  // 2. Classify endpoints and create graph vertices for junctions and
  //    terminals.
  MapPreparationStats local_stats;
  local_stats.num_elements = static_cast<int>(elements.size());
  RoadNetwork network(origin, options.tiling);
  std::unordered_map<PointKey, VertexId, PointKeyHash> vertex_at;
  for (const PointKey& key : sorted_keys) {
    const std::vector<ElementEnd>& ends = incidence.at(key);
    EndpointType type;
    if (ends.size() >= 3) {
      type = EndpointType::kJunction;
      ++local_stats.num_junctions;
    } else if (ends.size() == 2) {
      type = EndpointType::kIntermediate;
      ++local_stats.num_intermediate_points;
      continue;  // merged through; no vertex
    } else {
      type = EndpointType::kTerminal;
      ++local_stats.num_terminals;
    }
    const ElementEnd& end = ends.front();
    const geo::Polyline& g = elements[end.element_index].geometry;
    const geo::EnPoint pos = end.at_front ? g.front() : g.back();
    vertex_at[key] =
        network.AddVertex(pos, type == EndpointType::kJunction);
  }

  // 3. Walk chains of elements between vertices.
  std::vector<bool> visited(elements.size(), false);

  // Follows the chain that leaves `start_key` through element
  // `first.element_index`, accumulating geometry until reaching a vertex
  // (or closing a loop), then adds the resulting edge.
  const auto walk_chain = [&](const PointKey& start_key,
                              const ElementEnd& first) {
    Edge edge;
    edge.from = vertex_at.at(start_key);
    edge.speed_limit_kmh = std::numeric_limits<double>::infinity();
    edge.functional_class = FunctionalClass::kAccessRoad;
    bool have_forward = false;
    bool have_backward = false;

    size_t cur = first.element_index;
    bool oriented_forward = first.at_front;  // chain follows digitisation?
    while (true) {
      visited[cur] = true;
      const TrafficElement& el = elements[cur];
      geo::Polyline piece =
          oriented_forward ? el.geometry : el.geometry.Reversed();
      edge.geometry.Extend(piece);
      edge.element_ids.push_back(el.id);
      edge.speed_limit_kmh = std::min(edge.speed_limit_kmh, el.speed_limit_kmh);
      edge.functional_class = static_cast<FunctionalClass>(
          std::min(static_cast<int>(edge.functional_class),
                   static_cast<int>(el.functional_class)));
      if (edge.road_name.empty()) edge.road_name = el.road_name;
      const TravelDirection d =
          oriented_forward ? el.direction : ReverseDirection(el.direction);
      if (d == TravelDirection::kForward) have_forward = true;
      if (d == TravelDirection::kBackward) have_backward = true;

      const geo::EnPoint chain_end =
          oriented_forward ? el.geometry.back() : el.geometry.front();
      const PointKey end_key = Quantize(chain_end, snap);
      const auto vit = vertex_at.find(end_key);
      if (vit != vertex_at.end()) {
        edge.to = vit->second;
        break;
      }
      // Intermediate point: continue with the other incident element end.
      // We arrived on element `cur` at the end opposite to our travel
      // orientation; skip exactly that record and take the other.
      const std::vector<ElementEnd>& ends = incidence.at(end_key);
      const ElementEnd* next_end = nullptr;
      bool skipped_arrival = false;
      for (const ElementEnd& cand : ends) {
        if (!skipped_arrival && cand.element_index == cur &&
            cand.at_front == !oriented_forward) {
          skipped_arrival = true;
          continue;
        }
        next_end = &cand;
      }
      const ElementEnd& next = *next_end;
      if (visited[next.element_index]) {
        // Degenerate: a loop whose far side was already consumed. Close
        // the edge at a fresh terminal vertex to keep the graph valid.
        edge.to = network.AddVertex(chain_end, false);
        break;
      }
      cur = next.element_index;
      oriented_forward = next.at_front;
    }

    if (have_forward && have_backward) {
      ++local_stats.num_direction_conflicts;
      edge.direction = TravelDirection::kBoth;
      TAXITRACE_LOG(kWarning)
          << "one-way direction conflict in merged chain starting at element "
          << edge.element_ids.front() << "; treating edge as two-way";
    } else if (have_forward) {
      edge.direction = TravelDirection::kForward;
    } else if (have_backward) {
      edge.direction = TravelDirection::kBackward;
    }
    if (edge.element_ids.size() > 1) ++local_stats.num_multi_element_edges;
    network.AddEdge(std::move(edge));
    ++local_stats.num_edges;
  };

  // Chains anchored at vertices, in sorted key order for the same
  // reason as vertex creation above.
  for (const PointKey& key : sorted_keys) {
    if (!vertex_at.contains(key)) continue;
    for (const ElementEnd& end : incidence.at(key)) {
      if (!visited[end.element_index]) walk_chain(key, end);
    }
  }
  // Remaining elements form pure cycles of intermediate points. Promote
  // one endpoint of each cycle to a vertex and walk.
  for (size_t i = 0; i < elements.size(); ++i) {
    if (visited[i]) continue;
    const PointKey key = Quantize(elements[i].geometry.front(), snap);
    vertex_at[key] = network.AddVertex(elements[i].geometry.front(), false);
    walk_chain(key, ElementEnd{i, true});
  }

  // 4. Attach features.
  for (const FeatureSpec& f : features) {
    network.AddFeature(f.type, f.position, options.feature_attach_radius_m);
  }

  TAXITRACE_RETURN_IF_ERROR(network.Validate());
  if (stats != nullptr) *stats = local_stats;
  return network;
}

std::vector<JunctionPairRow> JunctionPairTable(const RoadNetwork& network) {
  std::vector<JunctionPairRow> rows;
  rows.reserve(network.num_edges());
  const geo::LocalProjection& proj = network.projection();
  network.ForEachEdge([&](const Edge& e) {
    rows.push_back(JunctionPairRow{
        proj.Inverse(network.vertex(e.from).position), e.element_ids,
        proj.Inverse(network.vertex(e.to).position)});
  });
  return rows;
}

}  // namespace roadnet
}  // namespace taxitrace
