// Map-scale sweep: how the tiled graph storage behaves as the network
// grows from ~1k to >= 100k vertices — build time, resident bytes per
// vertex, tiles touched per routing query, and ShortestPath / Nearest
// throughput. The sweep drives the metro generator presets
// (synth/metro_map_generator.h); results land in BENCH_map_scale.json.

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/roadnet/spatial_index.h"
#include "taxitrace/synth/metro_map_generator.h"

namespace taxitrace {
namespace {

double NowMs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1e6;
}

struct SweepRow {
  int preset = 0;
  size_t vertices = 0;
  size_t edges = 0;
  size_t tiles = 0;
  double build_ms = 0.0;
  double bytes_per_vertex = 0.0;
  double tiles_touched_per_route = 0.0;
  double tiles_probed_per_nearby = 0.0;
  double route_us = 0.0;
  double nearest_us = 0.0;
};

SweepRow RunPreset(int level, int route_queries, int nearest_queries) {
  SweepRow row;
  row.preset = level;

  const double t0 = NowMs();
  const synth::MetroMap map =
      synth::GenerateMetroMap(synth::MetroPreset(level)).value();
  row.build_ms = NowMs() - t0;

  const roadnet::RoadNetwork& net = map.network;
  row.vertices = net.num_vertices();
  row.edges = net.num_edges();
  row.tiles = net.num_tiles();
  row.bytes_per_vertex =
      static_cast<double>(net.ApproxMemoryBytes()) /
      static_cast<double>(net.num_vertices());

  // Routing leg: random OD pairs over the whole metro.
  const roadnet::Router router(&net);
  Rng rng(4242);
  const auto n = static_cast<int64_t>(net.num_vertices());
  int routed = 0;
  const double r0 = NowMs();
  for (int q = 0; q < route_queries; ++q) {
    const roadnet::VertexId a =
        net.VertexIdAt(static_cast<size_t>(rng.UniformInt(0, n - 1)));
    const roadnet::VertexId b =
        net.VertexIdAt(static_cast<size_t>(rng.UniformInt(0, n - 1)));
    const Result<roadnet::Path> path = router.ShortestPath(a, b);
    routed += path.ok() ? 1 : 0;
  }
  const double route_ms = NowMs() - r0;
  const roadnet::RouterStats rstats = router.stats();
  row.route_us = route_ms * 1e3 / std::max(1, route_queries);
  row.tiles_touched_per_route =
      static_cast<double>(rstats.tiles_touched) /
      static_cast<double>(std::max<int64_t>(1, rstats.searches));

  // Nearest leg: random points inside the metro bounding box.
  const roadnet::SpatialIndex index(&net);
  const geo::Bbox bounds = net.Bounds();
  int found = 0;
  const double s0 = NowMs();
  for (int q = 0; q < nearest_queries; ++q) {
    const geo::EnPoint p{rng.Uniform(bounds.min_x, bounds.max_x),
                         rng.Uniform(bounds.min_y, bounds.max_y)};
    found += index.Nearest(p, 400.0).has_value() ? 1 : 0;
  }
  const double nearest_ms = NowMs() - s0;
  const roadnet::SpatialIndexStats sstats = index.stats();
  row.nearest_us = nearest_ms * 1e3 / std::max(1, nearest_queries);
  row.tiles_probed_per_nearby =
      static_cast<double>(sstats.tiles_probed) /
      static_cast<double>(std::max<int64_t>(1, sstats.queries));

  std::printf(
      "  preset %d: %7zu vertices %7zu edges %4zu tiles | build %8.1f ms "
      "%6.0f B/vertex | route %8.1f us (%4.1f tiles) | nearest %6.1f us "
      "(%d/%d routed, %d/%d found)\n",
      level, row.vertices, row.edges, row.tiles, row.build_ms,
      row.bytes_per_vertex, row.route_us, row.tiles_touched_per_route,
      row.nearest_us, routed, route_queries, found, nearest_queries);
  return row;
}

std::string RowJson(const SweepRow& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "    {\"preset\": %d, \"vertices\": %zu, \"edges\": %zu,\n"
      "     \"tiles\": %zu, \"build_ms\": %.2f, \"bytes_per_vertex\": %.1f,\n"
      "     \"tiles_touched_per_route\": %.2f, "
      "\"tiles_probed_per_nearby\": %.2f,\n"
      "     \"route_us\": %.2f, \"nearest_us\": %.2f}",
      r.preset, r.vertices, r.edges, r.tiles, r.build_ms, r.bytes_per_vertex,
      r.tiles_touched_per_route, r.tiles_probed_per_nearby, r.route_us,
      r.nearest_us);
  return buf;
}

void PrintMapScaleSweep() {
  // CI smoke mode trims the sweep to the two smallest presets so the
  // bench-smoke step stays cheap; the committed BENCH_map_scale.json is
  // produced by a full (non-smoke) run reaching >= 100k vertices.
  const char* smoke_env = std::getenv("TAXITRACE_BENCH_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] != '\0';
  const int max_level = smoke ? 1 : 3;
  const int route_queries = smoke ? 32 : 128;
  const int nearest_queries = smoke ? 256 : 2048;

  std::printf("MAP-SCALE SWEEP (tiled graph storage):\n");
  std::vector<SweepRow> rows;
  for (int level = 0; level <= max_level; ++level) {
    rows.push_back(RunPreset(level, route_queries, nearest_queries));
  }

  std::string json = "{\n  \"schema\": \"taxitrace-bench-map-scale/1\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += "  \"sweep\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    json += RowJson(rows[i]);
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  benchutil::EmitFigureFile("BENCH_map_scale.json", json);
}

// Google-benchmark legs over the two smallest presets (the big presets
// are covered by the sweep's one-shot timings above).
void BM_MetroShortestPath(benchmark::State& state) {
  const synth::MetroMap map =
      synth::GenerateMetroMap(synth::MetroPreset(static_cast<int>(state.range(0))))
          .value();
  const roadnet::Router router(&map.network);
  Rng rng(7);
  const auto n = static_cast<int64_t>(map.network.num_vertices());
  for (auto _ : state) {
    const roadnet::VertexId a = map.network.VertexIdAt(
        static_cast<size_t>(rng.UniformInt(0, n - 1)));
    const roadnet::VertexId b = map.network.VertexIdAt(
        static_cast<size_t>(rng.UniformInt(0, n - 1)));
    auto path = router.ShortestPath(a, b);
    benchmark::DoNotOptimize(path);
  }
  state.counters["tiles"] = static_cast<double>(map.network.num_tiles());
}
BENCHMARK(BM_MetroShortestPath)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_MetroNearest(benchmark::State& state) {
  const synth::MetroMap map =
      synth::GenerateMetroMap(synth::MetroPreset(static_cast<int>(state.range(0))))
          .value();
  const roadnet::SpatialIndex index(&map.network);
  const geo::Bbox bounds = map.network.Bounds();
  Rng rng(11);
  for (auto _ : state) {
    const geo::EnPoint p{rng.Uniform(bounds.min_x, bounds.max_x),
                         rng.Uniform(bounds.min_y, bounds.max_y)};
    auto hit = index.Nearest(p, 400.0);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_MetroNearest)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintMapScaleSweep)
