# Empty dependencies file for feature_analysis_test.
# This may be replaced when dependencies are built.
