file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_thick_geometry.dir/bench_ablation_thick_geometry.cc.o"
  "CMakeFiles/bench_ablation_thick_geometry.dir/bench_ablation_thick_geometry.cc.o.d"
  "bench_ablation_thick_geometry"
  "bench_ablation_thick_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_thick_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
