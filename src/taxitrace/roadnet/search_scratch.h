// Reusable per-thread state for one shortest-path search.
//
// A naive Dijkstra pays O(|V|) per search just to allocate and
// infinity-fill its dist/prev arrays. SearchScratch keeps those arrays
// alive between searches and marks validity with a generation stamp:
// entry v is meaningful only when stamp[v] equals the current search's
// generation, so starting a new search is a single counter increment
// and a search touches only the vertices it actually visits. The heap
// storage is reused the same way, making steady-state searches
// allocation-free.
//
// Storage mirrors the network's tiling (tile.h): one slab of
// dist/prev/stamp arrays per tile, allocated the first time a search
// relaxes a vertex of that tile. A thread's resident scratch is
// therefore bounded by the working set of tiles its searches actually
// touch, not |V| — the point of tiled storage at city scale.
//
// One instance serves one thread at a time (the Router hands each
// executor worker its own via WorkerLocal); results read through the
// accessors stay valid until the next BeginSearch on the same instance.

#ifndef TAXITRACE_ROADNET_SEARCH_SCRATCH_H_
#define TAXITRACE_ROADNET_SEARCH_SCRATCH_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "taxitrace/roadnet/road_network.h"
#include "taxitrace/roadnet/tile.h"

namespace taxitrace {
namespace roadnet {

/// One heap element of a search: `key` orders the heap (equal to `dist`
/// for Dijkstra, dist + heuristic for A*), `dist` is the tentative cost
/// used for the stale-entry check.
struct SearchHeapEntry {
  double key = 0.0;
  double dist = 0.0;
  VertexId vertex = kInvalidVertex;
  bool operator>(const SearchHeapEntry& other) const {
    return key > other.key;
  }
};

class SearchScratch {
 public:
  /// Starts a new search over `network`: binds the tile layout (sizing
  /// the slab table, invalidating slabs if the graph grew), advances
  /// the generation so every previous entry becomes stale, and clears
  /// the heap storage.
  void BeginSearch(const RoadNetwork& network) {
    if (network_ != &network || bound_vertices_ != network.num_vertices() ||
        slabs_.size() != network.num_tiles()) {
      network_ = &network;
      bound_vertices_ = network.num_vertices();
      // Tile-local vertex counts may have changed; drop every slab so
      // first touch re-sizes against the current tile. Rebinding is
      // rare (graph mutation or a different network on this thread).
      slabs_.assign(network.num_tiles(), TileSlab{});
    }
    if (++generation_ == 0) {
      // uint32 wrap: every stored stamp could now alias a live search,
      // so reset them all once per ~4 billion searches.
      for (TileSlab& s : slabs_) {
        std::fill(s.stamp.begin(), s.stamp.end(), 0u);
        s.touched_generation = 0;
      }
      generation_ = 1;
    }
    tiles_touched_ = 0;
    heap.clear();
  }

  /// True when `v` was reached by the current search.
  [[nodiscard]] bool Visited(VertexId v) const {
    const TileSlab& s = slabs_[static_cast<size_t>(TileIndexOf(v))];
    const auto i = static_cast<size_t>(LocalIdOf(v));
    // An untouched tile has an empty slab; the size check doubles as
    // its unvisited test (a touched slab always spans the whole tile).
    return i < s.stamp.size() && s.stamp[i] == generation_;
  }

  /// Tentative (final once settled) cost of `v`; +infinity if the
  /// current search never reached it.
  [[nodiscard]] double Dist(VertexId v) const {
    return Visited(v) ? RawDist(v) : std::numeric_limits<double>::infinity();
  }
  /// Unchecked cost read; valid only when Visited(v).
  [[nodiscard]] double RawDist(VertexId v) const {
    return slabs_[static_cast<size_t>(TileIndexOf(v))]
        .dist[static_cast<size_t>(LocalIdOf(v))];
  }

  /// Edge / vertex the search reached `v` through; kInvalidEdge /
  /// kInvalidVertex for seeds and unreached vertices.
  [[nodiscard]] EdgeId PrevEdge(VertexId v) const {
    return Visited(v) ? slabs_[static_cast<size_t>(TileIndexOf(v))]
                            .prev_edge[static_cast<size_t>(LocalIdOf(v))]
                      : kInvalidEdge;
  }
  [[nodiscard]] VertexId PrevVertex(VertexId v) const {
    return Visited(v) ? slabs_[static_cast<size_t>(TileIndexOf(v))]
                            .prev_vertex[static_cast<size_t>(LocalIdOf(v))]
                      : kInvalidVertex;
  }

  /// Records a (possibly improved) path to `v`, stamping it into the
  /// current generation. Seeds pass kInvalidEdge / kInvalidVertex.
  void Relax(VertexId v, double dist, EdgeId prev_edge,
             VertexId prev_vertex) {
    const auto t = static_cast<size_t>(TileIndexOf(v));
    TileSlab& s = slabs_[t];
    if (s.stamp.empty()) AllocateSlab(s, static_cast<TileIndex>(t));
    if (s.touched_generation != generation_) {
      s.touched_generation = generation_;
      ++tiles_touched_;
    }
    const auto i = static_cast<size_t>(LocalIdOf(v));
    s.stamp[i] = generation_;
    s.dist[i] = dist;
    s.prev_edge[i] = prev_edge;
    s.prev_vertex[i] = prev_vertex;
  }

  /// Number of distinct tiles the current search has relaxed a vertex
  /// in — the working-set metric surfaced through RouterStats.
  [[nodiscard]] size_t tiles_touched() const { return tiles_touched_; }

  /// Reusable heap storage for the search loop (cleared by
  /// BeginSearch). Exposed directly: the Router drives it with
  /// std::push_heap / std::pop_heap.
  std::vector<SearchHeapEntry> heap;

 private:
  // Per-tile arrays; entry i is valid only when stamp[i] == generation_.
  // Empty vectors mean the tile was never touched by this scratch.
  struct TileSlab {
    std::vector<double> dist;
    std::vector<EdgeId> prev_edge;
    std::vector<VertexId> prev_vertex;
    std::vector<uint32_t> stamp;
    uint32_t touched_generation = 0;
  };

  void AllocateSlab(TileSlab& s, TileIndex t) {
    const size_t n = network_->tile(t).vertices.size();
    s.stamp.assign(n, 0u);
    s.dist.assign(n, 0.0);
    s.prev_edge.assign(n, kInvalidEdge);
    s.prev_vertex.assign(n, kInvalidVertex);
  }

  const RoadNetwork* network_ = nullptr;
  size_t bound_vertices_ = 0;
  std::vector<TileSlab> slabs_;
  size_t tiles_touched_ = 0;
  uint32_t generation_ = 0;
};

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_SEARCH_SCRATCH_H_
