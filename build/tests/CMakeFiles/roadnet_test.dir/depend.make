# Empty dependencies file for roadnet_test.
# This may be replaced when dependencies are built.
