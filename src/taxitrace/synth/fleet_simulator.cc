#include "taxitrace/synth/fleet_simulator.h"

// tt-lint: allow-file(parallel-accumulation): the streaming Run's
// shared state (reorder buffer, flush cursor, fleet counters) is only
// touched under merge_mu, and the flush loop drains it in ascending
// shard order — a per-index-slot merge is exactly what the buffer
// replaces, because holding every slot until the join is the unbounded
// memory this overload exists to avoid.

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "taxitrace/common/check.h"
#include "taxitrace/trace/time_util.h"

namespace taxitrace {
namespace synth {
namespace {

using roadnet::VertexId;

// Reusable per-worker buffers threaded through every drive/observe of
// the shards a worker runs. Never shared between threads: each worker
// gets its own slot via WorkerLocal.
struct SimScratch {
  DriveScratch drive;
  SensorScratch sensor;
  std::vector<DriveSample> idle_samples;
};

// Route-choice preference noise, derived lazily per edge instead of
// materialising an |E|-sized vector per drive. The multiplier of edge e
// during drive d is a pure function of (day_seed, d, e): independent of
// relax order (an edge queried twice yields the same value), of worker
// count, and of every other drive — so routes are exactly as
// deterministic as the old per-drive refill, at O(edges relaxed) cost.
// MinMultiplier() = 1 - noise keeps the router goal-directed (scaled
// A*) as long as noise < 1.
class LazyRouteNoise final : public roadnet::EdgeCostModel {
 public:
  LazyRouteNoise(uint64_t day_seed, double noise)
      : day_seed_(day_seed), noise_(noise) {}

  void BeginDrive(uint64_t drive_index) { drive_index_ = drive_index; }

  double Multiplier(roadnet::EdgeId edge) const override {
    // MixSeed's output is already a full splitmix64 finalisation of
    // (day_seed, drive, edge); mapping its top 53 bits straight to
    // [0, 1) (the same mapping Rng::NextDouble uses) gives a uniform
    // draw without paying for a full generator seed + step per edge.
    const uint64_t bits =
        MixSeed(day_seed_, drive_index_, static_cast<uint64_t>(edge));
    const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
    return (1.0 - noise_) + 2.0 * noise_ * u;
  }

  double MinMultiplier() const override { return 1.0 - noise_; }

 private:
  uint64_t day_seed_;
  double noise_;
  uint64_t drive_index_ = 0;
};

// Id allocation strides. Each (car, day) shard draws its trip ids from
// [shard * kTripIdStride, ...) and its point ids (per car) from
// [day * kPointIdStride, ...), so ids are unique and ascend in shard
// order without any cross-shard coordination. A car-day cannot come
// near either bound (a shift holds at most a few dozen customer rides
// and a few thousand sensor events); TT_CHECKs below enforce it.
constexpr int64_t kTripIdStride = 4096;
constexpr int64_t kPointIdStride = 1 << 20;

// Mutable state of one simulated car-day run.
struct CarState {
  VertexId position;
  double time_s;
  int64_t next_point_id;
  trace::Trip current_trip;  // engine-on run being accumulated
};

// Everything a shard needs; the models are shared, read-only, and
// outlive the simulation; `scratch` hands each worker its own buffers.
struct ShardContext {
  const CityMap* map;
  const roadnet::RoadNetwork* network;
  const roadnet::Router* router;
  const DriverModel* driver;
  const SensorModel* sensor;
  const FleetOptions* options;
  WorkerLocal<SimScratch>* scratch;
};

// What one (car, day) shard produces; merged in shard order.
struct ShardOutput {
  std::vector<trace::Trip> trips;
  int64_t num_customer_drives = 0;
  int64_t num_reposition_drives = 0;
};

// Simulates one car on one day. Pure function of (context, car, day):
// all randomness comes from streams derived from (seed, car, day), so
// shards can run in any order on any thread.
ShardOutput SimulateCarDay(const ShardContext& ctx, int car, int day) {
  const FleetOptions& options = *ctx.options;
  const roadnet::RoadNetwork& network = *ctx.network;
  SimScratch& scratch = ctx.scratch->Local();
  ShardOutput out;

  // Car-level traits must not vary by day: they come from the car's own
  // stream (substream 0; day shards use day + 1).
  Rng car_rng(MixSeed(options.seed, static_cast<uint64_t>(car), 0));
  const double activity = car_rng.Uniform(0.6, 1.45);
  const double car_driver_skill = car_rng.Uniform(0.9, 1.06);

  const uint64_t day_seed = MixSeed(options.seed, static_cast<uint64_t>(car),
                                    static_cast<uint64_t>(day) + 1);
  Rng rng(day_seed);
  // Per-drive route noise, lazily derived from (day_seed, drive, edge)
  // inside the router's cost callback — no draws from `rng`, no |E|
  // refill per drive.
  LazyRouteNoise route_noise(day_seed, options.route_weight_noise);

  const int64_t shard =
      static_cast<int64_t>(car - 1) * options.num_days + day;
  const int64_t trip_id_base = shard * kTripIdStride;
  int64_t trips_begun = 0;

  const auto random_vertex = [&](Rng* r) {
    // Draw a dense ordinal, then translate to the packed id (identity
    // on single-tile maps, keeping historical RNG-to-vertex pairing).
    return network.VertexIdAt(static_cast<size_t>(r->UniformInt(
        0, static_cast<int64_t>(network.num_vertices()) - 1)));
  };
  const auto random_gate_vertex = [&](Rng* r) {
    const size_t g = static_cast<size_t>(r->UniformInt(0, 2));
    return ctx.map->gates[g].terminal_vertex;
  };

  CarState state;
  // Each day starts at a fresh random vertex: the overnight
  // repositioning between shifts, and what makes days independent.
  state.position = random_vertex(&rng);
  state.next_point_id = static_cast<int64_t>(day) * kPointIdStride + 1;
  state.current_trip = trace::Trip{};

  const auto begin_trip = [&](double t) {
    state.current_trip = trace::Trip{};
    state.current_trip.trip_id = trip_id_base + ++trips_begun;
    state.current_trip.car_id = car;
    state.time_s = t;
  };
  const auto finish_trip = [&]() {
    if (state.current_trip.points.size() >= 2) {
      state.current_trip.RecomputeTotals();
      out.trips.push_back(std::move(state.current_trip));
    }
    state.current_trip = trace::Trip{};
  };
  const auto observe = [&](const std::vector<DriveSample>& samples) {
    const std::vector<trace::RoutePoint>& points = ctx.sensor->Observe(
        samples, state.current_trip.trip_id, &state.next_point_id,
        network.projection(), &rng, &scratch.sensor);
    auto& dst = state.current_trip.points;
    dst.reserve(dst.size() + points.size());
    dst.insert(dst.end(), points.begin(), points.end());
  };
  // Drives from the current position to `dest`; returns false when no
  // route exists (should not happen on a connected map).
  uint64_t drive_index = 0;
  const auto drive_to = [&](VertexId dest, double driver_factor) {
    route_noise.BeginDrive(++drive_index);
    Result<roadnet::Path> path =
        ctx.router->ShortestPath(state.position, dest, route_noise);
    if (!path.ok() || path->length_m < 1.0) return false;
    const std::vector<DriveSample>& samples = ctx.driver->Drive(
        *path, state.time_s, driver_factor, &rng, &scratch.drive);
    if (samples.empty()) return false;
    observe(samples);
    state.time_s = samples.back().t_s;
    state.position = dest;
    return true;
  };

  // Weekend shifts start later (evening/night traffic).
  const bool weekend = trace::IsWeekend(day * trace::kSecondsPerDay);
  const double shift_start_h =
      weekend ? rng.Uniform(9.0, 13.0) : rng.Uniform(5.5, 10.0);
  const double shift_len_h = rng.Uniform(7.0, 12.0);
  double t = day * trace::kSecondsPerDay + shift_start_h * 3600.0;
  const double shift_end = t + shift_len_h * 3600.0;

  const int customers =
      std::max(options.min_customers_per_day,
               rng.Poisson(options.mean_customers_per_day * activity));
  begin_trip(t);

  for (int c = 0; c < customers && state.time_s < shift_end; ++c) {
    // Pick a destination; trips touching the gates model traffic in
    // and out of the downtown area.
    VertexId dest;
    if (c == 0 && rng.Bernoulli(options.gate_origin_prob)) {
      // Reposition to a gate first: the customer ride then starts at
      // the gate (an arriving fare).
      dest = random_gate_vertex(&rng);
      if (dest != state.position &&
          drive_to(dest, car_driver_skill * rng.Uniform(0.92, 1.08))) {
        ++out.num_reposition_drives;
      }
    }
    dest = rng.Bernoulli(options.gate_dest_prob)
               ? random_gate_vertex(&rng)
               : random_vertex(&rng);
    if (dest == state.position) continue;
    if (!drive_to(dest, car_driver_skill * rng.Uniform(0.92, 1.08))) {
      continue;
    }
    ++out.num_customer_drives;

    // After the drop-off: engine off (ends the raw trip), or keep the
    // engine running through a stand wait, possibly repositioning.
    const double demand = TaxiDemandWeight(
        trace::HourOfDay(state.time_s),
        trace::IsWeekend(state.time_s));
    if (rng.Bernoulli(options.engine_off_prob)) {
      finish_trip();
      state.time_s += rng.Uniform(120.0, 1500.0) / demand;
      begin_trip(state.time_s);
    } else {
      const double wait_s = rng.Uniform(180.0, 1800.0) / demand;
      ctx.driver->Idle(
          network.vertex(state.position).position, state.time_s,
          std::min(wait_s, std::max(0.0, shift_end - state.time_s)),
          &scratch.idle_samples);
      observe(scratch.idle_samples);
      state.time_s += wait_s;
      if (rng.Bernoulli(options.reposition_prob)) {
        // Short hop to a nearby stand. The radius-bounded probe decides
        // "is there a route under 900 m" without running the full
        // shortest-path search an actual drive would need.
        const VertexId hop = random_vertex(&rng);
        const double probe_m =
            ctx.router->BoundedVertexDistance(state.position, hop, 900.0);
        if (probe_m < 900.0 && probe_m > 1.0 &&
            drive_to(hop, car_driver_skill)) {
          ++out.num_reposition_drives;
        }
      }
    }
  }
  finish_trip();

  TT_CHECK(trips_begun < kTripIdStride);
  TT_CHECK(state.next_point_id <=
           (static_cast<int64_t>(day) + 1) * kPointIdStride);
  return out;
}

}  // namespace

double TaxiDemandWeight(double hour_of_day, bool weekend) {
  const double h = std::fmod(std::fmod(hour_of_day, 24.0) + 24.0, 24.0);
  if (weekend) {
    if (h >= 18.0 || h < 2.0) return 1.5;  // evening/night peak
    if (h >= 10.0) return 1.0;
    return 0.5;
  }
  if (h >= 7.0 && h < 9.0) return 1.4;   // morning commute
  if (h >= 15.0 && h < 18.0) return 1.4; // afternoon commute
  if (h >= 9.0 && h < 15.0) return 1.0;
  if (h >= 18.0 && h < 23.0) return 0.9;
  return 0.4;  // night
}

FleetSimulator::FleetSimulator(const CityMap* map,
                               const WeatherModel* weather,
                               FleetOptions options,
                               const PedestrianModel* pedestrians)
    : map_(map),
      weather_(weather),
      pedestrians_(pedestrians),
      options_(options) {}

Result<FleetResult> FleetSimulator::Run(const Executor* executor) const {
  FleetResult result;
  trace::StoreTripSink sink(&result.store);
  const Result<FleetRunStats> stats = Run(executor, &sink);
  if (!stats.ok()) return stats.status();
  result.num_customer_drives = stats->num_customer_drives;
  result.num_reposition_drives = stats->num_reposition_drives;
  return result;
}

Result<FleetRunStats> FleetSimulator::Run(const Executor* executor,
                                          trace::TripSink* sink) const {
  if (options_.num_cars <= 0 || options_.num_days <= 0) {
    return Status::InvalidArgument("fleet needs at least one car and day");
  }
  const roadnet::RoadNetwork& network = map_->network;
  const roadnet::Router router(&network);
  const PedestrianModel own_pedestrians =
      pedestrians_ == nullptr
          ? PedestrianModel(options_.seed + 17, map_->hotspots,
                            options_.num_days)
          : PedestrianModel(*pedestrians_);
  const DriverModel driver(map_, weather_, options_.driver,
                           &own_pedestrians);
  const SensorModel sensor(options_.sensor);
  WorkerLocal<SimScratch> scratch;
  const ShardContext ctx{map_,    &network,  &router,  &driver,
                         &sensor, &options_, &scratch};

  const int64_t num_shards =
      static_cast<int64_t>(options_.num_cars) * options_.num_days;
  const Executor& ex = executor != nullptr ? *executor : Executor::Serial();

  // Deterministic streaming merge: shards finish in any order, but
  // trips reach the sink in strict shard order (car-major,
  // day-ascending). A shard that completes early waits in `pending`;
  // whenever the next shard in line lands, the contiguous run behind it
  // flushes. The buffer's size tracks scheduler skew (~worker count),
  // never the whole study — that is the bounded-memory property.
  FleetRunStats stats;
  std::mutex merge_mu;
  std::map<int64_t, ShardOutput> pending;
  int64_t next_flush = 0;
  // Once a sink call fails, stop flushing: the failed shard stays at
  // the head half-consumed, and re-flushing it from another worker
  // would hand moved-from trips to the sink.
  bool merge_failed = false;

  TAXITRACE_RETURN_IF_ERROR(ex.ParallelFor(
      0, num_shards, [&](int64_t shard) -> Status {
        const int car = 1 + static_cast<int>(shard / options_.num_days);
        const int day = static_cast<int>(shard % options_.num_days);
        ShardOutput out = SimulateCarDay(ctx, car, day);

        std::lock_guard<std::mutex> lock(merge_mu);
        pending.emplace(shard, std::move(out));
        stats.peak_buffered_shards =
            std::max(stats.peak_buffered_shards,
                     static_cast<int64_t>(pending.size()));
        while (!merge_failed && !pending.empty() &&
               pending.begin()->first == next_flush) {
          ShardOutput& head = pending.begin()->second;
          stats.num_customer_drives += head.num_customer_drives;
          stats.num_reposition_drives += head.num_reposition_drives;
          for (trace::Trip& trip : head.trips) {
            ++stats.trips_simulated;
            stats.points_simulated +=
                static_cast<int64_t>(trip.points.size());
            Status consumed = sink->Consume(std::move(trip));
            if (!consumed.ok()) {
              merge_failed = true;
              return consumed;
            }
          }
          pending.erase(pending.begin());
          ++next_flush;
        }
        return Status::OK();
      }));
  return stats;
}

}  // namespace synth
}  // namespace taxitrace
