
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxitrace/geo/convex_hull.cc" "src/CMakeFiles/taxitrace_geo.dir/taxitrace/geo/convex_hull.cc.o" "gcc" "src/CMakeFiles/taxitrace_geo.dir/taxitrace/geo/convex_hull.cc.o.d"
  "/root/repo/src/taxitrace/geo/coordinates.cc" "src/CMakeFiles/taxitrace_geo.dir/taxitrace/geo/coordinates.cc.o" "gcc" "src/CMakeFiles/taxitrace_geo.dir/taxitrace/geo/coordinates.cc.o.d"
  "/root/repo/src/taxitrace/geo/geometry.cc" "src/CMakeFiles/taxitrace_geo.dir/taxitrace/geo/geometry.cc.o" "gcc" "src/CMakeFiles/taxitrace_geo.dir/taxitrace/geo/geometry.cc.o.d"
  "/root/repo/src/taxitrace/geo/polygon.cc" "src/CMakeFiles/taxitrace_geo.dir/taxitrace/geo/polygon.cc.o" "gcc" "src/CMakeFiles/taxitrace_geo.dir/taxitrace/geo/polygon.cc.o.d"
  "/root/repo/src/taxitrace/geo/polyline.cc" "src/CMakeFiles/taxitrace_geo.dir/taxitrace/geo/polyline.cc.o" "gcc" "src/CMakeFiles/taxitrace_geo.dir/taxitrace/geo/polyline.cc.o.d"
  "/root/repo/src/taxitrace/geo/simplify.cc" "src/CMakeFiles/taxitrace_geo.dir/taxitrace/geo/simplify.cc.o" "gcc" "src/CMakeFiles/taxitrace_geo.dir/taxitrace/geo/simplify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taxitrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
