file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_intercept_map.dir/bench_fig9_intercept_map.cc.o"
  "CMakeFiles/bench_fig9_intercept_map.dir/bench_fig9_intercept_map.cc.o.d"
  "bench_fig9_intercept_map"
  "bench_fig9_intercept_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_intercept_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
