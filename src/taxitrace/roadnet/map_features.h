// Point features of the transportation system: traffic lights, bus stops
// and pedestrian crossings (the second information level of Digiroad).

#ifndef TAXITRACE_ROADNET_MAP_FEATURES_H_
#define TAXITRACE_ROADNET_MAP_FEATURES_H_

#include <cstdint>
#include <string_view>

#include "taxitrace/geo/geometry.h"

namespace taxitrace {
namespace roadnet {

/// Identifier of a point feature within a map.
using FeatureId = int64_t;

/// The feature kinds the paper's analysis uses.
enum class FeatureType : unsigned char {
  kTrafficLight,
  kBusStop,
  kPedestrianCrossing,
};

/// Number of distinct FeatureType values.
inline constexpr int kNumFeatureTypes = 3;

/// One transportation-system point feature.
struct MapFeature {
  FeatureId id = 0;
  FeatureType type = FeatureType::kTrafficLight;
  geo::EnPoint position;
};

/// Stable display name ("traffic_light", "bus_stop",
/// "pedestrian_crossing").
std::string_view FeatureTypeName(FeatureType t);

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_MAP_FEATURES_H_
