# Empty dependencies file for temporal_model_test.
# This may be replaced when dependencies are built.
