#include "taxitrace/common/random.h"

#include <cmath>

namespace taxitrace {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double rate) {
  // log(1 - U) is finite because NextDouble() < 1.
  return -std::log(1.0 - NextDouble()) / rate;
}

int Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = Gaussian(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  int k = 0;
  double prod = NextDouble();
  while (prod > limit) {
    ++k;
    prod *= NextDouble();
  }
  return k;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) {
    return static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

uint64_t MixSeed(uint64_t seed, uint64_t a, uint64_t b) {
  uint64_t state = seed;
  state = SplitMix64(&state) ^ (a + 0xD1B54A32D192ED03ULL);
  state = SplitMix64(&state) ^ (b + 0x8CB92BA72F3D8DD7ULL);
  return SplitMix64(&state);
}

}  // namespace taxitrace
