// Baseline matcher: snaps every point independently to the nearest edge,
// with no connectivity reasoning. Exists as the ablation baseline for
// the incremental matcher.

#ifndef TAXITRACE_MAPMATCH_NEAREST_EDGE_MATCHER_H_
#define TAXITRACE_MAPMATCH_NEAREST_EDGE_MATCHER_H_

#include "taxitrace/mapmatch/incremental_matcher.h"

namespace taxitrace {
namespace mapmatch {

/// Point-wise nearest-edge matcher.
class NearestEdgeMatcher {
 public:
  NearestEdgeMatcher(const roadnet::RoadNetwork* network,
                     const roadnet::SpatialIndex* index,
                     double max_snap_distance_m = 80.0);

  /// Snaps each point to its nearest edge. The returned geometry is the
  /// polyline through the snapped points (it may jump between
  /// disconnected edges — that is the point of the baseline).
  Result<MatchedRoute> Match(const trace::Trip& trip) const;

 private:
  const roadnet::RoadNetwork* network_;
  const roadnet::SpatialIndex* index_;
  double max_snap_distance_m_;
};

}  // namespace mapmatch
}  // namespace taxitrace

#endif  // TAXITRACE_MAPMATCH_NEAREST_EDGE_MATCHER_H_
