# Empty dependencies file for bench_seed_stability.
# This may be replaced when dependencies are built.
