// Map persistence and export: CSV round-trips for raw traffic elements
// and feature specs (the Digiroad-extract stand-in), and a GeoJSON
// rendering of a prepared network for GIS tools (the paper used QGIS).

#ifndef TAXITRACE_ROADNET_MAP_IO_H_
#define TAXITRACE_ROADNET_MAP_IO_H_

#include <string>
#include <vector>

#include "taxitrace/common/result.h"
#include "taxitrace/roadnet/map_preparation.h"

namespace taxitrace {
namespace roadnet {

/// Serialises traffic elements to CSV with header
/// id,name,functional_class,speed_limit_kmh,direction,geometry — the
/// geometry column encodes local-frame vertices as "x:y|x:y|...".
std::string ElementsToCsv(const std::vector<TrafficElement>& elements);

/// Parses the format written by ElementsToCsv.
Result<std::vector<TrafficElement>> ElementsFromCsv(
    const std::string& text);

/// Serialises feature specs to CSV with header type,x,y.
std::string FeaturesToCsv(const std::vector<FeatureSpec>& features);

/// Parses the format written by FeaturesToCsv.
Result<std::vector<FeatureSpec>> FeaturesFromCsv(const std::string& text);

/// File wrappers.
Status WriteElementsFile(const std::string& path,
                         const std::vector<TrafficElement>& elements);
Result<std::vector<TrafficElement>> ReadElementsFile(
    const std::string& path);
Status WriteFeaturesFile(const std::string& path,
                         const std::vector<FeatureSpec>& features);
Result<std::vector<FeatureSpec>> ReadFeaturesFile(const std::string& path);

/// GeoJSON FeatureCollection of a prepared network: one LineString per
/// edge (with id, name, class, limit, direction, element ids) and one
/// Point per map feature.
std::string NetworkToGeoJson(const RoadNetwork& network);

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_MAP_IO_H_
