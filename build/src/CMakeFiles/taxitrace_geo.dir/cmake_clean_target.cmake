file(REMOVE_RECURSE
  "libtaxitrace_geo.a"
)
