file(REMOVE_RECURSE
  "CMakeFiles/mapattr_test.dir/mapattr_test.cc.o"
  "CMakeFiles/mapattr_test.dir/mapattr_test.cc.o.d"
  "mapattr_test"
  "mapattr_test.pdb"
  "mapattr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapattr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
