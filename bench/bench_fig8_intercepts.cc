// Fig. 8: the cell intercepts with confidence limits (caterpillar plot):
// for most cells the effect is solid even though some are wide.

#include "bench_util.h"
#include "taxitrace/core/figures.h"

namespace taxitrace {
namespace {

void PrintFig8() {
  const core::StudyResults& r = benchutil::FullResults();
  const std::string csv = core::InterceptsCsv(r);
  std::printf("FIG 8. Cell intercepts with confidence limits (preview):\n");
  benchutil::PrintPreview(csv, 10);
  benchutil::EmitFigureFile("fig8_intercepts.csv", csv);

  int solid = 0, total = 0;
  for (size_t g = 0; g < r.cell_model.blup.size(); ++g) {
    if (r.cell_model.group_n[g] == 0) continue;
    ++total;
    const double lo = r.cell_model.blup[g] - 1.96 * r.cell_model.blup_se[g];
    const double hi = r.cell_model.blup[g] + 1.96 * r.cell_model.blup_se[g];
    if (lo > 0.0 || hi < 0.0) ++solid;
  }
  std::printf(
      "Cells with 95%% intervals excluding zero: %d of %d (%.0f%%).\n"
      "Paper shape: while the variation is large for some cells, for "
      "most cells the result is solid.\n"
      "Check: majority solid -> %s\n\n",
      solid, total, 100.0 * solid / std::max(1, total),
      solid * 2 > total ? "HOLDS" : "VIOLATED");
}

void BM_InterceptsCsv(benchmark::State& state) {
  const core::StudyResults& r = benchutil::FullResults();
  for (auto _ : state) {
    auto csv = core::InterceptsCsv(r);
    benchmark::DoNotOptimize(csv);
  }
}
BENCHMARK(BM_InterceptsCsv)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintFig8)
