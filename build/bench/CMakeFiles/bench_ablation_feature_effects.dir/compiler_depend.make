# Empty compiler generated dependencies file for bench_ablation_feature_effects.
# This may be replaced when dependencies are built.
