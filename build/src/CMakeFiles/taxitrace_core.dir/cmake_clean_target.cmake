file(REMOVE_RECURSE
  "libtaxitrace_core.a"
)
