// CSV persistence for trips (flat point-per-row format).

#ifndef TAXITRACE_TRACE_TRACE_IO_H_
#define TAXITRACE_TRACE_TRACE_IO_H_

#include <string>
#include <vector>

#include "taxitrace/common/result.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace trace {

/// Serialises trips to CSV with header
/// trip_id,car_id,point_id,timestamp_s,lat,lon,speed_kmh,fuel_delta_ml —
/// one row per route point, trips in input order.
std::string TripsToCsv(const std::vector<Trip>& trips);

/// Parses the format written by TripsToCsv. Points with the same trip_id
/// must be contiguous; trip totals are recomputed from the points.
/// Strict: any malformed row fails the whole document, with row and
/// column context in the status message.
Result<std::vector<Trip>> TripsFromCsv(const std::string& text);

/// Row-level accounting from a lenient parse (TripsFromCsvLenient).
/// Kept as its own small struct so the trace layer does not depend on
/// the fault library; the pipeline folds these into its FaultReport.
struct TraceIoStats {
  int64_t rows_total = 0;              ///< data rows seen (header excluded).
  int64_t rows_dropped_malformed = 0;  ///< wrong width or unparsable field.
  int64_t rows_dropped_non_utf8 = 0;   ///< bytes outside printable ASCII.
};

/// Fault-tolerant variant of TripsFromCsv: a malformed data row (wrong
/// field count, unparsable number, non-text bytes) is dropped and
/// counted in `stats` instead of failing the document. The header must
/// still be intact — a file whose header is gone is not a trace file.
/// Adjacent rows sharing a trip_id group into one trip, as in the
/// strict parser.
Result<std::vector<Trip>> TripsFromCsvLenient(const std::string& text,
                                              TraceIoStats* stats);

/// File round-trip helpers.
Status WriteTripsFile(const std::string& path,
                      const std::vector<Trip>& trips);
Result<std::vector<Trip>> ReadTripsFile(const std::string& path);

}  // namespace trace
}  // namespace taxitrace

#endif  // TAXITRACE_TRACE_TRACE_IO_H_
