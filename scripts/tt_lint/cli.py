"""tt_lint command line.

Exit status: 0 when clean (including findings covered by suppressions
or the baseline), 1 when non-baselined findings were reported, 2 on
usage errors (bad paths, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import baseline as baseline_mod
from . import sarif as sarif_mod
from .engine import SRC_SUFFIXES, SourceFile, run_analysis
from .rules import all_rules, rule_catalogue

DEFAULT_BASELINE = "scripts/tt_lint_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tt_lint",
        description="Repo-idiom and determinism-contract linter for "
                    "the taxitrace tree.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/taxitrace under the root)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (default: inferred)")
    parser.add_argument("--format", choices=("text", "sarif"),
                        default="text",
                        help="report format (default: text; sarif also "
                             "prints the text summary to stderr)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the report to this file instead of "
                             "stdout")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE} under the "
                             "root, when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings as the new "
                             "baseline and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, short in rule_catalogue():
            print(f"{rule_id:24} {short}")
        return 0

    repo_root = args.root.resolve()
    targets = [Path(p).resolve() for p in args.paths] or \
        [repo_root / "src" / "taxitrace"]

    paths: list[Path] = []
    for target in targets:
        if target.is_dir():
            paths.extend(p for p in sorted(target.rglob("*"))
                         if p.suffix in SRC_SUFFIXES)
        elif target.is_file():
            paths.append(target)
        else:
            print(f"tt_lint: no such path: {target}", file=sys.stderr)
            return 2

    files = [SourceFile(p, repo_root) for p in paths]
    file_rules, repo_rules = all_rules()
    findings, suppressed = run_analysis(files, repo_root,
                                        file_rules, repo_rules)
    files_by_rel = {f.rel: f for f in files}

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        candidate = repo_root / DEFAULT_BASELINE
        if candidate.is_file():
            baseline_path = candidate

    if args.write_baseline:
        out_path = baseline_path or repo_root / DEFAULT_BASELINE
        baseline_mod.write(out_path, findings, files_by_rel)
        print(f"tt_lint: wrote {len(findings)} baseline entr"
              f"{'y' if len(findings) == 1 else 'ies'} to {out_path}",
              file=sys.stderr)
        return 0

    baselined = stale = 0
    if baseline_path is not None and not args.no_baseline:
        try:
            entries = baseline_mod.load(baseline_path)
        except baseline_mod.BaselineError as e:
            print(f"tt_lint: {e}", file=sys.stderr)
            return 2
        findings, baselined, stale = baseline_mod.apply(
            findings, files_by_rel, entries)
        if stale:
            print(f"tt_lint: warning: {stale} stale baseline entr"
                  f"{'y' if stale == 1 else 'ies'} in {baseline_path} "
                  "no longer fire; regenerate with --write-baseline",
                  file=sys.stderr)

    if args.format == "sarif":
        report = sarif_mod.to_sarif(findings, rule_catalogue())
    else:
        report = "".join(
            f"{f.path}:{f.line}: [{f.rule}] {f.message}\n"
            for f in findings)

    if args.output is not None:
        args.output.write_text(report, encoding="utf-8")
    elif report:
        sys.stdout.write(report)
        sys.stdout.flush()

    extras = []
    if suppressed:
        extras.append(f"{suppressed} suppressed")
    if baselined:
        extras.append(f"{baselined} baselined")
    detail = f" ({', '.join(extras)})" if extras else ""

    if findings:
        if args.format == "sarif":
            for f in findings:
                print(f"{f.path}:{f.line}: [{f.rule}] {f.message}",
                      file=sys.stderr)
        print(f"tt_lint: {len(findings)} finding(s) in {len(files)} "
              f"files{detail}", file=sys.stderr)
        return 1
    print(f"tt_lint: clean ({len(files)} files{detail})",
          file=sys.stderr)
    return 0
