#include "taxitrace/roadnet/map_io.h"

#include <fstream>
#include <sstream>

#include "taxitrace/common/csv.h"
#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace roadnet {
namespace {

std::string EncodeGeometry(const geo::Polyline& line) {
  std::string out;
  for (size_t i = 0; i < line.points().size(); ++i) {
    if (i > 0) out += "|";
    out += StrFormat("%.3f:%.3f", line.points()[i].x, line.points()[i].y);
  }
  return out;
}

Result<geo::Polyline> DecodeGeometry(const std::string& text) {
  std::vector<geo::EnPoint> pts;
  for (const std::string& pair : Split(text, '|')) {
    const std::vector<std::string> xy = Split(pair, ':');
    if (xy.size() != 2) {
      return Status::Corruption("bad geometry vertex: " + pair);
    }
    TAXITRACE_ASSIGN_OR_RETURN(const double x, ParseDouble(xy[0]));
    TAXITRACE_ASSIGN_OR_RETURN(const double y, ParseDouble(xy[1]));
    pts.push_back(geo::EnPoint{x, y});
  }
  return geo::Polyline(std::move(pts));
}

Result<TravelDirection> ParseDirection(const std::string& name) {
  if (name == "both") return TravelDirection::kBoth;
  if (name == "forward") return TravelDirection::kForward;
  if (name == "backward") return TravelDirection::kBackward;
  return Status::Corruption("unknown direction: " + name);
}

Result<FeatureType> ParseFeatureType(const std::string& name) {
  if (name == "traffic_light") return FeatureType::kTrafficLight;
  if (name == "bus_stop") return FeatureType::kBusStop;
  if (name == "pedestrian_crossing") return FeatureType::kPedestrianCrossing;
  return Status::Corruption("unknown feature type: " + name);
}

Status WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::string ElementsToCsv(const std::vector<TrafficElement>& elements) {
  std::vector<CsvRow> rows;
  rows.push_back({"id", "name", "functional_class", "speed_limit_kmh",
                  "direction", "geometry"});
  for (const TrafficElement& el : elements) {
    rows.push_back(
        {StrFormat("%lld", static_cast<long long>(el.id)), el.road_name,
         StrFormat("%d", static_cast<int>(el.functional_class)),
         StrFormat("%.1f", el.speed_limit_kmh),
         std::string(TravelDirectionName(el.direction)),
         EncodeGeometry(el.geometry)});
  }
  return WriteCsv(rows);
}

Result<std::vector<TrafficElement>> ElementsFromCsv(
    const std::string& text) {
  TAXITRACE_ASSIGN_OR_RETURN(const std::vector<CsvRow> rows,
                             ParseCsvChecked(text, 6));
  if (rows.empty()) {
    return Status::Corruption("missing elements CSV header");
  }
  std::vector<TrafficElement> out;
  for (size_t r = 1; r < rows.size(); ++r) {
    TrafficElement el;
    TAXITRACE_ASSIGN_OR_RETURN(el.id, ParseInt64(rows[r][0]));
    el.road_name = rows[r][1];
    TAXITRACE_ASSIGN_OR_RETURN(const int64_t cls, ParseInt64(rows[r][2]));
    if (cls < 1 || cls > 4) {
      return Status::Corruption("functional class out of range");
    }
    el.functional_class = static_cast<FunctionalClass>(cls);
    TAXITRACE_ASSIGN_OR_RETURN(el.speed_limit_kmh,
                               ParseDouble(rows[r][3]));
    TAXITRACE_ASSIGN_OR_RETURN(el.direction, ParseDirection(rows[r][4]));
    TAXITRACE_ASSIGN_OR_RETURN(el.geometry, DecodeGeometry(rows[r][5]));
    out.push_back(std::move(el));
  }
  return out;
}

std::string FeaturesToCsv(const std::vector<FeatureSpec>& features) {
  std::vector<CsvRow> rows;
  rows.push_back({"type", "x", "y"});
  for (const FeatureSpec& f : features) {
    rows.push_back({std::string(FeatureTypeName(f.type)),
                    StrFormat("%.3f", f.position.x),
                    StrFormat("%.3f", f.position.y)});
  }
  return WriteCsv(rows);
}

Result<std::vector<FeatureSpec>> FeaturesFromCsv(const std::string& text) {
  TAXITRACE_ASSIGN_OR_RETURN(const std::vector<CsvRow> rows,
                             ParseCsvChecked(text, 3));
  if (rows.empty()) {
    return Status::Corruption("missing features CSV header");
  }
  std::vector<FeatureSpec> out;
  for (size_t r = 1; r < rows.size(); ++r) {
    FeatureSpec f;
    TAXITRACE_ASSIGN_OR_RETURN(f.type, ParseFeatureType(rows[r][0]));
    TAXITRACE_ASSIGN_OR_RETURN(f.position.x, ParseDouble(rows[r][1]));
    TAXITRACE_ASSIGN_OR_RETURN(f.position.y, ParseDouble(rows[r][2]));
    out.push_back(f);
  }
  return out;
}

Status WriteElementsFile(const std::string& path,
                         const std::vector<TrafficElement>& elements) {
  return WriteFile(path, ElementsToCsv(elements));
}

Result<std::vector<TrafficElement>> ReadElementsFile(
    const std::string& path) {
  TAXITRACE_ASSIGN_OR_RETURN(const std::string text, ReadFile(path));
  return ElementsFromCsv(text);
}

Status WriteFeaturesFile(const std::string& path,
                         const std::vector<FeatureSpec>& features) {
  return WriteFile(path, FeaturesToCsv(features));
}

Result<std::vector<FeatureSpec>> ReadFeaturesFile(const std::string& path) {
  TAXITRACE_ASSIGN_OR_RETURN(const std::string text, ReadFile(path));
  return FeaturesFromCsv(text);
}

std::string NetworkToGeoJson(const RoadNetwork& network) {
  const geo::LocalProjection& proj = network.projection();
  std::string out = "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first = true;
  network.ForEachEdge([&](const Edge& e) {
    if (!first) out += ",";
    first = false;
    out +=
        "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\","
        "\"coordinates\":[";
    for (size_t i = 0; i < e.geometry.points().size(); ++i) {
      if (i > 0) out += ",";
      const geo::LatLon ll = proj.Inverse(e.geometry.points()[i]);
      out += StrFormat("[%.6f,%.6f]", ll.lon_deg, ll.lat_deg);
    }
    std::string elements = "[";
    for (size_t k = 0; k < e.element_ids.size(); ++k) {
      if (k > 0) elements += ",";
      elements +=
          StrFormat("%lld", static_cast<long long>(e.element_ids[k]));
    }
    elements += "]";
    out += StrFormat(
        "]},\"properties\":{\"edge\":%d,\"name\":\"%s\","
        "\"functional_class\":%d,\"speed_limit_kmh\":%.0f,"
        "\"direction\":\"%s\",\"elements\":%s}}",
        e.id, e.road_name.c_str(), static_cast<int>(e.functional_class),
        e.speed_limit_kmh,
        std::string(TravelDirectionName(e.direction)).c_str(),
        elements.c_str());
  });
  for (const MapFeature& f : network.features()) {
    if (!first) out += ",";
    first = false;
    const geo::LatLon ll = proj.Inverse(f.position);
    out += StrFormat(
        "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
        "\"coordinates\":[%.6f,%.6f]},\"properties\":{\"type\":\"%s\"}}",
        ll.lon_deg, ll.lat_deg,
        std::string(FeatureTypeName(f.type)).c_str());
  }
  out += "]}";
  return out;
}

}  // namespace roadnet
}  // namespace taxitrace
