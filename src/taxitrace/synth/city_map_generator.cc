#include "taxitrace/synth/city_map_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace synth {
namespace {

using geo::EnPoint;
using roadnet::FeatureSpec;
using roadnet::FeatureType;
using roadnet::FunctionalClass;
using roadnet::TrafficElement;
using roadnet::TravelDirection;

// A street segment between two grid nodes (or a stub), before conversion
// to traffic elements.
struct StreetSegment {
  EnPoint a;
  EnPoint b;
  double speed_limit_kmh = 40.0;
  FunctionalClass functional_class = FunctionalClass::kLocalStreet;
  TravelDirection direction = TravelDirection::kBoth;
  std::string name;
  bool core = false;
};

// Disjoint-set over grid node indices, used for connectivity repair.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

// Coordinate lines of the non-uniform grid: dense inside the core,
// sparse outside.
std::vector<double> GridLines(const CityMapOptions& opt, Rng* rng) {
  std::vector<double> lines;
  double pos = -opt.extent_m;
  while (pos <= opt.extent_m + 1.0) {
    lines.push_back(pos + rng->Uniform(-8.0, 8.0));
    const double spacing = std::abs(pos) < opt.core_extent_m
                               ? opt.core_spacing_m
                               : opt.outer_spacing_m;
    pos += spacing * rng->Uniform(0.93, 1.07);
  }
  return lines;
}

}  // namespace

Result<const GateRoad*> CityMap::FindGate(const std::string& name) const {
  for (const GateRoad& g : gates) {
    if (g.name == name) return &g;
  }
  return Status::NotFound("no gate named " + name);
}

Result<CityMap> GenerateCityMap(const CityMapOptions& opt) {
  if (opt.extent_m <= 0 || opt.core_spacing_m <= 0 ||
      opt.outer_spacing_m <= 0) {
    return Status::InvalidArgument("non-positive map dimensions");
  }
  Rng rng(opt.seed);

  // --- 1. Grid nodes ------------------------------------------------------
  const std::vector<double> xs = GridLines(opt, &rng);
  const std::vector<double> ys = GridLines(opt, &rng);
  const size_t nx = xs.size();
  const size_t ny = ys.size();
  if (nx < 4 || ny < 4) {
    return Status::InvalidArgument("map too small for a street grid");
  }
  const auto node_index = [&](size_t i, size_t j) { return j * nx + i; };
  std::vector<EnPoint> nodes(nx * ny);
  for (size_t j = 0; j < ny; ++j) {
    for (size_t i = 0; i < nx; ++i) {
      nodes[node_index(i, j)] =
          EnPoint{xs[i] + rng.Uniform(-12.0, 12.0),
                  ys[j] + rng.Uniform(-12.0, 12.0)};
    }
  }
  const auto in_core = [&](const EnPoint& p) {
    return std::abs(p.x) < opt.core_extent_m &&
           std::abs(p.y) < opt.core_extent_m;
  };
  const auto nearest_line = [](const std::vector<double>& lines,
                               double target) {
    size_t best = 0;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (std::abs(lines[i] - target) < std::abs(lines[best] - target)) {
        best = i;
      }
    }
    return best;
  };

  // --- 2. Candidate grid street segments ----------------------------------
  struct GridSegment {
    size_t na;
    size_t nb;
    bool vertical;
    size_t line;  // column index for vertical, row index for horizontal
    size_t row;   // lower row index (for vertical segments)
    bool removed = false;
    bool river = false;  // removed for the river; never restored
  };
  std::vector<GridSegment> grid_segments;
  for (size_t j = 0; j < ny; ++j) {
    for (size_t i = 0; i + 1 < nx; ++i) {
      grid_segments.push_back(GridSegment{
          node_index(i, j), node_index(i + 1, j), false, j, j});
    }
  }
  for (size_t j = 0; j + 1 < ny; ++j) {
    for (size_t i = 0; i < nx; ++i) {
      grid_segments.push_back(GridSegment{
          node_index(i, j), node_index(i, j + 1), true, i, j});
    }
  }

  // --- 3a. The river: drop every crossing of the river band except the
  //         bridges (the T gate column always carries one).
  std::vector<int> degree(nodes.size(), 0);
  for (const GridSegment& s : grid_segments) {
    ++degree[s.na];
    ++degree[s.nb];
  }
  if (opt.include_river && ny >= 4) {
    // The river flows between row j_river and j_river + 1.
    size_t j_river = 1;
    for (size_t j = 1; j + 2 < ny; ++j) {
      const double mid = (ys[j] + ys[j + 1]) / 2.0;
      const double best_mid = (ys[j_river] + ys[j_river + 1]) / 2.0;
      if (std::abs(mid - opt.river_y_m) <
          std::abs(best_mid - opt.river_y_m)) {
        j_river = j;
      }
    }
    std::vector<size_t> bridge_columns;
    bridge_columns.push_back(nearest_line(xs, 0.0));  // the T corridor
    for (double bx : opt.bridge_x_m) {
      bridge_columns.push_back(nearest_line(xs, bx));
    }
    for (GridSegment& s : grid_segments) {
      if (!s.vertical || s.row != j_river || s.removed) continue;
      if (std::find(bridge_columns.begin(), bridge_columns.end(),
                    s.line) != bridge_columns.end()) {
        continue;  // a bridge
      }
      s.removed = true;
      s.river = true;
      --degree[s.na];
      --degree[s.nb];
    }
  }

  // --- 3b. Irregularity: remove segments, keeping degrees >= 1 and the
  //         grid connected.
  for (GridSegment& s : grid_segments) {
    if (s.removed) continue;
    const bool core_seg = in_core(nodes[s.na]) && in_core(nodes[s.nb]);
    const double p = core_seg ? opt.core_removal_fraction
                              : opt.outer_removal_fraction;
    if (degree[s.na] > 2 && degree[s.nb] > 2 && rng.Bernoulli(p)) {
      s.removed = true;
      --degree[s.na];
      --degree[s.nb];
    }
  }
  {
    UnionFind uf(nodes.size());
    for (const GridSegment& s : grid_segments) {
      if (!s.removed) uf.Union(s.na, s.nb);
    }
    for (GridSegment& s : grid_segments) {
      // River crossings stay removed; the bridges keep the banks
      // connected.
      if (s.removed && !s.river && uf.Union(s.na, s.nb)) {
        s.removed = false;  // restoring keeps the network connected
        ++degree[s.na];
        ++degree[s.nb];
      }
    }
  }

  // --- 4. One-way pair: two adjacent core columns become a north/south
  //        one-way couple (a structure central Oulu has).
  size_t oneway_north = 0;
  size_t oneway_south = 0;
  {
    // Pick the column closest to x = -450 (clear of the T and S gate
    // columns near x = 0 and x = -200) and its right neighbour.
    size_t best = 0;
    for (size_t i = 0; i < nx; ++i) {
      if (std::abs(xs[i] + 450.0) < std::abs(xs[best] + 450.0)) best = i;
    }
    oneway_north = best;
    oneway_south = std::min(best + 1, nx - 1);
  }

  // --- 5. Street segments with attributes ---------------------------------
  std::vector<StreetSegment> streets;
  for (const GridSegment& s : grid_segments) {
    if (s.removed) continue;
    StreetSegment street;
    street.a = nodes[s.na];
    street.b = nodes[s.nb];
    street.core = in_core(street.a) && in_core(street.b);
    street.speed_limit_kmh =
        street.core ? (rng.Bernoulli(0.12) ? 30.0 : 40.0) : 50.0;
    street.functional_class = street.core ? FunctionalClass::kLocalStreet
                                          : FunctionalClass::kConnectingRoad;
    street.name = s.vertical ? StrFormat("street_c%zu", s.line)
                             : StrFormat("street_r%zu", s.line);
    if (s.vertical && street.core &&
        (s.line == oneway_north || s.line == oneway_south)) {
      // Digitised south -> north (na has the smaller j): northbound
      // column allows forward travel, southbound column backward.
      street.direction = s.line == oneway_north ? TravelDirection::kForward
                                                : TravelDirection::kBackward;
    }
    streets.push_back(std::move(street));
  }

  // --- 6. Dead-end access stubs -------------------------------------------
  for (int k = 0; k < opt.num_dead_ends; ++k) {
    // Prefer nodes outside the very centre.
    size_t n = 0;
    for (int attempt = 0; attempt < 20; ++attempt) {
      n = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(nodes.size()) - 1));
      const double r = geo::Norm(nodes[n]);
      if (r > opt.core_extent_m * 0.5) break;
    }
    const double angle = rng.Uniform(0.0, 2.0 * M_PI);
    const double len = rng.Uniform(80.0, 160.0);
    StreetSegment stub;
    stub.a = nodes[n];
    stub.b = nodes[n] + EnPoint{len * std::cos(angle), len * std::sin(angle)};
    stub.speed_limit_kmh = 30.0;
    stub.functional_class = FunctionalClass::kAccessRoad;
    stub.name = StrFormat("access_%d", k);
    streets.push_back(std::move(stub));
  }

  // --- 7. Gate roads -------------------------------------------------------
  // T: north exit near x = 0; S: south exit near x = -200; L: east exit
  // near y = -250 (the key enter/exit points of the downtown area,
  // placed so gate-to-gate driving distances match the paper's 2.2-2.4
  // km medians).
  struct GateSpec {
    const char* name;
    size_t col;   // grid column (T, S) or row (L) the gate road follows
    bool vertical;
    bool at_max_end;  // attaches at the max end of the axis?
    EnPoint outward;  // unit direction away from the city
  };
  const GateSpec gate_specs[3] = {
      {"T", nearest_line(xs, 0.0), true, true, EnPoint{0.12, 1.0}},
      {"S", nearest_line(xs, -200.0), true, false, EnPoint{-0.12, -1.0}},
      {"L", nearest_line(ys, -250.0), false, true, EnPoint{1.0, 0.1}},
  };
  std::vector<EnPoint> gate_external(3);
  std::vector<std::vector<EnPoint>> gate_geometry(3);
  for (int g = 0; g < 3; ++g) {
    const GateSpec& spec = gate_specs[g];
    // The gate road runs from outside the map, through the attach node,
    // and a few blocks inward along its grid line — like the real
    // arterials at Oulu's enter/exit points, which reach into town.
    const size_t depth = 2;  // inward grid nodes covered by the gate road
    std::vector<size_t> chain;  // outermost first
    for (size_t k = 0; k <= depth; ++k) {
      size_t idx;
      if (spec.vertical) {
        const size_t j = spec.at_max_end ? ny - 1 - k : k;
        idx = node_index(spec.col, j);
      } else {
        const size_t i = spec.at_max_end ? nx - 1 - k : k;
        idx = node_index(i, spec.col);
      }
      chain.push_back(idx);
    }
    const EnPoint dir = (1.0 / geo::Norm(spec.outward)) * spec.outward;
    gate_external[static_cast<size_t>(g)] =
        nodes[chain.front()] + opt.gate_stub_length_m * dir;
    StreetSegment gate;
    gate.a = nodes[chain.front()];
    gate.b = gate_external[static_cast<size_t>(g)];
    gate.speed_limit_kmh = 60.0;
    gate.functional_class = FunctionalClass::kRegionalRoad;
    gate.name = StrFormat("%s-road", spec.name);
    streets.push_back(std::move(gate));
    // Gate descriptor geometry: inbound, external point first.
    gate_geometry[static_cast<size_t>(g)].push_back(
        gate_external[static_cast<size_t>(g)]);
    for (size_t idx : chain) {
      gate_geometry[static_cast<size_t>(g)].push_back(nodes[idx]);
    }
  }

  // --- 8. Streets -> traffic elements -------------------------------------
  std::vector<TrafficElement> elements;
  roadnet::ElementId next_id = 121000;
  for (const StreetSegment& street : streets) {
    // Gentle curvature: three interior points with small perpendicular
    // offsets.
    const EnPoint d = street.b - street.a;
    const double len = geo::Norm(d);
    const EnPoint unit = len > 0 ? (1.0 / len) * d : EnPoint{1.0, 0.0};
    const EnPoint normal{-unit.y, unit.x};
    std::vector<EnPoint> pts;
    pts.push_back(street.a);
    for (int k = 1; k <= 3; ++k) {
      const double t = k / 4.0;
      pts.push_back(street.a + (t * len) * unit +
                    rng.Uniform(-6.0, 6.0) * normal);
    }
    pts.push_back(street.b);

    // Optionally split into several traffic elements at interior points.
    std::vector<size_t> cuts;  // indices into pts where elements split
    if (rng.Bernoulli(opt.multi_element_fraction)) {
      cuts.push_back(2);
      if (rng.Bernoulli(0.4)) cuts.push_back(3);
    }
    cuts.push_back(pts.size() - 1);
    size_t start = 0;
    for (size_t cut : cuts) {
      TrafficElement el;
      el.id = next_id++;
      el.geometry = geo::Polyline(std::vector<EnPoint>(
          pts.begin() + static_cast<ptrdiff_t>(start),
          pts.begin() + static_cast<ptrdiff_t>(cut) + 1));
      el.speed_limit_kmh = street.speed_limit_kmh;
      el.functional_class = street.functional_class;
      el.direction = street.direction;
      el.road_name = street.name;
      // Randomly digitise against the chain direction to exercise the
      // preparation step's orientation handling.
      if (rng.Bernoulli(0.3)) {
        el.geometry = el.geometry.Reversed();
        el.direction = roadnet::ReverseDirection(el.direction);
      }
      elements.push_back(std::move(el));
      start = cut;
    }
  }

  // --- 9. Features ----------------------------------------------------------
  std::vector<FeatureSpec> features;
  // Traffic lights: junction nodes sampled with centre-biased weights.
  {
    std::vector<size_t> junction_nodes;
    std::vector<double> weights;
    for (size_t n = 0; n < nodes.size(); ++n) {
      if (degree[n] < 3) continue;
      junction_nodes.push_back(n);
      const double r = geo::Norm(nodes[n]);
      // Centre-biased, with extra weight on the western half: the
      // S<->T corridor runs through the administrative centre where
      // signalised junctions cluster (Fig. 6's line D contrast).
      const double west_bias = nodes[n].x < 50.0 ? 1.35 : 0.75;
      weights.push_back(
          west_bias * std::exp(-(r / 700.0) * (r / 700.0)) + 0.02);
    }
    std::unordered_set<size_t> chosen;
    int guard = 0;
    while (static_cast<int>(chosen.size()) < opt.target_traffic_lights &&
           guard++ < 100000 &&
           chosen.size() < junction_nodes.size()) {
      const size_t pick = rng.WeightedIndex(weights);
      if (chosen.insert(pick).second) {
        features.push_back(FeatureSpec{FeatureType::kTrafficLight,
                                       nodes[junction_nodes[pick]]});
      }
    }
  }
  // Pedestrian crossings: near-junction positions on core streets, plus
  // occasional midblock crossings; sampled to the exact census target.
  {
    std::vector<EnPoint> candidates;
    for (const StreetSegment& street : streets) {
      if (street.functional_class == FunctionalClass::kAccessRoad) continue;
      const EnPoint d = street.b - street.a;
      const double len = geo::Norm(d);
      if (len < 40.0) continue;
      const EnPoint unit = (1.0 / len) * d;
      // Denser on core streets and on the western half (see the light
      // placement comment above).
      const double west_bias =
          (street.a.x + street.b.x) / 2.0 < 50.0 ? 1.25 : 0.7;
      const double weight = (street.core ? 1.0 : 0.18) * west_bias;
      if (rng.Bernoulli(weight)) {
        candidates.push_back(street.a + rng.Uniform(10.0, 18.0) * unit);
      }
      if (rng.Bernoulli(weight)) {
        candidates.push_back(street.b - rng.Uniform(10.0, 18.0) * unit);
      }
      if (street.core && rng.Bernoulli(0.18)) {
        candidates.push_back(street.a + (len * rng.Uniform(0.4, 0.6)) * unit);
      }
    }
    // Shuffle (Fisher-Yates) and take the target count.
    for (size_t i = candidates.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(candidates[i - 1], candidates[j]);
    }
    const size_t take = std::min(
        candidates.size(), static_cast<size_t>(opt.target_pedestrian_crossings));
    for (size_t i = 0; i < take; ++i) {
      features.push_back(
          FeatureSpec{FeatureType::kPedestrianCrossing, candidates[i]});
    }
  }
  // Bus stops: paired stops along the two central one-way columns and a
  // central row (the "main street" corridors).
  {
    std::vector<EnPoint> stop_positions;
    const size_t main_row = nearest_line(ys, 50.0);
    const auto add_along = [&](bool vertical, size_t line) {
      for (size_t k = 1; k + 1 < (vertical ? ny : nx); k += 2) {
        const EnPoint p = vertical ? nodes[node_index(line, k)]
                                   : nodes[node_index(k, main_row)];
        if (!in_core(p)) continue;
        const EnPoint offset =
            vertical ? EnPoint{8.0, 25.0} : EnPoint{25.0, 8.0};
        stop_positions.push_back(p + offset);
        stop_positions.push_back(p - offset);
      }
    };
    add_along(true, oneway_north);
    add_along(true, oneway_south);
    add_along(false, main_row);
    add_along(false, nearest_line(ys, -350.0));
    for (size_t i = 0;
         i < stop_positions.size() &&
         static_cast<int>(i) < opt.target_bus_stops;
         ++i) {
      features.push_back(FeatureSpec{FeatureType::kBusStop, stop_positions[i]});
    }
  }

  // --- 10. Prepare the network ---------------------------------------------
  CityMap map{roadnet::RoadNetwork(opt.origin), {}, {}, {}, {}, {}, {}};
  roadnet::MapPreparationOptions prep_options;
  roadnet::MapPreparationStats prep_stats;
  TAXITRACE_ASSIGN_OR_RETURN(
      map.network, PrepareRoadNetwork(elements, features, opt.origin,
                                      prep_options, &prep_stats));
  map.preparation_stats = prep_stats;

  // Gate descriptors: inbound geometry, terminal vertex = nearest vertex
  // to the external stub end.
  for (int g = 0; g < 3; ++g) {
    GateRoad gate;
    gate.name = gate_specs[g].name;
    gate.geometry = geo::Polyline(gate_geometry[static_cast<size_t>(g)]);
    double best = std::numeric_limits<double>::infinity();
    map.network.ForEachVertex([&](const roadnet::Vertex& v) {
      const double dist =
          geo::Distance(v.position, gate_external[static_cast<size_t>(g)]);
      if (dist < best) {
        best = dist;
        gate.terminal_vertex = v.id;
      }
    });
    map.gates.push_back(std::move(gate));
  }

  // Central area: the downtown core with a margin.
  const double c = opt.core_extent_m + 150.0;
  map.central_area = geo::MakeRectangle(geo::Bbox{-c, -c, c, c});

  // Hotspots: market-square-like crowded areas south and west of the
  // centre (so S<->T routes cross them but T<->L routes mostly do not).
  map.hotspots = {
      Hotspot{EnPoint{-30.0, -180.0}, 330.0, 0.9},
      Hotspot{EnPoint{-280.0, 120.0}, 220.0, 0.65},
      Hotspot{EnPoint{-120.0, 520.0}, 200.0, 0.5},
      Hotspot{EnPoint{120.0, -480.0}, 170.0, 0.45},
  };
  map.source_elements = std::move(elements);
  map.source_features = std::move(features);
  return map;
}

}  // namespace synth
}  // namespace taxitrace
