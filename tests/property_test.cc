// Cross-module property tests: parameterised sweeps asserting the
// invariants that hold across option ranges, seeds and noise levels.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <tuple>

#include "taxitrace/clean/cleaning_pipeline.h"
#include "taxitrace/common/histogram.h"
#include "taxitrace/common/random.h"
#include "taxitrace/fault/fault_injector.h"
#include "taxitrace/stream/ingest_session.h"
#include "taxitrace/stream/stream_source.h"
#include "taxitrace/trace/trip_sink.h"
#include "taxitrace/mapmatch/incremental_matcher.h"
#include "taxitrace/mapmatch/match_quality.h"
#include "taxitrace/model/one_way_reml.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/driver_model.h"
#include "taxitrace/synth/sensor_model.h"

namespace taxitrace {
namespace {

const synth::CityMap& TestMap() {
  static const synth::CityMap* map = [] {
    auto result = synth::GenerateCityMap();
    return new synth::CityMap(std::move(result).value());
  }();
  return *map;
}

// --- Projection round trips across origins -----------------------------------

class ProjectionSweepTest
    : public testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ProjectionSweepTest, RoundTripAndMetricAccuracy) {
  const geo::LatLon origin{std::get<0>(GetParam()),
                           std::get<1>(GetParam())};
  const geo::LocalProjection proj(origin);
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const geo::EnPoint p{rng.Uniform(-3000, 3000),
                         rng.Uniform(-3000, 3000)};
    const geo::EnPoint back = proj.Forward(proj.Inverse(p));
    EXPECT_NEAR(back.x, p.x, 1e-6);
    EXPECT_NEAR(back.y, p.y, 1e-6);
    // Planar distance agrees with the great circle to < 0.1%.
    const geo::LatLon a = proj.Inverse(geo::EnPoint{0, 0});
    const geo::LatLon b = proj.Inverse(p);
    const double planar = geo::Norm(p);
    if (planar > 100.0) {
      EXPECT_NEAR(geo::HaversineMeters(a, b) / planar, 1.0, 1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Origins, ProjectionSweepTest,
    testing::Values(std::make_tuple(65.0121, 25.4682),  // Oulu
                    std::make_tuple(60.17, 24.94),      // Helsinki
                    std::make_tuple(0.0, 0.0),          // equator
                    std::make_tuple(-33.87, 151.21)));  // Sydney

// --- Router metric properties --------------------------------------------------

TEST(RouterPropertyTest, SymmetricOnTwoWayPairsAndTriangleInequality) {
  const roadnet::RoadNetwork& net = TestMap().network;
  const roadnet::Router router(&net);
  Rng rng(13);
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 20; ++trial) {
    const auto a = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(net.num_vertices()) - 1));
    const auto b = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(net.num_vertices()) - 1));
    const auto c = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(net.num_vertices()) - 1));
    const auto ab = router.ShortestPath(a, b);
    const auto ba = router.ShortestPath(b, a);
    const auto ac = router.ShortestPath(a, c);
    const auto cb = router.ShortestPath(c, b);
    if (!ab.ok() || !ba.ok() || !ac.ok() || !cb.ok()) continue;
    // One-way streets break symmetry only by bounded detours.
    EXPECT_LT(std::abs(ab->length_m - ba->length_m), 900.0);
    // Triangle inequality holds exactly for shortest paths.
    EXPECT_LE(ab->length_m, ac->length_m + cb->length_m + 1e-6);
    ++checked;
  }
  EXPECT_GE(checked, 20);
}

TEST(RouterPropertyTest, PathLengthMatchesGeometryLength) {
  const roadnet::RoadNetwork& net = TestMap().network;
  const roadnet::Router router(&net);
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(net.num_vertices()) - 1));
    const auto b = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(net.num_vertices()) - 1));
    const auto path = router.ShortestPath(a, b);
    if (!path.ok()) continue;
    EXPECT_NEAR(path->geometry.Length(), path->length_m,
                1e-6 * std::max(1.0, path->length_m));
  }
}

// --- Segmentation monotonicity ---------------------------------------------

class SegmentationWindowTest : public testing::TestWithParam<double> {};

TEST_P(SegmentationWindowTest, ShorterWindowNeverMergesMore) {
  // A drive with pauses of many durations.
  trace::Trip trip;
  Rng rng(19);
  double t = 0.0, lat = 65.0;
  int64_t id = 1;
  for (int block = 0; block < 12; ++block) {
    for (int k = 0; k < 8; ++k) {
      trace::RoutePoint p;
      p.point_id = id++;
      p.timestamp_s = (t += 10.0);
      p.position = geo::LatLon{lat += 0.0003, 25.47};
      trip.points.push_back(p);
    }
    // A pause of 30..600 s expressed as 30 s keepalives.
    const double pause = rng.Uniform(30.0, 600.0);
    for (double dt = 30.0; dt <= pause; dt += 30.0) {
      trace::RoutePoint p = trip.points.back();
      p.point_id = id++;
      p.timestamp_s = t + dt;
      trip.points.push_back(p);
    }
    t += pause;
  }
  clean::SegmentationOptions narrow;
  narrow.rule1_window_s = GetParam();
  clean::SegmentationOptions wide;
  wide.rule1_window_s = GetParam() * 2.0;
  const auto segments_narrow = clean::SegmentTrip(trip, narrow);
  const auto segments_wide = clean::SegmentTrip(trip, wide);
  EXPECT_GE(segments_narrow.size(), segments_wide.size());
  // Every produced segment is internally time-monotone.
  for (const trace::Trip& seg : segments_narrow) {
    for (size_t i = 1; i < seg.points.size(); ++i) {
      EXPECT_LE(seg.points[i - 1].timestamp_s, seg.points[i].timestamp_s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, SegmentationWindowTest,
                         testing::Values(60.0, 120.0, 180.0, 300.0));

// --- Order repair under random glitches -----------------------------------

class OrderRepairSweepTest : public testing::TestWithParam<int> {};

TEST_P(OrderRepairSweepTest, RepairRestoresGeometryOrder) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    // A straight drive with strictly increasing latitude.
    std::vector<trace::RoutePoint> pts;
    const int n = 8 + static_cast<int>(rng.UniformInt(0, 20));
    for (int i = 0; i < n; ++i) {
      trace::RoutePoint p;
      p.point_id = i + 1;
      p.timestamp_s = 10.0 * i;
      p.position = geo::LatLon{65.0 + 0.0004 * i, 25.47};
      pts.push_back(p);
    }
    // Glitch: swap one field of a few adjacent pairs.
    const bool timestamps = rng.Bernoulli(0.5);
    const int swaps = 1 + static_cast<int>(rng.UniformInt(0, 2));
    for (int s = 0; s < swaps; ++s) {
      const size_t i = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(pts.size()) - 2));
      if (timestamps) {
        std::swap(pts[i].timestamp_s, pts[i + 1].timestamp_s);
      } else {
        std::swap(pts[i].point_id, pts[i + 1].point_id);
      }
    }
    clean::RepairPointOrder(&pts);
    for (size_t i = 1; i < pts.size(); ++i) {
      EXPECT_GT(pts[i].position.lat_deg, pts[i - 1].position.lat_deg);
      EXPECT_LE(pts[i - 1].timestamp_s, pts[i].timestamp_s);
      EXPECT_LE(pts[i - 1].point_id, pts[i].point_id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderRepairSweepTest,
                         testing::Values(1, 2, 3, 4, 5));

// --- REML recovery across variance regimes ---------------------------------

class RemlSweepTest
    : public testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RemlSweepTest, RecoversVarianceComponents) {
  const double tau = std::get<0>(GetParam());
  const double sigma = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(tau * 100 + sigma));
  model::OneWayReml reml;
  for (int g = 0; g < 150; ++g) {
    const double effect = rng.Gaussian(0.0, tau);
    for (int i = 0; i < 25; ++i) {
      reml.Add(static_cast<size_t>(g),
               20.0 + effect + rng.Gaussian(0.0, sigma));
    }
  }
  const model::OneWayRemlFit fit = reml.Fit().value();
  EXPECT_NEAR(fit.sigma2_residual, sigma * sigma,
              0.15 * sigma * sigma + 0.05);
  EXPECT_NEAR(fit.sigma2_group, tau * tau,
              0.35 * tau * tau + 0.3 * sigma * sigma / 25.0 + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, RemlSweepTest,
    testing::Values(std::make_tuple(0.5, 4.0), std::make_tuple(2.0, 4.0),
                    std::make_tuple(5.0, 4.0), std::make_tuple(2.0, 1.0),
                    std::make_tuple(2.0, 8.0)));

// --- Matching under increasing GPS noise ------------------------------------

class MatcherNoiseTest : public testing::TestWithParam<double> {};

TEST_P(MatcherNoiseTest, RecoveryDegradesGracefully) {
  const roadnet::SpatialIndex index(&TestMap().network);
  const mapmatch::IncrementalMatcher matcher(&TestMap().network, &index);
  const synth::WeatherModel weather(3, 30);
  const synth::DriverModel driver(&TestMap(), &weather);
  const roadnet::Router router(&TestMap().network);
  synth::SensorOptions sensor_options;
  sensor_options.gps_sigma_m = GetParam();
  sensor_options.outlier_prob = 0.0;
  sensor_options.timestamp_glitch_prob = 0.0;
  sensor_options.id_glitch_prob = 0.0;
  const synth::SensorModel sensor(sensor_options);

  Rng rng(23);
  double jaccard_sum = 0.0;
  int n = 0;
  while (n < 6) {
    const auto a = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(TestMap().network.num_vertices()) - 1));
    const auto b = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(TestMap().network.num_vertices()) - 1));
    const auto path = router.ShortestPath(a, b);
    if (!path.ok() || path->length_m < 900.0) continue;
    const auto samples = driver.Drive(*path, 3600.0, 1.0, &rng);
    trace::Trip trip;
    int64_t next_id = 1;
    trip.points = sensor.Observe(samples, 1, &next_id,
                                 TestMap().network.projection(), &rng);
    const auto matched = matcher.Match(trip);
    if (!matched.ok()) continue;
    std::vector<roadnet::EdgeId> truth_edges;
    for (const roadnet::PathStep& s : path->steps) {
      truth_edges.push_back(s.edge);
    }
    jaccard_sum +=
        mapmatch::EdgeJaccard(matched->DistinctEdges(), truth_edges);
    ++n;
  }
  // Recovery stays useful even at 3x the calibrated noise.
  EXPECT_GT(jaccard_sum / n, GetParam() <= 8.0 ? 0.6 : 0.4);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, MatcherNoiseTest,
                         testing::Values(2.0, 6.0, 12.0, 18.0));

// --- Pipeline-integrated interpolation ------------------------------------

TEST(CleaningInterpolationTest, FlagRestoresPoints) {
  // One trip with a moving silent gap.
  trace::TraceStore store;
  trace::Trip trip;
  trip.trip_id = 1;
  trip.car_id = 1;
  for (int i = 0; i < 6; ++i) {
    trace::RoutePoint p;
    p.point_id = i + 1;
    p.timestamp_s = 10.0 * i;
    p.position = geo::LatLon{65.0 + 0.0003 * i, 25.47};
    p.speed_kmh = 30.0;
    trip.points.push_back(p);
  }
  trace::RoutePoint far = trip.points.back();
  far.point_id = 7;
  far.timestamp_s += 120.0;
  far.position.lat_deg += 0.008;  // ~900 m silent hop
  trip.points.push_back(far);
  ASSERT_TRUE(store.AddTrip(trip).ok());

  clean::CleaningOptions off;
  clean::CleaningReport report_off;
  const std::vector<trace::Trip> plain =
      clean::CleanTrips(store, off, &report_off).value();
  clean::CleaningOptions on = off;
  on.restore_lost_points = true;
  clean::CleaningReport report_on;
  const std::vector<trace::Trip> restored =
      clean::CleanTrips(store, on, &report_on).value();

  EXPECT_EQ(report_off.interpolation.points_inserted, 0);
  EXPECT_GT(report_on.interpolation.points_inserted, 0);
  ASSERT_EQ(plain.size(), 1u);
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_GT(restored[0].points.size(), plain[0].points.size());
}

// --- Cleaning-stage properties over random messy traces ---------------------

constexpr uint64_t kTraceSweepSeed = 0x74726163;  // "trac"
constexpr int kTraceSweepSize = 200;

// A deliberately messy trace: a random walk with stand pauses, GPS
// spikes, duplicated points and shuffled arrival order — the same
// defect classes the cleaning stages exist for, each drawn from the
// trace's own MixSeed substream so the sweep is reproducible.
trace::Trip RandomMessyTrace(int index) {
  Rng rng(MixSeed(kTraceSweepSeed, static_cast<uint64_t>(index), 0));
  trace::Trip trip;
  trip.trip_id = index + 1;
  trip.car_id = 1 + index % 7;

  double t = rng.Uniform(0.0, 3600.0);
  geo::LatLon pos{65.0 + rng.Uniform(-0.01, 0.01),
                  25.47 + rng.Uniform(-0.01, 0.01)};
  int64_t id = 1;
  const int blocks = static_cast<int>(rng.UniformInt(2, 6));
  for (int block = 0; block < blocks; ++block) {
    // Driving stretch.
    const int drive_points = static_cast<int>(rng.UniformInt(5, 25));
    for (int k = 0; k < drive_points; ++k) {
      trace::RoutePoint p;
      p.point_id = id++;
      p.trip_id = trip.trip_id;
      p.timestamp_s = t;
      p.position = pos;
      p.speed_kmh = rng.Uniform(5.0, 60.0);
      trip.points.push_back(p);
      t += rng.Uniform(5.0, 45.0);
      pos.lat_deg += rng.Gaussian(0.0, 8e-4);
      pos.lon_deg += rng.Gaussian(0.0, 8e-4);
    }
    // Stand pause: stationary points over a window of minutes.
    if (rng.Bernoulli(0.7)) {
      const int pause_points = static_cast<int>(rng.UniformInt(2, 8));
      for (int k = 0; k < pause_points; ++k) {
        trace::RoutePoint p;
        p.point_id = id++;
        p.trip_id = trip.trip_id;
        p.timestamp_s = t;
        p.position = geo::LatLon{pos.lat_deg + rng.Uniform(-5e-5, 5e-5),
                                 pos.lon_deg + rng.Uniform(-5e-5, 5e-5)};
        p.speed_kmh = 0.0;
        trip.points.push_back(p);
        t += rng.Uniform(60.0, 240.0);
      }
    }
  }

  // GPS spikes.
  for (trace::RoutePoint& p : trip.points) {
    if (rng.Bernoulli(0.03)) p.position.lat_deg += rng.Uniform(0.02, 0.05);
  }
  // Duplicated uploads: same id and timestamp stored twice.
  if (rng.Bernoulli(0.5) && trip.points.size() > 2) {
    const size_t at = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(trip.points.size()) - 1));
    trip.points.insert(trip.points.begin() + static_cast<ptrdiff_t>(at),
                       trip.points[at]);
  }
  // Out-of-order arrival: a few random swaps.
  const int swaps = static_cast<int>(rng.UniformInt(0, 6));
  for (int s = 0; s < swaps; ++s) {
    const size_t a = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(trip.points.size()) - 1));
    const size_t b = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(trip.points.size()) - 1));
    std::swap(trip.points[a], trip.points[b]);
  }
  trip.RecomputeTotals();
  return trip;
}

// Flattened view of the cleaned output that ignores the segment ids
// (re-segmenting renames trip_id*1000+k to (trip_id*1000+k)*1000+0).
std::vector<std::tuple<int64_t, double, double, double, double>>
FlattenPoints(const std::vector<trace::Trip>& trips) {
  std::vector<std::tuple<int64_t, double, double, double, double>> out;
  for (const trace::Trip& t : trips) {
    for (const trace::RoutePoint& p : t.points) {
      out.emplace_back(p.point_id, p.timestamp_s, p.position.lat_deg,
                       p.position.lon_deg, p.speed_kmh);
    }
  }
  return out;
}

TEST(CleaningSweepTest, CleaningIsIdempotent) {
  trace::TraceStore store;
  for (int i = 0; i < kTraceSweepSize; ++i) {
    ASSERT_TRUE(store.AddTrip(RandomMessyTrace(i)).ok());
  }
  clean::CleaningReport first_report;
  const std::vector<trace::Trip> once =
      clean::CleanTrips(store, {}, &first_report).value();
  ASSERT_GT(once.size(), 0u);

  trace::TraceStore cleaned_store;
  for (const trace::Trip& t : once) {
    ASSERT_TRUE(cleaned_store.AddTrip(t).ok());
  }
  clean::CleaningReport second_report;
  const std::vector<trace::Trip> twice =
      clean::CleanTrips(cleaned_store, {}, &second_report).value();

  // Already-clean input: nothing repaired, filtered or re-split.
  EXPECT_EQ(second_report.order.trips_repaired_by_id, 0);
  EXPECT_EQ(second_report.order.trips_repaired_by_timestamp, 0);
  EXPECT_EQ(second_report.outliers.duplicates_removed, 0);
  EXPECT_EQ(second_report.outliers.spikes_removed, 0);
  EXPECT_EQ(second_report.outliers.implied_speed_removed, 0);
  EXPECT_EQ(twice.size(), once.size());
  EXPECT_EQ(FlattenPoints(twice), FlattenPoints(once));
}

TEST(CleaningSweepTest, OrderRepairOutputIsMonotoneInTimestamp) {
  for (int i = 0; i < kTraceSweepSize; ++i) {
    trace::Trip trip = RandomMessyTrace(i);
    clean::OrderRepairStats stats;
    clean::RepairTripOrder(&trip, &stats);
    for (size_t k = 1; k < trip.points.size(); ++k) {
      ASSERT_LE(trip.points[k - 1].timestamp_s, trip.points[k].timestamp_s)
          << "trace " << i << " not monotone at point " << k;
      ASSERT_LE(trip.points[k - 1].point_id, trip.points[k].point_id)
          << "trace " << i << " ids not monotone at point " << k;
    }
  }
}

TEST(CleaningSweepTest, SegmentationNeverKeepsAStopGapInsideASegment) {
  const clean::SegmentationOptions opt;
  for (int i = 0; i < kTraceSweepSize; ++i) {
    trace::Trip trip = RandomMessyTrace(i);
    clean::RepairTripOrder(&trip);  // segmentation expects monotone time
    const std::vector<trace::Trip> segments = clean::SegmentTrip(trip, opt);
    for (const trace::Trip& seg : segments) {
      // No rule-1 stop gap survives in an emitted segment. Replay the
      // splitter's anchor semantics: the anchor moves whenever a point
      // drifts beyond the tolerance, so only time spent near the
      // *current* anchor counts towards the stand-still window.
      if (!seg.points.empty()) {
        trace::RoutePoint anchor = seg.points.front();
        for (size_t k = 1; k < seg.points.size(); ++k) {
          const trace::RoutePoint& p = seg.points[k];
          if (geo::HaversineMeters(anchor.position, p.position) >
              opt.no_change_tolerance_m) {
            anchor = p;
            continue;
          }
          ASSERT_LT(p.timestamp_s - anchor.timestamp_s, opt.rule1_window_s)
              << "trace " << i << ": stationary run of the rule-1 window "
              << "length kept inside segment " << seg.trip_id;
        }
      }
      // And re-segmenting an emitted segment is a no-op (the segment
      // contains no remaining split point under any rule).
      if (trace::PathLengthMeters(seg.points) <= opt.rule5_length_m) {
        const std::vector<trace::Trip> again =
            clean::SegmentTrip(seg, opt);
        ASSERT_EQ(again.size(), 1u)
            << "trace " << i << ": segment " << seg.trip_id
            << " split again on re-segmentation";
        EXPECT_EQ(FlattenPoints(again),
                  FlattenPoints(std::vector<trace::Trip>{seg}));
      }
    }
  }
}

// --- Windowed ingestion over adversarial arrival streams ---------------------

constexpr int64_t kIngestSweepLag = 16;

// The messy-trace sweep pushed through the fault injector: duplicated,
// truncated and interleaved trips with glitched points — the worst
// store a stream source will ever be built from.
trace::TraceStore AdversarialStore() {
  std::vector<trace::Trip> trips;
  trips.reserve(kTraceSweepSize);
  for (int i = 0; i < kTraceSweepSize; ++i) {
    trips.push_back(RandomMessyTrace(i));
  }
  fault::FaultInjector injector(fault::FaultPlan::Uniform(0.05));
  fault::FaultReport report;
  injector.CorruptTrips(&trips, &report);
  return fault::RebuildStoreDroppingDuplicates(std::move(trips), &report)
      .value();
}

// The injector writes non-finite coordinates, and NaN breaks tuple
// equality (NaN != NaN), so the stream comparisons flatten to bit
// patterns: byte-identity is exactly the contract being proven.
uint64_t Bits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

std::vector<std::tuple<int64_t, uint64_t, uint64_t, uint64_t, uint64_t>>
BitFlattenPoints(const std::vector<trace::Trip>& trips) {
  std::vector<std::tuple<int64_t, uint64_t, uint64_t, uint64_t, uint64_t>>
      out;
  for (const trace::Trip& t : trips) {
    for (const trace::RoutePoint& p : t.points) {
      out.emplace_back(p.point_id, Bits(p.timestamp_s),
                       Bits(p.position.lat_deg), Bits(p.position.lon_deg),
                       Bits(p.speed_kmh));
    }
  }
  return out;
}

class ReplaySink final : public trace::TripSink {
 public:
  Status Consume(trace::Trip trip) override {
    trips.push_back(std::move(trip));
    return Status::OK();
  }
  std::vector<trace::Trip> trips;
};

// Bounded-window order repair over the adversarial sweep: displacement
// up to lag / 2 loses nothing and reproduces the batch (store) order
// exactly — window for window, point for point — and re-ingesting the
// released stream is a fixpoint: nothing buffers, nothing repairs.
TEST(IngestWindowSweepTest, BoundedShuffleMatchesBatchOrderAndIsAFixpoint) {
  const trace::TraceStore store = AdversarialStore();
  stream::IngestOptions options;
  options.reorder_lag = kIngestSweepLag;
  for (const stream::CarStream& canonical : stream::BuildCarStreams(store)) {
    std::vector<stream::StreamRecord> arrivals = canonical.records;
    stream::ShuffleArrivals(
        &arrivals,
        MixSeed(kTraceSweepSeed, static_cast<uint64_t>(canonical.car_id), 1),
        kIngestSweepLag / 2);

    ReplaySink sink;
    stream::IngestSession session(canonical.car_id, options, &sink);
    for (const stream::StreamRecord& rec : arrivals) {
      ASSERT_TRUE(session.Ingest(rec).ok());
    }
    ASSERT_TRUE(session.FinishStream().ok());

    const stream::IngestStats& s = session.stats();
    ASSERT_EQ(s.points_dropped_late, 0) << "car " << canonical.car_id;
    ASSERT_EQ(s.trip_markers_dropped_late, 0) << "car " << canonical.car_id;
    ASSERT_EQ(s.slots_declared_lost, 0) << "car " << canonical.car_id;
    ASSERT_EQ(s.windows_opened_implicit, 0) << "car " << canonical.car_id;
    ASSERT_LE(stream::IngestLatencyMax(s), kIngestSweepLag);
    ASSERT_LE(s.peak_buffered_records, kIngestSweepLag);

    // Batch order repair of the same arrivals is the store walk itself:
    // the released windows must replay it exactly.
    std::vector<trace::Trip> batch;
    for (const trace::Trip& t : store.trips()) {
      if (t.car_id == canonical.car_id) batch.push_back(t);
    }
    ASSERT_EQ(sink.trips.size(), batch.size()) << "car " << canonical.car_id;
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(sink.trips[i].trip_id, batch[i].trip_id);
      ASSERT_EQ(sink.trips[i].total_time_s, batch[i].total_time_s);
    }
    ASSERT_EQ(BitFlattenPoints(sink.trips), BitFlattenPoints(batch))
        << "car " << canonical.car_id;

    // Fixpoint: the released stream is already in canonical order, so a
    // second ingestion repairs nothing — zero latency, zero buffering,
    // zero drops, byte-identical output.
    trace::TraceStore released_store;
    for (const trace::Trip& t : sink.trips) {
      ASSERT_TRUE(released_store.AddTrip(t).ok());
    }
    const stream::CarStream replay =
        stream::BuildCarStream(released_store, canonical.car_id);
    ReplaySink sink_again;
    stream::IngestSession second(canonical.car_id, options, &sink_again);
    for (const stream::StreamRecord& rec : replay.records) {
      ASSERT_TRUE(second.Ingest(rec).ok());
    }
    ASSERT_TRUE(second.FinishStream().ok());
    EXPECT_EQ(stream::IngestLatencyMax(second.stats()), 0);
    EXPECT_EQ(second.stats().peak_buffered_records, 0);
    EXPECT_EQ(second.stats().points_dropped_late, 0);
    EXPECT_EQ(second.stats().slots_declared_lost, 0);
    EXPECT_EQ(BitFlattenPoints(sink_again.trips), BitFlattenPoints(sink.trips));
  }
}

// Displacement far beyond the window (4x the lag) must overwhelm it —
// and every overwhelmed record shows up in the ledger: offered ==
// released + dropped for points and markers alike, the sink holds
// exactly the released points, and the watermark bound still holds.
// Nothing is ever silently lost.
TEST(IngestWindowSweepTest, OutOfWindowArrivalsAreCountedNeverSilent) {
  const trace::TraceStore store = AdversarialStore();
  stream::IngestOptions options;
  options.reorder_lag = kIngestSweepLag;
  int64_t total_dropped = 0;
  int64_t total_lost = 0;
  for (const stream::CarStream& canonical : stream::BuildCarStreams(store)) {
    std::vector<stream::StreamRecord> arrivals = canonical.records;
    stream::ShuffleArrivals(
        &arrivals,
        MixSeed(kTraceSweepSeed, static_cast<uint64_t>(canonical.car_id), 2),
        4 * kIngestSweepLag);

    ReplaySink sink;
    stream::IngestSession session(canonical.car_id, options, &sink);
    for (const stream::StreamRecord& rec : arrivals) {
      ASSERT_TRUE(session.Ingest(rec).ok());
      ASSERT_LE(session.buffered_records(), kIngestSweepLag);
    }
    ASSERT_TRUE(session.FinishStream().ok());

    const stream::IngestStats& s = session.stats();
    ASSERT_EQ(s.points_offered, s.points_released + s.points_dropped_late)
        << "car " << canonical.car_id;
    ASSERT_EQ(s.trip_markers_offered,
              s.trip_markers_released + s.trip_markers_dropped_late)
        << "car " << canonical.car_id;
    int64_t sunk_points = 0;
    for (const trace::Trip& t : sink.trips) {
      sunk_points += static_cast<int64_t>(t.points.size());
    }
    ASSERT_EQ(sunk_points, s.points_released) << "car " << canonical.car_id;
    ASSERT_EQ(static_cast<int64_t>(sink.trips.size()), s.windows_closed);
    total_dropped += s.points_dropped_late + s.trip_markers_dropped_late;
    total_lost += s.slots_declared_lost;
  }
  // The sweep genuinely exercised the overload path.
  EXPECT_GT(total_dropped, 0);
  EXPECT_GT(total_lost, 0);
}

// --- Histogram invariants across seeds and shapes -----------------------------

class HistogramSweepTest : public testing::TestWithParam<int> {};

TEST_P(HistogramSweepTest, QuantilesAreMonotoneAndBounded) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const double lo = rng.Uniform(-50.0, 0.0);
  const double hi = lo + rng.Uniform(1.0, 100.0);
  Histogram h(lo, hi, 1 + static_cast<int>(rng.UniformInt(1, 64)));
  for (int i = 0; i < 500; ++i) {
    // Deliberately overshoot the range so clamping is exercised too.
    h.Add(rng.Gaussian((lo + hi) / 2.0, (hi - lo)));
  }
  // Quantile is non-decreasing in q and never leaves [lo, hi].
  double prev = h.Quantile(0.0);
  EXPECT_GE(prev, lo);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = h.Quantile(q);
    EXPECT_GE(cur, prev) << "seed " << seed << " q " << q;
    prev = cur;
  }
  EXPECT_LE(h.Quantile(1.0), hi);
  // The mode is the low edge of some bin, so it lies in [lo, hi).
  EXPECT_GE(h.Mode(), lo);
  EXPECT_LT(h.Mode(), hi);
}

TEST_P(HistogramSweepTest, NonFiniteMassNeverMovesQuantiles) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  Histogram clean(0.0, 50.0, 25);
  Histogram dirty(0.0, 50.0, 25);
  for (int i = 0; i < 300; ++i) {
    const double v = rng.Gaussian(25.0, 10.0);
    clean.Add(v);
    dirty.Add(v);
    if (i % 7 == 0) {
      dirty.Add(std::numeric_limits<double>::quiet_NaN());
      dirty.Add(std::numeric_limits<double>::infinity());
    }
  }
  EXPECT_EQ(dirty.total(), clean.total());
  EXPECT_GT(dirty.nonfinite(), 0);
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    EXPECT_DOUBLE_EQ(dirty.Quantile(q), clean.Quantile(q))
        << "seed " << seed << " q " << q;
  }
  EXPECT_DOUBLE_EQ(dirty.Mode(), clean.Mode());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramSweepTest,
                         testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace taxitrace
