// Polylines: the geometry of traffic elements, edges and driven routes.

#ifndef TAXITRACE_GEO_POLYLINE_H_
#define TAXITRACE_GEO_POLYLINE_H_

#include <vector>

#include "taxitrace/geo/geometry.h"

namespace taxitrace {
namespace geo {

/// The nearest location on a polyline to a query point.
struct PolylineProjection {
  EnPoint point;            ///< Closest point on the polyline.
  size_t segment_index = 0; ///< Index of the segment containing it.
  double t = 0.0;           ///< Parameter within that segment, [0, 1].
  double arc_length = 0.0;  ///< Distance from the start along the line.
  double distance = 0.0;    ///< Distance from the query point.
};

/// An ordered sequence of vertices in the local metric frame.
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<EnPoint> points);

  [[nodiscard]] const std::vector<EnPoint>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] size_t size() const { return points_.size(); }
  [[nodiscard]] const EnPoint& front() const { return points_.front(); }
  [[nodiscard]] const EnPoint& back() const { return points_.back(); }

  /// Appends a vertex.
  void Append(const EnPoint& p);

  /// Total arc length, metres.
  [[nodiscard]] double Length() const;

  /// Point at arc length `s` from the start, clamped to the line ends.
  [[nodiscard]] EnPoint Interpolate(double s) const;

  /// Nearest location on the line to `p`. Requires a non-empty line.
  [[nodiscard]] PolylineProjection Project(const EnPoint& p) const;

  /// Heading of the segment at index `i` (radians CCW from east).
  [[nodiscard]] double SegmentHeading(size_t i) const;

  /// Bounding box of all vertices.
  [[nodiscard]] Bbox Bounds() const;

  /// A copy with vertices in reverse order.
  [[nodiscard]] Polyline Reversed() const;

  /// Concatenates `other` onto the end; when the junction vertices
  /// coincide (within 1e-6 m) the duplicate is dropped.
  void Extend(const Polyline& other);

  /// Evenly resampled copy with samples at most `max_spacing` metres
  /// apart. Always keeps the original endpoints.
  [[nodiscard]] Polyline Resample(double max_spacing) const;

  /// The part of the line between arc lengths `s0` and `s1` (clamped).
  /// When s0 > s1 the result runs backwards along the line.
  [[nodiscard]] Polyline SubLine(double s0, double s1) const;

 private:
  std::vector<EnPoint> points_;
};

}  // namespace geo
}  // namespace taxitrace

#endif  // TAXITRACE_GEO_POLYLINE_H_
