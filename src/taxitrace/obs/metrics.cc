#include "taxitrace/obs/metrics.h"

namespace taxitrace {
namespace obs {

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::histogram(const std::string& name,
                                            double lo, double hi,
                                            int num_bins) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<HistogramMetric>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramMetric>(lo, hi, num_bins);
  }
  return slot.get();
}

std::vector<CounterSample> MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(CounterSample{name, counter->value()});
  }
  return out;
}

std::vector<GaugeSample> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.push_back(GaugeSample{name, gauge->value()});
  }
  return out;
}

std::vector<HistogramSample> MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, metric] : histograms_) {
    const Histogram h = metric->snapshot();
    HistogramSample sample;
    sample.name = name;
    sample.lo = h.BinLow(0);
    // BinLow is pure arithmetic (lo + bin * width), so the one-past-
    // the-end bin yields the histogram's upper bound.
    sample.hi = h.BinLow(h.num_bins());
    sample.counts.reserve(static_cast<size_t>(h.num_bins()));
    for (int b = 0; b < h.num_bins(); ++b) sample.counts.push_back(h.count(b));
    sample.total = h.total();
    sample.nonfinite = h.nonfinite();
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace obs
}  // namespace taxitrace
