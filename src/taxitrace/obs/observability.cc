#include "taxitrace/obs/observability.h"

#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace obs {

std::string SnapshotJson(const StudySnapshot& snapshot) {
  std::string out = "{\n";
  out += StrFormat("  \"schema\": \"taxitrace-metrics/1\",\n");
  out += StrFormat("  \"enabled\": %s,\n",
                   snapshot.enabled ? "true" : "false");

  out += "  \"funnel\": " + snapshot.funnel.Json() + ",\n";

  out += "  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("\n    \"%s\": %lld", snapshot.counters[i].name.c_str(),
                     static_cast<long long>(snapshot.counters[i].value));
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("\n    \"%s\": %.6g", snapshot.gauges[i].name.c_str(),
                     snapshot.gauges[i].value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "\n    \"%s\": {\"lo\": %.6g, \"hi\": %.6g, \"total\": %lld, "
        "\"nonfinite\": %lld, \"counts\": [",
        h.name.c_str(), h.lo, h.hi, static_cast<long long>(h.total),
        static_cast<long long>(h.nonfinite));
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ",";
      out += StrFormat("%lld", static_cast<long long>(h.counts[b]));
    }
    out += "]}";
  }
  out += snapshot.histograms.empty() ? "},\n" : "\n  },\n";

  out += "  \"spans\": " + TraceJson(snapshot.spans) + "\n";
  out += "}\n";
  return out;
}

std::string SnapshotText(const StudySnapshot& snapshot) {
  std::string out;
  if (!snapshot.funnel.empty()) {
    out += "Funnel:\n" + snapshot.funnel.Table() + "\n";
  }
  if (!snapshot.spans.empty()) {
    out += "Stage spans:\n" + TraceTree(snapshot.spans);
  }
  return out;
}

}  // namespace obs
}  // namespace taxitrace
