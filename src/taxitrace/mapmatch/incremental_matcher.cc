#include "taxitrace/mapmatch/incremental_matcher.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace taxitrace {
namespace mapmatch {
namespace {

// Movement heading at point i, derived from the surrounding fixes. A
// point is "stationary" (no usable heading) when its neighbours are
// within GPS noise.
struct PointHeading {
  double heading = 0.0;
  bool valid = false;
};

std::vector<PointHeading> ComputeHeadings(
    const std::vector<geo::EnPoint>& pts) {
  std::vector<PointHeading> headings(pts.size());
  constexpr double kMinMove = 12.0;  // metres; below this: GPS noise
  for (size_t i = 0; i < pts.size(); ++i) {
    const geo::EnPoint& prev = pts[i == 0 ? 0 : i - 1];
    const geo::EnPoint& next = pts[i + 1 < pts.size() ? i + 1 : i];
    const geo::Segment move{prev, next};
    if (move.Length() >= kMinMove) {
      headings[i] = PointHeading{move.Heading(), true};
    } else if (i > 0) {
      headings[i] = headings[i - 1];  // keep the last known heading
    }
  }
  return headings;
}

void AppendSteps(std::vector<roadnet::PathStep>* steps,
                 const std::vector<roadnet::PathStep>& extra) {
  for (const roadnet::PathStep& s : extra) {
    // Collapse repeats of the current edge regardless of direction: GPS
    // noise makes stationary vehicles "bounce" back and forth within one
    // edge, which is not progress along the route.
    if (!steps->empty() && steps->back().edge == s.edge) continue;
    steps->push_back(s);
  }
}

}  // namespace

std::vector<roadnet::EdgeId> MatchedRoute::DistinctEdges() const {
  std::set<roadnet::EdgeId> distinct;
  for (const roadnet::PathStep& s : steps) distinct.insert(s.edge);
  return std::vector<roadnet::EdgeId>(distinct.begin(), distinct.end());
}

IncrementalMatcher::IncrementalMatcher(const roadnet::RoadNetwork* network,
                                       const roadnet::SpatialIndex* index,
                                       MatcherOptions options)
    : network_(network),
      index_(index),
      gap_filler_(network, options.gap),
      options_(options) {}

Result<MatchedRoute> IncrementalMatcher::Match(const trace::Trip& trip,
                                               RouteCache* cache) const {
  if (trip.points.size() < 2) {
    return Status::InvalidArgument("trip has fewer than two points");
  }
  const geo::LocalProjection& proj = network_->projection();
  std::vector<geo::EnPoint> pts(trip.points.size());
  for (size_t i = 0; i < trip.points.size(); ++i) {
    pts[i] = proj.Forward(trip.points[i].position);
  }
  const std::vector<PointHeading> headings = ComputeHeadings(pts);

  MatchedRoute route;
  bool anchored = false;
  roadnet::EdgePosition current{};
  geo::EnPoint current_pt{};

  for (size_t i = 0; i < pts.size(); ++i) {
    const std::vector<MatchCandidate> candidates =
        FindCandidates(*index_, pts[i], headings[i].heading,
                       headings[i].valid, options_.score);
    if (candidates.empty()) {
      ++route.points_skipped;
      continue;
    }
    if (!anchored) {
      const MatchCandidate& best = candidates.front();
      current = roadnet::EdgePosition{best.edge, best.projection.arc_length};
      current_pt = pts[i];
      route.points.push_back(
          MatchedPoint{i, current, best.projection.distance});
      route.geometry = geo::Polyline({best.projection.point});
      anchored = true;
      continue;
    }

    // Try candidates in score order; accept the first whose network
    // connection from the current position is a plausible continuation.
    // Stationary points (no movement beyond GPS noise, no usable
    // heading) stay on the current match — noise at a junction would
    // otherwise bounce the match onto cross streets.
    const double straight = geo::Distance(current_pt, pts[i]);
    if (straight < 3.0 || !headings[i].valid) {
      continue;
    }
    const MatchCandidate* chosen = nullptr;
    Result<roadnet::Path> chosen_path =
        Status::NotFound("no candidate tried");
    for (const MatchCandidate& cand : candidates) {
      const roadnet::EdgePosition cand_pos{cand.edge,
                                           cand.projection.arc_length};
      Result<roadnet::Path> path =
          gap_filler_.Connect(current, cand_pos, cache);
      if (!path.ok()) continue;
      if (gap_filler_.IsPlausible(path->length_m, straight)) {
        chosen = &cand;
        chosen_path = std::move(path);
        break;
      }
      if (!chosen) {  // remember the best-scored fallback
        chosen = &cand;
        chosen_path = std::move(path);
      }
    }
    if (chosen == nullptr || !chosen_path.ok()) {
      ++route.points_skipped;
      continue;
    }
    if (gap_filler_.IsGap(chosen_path->length_m)) ++route.gaps_filled;

    current = roadnet::EdgePosition{chosen->edge,
                                    chosen->projection.arc_length};
    current_pt = pts[i];
    route.points.push_back(
        MatchedPoint{i, current, chosen->projection.distance});
    AppendSteps(&route.steps, chosen_path->steps);
    route.geometry.Extend(chosen_path->geometry);
    route.length_m += chosen_path->length_m;
  }

  if (route.points.size() < 2) {
    return Status::NotFound("fewer than two points could be matched");
  }
  return route;
}

}  // namespace mapmatch
}  // namespace taxitrace
