#include "taxitrace/roadnet/spatial_index.h"

// tt-lint: allow-file(relaxed-atomic): query tallies batched into a
// few relaxed adds per query and exported via stats() for obs metrics;
// sums of deterministic per-query work, never fed into StudyResults.

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace taxitrace {
namespace roadnet {

SpatialIndex::SpatialIndex(const RoadNetwork* network, double cell_size_m)
    : network_(network),
      cell_size_m_(cell_size_m),
      tile_size_m_(network->tiling().tile_size_m),
      scratch_(std::make_shared<WorkerLocal<QueryScratch>>()),
      query_stats_(std::make_shared<AtomicStats>()) {
  // Queries translate edge ids to ordinals; warm the mapping (and the
  // CSR it shares staleness with) on the constructing thread.
  network_->WarmAdjacency();

  // Build pass: collect each edge's cells into a keyed map first (the
  // set of cells is sparse and unknown up front), then flatten into the
  // per-tile dense grids below.
  std::unordered_map<CellKey, std::vector<EdgeId>, CellKeyHash> cells;
  edge_bounds_.assign(network_->num_edges(), geo::Bbox::Empty());
  size_t next_ordinal = 0;
  network_->ForEachEdge([&](const Edge& e) {
    // ForEachEdge runs in tile-major order, so this counter IS the
    // edge's ordinal (RoadNetwork::EdgeOrdinal).
    const size_t ordinal = next_ordinal++;
    const std::vector<geo::EnPoint>& pts = e.geometry.points();
    if (pts.empty()) {
      // An edge with no geometry has no position to index; dropping it
      // here would make Nearby/Nearest silently blind to it, so the
      // drop is counted and surfaced through stats().
      ++empty_geometry_edges_;
      return;
    }
    geo::Bbox& bounds = edge_bounds_[ordinal];
    for (const geo::EnPoint& p : pts) bounds.Extend(p);
    std::unordered_set<uint64_t> edge_cells;
    const auto insert_cell = [&](const geo::EnPoint& p) {
      const CellKey key = KeyFor(p);
      const uint64_t packed =
          (static_cast<uint64_t>(static_cast<uint32_t>(key.cx)) << 32) |
          static_cast<uint32_t>(key.cy);
      if (edge_cells.insert(packed).second) {
        cells[key].push_back(e.id);
      }
    };
    if (pts.size() == 1) {
      // Single-point (zero-length) geometry: the old segment loop
      // skipped these edges entirely and queries near them missed a
      // real edge. Index the lone point's cell instead.
      insert_cell(pts[0]);
      return;
    }
    for (size_t i = 0; i + 1 < pts.size(); ++i) {
      // Walk the segment at sub-cell steps so no crossed cell is missed.
      const double len = geo::Distance(pts[i], pts[i + 1]);
      const int steps =
          std::max(1, static_cast<int>(std::ceil(len / (cell_size_m_ / 2))));
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        insert_cell(pts[i] + t * (pts[i + 1] - pts[i]));
      }
    }
  });

  if (cells.empty()) return;

  // Group the occupied cells by owning tile, tracking each tile's cell
  // extent (hash-map iteration only feeds mins/maxes and counts, so the
  // result is iteration-order independent).
  struct Extent {
    int32_t min_cx = 0;
    int32_t max_cx = 0;
    int32_t min_cy = 0;
    int32_t max_cy = 0;
    bool init = false;
  };
  std::unordered_map<TileCoord, Extent, TileCoordHash> extents;
  for (const auto& [key, edge_list] : cells) {
    Extent& ex = extents[OwnerTileOf(key.cx, key.cy)];
    if (!ex.init) {
      ex = Extent{key.cx, key.cx, key.cy, key.cy, true};
    } else {
      ex.min_cx = std::min(ex.min_cx, key.cx);
      ex.max_cx = std::max(ex.max_cx, key.cx);
      ex.min_cy = std::min(ex.min_cy, key.cy);
      ex.max_cy = std::max(ex.max_cy, key.cy);
    }
  }
  std::vector<TileCoord> coords;
  coords.reserve(extents.size());
  for (const auto& [coord, ex] : extents) coords.push_back(coord);
  std::sort(coords.begin(), coords.end(),
            [](const TileCoord& a, const TileCoord& b) {
              return a.ty != b.ty ? a.ty < b.ty : a.tx < b.tx;
            });

  grids_.resize(coords.size());
  for (size_t i = 0; i < coords.size(); ++i) {
    const Extent& ex = extents.at(coords[i]);
    TileGrid& g = grids_[i];
    g.coord = coords[i];
    g.min_cx = ex.min_cx;
    g.min_cy = ex.min_cy;
    g.cols = ex.max_cx - ex.min_cx + 1;
    g.rows = ex.max_cy - ex.min_cy + 1;
    const size_t num_cells =
        static_cast<size_t>(g.cols) * static_cast<size_t>(g.rows);
    g.cell_offsets.assign(num_cells + 1, 0);
    tile_directory_.emplace(coords[i], static_cast<int32_t>(i));
  }
  for (const auto& [key, edge_list] : cells) {
    TileGrid& g =
        grids_[static_cast<size_t>(tile_directory_.at(OwnerTileOf(
            key.cx, key.cy)))];
    const size_t i = static_cast<size_t>(key.cy - g.min_cy) *
                         static_cast<size_t>(g.cols) +
                     static_cast<size_t>(key.cx - g.min_cx);
    g.cell_offsets[i + 1] = static_cast<int32_t>(edge_list.size());
  }
  for (TileGrid& g : grids_) {
    for (size_t i = 1; i < g.cell_offsets.size(); ++i) {
      g.cell_offsets[i] += g.cell_offsets[i - 1];
    }
    g.cell_edges.resize(static_cast<size_t>(g.cell_offsets.back()));
  }
  for (const auto& [key, edge_list] : cells) {
    TileGrid& g =
        grids_[static_cast<size_t>(tile_directory_.at(OwnerTileOf(
            key.cx, key.cy)))];
    const size_t i = static_cast<size_t>(key.cy - g.min_cy) *
                         static_cast<size_t>(g.cols) +
                     static_cast<size_t>(key.cx - g.min_cx);
    std::copy(edge_list.begin(), edge_list.end(),
              g.cell_edges.begin() + g.cell_offsets[i]);
  }
}

SpatialIndex::CellKey SpatialIndex::KeyFor(const geo::EnPoint& p) const {
  return CellKey{static_cast<int32_t>(std::floor(p.x / cell_size_m_)),
                 static_cast<int32_t>(std::floor(p.y / cell_size_m_))};
}

TileCoord SpatialIndex::OwnerTileOf(int32_t cx, int32_t cy) const {
  if (tile_size_m_ <= 0.0) return TileCoord{0, 0};
  // Owner of a cell = tile containing the cell's min corner; computed
  // from the lattice coordinate so build and query always agree.
  return TileCoord{
      static_cast<int32_t>(
          std::floor(static_cast<double>(cx) * cell_size_m_ / tile_size_m_)),
      static_cast<int32_t>(
          std::floor(static_cast<double>(cy) * cell_size_m_ / tile_size_m_))};
}

std::vector<EdgeCandidate> SpatialIndex::Nearby(const geo::EnPoint& p,
                                                double radius_m) const {
  // Gather candidate edges from all cells overlapping the query disc's
  // bounding square, padded by one cell so edge geometry that merely
  // passes near a cell corner is still found.
  const int reach =
      static_cast<int>(std::ceil(radius_m / cell_size_m_)) + 1;
  const CellKey center = KeyFor(p);
  const int64_t span = 2 * static_cast<int64_t>(reach) + 1;
  const int64_t cells_probed = span * span;
  QueryScratch& scratch = scratch_->Local();
  if (scratch.seen_stamp.size() < edge_bounds_.size()) {
    scratch.seen_stamp.assign(edge_bounds_.size(), 0);
    scratch.generation = 0;
  }
  if (++scratch.generation == 0) {  // stamp wrap: invalidate everything
    std::fill(scratch.seen_stamp.begin(), scratch.seen_stamp.end(), 0);
    scratch.generation = 1;
  }
  const uint32_t gen = scratch.generation;
  std::vector<EdgeId>& gathered = scratch.gathered;
  gathered.clear();

  const int32_t lo_cx = center.cx - reach;
  const int32_t hi_cx = center.cx + reach;
  const int32_t lo_cy = center.cy - reach;
  const int32_t hi_cy = center.cy + reach;
  const TileCoord lo_t = OwnerTileOf(lo_cx, lo_cy);
  const TileCoord hi_t = OwnerTileOf(hi_cx, hi_cy);
  int64_t tiles_probed = 0;
  for (int32_t tty = lo_t.ty; tty <= hi_t.ty; ++tty) {
    for (int32_t ttx = lo_t.tx; ttx <= hi_t.tx; ++ttx) {
      ++tiles_probed;
      const auto it = tile_directory_.find(TileCoord{ttx, tty});
      if (it == tile_directory_.end()) continue;
      const TileGrid& g = grids_[static_cast<size_t>(it->second)];
      // Clip the query window to this tile grid's occupied extent.
      const int32_t scan_lo_cx = std::max(lo_cx, g.min_cx);
      const int32_t scan_hi_cx = std::min(hi_cx, g.min_cx + g.cols - 1);
      const int32_t scan_lo_cy = std::max(lo_cy, g.min_cy);
      const int32_t scan_hi_cy = std::min(hi_cy, g.min_cy + g.rows - 1);
      // Every cell in the clipped rectangle is owned by this tile:
      // ownership is a per-axis floor, so a grid's occupied extent
      // never reaches into a neighbouring tile's cell range.
      for (int32_t cy = scan_lo_cy; cy <= scan_hi_cy; ++cy) {
        for (int32_t cx = scan_lo_cx; cx <= scan_hi_cx; ++cx) {
          const size_t i = static_cast<size_t>(cy - g.min_cy) *
                               static_cast<size_t>(g.cols) +
                           static_cast<size_t>(cx - g.min_cx);
          for (int32_t k = g.cell_offsets[i]; k < g.cell_offsets[i + 1];
               ++k) {
            const EdgeId id = g.cell_edges[static_cast<size_t>(k)];
            uint32_t& stamp =
                scratch.seen_stamp[network_->EdgeOrdinal(id)];
            if (stamp != gen) {
              stamp = gen;
              gathered.push_back(id);
            }
          }
        }
      }
    }
  }

  // Pre-projection reject against the edge's geometry bounds. The slack
  // keeps the reject strictly conservative against floating-point
  // rounding of the squared distance: an edge is only skipped when its
  // whole bounding box - and therefore its polyline - is beyond the
  // radius, so the surviving projections produce exactly the candidates
  // the unfiltered loop would.
  const double limit = radius_m + 1e-6;
  const double limit_sq = limit * limit;
  std::vector<EdgeCandidate> out;
  out.reserve(8);
  for (EdgeId id : gathered) {
    const geo::Bbox& b = edge_bounds_[network_->EdgeOrdinal(id)];
    const double ddx = std::max({b.min_x - p.x, 0.0, p.x - b.max_x});
    const double ddy = std::max({b.min_y - p.y, 0.0, p.y - b.max_y});
    if (ddx * ddx + ddy * ddy > limit_sq) continue;
    const geo::PolylineProjection proj =
        network_->edge(id).geometry.Project(p);
    if (proj.distance <= radius_m) {
      out.push_back(EdgeCandidate{id, proj});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EdgeCandidate& a, const EdgeCandidate& b) {
              if (a.projection.distance != b.projection.distance) {
                return a.projection.distance < b.projection.distance;
              }
              return a.edge < b.edge;
            });

  // Counters are batched into a few relaxed adds per query; sums over
  // deterministic per-query work, so totals are thread-count-invariant.
  query_stats_->queries.fetch_add(1, std::memory_order_relaxed);
  query_stats_->cells_probed.fetch_add(cells_probed,
                                       std::memory_order_relaxed);
  query_stats_->tiles_probed.fetch_add(tiles_probed,
                                       std::memory_order_relaxed);
  query_stats_->candidates.fetch_add(
      static_cast<int64_t>(gathered.size()),
      std::memory_order_relaxed);
  query_stats_->hits.fetch_add(static_cast<int64_t>(out.size()),
                               std::memory_order_relaxed);
  return out;
}

std::optional<EdgeCandidate> SpatialIndex::Nearest(
    const geo::EnPoint& p, double max_radius_m) const {
  // Expand the search ring until a hit is found or the cap is reached.
  double radius = cell_size_m_;
  while (radius < max_radius_m * 2) {
    std::vector<EdgeCandidate> found = Nearby(p, std::min(radius, max_radius_m));
    if (!found.empty()) return found.front();
    if (radius >= max_radius_m) break;
    radius *= 2;
  }
  return std::nullopt;
}

size_t SpatialIndex::ApproxMemoryBytes() const {
  size_t bytes = sizeof(SpatialIndex);
  bytes += edge_bounds_.capacity() * sizeof(geo::Bbox);
  bytes += tile_directory_.size() *
           (sizeof(TileCoord) + sizeof(int32_t) + 2 * sizeof(void*));
  for (const TileGrid& g : grids_) {
    bytes += sizeof(TileGrid);
    bytes += g.cell_offsets.capacity() * sizeof(int32_t);
    bytes += g.cell_edges.capacity() * sizeof(EdgeId);
  }
  return bytes;
}

SpatialIndexStats SpatialIndex::stats() const {
  SpatialIndexStats s;
  s.queries = query_stats_->queries.load(std::memory_order_relaxed);
  s.cells_probed = query_stats_->cells_probed.load(std::memory_order_relaxed);
  s.tiles_probed = query_stats_->tiles_probed.load(std::memory_order_relaxed);
  s.candidates = query_stats_->candidates.load(std::memory_order_relaxed);
  s.hits = query_stats_->hits.load(std::memory_order_relaxed);
  s.empty_geometry_edges = empty_geometry_edges_;
  return s;
}

}  // namespace roadnet
}  // namespace taxitrace
