# Empty compiler generated dependencies file for bench_table1_map_preparation.
# This may be replaced when dependencies are built.
