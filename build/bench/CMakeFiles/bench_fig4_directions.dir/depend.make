# Empty dependencies file for bench_fig4_directions.
# This may be replaced when dependencies are built.
