#include "taxitrace/mapmatch/match_report.h"

#include <algorithm>

namespace taxitrace {
namespace mapmatch {

void MatchReport::Add(const MatchedRoute& route) {
  ++routes;
  skipped_points += route.points_skipped;
  gaps_filled += route.gaps_filled;
  total_length_km += route.length_m / 1000.0;
  for (const MatchedPoint& p : route.points) {
    ++matched_points;
    mean_snap_distance_m +=
        (p.distance_m - mean_snap_distance_m) /
        static_cast<double>(matched_points);
    max_snap_distance_m = std::max(max_snap_distance_m, p.distance_m);
  }
}

}  // namespace mapmatch
}  // namespace taxitrace
