// Property test for the routing overhaul: the production Router (CSR
// adjacency, generation-stamped scratch, goal-directed A* with Dijkstra
// fallback) must return the same paths as a plain textbook Dijkstra —
// identical step sequences and lengths, not just equal costs — across
// hundreds of random OD pairs, with and without edge cost multipliers.
//
// The reference below is deliberately the naive historical algorithm:
// freshly allocated O(|V|) arrays, a (dist, vertex)-keyed binary heap,
// strict-improvement relaxation in OutArcs order. A* explores in a
// different heap order, but relaxation is strict in both, so prev
// pointers — and therefore reconstructed paths — agree whenever
// shortest paths are unique at full double precision, which random
// geometric lengths make overwhelmingly likely.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "taxitrace/common/random.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/synth/city_map_generator.h"

namespace taxitrace {
namespace roadnet {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ReferencePath {
  bool found = false;
  std::vector<PathStep> steps;
  double cost = 0.0;
};

// Textbook Dijkstra from `from`, stopping when `to` settles.
ReferencePath ReferenceDijkstra(
    const RoadNetwork& net, VertexId from, VertexId to,
    const std::vector<double>* edge_cost_multiplier = nullptr) {
  const size_t n = net.num_vertices();
  std::vector<double> dist(n, kInf);
  std::vector<EdgeId> prev_edge(n, kInvalidEdge);
  std::vector<VertexId> prev_vertex(n, kInvalidVertex);
  using HeapEntry = std::pair<double, VertexId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  dist[static_cast<size_t>(from)] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[static_cast<size_t>(v)]) continue;  // stale
    if (v == to) break;
    for (const HalfEdge& arc : net.OutArcs(v)) {
      if (!arc.traversable_out) continue;
      const double mult =
          edge_cost_multiplier == nullptr
              ? 1.0
              : (*edge_cost_multiplier)[static_cast<size_t>(arc.edge)];
      const double nd = d + arc.length_m * mult;
      if (nd < dist[static_cast<size_t>(arc.head)]) {
        dist[static_cast<size_t>(arc.head)] = nd;
        prev_edge[static_cast<size_t>(arc.head)] = arc.edge;
        prev_vertex[static_cast<size_t>(arc.head)] = v;
        heap.emplace(nd, arc.head);
      }
    }
  }

  ReferencePath result;
  if (!(dist[static_cast<size_t>(to)] < kInf)) return result;
  result.found = true;
  result.cost = dist[static_cast<size_t>(to)];
  std::vector<PathStep> rev;
  VertexId v = to;
  while (v != from) {
    const EdgeId e = prev_edge[static_cast<size_t>(v)];
    const VertexId p = prev_vertex[static_cast<size_t>(v)];
    rev.push_back(PathStep{e, net.edge(e).from == p});
    v = p;
  }
  result.steps.assign(rev.rbegin(), rev.rend());
  return result;
}

const synth::CityMap& TestMap() {
  static const synth::CityMap map = [] {
    synth::CityMapOptions options;
    return synth::GenerateCityMap(options).value();
  }();
  return map;
}

void ExpectSamePath(const ReferencePath& ref, const Result<Path>& got,
                    VertexId from, VertexId to) {
  ASSERT_EQ(ref.found, got.ok())
      << "reachability disagrees for " << from << " -> " << to;
  if (!ref.found) return;
  const RoadNetwork& net = TestMap().network;
  ASSERT_EQ(ref.steps.size(), got->steps.size())
      << "step count disagrees for " << from << " -> " << to;
  double real_length = 0.0;
  for (size_t i = 0; i < ref.steps.size(); ++i) {
    EXPECT_EQ(ref.steps[i].edge, got->steps[i].edge)
        << "step " << i << " of " << from << " -> " << to;
    EXPECT_EQ(ref.steps[i].forward, got->steps[i].forward)
        << "step " << i << " of " << from << " -> " << to;
    real_length += net.edge(ref.steps[i].edge).length_m;
  }
  // ShortestPath reports the real geometric length regardless of the
  // multiplier used for route choice.
  EXPECT_EQ(real_length, got->length_m) << from << " -> " << to;
}

// 200+ random OD pairs, no multiplier: goal-directed A* throughout.
TEST(RouterEquivalenceTest, MatchesReferenceDijkstraOnRandomPairs) {
  const RoadNetwork& net = TestMap().network;
  const Router router(&net);
  const auto n = static_cast<int64_t>(net.num_vertices());
  Rng rng(1234);
  int reachable = 0;
  for (int i = 0; i < 220; ++i) {
    const auto from = static_cast<VertexId>(rng.UniformInt(0, n - 1));
    const auto to = static_cast<VertexId>(rng.UniformInt(0, n - 1));
    const ReferencePath ref = ReferenceDijkstra(net, from, to);
    ExpectSamePath(ref, router.ShortestPath(from, to), from, to);
    reachable += ref.found ? 1 : 0;
  }
  // The generated city core is strongly connected; if nearly every pair
  // were unreachable the test would be vacuous.
  EXPECT_GT(reachable, 150);
  EXPECT_EQ(router.stats().goal_directed_searches, router.stats().searches);
}

// Multipliers >= 1 keep the straight-line heuristic admissible: the
// router must stay goal-directed and still agree with the reference.
TEST(RouterEquivalenceTest, MatchesReferenceWithInflatingMultipliers) {
  const RoadNetwork& net = TestMap().network;
  const Router router(&net);
  const auto n = static_cast<int64_t>(net.num_vertices());
  Rng rng(5678);
  std::vector<double> multiplier(net.num_edges());
  for (double& m : multiplier) m = rng.Uniform(1.0, 1.8);
  for (int i = 0; i < 110; ++i) {
    const auto from = static_cast<VertexId>(rng.UniformInt(0, n - 1));
    const auto to = static_cast<VertexId>(rng.UniformInt(0, n - 1));
    ExpectSamePath(ReferenceDijkstra(net, from, to, &multiplier),
                   router.ShortestPath(from, to, &multiplier), from, to);
  }
  EXPECT_EQ(router.stats().goal_directed_searches, router.stats().searches);
}

// A single multiplier below 1 breaks admissibility; the router must
// fall back to plain Dijkstra (goal_directed_searches stays 0) and the
// paths must still match the reference run with the same costs.
TEST(RouterEquivalenceTest, MatchesReferenceUnderDijkstraFallback) {
  const RoadNetwork& net = TestMap().network;
  const Router router(&net);
  const auto n = static_cast<int64_t>(net.num_vertices());
  Rng rng(9876);
  std::vector<double> multiplier(net.num_edges());
  for (double& m : multiplier) m = rng.Uniform(0.6, 1.5);
  for (int i = 0; i < 110; ++i) {
    const auto from = static_cast<VertexId>(rng.UniformInt(0, n - 1));
    const auto to = static_cast<VertexId>(rng.UniformInt(0, n - 1));
    ExpectSamePath(ReferenceDijkstra(net, from, to, &multiplier),
                   router.ShortestPath(from, to, &multiplier), from, to);
  }
  EXPECT_GT(router.stats().searches, 0);
  EXPECT_EQ(router.stats().goal_directed_searches, 0);
}

// The same multipliers served through the EdgeCostModel interface (the
// lazy-noise hook the simulator uses) must reproduce the vector
// overload's paths step for step. With inflating multipliers both
// overloads run the identical unscaled A*; with sub-unity multipliers
// the vector overload falls back to Dijkstra while the model overload
// keeps a MinMultiplier()-scaled (still admissible) heuristic — the
// costs are the same either way, so so are the shortest paths.
class VectorCostModel final : public EdgeCostModel {
 public:
  explicit VectorCostModel(const std::vector<double>* mult)
      : mult_(mult),
        min_(*std::min_element(mult->begin(), mult->end())) {}
  double Multiplier(EdgeId edge) const override {
    return (*mult_)[static_cast<size_t>(edge)];
  }
  double MinMultiplier() const override { return min_; }

 private:
  const std::vector<double>* mult_;
  double min_;
};

TEST(RouterEquivalenceTest, CostModelMatchesVectorOverload) {
  const RoadNetwork& net = TestMap().network;
  const Router router(&net);
  const auto n = static_cast<int64_t>(net.num_vertices());
  Rng rng(24680);
  std::vector<double> multiplier(net.num_edges());
  for (const auto& [lo, hi] : {std::pair<double, double>{1.0, 1.8},
                               std::pair<double, double>{0.6, 1.5}}) {
    for (double& m : multiplier) m = rng.Uniform(lo, hi);
    const VectorCostModel model(&multiplier);
    for (int i = 0; i < 60; ++i) {
      const auto from = static_cast<VertexId>(rng.UniformInt(0, n - 1));
      const auto to = static_cast<VertexId>(rng.UniformInt(0, n - 1));
      const Result<Path> via_vector =
          router.ShortestPath(from, to, &multiplier);
      const Result<Path> via_model = router.ShortestPath(from, to, model);
      ASSERT_EQ(via_vector.ok(), via_model.ok()) << from << "->" << to;
      if (!via_vector.ok()) continue;
      ASSERT_EQ(via_vector->steps.size(), via_model->steps.size())
          << from << "->" << to;
      for (size_t s = 0; s < via_vector->steps.size(); ++s) {
        EXPECT_EQ(via_vector->steps[s].edge, via_model->steps[s].edge);
        EXPECT_EQ(via_vector->steps[s].forward,
                  via_model->steps[s].forward);
      }
      EXPECT_EQ(via_vector->length_m, via_model->length_m);
    }
  }
  // The model overload never fell back to plain Dijkstra: sub-unity
  // multipliers only scaled its heuristic.
  EXPECT_GT(router.stats().goal_directed_searches, 0);
}

}  // namespace
}  // namespace roadnet
}  // namespace taxitrace
