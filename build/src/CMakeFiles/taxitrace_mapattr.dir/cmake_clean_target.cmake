file(REMOVE_RECURSE
  "libtaxitrace_mapattr.a"
)
