// Table 2: the time-based segmentation rules applied to the raw fleet
// traces (Section IV-C), plus the surrounding cleaning stages.

#include "bench_util.h"
#include "taxitrace/clean/cleaning_pipeline.h"
#include "taxitrace/synth/fleet_simulator.h"

namespace taxitrace {
namespace {

void PrintTable2() {
  const core::StudyResults& r = benchutil::FullResults();
  std::printf("%s\n", core::FormatTable2Report(r.cleaning_report).c_str());
  std::printf(
      "Paper shape: almost 30000 raw taxi trips are considered (ours: "
      "%lld); day-long engine-on runs split into per-ride segments;\n"
      "segments with <5 points or >30 km are removed.\n\n",
      static_cast<long long>(r.raw_trips));
}

// A small raw fleet reused across benchmark iterations.
const trace::TraceStore& RawFleet() {
  static const trace::TraceStore* store = [] {
    auto map = synth::GenerateCityMap().value();
    synth::WeatherModel weather(3, 14);
    synth::FleetOptions options;
    options.num_cars = 2;
    options.num_days = 14;
    synth::FleetSimulator fleet(&map, &weather, options);
    return new trace::TraceStore(std::move(fleet.Run().value().store));
  }();
  return *store;
}

void BM_CleanTrips(benchmark::State& state) {
  const trace::TraceStore& store = RawFleet();
  for (auto _ : state) {
    clean::CleaningReport report;
    auto cleaned = clean::CleanTrips(store, {}, &report).value();
    benchmark::DoNotOptimize(cleaned);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(RawFleet().NumPoints()));
}
BENCHMARK(BM_CleanTrips)->Unit(benchmark::kMillisecond);

void BM_SegmentationOnly(benchmark::State& state) {
  const trace::TraceStore& store = RawFleet();
  std::vector<trace::Trip> trips = store.trips();
  for (trace::Trip& t : trips) clean::RepairTripOrder(&t);
  for (auto _ : state) {
    auto segments = clean::SegmentTrips(trips);
    benchmark::DoNotOptimize(segments);
  }
}
BENCHMARK(BM_SegmentationOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintTable2)
