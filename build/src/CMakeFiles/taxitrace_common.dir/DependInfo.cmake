
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxitrace/common/csv.cc" "src/CMakeFiles/taxitrace_common.dir/taxitrace/common/csv.cc.o" "gcc" "src/CMakeFiles/taxitrace_common.dir/taxitrace/common/csv.cc.o.d"
  "/root/repo/src/taxitrace/common/histogram.cc" "src/CMakeFiles/taxitrace_common.dir/taxitrace/common/histogram.cc.o" "gcc" "src/CMakeFiles/taxitrace_common.dir/taxitrace/common/histogram.cc.o.d"
  "/root/repo/src/taxitrace/common/logging.cc" "src/CMakeFiles/taxitrace_common.dir/taxitrace/common/logging.cc.o" "gcc" "src/CMakeFiles/taxitrace_common.dir/taxitrace/common/logging.cc.o.d"
  "/root/repo/src/taxitrace/common/random.cc" "src/CMakeFiles/taxitrace_common.dir/taxitrace/common/random.cc.o" "gcc" "src/CMakeFiles/taxitrace_common.dir/taxitrace/common/random.cc.o.d"
  "/root/repo/src/taxitrace/common/status.cc" "src/CMakeFiles/taxitrace_common.dir/taxitrace/common/status.cc.o" "gcc" "src/CMakeFiles/taxitrace_common.dir/taxitrace/common/status.cc.o.d"
  "/root/repo/src/taxitrace/common/strings.cc" "src/CMakeFiles/taxitrace_common.dir/taxitrace/common/strings.cc.o" "gcc" "src/CMakeFiles/taxitrace_common.dir/taxitrace/common/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
