#include "taxitrace/synth/sensor_model.h"

#include <algorithm>
#include <cmath>

namespace taxitrace {
namespace synth {
namespace {

// Transport-defect pass with a caller-owned rebuild buffer, so the
// per-drive hot path allocates nothing in steady state. Same RNG draws
// and output as the historical in-place version.
void ApplyDefectsWithBuffer(const SensorOptions& options,
                            std::vector<trace::RoutePoint>* points,
                            Rng* rng,
                            std::vector<trace::RoutePoint>* tmp) {
  std::vector<trace::RoutePoint>& pts = *points;
  if (pts.size() < 4) return;

  // Latency scrambling: swap the timestamps (or the ids) of a few
  // adjacent pairs, so exactly one of the two orderings reconstructs the
  // true sequence.
  if (rng->Bernoulli(options.timestamp_glitch_prob)) {
    for (int k = 0; k < options.glitch_swaps; ++k) {
      const size_t i = static_cast<size_t>(
          rng->UniformInt(1, static_cast<int64_t>(pts.size()) - 2));
      std::swap(pts[i].timestamp_s, pts[i + 1].timestamp_s);
    }
  } else if (rng->Bernoulli(options.id_glitch_prob)) {
    for (int k = 0; k < options.glitch_swaps; ++k) {
      const size_t i = static_cast<size_t>(
          rng->UniformInt(1, static_cast<int64_t>(pts.size()) - 2));
      std::swap(pts[i].point_id, pts[i + 1].point_id);
    }
  }

  // Drops and duplicates (interior points only, so trips keep their
  // endpoints).
  std::vector<trace::RoutePoint>& out = *tmp;
  out.clear();
  out.reserve(pts.size() + 2);
  for (size_t i = 0; i < pts.size(); ++i) {
    const bool interior = i > 0 && i + 1 < pts.size();
    if (interior && rng->Bernoulli(options.drop_prob)) continue;
    out.push_back(pts[i]);
    if (interior && rng->Bernoulli(options.dup_prob)) {
      out.push_back(pts[i]);  // duplicated record (same id, timestamp)
    }
  }
  pts.swap(out);
}

}  // namespace

SensorModel::SensorModel(SensorOptions options) : options_(options) {}

std::vector<trace::RoutePoint> SensorModel::Observe(
    const std::vector<DriveSample>& samples, int64_t trip_id,
    int64_t* next_point_id, const geo::LocalProjection& projection,
    Rng* rng) const {
  SensorScratch scratch;
  Observe(samples, trip_id, next_point_id, projection, rng, &scratch);
  return std::move(scratch.points);
}

const std::vector<trace::RoutePoint>& SensorModel::Observe(
    const std::vector<DriveSample>& samples, int64_t trip_id,
    int64_t* next_point_id, const geo::LocalProjection& projection,
    Rng* rng, SensorScratch* scratch) const {
  std::vector<trace::RoutePoint>& points = scratch->points;
  points.clear();
  if (samples.empty()) return points;
  // Threshold emission keeps a fraction of the samples; sizing from the
  // sample count caps the reallocation ladder without overshooting.
  points.reserve(samples.size() / 4 + 8);

  double pending_fuel = 0.0;
  const DriveSample* last_emitted = nullptr;
  geo::EnPoint last_pos{};

  const auto emit = [&](const DriveSample& s) {
    geo::EnPoint noisy =
        s.position + geo::EnPoint{rng->Gaussian(0.0, options_.gps_sigma_m),
                                  rng->Gaussian(0.0, options_.gps_sigma_m)};
    if (rng->Bernoulli(options_.outlier_prob)) {
      const double angle = rng->Uniform(0.0, 2.0 * M_PI);
      noisy = noisy + geo::EnPoint{options_.outlier_jump_m * std::cos(angle),
                                   options_.outlier_jump_m * std::sin(angle)};
    }
    trace::RoutePoint p;
    p.point_id = (*next_point_id)++;
    p.trip_id = trip_id;
    p.timestamp_s = s.t_s;
    p.position = projection.Inverse(noisy);
    p.speed_kmh = std::max(
        0.0, s.speed_kmh + rng->Gaussian(0.0, options_.speed_sigma_kmh));
    p.fuel_delta_ml = pending_fuel + s.fuel_delta_ml;
    pending_fuel = 0.0;
    points.push_back(p);
    last_emitted = &s;
    last_pos = s.position;
  };

  for (size_t i = 0; i < samples.size(); ++i) {
    const DriveSample& s = samples[i];
    if (last_emitted == nullptr || i + 1 == samples.size()) {
      emit(s);
      continue;
    }
    const double dt = s.t_s - last_emitted->t_s;
    const bool moving = s.speed_kmh > 3.0;
    const double heading_delta =
        geo::AngleBetweenHeadings(s.heading_rad, last_emitted->heading_rad) *
        180.0 / M_PI;
    const bool trip_change =
        (moving && heading_delta > options_.heading_threshold_deg) ||
        std::abs(s.speed_kmh - last_emitted->speed_kmh) >
            options_.speed_threshold_kmh ||
        geo::Distance(s.position, last_pos) > options_.max_distance_m ||
        dt > (moving ? options_.max_moving_interval_s
                     : options_.max_stationary_interval_s);
    if (trip_change) {
      emit(s);
    } else {
      pending_fuel += s.fuel_delta_ml;
    }
  }
  ApplyDefectsWithBuffer(options_, &points, rng, &scratch->defect_tmp);
  return points;
}

void SensorModel::ApplyTransportDefects(
    std::vector<trace::RoutePoint>* points, Rng* rng) const {
  std::vector<trace::RoutePoint> tmp;
  ApplyDefectsWithBuffer(options_, points, rng, &tmp);
}

}  // namespace synth
}  // namespace taxitrace
