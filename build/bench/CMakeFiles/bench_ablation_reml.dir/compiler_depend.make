# Empty compiler generated dependencies file for bench_ablation_reml.
# This may be replaced when dependencies are built.
