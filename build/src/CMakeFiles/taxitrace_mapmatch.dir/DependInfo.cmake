
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxitrace/mapmatch/candidates.cc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/candidates.cc.o" "gcc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/candidates.cc.o.d"
  "/root/repo/src/taxitrace/mapmatch/gap_filler.cc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/gap_filler.cc.o" "gcc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/gap_filler.cc.o.d"
  "/root/repo/src/taxitrace/mapmatch/hmm_matcher.cc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/hmm_matcher.cc.o" "gcc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/hmm_matcher.cc.o.d"
  "/root/repo/src/taxitrace/mapmatch/incremental_matcher.cc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/incremental_matcher.cc.o" "gcc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/incremental_matcher.cc.o.d"
  "/root/repo/src/taxitrace/mapmatch/match_quality.cc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/match_quality.cc.o" "gcc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/match_quality.cc.o.d"
  "/root/repo/src/taxitrace/mapmatch/match_report.cc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/match_report.cc.o" "gcc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/match_report.cc.o.d"
  "/root/repo/src/taxitrace/mapmatch/nearest_edge_matcher.cc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/nearest_edge_matcher.cc.o" "gcc" "src/CMakeFiles/taxitrace_mapmatch.dir/taxitrace/mapmatch/nearest_edge_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taxitrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
