#include "taxitrace/geo/geometry.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace taxitrace {
namespace geo {

EnPoint operator+(const EnPoint& a, const EnPoint& b) {
  return EnPoint{a.x + b.x, a.y + b.y};
}

EnPoint operator-(const EnPoint& a, const EnPoint& b) {
  return EnPoint{a.x - b.x, a.y - b.y};
}

EnPoint operator*(double s, const EnPoint& p) {
  return EnPoint{s * p.x, s * p.y};
}

double Dot(const EnPoint& a, const EnPoint& b) { return a.x * b.x + a.y * b.y; }

double Cross(const EnPoint& a, const EnPoint& b) {
  return a.x * b.y - a.y * b.x;
}

double Norm(const EnPoint& p) { return std::hypot(p.x, p.y); }

double Distance(const EnPoint& a, const EnPoint& b) { return Norm(b - a); }

double Segment::Heading() const {
  const EnPoint d = b - a;
  if (d.x == 0.0 && d.y == 0.0) return 0.0;
  return std::atan2(d.y, d.x);
}

PointProjection ProjectOntoSegment(const EnPoint& p, const Segment& s) {
  const EnPoint d = s.b - s.a;
  const double len2 = Dot(d, d);
  PointProjection out;
  if (len2 == 0.0) {
    out.point = s.a;
    out.t = 0.0;
  } else {
    out.t = std::clamp(Dot(p - s.a, d) / len2, 0.0, 1.0);
    out.point = s.a + out.t * d;
  }
  out.distance = Distance(p, out.point);
  return out;
}

std::optional<EnPoint> SegmentIntersection(const Segment& s1,
                                           const Segment& s2) {
  const EnPoint r = s1.b - s1.a;
  const EnPoint s = s2.b - s2.a;
  const EnPoint qp = s2.a - s1.a;
  const double rxs = Cross(r, s);
  const double qpxr = Cross(qp, r);
  constexpr double kEps = 1e-12;

  if (std::abs(rxs) < kEps) {
    if (std::abs(qpxr) >= kEps) return std::nullopt;  // parallel, disjoint
    // Collinear: check 1-D overlap along r.
    const double rr = Dot(r, r);
    if (rr < kEps) {
      // s1 degenerates to a point; test it against s2.
      const PointProjection proj = ProjectOntoSegment(s1.a, s2);
      if (proj.distance < 1e-9) return s1.a;
      return std::nullopt;
    }
    double t0 = Dot(qp, r) / rr;
    double t1 = t0 + Dot(s, r) / rr;
    if (t0 > t1) std::swap(t0, t1);
    const double lo = std::max(t0, 0.0);
    const double hi = std::min(t1, 1.0);
    if (lo > hi) return std::nullopt;
    return s1.a + lo * r;
  }
  const double t = Cross(qp, s) / rxs;
  const double u = qpxr / rxs;
  constexpr double kTol = 1e-9;
  if (t < -kTol || t > 1.0 + kTol || u < -kTol || u > 1.0 + kTol) {
    return std::nullopt;
  }
  return s1.a + std::clamp(t, 0.0, 1.0) * r;
}

double AngleBetweenHeadings(double h1, double h2) {
  double d = std::fmod(std::abs(h1 - h2), 2.0 * M_PI);
  if (d > M_PI) d = 2.0 * M_PI - d;
  return d;
}

double UndirectedAngleBetweenHeadings(double h1, double h2) {
  const double d = AngleBetweenHeadings(h1, h2);
  return d > M_PI / 2.0 ? M_PI - d : d;
}

Bbox Bbox::Empty() {
  constexpr double inf = std::numeric_limits<double>::infinity();
  return Bbox{inf, inf, -inf, -inf};
}

void Bbox::Extend(const EnPoint& p) {
  min_x = std::min(min_x, p.x);
  min_y = std::min(min_y, p.y);
  max_x = std::max(max_x, p.x);
  max_y = std::max(max_y, p.y);
}

void Bbox::Extend(const Bbox& other) {
  if (!other.IsValid()) return;
  min_x = std::min(min_x, other.min_x);
  min_y = std::min(min_y, other.min_y);
  max_x = std::max(max_x, other.max_x);
  max_y = std::max(max_y, other.max_y);
}

Bbox Bbox::Inflated(double margin) const {
  return Bbox{min_x - margin, min_y - margin, max_x + margin,
              max_y + margin};
}

bool Bbox::Contains(const EnPoint& p) const {
  return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
}

bool Bbox::Intersects(const Bbox& other) const {
  return min_x <= other.max_x && other.min_x <= max_x &&
         min_y <= other.max_y && other.min_y <= max_y;
}

}  // namespace geo
}  // namespace taxitrace
