// Fig. 4: taxi 1 point speeds categorised by direction (T-S, S-T, T-L,
// L-T).

#include "bench_util.h"
#include "taxitrace/analysis/summary_stats.h"
#include "taxitrace/core/figures.h"

namespace taxitrace {
namespace {

void PrintFig4() {
  const core::StudyResults& r = benchutil::FullResults();
  std::printf("FIG 4. Taxi 1 data categorised by direction:\n");
  std::printf("  direction  points   mean km/h  median km/h\n");
  for (const char* dir : {"T-S", "S-T", "T-L", "L-T"}) {
    std::vector<double> speeds;
    for (const core::MatchedTransition& mt : r.transitions) {
      if (mt.record.car_id != 1 || mt.record.direction != dir) continue;
      for (const trace::RoutePoint& p : mt.transition.segment.points) {
        speeds.push_back(p.speed_kmh);
      }
    }
    const analysis::Summary s = analysis::Summarize(std::move(speeds));
    std::printf("  %-9s %7lld  %9.1f  %11.1f\n", dir,
                static_cast<long long>(s.n), s.mean, s.median);
  }
  benchutil::EmitFigureFile("fig4_directions_taxi1.csv",
                            core::SpeedPointsCsv(r, 1));
  std::printf(
      "Paper shape: the same corridors light up per direction; S<->T "
      "speeds sit below T<->L speeds.\n\n");
}

void BM_DirectionSplit(benchmark::State& state) {
  const core::StudyResults& r = benchutil::FullResults();
  for (auto _ : state) {
    double sums[4] = {};
    int64_t counts[4] = {};
    for (const core::MatchedTransition& mt : r.transitions) {
      int d = 0;
      if (mt.record.direction == "S-T") d = 1;
      if (mt.record.direction == "T-L") d = 2;
      if (mt.record.direction == "L-T") d = 3;
      for (const trace::RoutePoint& p : mt.transition.segment.points) {
        sums[d] += p.speed_kmh;
        ++counts[d];
      }
    }
    benchmark::DoNotOptimize(sums);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_DirectionSplit)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintFig4)
