// Known-bad: ordered containers keyed or sorted by pointer value.

#include "taxitrace/core/fake.h"

namespace taxitrace {

struct Vertex;
struct Item;

void BadPointerKeys() {
  std::map<const Vertex*, int> by_vertex;  // expect(pointer-keyed-order)
  std::set<Vertex*> visited;               // expect(pointer-keyed-order)
  std::priority_queue<Item*> queue;        // expect(pointer-keyed-order)
  std::set<int, std::less<int*>> weird;    // expect(pointer-keyed-order)
  (void)by_vertex;
  (void)visited;
  (void)queue;
  (void)weird;
}

}  // namespace taxitrace
