// Thick-geometry origin/destination gates (Section IV-D, Fig. 2).
//
// The origin and destination roads are artificially made thicker so that
// routes deviating slightly from the mapped road still register, and a
// route only counts as crossing a gate when it passes through the thick
// polygon at an angle close to the road axis (i.e., actually driving
// along the road rather than crossing it).

#ifndef TAXITRACE_ODSELECT_OD_GATE_H_
#define TAXITRACE_ODSELECT_OD_GATE_H_

#include <string>
#include <vector>

#include "taxitrace/geo/polygon.h"

namespace taxitrace {
namespace odselect {

/// Gate construction parameters.
struct OdGateOptions {
  /// Half-width of the thick geometry, metres.
  double half_width_m = 60.0;
  /// Maximum deviation from the road axis for a crossing to count,
  /// degrees.
  double max_angle_deg = 35.0;
};

/// One thick-geometry gate built from an inbound-oriented road centre
/// line.
class OdGate {
 public:
  /// Direction of a detected gate traversal.
  enum class Crossing : unsigned char {
    kNone,      ///< No traversal, or angle outside the window.
    kInbound,   ///< Along the inbound axis (entering the area).
    kOutbound,  ///< Against the inbound axis (leaving the area).
  };

  /// Builds the gate. `inbound_geometry` runs from outside the area
  /// towards the centre.
  OdGate(std::string name, geo::Polyline inbound_geometry,
         const OdGateOptions& options = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const geo::Polygon& polygon() const { return polygon_; }
  [[nodiscard]] const geo::Polyline& geometry() const { return geometry_; }

  /// Classifies the movement a -> b (consecutive route points in the
  /// local frame) against this gate.
  [[nodiscard]]
  Crossing Classify(const geo::EnPoint& a, const geo::EnPoint& b) const;

  /// Distance from `p` to the gate's road centre line, metres.
  [[nodiscard]] double DistanceToRoad(const geo::EnPoint& p) const;

 private:
  std::string name_;
  geo::Polyline geometry_;
  geo::Polygon polygon_;
  OdGateOptions options_;
};

}  // namespace odselect
}  // namespace taxitrace

#endif  // TAXITRACE_ODSELECT_OD_GATE_H_
