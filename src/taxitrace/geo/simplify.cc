#include "taxitrace/geo/simplify.h"

#include <vector>

namespace taxitrace {
namespace geo {
namespace {

void SimplifyRange(const std::vector<EnPoint>& pts, size_t first,
                   size_t last, double tolerance,
                   std::vector<bool>* keep) {
  if (last <= first + 1) return;
  const Segment base{pts[first], pts[last]};
  double worst = -1.0;
  size_t worst_index = first;
  for (size_t i = first + 1; i < last; ++i) {
    const double d = ProjectOntoSegment(pts[i], base).distance;
    if (d > worst) {
      worst = d;
      worst_index = i;
    }
  }
  if (worst > tolerance) {
    (*keep)[worst_index] = true;
    SimplifyRange(pts, first, worst_index, tolerance, keep);
    SimplifyRange(pts, worst_index, last, tolerance, keep);
  }
}

}  // namespace

Polyline Simplify(const Polyline& line, double tolerance_m) {
  const std::vector<EnPoint>& pts = line.points();
  if (pts.size() <= 2 || tolerance_m <= 0.0) return line;
  std::vector<bool> keep(pts.size(), false);
  keep.front() = keep.back() = true;
  SimplifyRange(pts, 0, pts.size() - 1, tolerance_m, &keep);
  std::vector<EnPoint> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (keep[i]) out.push_back(pts[i]);
  }
  return Polyline(std::move(out));
}

}  // namespace geo
}  // namespace taxitrace
