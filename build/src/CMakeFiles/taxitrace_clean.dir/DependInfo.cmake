
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxitrace/clean/cleaning_pipeline.cc" "src/CMakeFiles/taxitrace_clean.dir/taxitrace/clean/cleaning_pipeline.cc.o" "gcc" "src/CMakeFiles/taxitrace_clean.dir/taxitrace/clean/cleaning_pipeline.cc.o.d"
  "/root/repo/src/taxitrace/clean/interpolation.cc" "src/CMakeFiles/taxitrace_clean.dir/taxitrace/clean/interpolation.cc.o" "gcc" "src/CMakeFiles/taxitrace_clean.dir/taxitrace/clean/interpolation.cc.o.d"
  "/root/repo/src/taxitrace/clean/order_repair.cc" "src/CMakeFiles/taxitrace_clean.dir/taxitrace/clean/order_repair.cc.o" "gcc" "src/CMakeFiles/taxitrace_clean.dir/taxitrace/clean/order_repair.cc.o.d"
  "/root/repo/src/taxitrace/clean/outlier_filter.cc" "src/CMakeFiles/taxitrace_clean.dir/taxitrace/clean/outlier_filter.cc.o" "gcc" "src/CMakeFiles/taxitrace_clean.dir/taxitrace/clean/outlier_filter.cc.o.d"
  "/root/repo/src/taxitrace/clean/segmentation.cc" "src/CMakeFiles/taxitrace_clean.dir/taxitrace/clean/segmentation.cc.o" "gcc" "src/CMakeFiles/taxitrace_clean.dir/taxitrace/clean/segmentation.cc.o.d"
  "/root/repo/src/taxitrace/clean/trip_filter.cc" "src/CMakeFiles/taxitrace_clean.dir/taxitrace/clean/trip_filter.cc.o" "gcc" "src/CMakeFiles/taxitrace_clean.dir/taxitrace/clean/trip_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taxitrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
