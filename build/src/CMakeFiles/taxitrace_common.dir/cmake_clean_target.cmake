file(REMOVE_RECURSE
  "libtaxitrace_common.a"
)
