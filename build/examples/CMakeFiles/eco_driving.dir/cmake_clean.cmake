file(REMOVE_RECURSE
  "CMakeFiles/eco_driving.dir/eco_driving.cc.o"
  "CMakeFiles/eco_driving.dir/eco_driving.cc.o.d"
  "eco_driving"
  "eco_driving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_driving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
