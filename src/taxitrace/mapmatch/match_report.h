// Aggregate matching diagnostics over many matched routes — the health
// report an operator checks before trusting downstream statistics.

#ifndef TAXITRACE_MAPMATCH_MATCH_REPORT_H_
#define TAXITRACE_MAPMATCH_MATCH_REPORT_H_

#include "taxitrace/mapmatch/incremental_matcher.h"

namespace taxitrace {
namespace mapmatch {

/// Aggregate over a set of matched routes.
struct MatchReport {
  int64_t routes = 0;
  int64_t matched_points = 0;
  int64_t skipped_points = 0;
  int64_t gaps_filled = 0;
  double mean_snap_distance_m = 0.0;
  double max_snap_distance_m = 0.0;
  double total_length_km = 0.0;

  /// Fraction of points that could not be matched.
  [[nodiscard]] double SkipRate() const {
    const int64_t total = matched_points + skipped_points;
    return total > 0
               ? static_cast<double>(skipped_points) /
                     static_cast<double>(total)
               : 0.0;
  }

  /// Gaps per matched kilometre.
  [[nodiscard]] double GapsPerKm() const {
    return total_length_km > 0.0
               ? static_cast<double>(gaps_filled) / total_length_km
               : 0.0;
  }

  /// Folds one matched route into the aggregate.
  void Add(const MatchedRoute& route);
};

}  // namespace mapmatch
}  // namespace taxitrace

#endif  // TAXITRACE_MAPMATCH_MATCH_REPORT_H_
