#include "taxitrace/trace/trace_query.h"

namespace taxitrace {
namespace trace {

std::vector<const Trip*> TripsInTimeRange(const TraceStore& store,
                                          double t0_s, double t1_s) {
  std::vector<const Trip*> out;
  for (const Trip& trip : store.trips()) {
    if (trip.points.empty()) continue;
    if (trip.EndTime() >= t0_s && trip.StartTime() <= t1_s) {
      out.push_back(&trip);
    }
  }
  return out;
}

std::vector<const Trip*> TripsIntersectingBbox(
    const TraceStore& store, const geo::Bbox& box,
    const geo::LocalProjection& projection) {
  std::vector<const Trip*> out;
  for (const Trip& trip : store.trips()) {
    for (const RoutePoint& p : trip.points) {
      if (box.Contains(projection.Forward(p.position))) {
        out.push_back(&trip);
        break;
      }
    }
  }
  return out;
}

std::vector<const Trip*> TripsIntersectingPolygon(
    const TraceStore& store, const geo::Polygon& polygon,
    const geo::LocalProjection& projection) {
  std::vector<const Trip*> out;
  const geo::Bbox bounds = polygon.Bounds();
  for (const Trip& trip : store.trips()) {
    for (const RoutePoint& p : trip.points) {
      const geo::EnPoint local = projection.Forward(p.position);
      if (bounds.Contains(local) && polygon.Contains(local)) {
        out.push_back(&trip);
        break;
      }
    }
  }
  return out;
}

int64_t CountPointsWithinPolygon(const TraceStore& store,
                                 const geo::Polygon& polygon,
                                 const geo::LocalProjection& projection) {
  int64_t count = 0;
  const geo::Bbox bounds = polygon.Bounds();
  for (const Trip& trip : store.trips()) {
    for (const RoutePoint& p : trip.points) {
      const geo::EnPoint local = projection.Forward(p.position);
      if (bounds.Contains(local) && polygon.Contains(local)) ++count;
    }
  }
  return count;
}

geo::Bbox TripBounds(const Trip& trip,
                     const geo::LocalProjection& projection) {
  geo::Bbox box = geo::Bbox::Empty();
  for (const RoutePoint& p : trip.points) {
    box.Extend(projection.Forward(p.position));
  }
  return box;
}

}  // namespace trace
}  // namespace taxitrace
