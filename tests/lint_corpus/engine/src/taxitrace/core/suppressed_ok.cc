// A reasoned line suppression on the preceding line: the finding is
// consumed, no engine finding is raised.

#include "taxitrace/core/fake.h"

namespace taxitrace {

void Fine(std::atomic<int>& c) {
  // tt-lint: allow(relaxed-atomic): fixture counter, never read by results
  c.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace taxitrace
