// Fig. 3: the cleaned and preprocessed point-speed map for taxi 1 —
// every transition point with its position and measured speed.

#include "bench_util.h"
#include "taxitrace/core/figures.h"

namespace taxitrace {
namespace {

void PrintFig3() {
  const core::StudyResults& r = benchutil::FullResults();
  const std::string csv = core::SpeedPointsCsv(r, 1);
  std::printf("FIG 3. Cleaned speed data for taxi 1 (series preview):\n");
  benchutil::PrintPreview(csv, 8);
  benchutil::EmitFigureFile("fig3_speed_map_taxi1.csv", csv);
  int64_t points = 0;
  double mean = 0.0;
  for (const core::MatchedTransition& mt : r.transitions) {
    if (mt.record.car_id != 1) continue;
    for (const trace::RoutePoint& p : mt.transition.segment.points) {
      ++points;
      mean += p.speed_kmh;
    }
  }
  if (points > 0) mean /= static_cast<double>(points);
  std::printf(
      "Taxi 1 measured speed points: %lld (paper: 4186), mean %.1f "
      "km/h.\nPaper shape: speeds colour the driven corridors between "
      "the T, S, L gates, slowest in the centre.\n\n",
      static_cast<long long>(points), mean);
}

void BM_SpeedPointsCsv(benchmark::State& state) {
  const core::StudyResults& r = benchutil::FullResults();
  for (auto _ : state) {
    auto csv = core::SpeedPointsCsv(r, 1);
    benchmark::DoNotOptimize(csv);
  }
}
BENCHMARK(BM_SpeedPointsCsv)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintFig3)
