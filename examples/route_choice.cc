// Route-choice analysis: the paper's §VII outlook ("personalised route
// recommendation") made concrete. Groups the matched S->T transitions by
// the road sequence actually driven, compares the alternatives' times
// and fuel, and profiles the busiest corridor to locate its slow spots.
//
//   $ ./route_choice

#include <cstdio>
#include <string>
#include <vector>

#include "taxitrace/analysis/route_frequency.h"
#include "taxitrace/analysis/speed_profile.h"
#include "taxitrace/core/pipeline.h"

int main() {
  using namespace taxitrace;

  // A somewhat longer reduced study for denser route statistics.
  core::StudyConfig config = core::StudyConfig::SmallStudy();
  config.fleet.num_days = 60;
  core::Pipeline pipeline(config);
  const Result<core::StudyResults> run = pipeline.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const core::StudyResults& r = *run;

  std::vector<analysis::TransitionRecord> records;
  std::vector<mapmatch::MatchedRoute> routes;
  for (const core::MatchedTransition& mt : r.transitions) {
    records.push_back(mt.record);
    routes.push_back(mt.route);
  }
  // Taxi drivers wobble by a block or two within one "route": a loose
  // similarity threshold groups those wobbles into one alternative.
  analysis::RouteFrequencyOptions grouping;
  grouping.similarity_threshold = 0.55;
  const std::vector<analysis::RouteAlternative> alternatives =
      analysis::GroupRouteAlternatives(records, routes, grouping);

  std::printf("Route alternatives per direction (%zu transitions):\n",
              records.size());
  std::printf(
      "  direction  share   n   time(min)  dist(km)  fuel(ml)  low%%\n");
  for (const analysis::RouteAlternative& alt : alternatives) {
    if (alt.count < 2) continue;
    std::printf("  %-9s %5.0f%% %4lld   %9.1f  %8.2f  %8.0f  %4.0f\n",
                alt.direction.c_str(), 100.0 * alt.share,
                static_cast<long long>(alt.count),
                60.0 * alt.mean_time_h, alt.mean_distance_km,
                alt.mean_fuel_ml, 100.0 * alt.mean_low_speed_share);
  }

  for (const char* dir : {"S-T", "T-L"}) {
    const analysis::RouteAlternative* fastest =
        analysis::FastestAlternative(alternatives, dir);
    if (fastest != nullptr) {
      std::printf(
          "\nRecommended %s route: the %.0f%%-share alternative at "
          "%.1f min / %.0f ml on average.\n",
          dir, 100.0 * fastest->share, 60.0 * fastest->mean_time_h,
          fastest->mean_fuel_ml);
    }
  }

  // Profile the S->T corridor: where does it lose time?
  const Result<const synth::GateRoad*> s_gate = r.map.FindGate("S");
  const Result<const synth::GateRoad*> t_gate = r.map.FindGate("T");
  if (s_gate.ok() && t_gate.ok()) {
    const roadnet::Router router(&r.map.network);
    const Result<roadnet::Path> corridor = router.ShortestPath(
        (*s_gate)->terminal_vertex, (*t_gate)->terminal_vertex);
    if (corridor.ok()) {
      std::vector<const trace::Trip*> st_trips;
      for (const core::MatchedTransition& mt : r.transitions) {
        if (mt.record.direction == "S-T") {
          st_trips.push_back(&mt.transition.segment);
        }
      }
      const std::vector<analysis::ProfileBin> profile =
          analysis::BuildSpeedProfile(st_trips, corridor->geometry,
                                      r.map.network.projection());
      std::printf("\nS->T corridor speed profile (100 m bins):\n");
      std::printf("  arc (m)        n   mean km/h\n");
      for (const analysis::ProfileBin& bin : profile) {
        if (bin.n == 0) continue;
        std::printf("  %4.0f-%-4.0f  %5lld   %9.1f\n", bin.arc_start_m,
                    bin.arc_end_m, static_cast<long long>(bin.n),
                    bin.mean_speed_kmh);
      }
      const analysis::ProfileBin* slowest =
          analysis::SlowestBin(profile);
      if (slowest != nullptr) {
        std::printf(
            "\nSlowest stretch: %.0f-%.0f m into the corridor "
            "(%.1f km/h mean) — the downtown crowd/hotspot zone.\n",
            slowest->arc_start_m, slowest->arc_end_m,
            slowest->mean_speed_kmh);
      }
    }
  }
  return 0;
}
