# Empty compiler generated dependencies file for route_inspector.
# This may be replaced when dependencies are built.
