file(REMOVE_RECURSE
  "CMakeFiles/pedestrian_test.dir/pedestrian_test.cc.o"
  "CMakeFiles/pedestrian_test.dir/pedestrian_test.cc.o.d"
  "pedestrian_test"
  "pedestrian_test.pdb"
  "pedestrian_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pedestrian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
