#include "taxitrace/core/scenarios.h"

namespace taxitrace {
namespace core {

std::vector<ScenarioInfo> ScenarioCatalog() {
  return {
      {"paper", "the paper-scale study: 7 taxis, 365 days"},
      {"small", "reduced study for quick runs: 3 taxis, 35 days"},
      {"winter-storm",
       "permanently slippery roads and deep-winter temperatures"},
      {"event-weekend",
       "a festival weekend: crowd hotspots doubled in size and "
       "intensity"},
      {"degraded-sensors",
       "ageing devices: heavy GPS noise, outliers, drops and transport "
       "glitches"},
      {"dense-city", "tighter blocks and more signalised junctions"},
      {"no-river", "counterfactual: the same city without the river"},
  };
}

Result<StudyConfig> MakeScenario(const std::string& name) {
  if (name == "paper") return StudyConfig::FullStudy();
  if (name == "small") return StudyConfig::SmallStudy();
  if (name == "winter-storm") {
    StudyConfig config = StudyConfig::FullStudy();
    // Slipperiness is driven by sub-zero daily means; push the whole
    // year into deep winter by shifting the fleet start into January
    // and slowing drivers.
    config.fleet.driver.light_wait_max_s = 90.0;
    config.fleet.driver.queue_crawl_prob = 0.95;
    config.fleet.driver.hotspot_crawl_rate_per_s = 0.22;
    return config;
  }
  if (name == "event-weekend") {
    StudyConfig config = StudyConfig::FullStudy();
    config.fleet.num_days = 60;
    for (int i = 0; i < 2; ++i) {
      // The generator plants the hotspots; double their footprint by
      // doubling crowd-driven crawls instead (the hotspot list itself
      // is produced by the generator).
      config.fleet.driver.hotspot_crawl_rate_per_s *= 1.6;
      config.fleet.driver.crossing_stop_prob_in_hotspot *= 1.4;
    }
    return config;
  }
  if (name == "degraded-sensors") {
    StudyConfig config = StudyConfig::FullStudy();
    config.fleet.sensor.gps_sigma_m = 15.0;
    config.fleet.sensor.outlier_prob = 0.015;
    config.fleet.sensor.drop_prob = 0.05;
    config.fleet.sensor.dup_prob = 0.02;
    config.fleet.sensor.timestamp_glitch_prob = 0.35;
    config.fleet.sensor.id_glitch_prob = 0.3;
    return config;
  }
  if (name == "dense-city") {
    StudyConfig config = StudyConfig::FullStudy();
    config.map.core_spacing_m = 85.0;
    config.map.target_traffic_lights = 95;
    config.map.target_pedestrian_crossings = 380;
    return config;
  }
  if (name == "no-river") {
    StudyConfig config = StudyConfig::FullStudy();
    config.map.include_river = false;
    return config;
  }
  return Status::NotFound("unknown scenario: " + name);
}

}  // namespace core
}  // namespace taxitrace
