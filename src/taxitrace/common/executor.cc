#include "taxitrace/common/executor.h"

// tt-lint: allow-file(relaxed-atomic): the relaxed RMWs here are the
// work-claiming counter (each index claimed exactly once, results land
// in per-index slots) and load-stat tallies exported for obs metrics;
// neither can change StudyResults at any worker count.

#include <cerrno>
#include <cstdlib>
#include <limits>

#include "taxitrace/common/check.h"

namespace taxitrace {
namespace {

// The calling thread's pool-worker index; -1 on every thread that is
// not an executor worker. Set once per worker thread at pool startup.
thread_local int t_worker_index = -1;

}  // namespace

int Executor::CurrentWorkerIndex() { return t_worker_index; }

namespace {

// Shared state of one ParallelFor batch. Workers claim indices from
// `next`; the submitting thread waits on `done_cv` until `remaining`
// drains. The mutex orders every worker's writes (including the
// caller-owned output slots the worker functions fill) before the
// caller's wake-up, which is what makes the merge step race-free.
struct LoopState {
  std::atomic<int64_t> next;
  int64_t end = 0;
  const std::function<Status(int64_t)>* fn = nullptr;

  std::mutex mu;
  std::condition_variable done_cv;
  int64_t remaining = 0;      // indices not yet finished
  int64_t error_index = -1;   // lowest failing index so far
  Status error;

  // Returns how many indices this claim loop executed, so the worker
  // can attribute them to itself in the executor's load stats.
  int64_t RunOneClaimLoop() {
    int64_t claimed = 0;
    for (;;) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return claimed;
      ++claimed;
      Status st = (*fn)(i);
      std::lock_guard<std::mutex> lock(mu);
      if (!st.ok() && (error_index < 0 || i < error_index)) {
        error_index = i;
        error = std::move(st);
      }
      if (--remaining == 0) done_cv.notify_all();
    }
  }
};

}  // namespace

Executor::Executor(int num_threads) {
  if (num_threads < 0) num_threads = 0;
  TT_CHECK_MSG(num_threads <= kMaxExecutorWorkers,
               "executor pool larger than kMaxExecutorWorkers");
  if (num_threads > 0) {
    worker_items_ = std::make_unique<std::atomic<int64_t>[]>(
        static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      worker_items_[static_cast<size_t>(t)].store(
          0, std::memory_order_relaxed);
    }
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    workers_.emplace_back(
        [this, t] { WorkerLoop(static_cast<size_t>(t)); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void Executor::WorkerLoop(size_t worker_index) {
  t_worker_index = static_cast<int>(worker_index);
  for (;;) {
    QueuedJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // One now() per dequeued batch job (at most one job per worker per
    // batch), charged as the time the job sat queued.
    queue_wait_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - job.enqueued)
            .count(),
        std::memory_order_relaxed);
    const int64_t items = job.fn();
    worker_items_[worker_index].fetch_add(items,
                                          std::memory_order_relaxed);
  }
}

Status Executor::ParallelFor(
    int64_t begin, int64_t end,
    const std::function<Status(int64_t)>& fn) const {
  if (begin >= end) return Status::OK();
  batches_.fetch_add(1, std::memory_order_relaxed);

  if (workers_.empty()) {
    // Serial fallback: same index order, same error contract.
    serial_items_.fetch_add(end - begin, std::memory_order_relaxed);
    int64_t error_index = -1;
    Status error;
    for (int64_t i = begin; i < end; ++i) {
      Status st = fn(i);
      if (!st.ok() && error_index < 0) {
        error_index = i;
        error = std::move(st);
      }
    }
    return error_index < 0 ? Status::OK() : error;
  }

  auto state = std::make_shared<LoopState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->fn = &fn;
  state->remaining = end - begin;

  // One claim-loop job per worker is enough: each keeps pulling indices
  // until the range drains, so idle workers never wait on busy ones.
  const int64_t jobs = std::min<int64_t>(
      static_cast<int64_t>(workers_.size()), end - begin);
  {
    const auto enqueued = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t j = 0; j < jobs; ++j) {
      queue_.push_back(QueuedJob{
          [state] { return state->RunOneClaimLoop(); }, enqueued});
    }
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] { return state->remaining == 0; });
  return state->error_index < 0 ? Status::OK() : state->error;
}

Status Executor::RunTasks(
    const std::vector<std::function<Status()>>& tasks) const {
  return ParallelFor(0, static_cast<int64_t>(tasks.size()),
                     [&tasks](int64_t i) {
                       return tasks[static_cast<size_t>(i)]();
                     });
}

int Executor::ResolveThreadCount(int requested) {
  if (requested >= 0) return requested;
  if (const char* env = std::getenv("TAXITRACE_THREADS");
      env != nullptr && *env != '\0') {
    errno = 0;
    char* parse_end = nullptr;
    const long value = std::strtol(env, &parse_end, 10);
    if (errno == 0 && parse_end != nullptr && *parse_end == '\0' &&
        value >= 0 && value <= std::numeric_limits<int>::max()) {
      return static_cast<int>(value);
    }
    // Malformed values fall through to the hardware default.
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

const Executor& Executor::Serial() {
  static const Executor serial(0);
  return serial;
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.serial_items = serial_items_.load(std::memory_order_relaxed);
  s.items_per_worker.reserve(workers_.size());
  for (size_t t = 0; t < workers_.size(); ++t) {
    s.items_per_worker.push_back(
        worker_items_[t].load(std::memory_order_relaxed));
  }
  s.queue_wait_ms =
      static_cast<double>(queue_wait_ns_.load(std::memory_order_relaxed)) /
      1e6;
  return s;
}

}  // namespace taxitrace
