// Table 3: the per-car funnel from cleaned trip segments through
// thick-geometry OD selection to post-filtered, map-matched transitions
// (Section IV-D/E).

#include "bench_util.h"
#include "taxitrace/odselect/transition_extractor.h"

namespace taxitrace {
namespace {

void PrintTable3() {
  const core::StudyResults& r = benchutil::FullResults();
  std::printf("%s\n", core::FormatTable3(r.table3).c_str());
  std::printf(
      "Paper totals: 18077 segments -> 5337 filtered -> 770 transitions "
      "-> 674 within centre -> 544 post-filtered.\n"
      "The shape to hold: a steep funnel whose tail (the analysis "
      "population) lands in the hundreds.\n\n");
}

void BM_AnalyzeSegment(benchmark::State& state) {
  const core::StudyResults& r = benchutil::SmallResults();
  std::vector<odselect::OdGate> gates;
  for (const synth::GateRoad& g : r.map.gates) {
    gates.emplace_back(g.name, g.geometry, odselect::OdGateOptions{});
  }
  const odselect::TransitionExtractor extractor(
      gates, r.map.network.projection());
  // Analyze the stored transitions' segments (available cleaned trips).
  size_t idx = 0;
  for (auto _ : state) {
    const auto& segment =
        r.transitions[idx % r.transitions.size()].transition.segment;
    auto analysis = extractor.Analyze(segment);
    benchmark::DoNotOptimize(analysis);
    ++idx;
  }
}
BENCHMARK(BM_AnalyzeSegment)->Unit(benchmark::kMicrosecond);

void BM_GatePolygonClassify(benchmark::State& state) {
  const core::StudyResults& r = benchutil::SmallResults();
  const odselect::OdGate gate("T", r.map.gates[0].geometry,
                              odselect::OdGateOptions{});
  const geo::EnPoint a = r.map.gates[0].geometry.front();
  const geo::EnPoint b = r.map.gates[0].geometry.back();
  for (auto _ : state) {
    auto crossing = gate.Classify(a, b);
    benchmark::DoNotOptimize(crossing);
  }
}
BENCHMARK(BM_GatePolygonClassify)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintTable3)
