#include <gtest/gtest.h>

#include "taxitrace/analysis/route_frequency.h"
#include "taxitrace/analysis/speed_profile.h"
#include "taxitrace/roadnet/connectivity.h"
#include "taxitrace/roadnet/map_preparation.h"
#include "taxitrace/synth/city_map_generator.h"

namespace taxitrace {
namespace {

using geo::EnPoint;

// --- Route frequency -----------------------------------------------------------

mapmatch::MatchedRoute RouteWithEdges(std::vector<roadnet::EdgeId> edges) {
  mapmatch::MatchedRoute route;
  for (roadnet::EdgeId e : edges) {
    route.steps.push_back(roadnet::PathStep{e, true});
  }
  return route;
}

analysis::TransitionRecord Record(const std::string& direction,
                                  double time_h, double dist_km = 2.3,
                                  double fuel = 250.0) {
  analysis::TransitionRecord r;
  r.direction = direction;
  r.route_time_h = time_h;
  r.route_distance_km = dist_km;
  r.fuel_ml = fuel;
  r.low_speed_share = 0.2;
  return r;
}

TEST(RouteFrequencyTest, GroupsSimilarRoutes) {
  std::vector<analysis::TransitionRecord> records = {
      Record("S-T", 0.10), Record("S-T", 0.12), Record("S-T", 0.20),
      Record("T-L", 0.10)};
  std::vector<mapmatch::MatchedRoute> routes = {
      RouteWithEdges({1, 2, 3, 4, 5}),
      RouteWithEdges({1, 2, 3, 4, 5}),      // identical alternative
      RouteWithEdges({10, 11, 12, 13}),     // different route
      RouteWithEdges({1, 2, 3, 4, 5}),      // other direction
  };
  const auto alternatives =
      analysis::GroupRouteAlternatives(records, routes);
  ASSERT_EQ(alternatives.size(), 3u);
  // Sorted by direction then count: S-T's main alternative first.
  EXPECT_EQ(alternatives[0].direction, "S-T");
  EXPECT_EQ(alternatives[0].count, 2);
  EXPECT_NEAR(alternatives[0].share, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(alternatives[0].mean_time_h, 0.11, 1e-9);
  EXPECT_EQ(alternatives[1].direction, "S-T");
  EXPECT_EQ(alternatives[1].count, 1);
  EXPECT_EQ(alternatives[2].direction, "T-L");
  EXPECT_NEAR(alternatives[2].share, 1.0, 1e-9);
}

TEST(RouteFrequencyTest, SimilarButNotIdenticalRoutesMerge) {
  std::vector<analysis::TransitionRecord> records = {
      Record("S-T", 0.10), Record("S-T", 0.12)};
  // 5 of 6 edges shared -> Jaccard 5/7? No: sets {1..6} and {1..5,7}:
  // intersection 5, union 7 -> 0.714 < 0.8 -> separate groups.
  std::vector<mapmatch::MatchedRoute> routes = {
      RouteWithEdges({1, 2, 3, 4, 5, 6}),
      RouteWithEdges({1, 2, 3, 4, 5, 7})};
  analysis::RouteFrequencyOptions strict;
  strict.similarity_threshold = 0.8;
  EXPECT_EQ(
      analysis::GroupRouteAlternatives(records, routes, strict).size(),
      2u);
  analysis::RouteFrequencyOptions loose;
  loose.similarity_threshold = 0.6;
  EXPECT_EQ(
      analysis::GroupRouteAlternatives(records, routes, loose).size(),
      1u);
}

TEST(RouteFrequencyTest, FastestAlternative) {
  std::vector<analysis::TransitionRecord> records = {
      Record("S-T", 0.20), Record("S-T", 0.20), Record("S-T", 0.21),
      Record("S-T", 0.10), Record("S-T", 0.11), Record("S-T", 0.12)};
  std::vector<mapmatch::MatchedRoute> routes = {
      RouteWithEdges({1, 2, 3}), RouteWithEdges({1, 2, 3}),
      RouteWithEdges({1, 2, 3}), RouteWithEdges({7, 8, 9}),
      RouteWithEdges({7, 8, 9}), RouteWithEdges({7, 8, 9})};
  const auto alternatives =
      analysis::GroupRouteAlternatives(records, routes);
  const analysis::RouteAlternative* fastest =
      analysis::FastestAlternative(alternatives, "S-T", 3);
  ASSERT_NE(fastest, nullptr);
  EXPECT_NEAR(fastest->mean_time_h, 0.11, 1e-9);
  EXPECT_EQ(analysis::FastestAlternative(alternatives, "T-L", 1),
            nullptr);
  EXPECT_EQ(analysis::FastestAlternative(alternatives, "S-T", 10),
            nullptr);
}

TEST(RouteFrequencyTest, EmptyInputs) {
  EXPECT_TRUE(analysis::GroupRouteAlternatives({}, {}).empty());
}

// --- Speed profile ---------------------------------------------------------------

TEST(SpeedProfileTest, BinsAlongCorridor) {
  const geo::LocalProjection proj(geo::LatLon{65.0, 25.47});
  const geo::Polyline corridor({{0, 0}, {1000, 0}});
  // A trip driving the corridor: fast in the first half, slow at 600 m.
  trace::Trip trip;
  for (int i = 0; i <= 20; ++i) {
    trace::RoutePoint p;
    p.point_id = i + 1;
    p.timestamp_s = 10.0 * i;
    p.position = proj.Inverse(geo::EnPoint{50.0 * i, 5.0});
    p.speed_kmh = (i >= 11 && i <= 13) ? 5.0 : 40.0;
    trip.points.push_back(p);
  }
  const std::vector<analysis::ProfileBin> profile =
      analysis::BuildSpeedProfile({&trip}, corridor, proj);
  ASSERT_EQ(profile.size(), 10u);
  EXPECT_EQ(profile[0].arc_start_m, 0.0);
  EXPECT_EQ(profile[9].arc_end_m, 1000.0);
  // Bins 0..4 fast; the slow points at x=550..650 land in bins 5-6.
  EXPECT_NEAR(profile[1].mean_speed_kmh, 40.0, 1e-9);
  const analysis::ProfileBin* slowest = analysis::SlowestBin(profile);
  ASSERT_NE(slowest, nullptr);
  EXPECT_LT(slowest->mean_speed_kmh, 20.0);
  EXPECT_GE(slowest->arc_start_m, 500.0);
  EXPECT_LE(slowest->arc_end_m, 700.0);
  EXPECT_EQ(slowest->min_speed_kmh, 5.0);
}

TEST(SpeedProfileTest, OffCorridorPointsIgnored) {
  const geo::LocalProjection proj(geo::LatLon{65.0, 25.47});
  const geo::Polyline corridor({{0, 0}, {1000, 0}});
  trace::Trip trip;
  trace::RoutePoint p;
  p.position = proj.Inverse(geo::EnPoint{500, 200});  // 200 m off
  p.speed_kmh = 50.0;
  trip.points.push_back(p);
  const auto profile = analysis::BuildSpeedProfile({&trip}, corridor, proj);
  for (const analysis::ProfileBin& bin : profile) {
    EXPECT_EQ(bin.n, 0);
  }
  EXPECT_EQ(analysis::SlowestBin(profile), nullptr);
}

TEST(SpeedProfileTest, DegenerateInputs) {
  const geo::LocalProjection proj(geo::LatLon{65.0, 25.47});
  EXPECT_TRUE(
      analysis::BuildSpeedProfile({}, geo::Polyline(), proj).empty());
  analysis::SpeedProfileOptions bad;
  bad.bin_m = 0.0;
  EXPECT_TRUE(analysis::BuildSpeedProfile(
                  {}, geo::Polyline({{0, 0}, {10, 0}}), proj, bad)
                  .empty());
}

// --- Connectivity ------------------------------------------------------------------

roadnet::TrafficElement Element(roadnet::ElementId id,
                                std::vector<EnPoint> pts,
                                roadnet::TravelDirection dir =
                                    roadnet::TravelDirection::kBoth) {
  roadnet::TrafficElement el;
  el.id = id;
  el.geometry = geo::Polyline(std::move(pts));
  el.direction = dir;
  return el;
}

TEST(ConnectivityTest, SingleComponentPlus) {
  const std::vector<roadnet::TrafficElement> elements = {
      Element(1, {{0, 0}, {100, 0}}),
      Element(2, {{0, 0}, {-100, 0}}),
      Element(3, {{0, 0}, {0, 100}}),
  };
  const roadnet::RoadNetwork net =
      roadnet::PrepareRoadNetwork(elements, {}, geo::LatLon{65, 25})
          .value();
  const roadnet::ConnectivityReport report =
      roadnet::AnalyzeConnectivity(net);
  EXPECT_EQ(report.weak_components, 1);
  EXPECT_EQ(report.largest_scc_size, report.num_vertices);
  EXPECT_DOUBLE_EQ(report.scc_coverage, 1.0);
}

TEST(ConnectivityTest, TwoIslands) {
  const std::vector<roadnet::TrafficElement> elements = {
      Element(1, {{0, 0}, {100, 0}}),
      Element(2, {{5000, 0}, {5100, 0}}),
  };
  const roadnet::RoadNetwork net =
      roadnet::PrepareRoadNetwork(elements, {}, geo::LatLon{65, 25})
          .value();
  EXPECT_EQ(roadnet::CountWeakComponents(net), 2);
  EXPECT_LT(roadnet::AnalyzeConnectivity(net).scc_coverage, 1.0);
}

TEST(ConnectivityTest, OneWayDeadEndLeavesScc) {
  // A one-way spur: you can drive in but never out, so its far end is
  // not in the SCC while the loop is.
  const std::vector<roadnet::TrafficElement> elements = {
      Element(1, {{0, 0}, {100, 0}}),
      Element(2, {{100, 0}, {100, 100}}),
      Element(3, {{100, 100}, {0, 100}}),
      Element(4, {{0, 100}, {0, 0}}),
      Element(5, {{0, 0}, {-100, 0}}, roadnet::TravelDirection::kForward),
      Element(6, {{100, 0}, {200, 0}}),  // keeps (100,0) a junction
  };
  const roadnet::RoadNetwork net =
      roadnet::PrepareRoadNetwork(elements, {}, geo::LatLon{65, 25})
          .value();
  const std::vector<roadnet::VertexId> scc =
      roadnet::LargestStronglyConnectedComponent(net);
  // The spur terminal (-100, 0) is reachable but cannot return.
  bool spur_in_scc = false;
  for (roadnet::VertexId v : scc) {
    if (geo::Distance(net.vertex(v).position, EnPoint{-100, 0}) < 1.0) {
      spur_in_scc = true;
    }
  }
  EXPECT_FALSE(spur_in_scc);
  // Graph vertices: the two loop junctions ((0,0), (100,0) — the other
  // corners merge through), the two-way stub terminal (200,0) and the
  // spur terminal. All but the spur terminal are mutually reachable.
  EXPECT_EQ(scc.size(), 3u);
}

TEST(ConnectivityTest, GeneratedCityIsDrivable) {
  const roadnet::ConnectivityReport report =
      roadnet::AnalyzeConnectivity(
          synth::GenerateCityMap().value().network);
  EXPECT_EQ(report.weak_components, 1);
  // One-way pairs must not strand a significant part of the city.
  EXPECT_GT(report.scc_coverage, 0.95);
}

}  // namespace
}  // namespace taxitrace
