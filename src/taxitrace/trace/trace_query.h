// Geospatial/temporal queries over a trip store — the small query
// surface the paper ran through PostGIS SQL.

#ifndef TAXITRACE_TRACE_TRACE_QUERY_H_
#define TAXITRACE_TRACE_TRACE_QUERY_H_

#include <vector>

#include "taxitrace/geo/polygon.h"
#include "taxitrace/trace/trace_store.h"

namespace taxitrace {
namespace trace {

/// Trips whose [start, end] time range overlaps [t0, t1].
std::vector<const Trip*> TripsInTimeRange(const TraceStore& store,
                                          double t0_s, double t1_s);

/// Trips with at least one point inside the local-frame box.
std::vector<const Trip*> TripsIntersectingBbox(
    const TraceStore& store, const geo::Bbox& box,
    const geo::LocalProjection& projection);

/// Trips with at least one point inside the polygon.
std::vector<const Trip*> TripsIntersectingPolygon(
    const TraceStore& store, const geo::Polygon& polygon,
    const geo::LocalProjection& projection);

/// Number of route points inside the polygon, across all trips.
int64_t CountPointsWithinPolygon(const TraceStore& store,
                                 const geo::Polygon& polygon,
                                 const geo::LocalProjection& projection);

/// Bounding box of all points of a trip in the local frame (invalid box
/// for an empty trip).
geo::Bbox TripBounds(const Trip& trip,
                     const geo::LocalProjection& projection);

}  // namespace trace
}  // namespace taxitrace

#endif  // TAXITRACE_TRACE_TRACE_QUERY_H_
