#include "taxitrace/roadnet/router.h"

// tt-lint: allow-file(relaxed-atomic): search tallies batched into a
// few relaxed adds per search and exported via stats() for obs
// metrics; sums of deterministic per-search work, so the totals are
// worker-count-invariant and never feed StudyResults.

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>

#include "taxitrace/common/strings.h"
#include "taxitrace/geo/geometry.h"

namespace taxitrace {
namespace roadnet {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Router::Router(const RoadNetwork* network)
    : network_(network),
      search_stats_(std::make_shared<AtomicStats>()),
      scratch_(std::make_shared<WorkerLocal<SearchScratch>>()) {
  // First CSR touch happens here, on the constructing thread, so the
  // network can be read concurrently afterwards.
  network_->WarmAdjacency();
}

SearchScratch& Router::Search(
    const std::vector<std::pair<VertexId, double>>& seeds,
    VertexId stop_at_both_a, VertexId stop_at_both_b,
    const std::vector<double>* edge_cost_multiplier) const {
  // Goal-directed (A*) needs known targets and an admissible heuristic:
  // every edge's cost must be >= its straight-line endpoint distance,
  // which holds exactly when no multiplier shrinks a length. The scan
  // exits on the first shrinking entry, so the common simulated-driver
  // vectors (noise around 1.0) reject in a handful of reads.
  bool goal_directed =
      stop_at_both_a != kInvalidVertex && stop_at_both_b != kInvalidVertex;
  if (goal_directed && edge_cost_multiplier != nullptr) {
    for (const double m : *edge_cost_multiplier) {
      if (m < 1.0) {
        goal_directed = false;
        break;
      }
    }
  }
  return SearchImpl(seeds, stop_at_both_a, stop_at_both_b, goal_directed,
                    /*heuristic_scale=*/1.0, [&](EdgeId edge) {
                      // Multiplier vectors are dense over edge ordinals
                      // (== ids on single-tile maps).
                      return edge_cost_multiplier == nullptr
                                 ? 1.0
                                 : (*edge_cost_multiplier)[network_
                                       ->EdgeOrdinal(edge)];
                    });
}

template <typename MultiplierFn>
SearchScratch& Router::SearchImpl(
    const std::vector<std::pair<VertexId, double>>& seeds,
    VertexId stop_at_both_a, VertexId stop_at_both_b, bool goal_directed,
    double heuristic_scale, MultiplierFn multiplier) const {
  SearchScratch& scratch = scratch_->Local();
  scratch.BeginSearch(*network_);

  geo::EnPoint goal_a{};
  geo::EnPoint goal_b{};
  if (goal_directed) {
    goal_a = network_->vertex(stop_at_both_a).position;
    goal_b = network_->vertex(stop_at_both_b).position;
  }
  // Lower bound on the remaining cost to the nearer goal; the minimum
  // of two consistent heuristics scaled by a constant <= the smallest
  // multiplier, hence itself consistent: vertices settle with final
  // distances, in non-decreasing key order. heuristic_scale == 1 (the
  // multiplier-free and >=1-vector cases) multiplies exactly, so the
  // historical heap order is preserved bit for bit.
  const auto heuristic = [&](VertexId v) {
    const geo::EnPoint& p = network_->vertex(v).position;
    return heuristic_scale *
           std::min(geo::Distance(p, goal_a), geo::Distance(p, goal_b));
  };

  // Seed phase. Two seeds can name the same vertex (e.g. both ends of a
  // self-loop edge); keep the cheaper cost and push one heap entry per
  // distinct vertex instead of queueing a doomed stale duplicate.
  for (const auto& [v, cost] : seeds) {
    if (!scratch.Visited(v) || cost < scratch.RawDist(v)) {
      scratch.Relax(v, cost, kInvalidEdge, kInvalidVertex);
    }
  }
  for (size_t i = 0; i < seeds.size(); ++i) {
    const VertexId v = seeds[i].first;
    bool duplicate = false;
    for (size_t j = 0; j < i; ++j) duplicate |= seeds[j].first == v;
    if (duplicate) continue;
    const double cost = scratch.RawDist(v);
    scratch.heap.push_back(SearchHeapEntry{
        goal_directed ? cost + heuristic(v) : cost, cost, v});
    std::push_heap(scratch.heap.begin(), scratch.heap.end(),
                   std::greater<SearchHeapEntry>{});
  }

  bool settled_a = stop_at_both_a == kInvalidVertex;
  bool settled_b = stop_at_both_b == kInvalidVertex;
  int64_t heap_pops = 0;
  int64_t settled = 0;
  while (!scratch.heap.empty()) {
    std::pop_heap(scratch.heap.begin(), scratch.heap.end(),
                  std::greater<SearchHeapEntry>{});
    const SearchHeapEntry top = scratch.heap.back();
    scratch.heap.pop_back();
    ++heap_pops;
    if (top.dist > scratch.RawDist(top.vertex)) continue;  // stale entry
    ++settled;
    if (top.vertex == stop_at_both_a) settled_a = true;
    if (top.vertex == stop_at_both_b) settled_b = true;
    if (settled_a && settled_b) break;

    for (const HalfEdge& arc : network_->OutArcs(top.vertex)) {
      if (!arc.traversable_out) continue;
      const double mult = multiplier(arc.edge);
      const double nd = top.dist + arc.length_m * mult;
      if (nd < scratch.Dist(arc.head)) {
        scratch.Relax(arc.head, nd, arc.edge, top.vertex);
        scratch.heap.push_back(SearchHeapEntry{
            goal_directed ? nd + heuristic(arc.head) : nd, nd, arc.head});
        std::push_heap(scratch.heap.begin(), scratch.heap.end(),
                       std::greater<SearchHeapEntry>{});
      }
    }
  }
  // Batched tallies: a few relaxed adds per search, nothing per pop.
  search_stats_->searches.fetch_add(1, std::memory_order_relaxed);
  search_stats_->heap_pops.fetch_add(heap_pops, std::memory_order_relaxed);
  search_stats_->settled_vertices.fetch_add(settled,
                                            std::memory_order_relaxed);
  search_stats_->tiles_touched.fetch_add(
      static_cast<int64_t>(scratch.tiles_touched()),
      std::memory_order_relaxed);
  if (goal_directed) {
    search_stats_->goal_directed_searches.fetch_add(
        1, std::memory_order_relaxed);
  }
  return scratch;
}

RouterStats Router::stats() const {
  RouterStats s;
  s.searches = search_stats_->searches.load(std::memory_order_relaxed);
  s.heap_pops = search_stats_->heap_pops.load(std::memory_order_relaxed);
  s.settled_vertices =
      search_stats_->settled_vertices.load(std::memory_order_relaxed);
  s.goal_directed_searches =
      search_stats_->goal_directed_searches.load(std::memory_order_relaxed);
  s.tiles_touched =
      search_stats_->tiles_touched.load(std::memory_order_relaxed);
  return s;
}

Result<Path> Router::BuildVertexPath(const SearchScratch& res, VertexId from,
                                     VertexId to) const {
  if (!(res.Dist(to) < kInf)) {
    return Status::NotFound(
        StrFormat("no path from vertex %d to %d", from, to));
  }
  Path path;
  path.length_m = 0.0;
  // Walk predecessors back to the source.
  std::vector<std::pair<EdgeId, bool>> rev;
  VertexId v = to;
  while (v != from) {
    const EdgeId e = res.PrevEdge(v);
    const VertexId p = res.PrevVertex(v);
    rev.emplace_back(e, network_->edge(e).from == p);
    v = p;
  }
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    path.steps.push_back(PathStep{it->first, it->second});
    const Edge& e = network_->edge(it->first);
    path.length_m += e.length_m;
    path.geometry.Extend(it->second ? e.geometry : e.geometry.Reversed());
  }
  if (path.steps.empty()) {
    // from == to: a zero-length path anchored at the vertex.
    const geo::EnPoint p = network_->vertex(from).position;
    path.geometry = geo::Polyline({p, p});
  }
  return path;
}

Result<Path> Router::ShortestPath(
    VertexId from, VertexId to,
    const std::vector<double>* edge_cost_multiplier) const {
  if (!network_->HasVertex(from) || !network_->HasVertex(to)) {
    return Status::InvalidArgument("vertex id out of range");
  }
  if (edge_cost_multiplier != nullptr &&
      edge_cost_multiplier->size() != network_->num_edges()) {
    return Status::InvalidArgument("edge cost multiplier size mismatch");
  }
  const SearchScratch& res =
      Search({{from, 0.0}}, to, to, edge_cost_multiplier);
  return BuildVertexPath(res, from, to);
}

Result<Path> Router::ShortestPath(VertexId from, VertexId to,
                                  const EdgeCostModel& cost) const {
  if (!network_->HasVertex(from) || !network_->HasVertex(to)) {
    return Status::InvalidArgument("vertex id out of range");
  }
  const double min_mult = cost.MinMultiplier();
  // min_mult > 0 keeps the scaled straight-line bound admissible; the
  // scale never exceeds 1 so multiplier-free models keep the exact
  // historical A* order.
  const bool goal_directed = min_mult > 0.0;
  const double heuristic_scale = std::min(1.0, min_mult);
  const SearchScratch& res = SearchImpl(
      {{from, 0.0}}, to, to, goal_directed, heuristic_scale,
      [&cost](EdgeId edge) { return cost.Multiplier(edge); });
  return BuildVertexPath(res, from, to);
}

double Router::BoundedVertexDistance(VertexId from, VertexId to,
                                     double limit_m) const {
  if (!network_->HasVertex(from) || !network_->HasVertex(to)) {
    return kInf;
  }
  SearchScratch& scratch = scratch_->Local();
  scratch.BeginSearch(*network_);
  const geo::EnPoint goal = network_->vertex(to).position;
  const auto heuristic = [&](VertexId v) {
    return geo::Distance(network_->vertex(v).position, goal);
  };

  scratch.Relax(from, 0.0, kInvalidEdge, kInvalidVertex);
  scratch.heap.push_back(SearchHeapEntry{heuristic(from), 0.0, from});

  double found = kInf;
  int64_t heap_pops = 0;
  int64_t settled = 0;
  while (!scratch.heap.empty()) {
    std::pop_heap(scratch.heap.begin(), scratch.heap.end(),
                  std::greater<SearchHeapEntry>{});
    const SearchHeapEntry top = scratch.heap.back();
    scratch.heap.pop_back();
    ++heap_pops;
    // The heuristic is consistent, so popped keys never decrease and
    // key <= true remaining distance of any future settle: once the
    // frontier passes limit_m the target cannot be closer than that.
    if (top.key > limit_m) break;
    if (top.dist > scratch.RawDist(top.vertex)) continue;  // stale entry
    ++settled;
    if (top.vertex == to) {
      found = top.dist;
      break;
    }
    for (const HalfEdge& arc : network_->OutArcs(top.vertex)) {
      if (!arc.traversable_out) continue;
      const double nd = top.dist + arc.length_m;
      if (nd < scratch.Dist(arc.head)) {
        scratch.Relax(arc.head, nd, arc.edge, top.vertex);
        scratch.heap.push_back(
            SearchHeapEntry{nd + heuristic(arc.head), nd, arc.head});
        std::push_heap(scratch.heap.begin(), scratch.heap.end(),
                       std::greater<SearchHeapEntry>{});
      }
    }
  }
  search_stats_->searches.fetch_add(1, std::memory_order_relaxed);
  search_stats_->heap_pops.fetch_add(heap_pops, std::memory_order_relaxed);
  search_stats_->settled_vertices.fetch_add(settled,
                                            std::memory_order_relaxed);
  search_stats_->tiles_touched.fetch_add(
      static_cast<int64_t>(scratch.tiles_touched()),
      std::memory_order_relaxed);
  search_stats_->goal_directed_searches.fetch_add(1,
                                                  std::memory_order_relaxed);
  return found;
}

Result<Path> Router::ShortestPathBetween(const EdgePosition& from,
                                         const EdgePosition& to) const {
  if (!network_->HasEdge(from.edge) || !network_->HasEdge(to.edge)) {
    return Status::InvalidArgument("edge id out of range");
  }
  const Edge& fe = network_->edge(from.edge);
  const Edge& te = network_->edge(to.edge);
  const double from_arc = std::clamp(from.arc_length_m, 0.0, fe.length_m);
  const double to_arc = std::clamp(to.arc_length_m, 0.0, te.length_m);

  // Option 0: stay on the shared edge.
  double direct_cost = kInf;
  bool direct_forward = true;
  if (from.edge == to.edge) {
    if (to_arc >= from_arc && network_->CanTraverse(from.edge, true)) {
      direct_cost = to_arc - from_arc;
      direct_forward = true;
    }
    if (from_arc >= to_arc && network_->CanTraverse(from.edge, false)) {
      const double c = from_arc - to_arc;
      if (c < direct_cost) {
        direct_cost = c;
        direct_forward = false;
      }
    }
  }

  // Options via the graph: leave the source edge at either end, enter the
  // destination edge at either end.
  std::vector<std::pair<VertexId, double>> seeds;
  if (network_->CanTraverse(from.edge, true)) {
    seeds.emplace_back(fe.to, fe.length_m - from_arc);
  }
  if (network_->CanTraverse(from.edge, false)) {
    seeds.emplace_back(fe.from, from_arc);
  }

  const SearchScratch* res = nullptr;
  if (!seeds.empty()) res = &Search(seeds, te.from, te.to);

  const auto arrival_cost = [&](VertexId entry) {
    if (res == nullptr) return kInf;
    const double base = res->Dist(entry);
    if (!(base < kInf)) return kInf;
    if (entry == te.from) {
      return network_->CanTraverse(to.edge, true) ? base + to_arc : kInf;
    }
    return network_->CanTraverse(to.edge, false)
               ? base + (te.length_m - to_arc)
               : kInf;
  };
  const double via_from = arrival_cost(te.from);
  const double via_to = arrival_cost(te.to);

  const double best = std::min({direct_cost, via_from, via_to});
  if (!(best < kInf)) {
    return Status::NotFound(StrFormat("no drivable path from edge %d to %d",
                                      from.edge, to.edge));
  }

  Path path;
  path.length_m = best;
  if (best == direct_cost) {
    path.steps.push_back(PathStep{from.edge, direct_forward});
    path.geometry = fe.geometry.SubLine(from_arc, to_arc);
    return path;
  }

  const VertexId entry = via_from <= via_to ? te.from : te.to;
  // Reconstruct the vertex chain back to whichever seed it started from.
  std::vector<std::pair<EdgeId, bool>> rev;
  VertexId v = entry;
  while (res->PrevEdge(v) != kInvalidEdge) {
    const EdgeId e = res->PrevEdge(v);
    const VertexId p = res->PrevVertex(v);
    rev.emplace_back(e, network_->edge(e).from == p);
    v = p;
  }
  const VertexId seed_vertex = v;

  // Partial source edge from the start position to the seed vertex.
  const bool leave_forward = seed_vertex == fe.to;
  path.steps.push_back(PathStep{from.edge, leave_forward});
  path.geometry =
      fe.geometry.SubLine(from_arc, leave_forward ? fe.length_m : 0.0);

  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    path.steps.push_back(PathStep{it->first, it->second});
    const geo::Polyline& g = network_->edge(it->first).geometry;
    path.geometry.Extend(it->second ? g : g.Reversed());
  }

  // Partial destination edge from the entry vertex to the end position.
  const bool enter_forward = entry == te.from;
  path.steps.push_back(PathStep{to.edge, enter_forward});
  path.geometry.Extend(
      te.geometry.SubLine(enter_forward ? 0.0 : te.length_m, to_arc));
  return path;
}

double Router::NetworkDistance(const EdgePosition& from,
                               const EdgePosition& to) const {
  Result<Path> path = ShortestPathBetween(from, to);
  return path.ok() ? path->length_m : kInf;
}

}  // namespace roadnet
}  // namespace taxitrace
