#!/usr/bin/env python3
"""Regenerate the golden study digest (tests/golden/study_small.json).

Builds the regression_test target and runs the golden-digest test with
TAXITRACE_UPDATE_GOLDEN=1, which makes the test rewrite the golden file
from the current pipeline output instead of comparing against it. Use
this only for an *intentional* behaviour change, and review the diff of
the golden file like any other code change.

Usage:
  scripts/update_golden.py [--build-dir BUILD]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import shutil
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def run(cmd: list[str], **kwargs) -> None:
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, **kwargs)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--build-dir",
        default=str(REPO_ROOT / "build"),
        help="CMake build directory (configured on demand)",
    )
    args = parser.parse_args()

    build_dir = pathlib.Path(args.build_dir)
    if not (build_dir / "CMakeCache.txt").exists():
        if shutil.which("cmake") is None:
            print("error: cmake not found on PATH", file=sys.stderr)
            return 1
        run(["cmake", "-B", str(build_dir), "-S", str(REPO_ROOT)])
    run(["cmake", "--build", str(build_dir), "--target", "regression_test"])

    test_binary = build_dir / "tests" / "regression_test"
    if not test_binary.exists():
        print(f"error: {test_binary} not built", file=sys.stderr)
        return 1

    env = dict(os.environ, TAXITRACE_UPDATE_GOLDEN="1")
    run(
        [
            str(test_binary),
            "--gtest_filter=GoldenDigestTest.*",
        ],
        env=env,
    )

    golden = REPO_ROOT / "tests" / "golden" / "study_small.json"
    print(f"regenerated {golden}")
    print("review the diff before committing:")
    run(["git", "--no-pager", "diff", "--stat", str(golden)])
    return 0


if __name__ == "__main__":
    sys.exit(main())
