#include "taxitrace/stream/stream_source.h"

#include <algorithm>
#include <utility>

#include "taxitrace/common/random.h"

namespace taxitrace {
namespace stream {

CarStream BuildCarStream(const trace::TraceStore& store, int car_id) {
  CarStream out;
  out.car_id = car_id;
  int64_t seq = 0;
  for (const trace::Trip& trip : store.trips()) {
    if (trip.car_id != car_id) continue;
    StreamRecord begin;
    begin.kind = StreamRecord::Kind::kTripBegin;
    begin.seq = seq++;
    begin.car_id = car_id;
    begin.trip_id = trip.trip_id;
    begin.total_time_s = trip.total_time_s;
    begin.total_distance_m = trip.total_distance_m;
    begin.total_fuel_ml = trip.total_fuel_ml;
    out.records.push_back(begin);
    for (const trace::RoutePoint& p : trip.points) {
      StreamRecord rec;
      rec.kind = StreamRecord::Kind::kPoint;
      rec.seq = seq++;
      rec.car_id = car_id;
      rec.trip_id = trip.trip_id;
      rec.point = p;
      out.records.push_back(rec);
    }
  }
  return out;
}

std::vector<CarStream> BuildCarStreams(const trace::TraceStore& store) {
  std::vector<CarStream> out;
  for (const int car_id : store.CarIds()) {
    out.push_back(BuildCarStream(store, car_id));
  }
  return out;
}

void ShuffleArrivals(std::vector<StreamRecord>* records, uint64_t seed,
                     int64_t max_displacement) {
  if (max_displacement <= 0 || records->size() < 2) return;
  Rng rng(seed);
  // Sort key: canonical position plus a bounded jitter. With keys at
  // most `max_displacement` apart from their positions, a record j more
  // than `max_displacement` slots after i always keeps a larger key, so
  // the stable sort displaces nothing further than the bound.
  std::vector<std::pair<int64_t, size_t>> keyed(records->size());
  for (size_t i = 0; i < records->size(); ++i) {
    keyed[i] = {static_cast<int64_t>(i) + rng.UniformInt(0, max_displacement),
                i};
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<StreamRecord> shuffled;
  shuffled.reserve(records->size());
  for (const auto& [key, index] : keyed) {
    shuffled.push_back(std::move((*records)[index]));
  }
  *records = std::move(shuffled);
}

}  // namespace stream
}  // namespace taxitrace
