#include "taxitrace/core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "taxitrace/analysis/grid.h"
#include "taxitrace/clean/cleaning_pipeline.h"
#include "taxitrace/common/executor.h"
#include "taxitrace/fault/fault_injector.h"
#include "taxitrace/odselect/transition_extractor.h"
#include "taxitrace/trace/trace_io.h"

namespace taxitrace {
namespace core {

std::vector<analysis::TransitionRecord> StudyResults::Records() const {
  std::vector<analysis::TransitionRecord> out;
  out.reserve(transitions.size());
  for (const MatchedTransition& mt : transitions) out.push_back(mt.record);
  return out;
}

Pipeline::Pipeline(StudyConfig config) : config_(std::move(config)) {}

Result<StudyResults> Pipeline::Run() const {
  using Clock = std::chrono::steady_clock;
  const auto elapsed_ms = [](Clock::time_point since) {
    return std::chrono::duration<double, std::milli>(Clock::now() - since)
        .count();
  };
  StageTimings timings;
  auto stage_start = Clock::now();

  // One worker pool for every parallel stage. 0 threads = serial
  // inline execution; either way the merged outputs are byte-identical.
  const Executor executor(Executor::ResolveThreadCount(config_.num_threads));
  timings.simulation_threads = executor.num_threads();
  timings.cleaning_threads = executor.num_threads();
  timings.selection_matching_threads = executor.num_threads();

  // 1. Substrates: city map and weather.
  TAXITRACE_ASSIGN_OR_RETURN(synth::CityMap map,
                             synth::GenerateCityMap(config_.map));
  synth::WeatherModel weather(config_.weather_seed, config_.fleet.num_days);

  timings.map_generation_ms = elapsed_ms(stage_start);
  stage_start = Clock::now();

  // 2. Raw traces.
  synth::PedestrianModel pedestrians(config_.fleet.seed + 17,
                                     map.hotspots,
                                     config_.fleet.num_days);
  const synth::FleetSimulator fleet(&map, &weather, config_.fleet,
                                    &pedestrians);
  TAXITRACE_ASSIGN_OR_RETURN(synth::FleetResult raw, fleet.Run(&executor));

  StudyResults results(std::move(map), std::move(weather),
                       std::move(pedestrians));

  // 2.5. Fault injection (skipped entirely on a fault-free plan, so the
  // default configuration runs the exact pre-harness pipeline). The
  // injection itself is serial and draws per trip id / per CSV row, so
  // the corrupted store is identical at any thread count.
  clean::CleaningOptions cleaning_options = config_.cleaning;
  fault::FaultReport injected;
  if (config_.faults.Any()) {
    const fault::FaultInjector injector(config_.faults);
    std::vector<trace::Trip> trips = raw.store.trips();
    injector.CorruptTrips(&trips, &injected);
    if (config_.faults.AnyFileFaults()) {
      // Route the traces through their file format: serialise, corrupt
      // rows, and read back with the lenient parser that drops what it
      // cannot understand.
      const std::string csv =
          injector.CorruptCsv(trace::TripsToCsv(trips), &injected);
      trace::TraceIoStats io_stats;
      TAXITRACE_ASSIGN_OR_RETURN(trips,
                                 trace::TripsFromCsvLenient(csv, &io_stats));
      injected.rows_dropped_malformed += io_stats.rows_dropped_malformed;
      injected.rows_dropped_non_utf8 += io_stats.rows_dropped_non_utf8;
    }
    TAXITRACE_ASSIGN_OR_RETURN(
        raw.store,
        fault::RebuildStoreDroppingDuplicates(std::move(trips), &injected));

    // Corrupted input calls for the sanitiser, including a geographic
    // gate built from the road network's bounds. The 5 km inflation
    // dwarfs legitimate GPS scatter (sensor outliers jump ~450 m), so
    // only truly wild fixes — swapped coordinates, garbage parses —
    // fall outside.
    clean::SanitizeOptions& sanitize = cleaning_options.sanitize;
    sanitize.enabled = true;
    sanitize.has_region = true;
    const geo::Bbox gate_box =
        results.map.network.Bounds().Inflated(5000.0);
    const geo::LocalProjection& net_proj =
        results.map.network.projection();
    const geo::LatLon lo =
        net_proj.Inverse(geo::EnPoint{gate_box.min_x, gate_box.min_y});
    const geo::LatLon hi =
        net_proj.Inverse(geo::EnPoint{gate_box.max_x, gate_box.max_y});
    sanitize.lat_min_deg = std::min(lo.lat_deg, hi.lat_deg);
    sanitize.lat_max_deg = std::max(lo.lat_deg, hi.lat_deg);
    sanitize.lon_min_deg = std::min(lo.lon_deg, hi.lon_deg);
    sanitize.lon_max_deg = std::max(lo.lon_deg, hi.lon_deg);
  }

  results.raw_trips = static_cast<int64_t>(raw.store.NumTrips());
  timings.simulation_ms = elapsed_ms(stage_start);
  stage_start = Clock::now();

  // 3. Cleaning: sanitiser (when faulted), order repair, error filters,
  // segmentation, filters.
  TAXITRACE_ASSIGN_OR_RETURN(
      std::vector<trace::Trip> cleaned,
      clean::CleanTrips(raw.store, cleaning_options,
                        &results.cleaning_report, &executor));
  results.cleaning_report.faults.Add(injected);
  timings.cleaning_ms = elapsed_ms(stage_start);
  stage_start = Clock::now();

  // 4. OD gates and transition extraction.
  std::vector<odselect::OdGate> gates;
  for (const synth::GateRoad& g : results.map.gates) {
    gates.emplace_back(g.name, g.geometry, config_.gate);
  }
  const geo::LocalProjection& proj = results.map.network.projection();
  const odselect::TransitionExtractor extractor(gates, proj);
  const geo::Bbox region =
      results.map.network.Bounds().Inflated(300.0);

  // 5. Matching machinery.
  const roadnet::SpatialIndex index(&results.map.network);
  const mapmatch::IncrementalMatcher matcher(&results.map.network, &index,
                                             config_.matcher);
  const mapattr::AttributeFetcher fetcher(&results.map.network,
                                          config_.attributes);

  // Gate lookup by name, built once (the per-transition linear scan over
  // gates was O(gates x transitions)).
  std::unordered_map<std::string, const odselect::OdGate*> gate_by_name;
  for (const odselect::OdGate& g : gates) gate_by_name.emplace(g.name(), &g);

  // Selection + matching fans out over the cleaned trips: every segment
  // is independent given the shared read-only machinery above. Each
  // worker fills its segment's slot with ordered matched transitions
  // plus Table 3 funnel deltas; the slots are then merged in cleaned
  // order (== trip id order), so the funnel, the match report's running
  // mean, and the transition list are byte-identical at any thread
  // count.
  struct SegmentMatchOutput {
    int64_t filtered_cleaned = 0;
    int64_t transitions_total = 0;
    int64_t transitions_central = 0;
    int64_t post_filtered = 0;
    std::vector<MatchedTransition> transitions;
  };
  std::vector<SegmentMatchOutput> match_outputs(cleaned.size());

  TAXITRACE_RETURN_IF_ERROR(executor.ParallelFor(
      0, static_cast<int64_t>(cleaned.size()), [&](int64_t i) -> Status {
        const trace::Trip& segment = cleaned[static_cast<size_t>(i)];
        SegmentMatchOutput& out = match_outputs[static_cast<size_t>(i)];

        const odselect::TripGateAnalysis analysis =
            extractor.Analyze(segment);
        if (!analysis.crosses_gate_at_angle ||
            analysis.distinct_gates_crossed < 2) {
          return Status::OK();
        }
        ++out.filtered_cleaned;

        for (const odselect::Transition& transition : analysis.transitions) {
          if (!odselect::IsSelectedDirection(transition,
                                             config_.transition_filter)) {
            continue;
          }
          ++out.transitions_total;
          if (!odselect::IsWithinCentralArea(transition,
                                             results.map.central_area,
                                             region, proj,
                                             config_.transition_filter)) {
            continue;
          }
          ++out.transitions_central;

          // Map matching (only cleared transitions through the centre
          // are matched, as in the paper).
          Result<mapmatch::MatchedRoute> route =
              matcher.Match(transition.segment);
          if (!route.ok()) continue;

          const auto origin_it = gate_by_name.find(transition.origin);
          const auto dest_it = gate_by_name.find(transition.destination);
          if (origin_it == gate_by_name.end() ||
              dest_it == gate_by_name.end()) {
            continue;
          }
          if (!odselect::PassesEndpointPostFilter(
                  route->geometry, *origin_it->second, *dest_it->second,
                  config_.transition_filter)) {
            continue;
          }
          ++out.post_filtered;

          // 6. Attributes and the per-transition record.
          MatchedTransition mt{transition, std::move(*route), {}};
          mt.record.trip_id = transition.segment.trip_id;
          mt.record.car_id = transition.segment.car_id;
          mt.record.direction = transition.Label();
          mt.record.start_time_s = transition.segment.StartTime();
          mt.record.route_time_h =
              trace::TimeSpanSeconds(transition.segment.points) / 3600.0;
          mt.record.route_distance_km = mt.route.length_m / 1000.0;
          mt.record.low_speed_share =
              analysis::LowSpeedShare(transition.segment, config_.speed);
          mt.record.normal_speed_share = analysis::NormalSpeedShare(
              transition.segment, mt.route, results.map.network,
              config_.speed);
          double fuel = 0.0;
          for (size_t k = 1; k < transition.segment.points.size(); ++k) {
            fuel += transition.segment.points[k].fuel_delta_ml;
          }
          mt.record.fuel_ml = fuel;
          mt.record.attributes = fetcher.Fetch(mt.route);
          out.transitions.push_back(std::move(mt));
        }
        return Status::OK();
      }));

  // Per-car funnel rows (Table 3), folded in cleaned order.
  std::unordered_map<int, odselect::Table3Row> funnel;
  for (size_t i = 0; i < cleaned.size(); ++i) {
    odselect::Table3Row& row = funnel[cleaned[i].car_id];
    row.car_id = cleaned[i].car_id;
    ++row.segments_total;
    SegmentMatchOutput& out = match_outputs[i];
    row.filtered_cleaned += out.filtered_cleaned;
    row.transitions_total += out.transitions_total;
    row.transitions_central += out.transitions_central;
    row.post_filtered += out.post_filtered;
    for (MatchedTransition& mt : out.transitions) {
      results.match_report.Add(mt.route);
      results.transitions.push_back(std::move(mt));
    }
  }

  for (int car = 1; car <= config_.fleet.num_cars; ++car) {
    odselect::Table3Row row = funnel[car];
    row.car_id = car;
    results.table3.push_back(row);
  }

  timings.selection_matching_ms = elapsed_ms(stage_start);
  stage_start = Clock::now();

  // 7. Grid statistics over all transition point speeds.
  results.grid_cell_m = config_.grid_cell_m;
  const analysis::Grid grid(config_.grid_cell_m);
  analysis::CellSpeedAccumulator all_speeds(grid);
  std::unordered_map<std::string, analysis::CellSpeedAccumulator>
      by_direction;
  model::OneWayReml cell_model;
  std::unordered_map<analysis::CellId, size_t, analysis::CellIdHash>
      cell_group;
  double speed_sum = 0.0;
  double season_sum[analysis::kNumSeasons] = {};
  int64_t season_n[analysis::kNumSeasons] = {};

  for (const MatchedTransition& mt : results.transitions) {
    auto dir_it = by_direction.find(mt.record.direction);
    if (dir_it == by_direction.end()) {
      dir_it = by_direction
                   .emplace(mt.record.direction,
                            analysis::CellSpeedAccumulator(grid))
                   .first;
    }
    for (const trace::RoutePoint& p : mt.transition.segment.points) {
      const geo::EnPoint local = proj.Forward(p.position);
      all_speeds.Add(local, p.speed_kmh);
      dir_it->second.Add(local, p.speed_kmh);

      const analysis::CellId cell = grid.CellOf(local);
      auto [group_it, inserted] =
          cell_group.emplace(cell, results.model_cells.size());
      if (inserted) results.model_cells.push_back(cell);
      cell_model.Add(group_it->second, p.speed_kmh);

      ++results.total_point_speeds;
      speed_sum += p.speed_kmh;
      const int season =
          static_cast<int>(analysis::SeasonOfTimestamp(p.timestamp_s));
      season_sum[season] += p.speed_kmh;
      ++season_n[season];
    }
  }
  results.overall_mean_speed_kmh =
      results.total_point_speeds > 0
          ? speed_sum / static_cast<double>(results.total_point_speeds)
          : 0.0;
  for (int s = 0; s < analysis::kNumSeasons; ++s) {
    results.seasonal[s].n = season_n[s];
    results.seasonal[s].mean_kmh =
        season_n[s] > 0 ? season_sum[s] / static_cast<double>(season_n[s])
                        : 0.0;
    results.seasonal[s].delta_kmh =
        season_n[s] > 0
            ? results.seasonal[s].mean_kmh - results.overall_mean_speed_kmh
            : 0.0;
  }

  // 8. Cell joins and the mixed model.
  results.cell_features = ComputeCellFeatures(results.map.network, grid);
  results.cells = BuildCellRecords(all_speeds, results.cell_features);
  for (const auto& [direction, acc] : by_direction) {
    results.cells_by_direction[direction] =
        BuildCellRecords(acc, results.cell_features);
  }
  if (cell_model.num_observations() > 3 && cell_model.num_groups() >= 2) {
    TAXITRACE_ASSIGN_OR_RETURN(results.cell_model, cell_model.Fit());
    TAXITRACE_ASSIGN_OR_RETURN(results.geography_lrt,
                               model::TestRandomEffect(cell_model));
  }
  timings.analysis_ms = elapsed_ms(stage_start);
  results.timings = timings;
  return results;
}

}  // namespace core
}  // namespace taxitrace
