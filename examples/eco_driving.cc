// Eco-driving / Driving coach: the post-driving analysis of the paper's
// prior work ([31]), fed by this pipeline. Scores every analysed
// transition, generates per-trip advice, relates low speed to fuel (the
// paper's §VI-A motivation), and ranks the fleet's drivers.
//
//   $ ./eco_driving

#include <cmath>
#include <cstdio>
#include <map>

#include "taxitrace/analysis/summary_stats.h"
#include "taxitrace/coach/advisor.h"
#include "taxitrace/coach/driver_profile.h"
#include "taxitrace/core/pipeline.h"

int main() {
  using namespace taxitrace;

  core::Pipeline pipeline(core::StudyConfig::SmallStudy());
  const Result<core::StudyResults> run = pipeline.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const core::StudyResults& results = *run;
  if (results.transitions.size() < 5) {
    std::fprintf(stderr, "not enough transitions for the analysis\n");
    return 1;
  }

  // 1. Score every transition with its matched map context.
  std::vector<coach::ScoredTrip> scored;
  std::vector<std::pair<double, double>> low_vs_economy;
  for (const core::MatchedTransition& mt : results.transitions) {
    coach::ScoredTrip entry;
    entry.car_id = mt.record.car_id;
    entry.score = coach::ScoreTrip(mt.transition.segment, &mt.route,
                                   &results.map.network);
    if (entry.score.distance_km > 0.1) {
      low_vs_economy.emplace_back(entry.score.low_speed_share,
                                  entry.score.fuel_per_km_ml);
    }
    scored.push_back(std::move(entry));
  }

  // 2. The paper's finding: low speed correlates with fuel consumption.
  double mx = 0, my = 0;
  for (const auto& [x, y] : low_vs_economy) {
    mx += x;
    my += y;
  }
  mx /= static_cast<double>(low_vs_economy.size());
  my /= static_cast<double>(low_vs_economy.size());
  double sxy = 0, sxx = 0, syy = 0;
  for (const auto& [x, y] : low_vs_economy) {
    sxy += (x - mx) * (y - my);
    sxx += (x - mx) * (x - mx);
    syy += (y - my) * (y - my);
  }
  std::printf(
      "Correlation(low-speed share, fuel per km) = %.2f over %zu trips\n"
      "(the paper: low speed correlates to fuel consumption)\n\n",
      sxy / std::sqrt(sxx * syy), low_vs_economy.size());

  // 3. Fleet ranking.
  const std::vector<coach::DriverProfile> profiles =
      coach::BuildDriverProfiles(scored);
  std::printf("Driver ranking (eco score 0-100):\n");
  std::printf(
      "  car  trips  eco score  idle%%  harsh/km  ml/km  excess (l)\n");
  for (const coach::DriverProfile& p : profiles) {
    std::printf("  %3d  %5lld  %9.1f  %5.1f  %8.2f  %5.0f  %9.2f\n",
                p.car_id, static_cast<long long>(p.trips),
                p.mean_eco_score, 100.0 * p.mean_idle_share,
                p.mean_harsh_per_km, p.mean_fuel_per_km_ml,
                p.total_fuel_excess_l);
  }

  // 4. Advice for the worst-scoring trip.
  const coach::ScoredTrip* worst = &scored.front();
  for (const coach::ScoredTrip& trip : scored) {
    if (trip.score.eco_score < worst->score.eco_score) worst = &trip;
  }
  std::printf(
      "\nCoach advice for the weakest trip (car %d, eco score %.0f, "
      "%.1f km):\n",
      worst->car_id, worst->score.eco_score, worst->score.distance_km);
  for (const coach::Advice& advice : coach::AdviseTrip(worst->score)) {
    std::printf("  [%s] %s\n",
                std::string(coach::AdviceTopicName(advice.topic)).c_str(),
                advice.message.c_str());
  }
  return 0;
}
