// RAII stage tracing: a Trace collects SpanRecords (name, nesting,
// thread, wall time, items processed) and renders them as JSON or as a
// flame-style text tree. Spans nest per thread: a StageSpan opened
// while another span of the same Trace is open on the same thread
// becomes its child.
//
// This is the only sanctioned home for wall-clock timing in the
// library besides the Executor's queue accounting — the tt_lint
// `adhoc-timing` rule bans std::chrono elsewhere in src/ so every
// stage cost flows through one uniform record.

#ifndef TAXITRACE_OBS_STAGE_SPAN_H_
#define TAXITRACE_OBS_STAGE_SPAN_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace taxitrace {
namespace obs {

/// One finished (or still-open) span.
struct SpanRecord {
  std::string name;
  int parent = -1;  ///< Index of the enclosing span in the trace, -1 = root.
  int depth = 0;
  uint64_t thread_id = 0;    ///< Hash of the opening thread's id.
  double start_ms = 0.0;     ///< Offset from the trace's construction.
  double duration_ms = 0.0;  ///< 0 while the span is still open.
  int64_t items = 0;         ///< Caller-reported items processed.
};

/// Collects spans for one study run. Thread-safe; span begin/end from
/// worker threads is allowed (each thread keeps its own nesting stack).
class Trace {
 public:
  Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Opens a span and returns its record index.
  int Begin(std::string name);

  /// Closes the span opened by `Begin` and stores its duration/items.
  void End(int index, int64_t items);

  /// Milliseconds since the trace was constructed.
  [[nodiscard]] double NowMs() const;

  /// Copy of every record, in begin order.
  [[nodiscard]] std::vector<SpanRecord> records() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
};

/// RAII handle over Trace::Begin/End. A null trace makes every method a
/// no-op, so call sites need no `if (enabled)` guards.
class StageSpan {
 public:
  StageSpan(Trace* trace, std::string name);
  ~StageSpan();

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  /// Adds to the span's items-processed tally.
  void AddItems(int64_t n) { items_ += n; }

  /// Wall time since the span opened (0 on a null trace).
  [[nodiscard]] double ElapsedMs() const;

  /// Closes the span early (the destructor then does nothing).
  void Finish();

 private:
  Trace* trace_;
  int index_ = -1;
  int64_t items_ = 0;
  double begin_ms_ = 0.0;
};

/// JSON array of span objects, in begin order.
std::string TraceJson(const std::vector<SpanRecord>& records);

/// Flame-style text tree: indentation = nesting, with per-span wall
/// time and item counts.
std::string TraceTree(const std::vector<SpanRecord>& records);

}  // namespace obs
}  // namespace taxitrace

#endif  // TAXITRACE_OBS_STAGE_SPAN_H_
