#!/usr/bin/env python3
"""Entry shim: the linter lives in the tt_lint package next to this
file (scripts/tt_lint/). Kept so `python3 scripts/tt_lint.py` — the
invocation ctest and CI use — stays stable across the regex-to-engine
rewrite. See `--list-rules` for the catalogue and docs/ARCHITECTURE.md
"Static analysis" for the rule reference and suppression policy."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from tt_lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
