// The paper's Eq. (3): Y_ij = mu + u_cell(i) + e_ij with Gaussian random
// intercepts per cell, variances estimated by REML and cell effects
// predicted by BLUP — specialised closed-form computations for the
// one-way layout (no dense n x n algebra).

#ifndef TAXITRACE_MODEL_ONE_WAY_REML_H_
#define TAXITRACE_MODEL_ONE_WAY_REML_H_

#include <vector>

#include "taxitrace/common/result.h"

namespace taxitrace {
namespace model {

/// A fitted one-way random-intercept model.
struct OneWayRemlFit {
  double mu = 0.0;            ///< GLS grand intercept.
  double mu_se = 0.0;
  double sigma2_residual = 0.0;
  double sigma2_group = 0.0;
  double lambda = 0.0;        ///< sigma2_group / sigma2_residual.
  double reml_criterion = 0.0;  ///< -2 profile REML log-likelihood.
  int64_t num_observations = 0;
  /// Per-group results, indexed like the groups passed to Add().
  std::vector<int64_t> group_n;
  std::vector<double> group_mean;
  std::vector<double> blup;     ///< Predicted random intercepts.
  std::vector<double> blup_se;  ///< Prediction standard errors.
  std::vector<double> shrinkage;  ///< B_i = n_i lambda / (1 + n_i lambda).
};

/// Streaming one-way REML. Groups are dense indices 0..q-1; groups that
/// receive no observations are excluded from the fit (the paper excludes
/// cells without measurement points).
class OneWayReml {
 public:
  OneWayReml() = default;

  /// Adds one observation of group `group` (indices may arrive in any
  /// order; the group table grows as needed).
  void Add(size_t group, double y);

  /// Number of groups seen (including empty ones below the max index).
  [[nodiscard]] size_t num_groups() const { return n_.size(); }
  [[nodiscard]] int64_t num_observations() const { return total_n_; }

  /// Fits by profiling the REML criterion over lambda (golden-section
  /// search on a log grid). Fails with fewer than two groups or two
  /// observations per fit.
  Result<OneWayRemlFit> Fit() const;

  /// The -2 REML criterion at a given lambda (exposed for tests and the
  /// ablation bench).
  [[nodiscard]] double RemlCriterion(double lambda) const;

 private:
  struct Gls {
    double mu;
    double weight_sum;  ///< sum_i n_i / (1 + n_i lambda), times 1/sigma2.
    double q;           ///< profile quadratic form.
  };
  [[nodiscard]] Gls ComputeGls(double lambda) const;

  std::vector<int64_t> n_;
  std::vector<double> mean_;
  std::vector<double> m2_;
  int64_t total_n_ = 0;
};

}  // namespace model
}  // namespace taxitrace

#endif  // TAXITRACE_MODEL_ONE_WAY_REML_H_
