// Known-good: default (seq_cst) atomics carry no relaxed-order risk;
// obs/ relaxed tallies are covered in obs/wall_clock.cc.

#include "taxitrace/core/fake.h"

namespace taxitrace {

void GoodSeqCst(std::atomic<int>& c) {
  c.fetch_add(1);
  c.store(0);
}

int GoodAcquireRelease(std::atomic<int>& c) {
  c.store(1, std::memory_order_release);
  return c.load(std::memory_order_acquire);
}

}  // namespace taxitrace
