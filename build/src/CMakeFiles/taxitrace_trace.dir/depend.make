# Empty dependencies file for taxitrace_trace.
# This may be replaced when dependencies are built.
