file(REMOVE_RECURSE
  "CMakeFiles/feature_analysis_test.dir/feature_analysis_test.cc.o"
  "CMakeFiles/feature_analysis_test.dir/feature_analysis_test.cc.o.d"
  "feature_analysis_test"
  "feature_analysis_test.pdb"
  "feature_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
