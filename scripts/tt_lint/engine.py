"""tt_lint engine: source model, suppressions, passes, finding flow.

Suppression policy (enforced here, not in individual rules):

  // tt-lint: allow(<rule>): <reason>        this line or the next
  // tt-lint: allow-file(<rule>): <reason>   whole file (put at top)

A suppression without a reason still suppresses its target finding (so
the report is not doubled) but raises a `suppression-reason` finding of
its own; a suppression that never fires raises `unused-suppression`.
Neither engine finding can itself be suppressed — fix the comment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from .tokenizer import Comment, Token, tokenize

SRC_SUFFIXES = {".h", ".cc"}

# One suppression per comment; the reason runs to the end of it.
_ALLOW_RE = re.compile(
    r"tt-lint:\s*allow(-file)?\(([a-z0-9-]+)\)(?::\s*(.*\S))?")

# Engine-level rule ids (documented in the catalogue with the others).
SUPPRESSION_REASON = "suppression-reason"
UNUSED_SUPPRESSION = "unused-suppression"


@dataclass(frozen=True, order=True)
class Finding:
    path: str      # repo-relative posix path
    line: int
    rule: str
    message: str
    col: int = 1


@dataclass
class Suppression:
    rule: str
    line: int
    file_scope: bool
    reason: str | None
    used: bool = False


class SourceFile:
    """One lintable file: text, tokens, comments, suppressions."""

    def __init__(self, path: Path, repo_root: Path):
        self.path = path
        self.rel = path.relative_to(repo_root).as_posix()
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.lines = self.text.splitlines()
        self.tokens, self.comments = tokenize(self.text)
        self.suppressions: list[Suppression] = []
        self._line_allows: dict[tuple[int, str], Suppression] = {}
        self._file_allows: dict[str, Suppression] = {}
        self._parse_suppressions()

    def _parse_suppressions(self) -> None:
        for comment in self.comments:
            for m in _ALLOW_RE.finditer(comment.text):
                file_scope = m.group(1) == "-file"
                rule = m.group(2)
                reason = m.group(3)
                sup = Suppression(rule=rule, line=comment.line,
                                  file_scope=file_scope,
                                  reason=reason.strip() if reason else None)
                self.suppressions.append(sup)
                if file_scope:
                    self._file_allows.setdefault(rule, sup)
                else:
                    self._line_allows.setdefault((comment.line, rule), sup)

    def suppression_for(self, rule: str, line: int) -> Suppression | None:
        # A line suppression covers its own line (trailing comment) or
        # the line below it (standalone comment above the code).
        sup = self._line_allows.get((line, rule)) \
            or self._line_allows.get((line - 1, rule))
        if sup is not None:
            return sup
        return self._file_allows.get(rule)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


@dataclass
class RepoContext:
    """Repo-wide facts collected in pass 1, visible to every rule."""
    repo_root: Path
    files: list[SourceFile] = field(default_factory=list)
    # Functions declared (in headers) to return Status, by name.
    status_fns: set[str] = field(default_factory=set)
    # Names of variables/members declared with an unordered container
    # type, per file and repo-wide; names of functions returning one.
    unordered_vars_by_file: dict[str, set[str]] = field(
        default_factory=dict)
    unordered_member_vars: set[str] = field(default_factory=set)
    unordered_fns: set[str] = field(default_factory=set)

    def by_rel(self, rel: str) -> SourceFile | None:
        for f in self.files:
            if f.rel == rel:
                return f
        return None

    def unordered_names_for(self, sf: SourceFile) -> set[str]:
        """Bare-identifier matching set for a file: its own declarations
        plus its sibling header's (foo.cc sees foo.h's members)."""
        names = set(self.unordered_vars_by_file.get(sf.rel, ()))
        if sf.rel.endswith(".cc"):
            sibling = sf.rel[:-3] + ".h"
            names |= self.unordered_vars_by_file.get(sibling, set())
        # Member-style names (trailing underscore) are unambiguous
        # enough to match repo-wide.
        names |= {n for n in self.unordered_member_vars if n.endswith("_")}
        return names


def run_analysis(files: list[SourceFile], repo_root: Path,
                 file_rules, repo_rules) -> tuple[list[Finding], int]:
    """Run every pass. Returns (reportable findings, suppressed count).

    Engine findings (reasonless or unused suppressions) are appended
    after rule findings are resolved against suppressions.
    """
    from .rules import collect_repo_facts  # local import: no cycle

    ctx = RepoContext(repo_root=repo_root, files=files)
    collect_repo_facts(ctx)

    raw: list[Finding] = []
    for sf in files:
        for rule in file_rules:
            raw.extend(rule.check_file(sf, ctx))
    for rule in repo_rules:
        raw.extend(rule.check_repo(ctx))

    by_rel = {f.rel: f for f in files}
    reported: list[Finding] = []
    suppressed = 0
    for finding in raw:
        sf = by_rel.get(finding.path)
        sup = sf.suppression_for(finding.rule, finding.line) \
            if sf is not None else None
        if sup is not None:
            sup.used = True
            suppressed += 1
        else:
            reported.append(finding)

    for sf in files:
        for sup in sf.suppressions:
            scope = "allow-file" if sup.file_scope else "allow"
            if sup.reason is None:
                reported.append(Finding(
                    path=sf.rel, line=sup.line, rule=SUPPRESSION_REASON,
                    message=f"suppression '{scope}({sup.rule})' has no "
                            "reason; write "
                            f"'// tt-lint: {scope}({sup.rule}): <why>'"))
            if not sup.used:
                reported.append(Finding(
                    path=sf.rel, line=sup.line, rule=UNUSED_SUPPRESSION,
                    message=f"suppression '{scope}({sup.rule})' never "
                            "fires; delete it"))

    reported.sort(key=lambda f: (f.path, f.line, f.rule))
    return reported, suppressed
