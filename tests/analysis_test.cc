#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "taxitrace/analysis/cell_stats.h"
#include "taxitrace/analysis/grid.h"
#include "taxitrace/analysis/route_stats.h"
#include "taxitrace/analysis/seasons.h"
#include "taxitrace/analysis/speed_categories.h"
#include "taxitrace/analysis/summary_stats.h"
#include "taxitrace/common/random.h"
#include "taxitrace/trace/time_util.h"

namespace taxitrace {
namespace analysis {
namespace {

using geo::EnPoint;

// --- Grid ---------------------------------------------------------------------

TEST(GridTest, CellOfFloorsCoordinates) {
  const Grid grid(200.0);
  EXPECT_EQ(grid.CellOf(EnPoint{10, 10}), (CellId{0, 0}));
  EXPECT_EQ(grid.CellOf(EnPoint{-10, 10}), (CellId{-1, 0}));
  EXPECT_EQ(grid.CellOf(EnPoint{399, -1}), (CellId{1, -1}));
  EXPECT_EQ(grid.CellOf(EnPoint{200, 200}), (CellId{1, 1}));  // boundary
}

TEST(GridTest, CenterAndBoundsConsistent) {
  const Grid grid(200.0);
  const CellId c{2, -3};
  const EnPoint center = grid.CellCenter(c);
  EXPECT_EQ(grid.CellOf(center), c);
  const geo::Bbox b = grid.CellBounds(c);
  EXPECT_DOUBLE_EQ(b.max_x - b.min_x, 200.0);
  EXPECT_TRUE(b.Contains(center));
}

TEST(GridTest, CustomCellSize) {
  const Grid grid(50.0);
  EXPECT_EQ(grid.CellOf(EnPoint{49, 0}), (CellId{0, 0}));
  EXPECT_EQ(grid.CellOf(EnPoint{51, 0}), (CellId{1, 0}));
}

// CellOf -> CellBounds must round-trip in every quadrant: each cell's
// min corner and interior belong to the cell (half-open boxes), the max
// corner belongs to the next cell, and CellCenter lands back in the
// cell. Exercises negative coordinates where flooring (not truncation)
// is the difference between a correct grid and an off-by-one around 0.
TEST(GridTest, CellBoundsRoundTripAllQuadrants) {
  const Grid grid(200.0);
  const int32_t coords[] = {-7, -1, 0, 1, 6};
  for (const int32_t cx : coords) {
    for (const int32_t cy : coords) {
      const CellId c{cx, cy};
      const geo::Bbox b = grid.CellBounds(c);
      EXPECT_DOUBLE_EQ(b.max_x - b.min_x, 200.0);
      EXPECT_DOUBLE_EQ(b.max_y - b.min_y, 200.0);
      // Min corner and interior points round-trip to the same cell.
      EXPECT_EQ(grid.CellOf(EnPoint{b.min_x, b.min_y}), c);
      EXPECT_EQ(grid.CellOf(EnPoint{b.min_x + 0.5, b.max_y - 0.5}), c);
      EXPECT_EQ(grid.CellOf(EnPoint{b.max_x - 0.5, b.min_y + 0.5}), c);
      EXPECT_EQ(grid.CellOf(grid.CellCenter(c)), c);
      // The max corner is the min corner of the diagonal neighbour.
      EXPECT_EQ(grid.CellOf(EnPoint{b.max_x, b.max_y}),
                (CellId{cx + 1, cy + 1}));
    }
  }
}

// Regression for the old ad-hoc CellIdHash (cx * phi32 ^ (cy << 16)):
// its low 16 output bits were a function of cx alone, so any power-of-
// two bucket count <= 65536 collapsed whole columns into one bucket.
// The splitmix64-based hash must (a) be injective over a dense signed
// range — splitmix64 is a bijection of the packed (cx, cy) word — and
// (b) spread that range over 1024 buckets with near-uniform load.
TEST(GridTest, CellIdHashInjectiveAndWellDistributed) {
  constexpr int32_t kHalf = 64;  // cx, cy in [-64, 64): 16384 cells
  constexpr size_t kBuckets = 1024;
  const CellIdHash hash;
  std::unordered_set<uint64_t> seen;
  std::vector<int> load(kBuckets, 0);
  for (int32_t cx = -kHalf; cx < kHalf; ++cx) {
    for (int32_t cy = -kHalf; cy < kHalf; ++cy) {
      const uint64_t h = hash(CellId{cx, cy});
      EXPECT_TRUE(seen.insert(h).second)
          << "collision at (" << cx << ", " << cy << ")";
      ++load[h % kBuckets];
    }
  }
  EXPECT_EQ(seen.size(), 4u * kHalf * kHalf);
  // Expected load is 16 per bucket; the old hash packed 128 cells into
  // each used bucket. Allow generous slack over a true uniform draw.
  const int max_load = *std::max_element(load.begin(), load.end());
  EXPECT_LE(max_load, 48) << "bucket distribution is badly skewed";
}

TEST(CellSpeedAccumulatorTest, WelfordMatchesDirectComputation) {
  const Grid grid(200.0);
  CellSpeedAccumulator acc(grid);
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Uniform(0, 60);
    values.push_back(v);
    acc.Add(EnPoint{50, 50}, v);
  }
  ASSERT_EQ(acc.cells().size(), 1u);
  const auto& m = acc.cells().begin()->second;
  EXPECT_EQ(m.n, 500);
  EXPECT_NEAR(m.mean, Mean(values), 1e-9);
  EXPECT_NEAR(m.Variance(), Variance(values), 1e-6);
  EXPECT_EQ(acc.total_points(), 500);
}

TEST(CellSpeedAccumulatorTest, SeparatesCells) {
  CellSpeedAccumulator acc{Grid(200.0)};
  acc.Add(EnPoint{10, 10}, 10.0);
  acc.Add(EnPoint{310, 10}, 50.0);
  EXPECT_EQ(acc.cells().size(), 2u);
}

// Merge() implements the Chan et al. pairwise combine: folding sharded
// accumulators must agree with feeding every point into one
// accumulator, for overlapping and disjoint cells alike.
TEST(CellSpeedAccumulatorTest, MergeMatchesDirectAccumulation) {
  const Grid grid(200.0);
  CellSpeedAccumulator direct(grid);
  CellSpeedAccumulator shard_a(grid);
  CellSpeedAccumulator shard_b(grid);
  Rng rng(17);
  for (int i = 0; i < 400; ++i) {
    // Three cells: one only in shard a, one only in shard b, one shared.
    const EnPoint points[] = {EnPoint{50, 50}, EnPoint{450, 50},
                              EnPoint{50, 450}};
    const EnPoint p = points[i % 3];
    const double v = rng.Uniform(0, 80);
    direct.Add(p, v);
    if (i % 3 == 0) {
      shard_a.Add(p, v);
    } else if (i % 3 == 1) {
      shard_b.Add(p, v);
    } else {
      (i % 2 == 0 ? shard_a : shard_b).Add(p, v);
    }
  }

  shard_a.Merge(shard_b);
  EXPECT_EQ(shard_a.total_points(), direct.total_points());
  ASSERT_EQ(shard_a.cells().size(), direct.cells().size());
  for (const auto& [cell, expected] : direct.cells()) {
    const auto it = shard_a.cells().find(cell);
    ASSERT_NE(it, shard_a.cells().end());
    EXPECT_EQ(it->second.n, expected.n);
    EXPECT_NEAR(it->second.mean, expected.mean, 1e-9);
    EXPECT_NEAR(it->second.Variance(), expected.Variance(), 1e-9);
  }
}

// Merging an identical shard sequence twice must be bit-identical —
// this is what lets the snapshot builder promise byte-identical output
// at any worker count, as long as shard count and fold order are fixed.
TEST(CellSpeedAccumulatorTest, MergeIsBitwiseRepeatable) {
  const Grid grid(200.0);
  auto build_shard = [&grid](uint64_t seed, int points) {
    CellSpeedAccumulator acc(grid);
    Rng rng(seed);
    for (int i = 0; i < points; ++i) {
      acc.Add(EnPoint{rng.Uniform(-400, 400), rng.Uniform(-400, 400)},
              rng.Uniform(0, 80));
    }
    return acc;
  };
  auto fold = [&] {
    // Start from an empty accumulator: the empty-this fast path must
    // also reproduce the first shard's moments bit-for-bit.
    CellSpeedAccumulator total(grid);
    for (uint64_t s = 1; s <= 4; ++s) total.Merge(build_shard(s, 200));
    return total;
  };

  const CellSpeedAccumulator a = fold();
  const CellSpeedAccumulator b = fold();
  ASSERT_EQ(a.cells().size(), b.cells().size());
  EXPECT_EQ(a.total_points(), b.total_points());
  for (const auto& [cell, lhs] : a.cells()) {
    const auto it = b.cells().find(cell);
    ASSERT_NE(it, b.cells().end());
    EXPECT_EQ(lhs.n, it->second.n);
    // Bit-level equality, not tolerance: identical fold order must give
    // identical floating-point state.
    EXPECT_EQ(std::bit_cast<uint64_t>(lhs.mean),
              std::bit_cast<uint64_t>(it->second.mean));
    EXPECT_EQ(std::bit_cast<uint64_t>(lhs.m2),
              std::bit_cast<uint64_t>(it->second.m2));
  }
}

// --- Summary stats ---------------------------------------------------------------

TEST(SummaryTest, KnownQuartiles) {
  const Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.n, 5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(SummaryTest, InterpolatedQuartiles) {
  const Summary s = Summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

TEST(SummaryTest, UnsortedInputHandled) {
  const Summary s = Summarize({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(SummaryTest, EmptyAndSingleton) {
  EXPECT_EQ(Summarize({}).n, 0);
  const Summary s = Summarize({7.0});
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(SummaryTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(Variance({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(Variance({5}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(SummaryTest, SortedQuantileEdges) {
  const std::vector<double> v = {10, 20, 30};
  EXPECT_DOUBLE_EQ(SortedQuantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(v, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(v, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(SortedQuantile({}, 0.5), 0.0);
}

// --- Seasons -----------------------------------------------------------------------

TEST(SeasonsTest, MonthMapping) {
  EXPECT_EQ(SeasonOfMonth(12), Season::kWinter);
  EXPECT_EQ(SeasonOfMonth(1), Season::kWinter);
  EXPECT_EQ(SeasonOfMonth(3), Season::kSpring);
  EXPECT_EQ(SeasonOfMonth(6), Season::kSummer);
  EXPECT_EQ(SeasonOfMonth(9), Season::kAutumn);
  EXPECT_EQ(SeasonOfMonth(11), Season::kAutumn);
}

TEST(SeasonsTest, TimestampMapping) {
  // Study epoch (October 2012) is autumn; +120 days is late January.
  EXPECT_EQ(SeasonOfTimestamp(0.0), Season::kAutumn);
  EXPECT_EQ(SeasonOfTimestamp(120.0 * trace::kSecondsPerDay),
            Season::kWinter);
}

TEST(SeasonsTest, Names) {
  EXPECT_EQ(SeasonName(Season::kWinter), "winter");
  EXPECT_EQ(SeasonName(Season::kAutumn), "autumn");
}

// --- Speed categories ----------------------------------------------------------------

TEST(SpeedCategoriesTest, LowSpeedShare) {
  trace::Trip trip;
  for (int i = 0; i < 10; ++i) {
    trace::RoutePoint p;
    p.speed_kmh = i < 3 ? 5.0 : 30.0;
    trip.points.push_back(p);
  }
  EXPECT_DOUBLE_EQ(LowSpeedShare(trip), 0.3);
  EXPECT_DOUBLE_EQ(LowSpeedShare(trace::Trip{}), 0.0);
  SpeedCategoryOptions options;
  options.low_speed_kmh = 50.0;
  EXPECT_DOUBLE_EQ(LowSpeedShare(trip, options), 1.0);
}

TEST(SpeedCategoriesTest, NormalSpeedShareUsesMatchedLimits) {
  // Network: one 40 km/h edge.
  roadnet::RoadNetwork net(geo::LatLon{65, 25});
  const auto a = net.AddVertex({0, 0}, false);
  const auto b = net.AddVertex({500, 0}, false);
  roadnet::Edge e;
  e.from = a;
  e.to = b;
  e.geometry = geo::Polyline({{0, 0}, {500, 0}});
  e.speed_limit_kmh = 40.0;
  const auto eid = net.AddEdge(std::move(e));

  trace::Trip trip;
  mapmatch::MatchedRoute route;
  const double speeds[] = {45.0, 39.0, 20.0, 38.5};  // tolerance 2 km/h
  for (size_t i = 0; i < 4; ++i) {
    trace::RoutePoint p;
    p.speed_kmh = speeds[i];
    trip.points.push_back(p);
    route.points.push_back(mapmatch::MatchedPoint{
        i, roadnet::EdgePosition{eid, 100.0 * static_cast<double>(i)}, 2.0});
  }
  // 45, 39, 38.5 are all >= 40 - 2; 20 is not.
  EXPECT_DOUBLE_EQ(NormalSpeedShare(trip, route, net), 0.75);
  EXPECT_DOUBLE_EQ(
      NormalSpeedShare(trip, mapmatch::MatchedRoute{}, net), 0.0);
}

// --- Route stats (Table 4) -------------------------------------------------------------

TEST(RouteStatsTest, BuildTable4GroupsByDirection) {
  std::vector<TransitionRecord> records;
  for (int i = 0; i < 4; ++i) {
    TransitionRecord r;
    r.direction = i < 3 ? "T-S" : "S-T";
    r.route_time_h = 0.1 + 0.01 * i;
    r.route_distance_km = 2.0 + 0.1 * i;
    r.low_speed_share = 0.2;
    r.normal_speed_share = 0.1;
    r.fuel_ml = 200.0 + i;
    r.attributes.traffic_lights = 5 + i;
    r.attributes.junctions = 20;
    r.attributes.pedestrian_crossings = 8;
    records.push_back(r);
  }
  const std::vector<Table4Row> rows = BuildTable4(records);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].direction, "T-S");
  EXPECT_EQ(rows[0].route_time_h.n, 3);
  EXPECT_EQ(rows[1].direction, "S-T");
  EXPECT_EQ(rows[1].route_time_h.n, 1);
  EXPECT_EQ(rows[2].route_time_h.n, 0);  // T-L: empty
  EXPECT_NEAR(rows[0].low_speed_pct.mean, 20.0, 1e-9);  // percent
  EXPECT_NEAR(rows[0].traffic_lights.median, 6.0, 1e-9);
}

// --- Cell stats (Table 5) ----------------------------------------------------------------

std::vector<CellRecord> FourCells() {
  // Cells: (lights, bus) = (0,0), (0,1), (2,1), (3,0), with mean speeds
  // 30, 26, 18, 16.
  std::vector<CellRecord> cells(4);
  const int lights[] = {0, 0, 2, 3};
  const int buses[] = {0, 1, 1, 0};
  const double speeds[] = {30, 26, 18, 16};
  for (int i = 0; i < 4; ++i) {
    cells[static_cast<size_t>(i)].cell = CellId{i, 0};
    cells[static_cast<size_t>(i)].num_points = 10;
    cells[static_cast<size_t>(i)].mean_speed_kmh = speeds[i];
    cells[static_cast<size_t>(i)].features.traffic_lights = lights[i];
    cells[static_cast<size_t>(i)].features.bus_stops = buses[i];
  }
  return cells;
}

TEST(CellStatsTest, Table5Strata) {
  const Table5 t = BuildTable5(FourCells());
  EXPECT_EQ(t.no_lights.num_cells, 2);
  EXPECT_NEAR(t.no_lights.mean, 28.0, 1e-9);
  EXPECT_EQ(t.no_lights_no_bus.num_cells, 1);
  EXPECT_NEAR(t.no_lights_no_bus.mean, 30.0, 1e-9);
  EXPECT_EQ(t.lights_and_bus.num_cells, 1);
  EXPECT_NEAR(t.lights_and_bus.mean, 18.0, 1e-9);
  EXPECT_EQ(t.lights.num_cells, 2);
  EXPECT_NEAR(t.lights.min, 16.0, 1e-9);
  EXPECT_NEAR(t.lights.max, 18.0, 1e-9);
}

TEST(CellStatsTest, LightsReduceMeanSpeed) {
  const Table5 t = BuildTable5(FourCells());
  EXPECT_LT(t.lights.mean, t.no_lights.mean);  // the paper's key finding
}

TEST(CellStatsTest, SummarizeCellsEmptyPredicate) {
  const CellStratumStats s = SummarizeCells(
      FourCells(), [](const CellRecord&) { return false; });
  EXPECT_EQ(s.num_cells, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(CellStatsTest, BuildCellRecordsJoinsFeatures) {
  const Grid grid(200.0);
  CellSpeedAccumulator acc(grid);
  acc.Add(EnPoint{50, 50}, 20.0);
  acc.Add(EnPoint{50, 60}, 40.0);
  acc.Add(EnPoint{350, 50}, 10.0);

  std::unordered_map<CellId, CellFeatureCounts, CellIdHash> features;
  features[CellId{0, 0}].traffic_lights = 2;

  const std::vector<CellRecord> records = BuildCellRecords(acc, features);
  ASSERT_EQ(records.size(), 2u);
  // Deterministic row order: by (cy, cx).
  EXPECT_EQ(records[0].cell, (CellId{0, 0}));
  EXPECT_EQ(records[0].features.traffic_lights, 2);
  EXPECT_NEAR(records[0].mean_speed_kmh, 30.0, 1e-9);
  EXPECT_EQ(records[1].cell, (CellId{1, 0}));
  EXPECT_EQ(records[1].features.traffic_lights, 0);
}

TEST(CellStatsTest, ComputeCellFeaturesCountsJunctionsAndFeatures) {
  roadnet::RoadNetwork net(geo::LatLon{65, 25});
  // Junction at (100, 100) with three edges.
  const auto center = net.AddVertex({100, 100}, true);
  const auto a = net.AddVertex({100, 300}, false);
  const auto b = net.AddVertex({300, 100}, false);
  const auto c = net.AddVertex({100, -100}, false);
  const auto add_edge = [&](roadnet::VertexId to, EnPoint far) {
    roadnet::Edge e;
    e.from = center;
    e.to = to;
    e.geometry = geo::Polyline({{100, 100}, far});
    net.AddEdge(std::move(e));
  };
  add_edge(a, {100, 300});
  add_edge(b, {300, 100});
  add_edge(c, {100, -100});
  net.AddFeature(roadnet::FeatureType::kTrafficLight, EnPoint{110, 110});
  net.AddFeature(roadnet::FeatureType::kBusStop, EnPoint{250, 105});

  const Grid grid(200.0);
  const auto cells = ComputeCellFeatures(net, grid);
  const CellId junction_cell = grid.CellOf(EnPoint{100, 100});
  ASSERT_TRUE(cells.contains(junction_cell));
  EXPECT_EQ(cells.at(junction_cell).junctions, 1);
  EXPECT_EQ(cells.at(junction_cell).traffic_lights, 1);
  const CellId bus_cell = grid.CellOf(EnPoint{250, 105});
  EXPECT_EQ(cells.at(bus_cell).bus_stops, 1);
}

}  // namespace
}  // namespace analysis
}  // namespace taxitrace
