// The per-segment selection + matching unit of work, shared by the
// batch pipeline's ParallelFor over cleaned segments and the online
// ingestion path's per-window flush. One cleaned segment in, one
// SegmentMatchOutput out; all inputs are shared read-only machinery,
// every counter lands in exactly one bucket, and the per-segment route
// cache lives and dies inside the call — which is what makes the
// outputs foldable in any caller-chosen deterministic order and the
// two paths byte-identical.

#ifndef TAXITRACE_CORE_SEGMENT_MATCH_H_
#define TAXITRACE_CORE_SEGMENT_MATCH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "taxitrace/analysis/route_stats.h"
#include "taxitrace/analysis/speed_categories.h"
#include "taxitrace/geo/coordinates.h"
#include "taxitrace/mapattr/attribute_fetcher.h"
#include "taxitrace/mapmatch/incremental_matcher.h"
#include "taxitrace/odselect/od_gate.h"
#include "taxitrace/odselect/transition_extractor.h"
#include "taxitrace/odselect/transition_filter.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace core {

/// A transition with everything computed about it.
struct MatchedTransition {
  odselect::Transition transition;
  mapmatch::MatchedRoute route;
  analysis::TransitionRecord record;
};

/// What selecting and matching one cleaned segment produced: ordered
/// matched transitions plus Table 3 funnel deltas. Every examined
/// transition lands in exactly one bucket, so
/// transitions_examined == post_filtered + the five drop counters.
struct SegmentMatchOutput {
  int64_t filtered_cleaned = 0;
  int64_t transitions_total = 0;
  int64_t transitions_central = 0;
  int64_t post_filtered = 0;
  int64_t transitions_examined = 0;
  int64_t dropped_direction = 0;
  int64_t dropped_outside_central = 0;
  int64_t dropped_match_failed = 0;
  int64_t dropped_unknown_gate = 0;
  int64_t dropped_endpoint_filter = 0;
  // Final tallies of this segment's route cache. Folding them in a
  // deterministic segment order gives worker-count-independent totals
  // because each cache lives and dies inside one MatchSegment call.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  std::vector<MatchedTransition> transitions;
};

/// The shared read-only machinery MatchSegment runs against. Everything
/// pointed to must outlive the calls and is never mutated through this
/// struct, so any number of MatchSegment calls may run concurrently
/// against one context.
struct SegmentMatchContext {
  const odselect::TransitionExtractor* extractor = nullptr;
  const std::unordered_map<std::string, const odselect::OdGate*>*
      gate_by_name = nullptr;
  const mapmatch::IncrementalMatcher* matcher = nullptr;
  const mapattr::AttributeFetcher* fetcher = nullptr;
  const roadnet::RoadNetwork* network = nullptr;
  const geo::Polygon* central_area = nullptr;
  const geo::LocalProjection* projection = nullptr;
  geo::Bbox region;
  const odselect::TransitionFilterOptions* transition_filter = nullptr;
  const analysis::SpeedCategoryOptions* speed = nullptr;
  /// Capacity of the per-segment route cache (matcher gap-fill memo).
  size_t route_cache_capacity = 0;
};

/// Selects, matches and annotates every transition of one cleaned
/// segment. Thread-safe given the context contract above.
SegmentMatchOutput MatchSegment(const trace::Trip& segment,
                                const SegmentMatchContext& context);

}  // namespace core
}  // namespace taxitrace

#endif  // TAXITRACE_CORE_SEGMENT_MATCH_H_
