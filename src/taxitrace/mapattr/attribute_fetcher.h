// Fetching digital-map attribute data along matched routes (Section
// IV-F): the number of junctions, traffic lights and pedestrian
// crossings a transition passes. Bus stops are counted too but the
// paper's route statistics exclude them (the map does not tell which
// driving direction a stop serves).

#ifndef TAXITRACE_MAPATTR_ATTRIBUTE_FETCHER_H_
#define TAXITRACE_MAPATTR_ATTRIBUTE_FETCHER_H_

#include <unordered_map>
#include <vector>

#include "taxitrace/mapmatch/incremental_matcher.h"
#include "taxitrace/roadnet/tile.h"

namespace taxitrace {
namespace mapattr {

/// Attribute counts along one route.
struct RouteAttributes {
  int junctions = 0;
  int traffic_lights = 0;
  int pedestrian_crossings = 0;
  int bus_stops = 0;
};

/// Influence radii: a feature counts when the route passes within its
/// radius.
struct AttributeFetcherOptions {
  double traffic_light_radius_m = 30.0;
  double pedestrian_crossing_radius_m = 20.0;
  double bus_stop_radius_m = 25.0;
};

/// Fetches attributes along matched routes. Holds a pointer to the
/// network, which must outlive it.
class AttributeFetcher {
 public:
  explicit AttributeFetcher(const roadnet::RoadNetwork* network,
                            AttributeFetcherOptions options = {});

  /// Counts attributes along a matched route: junctions from the
  /// traversed edge sequence, point features by proximity to the driven
  /// geometry (each feature at most once).
  [[nodiscard]]
  RouteAttributes Fetch(const mapmatch::MatchedRoute& route) const;

  /// Junctions passed through by an edge-step sequence (interior
  /// vertices between consecutive steps that are true junctions).
  [[nodiscard]]
  int CountJunctionsPassed(const std::vector<roadnet::PathStep>& steps) const;

 private:
  const roadnet::RoadNetwork* network_;
  AttributeFetcherOptions options_;
  double tile_size_m_;  ///< Network tiling; 0 on single-tile maps.
  // Traffic lights only, extracted once and bucketed by the network's
  // tile lattice: Fetch scans lights against every route, and walking
  // the full feature table per route wastes most of the scan on
  // crossings and stops that are counted from edge attachment instead.
  // The tile split bounds each Fetch to the buckets its route's
  // bounding box overlaps, so per-query work follows the touched tile
  // working set rather than the map-wide light count. On single-tile
  // maps everything sits in the {0, 0} bucket (the historical scan).
  std::unordered_map<roadnet::TileCoord, std::vector<geo::EnPoint>,
                     roadnet::TileCoordHash>
      lights_by_tile_;
};

}  // namespace mapattr
}  // namespace taxitrace

#endif  // TAXITRACE_MAPATTR_ATTRIBUTE_FETCHER_H_
