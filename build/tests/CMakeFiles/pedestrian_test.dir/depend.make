# Empty dependencies file for pedestrian_test.
# This may be replaced when dependencies are built.
