file(REMOVE_RECURSE
  "libtaxitrace_model.a"
)
