#include "taxitrace/odselect/transition_extractor.h"

#include <algorithm>
#include <set>

namespace taxitrace {
namespace odselect {

TransitionExtractor::TransitionExtractor(
    std::vector<OdGate> gates, const geo::LocalProjection& projection)
    : gates_(std::move(gates)), projection_(projection) {}

std::vector<GateCrossing> TransitionExtractor::FindCrossings(
    const trace::Trip& trip) const {
  std::vector<GateCrossing> crossings;
  if (trip.points.size() < 2) return crossings;

  std::vector<geo::EnPoint> local(trip.points.size());
  for (size_t i = 0; i < trip.points.size(); ++i) {
    local[i] = projection_.Forward(trip.points[i].position);
  }
  for (size_t i = 0; i + 1 < local.size(); ++i) {
    for (size_t g = 0; g < gates_.size(); ++g) {
      const OdGate::Crossing c = gates_[g].Classify(local[i], local[i + 1]);
      if (c == OdGate::Crossing::kNone) continue;
      // Collapse consecutive detections of the same traversal (several
      // successive movement segments can lie inside the thick polygon).
      if (!crossings.empty() && crossings.back().gate_index == g &&
          crossings.back().direction == c &&
          i - crossings.back().last_point_index <= 3) {
        crossings.back().last_point_index = i;
        continue;
      }
      crossings.push_back(
          GateCrossing{g, i, i, c, trip.points[i].timestamp_s});
    }
  }
  return crossings;
}

TripGateAnalysis TransitionExtractor::Analyze(
    const trace::Trip& trip) const {
  TripGateAnalysis analysis;
  const std::vector<GateCrossing> crossings = FindCrossings(trip);
  analysis.crosses_gate_at_angle = !crossings.empty();
  {
    std::set<size_t> distinct;
    for (const GateCrossing& c : crossings) distinct.insert(c.gate_index);
    analysis.distinct_gates_crossed = static_cast<int>(distinct.size());
  }

  // Pair each inbound crossing with the next outbound crossing of a
  // different gate; a newer inbound crossing supersedes a pending one.
  const GateCrossing* pending_inbound = nullptr;
  for (const GateCrossing& c : crossings) {
    if (c.direction == OdGate::Crossing::kInbound) {
      pending_inbound = &c;
      continue;
    }
    if (pending_inbound == nullptr ||
        pending_inbound->gate_index == c.gate_index) {
      continue;
    }
    Transition t;
    t.origin = gates_[pending_inbound->gate_index].name();
    t.destination = gates_[c.gate_index].name();
    // The transition runs from the first contact with the origin road to
    // the end of the traversal of the destination road.
    const size_t first = pending_inbound->point_index;
    const size_t last =
        std::min(c.last_point_index + 1, trip.points.size() - 1);
    t.segment.trip_id = trip.trip_id;
    t.segment.car_id = trip.car_id;
    t.segment.points.assign(
        trip.points.begin() + static_cast<ptrdiff_t>(first),
        trip.points.begin() + static_cast<ptrdiff_t>(last) + 1);
    t.segment.RecomputeTotals();
    analysis.transitions.push_back(std::move(t));
    pending_inbound = nullptr;
  }
  return analysis;
}

}  // namespace odselect
}  // namespace taxitrace
