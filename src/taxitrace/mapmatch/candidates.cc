#include "taxitrace/mapmatch/candidates.h"

#include <algorithm>
#include <cmath>

namespace taxitrace {
namespace mapmatch {

double DistanceScore(double distance_m, const ScoreOptions& options) {
  return options.distance_mu -
         options.distance_a * std::pow(distance_m, options.distance_exp);
}

double HeadingScore(double movement_heading_rad, bool has_heading,
                    const roadnet::Edge& edge, size_t segment_index,
                    const ScoreOptions& options) {
  if (!has_heading) return 0.0;
  const double edge_heading = edge.geometry.SegmentHeading(segment_index);
  double angle;
  switch (edge.direction) {
    case roadnet::TravelDirection::kForward:
      angle = geo::AngleBetweenHeadings(movement_heading_rad, edge_heading);
      break;
    case roadnet::TravelDirection::kBackward:
      angle = geo::AngleBetweenHeadings(movement_heading_rad,
                                        edge_heading + M_PI);
      break;
    case roadnet::TravelDirection::kBoth:
    default:
      angle = geo::UndirectedAngleBetweenHeadings(movement_heading_rad,
                                                  edge_heading);
      break;
  }
  return options.heading_mu * std::cos(angle);
}

std::vector<MatchCandidate> FindCandidates(
    const roadnet::SpatialIndex& index, const geo::EnPoint& point,
    double movement_heading_rad, bool has_heading,
    const ScoreOptions& options) {
  std::vector<MatchCandidate> out;
  for (const roadnet::EdgeCandidate& cand :
       index.Nearby(point, options.search_radius_m)) {
    MatchCandidate mc;
    mc.edge = cand.edge;
    mc.projection = cand.projection;
    mc.distance_score = DistanceScore(cand.projection.distance, options);
    mc.heading_score =
        HeadingScore(movement_heading_rad, has_heading,
                     index.network().edge(cand.edge),
                     cand.projection.segment_index, options);
    out.push_back(mc);
  }
  std::sort(out.begin(), out.end(),
            [](const MatchCandidate& a, const MatchCandidate& b) {
              return a.TotalScore() > b.TotalScore();
            });
  return out;
}

}  // namespace mapmatch
}  // namespace taxitrace
