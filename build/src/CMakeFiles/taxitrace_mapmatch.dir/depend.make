# Empty dependencies file for taxitrace_mapmatch.
# This may be replaced when dependencies are built.
