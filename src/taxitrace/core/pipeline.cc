#include "taxitrace/core/pipeline.h"

#include <algorithm>
#include <chrono>

#include "taxitrace/analysis/grid.h"
#include "taxitrace/clean/cleaning_pipeline.h"
#include "taxitrace/odselect/transition_extractor.h"

namespace taxitrace {
namespace core {

std::vector<analysis::TransitionRecord> StudyResults::Records() const {
  std::vector<analysis::TransitionRecord> out;
  out.reserve(transitions.size());
  for (const MatchedTransition& mt : transitions) out.push_back(mt.record);
  return out;
}

Pipeline::Pipeline(StudyConfig config) : config_(std::move(config)) {}

Result<StudyResults> Pipeline::Run() const {
  using Clock = std::chrono::steady_clock;
  const auto elapsed_ms = [](Clock::time_point since) {
    return std::chrono::duration<double, std::milli>(Clock::now() - since)
        .count();
  };
  StageTimings timings;
  auto stage_start = Clock::now();

  // 1. Substrates: city map and weather.
  TAXITRACE_ASSIGN_OR_RETURN(synth::CityMap map,
                             synth::GenerateCityMap(config_.map));
  synth::WeatherModel weather(config_.weather_seed, config_.fleet.num_days);

  timings.map_generation_ms = elapsed_ms(stage_start);
  stage_start = Clock::now();

  // 2. Raw traces.
  synth::PedestrianModel pedestrians(config_.fleet.seed + 17,
                                     map.hotspots,
                                     config_.fleet.num_days);
  const synth::FleetSimulator fleet(&map, &weather, config_.fleet,
                                    &pedestrians);
  TAXITRACE_ASSIGN_OR_RETURN(synth::FleetResult raw, fleet.Run());

  StudyResults results(std::move(map), std::move(weather),
                       std::move(pedestrians));
  results.raw_trips = static_cast<int64_t>(raw.store.NumTrips());
  timings.simulation_ms = elapsed_ms(stage_start);
  stage_start = Clock::now();

  // 3. Cleaning: order repair, error filters, segmentation, filters.
  std::vector<trace::Trip> cleaned =
      clean::CleanTrips(raw.store, config_.cleaning, &results.cleaning_report);
  timings.cleaning_ms = elapsed_ms(stage_start);
  stage_start = Clock::now();

  // 4. OD gates and transition extraction.
  std::vector<odselect::OdGate> gates;
  for (const synth::GateRoad& g : results.map.gates) {
    gates.emplace_back(g.name, g.geometry, config_.gate);
  }
  const geo::LocalProjection& proj = results.map.network.projection();
  const odselect::TransitionExtractor extractor(gates, proj);
  const geo::Bbox region =
      results.map.network.Bounds().Inflated(300.0);

  // 5. Matching machinery.
  const roadnet::SpatialIndex index(&results.map.network);
  const mapmatch::IncrementalMatcher matcher(&results.map.network, &index,
                                             config_.matcher);
  const mapattr::AttributeFetcher fetcher(&results.map.network,
                                          config_.attributes);

  // Per-car funnel rows (Table 3).
  std::unordered_map<int, odselect::Table3Row> funnel;

  for (const trace::Trip& segment : cleaned) {
    odselect::Table3Row& row = funnel[segment.car_id];
    row.car_id = segment.car_id;
    ++row.segments_total;

    const odselect::TripGateAnalysis analysis = extractor.Analyze(segment);
    if (!analysis.crosses_gate_at_angle ||
        analysis.distinct_gates_crossed < 2) {
      continue;
    }
    ++row.filtered_cleaned;

    for (const odselect::Transition& transition : analysis.transitions) {
      if (!odselect::IsSelectedDirection(transition,
                                         config_.transition_filter)) {
        continue;
      }
      ++row.transitions_total;
      if (!odselect::IsWithinCentralArea(transition,
                                         results.map.central_area, region,
                                         proj, config_.transition_filter)) {
        continue;
      }
      ++row.transitions_central;

      // Map matching (only cleared transitions through the centre are
      // matched, as in the paper).
      Result<mapmatch::MatchedRoute> route = matcher.Match(transition.segment);
      if (!route.ok()) continue;

      const std::string origin_name = transition.origin;
      const std::string dest_name = transition.destination;
      const odselect::OdGate* origin_gate = nullptr;
      const odselect::OdGate* dest_gate = nullptr;
      for (const odselect::OdGate& g : gates) {
        if (g.name() == origin_name) origin_gate = &g;
        if (g.name() == dest_name) dest_gate = &g;
      }
      if (origin_gate == nullptr || dest_gate == nullptr) continue;
      if (!odselect::PassesEndpointPostFilter(route->geometry, *origin_gate,
                                              *dest_gate,
                                              config_.transition_filter)) {
        continue;
      }
      ++row.post_filtered;

      // 6. Attributes and the per-transition record.
      MatchedTransition mt{transition, std::move(*route), {}};
      mt.record.trip_id = transition.segment.trip_id;
      mt.record.car_id = transition.segment.car_id;
      mt.record.direction = transition.Label();
      mt.record.start_time_s = transition.segment.StartTime();
      mt.record.route_time_h =
          trace::TimeSpanSeconds(transition.segment.points) / 3600.0;
      mt.record.route_distance_km = mt.route.length_m / 1000.0;
      mt.record.low_speed_share =
          analysis::LowSpeedShare(transition.segment, config_.speed);
      mt.record.normal_speed_share = analysis::NormalSpeedShare(
          transition.segment, mt.route, results.map.network, config_.speed);
      double fuel = 0.0;
      for (size_t i = 1; i < transition.segment.points.size(); ++i) {
        fuel += transition.segment.points[i].fuel_delta_ml;
      }
      mt.record.fuel_ml = fuel;
      mt.record.attributes = fetcher.Fetch(mt.route);
      results.match_report.Add(mt.route);
      results.transitions.push_back(std::move(mt));
    }
  }

  for (int car = 1; car <= config_.fleet.num_cars; ++car) {
    odselect::Table3Row row = funnel[car];
    row.car_id = car;
    results.table3.push_back(row);
  }

  timings.selection_matching_ms = elapsed_ms(stage_start);
  stage_start = Clock::now();

  // 7. Grid statistics over all transition point speeds.
  results.grid_cell_m = config_.grid_cell_m;
  const analysis::Grid grid(config_.grid_cell_m);
  analysis::CellSpeedAccumulator all_speeds(grid);
  std::unordered_map<std::string, analysis::CellSpeedAccumulator>
      by_direction;
  model::OneWayReml cell_model;
  std::unordered_map<analysis::CellId, size_t, analysis::CellIdHash>
      cell_group;
  double speed_sum = 0.0;
  double season_sum[analysis::kNumSeasons] = {};
  int64_t season_n[analysis::kNumSeasons] = {};

  for (const MatchedTransition& mt : results.transitions) {
    auto dir_it = by_direction.find(mt.record.direction);
    if (dir_it == by_direction.end()) {
      dir_it = by_direction
                   .emplace(mt.record.direction,
                            analysis::CellSpeedAccumulator(grid))
                   .first;
    }
    for (const trace::RoutePoint& p : mt.transition.segment.points) {
      const geo::EnPoint local = proj.Forward(p.position);
      all_speeds.Add(local, p.speed_kmh);
      dir_it->second.Add(local, p.speed_kmh);

      const analysis::CellId cell = grid.CellOf(local);
      auto [group_it, inserted] =
          cell_group.emplace(cell, results.model_cells.size());
      if (inserted) results.model_cells.push_back(cell);
      cell_model.Add(group_it->second, p.speed_kmh);

      ++results.total_point_speeds;
      speed_sum += p.speed_kmh;
      const int season =
          static_cast<int>(analysis::SeasonOfTimestamp(p.timestamp_s));
      season_sum[season] += p.speed_kmh;
      ++season_n[season];
    }
  }
  results.overall_mean_speed_kmh =
      results.total_point_speeds > 0
          ? speed_sum / static_cast<double>(results.total_point_speeds)
          : 0.0;
  for (int s = 0; s < analysis::kNumSeasons; ++s) {
    results.seasonal[s].n = season_n[s];
    results.seasonal[s].mean_kmh =
        season_n[s] > 0 ? season_sum[s] / static_cast<double>(season_n[s])
                        : 0.0;
    results.seasonal[s].delta_kmh =
        season_n[s] > 0
            ? results.seasonal[s].mean_kmh - results.overall_mean_speed_kmh
            : 0.0;
  }

  // 8. Cell joins and the mixed model.
  results.cell_features = ComputeCellFeatures(results.map.network, grid);
  results.cells = BuildCellRecords(all_speeds, results.cell_features);
  for (const auto& [direction, acc] : by_direction) {
    results.cells_by_direction[direction] =
        BuildCellRecords(acc, results.cell_features);
  }
  if (cell_model.num_observations() > 3 && cell_model.num_groups() >= 2) {
    TAXITRACE_ASSIGN_OR_RETURN(results.cell_model, cell_model.Fit());
    TAXITRACE_ASSIGN_OR_RETURN(results.geography_lrt,
                               model::TestRandomEffect(cell_model));
  }
  timings.analysis_ms = elapsed_ms(stage_start);
  results.timings = timings;
  return results;
}

}  // namespace core
}  // namespace taxitrace
