# Empty dependencies file for taxitrace_synth.
# This may be replaced when dependencies are built.
