// Seed-stability study: how much the headline statistics move across
// independent simulated worlds — the reproduction's error bars. A claim
// that only holds for one seed is not a reproduction.

#include <cmath>

#include "bench_util.h"
#include "taxitrace/analysis/bootstrap.h"
#include "taxitrace/analysis/route_stats.h"

namespace taxitrace {
namespace {

struct SeedOutcome {
  uint64_t seed;
  int64_t transitions;
  double low_ts_pct;
  double low_tl_pct;
  double cell_sd;
  double centre_blup;
};

SeedOutcome RunSeed(uint64_t seed) {
  core::StudyConfig config = core::StudyConfig::SmallStudy();
  config.fleet.num_days = 90;
  config.fleet.num_cars = 4;
  config.fleet.seed = seed;
  config.map.seed = seed + 1;
  config.weather_seed = seed + 2;
  core::Pipeline pipeline(config);
  auto run = pipeline.Run();
  SeedOutcome out{seed, 0, 0, 0, 0, 0};
  if (!run.ok()) return out;
  const core::StudyResults& r = *run;
  out.transitions = static_cast<int64_t>(r.transitions.size());
  const auto records = r.Records();
  out.low_ts_pct = analysis::MeanLowSpeedPct(records, "T-S");
  out.low_tl_pct = analysis::MeanLowSpeedPct(records, "T-L");
  out.cell_sd = std::sqrt(r.cell_model.sigma2_group);
  const analysis::Grid grid(r.grid_cell_m);
  double centre_sum = 0.0;
  int centre_n = 0;
  for (size_t g = 0; g < r.cell_model.blup.size(); ++g) {
    if (r.cell_model.group_n[g] == 0) continue;
    if (geo::Norm(grid.CellCenter(r.model_cells[g])) < 350.0) {
      centre_sum += r.cell_model.blup[g];
      ++centre_n;
    }
  }
  out.centre_blup = centre_n > 0 ? centre_sum / centre_n : 0.0;
  return out;
}

void PrintStability() {
  std::printf(
      "SEED STABILITY: five independent 4-car, 90-day worlds (map, "
      "weather and fleet reseeded)\n");
  std::printf(
      "  seed   transitions  low%% T-S  low%% T-L  cell sd  centre "
      "BLUP\n");
  int ordering_holds = 0;
  int centre_slow = 0;
  for (uint64_t seed : {11ULL, 22ULL, 33ULL, 44ULL, 55ULL}) {
    const SeedOutcome out = RunSeed(seed);
    std::printf("  %4llu  %11lld  %8.1f  %8.1f  %7.1f  %11.1f\n",
                static_cast<unsigned long long>(out.seed),
                static_cast<long long>(out.transitions), out.low_ts_pct,
                out.low_tl_pct, out.cell_sd, out.centre_blup);
    if (out.low_ts_pct > out.low_tl_pct) ++ordering_holds;
    if (out.centre_blup < -1.0) ++centre_slow;
  }
  std::printf(
      "Check: low%% T-S > T-L in every world -> %s\n",
      ordering_holds == 5 ? "HOLDS" : "VIOLATED");
  std::printf("Check: the centre is slow in every world -> %s\n\n",
              centre_slow == 5 ? "HOLDS" : "VIOLATED");
}

void BM_SeededWorld(benchmark::State& state) {
  uint64_t seed = 100;
  for (auto _ : state) {
    auto out = RunSeed(seed++);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SeededWorld)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintStability)
