#include "taxitrace/odselect/transition_filter.h"

#include <algorithm>

namespace taxitrace {
namespace odselect {

bool IsSelectedDirection(const Transition& transition,
                         const TransitionFilterOptions& options) {
  const std::string label = transition.Label();
  return std::find(options.directions.begin(), options.directions.end(),
                   label) != options.directions.end();
}

bool IsWithinCentralArea(const Transition& transition,
                         const geo::Polygon& central_area,
                         const geo::Bbox& region,
                         const geo::LocalProjection& projection,
                         const TransitionFilterOptions& options) {
  if (transition.segment.points.empty()) return false;
  size_t inside_central = 0;
  for (const trace::RoutePoint& p : transition.segment.points) {
    const geo::EnPoint local = projection.Forward(p.position);
    if (!region.Contains(local)) return false;
    if (central_area.Contains(local)) ++inside_central;
  }
  return static_cast<double>(inside_central) >=
         options.central_fraction *
             static_cast<double>(transition.segment.points.size());
}

bool PassesEndpointPostFilter(const geo::Polyline& matched_geometry,
                              const OdGate& origin,
                              const OdGate& destination,
                              const TransitionFilterOptions& options) {
  if (matched_geometry.size() < 2) return false;
  return origin.DistanceToRoad(matched_geometry.front()) <=
             options.endpoint_max_distance_m &&
         destination.DistanceToRoad(matched_geometry.back()) <=
             options.endpoint_max_distance_m;
}

}  // namespace odselect
}  // namespace taxitrace
