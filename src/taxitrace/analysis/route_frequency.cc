#include "taxitrace/analysis/route_frequency.h"

#include <algorithm>

#include "taxitrace/mapmatch/match_quality.h"

namespace taxitrace {
namespace analysis {
namespace {

// Running means for one alternative while grouping.
struct Accumulator {
  RouteAlternative alt;
  double time_sum = 0.0;
  double dist_sum = 0.0;
  double fuel_sum = 0.0;
  double low_sum = 0.0;
};

}  // namespace

std::vector<RouteAlternative> GroupRouteAlternatives(
    const std::vector<TransitionRecord>& records,
    const std::vector<mapmatch::MatchedRoute>& routes,
    const RouteFrequencyOptions& options) {
  const size_t n = std::min(records.size(), routes.size());
  std::vector<Accumulator> groups;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<roadnet::EdgeId> edges = routes[i].DistinctEdges();
    Accumulator* best = nullptr;
    double best_similarity = options.similarity_threshold;
    for (Accumulator& group : groups) {
      if (group.alt.direction != records[i].direction) continue;
      const double similarity =
          mapmatch::EdgeJaccard(edges, group.alt.signature);
      if (similarity >= best_similarity) {
        best_similarity = similarity;
        best = &group;
      }
    }
    if (best == nullptr) {
      groups.emplace_back();
      best = &groups.back();
      best->alt.direction = records[i].direction;
      best->alt.signature = edges;
    }
    ++best->alt.count;
    best->time_sum += records[i].route_time_h;
    best->dist_sum += records[i].route_distance_km;
    best->fuel_sum += records[i].fuel_ml;
    best->low_sum += records[i].low_speed_share;
  }

  // Totals per direction for the share column.
  std::vector<RouteAlternative> out;
  out.reserve(groups.size());
  for (Accumulator& group : groups) {
    const double count = static_cast<double>(group.alt.count);
    group.alt.mean_time_h = group.time_sum / count;
    group.alt.mean_distance_km = group.dist_sum / count;
    group.alt.mean_fuel_ml = group.fuel_sum / count;
    group.alt.mean_low_speed_share = group.low_sum / count;
    out.push_back(std::move(group.alt));
  }
  for (RouteAlternative& alt : out) {
    int64_t direction_total = 0;
    for (const RouteAlternative& other : out) {
      if (other.direction == alt.direction) direction_total += other.count;
    }
    alt.share = direction_total > 0
                    ? static_cast<double>(alt.count) /
                          static_cast<double>(direction_total)
                    : 0.0;
  }
  std::sort(out.begin(), out.end(),
            [](const RouteAlternative& a, const RouteAlternative& b) {
              if (a.direction != b.direction) {
                return a.direction < b.direction;
              }
              return a.count > b.count;
            });
  return out;
}

const RouteAlternative* FastestAlternative(
    const std::vector<RouteAlternative>& alternatives,
    const std::string& direction, int64_t min_count) {
  const RouteAlternative* best = nullptr;
  for (const RouteAlternative& alt : alternatives) {
    if (alt.direction != direction || alt.count < min_count) continue;
    if (best == nullptr || alt.mean_time_h < best->mean_time_h) {
      best = &alt;
    }
  }
  return best;
}

}  // namespace analysis
}  // namespace taxitrace
