// Route-choice analysis: grouping transitions of one origin-destination
// pair by the actual road sequence driven — the paper's §VII
// personalised-route-recommendation outlook and the route-frequency
// analyses it cites (Li et al.). Taxi drivers choose routes freely, so
// each OD pair accumulates a distribution over alternatives.

#ifndef TAXITRACE_ANALYSIS_ROUTE_FREQUENCY_H_
#define TAXITRACE_ANALYSIS_ROUTE_FREQUENCY_H_

#include <string>
#include <vector>

#include "taxitrace/analysis/route_stats.h"
#include "taxitrace/mapmatch/incremental_matcher.h"

namespace taxitrace {
namespace analysis {

/// One distinct route alternative within an OD pair.
struct RouteAlternative {
  std::string direction;            ///< "S-T" etc.
  std::vector<roadnet::EdgeId> signature;  ///< Distinct edges, sorted.
  int64_t count = 0;                ///< Transitions driving it.
  double mean_time_h = 0.0;
  double mean_distance_km = 0.0;
  double mean_fuel_ml = 0.0;
  double mean_low_speed_share = 0.0;

  /// Share of the OD pair's transitions on this alternative (filled by
  /// GroupRouteAlternatives).
  double share = 0.0;
};

/// Grouping options.
struct RouteFrequencyOptions {
  /// Two routes are the same alternative when the Jaccard similarity of
  /// their edge sets reaches this threshold (drivers wobble by a block).
  double similarity_threshold = 0.8;
};

/// Groups matched transitions into route alternatives per direction.
/// Alternatives are sorted by direction, then descending count.
std::vector<RouteAlternative> GroupRouteAlternatives(
    const std::vector<TransitionRecord>& records,
    const std::vector<mapmatch::MatchedRoute>& routes,
    const RouteFrequencyOptions& options = {});

/// The fastest alternative (by mean time) of a direction with at least
/// `min_count` observations; nullptr when none qualifies.
const RouteAlternative* FastestAlternative(
    const std::vector<RouteAlternative>& alternatives,
    const std::string& direction, int64_t min_count = 3);

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_ROUTE_FREQUENCY_H_
