# Empty dependencies file for coach_test.
# This may be replaced when dependencies are built.
