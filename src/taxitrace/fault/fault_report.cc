#include "taxitrace/fault/fault_report.h"

#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace fault {

void FaultReport::Add(const FaultReport& other) {
  injected_nan_coords += other.injected_nan_coords;
  injected_clock_jumps += other.injected_clock_jumps;
  injected_negative_speeds += other.injected_negative_speeds;
  injected_swapped_coords += other.injected_swapped_coords;
  injected_duplicated_trips += other.injected_duplicated_trips;
  injected_emptied_trips += other.injected_emptied_trips;
  injected_single_point_trips += other.injected_single_point_trips;
  injected_interleaved_trips += other.injected_interleaved_trips;
  injected_truncated_rows += other.injected_truncated_rows;
  injected_wrong_column_rows += other.injected_wrong_column_rows;
  injected_junk_rows += other.injected_junk_rows;
  rows_dropped_malformed += other.rows_dropped_malformed;
  rows_dropped_non_utf8 += other.rows_dropped_non_utf8;
  trips_dropped_duplicate_id += other.trips_dropped_duplicate_id;
  trips_dropped_empty += other.trips_dropped_empty;
  points_dropped_nonfinite += other.points_dropped_nonfinite;
  points_dropped_foreign += other.points_dropped_foreign;
  points_dropped_negative_speed += other.points_dropped_negative_speed;
  points_dropped_out_of_region += other.points_dropped_out_of_region;
  points_dropped_clock_jump += other.points_dropped_clock_jump;
}

int64_t FaultReport::TotalInjected() const {
  return injected_nan_coords + injected_clock_jumps +
         injected_negative_speeds + injected_swapped_coords +
         injected_duplicated_trips + injected_emptied_trips +
         injected_single_point_trips + injected_interleaved_trips +
         injected_truncated_rows + injected_wrong_column_rows +
         injected_junk_rows;
}

int64_t FaultReport::TotalDropped() const {
  return rows_dropped_malformed + rows_dropped_non_utf8 +
         trips_dropped_duplicate_id + trips_dropped_empty +
         points_dropped_nonfinite + points_dropped_foreign +
         points_dropped_negative_speed + points_dropped_out_of_region +
         points_dropped_clock_jump;
}

std::string FaultReport::ToString() const {
  std::string out;
  auto line = [&out](const char* name, int64_t value) {
    if (value != 0) {
      out += StrFormat("  %-28s %lld\n", name, (long long)value);
    }
  };
  out += "injected:\n";
  line("nan_coords", injected_nan_coords);
  line("clock_jumps", injected_clock_jumps);
  line("negative_speeds", injected_negative_speeds);
  line("swapped_coords", injected_swapped_coords);
  line("duplicated_trips", injected_duplicated_trips);
  line("emptied_trips", injected_emptied_trips);
  line("single_point_trips", injected_single_point_trips);
  line("interleaved_trips", injected_interleaved_trips);
  line("truncated_rows", injected_truncated_rows);
  line("wrong_column_rows", injected_wrong_column_rows);
  line("junk_rows", injected_junk_rows);
  out += "dropped:\n";
  line("rows_malformed", rows_dropped_malformed);
  line("rows_non_utf8", rows_dropped_non_utf8);
  line("trips_duplicate_id", trips_dropped_duplicate_id);
  line("trips_empty", trips_dropped_empty);
  line("points_nonfinite", points_dropped_nonfinite);
  line("points_foreign", points_dropped_foreign);
  line("points_negative_speed", points_dropped_negative_speed);
  line("points_out_of_region", points_dropped_out_of_region);
  line("points_clock_jump", points_dropped_clock_jump);
  return out;
}

}  // namespace fault
}  // namespace taxitrace
