// Geographic coordinates and the local planar projection used for all
// metric computations.
//
// The paper's study area is downtown Oulu (~65.01 N, 25.47 E), a region a
// few kilometres across. At that scale an azimuthal equirectangular
// projection around a reference point is accurate to well under a metre,
// which is far below GPS noise, so the whole analysis pipeline works in a
// local east/north metre frame ("EnPoint") and converts at the edges.

#ifndef TAXITRACE_GEO_COORDINATES_H_
#define TAXITRACE_GEO_COORDINATES_H_

#include <string>

namespace taxitrace {
namespace geo {

/// Mean Earth radius in metres (IUGG).
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// A WGS84 position in degrees (EPSG:4326).
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const LatLon&, const LatLon&) = default;
};

/// A point in a local planar frame: metres east (x) and north (y) of the
/// projection origin.
struct EnPoint {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const EnPoint&, const EnPoint&) = default;
};

/// Great-circle distance between two WGS84 positions (haversine), metres.
double HaversineMeters(const LatLon& a, const LatLon& b);

/// Azimuthal equirectangular projection anchored at an origin position.
/// Forward() maps WGS84 degrees to local east/north metres; Inverse() maps
/// back. Round trips are exact to double precision for points near the
/// origin.
class LocalProjection {
 public:
  /// Creates a projection centred on `origin`.
  explicit LocalProjection(const LatLon& origin);

  /// The origin passed at construction.
  [[nodiscard]] const LatLon& origin() const { return origin_; }

  /// WGS84 -> local metres.
  [[nodiscard]] EnPoint Forward(const LatLon& p) const;

  /// Local metres -> WGS84.
  [[nodiscard]] LatLon Inverse(const EnPoint& p) const;

 private:
  LatLon origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

/// "POINT(25.5244, 65.0252)" — the EPSG:4326 rendering used by Table 1.
std::string ToWktPoint(const LatLon& p, int decimals = 4);

}  // namespace geo
}  // namespace taxitrace

#endif  // TAXITRACE_GEO_COORDINATES_H_
