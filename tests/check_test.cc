// Death tests for the checked-invariant facility (TT_CHECK and friends)
// and for the fail-fast behaviour of Result<T> in every build type.

#include "taxitrace/common/check.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "taxitrace/common/result.h"
#include "taxitrace/common/status.h"

namespace taxitrace {
namespace {

// --- TT_CHECK --------------------------------------------------------------

TEST(CheckTest, PassingCheckIsSilent) {
  TT_CHECK(1 + 1 == 2);
  TT_CHECK_MSG(true, "never printed");
  TT_CHECK_OK(Status::OK());
  SUCCEED();
}

TEST(CheckDeathTest, FailedCheckReportsExpressionAndLocation) {
  EXPECT_DEATH(TT_CHECK(2 + 2 == 5),
               "TT_CHECK failed: 2 \\+ 2 == 5 at .*check_test\\.cc:[0-9]+");
}

TEST(CheckDeathTest, FailedCheckMsgAppendsDetail) {
  EXPECT_DEATH(TT_CHECK_MSG(false, "grid must be non-empty"),
               "TT_CHECK failed: false at .*:[0-9]+: grid must be non-empty");
}

TEST(CheckDeathTest, CheckOkReportsStatusMessage) {
  EXPECT_DEATH(TT_CHECK_OK(Status::IOError("disk on fire")),
               "is OK at .*:[0-9]+: IOError: disk on fire");
}

TEST(CheckDeathTest, CheckOkAcceptsFailedResult) {
  const Result<int> r = Status::NotFound("no such edge");
  EXPECT_DEATH(TT_CHECK_OK(r), "NotFound: no such edge");
}

TEST(CheckTest, CheckOkEvaluatesExpressionOnce) {
  int calls = 0;
  const auto produce = [&calls]() {
    ++calls;
    return Status::OK();
  };
  TT_CHECK_OK(produce());
  EXPECT_EQ(calls, 1);
}

// TT_DCHECK is TT_CHECK in Debug and compiled out in Release; either way
// a passing condition must be silent and side-effect-free to rely on.
TEST(CheckTest, DcheckPassesSilently) {
  TT_DCHECK(true);
  TT_DCHECK_MSG(true, "unused");
  SUCCEED();
}

// --- Result fail-fast ------------------------------------------------------

TEST(ResultDeathTest, ValueOnFailedResultAborts) {
  const Result<int> r = Status::NotFound("vertex 42");
  // Must abort with the underlying status in the diagnostic — in Release
  // builds too; a compiled-away assert here would be silent UB.
  EXPECT_DEATH(r.value(), "TT_CHECK failed: Result::ok\\(\\) at "
                          ".*result\\.h:[0-9]+: NotFound: vertex 42");
}

TEST(ResultDeathTest, DereferenceOnFailedResultAborts) {
  Result<std::string> r = Status::Corruption("truncated row");
  EXPECT_DEATH(*r, "Corruption: truncated row");
}

TEST(ResultDeathTest, ArrowOnFailedResultAborts) {
  Result<std::vector<int>> r = Status::OutOfRange("past end");
  EXPECT_DEATH((void)r->size(), "OutOfRange: past end");
}

TEST(ResultDeathTest, MovedValueOnFailedResultAborts) {
  EXPECT_DEATH(
      {
        Result<std::string> r = Status::IOError("short read");
        std::string s = std::move(r).value();
        (void)s;
      },
      "IOError: short read");
}

TEST(ResultDeathTest, ConstructionFromOkStatusAborts) {
  // A Result must hold a value or a *non-OK* status; passing OK would
  // leave it claiming failure with no explanation.
  EXPECT_DEATH(
      {
        Status ok = Status::OK();
        Result<int> r(std::move(ok));
      },
      "Result constructed from OK status");
}

// --- Result value paths stay intact ----------------------------------------

TEST(ResultTest, ValueAndStatusOnSuccess) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("taxi");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "taxi");
}

TEST(ResultTest, FailedResultExposesStatus) {
  const Result<int> r = Status::FailedPrecondition("not matched yet");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
  EXPECT_EQ(r.status().message(), "not matched yet");
}

// Result<Status>-style edge case: the value type itself has ok(); make
// sure the wrapper's ok() refers to the wrapper, not the payload. A
// Result holding a *non-OK* Status as its value is still ok().
TEST(ResultTest, ResultWhoseValueLooksLikeAStatus) {
  struct Probe {
    Status inner;
    bool ok() const { return inner.ok(); }
  };
  Result<Probe> r = Probe{Status::NotFound("payload, not failure")};
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().ok());
  EXPECT_TRUE(r.status().ok());
  EXPECT_TRUE(r.value().inner.IsNotFound());
}

}  // namespace
}  // namespace taxitrace
