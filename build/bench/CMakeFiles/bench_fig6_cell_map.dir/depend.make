# Empty dependencies file for bench_fig6_cell_map.
# This may be replaced when dependencies are built.
