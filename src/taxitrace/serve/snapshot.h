// The immutable grid-statistics snapshot (`taxitrace-snapshot/1`): the
// study's Section V information layer — per-cell speed moments, map
// feature counts, and BLUP random intercepts — frozen into one flat
// byte buffer a query service can load and answer from without ever
// touching StudyResults again.
//
// Layout. A fixed header (magic, version, section count, total size)
// is followed by a section table of (id, offset, size) entries and then
// the section payloads, each 8-byte aligned, all little-endian:
//
//   kMeta            one SnapshotMeta record (grid size, cell-id
//                    bounds, totals, model hyper-parameters).
//   kCellIndex       num_cells CellEntry records sorted by (cx, cy) —
//                    the binary-search index every lookup goes through.
//                    No hash order anywhere in the file.
//   kSliceDirectory  num_slices SliceInfo records naming each scenario
//                    slice (all, weekday/weekend, temperature class,
//                    crowd activity).
//   kSliceMoments    num_slices x num_cells CellMoments records, cell
//                    order matching kCellIndex.
//   kCellFeatures    num_cells CellFeatureRow records (traffic lights,
//                    bus stops, crossings, junctions).
//   kCellModel       num_cells CellModelRow records (BLUP intercept,
//                    prediction SE, shrinkage, group n; n == 0 marks a
//                    cell the model excluded).
//
// Versioning: readers reject unknown magic/version outright; unknown
// *section ids* are skipped, so a taxitrace-snapshot/1 reader stays
// forward-compatible with files that append new sections. Any change
// to an existing section's record layout bumps the version.
//
// Determinism: SnapshotBuilder shards the transitions into a fixed
// number of contiguous shards (independent of worker count), folds the
// per-shard accumulators in shard order, and emits cells in sorted
// order — the bytes are identical at 0/1/2/8 workers, which the
// parallel-determinism suite pins.

#ifndef TAXITRACE_SERVE_SNAPSHOT_H_
#define TAXITRACE_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "taxitrace/analysis/grid.h"
#include "taxitrace/common/executor.h"
#include "taxitrace/common/result.h"
#include "taxitrace/core/pipeline.h"

namespace taxitrace {
namespace serve {

/// File magic: "TTSNAP" + the two-digit format version.
inline constexpr char kSnapshotMagic[8] = {'T', 'T', 'S', 'N',
                                           'A', 'P', '0', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;

/// Section ids of taxitrace-snapshot/1. Ids are append-only.
enum class SectionId : uint32_t {
  kMeta = 1,
  kCellIndex = 2,
  kSliceDirectory = 3,
  kSliceMoments = 4,
  kCellFeatures = 5,
  kCellModel = 6,
};

/// Fixed header at offset 0.
struct SnapshotHeader {
  char magic[8] = {};
  uint32_t version = 0;
  uint32_t section_count = 0;
  uint64_t file_size = 0;  ///< Total bytes, for truncation checks.
  uint64_t reserved = 0;
};
static_assert(sizeof(SnapshotHeader) == 32);

/// One section-table entry, immediately after the header.
struct SectionEntry {
  uint32_t id = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;  ///< Absolute byte offset, 8-aligned.
  uint64_t size = 0;    ///< Payload bytes.
};
static_assert(sizeof(SectionEntry) == 24);

/// The kMeta payload.
struct SnapshotMeta {
  double cell_size_m = 0.0;
  int64_t num_cells = 0;
  int64_t num_slices = 0;
  int64_t total_points = 0;
  double overall_mean_speed_kmh = 0.0;
  /// Inclusive cell-id bounds of the index (0/−1 when empty).
  int32_t min_cx = 0;
  int32_t min_cy = 0;
  int32_t max_cx = -1;
  int32_t max_cy = -1;
  int32_t reserved0 = 0;
  int32_t reserved1 = 0;
  int64_t reserved2 = 0;
  /// Eq. (3) model hyper-parameters (zero when the fit was skipped).
  double model_mu = 0.0;
  double model_sigma2_group = 0.0;
  double model_sigma2_residual = 0.0;
  double model_lambda = 0.0;
};
static_assert(sizeof(SnapshotMeta) == 104);

/// One kCellIndex record.
struct CellEntry {
  int32_t cx = 0;
  int32_t cy = 0;
};
static_assert(sizeof(CellEntry) == 8);

/// Scenario-slice families. kAll is always slice 0.
enum class SliceKind : uint32_t {
  kAll = 0,
  kDayType = 1,      ///< param: 0 = weekday, 1 = weekend.
  kTemperature = 2,  ///< param: synth::TemperatureClass value.
  kCrowd = 3,        ///< param: 0 quiet, 1 active, 2 busy.
};

/// One kSliceDirectory record.
struct SliceInfo {
  uint32_t kind = 0;
  int32_t param = 0;
  char label[24] = {};  ///< NUL-terminated display label.
};
static_assert(sizeof(SliceInfo) == 32);

/// One kSliceMoments record: Welford moments of one (slice, cell).
struct CellMoments {
  int64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;

  [[nodiscard]] double Variance() const { return n > 1 ? m2 / (n - 1) : 0.0; }
};
static_assert(sizeof(CellMoments) == 24);

/// One kCellFeatures record.
struct CellFeatureRow {
  int32_t traffic_lights = 0;
  int32_t bus_stops = 0;
  int32_t pedestrian_crossings = 0;
  int32_t junctions = 0;
};
static_assert(sizeof(CellFeatureRow) == 16);

/// One kCellModel record. n == 0 means the cell has no intercept.
struct CellModelRow {
  double blup = 0.0;
  double blup_se = 0.0;
  double shrinkage = 0.0;
  int64_t n = 0;
};
static_assert(sizeof(CellModelRow) == 32);

/// A loaded, validated snapshot. Holds its backing storage behind a
/// shared handle — either an adopted in-memory buffer (FromBytes) or a
/// read-only mmap of the snapshot file (FromFile) — and every accessor
/// reads straight out of the flat view (memcpy, so alignment-safe),
/// which keeps the type cheaply copyable and shareable across query
/// threads regardless of which loader produced it.
class Snapshot {
 public:
  /// Validates and adopts a serialized snapshot. Rejects wrong magic or
  /// version, truncated files, out-of-bounds or misaligned sections,
  /// missing required sections, size/meta mismatches, and an unsorted
  /// cell index.
  static Result<Snapshot> FromBytes(std::string bytes);

  /// Maps `path` read-only (mmap, private) and validates it exactly as
  /// FromBytes does: the two loaders answer every query identically on
  /// the same bytes. The mapping lives for as long as any copy of the
  /// returned Snapshot does; the file is never written through.
  static Result<Snapshot> FromFile(const std::string& path);

  [[nodiscard]] const SnapshotMeta& meta() const { return meta_; }
  [[nodiscard]] int64_t num_cells() const { return meta_.num_cells; }
  [[nodiscard]] int64_t num_slices() const { return meta_.num_slices; }
  [[nodiscard]] std::string_view bytes() const {
    return std::string_view(data_, size_);
  }

  /// The index-th cell of the sorted index, 0 <= index < num_cells().
  [[nodiscard]] analysis::CellId cell(int64_t index) const {
    const CellEntry e = ReadAt<CellEntry>(
        cell_index_offset_ + index * static_cast<int64_t>(sizeof(CellEntry)));
    return analysis::CellId{e.cx, e.cy};
  }

  /// Position of `cell` in the sorted index (binary search on (cx, cy)),
  /// or -1 when absent.
  [[nodiscard]] int64_t FindCell(const analysis::CellId& cell) const;

  [[nodiscard]] SliceInfo slice(int64_t s) const {
    return ReadAt<SliceInfo>(slice_dir_offset_ +
                             s * static_cast<int64_t>(sizeof(SliceInfo)));
  }

  /// Slice index of (kind, param), or -1 when the directory lacks it.
  [[nodiscard]] int64_t FindSlice(SliceKind kind, int32_t param) const;

  [[nodiscard]] CellMoments moments(int64_t s, int64_t cell_index) const {
    return ReadAt<CellMoments>(
        moments_offset_ + (s * meta_.num_cells + cell_index) *
                              static_cast<int64_t>(sizeof(CellMoments)));
  }

  [[nodiscard]] CellFeatureRow features(int64_t cell_index) const {
    return ReadAt<CellFeatureRow>(
        features_offset_ +
        cell_index * static_cast<int64_t>(sizeof(CellFeatureRow)));
  }

  [[nodiscard]] CellModelRow model(int64_t cell_index) const {
    return ReadAt<CellModelRow>(
        model_offset_ +
        cell_index * static_cast<int64_t>(sizeof(CellModelRow)));
  }

 private:
  /// Runs the full format validation over `snapshot`'s (data_, size_)
  /// view; shared by FromBytes and FromFile so both loaders enforce the
  /// identical contract.
  static Result<Snapshot> Validate(Snapshot snapshot);

  template <typename T>
  [[nodiscard]] T ReadAt(int64_t offset) const {
    T value;
    std::memcpy(&value, data_ + offset, sizeof(T));
    return value;
  }

  /// Keeps the backing bytes alive: a heap std::string for FromBytes,
  /// an munmap-on-destroy region for FromFile. Because the payload
  /// lives behind this shared handle (never inline in the Snapshot),
  /// data_ stays valid across copies and moves of the Snapshot itself.
  std::shared_ptr<const void> storage_;
  const char* data_ = nullptr;
  size_t size_ = 0;
  SnapshotMeta meta_;
  int64_t cell_index_offset_ = 0;
  int64_t slice_dir_offset_ = 0;
  int64_t moments_offset_ = 0;
  int64_t features_offset_ = 0;
  int64_t model_offset_ = 0;
};

/// Snapshot construction knobs. The shard count is part of the output
/// contract: it fixes the floating-point fold tree, so changing it
/// changes snapshot bytes (never their statistical meaning).
struct SnapshotBuildOptions {
  /// Contiguous transition shards; independent of worker count.
  int num_shards = 32;
  /// Crowd-activity class edges over synth::PedestrianModel's
  /// CrowdIntensityAt: quiet < active_threshold <= active <
  /// busy_threshold <= busy.
  double crowd_active_threshold = 0.05;
  double crowd_busy_threshold = 0.5;
};

/// Builds taxitrace-snapshot/1 bytes from a finished study.
class SnapshotBuilder {
 public:
  explicit SnapshotBuilder(SnapshotBuildOptions options = {})
      : options_(options) {}

  /// Serializes `results` into snapshot bytes. Byte-identical at any
  /// worker count of `executor` (nullptr = serial).
  [[nodiscard]] Result<std::string> Build(const core::StudyResults& results,
                                          const Executor* executor) const;

 private:
  SnapshotBuildOptions options_;
};

}  // namespace serve
}  // namespace taxitrace

#endif  // TAXITRACE_SERVE_SNAPSHOT_H_
