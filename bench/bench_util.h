// Shared helpers for the reproduction benches. Each bench binary first
// prints the table/figure it regenerates (against the paper's numbers),
// then runs google-benchmark timings of the underlying computation.

#ifndef TAXITRACE_BENCH_BENCH_UTIL_H_
#define TAXITRACE_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "taxitrace/common/strings.h"
#include "taxitrace/core/figures.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/core/reports.h"

namespace taxitrace {
namespace benchutil {

/// Runs a study, or reports the failure and exits the bench binary with
/// a non-zero status (no abort(), no core dump — a failed study is an
/// environment problem, not a bug to trap).
inline core::StudyResults RunStudyOrExit(const core::StudyConfig& config,
                                         const char* label) {
  core::Pipeline pipeline(config);
  auto run = pipeline.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", label,
                 run.status().ToString().c_str());
    std::exit(EXIT_FAILURE);
  }
  return std::move(run).value();
}

/// The paper-scale study. Intentionally cached for the life of the
/// process in a function-local static: every bench and reproduction
/// printer in one binary shares a single ~seconds-long run.
inline const core::StudyResults& FullResults() {
  static const core::StudyResults results = [] {
    std::fprintf(stderr,
                 "[bench] running the full study (7 cars, 365 days)...\n");
    return RunStudyOrExit(core::StudyConfig::FullStudy(), "full study");
  }();
  return results;
}

/// A reduced study for cheap per-iteration benchmarks. Same intentional
/// static-lifetime cache as FullResults().
inline const core::StudyResults& SmallResults() {
  static const core::StudyResults results =
      RunStudyOrExit(core::StudyConfig::SmallStudy(), "small study");
  return results;
}

/// Prints the first `max_lines` lines of a (possibly large) text block.
inline void PrintPreview(const std::string& text, int max_lines = 12) {
  int lines = 0;
  size_t start = 0;
  while (start < text.size() && lines < max_lines) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::printf("  %s\n", text.substr(start, end - start).c_str());
    start = end + 1;
    ++lines;
  }
  const long total =
      static_cast<long>(std::count(text.begin(), text.end(), '\n'));
  if (total > max_lines) {
    std::printf("  ... (%ld lines total)\n", total);
  }
}

/// Writes a figure data file next to the binary and reports the path.
inline void EmitFigureFile(const std::string& name,
                           const std::string& text) {
  const Status st = core::WriteTextFile(name, text);
  if (st.ok()) {
    std::printf("  [data written to ./%s]\n", name.c_str());
  } else {
    std::printf("  [could not write %s: %s]\n", name.c_str(),
                st.ToString().c_str());
  }
}

/// Standard bench main body: print the reproduction, then run timings.
#define TAXITRACE_BENCH_MAIN(print_fn)                       \
  int main(int argc, char** argv) {                          \
    print_fn();                                              \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                              \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }

}  // namespace benchutil
}  // namespace taxitrace

#endif  // TAXITRACE_BENCH_BENCH_UTIL_H_
