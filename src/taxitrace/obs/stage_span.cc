#include "taxitrace/obs/stage_span.h"

#include <atomic>
#include <iterator>
#include <utility>

#include "taxitrace/common/check.h"
#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace obs {
namespace {

// Small stable per-thread ids (first thread to trace gets 0), instead
// of hashing std::thread::id — readable in dumps and keeps <thread>
// out of the observability layer.
uint64_t ThisThreadId() {
  static std::atomic<uint64_t> next{0};
  thread_local const uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Per-thread stack of open spans, used to derive parent/depth. Entries
// are (trace, record index); a thread may interleave spans of several
// traces, so Begin links only to the innermost span of the same trace.
thread_local std::vector<std::pair<const Trace*, int>> tls_open_spans;

}  // namespace

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {}

double Trace::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int Trace::Begin(std::string name) {
  SpanRecord record;
  record.name = std::move(name);
  record.thread_id = ThisThreadId();
  record.start_ms = NowMs();
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend();
       ++it) {
    if (it->first == this) {
      record.parent = it->second;
      break;
    }
  }
  int index = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (record.parent >= 0) {
      record.depth =
          records_[static_cast<size_t>(record.parent)].depth + 1;
    }
    index = static_cast<int>(records_.size());
    records_.push_back(std::move(record));
  }
  tls_open_spans.emplace_back(this, index);
  return index;
}

void Trace::End(int index, int64_t items) {
  TT_CHECK(index >= 0);
  const double end_ms = NowMs();
  // Spans close in RAII order, so the entry is the thread's innermost
  // span of this trace; erase it wherever it sits to stay robust.
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend();
       ++it) {
    if (it->first == this && it->second == index) {
      tls_open_spans.erase(std::next(it).base());
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  TT_CHECK(static_cast<size_t>(index) < records_.size());
  SpanRecord& record = records_[static_cast<size_t>(index)];
  record.duration_ms = end_ms - record.start_ms;
  record.items = items;
}

std::vector<SpanRecord> Trace::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

StageSpan::StageSpan(Trace* trace, std::string name) : trace_(trace) {
  if (trace_ == nullptr) return;
  index_ = trace_->Begin(std::move(name));
  begin_ms_ = trace_->NowMs();
}

StageSpan::~StageSpan() { Finish(); }

double StageSpan::ElapsedMs() const {
  if (trace_ == nullptr) return 0.0;
  return trace_->NowMs() - begin_ms_;
}

void StageSpan::Finish() {
  if (trace_ == nullptr || index_ < 0) return;
  trace_->End(index_, items_);
  index_ = -1;
}

std::string TraceJson(const std::vector<SpanRecord>& records) {
  std::string out = "[";
  for (size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& r = records[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "\n    {\"name\": \"%s\", \"parent\": %d, \"depth\": %d, "
        "\"thread\": %llu, \"start_ms\": %.3f, \"duration_ms\": %.3f, "
        "\"items\": %lld}",
        r.name.c_str(), r.parent, r.depth,
        static_cast<unsigned long long>(r.thread_id), r.start_ms,
        r.duration_ms, static_cast<long long>(r.items));
  }
  out += records.empty() ? "]" : "\n  ]";
  return out;
}

std::string TraceTree(const std::vector<SpanRecord>& records) {
  std::string out;
  // Records are in begin order, which for single-rooted stage traces is
  // also pre-order; render each with its nesting indentation.
  for (const SpanRecord& r : records) {
    out += StrFormat("%*s%-*s %9.1f ms", r.depth * 2, "",
                     28 - r.depth * 2, r.name.c_str(), r.duration_ms);
    if (r.items > 0) {
      out += StrFormat("  %lld items", static_cast<long long>(r.items));
    }
    out += StrFormat("  [t%llu]\n",
                     static_cast<unsigned long long>(r.thread_id));
  }
  return out;
}

}  // namespace obs
}  // namespace taxitrace
