# Empty dependencies file for taxitrace_geo.
# This may be replaced when dependencies are built.
