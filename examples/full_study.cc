// Full study runner: executes the paper-scale pipeline and writes every
// table and figure artefact into an output directory — the one-command
// reproduction a downstream user runs first.
//
//   $ ./full_study [output_dir] [scenario] [num_cars] [num_days] [seed]
//
// `scenario` is one of the names in core::ScenarioCatalog() ("paper",
// "small", "winter-storm", "event-weekend", "degraded-sensors",
// "dense-city", "no-river"); default "paper".

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>

#include "taxitrace/analysis/route_stats.h"
#include "taxitrace/core/figures.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/core/reports.h"
#include "taxitrace/core/scenarios.h"
#include "taxitrace/roadnet/map_io.h"

int main(int argc, char** argv) {
  using namespace taxitrace;

  const std::string out_dir = argc > 1 ? argv[1] : "study_output";
  const std::string scenario = argc > 2 ? argv[2] : "paper";
  const Result<core::StudyConfig> scenario_config =
      core::MakeScenario(scenario);
  if (!scenario_config.ok()) {
    std::fprintf(stderr, "%s\navailable scenarios:\n",
                 scenario_config.status().ToString().c_str());
    for (const core::ScenarioInfo& info : core::ScenarioCatalog()) {
      std::fprintf(stderr, "  %-16s %s\n", info.name.c_str(),
                   info.description.c_str());
    }
    return 2;
  }
  core::StudyConfig config = *scenario_config;
  if (argc > 3) config.fleet.num_cars = std::atoi(argv[3]);
  if (argc > 4) config.fleet.num_days = std::atoi(argv[4]);
  if (argc > 5) {
    config.fleet.seed = std::strtoull(argv[5], nullptr, 10);
    config.map.seed = config.fleet.seed + 1;
    config.weather_seed = config.fleet.seed + 2;
  }
  ::mkdir(out_dir.c_str(), 0755);

  std::printf(
      "Running the '%s' study: %d cars, %d days, seed %llu...\n",
      scenario.c_str(), config.fleet.num_cars, config.fleet.num_days,
      static_cast<unsigned long long>(config.fleet.seed));
  core::Pipeline pipeline(config);
  const Result<core::StudyResults> run = pipeline.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const core::StudyResults& r = *run;

  // Text report with every table.
  std::string report;
  report += core::FormatTable1(r.map.network, 10) + "\n";
  report += core::FormatTable2Report(r.cleaning_report) + "\n";
  report += core::FormatTable3(r.table3) + "\n";
  report += core::FormatTable4(analysis::BuildTable4(r.Records())) + "\n";
  report +=
      core::FormatTable5(analysis::BuildTable5(r.cells)) + "\n";
  report += core::FormatTextAggregates(r);

  struct Artefact {
    const char* name;
    std::string content;
  };
  const Artefact artefacts[] = {
      {"tables.txt", report},
      {"fig3_speed_map_taxi1.csv", core::SpeedPointsCsv(r, 1)},
      {"fig4_fig5_speed_points_all.csv", core::SpeedPointsCsv(r, 0)},
      {"fig6_cell_map_LT.geojson", core::CellMapGeoJson(r, "L-T")},
      {"fig7_qqplot.csv", core::QqPlotCsv(r)},
      {"fig8_intercepts.csv", core::InterceptsCsv(r)},
      {"fig9_intercept_map.geojson", core::CellMapGeoJson(r)},
      {"fig10_weather_low_speed.csv", core::WeatherLowSpeedCsv(r, 6)},
      {"hourly_speed.csv", core::HourlySpeedCsv(r)},
      {"fig2_gates.geojson", core::GatesGeoJson(r)},
      {"road_network.geojson",
       roadnet::NetworkToGeoJson(r.map.network)},
      {"traffic_elements.csv",
       roadnet::ElementsToCsv(r.map.source_elements)},
      {"map_features.csv",
       roadnet::FeaturesToCsv(r.map.source_features)},
  };
  for (const Artefact& artefact : artefacts) {
    const std::string path = out_dir + "/" + artefact.name;
    const Status st = core::WriteTextFile(path, artefact.content);
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("  wrote %s (%zu bytes)\n", path.c_str(),
                artefact.content.size());
  }
  std::printf(
      "\nDone: %zu transitions analysed, %lld point speeds, %zu grid "
      "cells.\n",
      r.transitions.size(),
      static_cast<long long>(r.total_point_speeds), r.cells.size());
  return 0;
}
