#include "taxitrace/mapmatch/nearest_edge_matcher.h"

namespace taxitrace {
namespace mapmatch {

NearestEdgeMatcher::NearestEdgeMatcher(const roadnet::RoadNetwork* network,
                                       const roadnet::SpatialIndex* index,
                                       double max_snap_distance_m)
    : network_(network),
      index_(index),
      max_snap_distance_m_(max_snap_distance_m) {}

Result<MatchedRoute> NearestEdgeMatcher::Match(
    const trace::Trip& trip) const {
  if (trip.points.size() < 2) {
    return Status::InvalidArgument("trip has fewer than two points");
  }
  const geo::LocalProjection& proj = network_->projection();
  MatchedRoute route;
  std::vector<geo::EnPoint> snapped;
  for (size_t i = 0; i < trip.points.size(); ++i) {
    const geo::EnPoint p = proj.Forward(trip.points[i].position);
    const std::optional<roadnet::EdgeCandidate> nearest =
        index_->Nearest(p, max_snap_distance_m_);
    if (!nearest.has_value()) {
      ++route.points_skipped;
      continue;
    }
    route.points.push_back(MatchedPoint{
        i,
        roadnet::EdgePosition{nearest->edge, nearest->projection.arc_length},
        nearest->projection.distance});
    if (route.steps.empty() || route.steps.back().edge != nearest->edge) {
      route.steps.push_back(roadnet::PathStep{nearest->edge, true});
    }
    snapped.push_back(nearest->projection.point);
  }
  if (route.points.size() < 2) {
    return Status::NotFound("fewer than two points could be snapped");
  }
  route.geometry = geo::Polyline(std::move(snapped));
  route.length_m = route.geometry.Length();
  return route;
}

}  // namespace mapmatch
}  // namespace taxitrace
