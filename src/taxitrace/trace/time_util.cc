#include "taxitrace/trace/time_util.h"

#include <cmath>

#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace trace {

CivilDate StudyEpoch() { return CivilDate{2012, 10, 1}; }

CivilDate CivilFromDays(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d)};
}

int64_t DaysFromCivil(const CivilDate& date) {
  const int y = date.year - (date.month <= 2);
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned mp =
      static_cast<unsigned>(date.month > 2 ? date.month - 3 : date.month + 9);
  const unsigned doy =
      (153 * mp + 2) / 5 + static_cast<unsigned>(date.day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

CivilDate DateOfTimestamp(double timestamp_s) {
  const int64_t epoch_days = DaysFromCivil(StudyEpoch());
  const int64_t day =
      epoch_days +
      static_cast<int64_t>(std::floor(timestamp_s / kSecondsPerDay));
  return CivilFromDays(day);
}

int MonthOfTimestamp(double timestamp_s) {
  return DateOfTimestamp(timestamp_s).month;
}

int DayOfStudy(double timestamp_s) {
  return static_cast<int>(std::floor(timestamp_s / kSecondsPerDay));
}

int DayOfWeek(double timestamp_s) {
  // 1970-01-01 was a Thursday (ISO index 3).
  const int64_t days =
      DaysFromCivil(StudyEpoch()) +
      static_cast<int64_t>(std::floor(timestamp_s / kSecondsPerDay));
  const int64_t dow = (days % 7 + 7 + 3) % 7;
  return static_cast<int>(dow);
}

bool IsWeekend(double timestamp_s) { return DayOfWeek(timestamp_s) >= 5; }

double HourOfDay(double timestamp_s) {
  double day_frac = std::fmod(timestamp_s, kSecondsPerDay);
  if (day_frac < 0.0) day_frac += kSecondsPerDay;
  return day_frac / 3600.0;
}

std::string FormatTimestamp(double timestamp_s) {
  const CivilDate date = DateOfTimestamp(timestamp_s);
  double day_frac = std::fmod(timestamp_s, kSecondsPerDay);
  if (day_frac < 0.0) day_frac += kSecondsPerDay;
  const int hh = static_cast<int>(day_frac / 3600.0);
  const int mm = static_cast<int>(std::fmod(day_frac / 60.0, 60.0));
  const int ss = static_cast<int>(std::fmod(day_frac, 60.0));
  return StrFormat("%04d-%02d-%02d %02d:%02d:%02d", date.year, date.month,
                   date.day, hh, mm, ss);
}

}  // namespace trace
}  // namespace taxitrace
