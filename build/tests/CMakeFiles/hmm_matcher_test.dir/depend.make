# Empty dependencies file for hmm_matcher_test.
# This may be replaced when dependencies are built.
