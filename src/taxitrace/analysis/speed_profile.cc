#include "taxitrace/analysis/speed_profile.h"

#include <algorithm>
#include <cmath>

namespace taxitrace {
namespace analysis {

std::vector<ProfileBin> BuildSpeedProfile(
    const std::vector<const trace::Trip*>& trips,
    const geo::Polyline& corridor, const geo::LocalProjection& projection,
    const SpeedProfileOptions& options) {
  std::vector<ProfileBin> bins;
  if (corridor.size() < 2 || options.bin_m <= 0.0) return bins;
  const double total = corridor.Length();
  const size_t num_bins =
      static_cast<size_t>(std::ceil(total / options.bin_m));
  bins.resize(num_bins);
  for (size_t b = 0; b < num_bins; ++b) {
    bins[b].arc_start_m = static_cast<double>(b) * options.bin_m;
    bins[b].arc_end_m = std::min(total, bins[b].arc_start_m + options.bin_m);
    bins[b].min_speed_kmh = std::numeric_limits<double>::infinity();
  }
  for (const trace::Trip* trip : trips) {
    if (trip == nullptr) continue;
    for (const trace::RoutePoint& p : trip->points) {
      const geo::EnPoint local = projection.Forward(p.position);
      const geo::PolylineProjection proj = corridor.Project(local);
      if (proj.distance > options.max_offset_m) continue;
      const size_t b = std::min(
          num_bins - 1,
          static_cast<size_t>(proj.arc_length / options.bin_m));
      ProfileBin& bin = bins[b];
      ++bin.n;
      bin.mean_speed_kmh +=
          (p.speed_kmh - bin.mean_speed_kmh) / static_cast<double>(bin.n);
      bin.min_speed_kmh = std::min(bin.min_speed_kmh, p.speed_kmh);
    }
  }
  for (ProfileBin& bin : bins) {
    if (bin.n == 0) bin.min_speed_kmh = 0.0;
  }
  return bins;
}

const ProfileBin* SlowestBin(const std::vector<ProfileBin>& profile) {
  const ProfileBin* slowest = nullptr;
  for (const ProfileBin& bin : profile) {
    if (bin.n == 0) continue;
    if (slowest == nullptr ||
        bin.mean_speed_kmh < slowest->mean_speed_kmh) {
      slowest = &bin;
    }
  }
  return slowest;
}

}  // namespace analysis
}  // namespace taxitrace
