// Route inspector: the per-trip drill-down a downstream application
// (personalised route recommendation, post-driving analysis) would run.
// Simulates one taxi ride, observes it with the defective sensor, cleans
// and map-matches it, and prints the route's map context.
//
//   $ ./route_inspector [seed]

#include <cstdio>
#include <cstdlib>

#include "taxitrace/clean/order_repair.h"
#include "taxitrace/clean/outlier_filter.h"
#include "taxitrace/mapattr/attribute_fetcher.h"
#include "taxitrace/mapmatch/incremental_matcher.h"
#include "taxitrace/mapmatch/match_quality.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/driver_model.h"
#include "taxitrace/synth/sensor_model.h"
#include "taxitrace/trace/time_util.h"

int main(int argc, char** argv) {
  using namespace taxitrace;

  const uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2012;
  Rng rng(seed);

  // 1. World: map, weather, driver, sensor.
  const Result<synth::CityMap> map_result = synth::GenerateCityMap();
  if (!map_result.ok()) {
    std::fprintf(stderr, "map generation failed: %s\n",
                 map_result.status().ToString().c_str());
    return 1;
  }
  const synth::CityMap& map = *map_result;
  const synth::WeatherModel weather(seed, 365);
  const synth::DriverModel driver(&map, &weather);
  const synth::SensorModel sensor;
  const roadnet::Router router(&map.network);

  // 2. One customer ride from the S gate to the T gate.
  const roadnet::VertexId from = map.FindGate("S").value()->terminal_vertex;
  const roadnet::VertexId to = map.FindGate("T").value()->terminal_vertex;
  const roadnet::Path truth = router.ShortestPath(from, to).value();
  const double start = 40.0 * trace::kSecondsPerDay + 14.5 * 3600.0;
  const auto samples = driver.Drive(truth, start, 1.0, &rng);

  trace::Trip trip;
  trip.trip_id = 1;
  trip.car_id = 1;
  int64_t next_point_id = 1;
  trip.points = sensor.Observe(samples, trip.trip_id, &next_point_id,
                               map.network.projection(), &rng);
  trip.RecomputeTotals();
  std::printf("Raw ride: %zu route points, %.2f km, %.1f min, starting %s\n",
              trip.points.size(), trip.total_distance_m / 1000.0,
              trip.total_time_s / 60.0,
              trace::FormatTimestamp(trip.StartTime()).c_str());

  // 3. Clean: order repair + obvious errors.
  const clean::ChosenOrder order = clean::RepairTripOrder(&trip);
  clean::OutlierFilterStats outliers;
  clean::FilterTripOutliers(&trip, {}, &outliers);
  std::printf(
      "Cleaning: order %s; %lld duplicates, %lld spikes, %lld impossible "
      "speeds removed\n",
      order == clean::ChosenOrder::kConsistent ? "already consistent"
      : order == clean::ChosenOrder::kById     ? "repaired by id"
                                               : "repaired by timestamp",
      static_cast<long long>(outliers.duplicates_removed),
      static_cast<long long>(outliers.spikes_removed),
      static_cast<long long>(outliers.implied_speed_removed));

  // 4. Map-match and compare against the simulated ground truth.
  const roadnet::SpatialIndex index(&map.network);
  const mapmatch::IncrementalMatcher matcher(&map.network, &index);
  const Result<mapmatch::MatchedRoute> matched = matcher.Match(trip);
  if (!matched.ok()) {
    std::fprintf(stderr, "matching failed: %s\n",
                 matched.status().ToString().c_str());
    return 1;
  }
  std::vector<roadnet::EdgeId> truth_edges;
  for (const roadnet::PathStep& s : truth.steps) {
    truth_edges.push_back(s.edge);
  }
  std::printf(
      "Matched route: %.2f km over %zu edges, %d gaps Dijkstra-filled, "
      "%d points unmatched\n",
      matched->length_m / 1000.0, matched->DistinctEdges().size(),
      matched->gaps_filled, matched->points_skipped);
  std::printf(
      "Against simulation truth: edge Jaccard %.2f, mean deviation %.1f "
      "m, length error %.1f%%\n",
      mapmatch::EdgeJaccard(matched->DistinctEdges(), truth_edges),
      mapmatch::MeanGeometryDeviation(matched->geometry, truth.geometry),
      100.0 * mapmatch::RouteLengthError(matched->length_m,
                                         truth.length_m));

  // 5. Map context of the driven route (Section IV-F).
  const mapattr::AttributeFetcher fetcher(&map.network);
  const mapattr::RouteAttributes attrs = fetcher.Fetch(*matched);
  std::printf(
      "Map context: %d junctions, %d traffic lights, %d pedestrian "
      "crossings, %d bus stops along the route\n",
      attrs.junctions, attrs.traffic_lights, attrs.pedestrian_crossings,
      attrs.bus_stops);

  // 6. Driving profile.
  int low = 0;
  for (const trace::RoutePoint& p : trip.points) {
    if (p.speed_kmh < 10.0) ++low;
  }
  std::printf(
      "Driving profile: %.0f%% low-speed points, %.0f ml fuel "
      "(%.0f ml/km), weather %.1f C\n",
      100.0 * low / static_cast<double>(trip.points.size()),
      trip.total_fuel_ml, trip.total_fuel_ml * 1000.0 / matched->length_m,
      weather.TemperatureAt(start));
  return 0;
}
