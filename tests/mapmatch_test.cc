#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "taxitrace/mapmatch/candidates.h"
#include "taxitrace/mapmatch/incremental_matcher.h"
#include "taxitrace/mapmatch/match_quality.h"
#include "taxitrace/mapmatch/nearest_edge_matcher.h"
#include "taxitrace/mapmatch/route_cache.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/driver_model.h"
#include "taxitrace/synth/sensor_model.h"

namespace taxitrace {
namespace mapmatch {
namespace {

using geo::EnPoint;

const synth::CityMap& TestMap() {
  static const synth::CityMap* map = [] {
    auto result = synth::GenerateCityMap();
    return new synth::CityMap(std::move(result).value());
  }();
  return *map;
}

const roadnet::SpatialIndex& TestIndex() {
  static const roadnet::SpatialIndex* index =
      new roadnet::SpatialIndex(&TestMap().network);
  return *index;
}

// --- Scores ------------------------------------------------------------------

TEST(ScoreTest, DistanceScoreDecreasesWithDistance) {
  const ScoreOptions options;
  EXPECT_GT(DistanceScore(0.0, options), DistanceScore(10.0, options));
  EXPECT_GT(DistanceScore(10.0, options), DistanceScore(40.0, options));
  EXPECT_DOUBLE_EQ(DistanceScore(0.0, options), options.distance_mu);
}

TEST(ScoreTest, HeadingScoreFavoursAlignment) {
  const ScoreOptions options;
  roadnet::Edge edge;
  edge.geometry = geo::Polyline({{0, 0}, {100, 0}});  // heading east
  edge.direction = roadnet::TravelDirection::kBoth;
  const double aligned = HeadingScore(0.0, true, edge, 0, options);
  const double diagonal = HeadingScore(M_PI / 4, true, edge, 0, options);
  const double perpendicular =
      HeadingScore(M_PI / 2, true, edge, 0, options);
  EXPECT_GT(aligned, diagonal);
  EXPECT_GT(diagonal, perpendicular);
  EXPECT_NEAR(aligned, options.heading_mu, 1e-9);
  EXPECT_NEAR(perpendicular, 0.0, 1e-9);
}

TEST(ScoreTest, TwoWayEdgeAcceptsOppositeHeading) {
  const ScoreOptions options;
  roadnet::Edge edge;
  edge.geometry = geo::Polyline({{0, 0}, {100, 0}});
  edge.direction = roadnet::TravelDirection::kBoth;
  EXPECT_NEAR(HeadingScore(M_PI, true, edge, 0, options),
              options.heading_mu, 1e-9);
}

TEST(ScoreTest, OneWayEdgePenalisesWrongWay) {
  const ScoreOptions options;
  roadnet::Edge edge;
  edge.geometry = geo::Polyline({{0, 0}, {100, 0}});
  edge.direction = roadnet::TravelDirection::kForward;
  EXPECT_NEAR(HeadingScore(0.0, true, edge, 0, options),
              options.heading_mu, 1e-9);
  EXPECT_NEAR(HeadingScore(M_PI, true, edge, 0, options),
              -options.heading_mu, 1e-9);

  edge.direction = roadnet::TravelDirection::kBackward;
  EXPECT_NEAR(HeadingScore(M_PI, true, edge, 0, options),
              options.heading_mu, 1e-9);
}

TEST(ScoreTest, NoHeadingDisablesTerm) {
  const ScoreOptions options;
  roadnet::Edge edge;
  edge.geometry = geo::Polyline({{0, 0}, {100, 0}});
  EXPECT_DOUBLE_EQ(HeadingScore(1.0, false, edge, 0, options), 0.0);
}

TEST(CandidatesTest, SortedByTotalScore) {
  const std::vector<MatchCandidate> candidates = FindCandidates(
      TestIndex(), EnPoint{0, 0}, 0.0, false, ScoreOptions());
  ASSERT_GE(candidates.size(), 1u);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].TotalScore(), candidates[i].TotalScore());
  }
}

TEST(CandidatesTest, EmptyWhenFarFromRoads) {
  EXPECT_TRUE(FindCandidates(TestIndex(), EnPoint{9000, 9000}, 0.0, false,
                             ScoreOptions())
                  .empty());
}

// --- Matchers ------------------------------------------------------------------

class MatcherTest : public testing::Test {
 protected:
  MatcherTest()
      : weather_(3, 365),
        driver_(&TestMap(), &weather_),
        router_(&TestMap().network),
        matcher_(&TestMap().network, &TestIndex()) {}

  // Simulates a drive between two random vertices and observes it with
  // the sensor; returns (trip, truth path).
  std::pair<trace::Trip, roadnet::Path> SimulatedTrip(uint64_t seed) {
    Rng rng(seed);
    const auto& net = TestMap().network;
    roadnet::Path path;
    while (true) {
      const auto a = static_cast<roadnet::VertexId>(rng.UniformInt(
          0, static_cast<int64_t>(net.num_vertices()) - 1));
      const auto b = static_cast<roadnet::VertexId>(rng.UniformInt(
          0, static_cast<int64_t>(net.num_vertices()) - 1));
      const auto result = router_.ShortestPath(a, b);
      if (result.ok() && result->length_m > 800.0) {
        path = *result;
        break;
      }
    }
    const auto samples = driver_.Drive(path, 3600.0, 1.0, &rng);
    synth::SensorOptions sensor_options;
    sensor_options.timestamp_glitch_prob = 0.0;
    sensor_options.id_glitch_prob = 0.0;
    sensor_options.outlier_prob = 0.0;
    const synth::SensorModel sensor(sensor_options);
    trace::Trip trip;
    trip.trip_id = 1;
    int64_t next_id = 1;
    trip.points =
        sensor.Observe(samples, 1, &next_id, net.projection(), &rng);
    return {trip, path};
  }

  synth::WeatherModel weather_;
  synth::DriverModel driver_;
  roadnet::Router router_;
  IncrementalMatcher matcher_;
};

TEST_F(MatcherTest, RejectsTinyTrips) {
  trace::Trip trip;
  EXPECT_TRUE(matcher_.Match(trip).status().IsInvalidArgument());
  trip.points.resize(1);
  EXPECT_FALSE(matcher_.Match(trip).ok());
}

TEST_F(MatcherTest, RecoversSimulatedRoute) {
  double jaccard_sum = 0.0;
  double length_error_sum = 0.0;
  // The seeds pick random vertex pairs, so the sampled routes depend on
  // the network's vertex numbering. Re-picked when the graph build
  // switched to sorted endpoint-key order (stable across platforms).
  for (uint64_t seed = 9; seed <= 13; ++seed) {
    const auto [trip, truth] = SimulatedTrip(seed);
    const Result<MatchedRoute> matched = matcher_.Match(trip);
    ASSERT_TRUE(matched.ok()) << "seed " << seed;
    std::vector<roadnet::EdgeId> truth_edges;
    for (const roadnet::PathStep& s : truth.steps) {
      truth_edges.push_back(s.edge);
    }
    const double jaccard =
        EdgeJaccard(matched->DistinctEdges(), truth_edges);
    jaccard_sum += jaccard;
    EXPECT_GT(jaccard, 0.55) << "seed " << seed;
    EXPECT_LT(MeanGeometryDeviation(matched->geometry, truth.geometry),
              25.0)
        << "seed " << seed;
    const double length_error =
        RouteLengthError(matched->length_m, truth.length_m);
    length_error_sum += length_error;
    EXPECT_LT(length_error, 0.4) << "seed " << seed;
  }
  EXPECT_GT(jaccard_sum / 5.0, 0.7);
  EXPECT_LT(length_error_sum / 5.0, 0.2);
}

TEST_F(MatcherTest, MatchedPointsReferenceTripIndices) {
  const auto [trip, truth] = SimulatedTrip(11);
  (void)truth;
  const MatchedRoute matched = matcher_.Match(trip).value();
  ASSERT_GE(matched.points.size(), 2u);
  for (const MatchedPoint& mp : matched.points) {
    EXPECT_LT(mp.point_index, trip.points.size());
    EXPECT_GE(mp.distance_m, 0.0);
    EXPECT_LT(mp.distance_m, 60.0);
  }
  // Point indices strictly increase.
  for (size_t i = 1; i < matched.points.size(); ++i) {
    EXPECT_GT(matched.points[i].point_index,
              matched.points[i - 1].point_index);
  }
}

TEST_F(MatcherTest, GapFillingBridgesDroppedPoints) {
  auto [trip, truth] = SimulatedTrip(23);
  // Remove a long middle stretch of points to create a gap.
  const size_t n = trip.points.size();
  ASSERT_GT(n, 14u);
  trip.points.erase(trip.points.begin() + static_cast<ptrdiff_t>(n / 3),
                    trip.points.begin() + static_cast<ptrdiff_t>(2 * n / 3));
  const MatchedRoute matched = matcher_.Match(trip).value();
  EXPECT_GE(matched.gaps_filled, 1);
  // The reconstructed route still covers most of the truth.
  std::vector<roadnet::EdgeId> truth_edges;
  for (const roadnet::PathStep& s : truth.steps) {
    truth_edges.push_back(s.edge);
  }
  EXPECT_GT(EdgeJaccard(matched.DistinctEdges(), truth_edges), 0.5);
}

TEST_F(MatcherTest, GeometryIsContinuous) {
  const auto [trip, truth] = SimulatedTrip(31);
  (void)truth;
  const MatchedRoute matched = matcher_.Match(trip).value();
  const auto& pts = matched.geometry.points();
  ASSERT_GE(pts.size(), 2u);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(geo::Distance(pts[i - 1], pts[i]), 150.0);
  }
}

TEST_F(MatcherTest, NearestEdgeBaselineWorksButIsWeaker) {
  const NearestEdgeMatcher baseline(&TestMap().network, &TestIndex());
  double inc_jaccard_sum = 0.0, base_jaccard_sum = 0.0;
  int runs = 0;
  for (uint64_t seed = 41; seed <= 45; ++seed) {
    const auto [trip, truth] = SimulatedTrip(seed);
    const auto inc = matcher_.Match(trip);
    const auto base = baseline.Match(trip);
    ASSERT_TRUE(inc.ok());
    ASSERT_TRUE(base.ok());
    std::vector<roadnet::EdgeId> truth_edges;
    for (const roadnet::PathStep& s : truth.steps) {
      truth_edges.push_back(s.edge);
    }
    inc_jaccard_sum += EdgeJaccard(inc->DistinctEdges(), truth_edges);
    base_jaccard_sum += EdgeJaccard(base->DistinctEdges(), truth_edges);
    ++runs;
  }
  EXPECT_GE(inc_jaccard_sum, base_jaccard_sum);
  EXPECT_GT(base_jaccard_sum / runs, 0.3);  // the baseline is not useless
}

TEST(NearestEdgeMatcherTest, RejectsTinyTrips) {
  const NearestEdgeMatcher baseline(&TestMap().network, &TestIndex());
  trace::Trip trip;
  EXPECT_FALSE(baseline.Match(trip).ok());
}

// --- Quality metrics -----------------------------------------------------------

TEST(MatchQualityTest, EdgeJaccard) {
  EXPECT_DOUBLE_EQ(EdgeJaccard({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(EdgeJaccard({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(EdgeJaccard({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(EdgeJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(EdgeJaccard({1}, {}), 0.0);
  // Duplicates in the inputs do not distort the set semantics.
  EXPECT_DOUBLE_EQ(EdgeJaccard({1, 1, 2}, {1, 2, 2}), 1.0);
}

TEST(MatchQualityTest, GeometryDeviation) {
  const geo::Polyline a({{0, 0}, {100, 0}});
  const geo::Polyline b({{0, 5}, {100, 5}});
  EXPECT_NEAR(MeanGeometryDeviation(a, b), 5.0, 0.1);
  EXPECT_NEAR(MeanGeometryDeviation(a, a), 0.0, 1e-9);
  EXPECT_TRUE(std::isinf(MeanGeometryDeviation(geo::Polyline(), a)));
}

TEST(MatchQualityTest, RouteLengthError) {
  EXPECT_DOUBLE_EQ(RouteLengthError(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RouteLengthError(90.0, 100.0), 0.1);
  EXPECT_TRUE(std::isinf(RouteLengthError(10.0, 0.0)));
}

// --- Route cache ------------------------------------------------------------

roadnet::EdgePosition Pos(roadnet::EdgeId edge, double arc) {
  return roadnet::EdgePosition{edge, arc};
}

Result<roadnet::Path> PathOfLength(double length_m) {
  roadnet::Path p;
  p.length_m = length_m;
  return p;
}

TEST(RouteCacheTest, HitMissAndRefresh) {
  RouteCache cache(4);
  EXPECT_EQ(cache.Find(Pos(1, 0.0), Pos(2, 5.0)), nullptr);
  EXPECT_EQ(cache.stats().misses, 1);
  cache.Insert(Pos(1, 0.0), Pos(2, 5.0), PathOfLength(42.0));

  const Result<roadnet::Path>* hit = cache.Find(Pos(1, 0.0), Pos(2, 5.0));
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ((*hit)->length_m, 42.0);
  EXPECT_EQ(cache.stats().hits, 1);

  // The key is the exact bit pattern of both positions: a different arc
  // length is a different entry.
  EXPECT_EQ(cache.Find(Pos(1, 0.0), Pos(2, 5.5)), nullptr);
  // Re-inserting an existing key refreshes the value in place.
  cache.Insert(Pos(1, 0.0), Pos(2, 5.0), PathOfLength(43.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ((*cache.Find(Pos(1, 0.0), Pos(2, 5.0)))->length_m, 43.0);
}

TEST(RouteCacheTest, CachesNotFoundOutcomes) {
  RouteCache cache(2);
  cache.Insert(Pos(3, 0.0), Pos(4, 0.0), Status::NotFound("unreachable"));
  const Result<roadnet::Path>* hit = cache.Find(Pos(3, 0.0), Pos(4, 0.0));
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->status().IsNotFound());
}

TEST(RouteCacheTest, EvictsLeastRecentlyUsed) {
  RouteCache cache(2);
  cache.Insert(Pos(1, 0.0), Pos(9, 0.0), PathOfLength(1.0));
  cache.Insert(Pos(2, 0.0), Pos(9, 0.0), PathOfLength(2.0));
  // Touch entry 1 so entry 2 becomes the eviction victim.
  ASSERT_NE(cache.Find(Pos(1, 0.0), Pos(9, 0.0)), nullptr);
  cache.Insert(Pos(3, 0.0), Pos(9, 0.0), PathOfLength(3.0));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_NE(cache.Find(Pos(1, 0.0), Pos(9, 0.0)), nullptr);
  EXPECT_EQ(cache.Find(Pos(2, 0.0), Pos(9, 0.0)), nullptr);
  EXPECT_NE(cache.Find(Pos(3, 0.0), Pos(9, 0.0)), nullptr);
}

// Regression for the equal-implies-equal-hash violation: Key used a
// defaulted operator== over the arc doubles while KeyHash hashed their
// bit patterns, so -0.0 and +0.0 compared equal but hashed apart —
// unordered_map UB territory. Equality now compares bit patterns too:
// the signed zeros are two distinct, individually retrievable entries.
TEST(RouteCacheTest, SignedZeroArcsAreDistinctKeys) {
  RouteCache cache(4);
  cache.Insert(Pos(1, +0.0), Pos(2, 0.0), PathOfLength(1.0));
  cache.Insert(Pos(1, -0.0), Pos(2, 0.0), PathOfLength(2.0));
  EXPECT_EQ(cache.size(), 2u);

  const Result<roadnet::Path>* pos = cache.Find(Pos(1, +0.0), Pos(2, 0.0));
  ASSERT_NE(pos, nullptr);
  EXPECT_DOUBLE_EQ((*pos)->length_m, 1.0);
  const Result<roadnet::Path>* neg = cache.Find(Pos(1, -0.0), Pos(2, 0.0));
  ASSERT_NE(neg, nullptr);
  EXPECT_DOUBLE_EQ((*neg)->length_m, 2.0);
  EXPECT_EQ(cache.stats().hits, 2);
  EXPECT_EQ(cache.stats().misses, 0);
}

// With value equality a NaN arc never equalled itself, so re-inserting
// the same key duplicated the entry and Find could never hit. Bit-
// pattern equality makes NaN keys behave like any other bit pattern.
TEST(RouteCacheTest, NanArcKeysAreWellBehaved) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  RouteCache cache(4);
  cache.Insert(Pos(1, nan), Pos(2, 0.0), PathOfLength(1.0));
  cache.Insert(Pos(1, nan), Pos(2, 0.0), PathOfLength(2.0));
  // Same bit pattern: the second Insert refreshed, not duplicated.
  EXPECT_EQ(cache.size(), 1u);

  const Result<roadnet::Path>* hit = cache.Find(Pos(1, nan), Pos(2, 0.0));
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ((*hit)->length_m, 2.0);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(RouteCacheTest, CapacityZeroDisables) {
  RouteCache cache(0);
  cache.Insert(Pos(1, 0.0), Pos(2, 0.0), PathOfLength(1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Find(Pos(1, 0.0), Pos(2, 0.0)), nullptr);
  // A disabled cache is transparent in the metrics too: no tallies.
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);
  EXPECT_EQ(cache.stats().evictions, 0);
}

}  // namespace
}  // namespace mapmatch
}  // namespace taxitrace
