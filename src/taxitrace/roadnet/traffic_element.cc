#include "taxitrace/roadnet/traffic_element.h"

namespace taxitrace {
namespace roadnet {

std::string_view TravelDirectionName(TravelDirection d) {
  switch (d) {
    case TravelDirection::kBoth:
      return "both";
    case TravelDirection::kForward:
      return "forward";
    case TravelDirection::kBackward:
      return "backward";
  }
  return "?";
}

TravelDirection ReverseDirection(TravelDirection d) {
  switch (d) {
    case TravelDirection::kForward:
      return TravelDirection::kBackward;
    case TravelDirection::kBackward:
      return TravelDirection::kForward;
    case TravelDirection::kBoth:
      return TravelDirection::kBoth;
  }
  return TravelDirection::kBoth;
}

}  // namespace roadnet
}  // namespace taxitrace
