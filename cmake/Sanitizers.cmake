# Sanitizer support: configure with -DTAXITRACE_SANITIZE=<list>.
#
# Supported values (semicolon- or comma-separated):
#   address    AddressSanitizer
#   undefined  UndefinedBehaviorSanitizer
#   thread     ThreadSanitizer
#   leak       LeakSanitizer (implied by address on Linux)
#
# address and undefined compose ("address;undefined" is the CI matrix job);
# thread is mutually exclusive with address/leak. Flags are applied globally
# so every library, test, bench and example target — and gtest/benchmark
# code inlined into them — is instrumented consistently.

set(TAXITRACE_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizer list: address;undefined or thread")

if(TAXITRACE_SANITIZE)
  # Accept comma separators too ("address,undefined").
  string(REPLACE "," ";" _tt_sanitizers "${TAXITRACE_SANITIZE}")

  set(_tt_valid address undefined thread leak)
  foreach(_tt_s IN LISTS _tt_sanitizers)
    if(NOT _tt_s IN_LIST _tt_valid)
      message(FATAL_ERROR
        "TAXITRACE_SANITIZE: unknown sanitizer '${_tt_s}' "
        "(expected a list of: ${_tt_valid})")
    endif()
  endforeach()

  if("thread" IN_LIST _tt_sanitizers AND
     ("address" IN_LIST _tt_sanitizers OR "leak" IN_LIST _tt_sanitizers))
    message(FATAL_ERROR
      "TAXITRACE_SANITIZE: thread cannot be combined with address/leak")
  endif()

  string(REPLACE ";" "," _tt_fsan "${_tt_sanitizers}")
  set(_tt_san_flags -fsanitize=${_tt_fsan} -fno-omit-frame-pointer)
  if("undefined" IN_LIST _tt_sanitizers)
    # Abort on UB instead of printing and continuing, so ctest fails.
    list(APPEND _tt_san_flags -fno-sanitize-recover=all)
  endif()

  add_compile_options(${_tt_san_flags})
  add_link_options(${_tt_san_flags})

  # Sanitized builds are for finding bugs: keep debug info and frame
  # pointers useful even when the cache says Release.
  add_compile_options(-g)

  message(STATUS "Sanitizers enabled: ${_tt_sanitizers}")
endif()
