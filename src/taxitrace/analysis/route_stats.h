// Per-transition route statistics and the Table 4 summary: route time,
// distance, low/normal speed shares, map attributes and fuel consumption
// per origin-destination direction.

#ifndef TAXITRACE_ANALYSIS_ROUTE_STATS_H_
#define TAXITRACE_ANALYSIS_ROUTE_STATS_H_

#include <string>
#include <vector>

#include "taxitrace/analysis/summary_stats.h"
#include "taxitrace/mapattr/attribute_fetcher.h"

namespace taxitrace {
namespace analysis {

/// One fully analysed transition — the unit record behind Tables 3-4 and
/// Figs. 3-6 and 10. Identified, as in the paper, by (trip id, start
/// time).
struct TransitionRecord {
  int64_t trip_id = 0;
  int car_id = 0;
  std::string direction;  ///< "T-S", "S-T", "T-L" or "L-T".
  double start_time_s = 0.0;
  double route_time_h = 0.0;
  double route_distance_km = 0.0;  ///< Matched route length.
  double low_speed_share = 0.0;    ///< Fraction in [0, 1].
  double normal_speed_share = 0.0; ///< Fraction in [0, 1].
  double fuel_ml = 0.0;
  mapattr::RouteAttributes attributes;
};

/// One direction's row group of Table 4.
struct Table4Row {
  std::string direction;
  Summary route_time_h;
  Summary route_distance_km;
  Summary low_speed_pct;     ///< Percent.
  Summary normal_speed_pct;  ///< Percent.
  Summary traffic_lights;
  Summary junctions;
  Summary pedestrian_crossings;
  Summary fuel_ml;
};

/// Builds Table 4 for the given direction order (directions with no
/// transitions yield empty summaries).
std::vector<Table4Row> BuildTable4(
    const std::vector<TransitionRecord>& records,
    const std::vector<std::string>& directions = {"T-S", "S-T", "T-L",
                                                  "L-T"});

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_ROUTE_STATS_H_
