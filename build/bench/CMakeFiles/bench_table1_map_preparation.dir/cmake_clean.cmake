file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_map_preparation.dir/bench_table1_map_preparation.cc.o"
  "CMakeFiles/bench_table1_map_preparation.dir/bench_table1_map_preparation.cc.o.d"
  "bench_table1_map_preparation"
  "bench_table1_map_preparation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_map_preparation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
