# Empty compiler generated dependencies file for taxitrace_core.
# This may be replaced when dependencies are built.
