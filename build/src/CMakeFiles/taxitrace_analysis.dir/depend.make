# Empty dependencies file for taxitrace_analysis.
# This may be replaced when dependencies are built.
