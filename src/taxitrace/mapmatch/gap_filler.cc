#include "taxitrace/mapmatch/gap_filler.h"

namespace taxitrace {
namespace mapmatch {

GapFiller::GapFiller(const roadnet::RoadNetwork* network,
                     GapFillOptions options)
    : network_(network), router_(network), options_(options) {}

Result<roadnet::Path> GapFiller::Connect(
    const roadnet::EdgePosition& from,
    const roadnet::EdgePosition& to) const {
  return router_.ShortestPathBetween(from, to);
}

double GapFiller::NetworkDistance(const roadnet::EdgePosition& from,
                                  const roadnet::EdgePosition& to) const {
  return router_.NetworkDistance(from, to);
}

bool GapFiller::IsPlausible(double network_length_m,
                            double straight_line_m) const {
  return network_length_m <= options_.detour_factor * straight_line_m +
                                 options_.detour_slack_m;
}

}  // namespace mapmatch
}  // namespace taxitrace
