# Empty compiler generated dependencies file for taxitrace_odselect.
# This may be replaced when dependencies are built.
