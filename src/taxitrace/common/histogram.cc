#include "taxitrace/common/histogram.h"

#include <algorithm>
#include <cmath>

#include "taxitrace/common/check.h"
#include "taxitrace/common/strings.h"

namespace taxitrace {

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi) {
  TT_CHECK(lo < hi && num_bins >= 1);
  bin_width_ = (hi - lo) / num_bins;
  counts_.assign(static_cast<size_t>(num_bins), 0);
}

void Histogram::Add(double value) {
  if (!std::isfinite(value)) {
    // floor(NaN/Inf) cast to int is UB; keep such values out of the
    // bins (and out of every quantile) but keep them countable.
    ++nonfinite_;
    return;
  }
  int bin = static_cast<int>(std::floor((value - lo_) / bin_width_));
  bin = std::clamp(bin, 0, num_bins() - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

double Histogram::BinLow(int bin) const { return lo_ + bin * bin_width_; }

double Histogram::Mode() const {
  if (total_ == 0) return 0.0;
  const auto it = std::max_element(counts_.begin(), counts_.end());
  const int bin = static_cast<int>(it - counts_.begin());
  return BinLow(bin) + bin_width_ / 2.0;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (int bin = 0; bin < num_bins(); ++bin) {
    const double next =
        cumulative + static_cast<double>(counts_[static_cast<size_t>(bin)]);
    if (next >= target) {
      const double in_bin = counts_[static_cast<size_t>(bin)] > 0
                                ? (target - cumulative) /
                                      static_cast<double>(
                                          counts_[static_cast<size_t>(bin)])
                                : 0.0;
      // BinLow(bin) + bin_width_ can land one ulp above hi_ for the
      // last bin; the quantile contract is a value within [lo_, hi_].
      return std::min(BinLow(bin) + in_bin * bin_width_, hi_);
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::Render(int max_width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (int bin = 0; bin < num_bins(); ++bin) {
    const int64_t c = counts_[static_cast<size_t>(bin)];
    const int width = static_cast<int>(
        std::llround(static_cast<double>(c) * max_width /
                     static_cast<double>(peak)));
    out += StrFormat("%10.2f |%-*s %lld\n", BinLow(bin), max_width,
                     std::string(static_cast<size_t>(width), '#').c_str(),
                     static_cast<long long>(c));
  }
  return out;
}

}  // namespace taxitrace
