// Shared helpers for the reproduction benches. Each bench binary first
// prints the table/figure it regenerates (against the paper's numbers),
// then runs google-benchmark timings of the underlying computation.

#ifndef TAXITRACE_BENCH_BENCH_UTIL_H_
#define TAXITRACE_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "taxitrace/common/strings.h"
#include "taxitrace/core/figures.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/core/reports.h"

namespace taxitrace {
namespace benchutil {

/// The paper-scale study, run once per binary and cached.
inline const core::StudyResults& FullResults() {
  static const core::StudyResults* results = [] {
    std::fprintf(stderr, "[bench] running the full study (7 cars, 365 days)...\n");
    core::Pipeline pipeline(core::StudyConfig::FullStudy());
    auto run = pipeline.Run();
    if (!run.ok()) {
      std::fprintf(stderr, "full study failed: %s\n",
                   run.status().ToString().c_str());
      std::abort();
    }
    return new core::StudyResults(std::move(run).value());
  }();
  return *results;
}

/// A reduced study for cheap per-iteration benchmarks.
inline const core::StudyResults& SmallResults() {
  static const core::StudyResults* results = [] {
    core::Pipeline pipeline(core::StudyConfig::SmallStudy());
    auto run = pipeline.Run();
    if (!run.ok()) {
      std::fprintf(stderr, "small study failed: %s\n",
                   run.status().ToString().c_str());
      std::abort();
    }
    return new core::StudyResults(std::move(run).value());
  }();
  return *results;
}

/// Prints the first `max_lines` lines of a (possibly large) text block.
inline void PrintPreview(const std::string& text, int max_lines = 12) {
  int lines = 0;
  size_t start = 0;
  while (start < text.size() && lines < max_lines) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::printf("  %s\n", text.substr(start, end - start).c_str());
    start = end + 1;
    ++lines;
  }
  const long total =
      static_cast<long>(std::count(text.begin(), text.end(), '\n'));
  if (total > max_lines) {
    std::printf("  ... (%ld lines total)\n", total);
  }
}

/// Writes a figure data file next to the binary and reports the path.
inline void EmitFigureFile(const std::string& name,
                           const std::string& text) {
  const Status st = core::WriteTextFile(name, text);
  if (st.ok()) {
    std::printf("  [data written to ./%s]\n", name.c_str());
  } else {
    std::printf("  [could not write %s: %s]\n", name.c_str(),
                st.ToString().c_str());
  }
}

/// Standard bench main body: print the reproduction, then run timings.
#define TAXITRACE_BENCH_MAIN(print_fn)                       \
  int main(int argc, char** argv) {                          \
    print_fn();                                              \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                              \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }

}  // namespace benchutil
}  // namespace taxitrace

#endif  // TAXITRACE_BENCH_BENCH_UTIL_H_
