# Empty compiler generated dependencies file for taxitrace_roadnet.
# This may be replaced when dependencies are built.
