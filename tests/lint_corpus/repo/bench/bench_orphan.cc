// expect(unregistered-test)
