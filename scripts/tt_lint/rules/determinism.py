"""Determinism-contract rules.

The repo's core guarantee since the parallel-pipeline PR is that
StudyResults are byte-identical at any worker count (and, for the
graph build, across platforms). These rules make the patterns that
break that guarantee visible in review instead of in an
0/1/2/8-worker bisect:

  unordered-iteration   iterating an unordered container while feeding
                        an order-sensitive sink (emitter, accumulator,
                        id-allocating builder),
  ambient-entropy       entropy/wall-clock reads outside the sanctioned
                        modules (common/random, common/executor, obs/),
  pointer-keyed-order   ordered containers keyed by pointer value,
  parallel-accumulation accumulating through reference-captured shared
                        state inside ParallelFor lambdas,
  relaxed-atomic        relaxed memory-order atomics outside obs/.

Every heuristic here errs toward reporting; a justified pattern gets a
`// tt-lint: allow(<rule>): <reason>` with the reason explaining why
the order cannot leak into results.
"""

from __future__ import annotations

from ..cxx import (CXX_KEYWORDS, _chain_start, camel_words, chain_root,
                   collect_locals, find_iterator_fors, find_range_fors,
                   forward_chain_end, lhs_chain, match_angle,
                   match_forward, statement_start)
from ..engine import RepoContext, SourceFile
from ..tokenizer import ID, PUNCT
from .base import FileRule, path_is_under

_ENTROPY_EXEMPT = (
    "src/taxitrace/common/random",
    "src/taxitrace/common/executor",
    "src/taxitrace/obs/",
)
_RELAXED_EXEMPT = ("src/taxitrace/obs/",)

# Method names that append to an ordered sequence.
_SEQUENCE_SINKS = frozenset({
    "push_back", "emplace_back", "push_front", "append",
})
# Identifier word segments that mark a mutating call (AddVertex,
# Record, EmitRow, WriteCell, ...).
_MUTATOR_WORDS = frozenset({
    "add", "emit", "record", "write", "push", "append",
})


def _is_macro_name(name: str) -> bool:
    return name.isupper() or name.startswith("TT_") \
        or name.startswith("TAXITRACE_")


class UnorderedIteration(FileRule):
    name = "unordered-iteration"
    short = ("iteration over an unordered container feeding an "
             "order-sensitive sink; take a sorted snapshot or use an "
             "ordered fold")

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        toks = sf.tokens
        bare_names = ctx.unordered_names_for(sf)
        loops = [(rf.range_expr, rf.body, rf.loop_vars, rf.line)
                 for rf in find_range_fors(toks)]
        loops += [(it.receiver, it.body, it.loop_vars, it.line)
                  for it in find_iterator_fors(toks)]
        for expr_span, body_span, loop_vars, line in loops:
            if not self._expr_is_unordered(toks, expr_span, bare_names,
                                           ctx):
                continue
            sink = self._order_sensitive_sink(toks, body_span,
                                              loop_vars)
            if sink is None:
                continue
            yield self.finding(
                sf, line,
                "iteration over an unordered container "
                f"({self._expr_text(toks, expr_span)}) {sink}; iterate "
                "a sorted snapshot, or fold into a keyed/commutative "
                "accumulator", toks[expr_span[0]].col
                if expr_span[0] < len(toks) else 1)

    @staticmethod
    def _expr_text(toks, span) -> str:
        return "".join(
            t.value if t.kind != PUNCT or t.value in (".", "->", "::")
            else t.value
            for t in toks[span[0]:span[1]])[:48]

    @staticmethod
    def _expr_is_unordered(toks, span, bare_names, ctx) -> bool:
        a, b = span
        expr = toks[a:b]
        if not expr:
            return False
        ids = [t for t in expr if t.kind == ID]
        if not ids:
            return False
        # Call form: `recv.cells()` / `ComputeCellFeatures(...)`.
        if expr[-1].kind == PUNCT and expr[-1].value == ")":
            for k in range(len(expr) - 1):
                if expr[k].kind == ID and k + 1 < len(expr) \
                        and expr[k + 1].value == "(" \
                        and expr[k].value in ctx.unordered_fns:
                    return True
            return False
        # Identifier chain: last identifier is the container name.
        last = ids[-1]
        qualified = any(t.kind == PUNCT and t.value in (".", "->")
                        for t in expr)
        if qualified:
            return last.value in ctx.unordered_member_vars
        if last.value not in bare_names:
            return False
        # bare_names is file/repo-granular; the nearest in-scope
        # declaration wins — a `std::vector<...>& flows` parameter must
        # not inherit unordered-ness from a local of the same name in
        # another function.
        return not _nearest_decl_is_ordered(toks, a, last.value)

    @staticmethod
    def _order_sensitive_sink(toks, body_span, loop_vars):
        """Returns a description of the first order-sensitive sink in
        the loop body, or None. Safe shapes: targets local to the body,
        receivers indexed by a loop variable (per-key slots), sinks
        whose target is std::sort-ed after the loop."""
        a, b = body_span
        locals_ = collect_locals(toks, a - 1, b) | set(loop_vars)
        n = len(toks)
        for i in range(a, b):
            t = toks[i]
            if t.kind == PUNCT and t.value in ("+=", "<<"):
                lhs = lhs_chain(toks, i)
                if lhs is None:
                    continue
                root, cs = lhs
                if root in locals_ or root in CXX_KEYWORDS \
                        or _is_macro_name(root):
                    continue
                if _indexed_by(toks, cs, i, loop_vars):
                    continue  # per-key slot: out[key] += ...
                if t.value == "+=" and _sorted_after(toks, b, root):
                    continue
                op = ("accumulates with += into"
                      if t.value == "+=" else "streams << into")
                return f"{op} non-local '{root}'"
            if t.kind != ID or i + 1 >= n:
                continue
            nxt = toks[i + 1]
            is_call = nxt.kind == PUNCT and nxt.value == "("
            if not is_call:
                continue
            preceded_by_member = i > 0 and toks[i - 1].kind == PUNCT \
                and toks[i - 1].value in (".", "->")
            # Index-safety is judged on the receiver chain only: in
            # `slot[key] = network.AddVertex(...)` the keyed write on
            # the LHS does not make AddVertex's side effect (id
            # allocation in hash order) safe.
            if t.value in _SEQUENCE_SINKS and preceded_by_member:
                root = chain_root(toks, i)
                if root is None or root in locals_:
                    continue
                cs = _chain_start(toks, i - 1)
                if _indexed_by(toks, cs, i, loop_vars):
                    continue
                if _sorted_after(toks, b, root):
                    continue
                return f"appends into non-local '{root}' via {t.value}"
            if preceded_by_member \
                    and camel_words(t.value) & _MUTATOR_WORDS \
                    and t.value not in ("fetch_add",):
                root = chain_root(toks, i)
                if root is None or root in locals_ \
                        or _is_macro_name(root):
                    continue
                cs = _chain_start(toks, i - 1)
                if _indexed_by(toks, cs, i, loop_vars):
                    continue
                return (f"calls mutator '{root}."
                        f"{t.value}()' whose effect order follows the "
                        "hash order")
            if not preceded_by_member and not _is_macro_name(t.value) \
                    and t.value not in CXX_KEYWORDS \
                    and t.value not in ("static_cast", "const_cast",
                                        "reinterpret_cast",
                                        "dynamic_cast") \
                    and t.value not in locals_:
                # Bare call statement with discarded result: a pure
                # function call would be dead code, so this is a side
                # effect sequenced in hash order. std::-qualified
                # algorithms writing through keyed offsets are exempt.
                prev = toks[i - 1] if i > 0 else None
                if prev is not None and not (
                        prev.kind == PUNCT
                        and prev.value in (";", "{", "}", ")")):
                    continue  # part of a larger expression
                close = match_forward(toks, i + 1)
                if close + 1 < n and toks[close + 1].value == ";":
                    return (f"calls '{t.value}(...)' for its side "
                            "effects in hash order")
        return None


def _nearest_decl_is_ordered(toks, before_idx, name) -> bool:
    """True when the declaration of `name` nearest above token
    before_idx (a local or parameter) has no unordered_* type — i.e.
    the name is shadowed by an ordered container or scalar."""
    for k in range(before_idx - 1, -1, -1):
        t = toks[k]
        if t.kind != ID or t.value != name:
            continue
        nxt = toks[k + 1].value if k + 1 < len(toks) else ""
        prev = toks[k - 1] if k > 0 else None
        decl_like = (
            nxt in (";", "=", ",", ")", "{")
            and prev is not None
            and (prev.kind == ID
                 or (prev.kind == PUNCT
                     and prev.value in (">", "&", "*", "&&"))))
        if not decl_like:
            continue
        sa = statement_start(toks, k)
        return not any(s.kind == ID and s.value.startswith("unordered_")
                       for s in toks[sa:k])
    return False


def _indexed_by(toks, a, b, loop_vars) -> bool:
    """True if tokens[a:b] contain `[ ... v ... ]` with v a loop var."""
    i = a
    while i < b:
        if toks[i].kind == PUNCT and toks[i].value == "[":
            close = match_forward(toks, i)
            for k in range(i + 1, min(close, b)):
                if toks[k].kind == ID and toks[k].value in loop_vars:
                    return True
            i = close + 1
            continue
        i += 1
    return False


def _sorted_after(toks, from_idx, root) -> bool:
    """True if `std::sort/stable_sort(root.begin(), ...)` (or
    `sort(root...)`) appears after token index from_idx."""
    n = len(toks)
    for i in range(from_idx, n):
        if toks[i].kind == ID and toks[i].value in ("sort",
                                                    "stable_sort"):
            if i + 1 < n and toks[i + 1].value == "(":
                close = match_forward(toks, i + 1)
                for k in range(i + 2, close):
                    if toks[k].kind == ID and toks[k].value == root:
                        return True
    return False


class AmbientEntropy(FileRule):
    name = "ambient-entropy"
    short = ("ambient entropy (random_device, rand, time, ::now) "
             "outside common/random, common/executor, and obs/")

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        if path_is_under(sf.rel, _ENTROPY_EXEMPT):
            return
        toks = sf.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != ID:
                continue
            if t.value == "random_device":
                yield self.finding(
                    sf, t.line,
                    "std::random_device is ambient entropy; derive "
                    "streams from MixSeed (taxitrace/common/random.h)",
                    t.col)
                continue
            if t.value in ("rand", "srand", "time"):
                if i + 1 >= n or toks[i + 1].value != "(":
                    continue
                prev = toks[i - 1] if i > 0 else None
                if prev is not None and prev.kind == PUNCT \
                        and prev.value in (".", "->", "::"):
                    continue  # member/qualified call, not the libc one
                if prev is not None and prev.kind == ID \
                        and prev.value not in ("return", "else", "do",
                                               "case"):
                    continue  # declaration `time_t time(...)` etc.
                yield self.finding(
                    sf, t.line,
                    f"{t.value}() reads ambient entropy/wall-clock; "
                    "use MixSeed streams (common/random.h) or "
                    "obs::StageSpan", t.col)
                continue
            if t.value == "now" and i >= 1 \
                    and toks[i - 1].kind == PUNCT \
                    and toks[i - 1].value == "::" \
                    and i + 1 < n and toks[i + 1].value == "(":
                yield self.finding(
                    sf, t.line,
                    "::now() is ambient wall-clock; timing goes "
                    "through obs::StageSpan, simulated time through "
                    "the synth models", t.col)


class PointerKeyedOrder(FileRule):
    name = "pointer-keyed-order"
    short = ("container ordered by pointer value; iteration order is "
             "the allocator's, not the program's")

    _ORDERED = frozenset({"map", "set", "multimap", "multiset",
                          "priority_queue"})

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        toks = sf.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != ID:
                continue
            if t.value in self._ORDERED and i >= 2 \
                    and toks[i - 1].value == "::" \
                    and toks[i - 2].value == "std" \
                    and i + 1 < n and toks[i + 1].value == "<":
                close = match_angle(toks, i + 1)
                if close < 0:
                    continue
                key = self._first_template_arg(toks, i + 1, close - 1)
                if key and key[-1].kind == PUNCT \
                        and key[-1].value == "*":
                    yield self.finding(
                        sf, t.line,
                        f"std::{t.value} keyed by pointer value: "
                        "iteration/pop order is the address order, "
                        "which varies run to run; key by a stable id",
                        t.col)
            if t.value == "less" and i >= 2 \
                    and toks[i - 1].value == "::" \
                    and toks[i - 2].value == "std" \
                    and i + 1 < n and toks[i + 1].value == "<":
                close = match_angle(toks, i + 1)
                if close < 0:
                    continue
                inner = toks[i + 2:close - 1]
                if inner and inner[-1].kind == PUNCT \
                        and inner[-1].value == "*":
                    yield self.finding(
                        sf, t.line,
                        "std::less over a pointer type orders by "
                        "address; compare a stable id instead", t.col)

    @staticmethod
    def _first_template_arg(toks, open_idx, close_idx):
        depth = 0
        out = []
        for k in range(open_idx + 1, close_idx):
            t = toks[k]
            if t.kind == PUNCT:
                if t.value in ("<", "(", "["):
                    depth += 1
                elif t.value in (">", ")", "]"):
                    depth -= 1
                elif t.value == "," and depth == 0:
                    break
            out.append(t)
        return out


class ParallelAccumulation(FileRule):
    name = "parallel-accumulation"
    short = ("accumulation through reference-captured shared state "
             "inside a ParallelFor lambda; use per-index slots")

    _SINKS = frozenset({"push_back", "emplace_back", "push_front",
                        "append", "insert", "emplace"})

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        toks = sf.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != ID or t.value != "ParallelFor":
                continue
            if i == 0 or toks[i - 1].kind != PUNCT \
                    or toks[i - 1].value not in (".", "->"):
                continue  # definition or declaration, not a call
            if i + 1 >= n or toks[i + 1].value != "(":
                continue
            close = match_forward(toks, i + 1)
            lam = self._find_lambda(toks, i + 2, close)
            if lam is None:
                continue
            cap_span, params, body_span = lam
            if not any(toks[k].kind == PUNCT and "&" in toks[k].value
                       for k in range(*cap_span)):
                continue  # no by-reference captures
            index_vars = params[:1]  # ParallelFor(begin, end, f(i))
            yield from self._check_body(sf, toks, body_span, index_vars)

    @staticmethod
    def _find_lambda(toks, a, b):
        """First lambda in tokens[a:b): ([caps], [params], (body))."""
        i = a
        while i < b:
            if toks[i].kind == PUNCT and toks[i].value == "[":
                cap_close = match_forward(toks, i)
                j = cap_close + 1
                params: list[str] = []
                if j < b and toks[j].value == "(":
                    pclose = match_forward(toks, j)
                    k = j + 1
                    while k < pclose:
                        if toks[k].kind == ID \
                                and toks[k + 1].value in (",", ")"):
                            params.append(toks[k].value)
                        k += 1
                    j = pclose + 1
                # skip -> ReturnType, mutable, noexcept
                while j < b and toks[j].value != "{":
                    j += 1
                if j < b and toks[j].value == "{":
                    return ((i + 1, cap_close), params,
                            (j + 1, match_forward(toks, j)))
            i += 1
        return None

    def _check_body(self, sf, toks, body_span, index_vars):
        a, b = body_span
        locals_ = collect_locals(toks, a - 1, b) | set(index_vars)
        for i in range(a, b):
            t = toks[i]
            if t.kind == PUNCT and t.value in ("+=", "-=", "++", "--"):
                # `++x` iff an identifier follows; `x++`/`x[i]++` have
                # `;`-like punctuation after the operator instead.
                prefix = t.value in ("++", "--") \
                    and i + 1 < b and toks[i + 1].kind == ID
                if prefix:
                    if i + 1 >= b or toks[i + 1].kind != ID:
                        continue
                    root = toks[i + 1].value
                    span = (i + 1, forward_chain_end(toks, i + 1))
                else:
                    lhs = lhs_chain(toks, i)
                    if lhs is None:
                        continue
                    root, cs = lhs
                    span = (cs, i)
                if root in locals_ or root in CXX_KEYWORDS \
                        or _is_macro_name(root):
                    continue
                if _indexed_by(toks, span[0], span[1], index_vars):
                    continue  # per-index slot: out[i] += ...
                yield self.finding(
                    sf, t.line,
                    f"'{t.value}' on reference-captured '{root}' "
                    "inside a ParallelFor lambda races and merges in "
                    "completion order; write into a per-index slot "
                    "and fold after the join", t.col)
            elif t.kind == ID and t.value in self._SINKS \
                    and i > a and toks[i - 1].kind == PUNCT \
                    and toks[i - 1].value in (".", "->") \
                    and i + 1 < b and toks[i + 1].value == "(":
                root = chain_root(toks, i)
                if root is None or root in locals_:
                    continue
                cs = _chain_start(toks, i - 1)
                if _indexed_by(toks, cs, i, index_vars):
                    continue
                yield self.finding(
                    sf, t.line,
                    f"'{root}.{t.value}()' on reference-captured "
                    "shared state inside a ParallelFor lambda; use a "
                    "per-index slot and merge in index order", t.col)


class RelaxedAtomic(FileRule):
    name = "relaxed-atomic"
    short = ("relaxed memory-order atomics outside obs/; justify why "
             "the count cannot leak into results")

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        if path_is_under(sf.rel, _RELAXED_EXEMPT):
            return
        for i, t in enumerate(sf.tokens):
            if t.kind == ID and t.value == "memory_order_relaxed":
                yield self.finding(
                    sf, t.line,
                    "relaxed memory-order atomic outside obs/: relaxed "
                    "counters must never feed StudyResults; either move "
                    "the tally into obs/ or justify why its value is "
                    "order-insensitive", t.col)
