#include "taxitrace/synth/weather_model.h"

#include <algorithm>
#include <cmath>

#include "taxitrace/trace/time_util.h"

namespace taxitrace {
namespace synth {

TemperatureClass ClassifyTemperature(double celsius) {
  if (celsius <= -15.0) return TemperatureClass::kBelowMinus15;
  if (celsius <= -5.0) return TemperatureClass::kMinus15ToMinus5;
  if (celsius <= 0.0) return TemperatureClass::kMinus5To0;
  if (celsius <= 5.0) return TemperatureClass::k0To5;
  if (celsius <= 15.0) return TemperatureClass::k5To15;
  return TemperatureClass::kAbove15;
}

std::string_view TemperatureClassLabel(TemperatureClass c) {
  switch (c) {
    case TemperatureClass::kBelowMinus15:
      return "<=-15";
    case TemperatureClass::kMinus15ToMinus5:
      return "(-15,-5]";
    case TemperatureClass::kMinus5To0:
      return "(-5,0]";
    case TemperatureClass::k0To5:
      return "(0,5]";
    case TemperatureClass::k5To15:
      return "(5,15]";
    case TemperatureClass::kAbove15:
      return ">15";
  }
  return "?";
}

WeatherModel::WeatherModel(uint64_t seed, int num_days) {
  Rng rng(seed);
  daily_mean_.reserve(static_cast<size_t>(num_days));
  slippery_.reserve(static_cast<size_t>(num_days));
  // The study starts on October 1st: day-of-year offset 273.
  constexpr int kEpochDayOfYear = 273;
  double noise = 0.0;
  for (int d = 0; d < num_days; ++d) {
    const int doy = (kEpochDayOfYear + d) % 365;
    // Oulu climatology: annual mean ~ +3 C, coldest late January
    // (doy ~ 25), amplitude ~ 14 C.
    const double seasonal =
        3.0 - 14.0 * std::cos(2.0 * M_PI * (doy - 25) / 365.0);
    noise = 0.75 * noise + rng.Gaussian(0.0, 2.8);
    daily_mean_.push_back(seasonal + noise);
    const bool freezing = daily_mean_.back() < 0.0;
    slippery_.push_back(freezing && rng.Bernoulli(0.55));
  }
}

double WeatherModel::TemperatureAt(double timestamp_s) const {
  if (daily_mean_.empty()) return 0.0;
  const int day = std::clamp(trace::DayOfStudy(timestamp_s), 0,
                             static_cast<int>(daily_mean_.size()) - 1);
  const double hour = trace::HourOfDay(timestamp_s);
  // Diurnal cycle: warmest ~15:00, amplitude 3 C.
  const double diurnal = 3.0 * std::cos(2.0 * M_PI * (hour - 15.0) / 24.0);
  return daily_mean_[static_cast<size_t>(day)] + diurnal;
}

TemperatureClass WeatherModel::ClassAt(double timestamp_s) const {
  return ClassifyTemperature(TemperatureAt(timestamp_s));
}

bool WeatherModel::SlipperyAt(double timestamp_s) const {
  if (slippery_.empty()) return false;
  const int day = std::clamp(trace::DayOfStudy(timestamp_s), 0,
                             static_cast<int>(slippery_.size()) - 1);
  return slippery_[static_cast<size_t>(day)];
}

}  // namespace synth
}  // namespace taxitrace
