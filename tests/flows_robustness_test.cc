// Tests for the flow/diagnostic utilities plus fuzz-style robustness
// checks: random garbage into every parser must yield a Status, never a
// crash or an invalid object.

#include <gtest/gtest.h>

#include "taxitrace/analysis/od_matrix.h"
#include "taxitrace/common/csv.h"
#include "taxitrace/common/random.h"
#include "taxitrace/mapmatch/match_report.h"
#include "taxitrace/roadnet/map_io.h"
#include "taxitrace/synth/fleet_simulator.h"
#include "taxitrace/trace/trace_io.h"
#include "taxitrace/trace/trip_stats.h"

namespace taxitrace {
namespace {

// --- OD matrix ---------------------------------------------------------------

trace::Trip TripBetween(const geo::LocalProjection& proj,
                        const geo::EnPoint& from, const geo::EnPoint& to,
                        double t0 = 0.0) {
  trace::Trip trip;
  for (int i = 0; i <= 4; ++i) {
    trace::RoutePoint p;
    p.point_id = i + 1;
    p.timestamp_s = t0 + 60.0 * i;
    const double t = i / 4.0;
    p.position = proj.Inverse(from + t * (to - from));
    trip.points.push_back(p);
  }
  return trip;
}

TEST(OdMatrixTest, CountsFlowsBetweenZones) {
  const geo::LocalProjection proj(geo::LatLon{65.0, 25.47});
  // Zones are 600 m: (100,100) is zone (0,0); (1500,100) is zone (2,0).
  const trace::Trip a = TripBetween(proj, {100, 100}, {1500, 100});
  const trace::Trip b = TripBetween(proj, {200, 150}, {1400, 50});
  const trace::Trip back = TripBetween(proj, {1500, 100}, {100, 100});
  const trace::Trip intra = TripBetween(proj, {100, 100}, {300, 100});
  const auto flows =
      analysis::BuildOdMatrix({&a, &b, &back, &intra}, proj);
  ASSERT_GE(flows.size(), 3u);
  // The (0,0)->(2,0) flow has two trips and sorts first.
  EXPECT_EQ(flows[0].trips, 2);
  EXPECT_EQ(flows[0].origin, (analysis::CellId{0, 0}));
  EXPECT_EQ(flows[0].destination, (analysis::CellId{2, 0}));
  EXPECT_NEAR(flows[0].mean_distance_km, 1.35, 0.15);
  EXPECT_NEAR(flows[0].mean_duration_min, 4.0, 1e-6);
  EXPECT_EQ(analysis::TotalFlows(flows), 4);
  EXPECT_NEAR(analysis::IntraZoneShare(flows), 0.25, 1e-9);
}

TEST(OdMatrixTest, IgnoresDegenerateTrips) {
  const geo::LocalProjection proj(geo::LatLon{65.0, 25.47});
  trace::Trip tiny;
  tiny.points.resize(1);
  EXPECT_TRUE(analysis::BuildOdMatrix({&tiny, nullptr}, proj).empty());
  EXPECT_DOUBLE_EQ(analysis::IntraZoneShare({}), 0.0);
}

// --- Trip stats --------------------------------------------------------------

TEST(TripStatsTest, Aggregates) {
  const geo::LocalProjection proj(geo::LatLon{65.0, 25.47});
  std::vector<trace::Trip> trips = {
      TripBetween(proj, {0, 0}, {1000, 0}),          // 1 km, 4 min
      TripBetween(proj, {0, 0}, {3000, 0}, 1000.0),  // 3 km, 4 min
  };
  for (auto& t : trips) {
    for (auto& p : t.points) p.fuel_delta_ml = 50.0;
  }
  const trace::TripCollectionStats stats =
      trace::ComputeTripStats(trips);
  EXPECT_EQ(stats.trips, 2);
  EXPECT_EQ(stats.points, 10);
  EXPECT_NEAR(stats.total_distance_km, 4.0, 0.01);
  EXPECT_NEAR(stats.mean_distance_km, 2.0, 0.01);
  EXPECT_NEAR(stats.max_distance_km, 3.0, 0.01);
  EXPECT_NEAR(stats.mean_duration_min, 4.0, 1e-6);
  EXPECT_NEAR(stats.total_fuel_l, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(stats.mean_points_per_trip, 5.0);
  const std::string text = trace::FormatTripStats(stats);
  EXPECT_NE(text.find("trips: 2"), std::string::npos);
}

TEST(TripStatsTest, EmptyCollection) {
  const trace::TripCollectionStats stats = trace::ComputeTripStats({});
  EXPECT_EQ(stats.trips, 0);
  EXPECT_DOUBLE_EQ(stats.mean_distance_km, 0.0);
}

// --- Match report --------------------------------------------------------------

TEST(MatchReportTest, Aggregates) {
  mapmatch::MatchedRoute a;
  a.points = {mapmatch::MatchedPoint{0, {}, 4.0},
              mapmatch::MatchedPoint{1, {}, 8.0}};
  a.points_skipped = 1;
  a.gaps_filled = 2;
  a.length_m = 2000.0;
  mapmatch::MatchedRoute b;
  b.points = {mapmatch::MatchedPoint{0, {}, 12.0}};
  b.length_m = 1000.0;

  mapmatch::MatchReport report;
  report.Add(a);
  report.Add(b);
  EXPECT_EQ(report.routes, 2);
  EXPECT_EQ(report.matched_points, 3);
  EXPECT_EQ(report.skipped_points, 1);
  EXPECT_NEAR(report.mean_snap_distance_m, 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.max_snap_distance_m, 12.0);
  EXPECT_NEAR(report.SkipRate(), 0.25, 1e-9);
  EXPECT_NEAR(report.GapsPerKm(), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(mapmatch::MatchReport{}.SkipRate(), 0.0);
  EXPECT_DOUBLE_EQ(mapmatch::MatchReport{}.GapsPerKm(), 0.0);
}

// --- Demand curve -----------------------------------------------------------------

TEST(TaxiDemandTest, WeekdayPeaksAndNightLull) {
  EXPECT_GT(synth::TaxiDemandWeight(8.0, false),
            synth::TaxiDemandWeight(12.0, false));
  EXPECT_GT(synth::TaxiDemandWeight(16.0, false),
            synth::TaxiDemandWeight(12.0, false));
  EXPECT_LT(synth::TaxiDemandWeight(3.0, false),
            synth::TaxiDemandWeight(12.0, false));
  // Weekend: the evening peak dominates the morning.
  EXPECT_GT(synth::TaxiDemandWeight(22.0, true),
            synth::TaxiDemandWeight(8.0, true));
  // Wrap-around hours behave.
  EXPECT_DOUBLE_EQ(synth::TaxiDemandWeight(25.0, false),
                   synth::TaxiDemandWeight(1.0, false));
  EXPECT_DOUBLE_EQ(synth::TaxiDemandWeight(-2.0, false),
                   synth::TaxiDemandWeight(22.0, false));
}

// --- Parser robustness (fuzz-style) ------------------------------------------------

std::string RandomGarbage(Rng* rng, size_t max_len) {
  const size_t len =
      static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(max_len)));
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Bias towards structural characters to hit parser states.
    const char structural[] = {',', '"', '\n', '\r', ':', '|', '.', '-'};
    if (rng->Bernoulli(0.4)) {
      out.push_back(structural[rng->UniformInt(0, 7)]);
    } else {
      out.push_back(static_cast<char>(rng->UniformInt(32, 126)));
    }
  }
  return out;
}

TEST(ParserRobustnessTest, CsvNeverCrashes) {
  Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string garbage = RandomGarbage(&rng, 300);
    const auto parsed = ParseCsv(garbage);
    if (parsed.ok()) {
      // Parsed rows must serialise and re-parse identically.
      const auto again = ParseCsv(WriteCsv(*parsed));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*again, *parsed);
    }
  }
}

TEST(ParserRobustnessTest, TripsFromCsvNeverCrashes) {
  Rng rng(103);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage =
        "trip_id,car_id,point_id,timestamp_s,lat,lon,speed_kmh,"
        "fuel_delta_ml\n" +
        RandomGarbage(&rng, 200);
    const auto parsed = trace::TripsFromCsv(garbage);
    if (parsed.ok()) {
      for (const trace::Trip& t : *parsed) {
        EXPECT_GE(t.points.size(), 1u);
      }
    }
  }
}

TEST(ParserRobustnessTest, ElementsFromCsvNeverCrashes) {
  Rng rng(107);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage =
        "id,name,functional_class,speed_limit_kmh,direction,geometry\n" +
        RandomGarbage(&rng, 200);
    const auto parsed = roadnet::ElementsFromCsv(garbage);
    if (parsed.ok()) {
      for (const roadnet::TrafficElement& el : *parsed) {
        EXPECT_GE(el.geometry.size(), 1u);
      }
    }
  }
}

TEST(ParserRobustnessTest, FeaturesFromCsvNeverCrashes) {
  Rng rng(109);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string garbage =
        "type,x,y\n" + RandomGarbage(&rng, 150);
    const auto parsed = roadnet::FeaturesFromCsv(garbage);
    (void)parsed;  // must simply not crash / UB
  }
}

}  // namespace
}  // namespace taxitrace
