file(REMOVE_RECURSE
  "libtaxitrace_coach.a"
)
