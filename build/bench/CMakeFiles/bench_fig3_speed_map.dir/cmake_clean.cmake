file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_speed_map.dir/bench_fig3_speed_map.cc.o"
  "CMakeFiles/bench_fig3_speed_map.dir/bench_fig3_speed_map.cc.o.d"
  "bench_fig3_speed_map"
  "bench_fig3_speed_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_speed_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
