file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_core.dir/taxitrace/core/figures.cc.o"
  "CMakeFiles/taxitrace_core.dir/taxitrace/core/figures.cc.o.d"
  "CMakeFiles/taxitrace_core.dir/taxitrace/core/pipeline.cc.o"
  "CMakeFiles/taxitrace_core.dir/taxitrace/core/pipeline.cc.o.d"
  "CMakeFiles/taxitrace_core.dir/taxitrace/core/reports.cc.o"
  "CMakeFiles/taxitrace_core.dir/taxitrace/core/reports.cc.o.d"
  "CMakeFiles/taxitrace_core.dir/taxitrace/core/scenarios.cc.o"
  "CMakeFiles/taxitrace_core.dir/taxitrace/core/scenarios.cc.o.d"
  "CMakeFiles/taxitrace_core.dir/taxitrace/core/study_config.cc.o"
  "CMakeFiles/taxitrace_core.dir/taxitrace/core/study_config.cc.o.d"
  "libtaxitrace_core.a"
  "libtaxitrace_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
