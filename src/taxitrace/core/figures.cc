#include "taxitrace/core/figures.h"

#include <algorithm>
#include <fstream>

#include "taxitrace/analysis/grid.h"
#include "taxitrace/analysis/temporal.h"
#include "taxitrace/common/strings.h"
#include "taxitrace/model/qq.h"

namespace taxitrace {
namespace core {

std::string SpeedPointsCsv(const StudyResults& results, int car_id) {
  std::string out =
      "trip_id,car,direction,season,timestamp_s,lat,lon,speed_kmh\n";
  for (const MatchedTransition& mt : results.transitions) {
    if (car_id != 0 && mt.record.car_id != car_id) continue;
    for (const trace::RoutePoint& p : mt.transition.segment.points) {
      out += StrFormat(
          "%lld,%d,%s,%s,%.1f,%.6f,%.6f,%.2f\n",
          static_cast<long long>(mt.record.trip_id), mt.record.car_id,
          mt.record.direction.c_str(),
          std::string(analysis::SeasonName(
                          analysis::SeasonOfTimestamp(p.timestamp_s)))
              .c_str(),
          p.timestamp_s, p.position.lat_deg, p.position.lon_deg,
          p.speed_kmh);
    }
  }
  return out;
}

std::string CellMapGeoJson(const StudyResults& results,
                           const std::string& direction) {
  const std::vector<analysis::CellRecord>* cells = &results.cells;
  if (!direction.empty()) {
    const auto it = results.cells_by_direction.find(direction);
    if (it == results.cells_by_direction.end()) {
      static const std::vector<analysis::CellRecord> kEmpty;
      cells = &kEmpty;
    } else {
      cells = &it->second;
    }
  }
  // Cell -> model group index, for joining BLUPs.
  std::unordered_map<analysis::CellId, size_t, analysis::CellIdHash>
      group_of;
  for (size_t g = 0; g < results.model_cells.size(); ++g) {
    group_of[results.model_cells[g]] = g;
  }

  const geo::LocalProjection& proj = results.map.network.projection();
  const analysis::Grid grid(results.grid_cell_m);
  std::string out =
      "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first = true;
  for (const analysis::CellRecord& cell : *cells) {
    const geo::Bbox b = grid.CellBounds(cell.cell);
    const geo::LatLon sw = proj.Inverse(geo::EnPoint{b.min_x, b.min_y});
    const geo::LatLon ne = proj.Inverse(geo::EnPoint{b.max_x, b.max_y});
    double blup = 0.0;
    bool has_blup = false;
    const auto git = group_of.find(cell.cell);
    if (git != group_of.end() &&
        git->second < results.cell_model.blup.size()) {
      blup = results.cell_model.blup[git->second];
      has_blup = true;
    }
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Polygon\","
        "\"coordinates\":[[[%.6f,%.6f],[%.6f,%.6f],[%.6f,%.6f],"
        "[%.6f,%.6f],[%.6f,%.6f]]]},\"properties\":{"
        "\"points\":%lld,\"mean_speed_kmh\":%.2f,\"speed_var\":%.2f,"
        "\"traffic_lights\":%d,\"bus_stops\":%d,"
        "\"pedestrian_crossings\":%d,\"junctions\":%d,"
        "\"blup_kmh\":%s}}",
        sw.lon_deg, sw.lat_deg, ne.lon_deg, sw.lat_deg, ne.lon_deg,
        ne.lat_deg, sw.lon_deg, ne.lat_deg, sw.lon_deg, sw.lat_deg,
        static_cast<long long>(cell.num_points), cell.mean_speed_kmh,
        cell.speed_variance, cell.features.traffic_lights,
        cell.features.bus_stops, cell.features.pedestrian_crossings,
        cell.features.junctions,
        has_blup ? StrFormat("%.3f", blup).c_str() : "null");
  }
  out += "]}";
  return out;
}

std::string QqPlotCsv(const StudyResults& results) {
  std::vector<double> intercepts;
  for (size_t g = 0; g < results.cell_model.blup.size(); ++g) {
    if (g < results.cell_model.group_n.size() &&
        results.cell_model.group_n[g] > 0) {
      intercepts.push_back(results.cell_model.blup[g]);
    }
  }
  const std::vector<model::QqPoint> series =
      model::NormalQqSeries(std::move(intercepts));
  std::string out = "theoretical_quantile,sample_quantile_kmh\n";
  for (const model::QqPoint& p : series) {
    out += StrFormat("%.5f,%.5f\n", p.theoretical, p.sample);
  }
  return out;
}

std::string InterceptsCsv(const StudyResults& results) {
  struct Row {
    analysis::CellId cell;
    double blup;
    double se;
    int64_t n;
  };
  std::vector<Row> rows;
  for (size_t g = 0; g < results.cell_model.blup.size(); ++g) {
    if (g >= results.cell_model.group_n.size() ||
        results.cell_model.group_n[g] == 0) {
      continue;
    }
    rows.push_back(Row{results.model_cells[g], results.cell_model.blup[g],
                       results.cell_model.blup_se[g],
                       results.cell_model.group_n[g]});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.blup < b.blup; });
  std::string out = "rank,cell_x,cell_y,n,blup_kmh,lo95,hi95\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    out += StrFormat("%zu,%d,%d,%lld,%.3f,%.3f,%.3f\n", i + 1,
                     rows[i].cell.cx, rows[i].cell.cy,
                     static_cast<long long>(rows[i].n), rows[i].blup,
                     rows[i].blup - 1.96 * rows[i].se,
                     rows[i].blup + 1.96 * rows[i].se);
  }
  return out;
}

std::string WeatherLowSpeedCsv(const StudyResults& results,
                               int light_boundary) {
  // Mean low-speed share per (temperature class, lights-few/lights-many).
  double sum[synth::kNumTemperatureClasses][2] = {};
  int64_t n[synth::kNumTemperatureClasses][2] = {};
  for (const MatchedTransition& mt : results.transitions) {
    const int cls = static_cast<int>(
        results.weather.ClassAt(mt.record.start_time_s));
    const int many =
        mt.record.attributes.traffic_lights >= light_boundary ? 1 : 0;
    sum[cls][many] += mt.record.low_speed_share;
    ++n[cls][many];
  }
  std::string out =
      "temperature_class,lights,transitions,mean_low_speed_pct\n";
  for (int c = 0; c < synth::kNumTemperatureClasses; ++c) {
    for (int m = 0; m < 2; ++m) {
      const double mean =
          n[c][m] > 0 ? 100.0 * sum[c][m] / static_cast<double>(n[c][m])
                      : 0.0;
      out += StrFormat(
          "%s,%s,%lld,%.2f\n",
          std::string(synth::TemperatureClassLabel(
                          static_cast<synth::TemperatureClass>(c)))
              .c_str(),
          m == 0 ? StrFormat("<%d", light_boundary).c_str()
                 : StrFormat(">=%d", light_boundary).c_str(),
          static_cast<long long>(n[c][m]), mean);
    }
  }
  return out;
}

std::string HourlySpeedCsv(const StudyResults& results) {
  std::vector<const trace::Trip*> trips;
  trips.reserve(results.transitions.size());
  for (const MatchedTransition& mt : results.transitions) {
    trips.push_back(&mt.transition.segment);
  }
  const std::vector<analysis::HourlySpeed> series =
      analysis::HourlySpeedSeries(trips);
  std::string out = "hour,n,mean_kmh\n";
  for (const analysis::HourlySpeed& bucket : series) {
    out += StrFormat("%d,%lld,%.2f\n", bucket.hour,
                     static_cast<long long>(bucket.n), bucket.mean_kmh);
  }
  return out;
}

namespace {

// Appends one GeoJSON Polygon feature from a local-frame ring.
void AppendPolygonFeature(std::string* out, bool* first,
                          const std::vector<geo::EnPoint>& ring,
                          const geo::LocalProjection& proj,
                          const std::string& properties) {
  if (ring.size() < 3) return;
  if (!*first) *out += ",";
  *first = false;
  *out +=
      "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Polygon\","
      "\"coordinates\":[[";
  for (size_t i = 0; i <= ring.size(); ++i) {
    if (i > 0) *out += ",";
    const geo::LatLon ll = proj.Inverse(ring[i % ring.size()]);
    *out += StrFormat("[%.6f,%.6f]", ll.lon_deg, ll.lat_deg);
  }
  *out += "]]},\"properties\":{" + properties + "}}";
}

}  // namespace

std::string GatesGeoJson(const StudyResults& results,
                         double half_width_m) {
  const geo::LocalProjection& proj = results.map.network.projection();
  std::string out = "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first = true;
  for (const synth::GateRoad& gate : results.map.gates) {
    // Centre line.
    if (!first) out += ",";
    first = false;
    out +=
        "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\","
        "\"coordinates\":[";
    for (size_t i = 0; i < gate.geometry.points().size(); ++i) {
      if (i > 0) out += ",";
      const geo::LatLon ll = proj.Inverse(gate.geometry.points()[i]);
      out += StrFormat("[%.6f,%.6f]", ll.lon_deg, ll.lat_deg);
    }
    out += StrFormat(
        "]},\"properties\":{\"gate\":\"%s\",\"kind\":\"centre_line\"}}",
        gate.name.c_str());
    // Thick geometry.
    const geo::Polygon thick =
        geo::BufferPolyline(gate.geometry, half_width_m);
    AppendPolygonFeature(
        &out, &first, thick.ring(), proj,
        StrFormat("\"gate\":\"%s\",\"kind\":\"thick_geometry\","
                  "\"half_width_m\":%.0f",
                  gate.name.c_str(), half_width_m));
  }
  AppendPolygonFeature(&out, &first, results.map.central_area.ring(),
                       proj, "\"kind\":\"central_area\"");
  out += "]}";
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace core
}  // namespace taxitrace
