// Table 1: junction pairs of the prepared road-network graph — map
// preparation merges traffic-element chains into single edges between
// junctions (Section IV-A).

#include "bench_util.h"
#include "taxitrace/roadnet/map_preparation.h"
#include "taxitrace/synth/city_map_generator.h"

namespace taxitrace {
namespace {

void PrintTable1() {
  const core::StudyResults& r = benchutil::FullResults();
  std::printf("%s\n", core::FormatTable1(r.map.network, 10).c_str());
  const roadnet::MapPreparationStats& stats = r.map.preparation_stats;
  std::printf(
      "Map preparation: %d elements -> %d edges (%d merged from multiple "
      "elements), %d junctions, %d terminals, %d intermediate points\n",
      stats.num_elements, stats.num_edges, stats.num_multi_element_edges,
      stats.num_junctions, stats.num_terminals,
      stats.num_intermediate_points);
  std::printf(
      "Paper shape: edges list their contributing traffic elements "
      "(e.g. {138854,138855,122734}) between two junction points.\n\n");
}

void BM_GenerateCityMap(benchmark::State& state) {
  for (auto _ : state) {
    synth::CityMapOptions options;
    options.seed = 42;
    auto map = synth::GenerateCityMap(options);
    benchmark::DoNotOptimize(map);
  }
}
BENCHMARK(BM_GenerateCityMap)->Unit(benchmark::kMillisecond);

void BM_JunctionPairTable(benchmark::State& state) {
  const core::StudyResults& r = benchutil::FullResults();
  for (auto _ : state) {
    auto rows = roadnet::JunctionPairTable(r.map.network);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_JunctionPairTable)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintTable1)
