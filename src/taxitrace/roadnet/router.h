// Dijkstra shortest-path routing over the prepared road network — the
// stand-in for pgRouting's Dijkstra used by the paper for filling
// map-matching gaps when consecutive GPS points are far apart.

#ifndef TAXITRACE_ROADNET_ROUTER_H_
#define TAXITRACE_ROADNET_ROUTER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "taxitrace/common/result.h"
#include "taxitrace/roadnet/road_network.h"

namespace taxitrace {
namespace roadnet {

/// Dijkstra work accounting, readable via Router::stats(). Each search
/// does deterministic work, so the totals are identical at any thread
/// count.
struct RouterStats {
  int64_t searches = 0;          ///< Dijkstra runs.
  int64_t heap_pops = 0;         ///< Priority-queue pops, stale included.
  int64_t settled_vertices = 0;  ///< Vertices finalised (non-stale pops).
};

/// A traversal of one edge within a path.
struct PathStep {
  EdgeId edge = kInvalidEdge;
  bool forward = true;  ///< Traversed from -> to?
};

/// A shortest path through the network.
struct Path {
  std::vector<PathStep> steps;  ///< Edges in traversal order.
  double length_m = 0.0;
  geo::Polyline geometry;  ///< Concatenated driving geometry.
};

/// Length-minimising Dijkstra router honouring one-way constraints. Holds
/// a pointer to the network, which must outlive it.
class Router {
 public:
  explicit Router(const RoadNetwork* network);

  /// Shortest drivable path between two vertices. NotFound when the
  /// destination is unreachable. `edge_cost_multiplier`, when given, must
  /// have one entry per edge and scales each edge's length for route
  /// choice (it models driver preference noise); the returned length_m is
  /// always the real geometric length.
  Result<Path> ShortestPath(
      VertexId from, VertexId to,
      const std::vector<double>* edge_cost_multiplier = nullptr) const;

  /// Shortest drivable path between two positions on edges (as produced
  /// by map matching). Includes the partial first and last edges in the
  /// returned geometry/length. NotFound when unreachable.
  Result<Path> ShortestPathBetween(const EdgePosition& from,
                                   const EdgePosition& to) const;

  /// Network distance (metres) between two positions; infinity when
  /// unreachable. Cheaper than ShortestPathBetween when only the distance
  /// is needed.
  double NetworkDistance(const EdgePosition& from,
                         const EdgePosition& to) const;

  [[nodiscard]] const RoadNetwork& network() const { return *network_; }

  /// Snapshot of the search counters accumulated so far.
  [[nodiscard]] RouterStats stats() const;

 private:
  struct VertexSearchResult {
    std::vector<double> dist;
    std::vector<EdgeId> prev_edge;       // edge used to reach the vertex
    std::vector<VertexId> prev_vertex;
  };

  /// Runs Dijkstra from the given seed vertices (with initial costs).
  VertexSearchResult Search(
      const std::vector<std::pair<VertexId, double>>& seeds,
      VertexId stop_at_both_a = kInvalidVertex,
      VertexId stop_at_both_b = kInvalidVertex,
      const std::vector<double>* edge_cost_multiplier = nullptr) const;

  // Search counters behind a shared_ptr so the router stays copyable;
  // each Search() batches its local tallies into three relaxed adds.
  struct AtomicStats {
    std::atomic<int64_t> searches{0};
    std::atomic<int64_t> heap_pops{0};
    std::atomic<int64_t> settled_vertices{0};
  };

  const RoadNetwork* network_;
  std::shared_ptr<AtomicStats> search_stats_;
};

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_ROUTER_H_
