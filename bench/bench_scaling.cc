// Performance scaling: how the pipeline's cost grows with study size,
// network extent and model size — the systems-side companion to the
// reproduction benches.

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_util.h"
#include "taxitrace/mapmatch/gap_filler.h"
#include "taxitrace/model/one_way_reml.h"
#include "taxitrace/obs/observability.h"
#include "taxitrace/roadnet/router.h"

namespace taxitrace {
namespace {

void PrintStageTimings(const char* label, const core::StudyResults& r) {
  std::printf("PIPELINE STAGE TIMINGS (%s):\n", label);
  std::printf("  map generation       %8.1f ms\n",
              r.timings.map_generation_ms);
  std::printf("  fleet simulation     %8.1f ms  (%d threads)\n",
              r.timings.simulation_ms, r.timings.simulation_threads);
  std::printf("  cleaning             %8.1f ms  (%d threads)\n",
              r.timings.cleaning_ms, r.timings.cleaning_threads);
  std::printf("  selection + matching %8.1f ms  (%d threads)\n",
              r.timings.selection_matching_ms,
              r.timings.selection_matching_threads);
  std::printf("  grid + mixed model   %8.1f ms\n", r.timings.analysis_ms);
  std::printf("  total                %8.1f ms for %lld raw points\n\n",
              r.timings.TotalMs(),
              static_cast<long long>(
                  r.cleaning_report.raw_points));
}

std::string RunJson(const core::StudyResults& r, int configured_threads) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "    {\"threads\": %d, \"workers\": %d,\n"
      "     \"map_generation_ms\": %.2f, \"simulation_ms\": %.2f,\n"
      "     \"cleaning_ms\": %.2f, \"selection_matching_ms\": %.2f,\n"
      "     \"analysis_ms\": %.2f, \"total_ms\": %.2f}",
      configured_threads, r.timings.simulation_threads,
      r.timings.map_generation_ms, r.timings.simulation_ms,
      r.timings.cleaning_ms, r.timings.selection_matching_ms,
      r.timings.analysis_ms, r.timings.TotalMs());
  return buf;
}

// The stage timings the routing overhaul started from, copied verbatim
// from the schema/1 BENCH_pipeline.json committed before it (hash-map
// spatial index, O(|V|) per-search resets, no route cache). Kept inline
// so the /2 file always carries its own before/after comparison.
constexpr const char* kBaselineRunsJson =
    "    {\"threads\": 0, \"workers\": 0,\n"
    "     \"map_generation_ms\": 5.47, \"simulation_ms\": 3654.88,\n"
    "     \"cleaning_ms\": 1175.51, \"selection_matching_ms\": 854.72,\n"
    "     \"analysis_ms\": 4.24, \"total_ms\": 5694.80},\n"
    "    {\"threads\": -1, \"workers\": 1,\n"
    "     \"map_generation_ms\": 5.75, \"simulation_ms\": 3678.48,\n"
    "     \"cleaning_ms\": 1168.42, \"selection_matching_ms\": 718.62,\n"
    "     \"analysis_ms\": 3.58, \"total_ms\": 5574.85}";
constexpr double kBaselineSerialMatchingMs = 854.72;

double NowMs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1e6;
}

// Routing microbench of record: ShortestPath over sampled OD vertex
// pairs, then the same pairs as edge positions through GapFiller with a
// cold and then a warm route cache, so search cost and cache payoff are
// both visible.
void PrintRoutingBench() {
  synth::CityMapOptions map_options;
  const synth::CityMap map = synth::GenerateCityMap(map_options).value();
  const roadnet::Router router(&map.network);
  const mapmatch::GapFiller filler(&map.network);

  constexpr int kPairs = 256;
  const auto num_vertices =
      static_cast<int64_t>(map.network.vertices().size());
  const auto num_edges = static_cast<int64_t>(map.network.edges().size());
  Rng rng(42);
  std::vector<std::pair<roadnet::VertexId, roadnet::VertexId>> od;
  std::vector<std::pair<roadnet::EdgePosition, roadnet::EdgePosition>> od_pos;
  for (int i = 0; i < kPairs; ++i) {
    od.emplace_back(
        static_cast<roadnet::VertexId>(rng.UniformInt(0, num_vertices - 1)),
        static_cast<roadnet::VertexId>(rng.UniformInt(0, num_vertices - 1)));
    const auto ea =
        static_cast<roadnet::EdgeId>(rng.UniformInt(0, num_edges - 1));
    const auto eb =
        static_cast<roadnet::EdgeId>(rng.UniformInt(0, num_edges - 1));
    od_pos.emplace_back(
        roadnet::EdgePosition{ea, 0.5 * map.network.edge(ea).length_m},
        roadnet::EdgePosition{eb, 0.5 * map.network.edge(eb).length_m});
  }

  int found = 0;
  const double sp_t0 = NowMs();
  for (const auto& [a, b] : od) {
    if (router.ShortestPath(a, b).ok()) ++found;
  }
  const double sp_ms = NowMs() - sp_t0;

  mapmatch::RouteCache cache(kPairs);
  int connected = 0;
  const double cold_t0 = NowMs();
  for (const auto& [a, b] : od_pos) {
    if (filler.Connect(a, b, &cache).ok()) ++connected;
  }
  const double cold_ms = NowMs() - cold_t0;
  const mapmatch::RouteCache::Stats cold_stats = cache.stats();

  const double warm_t0 = NowMs();
  for (const auto& [a, b] : od_pos) {
    (void)filler.Connect(a, b, &cache);
  }
  const double warm_ms = NowMs() - warm_t0;
  const mapmatch::RouteCache::Stats warm_stats = cache.stats();

  const roadnet::RouterStats rt = router.stats();
  std::string json;
  char line[512];
  json += "{\n";
  json += "  \"schema\": \"taxitrace-bench-routing/1\",\n";
  std::snprintf(line, sizeof line,
                "  \"network\": {\"vertices\": %lld, \"edges\": %lld},\n",
                static_cast<long long>(num_vertices),
                static_cast<long long>(num_edges));
  json += line;
  std::snprintf(line, sizeof line, "  \"od_pairs\": %d,\n", kPairs);
  json += line;
  std::snprintf(line, sizeof line,
                "  \"shortest_path\": {\"total_ms\": %.2f, "
                "\"per_query_us\": %.1f, \"found\": %d,\n"
                "    \"heap_pops\": %lld, \"settled_vertices\": %lld, "
                "\"goal_directed_searches\": %lld},\n",
                sp_ms, sp_ms * 1000.0 / kPairs, found,
                static_cast<long long>(rt.heap_pops),
                static_cast<long long>(rt.settled_vertices),
                static_cast<long long>(rt.goal_directed_searches));
  json += line;
  std::snprintf(line, sizeof line,
                "  \"connect_cold_cache\": {\"total_ms\": %.2f, "
                "\"per_query_us\": %.1f, \"connected\": %d, "
                "\"hits\": %lld, \"misses\": %lld},\n",
                cold_ms, cold_ms * 1000.0 / kPairs, connected,
                static_cast<long long>(cold_stats.hits),
                static_cast<long long>(cold_stats.misses));
  json += line;
  std::snprintf(line, sizeof line,
                "  \"connect_warm_cache\": {\"total_ms\": %.2f, "
                "\"per_query_us\": %.1f, "
                "\"hits\": %lld, \"misses\": %lld},\n",
                warm_ms, warm_ms * 1000.0 / kPairs,
                static_cast<long long>(warm_stats.hits - cold_stats.hits),
                static_cast<long long>(warm_stats.misses - cold_stats.misses));
  json += line;
  std::snprintf(line, sizeof line, "  \"warm_speedup\": %.2f\n",
                warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);
  json += line;
  json += "}\n";
  benchutil::EmitFigureFile("BENCH_routing.json", json);
  std::printf(
      "  routing microbench: %d OD pairs, ShortestPath %.1f us/query, "
      "Connect cold %.1f us / warm %.1f us per query\n\n",
      kPairs, sp_ms * 1000.0 / kPairs, cold_ms * 1000.0 / kPairs,
      warm_ms * 1000.0 / kPairs);
}

// The perf trajectory of record: serial vs parallel full-study stage
// timings, machine-readable so successive PRs can be compared.
void PrintScaling() {
  // CI smoke mode: swap the two multi-second full-study runs for one
  // small study so the bench-smoke step stays cheap. The routing
  // microbench still runs in full and emits BENCH_routing.json; the
  // pipeline JSON of record is only rewritten by full runs.
  const char* smoke = std::getenv("TAXITRACE_BENCH_SMOKE");
  if (smoke != nullptr && smoke[0] != '\0' && smoke[0] != '0') {
    PrintStageTimings("small study, bench smoke", benchutil::SmallResults());
    PrintRoutingBench();
    return;
  }

  core::StudyConfig serial_config = core::StudyConfig::FullStudy();
  serial_config.num_threads = 0;
  const core::StudyResults serial =
      benchutil::RunStudyOrExit(serial_config, "serial full study");
  PrintStageTimings("full 7-car, 365-day study, serial", serial);

  core::StudyConfig parallel_config = core::StudyConfig::FullStudy();
  parallel_config.num_threads = -1;  // TAXITRACE_THREADS / all hardware
  const core::StudyResults parallel =
      benchutil::RunStudyOrExit(parallel_config, "parallel full study");
  PrintStageTimings("full 7-car, 365-day study, parallel", parallel);

  const double speedup =
      parallel.timings.TotalMs() > 0.0
          ? serial.timings.TotalMs() / parallel.timings.TotalMs()
          : 0.0;
  std::string json;
  json += "{\n";
  json += "  \"schema\": \"taxitrace-bench-pipeline/2\",\n";
  json += "  \"study\": {\"cars\": 7, \"days\": 365},\n";
  char line[256];
  std::snprintf(
      line, sizeof line, "  \"hardware_threads\": %u,\n",
      // tt-lint: allow(raw-thread): thread-count probe for the report header
      std::thread::hardware_concurrency());
  json += line;
  std::snprintf(line, sizeof line, "  \"raw_points\": %lld,\n",
                static_cast<long long>(serial.cleaning_report.raw_points));
  json += line;
  json += "  \"baseline\": {\n";
  json += "    \"note\": \"schema/1 numbers from before the routing & "
          "matching overhaul\",\n";
  json += "    \"runs\": [\n  ";
  json += kBaselineRunsJson;
  json += "\n    ]\n  },\n";
  json += "  \"runs\": [\n";
  json += RunJson(serial, 0) + ",\n";
  json += RunJson(parallel, -1) + "\n";
  json += "  ],\n";
  std::snprintf(line, sizeof line,
                "  \"parallel_speedup_total\": %.3f,\n", speedup);
  json += line;
  const double matching_speedup =
      serial.timings.selection_matching_ms > 0.0
          ? kBaselineSerialMatchingMs / serial.timings.selection_matching_ms
          : 0.0;
  std::snprintf(line, sizeof line,
                "  \"serial_matching_speedup_vs_baseline\": %.2f\n",
                matching_speedup);
  json += line;
  json += "}\n";
  benchutil::EmitFigureFile("BENCH_pipeline.json", json);
  std::printf("  parallel speedup (total wall-clock): %.2fx on %d workers\n",
              speedup, parallel.timings.simulation_threads);
  std::printf("  serial selection+matching vs pre-overhaul baseline: "
              "%.2fx (%.1f ms -> %.1f ms)\n\n",
              matching_speedup, kBaselineSerialMatchingMs,
              serial.timings.selection_matching_ms);

  PrintRoutingBench();

  // Metrics snapshot from a separate observability-enabled small study.
  // The two timed full-study runs above keep observability off, so the
  // wall times of record always benchmark the disabled (no-op) path.
  core::StudyConfig metrics_config = core::StudyConfig::SmallStudy();
  metrics_config.observability.enabled = true;
  const core::StudyResults observed =
      benchutil::RunStudyOrExit(metrics_config, "metrics small study");
  benchutil::EmitFigureFile("BENCH_metrics.json",
                            obs::SnapshotJson(observed.observability));
}

void BM_PipelineByThreads(benchmark::State& state) {
  core::StudyConfig config = core::StudyConfig::SmallStudy();
  config.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::Pipeline pipeline(config);
    auto results = pipeline.Run();
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_PipelineByThreads)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineByDays(benchmark::State& state) {
  for (auto _ : state) {
    core::StudyConfig config = core::StudyConfig::SmallStudy();
    config.fleet.num_days = static_cast<int>(state.range(0));
    core::Pipeline pipeline(config);
    auto results = pipeline.Run();
    benchmark::DoNotOptimize(results);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PipelineByDays)
    ->Arg(7)
    ->Arg(14)
    ->Arg(28)
    ->Arg(56)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_DijkstraByNetworkExtent(benchmark::State& state) {
  synth::CityMapOptions options;
  options.extent_m = static_cast<double>(state.range(0));
  options.core_extent_m = options.extent_m * 0.8;
  const synth::CityMap map = synth::GenerateCityMap(options).value();
  const roadnet::Router router(&map.network);
  Rng rng(5);
  for (auto _ : state) {
    const auto a = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(map.network.vertices().size()) - 1));
    const auto b = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(map.network.vertices().size()) - 1));
    auto path = router.ShortestPath(a, b);
    benchmark::DoNotOptimize(path);
  }
  state.counters["edges"] =
      static_cast<double>(map.network.edges().size());
}
BENCHMARK(BM_DijkstraByNetworkExtent)
    ->Arg(600)
    ->Arg(1000)
    ->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

void BM_RemlByObservations(benchmark::State& state) {
  Rng rng(7);
  model::OneWayReml reml;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    reml.Add(static_cast<size_t>(i % 80), rng.Gaussian(20.0, 5.0));
  }
  for (auto _ : state) {
    auto fit = reml.Fit();
    benchmark::DoNotOptimize(fit);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RemlByObservations)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_SpatialIndexBuild(benchmark::State& state) {
  const core::StudyResults& r = benchutil::SmallResults();
  for (auto _ : state) {
    roadnet::SpatialIndex index(&r.map.network,
                                static_cast<double>(state.range(0)));
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_SpatialIndexBuild)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintScaling)
