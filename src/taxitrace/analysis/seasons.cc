#include "taxitrace/analysis/seasons.h"

#include "taxitrace/trace/time_util.h"

namespace taxitrace {
namespace analysis {

Season SeasonOfMonth(int month) {
  switch (month) {
    case 12:
    case 1:
    case 2:
      return Season::kWinter;
    case 3:
    case 4:
    case 5:
      return Season::kSpring;
    case 6:
    case 7:
    case 8:
      return Season::kSummer;
    default:
      return Season::kAutumn;
  }
}

Season SeasonOfTimestamp(double timestamp_s) {
  return SeasonOfMonth(trace::MonthOfTimestamp(timestamp_s));
}

std::string_view SeasonName(Season season) {
  switch (season) {
    case Season::kWinter:
      return "winter";
    case Season::kSpring:
      return "spring";
    case Season::kSummer:
      return "summer";
    case Season::kAutumn:
      return "autumn";
  }
  return "?";
}

}  // namespace analysis
}  // namespace taxitrace
