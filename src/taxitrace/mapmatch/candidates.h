// Candidate generation and scoring for map matching, following the
// position and orientation score shapes of Brakatsoulas et al. (VLDB'05).

#ifndef TAXITRACE_MAPMATCH_CANDIDATES_H_
#define TAXITRACE_MAPMATCH_CANDIDATES_H_

#include <vector>

#include "taxitrace/roadnet/spatial_index.h"

namespace taxitrace {
namespace mapmatch {

/// Scoring parameters. Defaults follow the VLDB'05 incremental matcher.
struct ScoreOptions {
  /// Candidate search radius around a GPS fix, metres.
  double search_radius_m = 55.0;
  /// Distance score: mu_d - a * d^n.
  double distance_mu = 10.0;
  double distance_a = 0.17;
  double distance_exp = 1.4;
  /// Orientation score: mu_a * cos(angle).
  double heading_mu = 10.0;
};

/// One scored candidate for a GPS point.
struct MatchCandidate {
  roadnet::EdgeId edge = roadnet::kInvalidEdge;
  geo::PolylineProjection projection;
  double distance_score = 0.0;
  double heading_score = 0.0;

  [[nodiscard]] double TotalScore() const {
    return distance_score + heading_score;
  }
};

/// Distance score mu_d - a * d^n (may go negative for far candidates).
double DistanceScore(double distance_m, const ScoreOptions& options);

/// Orientation score mu_a * cos(angle between the movement heading and
/// the edge direction). For two-way edges the better of the two edge
/// directions is used; for one-way edges only the drivable direction.
/// `has_heading` disables the term (returns 0) for stationary points.
double HeadingScore(double movement_heading_rad, bool has_heading,
                    const roadnet::Edge& edge, size_t segment_index,
                    const ScoreOptions& options);

/// Finds and scores candidates for one point. Sorted by descending total
/// score.
std::vector<MatchCandidate> FindCandidates(
    const roadnet::SpatialIndex& index, const geo::EnPoint& point,
    double movement_heading_rad, bool has_heading,
    const ScoreOptions& options);

}  // namespace mapmatch
}  // namespace taxitrace

#endif  // TAXITRACE_MAPMATCH_CANDIDATES_H_
