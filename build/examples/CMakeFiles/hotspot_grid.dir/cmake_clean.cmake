file(REMOVE_RECURSE
  "CMakeFiles/hotspot_grid.dir/hotspot_grid.cc.o"
  "CMakeFiles/hotspot_grid.dir/hotspot_grid.cc.o.d"
  "hotspot_grid"
  "hotspot_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
