// Convex hull (Andrew's monotone chain), used to outline detected
// regions (e.g. the crowd-candidate cells of the hotspot detector).

#ifndef TAXITRACE_GEO_CONVEX_HULL_H_
#define TAXITRACE_GEO_CONVEX_HULL_H_

#include <vector>

#include "taxitrace/geo/polygon.h"

namespace taxitrace {
namespace geo {

/// Convex hull of a point set, counterclockwise, without a repeated
/// closing vertex. Fewer than 3 distinct points yield an empty polygon.
Polygon ConvexHull(std::vector<EnPoint> points);

}  // namespace geo
}  // namespace taxitrace

#endif  // TAXITRACE_GEO_CONVEX_HULL_H_
