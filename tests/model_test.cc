#include <gtest/gtest.h>

#include <cmath>

#include "taxitrace/common/random.h"
#include "taxitrace/model/cholesky.h"
#include "taxitrace/model/matrix.h"
#include "taxitrace/model/mixed_model.h"
#include "taxitrace/model/ols.h"
#include "taxitrace/model/one_way_reml.h"
#include "taxitrace/model/qq.h"

namespace taxitrace {
namespace model {
namespace {

// --- Matrix -----------------------------------------------------------------

TEST(MatrixTest, MultiplyKnown) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7;
  b(1, 0) = 9;
  b(2, 0) = 11;
  b(0, 1) = 8;
  b(1, 1) = 10;
  b(2, 1) = 12;
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, IdentityAndTranspose) {
  const Matrix id = Matrix::Identity(3);
  Matrix a(3, 3);
  a(0, 1) = 5;
  a(2, 0) = -2;
  EXPECT_DOUBLE_EQ(a.Multiply(id).MaxAbsDiff(a), 0.0);
  const Matrix at = a.Transposed();
  EXPECT_DOUBLE_EQ(at(1, 0), 5);
  EXPECT_DOUBLE_EQ(at(0, 2), -2);
}

TEST(MatrixTest, MultiplyVectorAndScale) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(1, 1) = 3;
  const Vector v = a.MultiplyVector({1, 2});
  EXPECT_DOUBLE_EQ(v[0], 2);
  EXPECT_DOUBLE_EQ(v[1], 6);
  EXPECT_DOUBLE_EQ(a.Scaled(2.0)(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.Plus(a)(1, 1), 6.0);
}

TEST(MatrixTest, OuterProductAndDot) {
  Matrix a(2, 2);
  AddOuterProduct(&a, {1, 2}, 2.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 2);
  EXPECT_DOUBLE_EQ(a(0, 1), 4);
  EXPECT_DOUBLE_EQ(a(1, 1), 8);
  EXPECT_DOUBLE_EQ(DotProduct({1, 2, 3}, {4, 5, 6}), 32.0);
}

// --- Cholesky ----------------------------------------------------------------

Matrix Spd3() {
  // A known SPD matrix.
  Matrix a(3, 3);
  const double vals[3][3] = {{4, 12, -16}, {12, 37, -43}, {-16, -43, 98}};
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) a(i, j) = vals[i][j];
  }
  return a;
}

TEST(CholeskyTest, KnownFactorisation) {
  const Matrix lower = CholeskyDecompose(Spd3()).value();
  EXPECT_NEAR(lower(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(lower(1, 0), 6.0, 1e-12);
  EXPECT_NEAR(lower(1, 1), 1.0, 1e-12);
  EXPECT_NEAR(lower(2, 0), -8.0, 1e-12);
  EXPECT_NEAR(lower(2, 1), 5.0, 1e-12);
  EXPECT_NEAR(lower(2, 2), 3.0, 1e-12);
}

TEST(CholeskyTest, SolveRecoversSolution) {
  const Vector x_true = {1.0, -2.0, 0.5};
  const Vector b = Spd3().MultiplyVector(x_true);
  const Vector x = SolveSpd(Spd3(), b).value();
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(CholeskyTest, LogDet) {
  const Matrix lower = CholeskyDecompose(Spd3()).value();
  // det = (2*1*3)^2 = 36.
  EXPECT_NEAR(LogDetFromCholesky(lower), std::log(36.0), 1e-9);
}

TEST(CholeskyTest, InvertSpd) {
  const Matrix inv = InvertSpd(Spd3()).value();
  const Matrix prod = Spd3().Multiply(inv);
  EXPECT_LT(prod.MaxAbsDiff(Matrix::Identity(3)), 1e-9);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix bad(2, 2);
  bad(0, 0) = 1;
  bad(1, 1) = -1;
  EXPECT_TRUE(CholeskyDecompose(bad).status().IsFailedPrecondition());
  Matrix rect(2, 3);
  EXPECT_TRUE(CholeskyDecompose(rect).status().IsInvalidArgument());
}

// --- OLS --------------------------------------------------------------------

TEST(OlsTest, RecoversLinearRelationship) {
  OlsAccumulator ols(2);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.Uniform(-5, 5);
    const double y = 3.0 + 2.0 * x + rng.Gaussian(0, 0.5);
    ols.Add({1.0, x}, y);
  }
  const OlsFit fit = ols.Fit().value();
  EXPECT_NEAR(fit.coefficients[0], 3.0, 0.05);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 0.02);
  EXPECT_NEAR(fit.sigma2, 0.25, 0.03);
  EXPECT_GT(fit.r_squared, 0.97);
  EXPECT_GT(fit.standard_errors[1], 0.0);
  EXPECT_LT(fit.standard_errors[1], 0.05);
}

TEST(OlsTest, PerfectFitHasZeroResidual) {
  OlsAccumulator ols(2);
  for (int i = 0; i < 10; ++i) {
    ols.Add({1.0, static_cast<double>(i)}, 5.0 - 2.0 * i);
  }
  const OlsFit fit = ols.Fit().value();
  EXPECT_NEAR(fit.coefficients[0], 5.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], -2.0, 1e-9);
  EXPECT_NEAR(fit.sigma2, 0.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(OlsTest, TooFewObservationsRejected) {
  OlsAccumulator ols(2);
  ols.Add({1.0, 1.0}, 1.0);
  EXPECT_TRUE(ols.Fit().status().IsFailedPrecondition());
}

TEST(OlsTest, SingularDesignRejected) {
  OlsAccumulator ols(2);
  for (int i = 0; i < 10; ++i) ols.Add({1.0, 1.0}, 2.0);  // collinear
  EXPECT_FALSE(ols.Fit().ok());
}

// --- One-way REML --------------------------------------------------------------

// Simulates q groups with n per group, between-group sd tau and residual
// sd sigma.
OneWayReml SimulateGroups(int q, int n, double tau, double sigma,
                          uint64_t seed, double mu = 20.0) {
  Rng rng(seed);
  OneWayReml reml;
  for (int g = 0; g < q; ++g) {
    const double group_effect = rng.Gaussian(0.0, tau);
    for (int i = 0; i < n; ++i) {
      reml.Add(static_cast<size_t>(g),
               mu + group_effect + rng.Gaussian(0.0, sigma));
    }
  }
  return reml;
}

TEST(OneWayRemlTest, RecoversVarianceComponents) {
  const OneWayReml reml = SimulateGroups(200, 30, 3.0, 5.0, 11);
  const OneWayRemlFit fit = reml.Fit().value();
  EXPECT_NEAR(fit.mu, 20.0, 0.6);
  EXPECT_NEAR(fit.sigma2_residual, 25.0, 2.0);
  EXPECT_NEAR(fit.sigma2_group, 9.0, 2.5);
  EXPECT_NEAR(fit.lambda, 9.0 / 25.0, 0.12);
  EXPECT_EQ(fit.num_observations, 200 * 30);
}

TEST(OneWayRemlTest, NoGroupEffectGivesNearZeroLambda) {
  const OneWayReml reml = SimulateGroups(100, 40, 0.0, 5.0, 13);
  const OneWayRemlFit fit = reml.Fit().value();
  EXPECT_LT(fit.sigma2_group, 0.3);
  EXPECT_NEAR(fit.sigma2_residual, 25.0, 2.0);
}

TEST(OneWayRemlTest, BlupsShrinkTowardsZero) {
  const OneWayReml reml = SimulateGroups(50, 5, 4.0, 6.0, 17);
  const OneWayRemlFit fit = reml.Fit().value();
  for (size_t g = 0; g < fit.blup.size(); ++g) {
    // |BLUP| never exceeds |raw deviation|.
    const double raw = fit.group_mean[g] - fit.mu;
    EXPECT_LE(std::abs(fit.blup[g]), std::abs(raw) + 1e-9);
    EXPECT_GE(fit.shrinkage[g], 0.0);
    EXPECT_LT(fit.shrinkage[g], 1.0);
    EXPECT_GT(fit.blup_se[g], 0.0);
  }
}

TEST(OneWayRemlTest, MoreDataShrinksLess) {
  OneWayReml reml;
  Rng rng(19);
  // Group 0: 2 points; group 1: 200 points; same true effect.
  for (int i = 0; i < 2; ++i) reml.Add(0, 25.0 + rng.Gaussian(0, 4));
  for (int i = 0; i < 200; ++i) reml.Add(1, 25.0 + rng.Gaussian(0, 4));
  for (int g = 2; g < 30; ++g) {
    const double effect = rng.Gaussian(0, 3);
    for (int i = 0; i < 20; ++i) {
      reml.Add(static_cast<size_t>(g), 20.0 + effect + rng.Gaussian(0, 4));
    }
  }
  const OneWayRemlFit fit = reml.Fit().value();
  EXPECT_LT(fit.shrinkage[0], fit.shrinkage[1]);
  EXPECT_GT(fit.blup_se[0], fit.blup_se[1]);
}

TEST(OneWayRemlTest, CriterionMinimisedAtFittedLambda) {
  const OneWayReml reml = SimulateGroups(80, 10, 2.5, 4.0, 23);
  const OneWayRemlFit fit = reml.Fit().value();
  ASSERT_GT(fit.lambda, 0.0);
  const double at_fit = reml.RemlCriterion(fit.lambda);
  EXPECT_LE(at_fit, reml.RemlCriterion(fit.lambda * 2.0) + 1e-6);
  EXPECT_LE(at_fit, reml.RemlCriterion(fit.lambda * 0.5) + 1e-6);
  EXPECT_NEAR(at_fit, fit.reml_criterion, 1e-9);
}

TEST(OneWayRemlTest, RejectsDegenerateInputs) {
  OneWayReml empty;
  EXPECT_TRUE(empty.Fit().status().IsFailedPrecondition());
  OneWayReml one_group;
  one_group.Add(0, 1.0);
  one_group.Add(0, 2.0);
  EXPECT_FALSE(one_group.Fit().ok());
}

TEST(OneWayRemlTest, SparseGroupIndicesAllowed) {
  OneWayReml reml;
  Rng rng(29);
  for (int i = 0; i < 50; ++i) reml.Add(3, rng.Gaussian(10, 1));
  for (int i = 0; i < 50; ++i) reml.Add(9, rng.Gaussian(14, 1));
  const OneWayRemlFit fit = reml.Fit().value();
  EXPECT_EQ(fit.group_n.size(), 10u);
  EXPECT_EQ(fit.group_n[0], 0);
  EXPECT_DOUBLE_EQ(fit.blup[0], 0.0);  // unobserved group predicts 0
  EXPECT_NE(fit.blup[3], 0.0);
}

// --- Generic mixed model ----------------------------------------------------------

TEST(MixedModelTest, InterceptOnlyAgreesWithOneWayReml) {
  Rng rng(31);
  OneWayReml one_way;
  MixedModel mixed(1);
  for (int g = 0; g < 60; ++g) {
    const double effect = rng.Gaussian(0, 2.5);
    const int n = 5 + static_cast<int>(rng.UniformInt(0, 20));
    for (int i = 0; i < n; ++i) {
      const double y = 22.0 + effect + rng.Gaussian(0, 4.0);
      one_way.Add(static_cast<size_t>(g), y);
      mixed.Add({1.0}, static_cast<size_t>(g), y);
    }
  }
  const OneWayRemlFit a = one_way.Fit().value();
  const MixedModelFit b = mixed.Fit().value();
  EXPECT_NEAR(a.lambda, b.lambda, 0.02 * (1.0 + a.lambda));
  EXPECT_NEAR(a.sigma2_residual, b.sigma2_residual, 0.05);
  EXPECT_NEAR(a.sigma2_group, b.sigma2_group, 0.1);
  EXPECT_NEAR(a.mu, b.fixed_effects[0], 1e-3);
  for (size_t g = 0; g < a.blup.size(); ++g) {
    EXPECT_NEAR(a.blup[g], b.blup[g], 0.02);
  }
}

TEST(MixedModelTest, RecoversFixedSlopeWithGroupEffects) {
  Rng rng(37);
  MixedModel mixed(2);
  for (int g = 0; g < 80; ++g) {
    const double effect = rng.Gaussian(0, 3.0);
    for (int i = 0; i < 15; ++i) {
      const double x = rng.Uniform(0, 10);
      const double y = 5.0 - 1.5 * x + effect + rng.Gaussian(0, 2.0);
      mixed.Add({1.0, x}, static_cast<size_t>(g), y);
    }
  }
  const MixedModelFit fit = mixed.Fit().value();
  EXPECT_NEAR(fit.fixed_effects[1], -1.5, 0.05);
  EXPECT_NEAR(fit.sigma2_residual, 4.0, 0.5);
  EXPECT_NEAR(fit.sigma2_group, 9.0, 3.5);
  EXPECT_GT(fit.fixed_se[1], 0.0);
}

TEST(MixedModelTest, CriterionMinimisedAtFit) {
  Rng rng(41);
  MixedModel mixed(1);
  for (int g = 0; g < 40; ++g) {
    const double effect = rng.Gaussian(0, 2.0);
    for (int i = 0; i < 12; ++i) {
      mixed.Add({1.0}, static_cast<size_t>(g),
                10.0 + effect + rng.Gaussian(0, 3.0));
    }
  }
  const MixedModelFit fit = mixed.Fit().value();
  ASSERT_GT(fit.lambda, 0.0);
  const double at_fit = mixed.RemlCriterion(fit.lambda).value();
  EXPECT_LE(at_fit, mixed.RemlCriterion(fit.lambda * 1.7).value() + 1e-6);
  EXPECT_LE(at_fit, mixed.RemlCriterion(fit.lambda / 1.7).value() + 1e-6);
}

TEST(MixedModelTest, RejectsDegenerateInputs) {
  MixedModel tiny(1);
  tiny.Add({1.0}, 0, 1.0);
  EXPECT_TRUE(tiny.Fit().status().IsFailedPrecondition());
  MixedModel one_group(1);
  for (int i = 0; i < 10; ++i) one_group.Add({1.0}, 0, i);
  EXPECT_FALSE(one_group.Fit().ok());
}

// --- QQ ----------------------------------------------------------------------------

TEST(QqTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.8413447), 1.0, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.0013499), -3.0, 1e-3);
}

TEST(QqTest, QuantileIsMonotone) {
  double prev = -1e9;
  for (double p = 0.001; p < 1.0; p += 0.013) {
    const double q = NormalQuantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(QqTest, SeriesSortedAndPaired) {
  const std::vector<QqPoint> series = NormalQqSeries({3.0, 1.0, 2.0});
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].sample, 1.0);
  EXPECT_DOUBLE_EQ(series[2].sample, 3.0);
  EXPECT_LT(series[0].theoretical, 0.0);
  EXPECT_NEAR(series[1].theoretical, 0.0, 1e-9);
  EXPECT_GT(series[2].theoretical, 0.0);
}

TEST(QqTest, GaussianSampleGivesStraightPlot) {
  Rng rng(43);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) sample.push_back(rng.Gaussian(5.0, 2.0));
  const auto series = NormalQqSeries(std::move(sample));
  EXPECT_GT(QqCorrelation(series), 0.995);
}

TEST(QqTest, UniformSampleIsLessStraightThanGaussian) {
  Rng rng(47);
  std::vector<double> gaussian, heavy;
  for (int i = 0; i < 3000; ++i) {
    gaussian.push_back(rng.Gaussian(0, 1));
    const double g = rng.Gaussian(0, 1);
    heavy.push_back(g * g * g);  // heavy-tailed
  }
  EXPECT_GT(QqCorrelation(NormalQqSeries(std::move(gaussian))),
            QqCorrelation(NormalQqSeries(std::move(heavy))));
}

TEST(QqTest, EmptySeries) {
  EXPECT_TRUE(NormalQqSeries({}).empty());
  EXPECT_DOUBLE_EQ(QqCorrelation({}), 0.0);
}

}  // namespace
}  // namespace model
}  // namespace taxitrace
