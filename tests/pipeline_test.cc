#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include "taxitrace/common/strings.h"
#include "taxitrace/core/figures.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/core/reports.h"

namespace taxitrace {
namespace core {
namespace {

// One shared small-study run: the pipeline is deterministic, so all
// tests can inspect the same results.
const StudyResults& SmallResults() {
  static const StudyResults* results = [] {
    Pipeline pipeline(StudyConfig::SmallStudy());
    auto run = pipeline.Run();
    return new StudyResults(std::move(run).value());
  }();
  return *results;
}

TEST(PipelineTest, RunsEndToEnd) {
  const StudyResults& r = SmallResults();
  EXPECT_GT(r.raw_trips, 100);
  EXPECT_GT(r.cleaning_report.clean_segments, 100);
  EXPECT_FALSE(r.transitions.empty());
}

TEST(PipelineTest, Table3HasOneRowPerCarWithMonotoneFunnel) {
  const StudyResults& r = SmallResults();
  const StudyConfig config = StudyConfig::SmallStudy();
  ASSERT_EQ(r.table3.size(),
            static_cast<size_t>(config.fleet.num_cars));
  for (int car = 1; car <= config.fleet.num_cars; ++car) {
    const odselect::Table3Row& row =
        r.table3[static_cast<size_t>(car - 1)];
    EXPECT_EQ(row.car_id, car);
    EXPECT_GT(row.segments_total, 0);
    EXPECT_GE(row.segments_total, row.filtered_cleaned);
    EXPECT_GE(row.filtered_cleaned, row.transitions_total);
    EXPECT_GE(row.transitions_total, row.transitions_central);
    EXPECT_GE(row.transitions_central, row.post_filtered);
  }
}

TEST(PipelineTest, TransitionsMatchTable3Tail) {
  const StudyResults& r = SmallResults();
  int64_t post = 0;
  for (const odselect::Table3Row& row : r.table3) {
    post += row.post_filtered;
  }
  EXPECT_EQ(static_cast<int64_t>(r.transitions.size()), post);
}

TEST(PipelineTest, TransitionRecordsAreWellFormed) {
  const StudyResults& r = SmallResults();
  const std::set<std::string> directions = {"T-S", "S-T", "T-L", "L-T"};
  for (const MatchedTransition& mt : r.transitions) {
    EXPECT_TRUE(directions.contains(mt.record.direction))
        << mt.record.direction;
    EXPECT_GT(mt.record.route_time_h, 0.0);
    EXPECT_LT(mt.record.route_time_h, 1.0);
    EXPECT_GT(mt.record.route_distance_km, 0.5);
    EXPECT_LT(mt.record.route_distance_km, 30.0);
    EXPECT_GE(mt.record.low_speed_share, 0.0);
    EXPECT_LE(mt.record.low_speed_share, 1.0);
    EXPECT_GE(mt.record.normal_speed_share, 0.0);
    EXPECT_LE(mt.record.normal_speed_share, 1.0);
    EXPECT_GT(mt.record.fuel_ml, 0.0);
    EXPECT_GE(mt.record.attributes.junctions, 0);
    EXPECT_GT(mt.route.length_m, 0.0);
    EXPECT_GE(mt.route.points.size(), 2u);
    EXPECT_EQ(mt.record.trip_id, mt.transition.segment.trip_id);
  }
}

TEST(PipelineTest, GridCellsPopulated) {
  const StudyResults& r = SmallResults();
  EXPECT_GT(r.cells.size(), 10u);
  int64_t points = 0;
  for (const analysis::CellRecord& cell : r.cells) {
    EXPECT_GT(cell.num_points, 0);
    points += cell.num_points;
  }
  EXPECT_EQ(points, r.total_point_speeds);
  EXPECT_FALSE(r.cell_features.empty());
}

TEST(PipelineTest, DirectionalCellsAreSubsets) {
  const StudyResults& r = SmallResults();
  int64_t direction_points = 0;
  for (const auto& [direction, cells] : r.cells_by_direction) {
    for (const analysis::CellRecord& cell : cells) {
      direction_points += cell.num_points;
    }
  }
  EXPECT_EQ(direction_points, r.total_point_speeds);
}

TEST(PipelineTest, MixedModelFitted) {
  const StudyResults& r = SmallResults();
  EXPECT_GT(r.cell_model.num_observations, 100);
  EXPECT_GT(r.cell_model.sigma2_residual, 0.0);
  EXPECT_GT(r.cell_model.sigma2_group, 0.0);  // geography matters
  EXPECT_EQ(r.model_cells.size(), r.cell_model.blup.size());
  EXPECT_GT(r.cell_model.mu, 5.0);
  EXPECT_LT(r.cell_model.mu, 60.0);
}

TEST(PipelineTest, SeasonalAggregatesConsistent) {
  const StudyResults& r = SmallResults();
  int64_t n = 0;
  for (const SeasonalSpeed& s : r.seasonal) n += s.n;
  EXPECT_EQ(n, r.total_point_speeds);
  EXPECT_GT(r.overall_mean_speed_kmh, 10.0);
  EXPECT_LT(r.overall_mean_speed_kmh, 45.0);
}

TEST(PipelineTest, DeterministicAcrossRuns) {
  Pipeline pipeline(StudyConfig::SmallStudy());
  const StudyResults again = pipeline.Run().value();
  const StudyResults& r = SmallResults();
  EXPECT_EQ(again.raw_trips, r.raw_trips);
  EXPECT_EQ(again.transitions.size(), r.transitions.size());
  EXPECT_EQ(again.total_point_speeds, r.total_point_speeds);
  EXPECT_DOUBLE_EQ(again.overall_mean_speed_kmh,
                   r.overall_mean_speed_kmh);
  EXPECT_DOUBLE_EQ(again.cell_model.lambda, r.cell_model.lambda);
}

TEST(PipelineTest, RecordsViewMatchesTransitions) {
  const StudyResults& r = SmallResults();
  const auto records = r.Records();
  ASSERT_EQ(records.size(), r.transitions.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].trip_id, r.transitions[i].record.trip_id);
  }
}

// --- Reports -------------------------------------------------------------------

TEST(ReportsTest, Table1ListsJunctionPairs) {
  const std::string table =
      FormatTable1(SmallResults().map.network, 5);
  EXPECT_NE(table.find("TABLE 1"), std::string::npos);
  EXPECT_NE(table.find("POINT(25."), std::string::npos);
  EXPECT_NE(table.find("{"), std::string::npos);
}

TEST(ReportsTest, Table2ReportsRules) {
  const std::string report =
      FormatTable2Report(SmallResults().cleaning_report);
  EXPECT_NE(report.find("rule 1 splits"), std::string::npos);
  EXPECT_NE(report.find("order repair"), std::string::npos);
}

TEST(ReportsTest, Table3FormatsAllCars) {
  const std::string table = FormatTable3(SmallResults().table3);
  EXPECT_NE(table.find("TABLE 3"), std::string::npos);
  EXPECT_NE(table.find("sum"), std::string::npos);
}

TEST(ReportsTest, Table4FormatsDirections) {
  const auto rows = analysis::BuildTable4(SmallResults().Records());
  const std::string table = FormatTable4(rows);
  EXPECT_NE(table.find("route T-S"), std::string::npos);
  EXPECT_NE(table.find("low speed %"), std::string::npos);
  EXPECT_NE(table.find("fuel (ml)"), std::string::npos);
}

TEST(ReportsTest, Table5FormatsStrata) {
  const analysis::Table5 t5 = analysis::BuildTable5(SmallResults().cells);
  const std::string table = FormatTable5(t5);
  EXPECT_NE(table.find("lights = 0"), std::string::npos);
  EXPECT_NE(table.find("lights > 0"), std::string::npos);
}

TEST(ReportsTest, TextAggregates) {
  const std::string text = FormatTextAggregates(SmallResults());
  EXPECT_NE(text.find("Point speeds analysed"), std::string::npos);
  EXPECT_NE(text.find("paper {67,48,293,271}"), std::string::npos);
}

// --- Figures -------------------------------------------------------------------

TEST(FiguresTest, SpeedPointsCsvHasRows) {
  const std::string csv = SpeedPointsCsv(SmallResults(), 1);
  EXPECT_NE(csv.find("trip_id,car,direction"), std::string::npos);
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 10);
  // Car filter: no other car id at the start of a row.
  for (const std::string& line : Split(csv, '\n')) {
    if (line.empty() || StartsWith(line, "trip_id")) continue;
    const std::vector<std::string> fields = Split(line, ',');
    EXPECT_EQ(fields[1], "1");
  }
}

TEST(FiguresTest, CellMapGeoJsonIsWellFormedIsh) {
  const std::string json = CellMapGeoJson(SmallResults());
  EXPECT_TRUE(StartsWith(json, "{\"type\":\"FeatureCollection\""));
  EXPECT_NE(json.find("\"blup_kmh\":"), std::string::npos);
  EXPECT_NE(json.find("\"mean_speed_kmh\":"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(FiguresTest, DirectionalCellMapSmaller) {
  const std::string all = CellMapGeoJson(SmallResults());
  const std::string lt = CellMapGeoJson(SmallResults(), "L-T");
  EXPECT_LE(lt.size(), all.size());
  const std::string none = CellMapGeoJson(SmallResults(), "X-Y");
  EXPECT_EQ(none, "{\"type\":\"FeatureCollection\",\"features\":[]}");
}

TEST(FiguresTest, QqPlotCsvMonotone) {
  const std::string csv = QqPlotCsv(SmallResults());
  const std::vector<std::string> lines = Split(csv, '\n');
  ASSERT_GT(lines.size(), 5u);
  double prev_theoretical = -1e9;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const auto fields = Split(lines[i], ',');
    ASSERT_EQ(fields.size(), 2u);
    const double q = ParseDouble(fields[0]).value();
    EXPECT_GT(q, prev_theoretical);
    prev_theoretical = q;
  }
}

TEST(FiguresTest, InterceptsCsvSortedWithBounds) {
  const std::string csv = InterceptsCsv(SmallResults());
  const std::vector<std::string> lines = Split(csv, '\n');
  ASSERT_GT(lines.size(), 5u);
  double prev = -1e9;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const auto fields = Split(lines[i], ',');
    ASSERT_EQ(fields.size(), 7u);
    const double blup = ParseDouble(fields[4]).value();
    const double lo = ParseDouble(fields[5]).value();
    const double hi = ParseDouble(fields[6]).value();
    EXPECT_GE(blup, prev);
    EXPECT_LT(lo, blup);
    EXPECT_GT(hi, blup);
    prev = blup;
  }
}

TEST(FiguresTest, WeatherCsvCoversClassesAndSplit) {
  const std::string csv = WeatherLowSpeedCsv(SmallResults());
  EXPECT_NE(csv.find("temperature_class"), std::string::npos);
  EXPECT_NE(csv.find("<9"), std::string::npos);
  EXPECT_NE(csv.find(">=9"), std::string::npos);
  // 6 classes x 2 light groups + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 13);
}

TEST(FiguresTest, WriteTextFileRoundTrip) {
  const std::string path = testing::TempDir() + "/figure.txt";
  ASSERT_TRUE(WriteTextFile(path, "hello").ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello");
  std::remove(path.c_str());
  EXPECT_FALSE(WriteTextFile("/no/such/dir/f.txt", "x").ok());
}

}  // namespace
}  // namespace core
}  // namespace taxitrace
