// Fig. 6: average speed and map properties per 200 m cell for the L-T
// direction, including the feature census {67,48,293,271} and the
// lower-density corridor the L-T/T-L routes traverse.

#include "bench_util.h"
#include "taxitrace/analysis/cell_stats.h"
#include "taxitrace/core/figures.h"

namespace taxitrace {
namespace {

double MeanFeaturesPerCell(const std::vector<analysis::CellRecord>& cells) {
  if (cells.empty()) return 0.0;
  double total = 0.0;
  for (const analysis::CellRecord& c : cells) {
    total += c.features.traffic_lights + c.features.bus_stops +
             c.features.pedestrian_crossings + c.features.junctions;
  }
  return total / static_cast<double>(cells.size());
}

void PrintFig6() {
  const core::StudyResults& r = benchutil::FullResults();
  const auto it = r.cells_by_direction.find("L-T");
  std::printf("FIG 6. Average speed and map properties, L-T direction:\n");
  std::printf("  cell(x,y)    points  mean km/h  lights  bus  ped  junc\n");
  if (it != r.cells_by_direction.end()) {
    int shown = 0;
    for (const analysis::CellRecord& c : it->second) {
      if (shown++ >= 12) break;
      std::printf("  (%3d,%3d) %9lld  %9.1f  %6d %4d %4d %5d\n", c.cell.cx,
                  c.cell.cy, static_cast<long long>(c.num_points),
                  c.mean_speed_kmh, c.features.traffic_lights,
                  c.features.bus_stops, c.features.pedestrian_crossings,
                  c.features.junctions);
    }
    std::printf("  ... (%zu L-T cells total)\n", it->second.size());
    benchutil::EmitFigureFile("fig6_cell_map_LT.geojson",
                              core::CellMapGeoJson(r, "L-T"));
  }
  const roadnet::RoadNetwork& net = r.map.network;
  int junctions = 0;
  net.ForEachVertex([&](const roadnet::Vertex& v) {
    if (v.is_junction) ++junctions;
  });
  std::printf(
      "\nStudy-area census {lights, bus stops, ped. crossings, other "
      "junctions} = {%d,%d,%d,%d}; paper: {67,48,293,271}.\n",
      net.CountFeatures(roadnet::FeatureType::kTrafficLight),
      net.CountFeatures(roadnet::FeatureType::kBusStop),
      net.CountFeatures(roadnet::FeatureType::kPedestrianCrossing),
      junctions);
  // The paper notes L-T/T-L routes traverse cells with fewer features
  // than S-T/T-S routes (the area below line D).
  const auto st = r.cells_by_direction.find("S-T");
  if (it != r.cells_by_direction.end() &&
      st != r.cells_by_direction.end()) {
    const double lt_density = MeanFeaturesPerCell(it->second);
    const double st_density = MeanFeaturesPerCell(st->second);
    std::printf(
        "Check: L-T cells carry fewer features than S-T cells: %.1f < "
        "%.1f -> %s\n\n",
        lt_density, st_density,
        lt_density < st_density ? "HOLDS" : "VIOLATED");
  }
}

void BM_CellMapGeoJson(benchmark::State& state) {
  const core::StudyResults& r = benchutil::FullResults();
  for (auto _ : state) {
    auto json = core::CellMapGeoJson(r, "L-T");
    benchmark::DoNotOptimize(json);
  }
}
BENCHMARK(BM_CellMapGeoJson)->Unit(benchmark::kMillisecond);

void BM_ComputeCellFeatures(benchmark::State& state) {
  const core::StudyResults& r = benchutil::FullResults();
  for (auto _ : state) {
    auto features =
        analysis::ComputeCellFeatures(r.map.network, analysis::Grid(200.0));
    benchmark::DoNotOptimize(features);
  }
}
BENCHMARK(BM_ComputeCellFeatures)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintFig6)
