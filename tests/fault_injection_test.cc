// Table-driven corrupted-input tests: every fault class is injected
// deterministically and pushed through its consumer — trace-level
// classes through the store rebuild and the cleaning sanitiser,
// file-level classes through the CSV round-trip and the lenient trace
// reader — and then every class again through the full study pipeline.
// Each path must return a clean Status (no crash, no sanitizer report)
// and account for the loss in FaultReport.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "taxitrace/clean/cleaning_pipeline.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/fault/fault_injector.h"
#include "taxitrace/fault/fault_plan.h"
#include "taxitrace/fault/fault_report.h"
#include "taxitrace/geo/coordinates.h"
#include "taxitrace/trace/trace_io.h"
#include "taxitrace/trace/trace_store.h"

namespace taxitrace {
namespace fault {
namespace {

// How the class's dropped-side counter must relate to injected_*.
enum class DropRelation {
  kExact,           // dropped == injected: every fault caught one-to-one
  kAtLeast,         // dropped >= injected: one fault drops many records
  kPositiveAtMost,  // 0 < dropped <= injected: a corrupt record can
                    // still parse by luck (e.g. a truncated row)
};

struct FaultCase {
  const char* name;
  double FaultPlan::* prob;
  int64_t FaultReport::* injected;
  int64_t FaultReport::* dropped;  // null: the class drops nothing at
                                   // the sanitiser (handled later, e.g.
                                   // by the trip filter)
  DropRelation relation;
  bool file_level;  // routed through the CSV round-trip
};

const FaultCase kCases[] = {
    {"nan_coord", &FaultPlan::nan_coord_prob,
     &FaultReport::injected_nan_coords, &FaultReport::points_dropped_nonfinite,
     DropRelation::kExact, false},
    {"clock_jump", &FaultPlan::clock_jump_prob,
     &FaultReport::injected_clock_jumps, &FaultReport::points_dropped_clock_jump,
     DropRelation::kExact, false},
    {"negative_speed", &FaultPlan::negative_speed_prob,
     &FaultReport::injected_negative_speeds,
     &FaultReport::points_dropped_negative_speed, DropRelation::kExact, false},
    {"swap_coord", &FaultPlan::swap_coord_prob,
     &FaultReport::injected_swapped_coords,
     &FaultReport::points_dropped_out_of_region, DropRelation::kExact, false},
    {"duplicate_trip", &FaultPlan::duplicate_trip_prob,
     &FaultReport::injected_duplicated_trips,
     &FaultReport::trips_dropped_duplicate_id, DropRelation::kExact, false},
    {"empty_trip", &FaultPlan::empty_trip_prob,
     &FaultReport::injected_emptied_trips, &FaultReport::trips_dropped_empty,
     DropRelation::kExact, false},
    {"single_point_trip", &FaultPlan::single_point_trip_prob,
     &FaultReport::injected_single_point_trips, nullptr, DropRelation::kExact,
     false},
    {"interleave_trip", &FaultPlan::interleave_trip_prob,
     &FaultReport::injected_interleaved_trips,
     &FaultReport::points_dropped_foreign, DropRelation::kAtLeast, false},
    {"truncate_row", &FaultPlan::truncate_row_prob,
     &FaultReport::injected_truncated_rows,
     &FaultReport::rows_dropped_malformed, DropRelation::kPositiveAtMost,
     true},
    {"wrong_columns", &FaultPlan::wrong_columns_prob,
     &FaultReport::injected_wrong_column_rows,
     &FaultReport::rows_dropped_malformed, DropRelation::kExact, true},
    {"junk_bytes", &FaultPlan::junk_bytes_prob,
     &FaultReport::injected_junk_rows, &FaultReport::rows_dropped_non_utf8,
     DropRelation::kExact, true},
};

// A plan with only this case's class enabled.
FaultPlan SingleClassPlan(const FaultCase& c, double rate) {
  FaultPlan plan;
  plan.*(c.prob) = rate;
  return plan;
}

// A well-formed fleet: 40 trips x 40 points, monotone ids and
// timestamps, ~11 m steps inside the test region, no segmentation or
// filter triggers — so every drop the report shows was caused by the
// injected fault class under test.
std::vector<trace::Trip> MakeFleet() {
  std::vector<trace::Trip> trips;
  for (int t = 0; t < 40; ++t) {
    trace::Trip trip;
    trip.trip_id = t + 1;
    trip.car_id = 1 + t % 5;
    for (int k = 0; k < 40; ++k) {
      trace::RoutePoint p;
      p.point_id = k + 1;
      p.trip_id = trip.trip_id;
      p.timestamp_s = 1000.0 * t + 10.0 * k;
      p.position =
          geo::LatLon{65.0 + 1e-3 * t + 1e-4 * k, 25.47 + 1e-4 * k};
      p.speed_kmh = 30.0;
      trip.points.push_back(p);
    }
    trip.RecomputeTotals();
    trips.push_back(trip);
  }
  return trips;
}

clean::CleaningOptions SanitizingOptions() {
  clean::CleaningOptions options;
  options.sanitize.enabled = true;
  options.sanitize.has_region = true;
  options.sanitize.lat_min_deg = 64.9;
  options.sanitize.lat_max_deg = 65.2;
  options.sanitize.lon_min_deg = 25.3;
  options.sanitize.lon_max_deg = 25.7;
  return options;
}

void ExpectRelation(const FaultCase& c, const FaultReport& report) {
  const int64_t injected = report.*(c.injected);
  EXPECT_GT(injected, 0) << "class " << c.name << " never fired";
  if (c.dropped == nullptr) return;
  const int64_t dropped = report.*(c.dropped);
  switch (c.relation) {
    case DropRelation::kExact:
      EXPECT_EQ(dropped, injected);
      break;
    case DropRelation::kAtLeast:
      EXPECT_GE(dropped, injected);
      break;
    case DropRelation::kPositiveAtMost:
      EXPECT_GT(dropped, 0);
      EXPECT_LE(dropped, injected);
      break;
  }
}

TEST(FaultPlanTest, DefaultPlanIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.Any());
  EXPECT_FALSE(plan.AnyTraceFaults());
  EXPECT_FALSE(plan.AnyFileFaults());
  const FaultPlan uniform = FaultPlan::Uniform(0.25);
  EXPECT_TRUE(uniform.Any());
  EXPECT_TRUE(uniform.AnyTraceFaults());
  EXPECT_TRUE(uniform.AnyFileFaults());
  for (const FaultCase& c : kCases) {
    EXPECT_EQ(uniform.*(c.prob), 0.25) << c.name;
  }
}

// Trace-level classes: inject -> rebuild the store -> clean with the
// sanitiser on. The report (injector + rebuild + cleaning) must show
// the class firing and its drop counter matching.
TEST(FaultInjectionTest, TraceLevelClassesAccountedInCleaning) {
  for (const FaultCase& c : kCases) {
    if (c.file_level) continue;
    SCOPED_TRACE(c.name);
    const FaultInjector injector(SingleClassPlan(c, 0.1));
    std::vector<trace::Trip> trips = MakeFleet();
    FaultReport report;
    injector.CorruptTrips(&trips, &report);

    Result<trace::TraceStore> store =
        RebuildStoreDroppingDuplicates(std::move(trips), &report);
    ASSERT_TRUE(store.ok()) << store.status().ToString();

    clean::CleaningReport cleaning;
    const Result<std::vector<trace::Trip>> cleaned =
        clean::CleanTrips(*store, SanitizingOptions(), &cleaning);
    ASSERT_TRUE(cleaned.ok()) << cleaned.status().ToString();
    report.Add(cleaning.faults);
    ExpectRelation(c, report);

    // The only losses are the ones the class explains.
    const int64_t expected_drops =
        c.dropped == nullptr ? 0 : report.*(c.dropped);
    EXPECT_EQ(report.TotalDropped(), expected_drops);

    // Single-point trips pass the sanitiser and fall to the trip
    // filter's min-points rule instead.
    if (c.injected == &FaultReport::injected_single_point_trips) {
      EXPECT_GE(cleaning.filter.removed_too_few_points,
                report.injected_single_point_trips);
    }
  }
}

// File-level classes: serialize -> corrupt the CSV -> lenient re-parse.
// The reader never fails; it drops the bad rows and accounts for them.
TEST(FaultInjectionTest, FileLevelClassesAccountedInLenientParse) {
  for (const FaultCase& c : kCases) {
    if (!c.file_level) continue;
    SCOPED_TRACE(c.name);
    const FaultInjector injector(SingleClassPlan(c, 0.1));
    const std::string csv = trace::TripsToCsv(MakeFleet());
    FaultReport report;
    const std::string corrupted = injector.CorruptCsv(csv, &report);
    EXPECT_NE(corrupted, csv);

    trace::TraceIoStats stats;
    const Result<std::vector<trace::Trip>> trips =
        trace::TripsFromCsvLenient(corrupted, &stats);
    ASSERT_TRUE(trips.ok()) << trips.status().ToString();
    EXPECT_FALSE(trips->empty());
    report.rows_dropped_malformed += stats.rows_dropped_malformed;
    report.rows_dropped_non_utf8 += stats.rows_dropped_non_utf8;
    ExpectRelation(c, report);
    EXPECT_EQ(stats.rows_total, 40 * 40);
  }
}

// Every class end to end: a SmallStudy with one fault class enabled
// must finish with a clean Status and surface the class in
// StudyResults. The per-class relations still hold because a
// trace-only plan skips the CSV round-trip.
TEST(FaultInjectionTest, EveryClassRunsTheFullPipeline) {
  for (const FaultCase& c : kCases) {
    SCOPED_TRACE(c.name);
    core::StudyConfig config = core::StudyConfig::SmallStudy();
    config.num_threads = 0;
    config.faults = SingleClassPlan(c, 0.05);
    core::Pipeline pipeline(config);
    const auto run = pipeline.Run();
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ExpectRelation(c, run->cleaning_report.faults);
    EXPECT_GT(run->cleaning_report.clean_segments, 0);
  }
}

// All classes at once: the pipeline still finishes and still produces
// analysable output on a heavily corrupted fleet.
TEST(FaultInjectionTest, MixedPlanPipelineDegradesGracefully) {
  core::StudyConfig config = core::StudyConfig::SmallStudy();
  // -1: resolve workers from TAXITRACE_THREADS, so the CI fault-matrix
  // job runs this corrupted study at 8 workers under the sanitizers.
  config.num_threads = -1;
  config.faults = FaultPlan::Uniform(0.03);
  core::Pipeline pipeline(config);
  const auto run = pipeline.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const FaultReport& report = run->cleaning_report.faults;
  EXPECT_GT(report.TotalInjected(), 0);
  EXPECT_GT(report.TotalDropped(), 0);
  EXPECT_GT(run->cleaning_report.clean_segments, 0);
  EXPECT_GT(run->total_point_speeds, 0);
}

}  // namespace
}  // namespace fault
}  // namespace taxitrace
