# Empty dependencies file for taxitrace_mapattr.
# This may be replaced when dependencies are built.
