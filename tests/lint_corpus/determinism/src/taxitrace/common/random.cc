// Known-good: common/random is the sanctioned entropy module; the
// same constructs that fire elsewhere must stay silent here.

#include "taxitrace/common/random.h"

namespace taxitrace {

unsigned HardwareSeed() {
  std::random_device rd;
  return rd();
}

}  // namespace taxitrace
