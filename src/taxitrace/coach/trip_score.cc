#include "taxitrace/coach/trip_score.h"

#include <algorithm>
#include <cmath>

namespace taxitrace {
namespace coach {

TripScore ScoreTrip(const trace::Trip& trip,
                    const mapmatch::MatchedRoute* route,
                    const roadnet::RoadNetwork* network,
                    const TripScoreOptions& options) {
  TripScore score;
  score.trip_id = trip.trip_id;
  if (trip.points.empty()) return score;

  score.distance_km = trace::PathLengthMeters(trip.points) / 1000.0;
  score.duration_min = trace::TimeSpanSeconds(trip.points) / 60.0;

  int64_t idle = 0, low = 0;
  double fuel_ml = 0.0;
  for (size_t i = 0; i < trip.points.size(); ++i) {
    const trace::RoutePoint& p = trip.points[i];
    if (p.speed_kmh < options.idle_speed_kmh) ++idle;
    if (p.speed_kmh < options.low_speed_kmh) ++low;
    fuel_ml += p.fuel_delta_ml;
    if (i > 0) {
      const double dt =
          std::max(1.0, p.timestamp_s - trip.points[i - 1].timestamp_s);
      const double rate =
          std::abs(p.speed_kmh - trip.points[i - 1].speed_kmh) / dt;
      if (rate > options.harsh_accel_kmh_per_s) ++score.harsh_events;
    }
  }
  const double n = static_cast<double>(trip.points.size());
  score.idle_share = static_cast<double>(idle) / n;
  score.low_speed_share = static_cast<double>(low) / n;
  score.harsh_per_km = score.distance_km > 0.1
                           ? score.harsh_events / score.distance_km
                           : 0.0;
  score.fuel_per_km_ml =
      score.distance_km > 0.1 ? fuel_ml / score.distance_km : 0.0;
  score.fuel_excess_ml = std::max(
      0.0, fuel_ml - options.reference_economy_ml_per_km *
                         score.distance_km);

  if (route != nullptr && network != nullptr && !route->points.empty()) {
    int64_t speeding = 0;
    for (const mapmatch::MatchedPoint& mp : route->points) {
      const double limit =
          network->edge(mp.position.edge).speed_limit_kmh;
      if (trip.points[mp.point_index].speed_kmh >
          limit + options.speeding_margin_kmh) {
        ++speeding;
      }
    }
    score.speeding_share =
        static_cast<double>(speeding) /
        static_cast<double>(route->points.size());
  }

  // Composite score: start at 100, charge each inefficiency. The
  // weights make a clean cruise score ~90+ and a stop-start crawl with
  // harsh driving land below 50.
  double penalty = 0.0;
  penalty += 40.0 * score.idle_share;
  penalty += 30.0 * std::max(0.0, score.low_speed_share - 0.05);
  penalty += 8.0 * std::min(4.0, score.harsh_per_km);
  penalty += 60.0 * score.speeding_share;
  if (score.distance_km > 0.1) {
    penalty += std::min(
        25.0, 0.25 * std::max(0.0, score.fuel_per_km_ml -
                                       options.reference_economy_ml_per_km));
  }
  score.eco_score = std::clamp(100.0 - penalty, 0.0, 100.0);
  return score;
}

}  // namespace coach
}  // namespace taxitrace
