// Tiled graph storage (roadnet/tile.h + road_network.h): id packing
// round trips, tile assignment of negative/boundary coordinates,
// cross-tile boundary-arc invariants, and byte-identical routing
// between a tiled map and its flat single-tile twin.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "taxitrace/common/hash.h"
#include "taxitrace/common/random.h"
#include "taxitrace/roadnet/road_network.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/roadnet/tile.h"
#include "taxitrace/synth/metro_map_generator.h"

namespace taxitrace {
namespace roadnet {
namespace {

using geo::EnPoint;

// --- Id packing round trips -------------------------------------------------

TEST(TilePackingTest, RoundTripsAcrossTheWholeRange) {
  Rng rng(91);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto tile =
        static_cast<TileIndex>(rng.UniformInt(0, kMaxTiles - 1));
    const auto local =
        static_cast<int32_t>(rng.UniformInt(0, kMaxLocalId));
    const int32_t packed = PackTiledId(tile, local);
    EXPECT_GE(packed, 0);
    EXPECT_EQ(TileIndexOf(packed), tile);
    EXPECT_EQ(LocalIdOf(packed), local);
  }
}

TEST(TilePackingTest, BoundaryValues) {
  // Extremes of both fields survive the round trip; tile 0 is the
  // identity so packed == local there.
  EXPECT_EQ(PackTiledId(0, 0), 0);
  EXPECT_EQ(PackTiledId(0, kMaxLocalId), kMaxLocalId);
  EXPECT_EQ(TileIndexOf(kMaxLocalId), 0);
  const int32_t top = PackTiledId(kMaxTiles - 1, kMaxLocalId);
  EXPECT_GT(top, 0);  // sign bit untouched: -1 stays the invalid id
  EXPECT_EQ(TileIndexOf(top), kMaxTiles - 1);
  EXPECT_EQ(LocalIdOf(top), kMaxLocalId);
  for (int32_t local = 0; local <= 5; ++local) {
    EXPECT_EQ(PackTiledId(0, local), local);
  }
}

TEST(TilePackingTest, OrdinalOrderMatchesPackedIdOrder) {
  // Tile-major enumeration == ascending packed ids: higher tile beats
  // any local ordinal.
  EXPECT_LT(PackTiledId(0, kMaxLocalId), PackTiledId(1, 0));
  EXPECT_LT(PackTiledId(3, 17), PackTiledId(3, 18));
  EXPECT_LT(PackTiledId(3, kMaxLocalId), PackTiledId(4, 0));
}

// --- Tile coordinates of points --------------------------------------------

TEST(TileCoordTest, NegativeAndBoundaryCoordinates) {
  const double size = 100.0;
  // Interior points.
  EXPECT_EQ(TileCoordOfPoint({50, 50}, size), (TileCoord{0, 0}));
  EXPECT_EQ(TileCoordOfPoint({150, 250}, size), (TileCoord{1, 2}));
  // Negative points floor away from zero: -1 m is tile -1, not 0.
  EXPECT_EQ(TileCoordOfPoint({-1, -1}, size), (TileCoord{-1, -1}));
  EXPECT_EQ(TileCoordOfPoint({-100, -1}, size), (TileCoord{-1, -1}));
  EXPECT_EQ(TileCoordOfPoint({-101, 0}, size), (TileCoord{-2, 0}));
  // Boundary points belong to the tile they open (floor semantics).
  EXPECT_EQ(TileCoordOfPoint({100, 0}, size), (TileCoord{1, 0}));
  EXPECT_EQ(TileCoordOfPoint({0, 200}, size), (TileCoord{0, 2}));
  EXPECT_EQ(TileCoordOfPoint({-100, -200}, size), (TileCoord{-1, -2}));
}

TEST(TileCoordTest, VerticesLandInTheirAssignedTile) {
  // Vertices spread over all four quadrants, including exact tile
  // boundaries, end up in tiles whose recorded coord matches the
  // point's tile coord.
  const geo::LatLon origin{65.0, 25.0};
  RoadNetwork net(origin, TilingOptions{100.0});
  const std::vector<EnPoint> points = {
      {0, 0},     {50, 50},    {-50, -50},  {99.99, 99.99}, {100, 100},
      {-100, -1}, {-101, -99}, {250, -250}, {-0.01, 0.01},  {0, -300},
  };
  for (const EnPoint& p : points) {
    const VertexId v = net.AddVertex(p, false);
    const TileCoord expect = TileCoordOfPoint(p, 100.0);
    const GraphTile& tile = net.tile(TileIndexOf(v));
    EXPECT_EQ(tile.coord, expect) << "point (" << p.x << ", " << p.y << ")";
    EXPECT_EQ(net.TileAt(p), TileIndexOf(v));
  }
  // Ids pack (tile, local) and resolve back to the right vertex.
  net.ForEachVertex([&](const Vertex& v) {
    EXPECT_EQ(net.vertex(v.id).id, v.id);
    EXPECT_EQ(net.VertexIdAt(net.VertexOrdinal(v.id)), v.id);
  });
}

TEST(TileCoordTest, SingleTileMapsKeepDenseIds) {
  const geo::LatLon origin{65.0, 25.0};
  RoadNetwork net(origin);  // tile_size 0: historical flat layout
  for (int i = 0; i < 100; ++i) {
    const VertexId v = net.AddVertex(
        {static_cast<double>(i * 37 % 1000) - 500.0,
         static_cast<double>(i * 91 % 1000) - 500.0},
        false);
    EXPECT_EQ(v, i);  // packed id == dense id, bit for bit
    EXPECT_EQ(net.VertexOrdinal(v), static_cast<size_t>(i));
  }
  EXPECT_EQ(net.num_tiles(), 1u);
}

// --- Boundary-arc invariants ------------------------------------------------

class BoundaryArcTest : public testing::Test {
 protected:
  BoundaryArcTest()
      : map_(synth::GenerateMetroMap(synth::MetroPreset(0)).value()) {}
  synth::MetroMap map_;
};

TEST_F(BoundaryArcTest, MapIsGenuinelyMultiTile) {
  ASSERT_GT(map_.network.num_tiles(), 4u);
  size_t boundary_total = 0;
  for (size_t t = 0; t < map_.network.num_tiles(); ++t) {
    boundary_total +=
        map_.network.BoundaryArcs(static_cast<TileIndex>(t)).size();
  }
  ASSERT_GT(boundary_total, 0u);
}

// Every CSR arc whose head lies in another tile appears in its tile's
// boundary table, and nothing else does.
TEST_F(BoundaryArcTest, BoundaryTableMatchesCrossTileArcs) {
  const RoadNetwork& net = map_.network;
  for (size_t t = 0; t < net.num_tiles(); ++t) {
    const auto tidx = static_cast<TileIndex>(t);
    std::vector<BoundaryArc> expect;
    for (const Vertex& v : net.tile(tidx).vertices) {
      for (const HalfEdge& arc : net.OutArcs(v.id)) {
        if (TileIndexOf(arc.head) != tidx) {
          expect.push_back(BoundaryArc{v.id, arc.head, arc.edge});
        }
      }
    }
    const std::span<const BoundaryArc> got = net.BoundaryArcs(tidx);
    ASSERT_EQ(got.size(), expect.size()) << "tile " << t;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].from, expect[i].from);
      EXPECT_EQ(got[i].head, expect[i].head);
      EXPECT_EQ(got[i].edge, expect[i].edge);
    }
  }
}

// A boundary arc is visible from both sides with symmetric
// traversability: if tile A can leave to tile B over edge e, tile B's
// adjacency holds the mirror arc whose in/out flags are swapped.
TEST_F(BoundaryArcTest, TraversabilitySymmetricFromBothTiles) {
  const RoadNetwork& net = map_.network;
  int checked = 0;
  for (size_t t = 0; t < net.num_tiles(); ++t) {
    for (const BoundaryArc& b : net.BoundaryArcs(static_cast<TileIndex>(t))) {
      // The forward view from the owning tile.
      const HalfEdge* out = nullptr;
      for (const HalfEdge& arc : net.OutArcs(b.from)) {
        if (arc.edge == b.edge && arc.head == b.head) out = &arc;
      }
      ASSERT_NE(out, nullptr);
      // The mirror view from the head's tile.
      const HalfEdge* back = nullptr;
      for (const HalfEdge& arc : net.OutArcs(b.head)) {
        if (arc.edge == b.edge && arc.head == b.from) back = &arc;
      }
      ASSERT_NE(back, nullptr)
          << "edge " << b.edge << " invisible from tile of vertex " << b.head;
      EXPECT_EQ(out->traversable_out, back->traversable_in);
      EXPECT_EQ(out->traversable_in, back->traversable_out);
      EXPECT_EQ(out->forward, !back->forward);
      EXPECT_EQ(out->length_m, back->length_m);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

// --- Tiled vs flat router equivalence ---------------------------------------

// The same metro generated tiled (2 km tiles) and flat (single tile)
// must route identically: same reachability, same lengths, and the
// same step sequences once ids are translated through the position
// correspondence. Catches any tiling leak into search order.
TEST(TiledVsFlatRouterTest, IdenticalPathsOnRandomOdPairs) {
  synth::MetroMapOptions options = synth::MetroPreset(1);
  const synth::MetroMap tiled = synth::GenerateMetroMap(options).value();
  options.tiling.tile_size_m = 0.0;
  const synth::MetroMap flat = synth::GenerateMetroMap(options).value();

  const RoadNetwork& tnet = tiled.network;
  const RoadNetwork& fnet = flat.network;
  ASSERT_EQ(tnet.num_vertices(), fnet.num_vertices());
  ASSERT_EQ(tnet.num_edges(), fnet.num_edges());
  ASSERT_GT(tnet.num_tiles(), 1u);
  ASSERT_EQ(fnet.num_tiles(), 1u);

  // The two maps hold the same vertices at bit-identical positions,
  // but tiling permutes ids (tile-major vs insertion order). Build the
  // correspondence by exact position: generator points are distinct.
  const auto pos_key = [](const EnPoint& p) {
    uint64_t xb = 0;
    uint64_t yb = 0;
    static_assert(sizeof xb == sizeof p.x);
    std::memcpy(&xb, &p.x, sizeof xb);
    std::memcpy(&yb, &p.y, sizeof yb);
    return SplitMix64(xb) ^ yb;
  };
  std::unordered_map<uint64_t, VertexId> flat_by_pos;
  flat_by_pos.reserve(fnet.num_vertices());
  fnet.ForEachVertex([&](const Vertex& v) {
    ASSERT_TRUE(flat_by_pos.emplace(pos_key(v.position), v.id).second);
  });
  // tiled vertex id -> flat vertex id.
  std::unordered_map<VertexId, VertexId> to_flat;
  to_flat.reserve(tnet.num_vertices());
  tnet.ForEachVertex([&](const Vertex& v) {
    const auto it = flat_by_pos.find(pos_key(v.position));
    ASSERT_NE(it, flat_by_pos.end());
    to_flat.emplace(v.id, it->second);
  });
  // Flat (from, to) endpoint pair -> flat edge id. Endpoint pairs are
  // unique in the generated metro (no parallel edges).
  std::unordered_map<uint64_t, EdgeId> flat_edge_by_pair;
  flat_edge_by_pair.reserve(fnet.num_edges());
  fnet.ForEachEdge([&](const Edge& e) {
    const uint64_t key =
        SplitMix64((static_cast<uint64_t>(static_cast<uint32_t>(e.from))
                    << 32) |
                   static_cast<uint32_t>(e.to));
    ASSERT_TRUE(flat_edge_by_pair.emplace(key, e.id).second);
  });
  const auto translate_edge = [&](EdgeId tiled_edge) {
    const Edge& te = tnet.edge(tiled_edge);
    const uint64_t key = SplitMix64(
        (static_cast<uint64_t>(
             static_cast<uint32_t>(to_flat.at(te.from)))
         << 32) |
        static_cast<uint32_t>(to_flat.at(te.to)));
    const auto it = flat_edge_by_pair.find(key);
    return it == flat_edge_by_pair.end() ? kInvalidEdge : it->second;
  };

  const Router trouter(&tnet);
  const Router frouter(&fnet);
  Rng rng(20121001);
  const auto n = static_cast<int64_t>(tnet.num_vertices());
  int compared = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const auto ord_a = static_cast<size_t>(rng.UniformInt(0, n - 1));
    const auto ord_b = static_cast<size_t>(rng.UniformInt(0, n - 1));
    const VertexId ta = tnet.VertexIdAt(ord_a);
    const VertexId tb = tnet.VertexIdAt(ord_b);
    const Result<Path> tp = trouter.ShortestPath(ta, tb);
    const Result<Path> fp =
        frouter.ShortestPath(to_flat.at(ta), to_flat.at(tb));
    ASSERT_EQ(tp.ok(), fp.ok()) << "trial " << trial;
    if (!tp.ok()) continue;
    ASSERT_DOUBLE_EQ(tp->length_m, fp->length_m) << "trial " << trial;
    ASSERT_EQ(tp->steps.size(), fp->steps.size()) << "trial " << trial;
    for (size_t s = 0; s < tp->steps.size(); ++s) {
      // Translate the tiled step's edge through the endpoint
      // correspondence; the sequences must then agree exactly.
      EXPECT_EQ(translate_edge(tp->steps[s].edge), fp->steps[s].edge)
          << "trial " << trial << " step " << s;
      EXPECT_EQ(tp->steps[s].forward, fp->steps[s].forward);
    }
    ++compared;
  }
  // The metro core is well connected; most pairs must have routed.
  EXPECT_GT(compared, 40);
}

// --- Metro generator structure ----------------------------------------------

TEST(MetroMapTest, DeterministicInSeed) {
  const synth::MetroMapOptions options = synth::MetroPreset(0);
  const synth::MetroMap a = synth::GenerateMetroMap(options).value();
  const synth::MetroMap b = synth::GenerateMetroMap(options).value();
  ASSERT_EQ(a.network.num_vertices(), b.network.num_vertices());
  ASSERT_EQ(a.network.num_edges(), b.network.num_edges());
  a.network.ForEachEdge([&](const Edge& e) {
    const Edge& other = b.network.edge(e.id);
    EXPECT_EQ(e.from, other.from);
    EXPECT_EQ(e.to, other.to);
    EXPECT_EQ(e.length_m, other.length_m);
    EXPECT_EQ(e.direction, other.direction);
  });

  synth::MetroMapOptions reseeded = options;
  reseeded.seed = options.seed + 1;
  const synth::MetroMap c = synth::GenerateMetroMap(reseeded).value();
  // A different seed removes a different street subset.
  EXPECT_NE(a.network.num_edges(), c.network.num_edges());
}

TEST(MetroMapTest, StructuralCensus) {
  const synth::MetroMap map =
      synth::GenerateMetroMap(synth::MetroPreset(0)).value();
  EXPECT_EQ(map.num_districts, 4);
  EXPECT_GT(map.num_bridges, 0);
  EXPECT_GT(map.num_ring_vertices, 0);
  EXPECT_TRUE(map.network.Validate().ok());
  // Rivers choke crossings: the river gap carries fewer connectors
  // than a riverless gap would (kconn per district column).
  const synth::MetroMapOptions options = synth::MetroPreset(0);
  EXPECT_LT(map.num_bridges,
            options.connectors_per_side * options.districts_x);
}

TEST(MetroMapTest, PresetsScaleToMetroSize) {
  const synth::MetroMap small =
      synth::GenerateMetroMap(synth::MetroPreset(0)).value();
  EXPECT_GE(small.network.num_vertices(), 1000u);
  // Level 3 is the >= 100k-vertex preset the scale sweep relies on;
  // generating it here would slow the suite, so check the arithmetic.
  const synth::MetroMapOptions big = synth::MetroPreset(3);
  const long lattice_vertices = static_cast<long>(big.districts_x) *
                                big.districts_y * big.district_nodes_x *
                                big.district_nodes_y;
  EXPECT_GE(lattice_vertices, 100000);
}

}  // namespace
}  // namespace roadnet
}  // namespace taxitrace
