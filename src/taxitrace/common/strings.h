// Small string utilities shared across the library.

#ifndef TAXITRACE_COMMON_STRINGS_H_
#define TAXITRACE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "taxitrace/common/result.h"

namespace taxitrace {

/// Splits `s` at every occurrence of `sep`. Adjacent separators produce
/// empty fields; an empty input yields a single empty field.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins the pieces with `sep` between them.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a base-10 integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a floating-point number; the whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace taxitrace

#endif  // TAXITRACE_COMMON_STRINGS_H_
