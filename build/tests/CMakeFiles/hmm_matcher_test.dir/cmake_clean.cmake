file(REMOVE_RECURSE
  "CMakeFiles/hmm_matcher_test.dir/hmm_matcher_test.cc.o"
  "CMakeFiles/hmm_matcher_test.dir/hmm_matcher_test.cc.o.d"
  "hmm_matcher_test"
  "hmm_matcher_test.pdb"
  "hmm_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
