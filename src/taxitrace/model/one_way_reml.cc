#include "taxitrace/model/one_way_reml.h"

#include <cmath>

namespace taxitrace {
namespace model {
namespace {

// Golden-section minimisation of f over [lo, hi].
template <typename F>
double GoldenSection(F f, double lo, double hi, int iterations = 80) {
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = f(c), fd = f(d);
  for (int i = 0; i < iterations; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = f(d);
    }
  }
  return (a + b) / 2.0;
}

}  // namespace

void OneWayReml::Add(size_t group, double y) {
  if (group >= n_.size()) {
    n_.resize(group + 1, 0);
    mean_.resize(group + 1, 0.0);
    m2_.resize(group + 1, 0.0);
  }
  int64_t& n = n_[group];
  ++n;
  const double delta = y - mean_[group];
  mean_[group] += delta / static_cast<double>(n);
  m2_[group] += delta * (y - mean_[group]);
  ++total_n_;
}

OneWayReml::Gls OneWayReml::ComputeGls(double lambda) const {
  // GLS intercept: mu = sum w_i ybar_i / sum w_i with
  // w_i = n_i / (1 + n_i lambda) (common sigma^2 cancels).
  double wsum = 0.0;
  double wy = 0.0;
  for (size_t i = 0; i < n_.size(); ++i) {
    if (n_[i] == 0) continue;
    const double ni = static_cast<double>(n_[i]);
    const double w = ni / (1.0 + ni * lambda);
    wsum += w;
    wy += w * mean_[i];
  }
  const double mu = wsum > 0.0 ? wy / wsum : 0.0;
  // Profile quadratic form: SSW + sum w_i (ybar_i - mu)^2.
  double q = 0.0;
  for (size_t i = 0; i < n_.size(); ++i) {
    if (n_[i] == 0) continue;
    const double ni = static_cast<double>(n_[i]);
    const double w = ni / (1.0 + ni * lambda);
    const double dev = mean_[i] - mu;
    q += m2_[i] + w * dev * dev;
  }
  return Gls{mu, wsum, q};
}

double OneWayReml::RemlCriterion(double lambda) const {
  const Gls gls = ComputeGls(lambda);
  const double dof = static_cast<double>(total_n_ - 1);
  if (dof <= 0.0 || gls.q <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  double log_terms = 0.0;
  for (size_t i = 0; i < n_.size(); ++i) {
    if (n_[i] == 0) continue;
    log_terms += std::log1p(static_cast<double>(n_[i]) * lambda);
  }
  // -2 l_R profiled over sigma^2 (constants dropped):
  //   (N-1) log(Q/(N-1)) + sum_i log(1 + n_i lambda) + log(sum_i w_i)
  return dof * std::log(gls.q / dof) + log_terms + std::log(gls.weight_sum);
}

Result<OneWayRemlFit> OneWayReml::Fit() const {
  size_t active_groups = 0;
  for (int64_t n : n_) {
    if (n > 0) ++active_groups;
  }
  if (active_groups < 2) {
    return Status::FailedPrecondition("need at least two non-empty groups");
  }
  if (total_n_ < static_cast<int64_t>(active_groups) + 1) {
    return Status::FailedPrecondition("not enough observations");
  }

  // Profile search on log10(lambda), bracketed generously, then compare
  // with the boundary lambda = 0.
  const auto criterion_log = [this](double log_lambda) {
    return RemlCriterion(std::pow(10.0, log_lambda));
  };
  const double best_log = GoldenSection(criterion_log, -8.0, 5.0);
  double lambda = std::pow(10.0, best_log);
  if (RemlCriterion(0.0) <= RemlCriterion(lambda)) lambda = 0.0;

  const Gls gls = ComputeGls(lambda);
  OneWayRemlFit fit;
  fit.lambda = lambda;
  fit.num_observations = total_n_;
  fit.sigma2_residual = gls.q / static_cast<double>(total_n_ - 1);
  fit.sigma2_group = lambda * fit.sigma2_residual;
  fit.mu = gls.mu;
  fit.mu_se = std::sqrt(fit.sigma2_residual / gls.weight_sum);
  fit.reml_criterion = RemlCriterion(lambda);

  fit.group_n = n_;
  fit.group_mean = mean_;
  fit.blup.resize(n_.size(), 0.0);
  fit.blup_se.resize(n_.size(), 0.0);
  fit.shrinkage.resize(n_.size(), 0.0);
  const double var_mu = fit.mu_se * fit.mu_se;
  for (size_t i = 0; i < n_.size(); ++i) {
    if (n_[i] == 0) {
      // Unobserved group: predicted at zero with the prior spread.
      fit.blup_se[i] = std::sqrt(fit.sigma2_group);
      continue;
    }
    const double ni = static_cast<double>(n_[i]);
    const double shrink = ni * lambda / (1.0 + ni * lambda);
    fit.shrinkage[i] = shrink;
    fit.blup[i] = shrink * (mean_[i] - fit.mu);
    // Prediction variance: conditional spread plus the grand-mean
    // uncertainty propagated through the shrinkage.
    const double var =
        fit.sigma2_group * (1.0 - shrink) + shrink * shrink * var_mu;
    fit.blup_se[i] = std::sqrt(std::max(0.0, var));
  }
  return fit;
}

}  // namespace model
}  // namespace taxitrace
