file(REMOVE_RECURSE
  "CMakeFiles/interpolation_test.dir/interpolation_test.cc.o"
  "CMakeFiles/interpolation_test.dir/interpolation_test.cc.o.d"
  "interpolation_test"
  "interpolation_test.pdb"
  "interpolation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpolation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
