// Known-good: obs/ owns wall-clock reads and relaxed tallies; neither
// ambient-entropy, adhoc-timing, nor relaxed-atomic may fire here.

#include "taxitrace/obs/wall_clock.h"

namespace taxitrace {
namespace obs {

long NowNanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

void Bump(std::atomic<long>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace taxitrace
