# Empty compiler generated dependencies file for route_analysis_test.
# This may be replaced when dependencies are built.
