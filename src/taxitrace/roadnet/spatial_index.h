// Uniform-grid spatial index over edge geometry, used by map matching and
// feature attachment to find candidate edges near a GPS point quickly.

#ifndef TAXITRACE_ROADNET_SPATIAL_INDEX_H_
#define TAXITRACE_ROADNET_SPATIAL_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "taxitrace/common/executor.h"
#include "taxitrace/roadnet/road_network.h"

namespace taxitrace {
namespace roadnet {

/// An edge near a query point, with the projection details.
struct EdgeCandidate {
  EdgeId edge = kInvalidEdge;
  geo::PolylineProjection projection;  ///< Nearest point on the edge.
};

/// Probe accounting, readable at any time via SpatialIndex::stats().
/// The counters are sums over deterministic per-query work, so their
/// totals are identical at any thread count.
struct SpatialIndexStats {
  int64_t queries = 0;        ///< Nearby() calls (Nearest() makes several).
  int64_t cells_probed = 0;   ///< grid-cell lookups performed.
  int64_t candidates = 0;     ///< distinct edges distance-checked.
  int64_t hits = 0;           ///< candidates returned within the radius.
  int64_t empty_geometry_edges = 0;  ///< edges dropped at build time.
};

/// Uniform grid over the bounding box of a network's edges. Each cell
/// stores the edges whose geometry passes through it. The index is
/// immutable after construction and holds a pointer to the network, which
/// must outlive it.
///
/// Storage is a dense row-major grid flattened CSR-style
/// (cell_offsets_/cell_edges_), so a query probe is an array load rather
/// than a hash lookup, and per-edge geometry bounds let a query reject
/// most gathered candidates with four comparisons before paying for a
/// polyline projection. Both are pure layout changes: the candidate set,
/// the returned hits, and every stats() counter are identical to the
/// hash-map implementation this replaced.
class SpatialIndex {
 public:
  /// Builds the index. `cell_size_m` trades memory for query precision;
  /// 50 m suits a downtown-scale network.
  explicit SpatialIndex(const RoadNetwork* network, double cell_size_m = 50.0);

  /// All edges with a point within `radius_m` of `p`, one candidate per
  /// edge (its closest projection), sorted by ascending distance.
  std::vector<EdgeCandidate> Nearby(const geo::EnPoint& p,
                                    double radius_m) const;

  /// The closest edge within `max_radius_m`, if any.
  std::optional<EdgeCandidate> Nearest(const geo::EnPoint& p,
                                       double max_radius_m) const;

  /// The network this index was built over.
  [[nodiscard]] const RoadNetwork& network() const { return *network_; }

  /// Snapshot of the probe counters accumulated so far.
  [[nodiscard]] SpatialIndexStats stats() const;

 private:
  struct CellKey {
    int32_t cx;
    int32_t cy;
    friend bool operator==(const CellKey&, const CellKey&) = default;
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      return static_cast<size_t>(
          static_cast<uint64_t>(static_cast<uint32_t>(k.cx)) * 0x9E3779B1U ^
          (static_cast<uint64_t>(static_cast<uint32_t>(k.cy)) << 17));
    }
  };

  [[nodiscard]] CellKey KeyFor(const geo::EnPoint& p) const;

  // Query counters live behind a shared_ptr so the index stays
  // copyable; queries batch their increments (a handful of relaxed
  // atomic adds per call) to keep the hot path unchanged.
  struct AtomicStats {
    std::atomic<int64_t> queries{0};
    std::atomic<int64_t> cells_probed{0};
    std::atomic<int64_t> candidates{0};
    std::atomic<int64_t> hits{0};
  };

  const RoadNetwork* network_;
  double cell_size_m_;
  // Dense grid over [grid_min_cx_, grid_min_cx_ + grid_cols_) x
  // [grid_min_cy_, grid_min_cy_ + grid_rows_): cell (cx, cy) owns the
  // edge ids cell_edges_[cell_offsets_[i] .. cell_offsets_[i + 1]) with
  // i = (cy - grid_min_cy_) * grid_cols_ + (cx - grid_min_cx_).
  int32_t grid_min_cx_ = 0;
  int32_t grid_min_cy_ = 0;
  int32_t grid_cols_ = 0;
  int32_t grid_rows_ = 0;
  std::vector<int32_t> cell_offsets_;
  std::vector<EdgeId> cell_edges_;
  // Bounding box of each edge's geometry, indexed by edge id. The box
  // encloses the polyline, so a point farther than `r` from the box is
  // farther than `r` from the edge — a safe pre-projection reject.
  std::vector<geo::Bbox> edge_bounds_;
  // Per-worker query scratch: the gathered-candidate list and a
  // generation-stamped seen marker per edge (same trick as the router's
  // SearchScratch), so a query deduplicates with one array read per
  // gathered id and allocates nothing in steady state. Purely an
  // execution detail — the deduplicated set is what the old per-query
  // sort produced, and the output is fully re-ordered afterwards.
  struct QueryScratch {
    std::vector<EdgeId> gathered;
    std::vector<uint32_t> seen_stamp;
    uint32_t generation = 0;
  };
  std::shared_ptr<WorkerLocal<QueryScratch>> scratch_;
  std::shared_ptr<AtomicStats> query_stats_;
  int64_t empty_geometry_edges_ = 0;
};

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_SPATIAL_INDEX_H_
