#include <gtest/gtest.h>

#include <cmath>

#include "taxitrace/odselect/od_gate.h"
#include "taxitrace/odselect/transition_extractor.h"
#include "taxitrace/odselect/transition_filter.h"

namespace taxitrace {
namespace odselect {
namespace {

using geo::EnPoint;

const geo::LatLon kOrigin{65.0121, 25.4682};

// Gate road running south->north along x = 0 from y = -100 to y = 100
// (inbound = northward).
OdGate NorthGate(const OdGateOptions& options = {}) {
  return OdGate("N", geo::Polyline({{0, -100}, {0, 100}}), options);
}

trace::RoutePoint PointAt(const geo::LocalProjection& proj,
                          const EnPoint& p, int64_t id, double t,
                          double speed = 30.0) {
  trace::RoutePoint out;
  out.point_id = id;
  out.trip_id = 1;
  out.timestamp_s = t;
  out.position = proj.Inverse(p);
  out.speed_kmh = speed;
  return out;
}

// A trip driving through the given local-frame waypoints at 10 s spacing.
trace::Trip TripThrough(const geo::LocalProjection& proj,
                        const std::vector<EnPoint>& waypoints) {
  trace::Trip trip;
  trip.trip_id = 42;
  trip.car_id = 1;
  for (size_t i = 0; i < waypoints.size(); ++i) {
    trip.points.push_back(
        PointAt(proj, waypoints[i], static_cast<int64_t>(i) + 1,
                10.0 * static_cast<double>(i)));
  }
  return trip;
}

// --- OdGate ----------------------------------------------------------------

TEST(OdGateTest, PolygonCoversThickenedRoad) {
  const OdGate gate = NorthGate();
  EXPECT_TRUE(gate.polygon().Contains(EnPoint{0, 0}));
  EXPECT_TRUE(gate.polygon().Contains(EnPoint{55, 0}));   // within 60 m
  EXPECT_FALSE(gate.polygon().Contains(EnPoint{80, 0}));
  EXPECT_FALSE(gate.polygon().Contains(EnPoint{0, 200}));
}

TEST(OdGateTest, InboundAlongRoadAxis) {
  const OdGate gate = NorthGate();
  EXPECT_EQ(gate.Classify(EnPoint{10, -40}, EnPoint{10, 10}),
            OdGate::Crossing::kInbound);
}

TEST(OdGateTest, OutboundAgainstRoadAxis) {
  const OdGate gate = NorthGate();
  EXPECT_EQ(gate.Classify(EnPoint{10, 10}, EnPoint{10, -40}),
            OdGate::Crossing::kOutbound);
}

TEST(OdGateTest, PerpendicularCrossingRejected) {
  const OdGate gate = NorthGate();
  EXPECT_EQ(gate.Classify(EnPoint{-80, 0}, EnPoint{80, 0}),
            OdGate::Crossing::kNone);
}

TEST(OdGateTest, DiagonalWithinWindowAccepted) {
  OdGateOptions options;
  options.max_angle_deg = 35.0;
  const OdGate gate = NorthGate(options);
  // 30 degrees off the axis: accepted.
  EXPECT_EQ(gate.Classify(EnPoint{0, -30},
                          EnPoint{30 * std::tan(30 * M_PI / 180), 0}),
            OdGate::Crossing::kInbound);
  // 45 degrees off: rejected.
  EXPECT_EQ(gate.Classify(EnPoint{0, 0}, EnPoint{50, 50}),
            OdGate::Crossing::kNone);
}

TEST(OdGateTest, MovementOutsidePolygonIgnored) {
  const OdGate gate = NorthGate();
  EXPECT_EQ(gate.Classify(EnPoint{500, 0}, EnPoint{500, 50}),
            OdGate::Crossing::kNone);
}

TEST(OdGateTest, ZeroLengthMovementIgnored) {
  const OdGate gate = NorthGate();
  EXPECT_EQ(gate.Classify(EnPoint{0, 0}, EnPoint{0, 0}),
            OdGate::Crossing::kNone);
}

TEST(OdGateTest, DistanceToRoad) {
  const OdGate gate = NorthGate();
  EXPECT_NEAR(gate.DistanceToRoad(EnPoint{30, 0}), 30.0, 1e-9);
  EXPECT_NEAR(gate.DistanceToRoad(EnPoint{0, 150}), 50.0, 1e-9);
}

// --- TransitionExtractor -------------------------------------------------------

class ExtractorTest : public testing::Test {
 protected:
  ExtractorTest()
      : proj_(kOrigin),
        extractor_(
            {
                // Gate A: vertical road at x = 0, inbound north.
                OdGate("A", geo::Polyline({{0, -1000}, {0, -800}})),
                // Gate B: vertical road at x = 0 up top, inbound south.
                OdGate("B", geo::Polyline({{0, 1000}, {0, 800}})),
            },
            proj_) {}

  geo::LocalProjection proj_;
  TransitionExtractor extractor_;
};

TEST_F(ExtractorTest, DetectsSimpleTransition) {
  // Drive from south of A straight north past B: inbound at A (heading
  // north = A's inbound), outbound at B (B's inbound is south).
  std::vector<EnPoint> waypoints;
  for (double y = -1100; y <= 1100; y += 100) {
    waypoints.push_back(EnPoint{5, y});
  }
  const trace::Trip trip = TripThrough(proj_, waypoints);
  const TripGateAnalysis analysis = extractor_.Analyze(trip);
  EXPECT_TRUE(analysis.crosses_gate_at_angle);
  EXPECT_EQ(analysis.distinct_gates_crossed, 2);
  ASSERT_EQ(analysis.transitions.size(), 1u);
  const Transition& t = analysis.transitions[0];
  EXPECT_EQ(t.origin, "A");
  EXPECT_EQ(t.destination, "B");
  EXPECT_EQ(t.Label(), "A-B");
  EXPECT_EQ(t.segment.trip_id, trip.trip_id);
  EXPECT_GE(t.segment.points.size(), 15u);
}

TEST_F(ExtractorTest, ReverseDriveGivesReverseTransition) {
  std::vector<EnPoint> waypoints;
  for (double y = 1100; y >= -1100; y -= 100) {
    waypoints.push_back(EnPoint{5, y});
  }
  const TripGateAnalysis analysis =
      extractor_.Analyze(TripThrough(proj_, waypoints));
  ASSERT_EQ(analysis.transitions.size(), 1u);
  EXPECT_EQ(analysis.transitions[0].Label(), "B-A");
}

TEST_F(ExtractorTest, TripTouchingOneGateHasNoTransition) {
  std::vector<EnPoint> waypoints;
  for (double y = -1100; y <= 0; y += 100) {
    waypoints.push_back(EnPoint{5, y});
  }
  const TripGateAnalysis analysis =
      extractor_.Analyze(TripThrough(proj_, waypoints));
  EXPECT_TRUE(analysis.crosses_gate_at_angle);
  EXPECT_EQ(analysis.distinct_gates_crossed, 1);
  EXPECT_TRUE(analysis.transitions.empty());
}

TEST_F(ExtractorTest, TripAwayFromGatesDetectsNothing) {
  std::vector<EnPoint> waypoints;
  for (double y = -500; y <= 500; y += 100) {
    waypoints.push_back(EnPoint{400, y});
  }
  const TripGateAnalysis analysis =
      extractor_.Analyze(TripThrough(proj_, waypoints));
  EXPECT_FALSE(analysis.crosses_gate_at_angle);
  EXPECT_EQ(analysis.distinct_gates_crossed, 0);
}

TEST_F(ExtractorTest, ConsecutiveDetectionsCollapse) {
  // Many closely spaced points inside gate A's polygon: one crossing.
  std::vector<EnPoint> waypoints;
  for (double y = -1050; y <= -750; y += 20) {
    waypoints.push_back(EnPoint{0, y});
  }
  const trace::Trip trip = TripThrough(proj_, waypoints);
  const std::vector<GateCrossing> crossings =
      extractor_.FindCrossings(trip);
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_EQ(crossings[0].direction, OdGate::Crossing::kInbound);
  EXPECT_GT(crossings[0].last_point_index, crossings[0].point_index);
}

TEST_F(ExtractorTest, NewInboundSupersedesPending) {
  // A (inbound) ... A again (inbound) ... B (outbound): the transition
  // starts at the later A crossing.
  std::vector<EnPoint> waypoints;
  for (double y = -1100; y <= -700; y += 100) {
    waypoints.push_back(EnPoint{5, y});  // first A crossing
  }
  for (double y = -700; y >= -1100; y -= 100) {
    waypoints.push_back(EnPoint{150, y});  // loop back outside the gate
  }
  for (double y = -1100; y <= 1100; y += 100) {
    waypoints.push_back(EnPoint{5, y});  // second A crossing, then B
  }
  const TripGateAnalysis analysis =
      extractor_.Analyze(TripThrough(proj_, waypoints));
  ASSERT_EQ(analysis.transitions.size(), 1u);
  // The transition's first point is from the second pass (timestamp of
  // the second approach).
  EXPECT_GT(analysis.transitions[0].segment.StartTime(), 100.0);
}

TEST_F(ExtractorTest, TooShortTripIgnored) {
  trace::Trip trip;
  trip.points.push_back(PointAt(proj_, EnPoint{0, 0}, 1, 0.0));
  EXPECT_TRUE(extractor_.FindCrossings(trip).empty());
}

// --- Transition filters -----------------------------------------------------------

TEST(TransitionFilterTest, DirectionSelection) {
  Transition t;
  t.origin = "T";
  t.destination = "S";
  TransitionFilterOptions options;
  EXPECT_TRUE(IsSelectedDirection(t, options));
  t.destination = "Q";
  EXPECT_FALSE(IsSelectedDirection(t, options));
  options.directions = {"T-Q"};
  EXPECT_TRUE(IsSelectedDirection(t, options));
}

TEST(TransitionFilterTest, CentralAreaFraction) {
  const geo::LocalProjection proj(kOrigin);
  const geo::Polygon central =
      geo::MakeRectangle(geo::Bbox{-100, -100, 100, 100});
  const geo::Bbox region{-1000, -1000, 1000, 1000};

  Transition mostly_inside;
  for (int i = 0; i < 10; ++i) {
    const double y = -145.0 + 30.0 * i;  // 6 of 10 points clearly inside
    mostly_inside.segment.points.push_back(
        PointAt(proj, EnPoint{0, y}, i + 1, 10.0 * i));
  }
  TransitionFilterOptions options;
  options.central_fraction = 0.55;
  EXPECT_TRUE(IsWithinCentralArea(mostly_inside, central, region, proj,
                                  options));
  options.central_fraction = 0.75;
  EXPECT_FALSE(IsWithinCentralArea(mostly_inside, central, region, proj,
                                   options));
}

TEST(TransitionFilterTest, LeavingRegionFails) {
  const geo::LocalProjection proj(kOrigin);
  const geo::Polygon central =
      geo::MakeRectangle(geo::Bbox{-100, -100, 100, 100});
  const geo::Bbox region{-500, -500, 500, 500};
  Transition wanderer;
  wanderer.segment.points.push_back(PointAt(proj, EnPoint{0, 0}, 1, 0));
  wanderer.segment.points.push_back(
      PointAt(proj, EnPoint{900, 0}, 2, 10));  // outside the region
  EXPECT_FALSE(IsWithinCentralArea(wanderer, central, region, proj, {}));
}

TEST(TransitionFilterTest, EmptyTransitionFails) {
  const geo::LocalProjection proj(kOrigin);
  const geo::Polygon central =
      geo::MakeRectangle(geo::Bbox{-100, -100, 100, 100});
  EXPECT_FALSE(IsWithinCentralArea(Transition{}, central,
                                   geo::Bbox{-1, -1, 1, 1}, proj, {}));
}

TEST(TransitionFilterTest, EndpointPostFilter) {
  const OdGate origin("O", geo::Polyline({{0, 0}, {0, 100}}));
  const OdGate dest("D", geo::Polyline({{1000, 0}, {1000, 100}}));
  TransitionFilterOptions options;
  options.endpoint_max_distance_m = 45.0;

  const geo::Polyline good({{10, 50}, {500, 50}, {990, 50}});
  EXPECT_TRUE(PassesEndpointPostFilter(good, origin, dest, options));

  const geo::Polyline bad_start({{200, 50}, {990, 50}});
  EXPECT_FALSE(PassesEndpointPostFilter(bad_start, origin, dest, options));

  const geo::Polyline bad_end({{10, 50}, {700, 50}});
  EXPECT_FALSE(PassesEndpointPostFilter(bad_end, origin, dest, options));

  EXPECT_FALSE(
      PassesEndpointPostFilter(geo::Polyline(), origin, dest, options));
}

}  // namespace
}  // namespace odselect
}  // namespace taxitrace
