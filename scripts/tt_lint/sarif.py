"""SARIF 2.1.0 serialization, for GitHub code-scanning PR annotations.

Only the subset GitHub consumes is emitted: tool.driver with a rule
catalogue, one result per finding with a physical location relative to
SRCROOT. Validated structurally by the lint self-test corpus run.
"""

from __future__ import annotations

import json

from . import __version__
from .engine import Finding

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")
_INFO_URI = "https://github.com/taxitrace/taxitrace"
_HELP_URI = (_INFO_URI +
             "/blob/main/docs/ARCHITECTURE.md#static-analysis")


def to_sarif(findings: list[Finding], catalogue) -> str:
    """catalogue: [(rule_id, short_description)]."""
    rules = [
        {
            "id": rule_id,
            "name": _pascal(rule_id),
            "shortDescription": {"text": short},
            "helpUri": _HELP_URI,
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, short in catalogue
    ]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": f.line,
                        "startColumn": max(1, f.col),
                    },
                },
            }],
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        results.append(result)
    doc = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "tt_lint",
                    "version": __version__,
                    "informationUri": _INFO_URI,
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///"},
            },
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2) + "\n"


def _pascal(rule_id: str) -> str:
    return "".join(part.capitalize() for part in rule_id.split("-"))
