#include <gtest/gtest.h>

#include "taxitrace/roadnet/router.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/driver_model.h"
#include "taxitrace/synth/pedestrian_model.h"
#include "taxitrace/trace/time_util.h"

namespace taxitrace {
namespace synth {
namespace {

const CityMap& TestMap() {
  static const CityMap* map = [] {
    auto result = GenerateCityMap();
    return new CityMap(std::move(result).value());
  }();
  return *map;
}

TEST(PedestrianDiurnalTest, MiddayBusierThanNight) {
  EXPECT_GT(PedestrianDiurnalCurve(13.0, false),
            PedestrianDiurnalCurve(3.0, false));
  EXPECT_GT(PedestrianDiurnalCurve(13.0, false), 1.0);
  EXPECT_LT(PedestrianDiurnalCurve(3.0, false), 0.3);
}

TEST(PedestrianDiurnalTest, WeekendEveningPeak) {
  EXPECT_GT(PedestrianDiurnalCurve(20.0, true),
            PedestrianDiurnalCurve(20.0, false));
  EXPECT_LT(PedestrianDiurnalCurve(8.0, true),
            PedestrianDiurnalCurve(8.0, false));  // late weekend mornings
}

TEST(PedestrianDiurnalTest, WrapAround) {
  EXPECT_DOUBLE_EQ(PedestrianDiurnalCurve(25.0, false),
                   PedestrianDiurnalCurve(1.0, false));
  EXPECT_DOUBLE_EQ(PedestrianDiurnalCurve(-1.0, false),
                   PedestrianDiurnalCurve(23.0, false));
}

TEST(PedestrianModelTest, DeterministicAndBounded) {
  const PedestrianModel a(5, TestMap().hotspots, 30);
  const PedestrianModel b(5, TestMap().hotspots, 30);
  for (int d = 0; d < 30; d += 3) {
    const double t = d * trace::kSecondsPerDay + 13 * 3600.0;
    EXPECT_EQ(a.ActivityAt(0, t), b.ActivityAt(0, t));
    EXPECT_GE(a.ActivityAt(0, t), 0.0);
    EXPECT_LE(a.ActivityAt(0, t), 2.1);
  }
}

TEST(PedestrianModelTest, CrowdIntensityRespectsGeometry) {
  const PedestrianModel model(7, TestMap().hotspots, 30);
  const Hotspot& h = TestMap().hotspots.front();
  const double midday = 13.0 * 3600.0;
  EXPECT_GT(model.CrowdIntensityAt(h.center, midday), 0.2);
  EXPECT_DOUBLE_EQ(
      model.CrowdIntensityAt(
          geo::EnPoint{h.center.x + h.radius_m + 100, h.center.y},
          midday),
      0.0);
  EXPECT_LE(model.CrowdIntensityAt(h.center, midday), 1.0);
}

TEST(PedestrianModelTest, MiddayCrowdierThanNight) {
  const PedestrianModel model(9, TestMap().hotspots, 30);
  const Hotspot& h = TestMap().hotspots.front();
  EXPECT_GT(model.CrowdIntensityAt(h.center, 13.0 * 3600.0),
            model.CrowdIntensityAt(h.center, 3.0 * 3600.0));
}

TEST(PedestrianModelTest, MeanDaytimeActivityNearNominal) {
  const PedestrianModel model(11, TestMap().hotspots, 60);
  const double mean = model.MeanDaytimeActivity(0);
  EXPECT_GT(mean, 0.7);
  EXPECT_LT(mean, 1.5);
  EXPECT_DOUBLE_EQ(model.MeanDaytimeActivity(999), 0.0);
}

TEST(PedestrianModelTest, DriverSlowsMoreAtPeakHours) {
  // Drive the same hotspot-crossing path at 13:00 vs 03:00: the midday
  // crowd should cost time (averaged over several stochastic runs).
  const WeatherModel weather(3, 30);
  const PedestrianModel pedestrians(13, TestMap().hotspots, 30);
  const DriverModel driver(&TestMap(), &weather, DriverOptions{},
                           &pedestrians);
  const roadnet::Router router(&TestMap().network);
  const auto s = TestMap().FindGate("S").value()->terminal_vertex;
  const auto t = TestMap().FindGate("T").value()->terminal_vertex;
  const roadnet::Path path = router.ShortestPath(s, t).value();

  double midday_total = 0.0, night_total = 0.0;
  Rng rng_a(21), rng_b(21);
  for (int trial = 0; trial < 8; ++trial) {
    const double day = trial * trace::kSecondsPerDay;
    const auto midday =
        driver.Drive(path, day + 13.0 * 3600.0, 1.0, &rng_a);
    const auto night =
        driver.Drive(path, day + 3.0 * 3600.0, 1.0, &rng_b);
    midday_total += midday.back().t_s - (day + 13.0 * 3600.0);
    night_total += night.back().t_s - (day + 3.0 * 3600.0);
  }
  EXPECT_GT(midday_total, night_total);
}

TEST(PedestrianModelTest, NullModelFallsBackToStaticProfile) {
  const WeatherModel weather(3, 30);
  const DriverModel driver(&TestMap(), &weather);
  const Hotspot& h = TestMap().hotspots.front();
  // Static fallback: time-independent.
  EXPECT_DOUBLE_EQ(driver.CrowdIntensity(h.center, 3.0 * 3600.0),
                   driver.CrowdIntensity(h.center, 13.0 * 3600.0));
  EXPECT_GT(driver.CrowdIntensity(h.center, 0.0), 0.0);
}

}  // namespace
}  // namespace synth
}  // namespace taxitrace
