"""The repo-idiom rules, ported from the original single-line regexes
onto the shared tokenizer. Semantics match the legacy linter; the token
stream removes the old false-negative classes (calls split across
lines, patterns inside strings or comments)."""

from __future__ import annotations

import re

from ..cxx import find_range_fors, match_forward, statement_start
from ..engine import RepoContext, SourceFile
from ..tokenizer import ID, PP, PUNCT
from .base import FileRule, path_is_under

_EXECUTOR_FILES = (
    "src/taxitrace/common/executor.h",
    "src/taxitrace/common/executor.cc",
)
_CHECK_HEADER = "src/taxitrace/common/check.h"

_INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')

_SEARCH_STATE_NAMES = frozenset({
    "dist", "prev", "prev_edge", "prev_vertex", "visited", "settled",
    "seen", "seen_stamp", "stamp",
})


def _std_seq(tokens, i, names) -> str | None:
    """If tokens[i:] spell `std::<name>` with name in names, return it."""
    if (tokens[i].kind == ID and tokens[i].value == "std"
            and i + 2 < len(tokens)
            and tokens[i + 1].kind == PUNCT
            and tokens[i + 1].value == "::"
            and tokens[i + 2].kind == ID
            and tokens[i + 2].value in names):
        return tokens[i + 2].value
    return None


class BareAssert(FileRule):
    name = "bare-assert"
    short = ("bare assert() in library code; asserts compile away in "
             "Release, use TT_CHECK / TT_DCHECK")

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        if sf.rel == _CHECK_HEADER:
            return
        toks = sf.tokens
        for i, t in enumerate(toks):
            if (t.kind == ID and t.value == "assert"
                    and i + 1 < len(toks)
                    and toks[i + 1].value == "("):
                yield self.finding(
                    sf, t.line,
                    "bare assert() in library code; use TT_CHECK or "
                    "TT_DCHECK (taxitrace/common/check.h)", t.col)


class RawThread(FileRule):
    name = "raw-thread"
    short = ("raw std::thread/std::async outside the Executor breaks "
             "the determinism contract")

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        if sf.rel in _EXECUTOR_FILES:
            return
        toks = sf.tokens
        for i in range(len(toks)):
            name = _std_seq(toks, i, ("thread", "jthread", "async"))
            if name is not None:
                yield self.finding(
                    sf, toks[i].line,
                    f"raw std::{name}; use the Executor "
                    "(taxitrace/common/executor.h) so parallel stages "
                    "stay deterministic", toks[i].col)


class AdhocTiming(FileRule):
    name = "adhoc-timing"
    short = ("std::chrono outside the executor and obs/; wall-clock "
             "measurement goes through obs::StageSpan")

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        if sf.rel in _EXECUTOR_FILES \
                or path_is_under(sf.rel, ("src/taxitrace/obs/",)):
            return
        toks = sf.tokens
        for i in range(len(toks)):
            if _std_seq(toks, i, ("chrono",)) is not None:
                yield self.finding(
                    sf, toks[i].line,
                    "ad-hoc std::chrono timing; use obs::StageSpan "
                    "(taxitrace/obs/stage_span.h) so the cost shows up "
                    "in the stage trace", toks[i].col)


class LinearReset(FileRule):
    name = "linear-reset"
    short = ("O(|V|) per-search reset of search state outside a "
             "generation-stamped scratch type")

    _MSG = ("O(|V|) per-search reset of search state; keep it in a "
            "generation-stamped scratch "
            "(taxitrace/roadnet/search_scratch.h) so each search costs "
            "O(visited)")

    _RNG_MSG = ("per-call full-vector RNG refill; derive each element "
                "lazily from MixSeed(...) (taxitrace/common/rng.h) so a "
                "call costs O(elements actually read)")

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        if "scratch" in sf.path.name:
            return
        toks = sf.tokens
        n = len(toks)
        yield from self._check_rng_refills(sf, toks)
        for i, t in enumerate(toks):
            if t.kind != ID:
                continue
            base = t.value.rstrip("_")
            # dist_.assign(...) / prev->assign(...)
            if base in _SEARCH_STATE_NAMES and i + 3 < n \
                    and toks[i + 1].kind == PUNCT \
                    and toks[i + 1].value in (".", "->") \
                    and toks[i + 2].kind == ID \
                    and toks[i + 2].value == "assign" \
                    and toks[i + 3].value == "(":
                if not self._statement_mentions_scratch(toks, i):
                    yield self.finding(sf, t.line, self._MSG, t.col)
            # std::fill(dist.begin(), ...)
            if t.value == "fill" and i >= 2 \
                    and toks[i - 1].value == "::" \
                    and toks[i - 2].value == "std" \
                    and i + 1 < n and toks[i + 1].value == "(":
                close = match_forward(toks, i + 1)
                args = toks[i + 2:close]
                if any(a.kind == ID
                       and a.value.rstrip("_") in _SEARCH_STATE_NAMES
                       for a in args) \
                        and not any(a.kind == ID
                                    and "scratch" in a.value.lower()
                                    for a in args):
                    yield self.finding(sf, t.line, self._MSG, t.col)

    def _check_rng_refills(self, sf: SourceFile, toks):
        """A range-for that reassigns every element of a non-scratch
        vector from an RNG is the |E|/|V|-sized cousin of the assign()
        reset: the whole buffer is refilled per call even though the
        caller touches a fraction of it. The sanctioned shapes are a
        scratch-owned buffer (reused, not reallocated) or — better — a
        counter-derived draw per element at its point of use."""
        for rf in find_range_fors(toks):
            decl = toks[rf.decl[0]:rf.decl[1]]
            # Only a mutable reference loop variable can refill the
            # container; by-value and const loops read, never reset.
            if not any(t.kind == PUNCT and t.value == "&" for t in decl):
                continue
            if any(t.kind == ID and t.value == "const" for t in decl):
                continue
            if not rf.loop_vars:
                continue
            var = rf.loop_vars[-1]
            # Scratch-owned buffers are the sanctioned reuse home.
            if any(t.kind == ID and "scratch" in t.value.lower()
                   for t in toks[rf.range_expr[0]:rf.range_expr[1]]):
                continue
            a, b = rf.body
            for k in range(a, b):
                t = toks[k]
                if t.kind != ID or t.value != var:
                    continue
                if k + 1 >= b or toks[k + 1].kind != PUNCT \
                        or toks[k + 1].value != "=":
                    continue
                stmt_end = k
                while stmt_end < b and toks[stmt_end].value != ";":
                    stmt_end += 1
                stmt = toks[statement_start(toks, k):stmt_end]
                if any(s.kind == ID
                       and ("rng" in s.value.lower()
                            or "random" in s.value.lower())
                       for s in stmt):
                    yield self.finding(sf, toks[rf.for_index].line,
                                       self._RNG_MSG,
                                       toks[rf.for_index].col)
                    break

    @staticmethod
    def _statement_mentions_scratch(toks, i) -> bool:
        a = statement_start(toks, i)
        for t in toks[a:i]:
            if t.kind == ID and "scratch" in t.value.lower():
                return True
        return False


class ResultOkStatus(FileRule):
    name = "result-ok-status"
    short = ("Result constructed from Status::OK(); a Result holds a "
             "value or a non-OK status")

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        toks = sf.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != ID or t.value != "Result":
                continue
            if i + 1 >= n or toks[i + 1].value != "<":
                continue
            # Scan to the end of this statement for Status::OK(. A `{`
            # at depth 0 opens a function/lambda body — `Result<T>
            # Foo(...) {`, `) const {`, `-> Status {` — and must not
            # leak body contents into the declaration; only a braced
            # initializer (`Result<T>{...}`, `= {...}`) continues.
            j = i
            depth = 0
            while j < n:
                v = toks[j].value
                if toks[j].kind == PUNCT:
                    if v == "{" and depth == 0 and j > 0 \
                            and toks[j - 1].value not in (">", "=", ",",
                                                          "(", "return"):
                        break
                    if v in "([{":
                        depth += 1
                    elif v in ")]}":
                        depth -= 1
                        if depth < 0:
                            break
                    elif v == ";" and depth <= 0:
                        break
                if toks[j].kind == ID and v == "Status" and j + 3 < n \
                        and toks[j + 1].value == "::" \
                        and toks[j + 2].value == "OK" \
                        and toks[j + 3].value == "(":
                    yield self.finding(
                        sf, toks[j].line,
                        "Result constructed from Status::OK(); a Result "
                        "holds a value or a non-OK status", toks[j].col)
                    break
                j += 1


class IncludePath(FileRule):
    name = "include-path"
    short = ('#include "..." must use the canonical taxitrace/... '
             "path form")

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        for t in sf.tokens:
            if t.kind != PP:
                continue
            m = _INCLUDE_RE.search(t.value)
            if m and not m.group(1).startswith("taxitrace/"):
                yield self.finding(
                    sf, t.line,
                    f'#include "{m.group(1)}" does not use the '
                    "taxitrace/... path form", t.col)


class IgnoredStatus(FileRule):
    name = "ignored-status"
    short = ("return value of a Status-returning function is ignored")

    _WRAPPERS = frozenset({
        "TT_CHECK_OK", "RETURN_IF_ERROR", "TAXITRACE_RETURN_IF_ERROR",
        "TAXITRACE_ASSIGN_OR_RETURN", "EXPECT_OK", "ASSERT_OK",
    })

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        toks = sf.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != ID or t.value not in ctx.status_fns:
                continue
            if i + 1 >= n or toks[i + 1].value != "(":
                continue
            close = match_forward(toks, i + 1)
            if close + 1 >= n or toks[close + 1].value != ";":
                continue  # not a bare call statement
            prev = toks[i - 1] if i > 0 else None
            if prev is not None:
                if prev.kind == ID:
                    continue  # `Status Name(` is a declaration
                if prev.kind == PUNCT and prev.value not in (
                        ".", "->", "::", ";", "{", "}", ")"):
                    continue  # mid-expression
            a = statement_start(toks, i)
            stmt = toks[a:close + 1]
            if any(s.kind == PUNCT and s.value == "=" for s in stmt):
                continue
            if any(s.kind == ID and (s.value in ("return", "void")
                                     or s.value in self._WRAPPERS
                                     or "RETURN_IF_ERROR" in s.value)
                   for s in stmt):
                continue
            yield self.finding(
                sf, t.line,
                f"return value of Status-returning {t.value}() is "
                "ignored", t.col)


_TILED_ACCESSOR_LAYER = (
    "src/taxitrace/roadnet/road_network.h",
    "src/taxitrace/roadnet/road_network.cc",
    "src/taxitrace/roadnet/tile.h",
)


class FlatGraphIndex(FileRule):
    """The tiled graph storage keeps vertices/edges in per-tile vectors
    whose position is NOT the public id (ids pack tile + local bits).
    Subscripting those vectors — `tile.vertices[i]`, `edges_[i]`, or
    the retired flat accessors `net.vertices()[i]` — outside the
    accessor layer silently conflates ordinals with packed ids and
    breaks the moment a second tile appears. Everything else must go
    through vertex()/edge(), VertexIdAt()/EdgeIdAt(), or ForEach*."""

    name = "flat-graph-index"
    short = ("graph vertex/edge storage subscripted outside the tiled "
             "accessor layer; use vertex()/edge()/ForEach* instead")

    _MEMBERS = frozenset({"vertices", "edges"})
    _LEGACY = frozenset({"vertices_", "edges_"})

    def check_file(self, sf: SourceFile, ctx: RepoContext):
        if path_is_under(sf.rel, _TILED_ACCESSOR_LAYER):
            return
        toks = sf.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != ID:
                continue
            # Legacy flat members: `vertices_[i]` anywhere outside the
            # layer, member access or not.
            if t.value in self._LEGACY:
                if i + 1 < n and toks[i + 1].value == "[":
                    yield self.finding(
                        sf, t.line,
                        f"direct subscript of flat graph storage "
                        f"{t.value}[...]; go through the tiled "
                        "accessor layer", t.col)
                continue
            if t.value not in self._MEMBERS:
                continue
            prev = toks[i - 1] if i > 0 else None
            if prev is None or prev.kind != PUNCT \
                    or prev.value not in (".", "->"):
                continue
            # `x.vertices[i]` — a tile's storage vector subscripted.
            if i + 1 < n and toks[i + 1].value == "[":
                yield self.finding(
                    sf, t.line,
                    f"tile storage vector .{t.value}[...] subscripted "
                    "outside the tiled accessor layer", t.col)
                continue
            # `x.vertices()[i]` — the retired flat accessor shape.
            if i + 3 < n and toks[i + 1].value == "(" \
                    and toks[i + 2].value == ")" \
                    and toks[i + 3].value == "[":
                yield self.finding(
                    sf, t.line,
                    f"flat accessor .{t.value}()[...] subscripted; "
                    "use vertex()/edge() with a packed id", t.col)
