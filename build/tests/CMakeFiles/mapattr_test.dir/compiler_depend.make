# Empty compiler generated dependencies file for mapattr_test.
# This may be replaced when dependencies are built.
