file(REMOVE_RECURSE
  "libtaxitrace_analysis.a"
)
