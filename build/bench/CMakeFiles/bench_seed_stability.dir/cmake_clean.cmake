file(REMOVE_RECURSE
  "CMakeFiles/bench_seed_stability.dir/bench_seed_stability.cc.o"
  "CMakeFiles/bench_seed_stability.dir/bench_seed_stability.cc.o.d"
  "bench_seed_stability"
  "bench_seed_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seed_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
