#include "taxitrace/clean/order_repair.h"

#include <algorithm>

namespace taxitrace {
namespace clean {
namespace {

bool SameOrder(const std::vector<trace::RoutePoint>& a,
               const std::vector<trace::RoutePoint>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].point_id != b[i].point_id) return false;
  }
  return true;
}

// Re-aligns the id and timestamp fields so both increase monotonically
// along the sequence, preserving their value multisets ("all the
// corresponding properties are aligned with respect to the correct
// sequence").
void AlignMonotone(std::vector<trace::RoutePoint>* points) {
  std::vector<int64_t> ids;
  std::vector<double> times;
  ids.reserve(points->size());
  times.reserve(points->size());
  for (const trace::RoutePoint& p : *points) {
    ids.push_back(p.point_id);
    times.push_back(p.timestamp_s);
  }
  std::sort(ids.begin(), ids.end());
  std::sort(times.begin(), times.end());
  for (size_t i = 0; i < points->size(); ++i) {
    (*points)[i].point_id = ids[i];
    (*points)[i].timestamp_s = times[i];
  }
}

}  // namespace

ChosenOrder RepairPointOrder(std::vector<trace::RoutePoint>* points) {
  if (points->size() < 2) return ChosenOrder::kConsistent;

  std::vector<trace::RoutePoint> by_id = *points;
  std::stable_sort(by_id.begin(), by_id.end(),
                   [](const trace::RoutePoint& a, const trace::RoutePoint& b) {
                     return a.point_id < b.point_id;
                   });
  std::vector<trace::RoutePoint> by_time = *points;
  std::stable_sort(by_time.begin(), by_time.end(),
                   [](const trace::RoutePoint& a, const trace::RoutePoint& b) {
                     return a.timestamp_s < b.timestamp_s;
                   });

  if (SameOrder(by_id, by_time)) {
    *points = std::move(by_id);  // canonical, already consistent
    return ChosenOrder::kConsistent;
  }
  const double len_id = trace::PathLengthMeters(by_id);
  const double len_time = trace::PathLengthMeters(by_time);
  if (len_id <= len_time) {
    *points = std::move(by_id);
    AlignMonotone(points);
    return ChosenOrder::kById;
  }
  *points = std::move(by_time);
  AlignMonotone(points);
  return ChosenOrder::kByTimestamp;
}

ChosenOrder RepairTripOrder(trace::Trip* trip, OrderRepairStats* stats) {
  const ChosenOrder order = RepairPointOrder(&trip->points);
  trip->RecomputeTotals();
  if (stats != nullptr) {
    switch (order) {
      case ChosenOrder::kConsistent:
        ++stats->trips_consistent;
        break;
      case ChosenOrder::kById:
        ++stats->trips_repaired_by_id;
        break;
      case ChosenOrder::kByTimestamp:
        ++stats->trips_repaired_by_timestamp;
        break;
    }
  }
  return order;
}

}  // namespace clean
}  // namespace taxitrace
