// Fixed-size worker pool behind every parallel stage in the library.
//
// All concurrency in taxitrace flows through this executor (the repo
// linter bans raw std::thread / std::async elsewhere), which keeps the
// threading model auditable in one place. The contract the pipeline
// relies on: an Executor never changes *what* is computed, only *where*
// — callers shard their work into order-independent units, run them via
// ParallelFor, and merge the per-unit outputs in index order, so results
// are byte-identical at any thread count, including the serial fallback.

#ifndef TAXITRACE_COMMON_EXECUTOR_H_
#define TAXITRACE_COMMON_EXECUTOR_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "taxitrace/common/status.h"

namespace taxitrace {

/// Upper bound on pool workers (enforced by the Executor constructor).
/// WorkerLocal sizes its slot table from this, so every worker thread —
/// plus the one off-pool slot — has a private, race-free slot.
inline constexpr int kMaxExecutorWorkers = 256;

/// Load accounting for one Executor, readable via Executor::stats().
/// Worker attribution and queue wait depend on scheduling, so these
/// values are run-dependent — publish them as observability *gauges*,
/// never into anything that must be deterministic.
struct ExecutorStats {
  int64_t batches = 0;       ///< ParallelFor / RunTasks calls.
  int64_t serial_items = 0;  ///< Indices run inline (0-thread mode).
  /// Indices executed by each pool worker.
  std::vector<int64_t> items_per_worker;
  /// Total time batch jobs spent queued before a worker picked them up.
  double queue_wait_ms = 0.0;
};

/// A fixed pool of worker threads with an index-loop and task-batch API.
///
/// `Executor(0)` creates no threads: every call runs inline on the
/// caller, which is the deterministic serial fallback (`TAXITRACE_THREADS=0`).
/// With n > 0 workers the caller blocks until the batch completes; the
/// pool is reused across calls and joined on destruction.
class Executor {
 public:
  /// Creates `num_threads` workers (clamped at 0). 0 = run inline.
  explicit Executor(int num_threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Number of pool threads; 0 means every call executes serially
  /// inline.
  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Runs `fn(i)` for every i in [begin, end), distributing indices over
  /// the pool, and blocks until all of them finished. Every index runs
  /// even after a failure, so the returned status — the error of the
  /// *lowest* failing index — does not depend on scheduling.
  Status ParallelFor(int64_t begin, int64_t end,
                     const std::function<Status(int64_t)>& fn) const;

  /// Runs a batch of heterogeneous tasks (task-submission form of
  /// ParallelFor). Same completion and error contract.
  Status RunTasks(const std::vector<std::function<Status()>>& tasks) const;

  /// Resolves a requested thread count to an actual one:
  ///   requested >= 0  -> used as-is (0 = serial),
  ///   requested  < 0  -> the TAXITRACE_THREADS environment variable if
  ///                      set to a valid non-negative integer, else all
  ///                      hardware threads.
  static int ResolveThreadCount(int requested);

  /// A process-wide 0-thread executor for call sites that take an
  /// optional `const Executor*` and received none.
  static const Executor& Serial();

  /// Index of the calling pool worker thread in [0, num_threads), or -1
  /// when called from any thread outside an executor pool (the main
  /// thread, the serial fallback, tests). This is the worker context
  /// that WorkerLocal keys its slots on.
  static int CurrentWorkerIndex();

  /// Snapshot of the load counters accumulated so far.
  [[nodiscard]] ExecutorStats stats() const;

 private:
  struct QueuedJob {
    /// Runs the job and returns how many work items it executed (for
    /// per-worker load attribution).
    std::function<int64_t()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop(size_t worker_index);

  mutable std::mutex mu_;
  mutable std::condition_variable work_cv_;
  mutable std::deque<QueuedJob> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Load accounting; relaxed atomics, a handful of adds per batch/job.
  mutable std::atomic<int64_t> batches_{0};
  mutable std::atomic<int64_t> serial_items_{0};
  mutable std::atomic<int64_t> queue_wait_ns_{0};
  mutable std::unique_ptr<std::atomic<int64_t>[]> worker_items_;
};

/// Per-worker mutable scratch, keyed on the executor's worker context.
///
/// `Local()` hands every thread a slot of its own: pool worker w gets
/// slot w + 1, any off-pool thread (main thread, serial fallback) gets
/// slot 0. Within one executor's batch each slot is touched by exactly
/// one thread, so access after the first-use allocation is lock-free
/// and race-free. Slots are created on first use and live until the
/// WorkerLocal is destroyed, which is what makes repeated use (e.g. one
/// search scratch per worker across thousands of searches)
/// allocation-free in steady state.
///
/// The scratch must never influence *what* is computed — only how much
/// allocation/initialisation it costs — or the executor's determinism
/// contract ("same results at any worker count") breaks.
template <typename T>
class WorkerLocal {
 public:
  WorkerLocal() = default;
  ~WorkerLocal() {
    for (auto& slot : slots_) delete slot.load(std::memory_order_acquire);
  }
  WorkerLocal(const WorkerLocal&) = delete;
  WorkerLocal& operator=(const WorkerLocal&) = delete;

  /// The calling thread's slot, default-constructed on first use.
  T& Local() const {
    const size_t slot =
        static_cast<size_t>(Executor::CurrentWorkerIndex() + 1);
    std::atomic<T*>& cell = slots_[slot];
    T* p = cell.load(std::memory_order_acquire);
    if (p == nullptr) {
      T* fresh = new T();
      // Only this thread writes this slot, but CAS keeps the invariant
      // checkable and the failure path leak-free.
      if (cell.compare_exchange_strong(p, fresh,
                                       std::memory_order_acq_rel)) {
        p = fresh;
      } else {
        delete fresh;
      }
    }
    return *p;
  }

 private:
  mutable std::array<std::atomic<T*>, kMaxExecutorWorkers + 1> slots_{};
};

}  // namespace taxitrace

#endif  // TAXITRACE_COMMON_EXECUTOR_H_
