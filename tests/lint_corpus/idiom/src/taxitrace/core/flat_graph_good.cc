// Known-good shapes the flat-graph-index rule must NOT flag: the
// blessed tiled accessors, size queries, and unrelated members.

#include "taxitrace/core/fake_api.h"

namespace taxitrace {

void GoodTiledAccessors(const RoadNetwork& net, int id) {
  Use(net.vertex(id));
  Use(net.edge(id));
  Use(net.VertexIdAt(0));
  net.ForEachVertex([](const auto& v) { Use(v); });
}

void GoodNonSubscriptUses(const Tile& tile) {
  Use(tile.vertices.size());  // member access without a subscript
  for (const auto& v : tile.vertices) Use(v);
}

void GoodUnrelatedNames(const Mesh& mesh, int i) {
  Use(mesh.wedges[i]);     // not the graph members
  Use(mesh.vertices2[i]);  // different identifier entirely
}

}  // namespace taxitrace
