// Cholesky factorisation and SPD solves for the model equations.

#ifndef TAXITRACE_MODEL_CHOLESKY_H_
#define TAXITRACE_MODEL_CHOLESKY_H_

#include "taxitrace/common/result.h"
#include "taxitrace/model/matrix.h"

namespace taxitrace {
namespace model {

/// Lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix. Fails with FailedPrecondition when the matrix is not SPD
/// (within numerical tolerance).
Result<Matrix> CholeskyDecompose(const Matrix& a);

/// Solves L L^T x = b given the lower factor L.
Vector CholeskySolve(const Matrix& lower, const Vector& b);

/// Solves A x = b for SPD A (factorise + solve).
Result<Vector> SolveSpd(const Matrix& a, const Vector& b);

/// log |A| for SPD A via its Cholesky factor (2 * sum log L_ii).
double LogDetFromCholesky(const Matrix& lower);

/// Inverse of SPD A (for standard errors of small systems).
Result<Matrix> InvertSpd(const Matrix& a);

}  // namespace model
}  // namespace taxitrace

#endif  // TAXITRACE_MODEL_CHOLESKY_H_
