#include "taxitrace/analysis/temporal.h"

#include <cmath>

#include "taxitrace/trace/time_util.h"

namespace taxitrace {
namespace analysis {

std::vector<HourlySpeed> HourlySpeedSeries(
    const std::vector<const trace::Trip*>& trips) {
  std::vector<HourlySpeed> series(24);
  for (int h = 0; h < 24; ++h) series[static_cast<size_t>(h)].hour = h;
  for (const trace::Trip* trip : trips) {
    if (trip == nullptr) continue;
    for (const trace::RoutePoint& p : trip->points) {
      const int h = static_cast<int>(trace::HourOfDay(p.timestamp_s));
      HourlySpeed& bucket = series[static_cast<size_t>(h % 24)];
      ++bucket.n;
      bucket.mean_kmh += (p.speed_kmh - bucket.mean_kmh) /
                         static_cast<double>(bucket.n);
    }
  }
  return series;
}

std::vector<DailySpeed> DailySpeedSeries(
    const std::vector<const trace::Trip*>& trips) {
  std::vector<DailySpeed> series(7);
  for (int d = 0; d < 7; ++d) {
    series[static_cast<size_t>(d)].day_of_week = d;
  }
  for (const trace::Trip* trip : trips) {
    if (trip == nullptr) continue;
    for (const trace::RoutePoint& p : trip->points) {
      DailySpeed& bucket =
          series[static_cast<size_t>(trace::DayOfWeek(p.timestamp_s))];
      ++bucket.n;
      bucket.mean_kmh += (p.speed_kmh - bucket.mean_kmh) /
                         static_cast<double>(bucket.n);
    }
  }
  return series;
}

double RushHourSlowdownKmh(const std::vector<HourlySpeed>& series) {
  double rush_sum = 0.0, offpeak_sum = 0.0;
  int64_t rush_n = 0, offpeak_n = 0;
  for (const HourlySpeed& bucket : series) {
    const bool rush = (bucket.hour >= 7 && bucket.hour < 9) ||
                      (bucket.hour >= 15 && bucket.hour < 17);
    const bool offpeak = bucket.hour >= 10 && bucket.hour < 14;
    if (rush) {
      rush_sum += bucket.mean_kmh * static_cast<double>(bucket.n);
      rush_n += bucket.n;
    } else if (offpeak) {
      offpeak_sum += bucket.mean_kmh * static_cast<double>(bucket.n);
      offpeak_n += bucket.n;
    }
  }
  if (rush_n == 0 || offpeak_n == 0) return 0.0;
  return offpeak_sum / static_cast<double>(offpeak_n) -
         rush_sum / static_cast<double>(rush_n);
}

}  // namespace analysis
}  // namespace taxitrace
