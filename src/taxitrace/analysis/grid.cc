#include "taxitrace/analysis/grid.h"

#include <cmath>

namespace taxitrace {
namespace analysis {

Grid::Grid(double cell_size_m) : cell_size_m_(cell_size_m) {}

CellId Grid::CellOf(const geo::EnPoint& p) const {
  return CellId{static_cast<int32_t>(std::floor(p.x / cell_size_m_)),
                static_cast<int32_t>(std::floor(p.y / cell_size_m_))};
}

geo::EnPoint Grid::CellCenter(const CellId& c) const {
  return geo::EnPoint{(c.cx + 0.5) * cell_size_m_,
                      (c.cy + 0.5) * cell_size_m_};
}

geo::Bbox Grid::CellBounds(const CellId& c) const {
  return geo::Bbox{c.cx * cell_size_m_, c.cy * cell_size_m_,
                   (c.cx + 1) * cell_size_m_, (c.cy + 1) * cell_size_m_};
}

void CellSpeedAccumulator::Add(const geo::EnPoint& position,
                               double speed_kmh) {
  Moments& m = cells_[grid_.CellOf(position)];
  ++m.n;
  const double delta = speed_kmh - m.mean;
  m.mean += delta / static_cast<double>(m.n);
  m.m2 += delta * (speed_kmh - m.mean);
  ++total_points_;
}

void CellSpeedAccumulator::Merge(const CellSpeedAccumulator& other) {
  // Per-cell-slot writes: each key is combined exactly once, so the
  // result is independent of the other map's iteration order.
  for (const auto& [cell, theirs] : other.cells_) {
    Moments& ours = cells_[cell];
    if (ours.n == 0) {
      ours = theirs;
      continue;
    }
    const int64_t n_total = ours.n + theirs.n;
    const double delta = theirs.mean - ours.mean;
    ours.m2 += theirs.m2 + delta * delta *
                               (static_cast<double>(ours.n) *
                                static_cast<double>(theirs.n) /
                                static_cast<double>(n_total));
    ours.mean += delta * (static_cast<double>(theirs.n) /
                          static_cast<double>(n_total));
    ours.n = n_total;
  }
  total_points_ += other.total_points_;
}

std::unordered_map<CellId, CellFeatureCounts, CellIdHash>
ComputeCellFeatures(const roadnet::RoadNetwork& network, const Grid& grid) {
  std::unordered_map<CellId, CellFeatureCounts, CellIdHash> out;
  for (const roadnet::MapFeature& f : network.features()) {
    CellFeatureCounts& counts = out[grid.CellOf(f.position)];
    switch (f.type) {
      case roadnet::FeatureType::kTrafficLight:
        ++counts.traffic_lights;
        break;
      case roadnet::FeatureType::kBusStop:
        ++counts.bus_stops;
        break;
      case roadnet::FeatureType::kPedestrianCrossing:
        ++counts.pedestrian_crossings;
        break;
    }
  }
  network.ForEachVertex([&](const roadnet::Vertex& v) {
    if (v.is_junction) ++out[grid.CellOf(v.position)].junctions;
  });
  return out;
}

}  // namespace analysis
}  // namespace taxitrace
