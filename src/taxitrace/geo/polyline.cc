#include "taxitrace/geo/polyline.h"

#include <algorithm>
#include <cmath>

namespace taxitrace {
namespace geo {

Polyline::Polyline(std::vector<EnPoint> points) : points_(std::move(points)) {}

void Polyline::Append(const EnPoint& p) { points_.push_back(p); }

double Polyline::Length() const {
  double total = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    total += Distance(points_[i - 1], points_[i]);
  }
  return total;
}

EnPoint Polyline::Interpolate(double s) const {
  if (points_.empty()) return EnPoint{};
  if (s <= 0.0) return points_.front();
  for (size_t i = 1; i < points_.size(); ++i) {
    const double seg = Distance(points_[i - 1], points_[i]);
    if (s <= seg) {
      if (seg == 0.0) return points_[i];
      const double t = s / seg;
      return points_[i - 1] + t * (points_[i] - points_[i - 1]);
    }
    s -= seg;
  }
  return points_.back();
}

PolylineProjection Polyline::Project(const EnPoint& p) const {
  PolylineProjection best;
  best.distance = std::numeric_limits<double>::infinity();
  if (points_.empty()) return best;
  if (points_.size() == 1) {
    best = PolylineProjection{points_[0], 0, 0.0, 0.0, Distance(p, points_[0])};
    return best;
  }
  double arc = 0.0;
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    const Segment seg{points_[i], points_[i + 1]};
    const PointProjection proj = ProjectOntoSegment(p, seg);
    if (proj.distance < best.distance) {
      best.point = proj.point;
      best.segment_index = i;
      best.t = proj.t;
      best.arc_length = arc + proj.t * seg.Length();
      best.distance = proj.distance;
    }
    arc += seg.Length();
  }
  return best;
}

double Polyline::SegmentHeading(size_t i) const {
  return Segment{points_[i], points_[i + 1]}.Heading();
}

Bbox Polyline::Bounds() const {
  Bbox box = Bbox::Empty();
  for (const EnPoint& p : points_) box.Extend(p);
  return box;
}

Polyline Polyline::Reversed() const {
  std::vector<EnPoint> rev(points_.rbegin(), points_.rend());
  return Polyline(std::move(rev));
}

void Polyline::Extend(const Polyline& other) {
  for (size_t i = 0; i < other.points_.size(); ++i) {
    if (i == 0 && !points_.empty() &&
        Distance(points_.back(), other.points_[0]) < 1e-6) {
      continue;
    }
    points_.push_back(other.points_[i]);
  }
}

Polyline Polyline::SubLine(double s0, double s1) const {
  if (points_.size() < 2) return *this;
  const bool reversed = s0 > s1;
  if (reversed) std::swap(s0, s1);
  const double total = Length();
  s0 = std::clamp(s0, 0.0, total);
  s1 = std::clamp(s1, 0.0, total);

  std::vector<EnPoint> out;
  out.push_back(Interpolate(s0));
  double arc = 0.0;
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    const double seg = Distance(points_[i], points_[i + 1]);
    const double vertex_arc = arc + seg;  // arc length of vertex i+1
    if (vertex_arc > s0 + 1e-9 && vertex_arc < s1 - 1e-9) {
      out.push_back(points_[i + 1]);
    }
    arc = vertex_arc;
  }
  const EnPoint end = Interpolate(s1);
  if (out.empty() || Distance(out.back(), end) > 1e-9 || out.size() == 1) {
    out.push_back(end);
  }
  Polyline result(std::move(out));
  return reversed ? result.Reversed() : result;
}

Polyline Polyline::Resample(double max_spacing) const {
  if (points_.size() < 2 || max_spacing <= 0.0) return *this;
  std::vector<EnPoint> out;
  out.push_back(points_.front());
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    const double seg = Distance(points_[i], points_[i + 1]);
    const int pieces = std::max(1, static_cast<int>(std::ceil(seg / max_spacing)));
    for (int k = 1; k <= pieces; ++k) {
      const double t = static_cast<double>(k) / pieces;
      out.push_back(points_[i] + t * (points_[i + 1] - points_[i]));
    }
  }
  return Polyline(std::move(out));
}

}  // namespace geo
}  // namespace taxitrace
