# Empty dependencies file for bootstrap_hull_test.
# This may be replaced when dependencies are built.
