# Empty compiler generated dependencies file for flows_robustness_test.
# This may be replaced when dependencies are built.
