#include "taxitrace/mapmatch/route_cache.h"

#include <bit>

#include "taxitrace/common/hash.h"

namespace taxitrace {
namespace mapmatch {

size_t RouteCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = SplitMix64(
      static_cast<uint64_t>(static_cast<uint32_t>(k.from_edge)) |
      (static_cast<uint64_t>(static_cast<uint32_t>(k.to_edge)) << 32));
  h = SplitMix64(h ^ std::bit_cast<uint64_t>(k.from_arc));
  h = SplitMix64(h ^ std::bit_cast<uint64_t>(k.to_arc));
  return static_cast<size_t>(h);
}

const Result<roadnet::Path>* RouteCache::Find(
    const roadnet::EdgePosition& from, const roadnet::EdgePosition& to) {
  if (capacity_ == 0) return nullptr;
  const Key key{from.edge, to.edge, from.arc_length_m, to.arc_length_m};
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);
  return &entries_.front().path;
}

void RouteCache::Insert(const roadnet::EdgePosition& from,
                        const roadnet::EdgePosition& to,
                        Result<roadnet::Path> path) {
  if (capacity_ == 0) return;
  const Key key{from.edge, to.edge, from.arc_length_m, to.arc_length_m};
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->path = std::move(path);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    ++stats_.evictions;
  }
  entries_.push_front(Entry{key, std::move(path)});
  index_.emplace(key, entries_.begin());
}

}  // namespace mapmatch
}  // namespace taxitrace
